package fasp

import (
	"fmt"
	"testing"

	"fasp/internal/crashx"
	"fasp/internal/pager"
	"fasp/internal/pmem"
	"fasp/internal/shard"
)

// The migration crash sweep: for every ordered pair of live schemes, run a
// workload that migrates mid-stream and enumerate crash schedules through
// the whole migration window — quiesce, checkpoint-to-clean-image, page
// copy, tag flip, re-attach — plus nested crashes inside recovery. The
// oracle is crashx's exact-state contract: after any crash + recovery the
// store holds precisely the acknowledged prefix (or one in-flight op more),
// under whichever scheme the persisted tag names.

// migrationDirections are the six ordered scheme pairs the controller can
// choose between (nvwal/journal are measurement baselines, not migration
// targets — tune only ever proposes fast+/fast/wal).
var migrationDirections = [][2]string{
	{SchemeFASTPlus, SchemeFAST}, // same family, in-place tag flip
	{SchemeFAST, SchemeFASTPlus},
	{SchemeFASTPlus, SchemeWAL}, // cross family, copy + flip
	{SchemeWAL, SchemeFASTPlus},
	{SchemeFAST, SchemeWAL},
	{SchemeWAL, SchemeFAST},
}

// migrationSweeper wires one direction into crashx. The backend pointer is
// rebound by Open on every replay so the AtOp and Reattach closures always
// see the current run's machine.
type migrationSweeper struct {
	opts      Options
	target    string
	migrateAt int
	be        *shard.Backend
	base      int64 // crash points consumed by Open (workload points are relative to this)

	learn        bool  // set during the measuring run only
	winLo, winHi int64 // migration window in absolute crash points
}

func (s *migrationSweeper) open() (*pmem.System, pager.Store) {
	b, err := newBase(s.opts)
	if err != nil {
		panic(fmt.Sprintf("newBase(%q): %v", s.opts.Scheme, err))
	}
	be := &shard.Backend{Sys: b.sys, Arena: b.arena, Store: b.store, Ctl: newCtlArena(b.sys, s.opts.Scheme)}
	s.be = be
	s.base = b.sys.CrashPoints()
	return b.sys, b.store
}

func (s *migrationSweeper) atOp(i int, _ pager.Store) (pager.Store, error) {
	if i != s.migrateAt {
		return nil, nil
	}
	if s.learn {
		s.winLo = s.be.Sys.CrashPoints()
	}
	ns, err := migrateStore(s.opts, s.be, s.target)
	if err != nil {
		return nil, err
	}
	s.be.Store = ns
	if s.learn {
		s.winHi = s.be.Sys.CrashPoints()
	}
	return ns, nil
}

func (s *migrationSweeper) reattach(pager.Store) (pager.Store, error) {
	ns, err := reattachShard(s.opts)(0, s.be)
	if err != nil {
		return nil, err
	}
	s.be.Store = ns
	return ns, nil
}

// sweepPoints builds the primary crash-point schedule: the migration window
// enumerated (capped with an even stride when it is wide), bracketed by a
// few points on either side so the quiesced hand-off edges are covered too.
func sweepPoints(lo, hi, total int64, cap int) []int64 {
	var pts []int64
	for d := int64(3); d >= 1; d-- {
		if lo-d >= 0 {
			pts = append(pts, lo-d)
		}
	}
	win := hi - lo
	switch {
	case win <= int64(cap):
		for p := lo; p < hi; p++ {
			pts = append(pts, p)
		}
	default:
		// Even stride across the window, always keeping both edges: the
		// checkpoint prologue and the tag-flip/attach epilogue are where the
		// protocol's atomicity claims live.
		edge := int64(cap / 4)
		for p := lo; p < lo+edge; p++ {
			pts = append(pts, p)
		}
		mid := cap / 2
		span := win - 2*edge
		for i := 0; i < mid; i++ {
			pts = append(pts, lo+edge+span*int64(i)/int64(mid))
		}
		for p := hi - edge; p < hi; p++ {
			pts = append(pts, p)
		}
	}
	for _, d := range []int64{0, 4, 40} {
		if p := hi + d; p < total {
			pts = append(pts, p)
		}
	}
	return pts
}

func TestMigrationCrashSweep(t *testing.T) {
	winCap, nb, ns := 120, 4, 6
	if testing.Short() {
		winCap, nb, ns = 36, 2, 2
	}
	for _, dir := range migrationDirections {
		dir := dir
		t.Run(fmt.Sprintf("%s_to_%s", dir[0], dir[1]), func(t *testing.T) {
			s := &migrationSweeper{
				opts: Options{
					Scheme:     dir[0],
					PageSize:   512,
					MaxPages:   1024,
					CacheBytes: 8 << 10,
				},
				target:    dir[1],
				migrateAt: 18,
			}
			s.opts.fill()
			cfg := &crashx.Config{
				Open:          func() (*pmem.System, pager.Store) { return s.open() },
				Reattach:      s.reattach,
				Workload:      crashx.DefaultWorkload(36),
				AtOp:          s.atOp,
				Nested:        true,
				NestedBudget:  nb,
				NestedSamples: ns,
				MaxFailures:   3,
			}

			// Measuring run: validates the workload end to end (including the
			// migration) and learns the migration window's crash points.
			s.learn = true
			total, err := crashx.Measure(cfg)
			if err != nil {
				t.Fatalf("measure: %v", err)
			}
			s.learn = false
			if s.winHi <= s.winLo {
				t.Fatalf("migration window not learned (lo=%d hi=%d)", s.winLo, s.winHi)
			}
			lo, hi := s.winLo-s.base, s.winHi-s.base
			cfg.Points = sweepPoints(lo, hi, total, winCap)

			rep, err := crashx.Explore(cfg)
			if err != nil {
				t.Fatalf("explore: %v", err)
			}
			t.Logf("window [%d,%d) of %d points; %d schedules (%d nested), %d failures",
				lo, hi, total, rep.Runs, rep.NestedRuns, len(rep.Failures))
			for _, f := range rep.Failures {
				t.Errorf("oracle violation at %s: %s", f.Spec, f.Err)
			}
		})
	}
}
