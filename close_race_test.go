package fasp

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestCloseRacesSubmissions pins the Close-vs-in-flight ordering contract
// under the race detector: goroutines hammer every submission path
// (Put/DoBatch/ApplyBatch/Get/Scan/Count) while another goroutine closes
// the KV. Every op must either complete normally or fail with the typed
// shutdown-path errors — never deadlock, panic, race, or silently apply
// after Close.
func TestCloseRacesSubmissions(t *testing.T) {
	for round := 0; round < 8; round++ {
		kv, err := OpenKV(Options{Shards: 4})
		if err != nil {
			t.Fatalf("OpenKV: %v", err)
		}

		allowed := func(err error) bool {
			return err == nil ||
				errors.Is(err, ErrClosed) ||
				errors.Is(err, ErrShardBusy) ||
				errors.Is(err, ErrShardDown)
		}
		var (
			mu  sync.Mutex
			bad error
		)
		report := func(path string, err error) {
			if allowed(err) {
				return
			}
			mu.Lock()
			if bad == nil {
				bad = fmt.Errorf("%s: %w", path, err)
			}
			mu.Unlock()
		}

		var wg sync.WaitGroup
		start := make(chan struct{})
		for c := 0; c < 4; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				<-start
				for i := 0; i < 200; i++ {
					k := []byte(fmt.Sprintf("r%d-c%d-%04d", round, c, i))
					report("Put", kv.Put(k, []byte("v")))
				}
			}(c)
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				<-start
				ops := make([]Op, 4)
				for i := 0; i < 50; i++ {
					for j := range ops {
						ops[j] = Op{Kind: OpPut, Key: []byte(fmt.Sprintf("b%d-c%d-%d-%d", round, c, i, j)), Val: []byte("v")}
					}
					for _, err := range kv.DoBatch(ops) {
						report("DoBatch", err)
					}
					for _, err := range kv.ApplyBatch(ops) {
						report("ApplyBatch", err)
					}
				}
			}(c)
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				<-start
				for i := 0; i < 100; i++ {
					if _, _, err := kv.Get([]byte(fmt.Sprintf("r%d-c%d-%04d", round, c, i))); err != nil {
						report("Get", err)
					}
					if _, err := kv.Count(); err != nil {
						report("Count", err)
					}
					err := kv.Scan(nil, nil, func(k, v []byte) bool { return false })
					report("Scan", err)
				}
			}(c)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			kv.Close()
		}()
		close(start)
		wg.Wait()
		// Idempotent double Close after the storm.
		kv.Close()
		if bad != nil {
			t.Fatalf("round %d: unexpected error: %v", round, bad)
		}
	}
}
