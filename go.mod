module fasp

go 1.24
