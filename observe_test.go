package fasp

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"fasp/internal/obsv"
)

// TestBadShardIndex pins the API-edge fix: out-of-range shard indexes used
// to panic on a sharded store and silently alias the whole store on a
// single one. Every per-shard accessor now validates and returns
// ErrBadShard in both modes.
func TestBadShardIndex(t *testing.T) {
	check := func(t *testing.T, kv *KV, bad []int) {
		t.Helper()
		for _, i := range bad {
			if _, err := kv.ShardStats(i); !errors.Is(err, ErrBadShard) {
				t.Errorf("ShardStats(%d) = %v, want ErrBadShard", i, err)
			}
			if _, err := kv.ShardSystem(i); !errors.Is(err, ErrBadShard) {
				t.Errorf("ShardSystem(%d) = %v, want ErrBadShard", i, err)
			}
			if _, err := kv.ShardStore(i); !errors.Is(err, ErrBadShard) {
				t.Errorf("ShardStore(%d) = %v, want ErrBadShard", i, err)
			}
			if err := kv.Heal(i); !errors.Is(err, ErrBadShard) {
				t.Errorf("Heal(%d) = %v, want ErrBadShard", i, err)
			}
			if err := kv.ShardScan(i, nil, nil, func(_, _ []byte) bool { return true }); !errors.Is(err, ErrBadShard) {
				t.Errorf("ShardScan(%d) = %v, want ErrBadShard", i, err)
			}
		}
		// Every in-range index works.
		for i := 0; i < kv.Shards(); i++ {
			if _, err := kv.ShardStats(i); err != nil {
				t.Errorf("ShardStats(%d): %v", i, err)
			}
			if sys, err := kv.ShardSystem(i); err != nil || sys == nil {
				t.Errorf("ShardSystem(%d) = %v, %v", i, sys, err)
			}
			if st, err := kv.ShardStore(i); err != nil || st == nil {
				t.Errorf("ShardStore(%d) = %v, %v", i, st, err)
			}
		}
	}

	t.Run("sharded", func(t *testing.T) {
		kv, err := OpenKV(Options{Shards: 4, PageSize: 1024})
		if err != nil {
			t.Fatal(err)
		}
		defer kv.Close()
		check(t, kv, []int{-1, 4, 100})
	})
	t.Run("single", func(t *testing.T) {
		kv, err := OpenKV(Options{PageSize: 1024})
		if err != nil {
			t.Fatal(err)
		}
		defer kv.Close()
		check(t, kv, []int{-1, 1, 7})
		// Index 0 of a single store aliases the whole store.
		if sys, err := kv.ShardSystem(0); err != nil || sys != kv.System() {
			t.Errorf("ShardSystem(0) should alias System(): %v, %v", sys, err)
		}
	})
}

// TestKVCloseIdempotent pins the Close fix: Close is safe to call twice
// (and concurrently with traffic), and sharded submissions after Close
// fail fast with ErrClosed instead of deadlocking on a dead writer.
func TestKVCloseIdempotent(t *testing.T) {
	t.Run("sharded", func(t *testing.T) {
		kv, err := OpenKV(Options{Shards: 3, PageSize: 1024})
		if err != nil {
			t.Fatal(err)
		}
		if err := kv.Put(k(1), v(1)); err != nil {
			t.Fatal(err)
		}
		kv.Close()
		kv.Close() // second Close must be a no-op

		done := make(chan error, 1)
		go func() { done <- kv.Put(k(2), v(2)) }()
		select {
		case err := <-done:
			if !errors.Is(err, ErrClosed) {
				t.Fatalf("Put after Close = %v, want ErrClosed", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("Put after Close deadlocked")
		}
	})
	t.Run("single", func(t *testing.T) {
		kv, err := OpenKV(Options{PageSize: 1024})
		if err != nil {
			t.Fatal(err)
		}
		if err := kv.Put(k(1), v(1)); err != nil {
			t.Fatal(err)
		}
		kv.Close()
		kv.Close()
		// A single store holds no goroutines; post-Close ops keep working.
		if err := kv.Put(k(2), v(2)); err != nil {
			t.Fatalf("single-store Put after Close: %v", err)
		}
	})
	t.Run("after-crashed-shard", func(t *testing.T) {
		kv, err := OpenKV(Options{Shards: 2, PageSize: 1024})
		if err != nil {
			t.Fatal(err)
		}
		sys, err := kv.ShardSystem(0)
		if err != nil {
			t.Fatal(err)
		}
		sys.CrashAfter(50) // fail shard 0 inside an early batch
		sawCrash := false
		for i := 0; i < 500 && !sawCrash; i++ {
			if err := kv.Put(k(i), v(i)); errors.Is(err, ErrShardCrashed) {
				sawCrash = true
			}
		}
		if !sawCrash {
			t.Fatal("crash injector never fired")
		}
		// Close with one shard crashed must neither hang nor panic — twice.
		closed := make(chan struct{})
		go func() { kv.Close(); kv.Close(); close(closed) }()
		select {
		case <-closed:
		case <-time.After(5 * time.Second):
			t.Fatal("Close after shard crash hung")
		}
	})
}

// TestPutSingleTransaction pins the upsert fix with the determinism
// machinery: KV.Put on an existing key must cost exactly the simulated
// time of one upsert transaction (tree.Put), not an aborted Insert plus a
// separate Update transaction as before.
func TestPutSingleTransaction(t *testing.T) {
	open := func() *KV {
		kv, err := OpenKV(Options{PageSize: 1024, DisableMetrics: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(kv.Close)
		return kv
	}

	// Store A: public API, duplicate Put.
	a := open()
	if err := a.Put(k(1), v(1)); err != nil {
		t.Fatal(err)
	}
	if err := a.Put(k(1), v(2)); err != nil {
		t.Fatal(err)
	}
	got, ok, err := a.Get(k(1))
	if err != nil || !ok || !bytes.Equal(got, v(2)) {
		t.Fatalf("after duplicate Put: %q %v %v", got, ok, err)
	}

	// Store B: reference machine driving the tree's single-transaction
	// upsert directly. Identical op sequence on an identical machine, so
	// the simulated clocks must agree exactly.
	b := open()
	if err := b.tree.Put(k(1), v(1)); err != nil {
		t.Fatal(err)
	}
	if err := b.tree.Put(k(1), v(2)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.tree.Get(k(1)); err != nil {
		t.Fatal(err)
	}
	if a.SimulatedNS() != b.SimulatedNS() {
		t.Fatalf("KV.Put is not a single upsert transaction: sim %d ns vs reference %d ns",
			a.SimulatedNS(), b.SimulatedNS())
	}

	// Store C: the old two-transaction sequence (failed Insert, then
	// Update) must cost strictly more — proving this test detects the
	// regression it pins.
	c := open()
	if err := c.tree.Insert(k(1), v(1)); err != nil {
		t.Fatal(err)
	}
	if err := c.tree.Insert(k(1), v(2)); err == nil {
		t.Fatal("duplicate insert succeeded")
	}
	if err := c.tree.Update(k(1), v(2)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.tree.Get(k(1)); err != nil {
		t.Fatal(err)
	}
	if c.SimulatedNS() <= a.SimulatedNS() {
		t.Fatalf("two-txn sequence (%d ns) not costlier than upsert (%d ns) — test cannot detect regressions",
			c.SimulatedNS(), a.SimulatedNS())
	}
}

// TestKVMetrics exercises the facade surface in both modes plus the
// disabled path.
func TestKVMetrics(t *testing.T) {
	t.Run("single", func(t *testing.T) {
		kv, err := OpenKV(Options{PageSize: 1024, MetricsSampleEvery: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer kv.Close()
		const n = 50
		for i := 0; i < n; i++ {
			if err := kv.Put(k(i), v(i)); err != nil {
				t.Fatal(err)
			}
		}
		if _, _, err := kv.Get(k(3)); err != nil {
			t.Fatal(err)
		}
		m := kv.Metrics()
		if got := m.OpStats(obsv.OpPut); got.Count != n || got.SimP50NS <= 0 {
			t.Fatalf("put stats = %+v", got)
		}
		if m.OpStats(obsv.OpGet).Count != 1 {
			t.Fatalf("get count = %d", m.OpStats(obsv.OpGet).Count)
		}
		if m.Events.Flush <= 0 || m.Events.Fence <= 0 {
			t.Fatalf("commit-path events not bridged: %+v", m.Events)
		}
		if m.FlushPer.Count != n {
			t.Fatalf("per-txn flush histogram count = %d, want %d", m.FlushPer.Count, n)
		}
		if len(kv.TraceSample()) == 0 {
			t.Fatal("no trace samples at SampleEvery=1")
		}
	})
	t.Run("sharded", func(t *testing.T) {
		kv, err := OpenKV(Options{Shards: 4, PageSize: 1024, MetricsSampleEvery: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer kv.Close()
		const n = 200
		for i := 0; i < n; i++ {
			if err := kv.Put(k(i), v(i)); err != nil {
				t.Fatal(err)
			}
		}
		m := kv.Metrics()
		if got := m.OpStats(obsv.OpPut); got.Count != n {
			t.Fatalf("put wall count = %d, want %d", got.Count, n)
		}
		if m.Batches <= 0 || m.BatchSize.Count != m.Batches {
			t.Fatalf("batch accounting: %+v", m)
		}
		if m.Events.Flush <= 0 {
			t.Fatalf("events not bridged: %+v", m.Events)
		}
		if len(kv.TraceSample()) == 0 {
			t.Fatal("no trace samples")
		}
	})
	t.Run("disabled", func(t *testing.T) {
		kv, err := OpenKV(Options{Shards: 2, PageSize: 1024, DisableMetrics: true})
		if err != nil {
			t.Fatal(err)
		}
		defer kv.Close()
		for i := 0; i < 20; i++ {
			if err := kv.Put(k(i), v(i)); err != nil {
				t.Fatal(err)
			}
		}
		m := kv.Metrics()
		if len(m.Ops) != 0 || m.Batches != 0 || m.Seen != 0 {
			t.Fatalf("disabled metrics recorded: %+v", m)
		}
		if kv.TraceSample() != nil || kv.SlowOps() != nil {
			t.Fatal("disabled store returned samples")
		}
	})
}

// TestServeMetricsScrape spins up the exporter on an ephemeral port and
// asserts the acceptance criteria: valid Prometheus text carrying per-shard
// op counts and the batch-size histogram for a 4-shard store.
func TestServeMetricsScrape(t *testing.T) {
	kv, err := OpenKV(Options{Shards: 4, PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	for i := 0; i < 100; i++ {
		if err := kv.Put(k(i), v(i)); err != nil {
			t.Fatal(err)
		}
	}

	srv, err := ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape: status=%d err=%v", resp.StatusCode, err)
	}
	if err := obsv.ValidatePrometheus(body); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, body)
	}
	text := string(body)
	for _, want := range []string{
		"fasp_shard_ops_total", "fasp_batch_size_bucket",
		"fasp_ops_total", "fasp_shard_healthy",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("series %q missing from /metrics", want)
		}
	}
	// All four shards are present and healthy.
	for _, shard := range []string{`shard="0"`, `shard="1"`, `shard="2"`, `shard="3"`} {
		if !strings.Contains(text, shard) {
			t.Errorf("per-shard series for %s missing", shard)
		}
	}

	// The expvar mirror parses as JSON and carries this store.
	resp, err = http.Get("http://" + srv.Addr() + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	vars, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]json.RawMessage
	if err := json.Unmarshal(vars, &decoded); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := decoded["fasp"]; !ok {
		t.Fatal("/debug/vars has no fasp variable")
	}
}

// TestMetricsAllocParity is the differential allocation guard: a
// metrics-enabled store must allocate exactly as much per read as a
// disabled one — the instrumentation layer itself adds zero heap
// allocations (proven directly in internal/obsv; this pins the wiring).
func TestMetricsAllocParity(t *testing.T) {
	measure := func(disable bool) float64 {
		kv, err := OpenKV(Options{PageSize: 1024, DisableMetrics: disable})
		if err != nil {
			t.Fatal(err)
		}
		defer kv.Close()
		for i := 0; i < 100; i++ {
			if err := kv.Put(k(i), v(i)); err != nil {
				t.Fatal(err)
			}
		}
		key := k(42)
		return testing.AllocsPerRun(500, func() {
			if _, _, err := kv.Get(key); err != nil {
				t.Fatal(err)
			}
		})
	}
	on, off := measure(false), measure(true)
	if on != off {
		t.Fatalf("metrics-enabled Get allocates %v/op vs %v/op disabled — instrumentation leaks allocations", on, off)
	}
}
