package fasp_test

import (
	"fmt"

	"fasp"
)

// ExampleOpen runs SQL on a FAST+ database over emulated persistent memory.
func ExampleOpen() {
	db, err := fasp.Open(fasp.Options{Scheme: fasp.SchemeFASTPlus})
	if err != nil {
		panic(err)
	}
	db.MustExec(`
		CREATE TABLE fruit (id INTEGER PRIMARY KEY, name TEXT);
		INSERT INTO fruit (name) VALUES ('apple'), ('pear'), ('plum');
	`)
	rows, _ := db.Query(`SELECT name FROM fruit WHERE name LIKE 'p%' ORDER BY name`)
	for _, r := range rows {
		fmt.Println(r[0].AsText())
	}
	// Output:
	// pear
	// plum
}

// ExampleOpenKV uses the failure-atomic B-tree as an ordered KV store.
func ExampleOpenKV() {
	kv, err := fasp.OpenKV(fasp.Options{})
	if err != nil {
		panic(err)
	}
	_ = kv.Insert([]byte("b"), []byte("2"))
	_ = kv.Insert([]byte("a"), []byte("1"))
	_ = kv.Insert([]byte("c"), []byte("3"))
	_ = kv.Scan(nil, nil, func(k, v []byte) bool {
		fmt.Printf("%s=%s\n", k, v)
		return true
	})
	// Output:
	// a=1
	// b=2
	// c=3
}

// ExampleDB_Crash demonstrates power-failure recovery: committed data
// survives, the database recovers to a consistent state.
func ExampleDB_Crash() {
	db, _ := fasp.Open(fasp.Options{})
	db.MustExec(`CREATE TABLE t (id INTEGER PRIMARY KEY); INSERT INTO t VALUES (1)`)

	db.Crash(fasp.CrashOptions{Seed: 1, EvictProb: 0.5}) // power failure
	if err := db.Reopen(); err != nil {                  // §4.4 recovery
		panic(err)
	}
	rows, _ := db.Query(`SELECT COUNT(*) FROM t`)
	fmt.Println(rows[0][0].AsInt())
	// Output:
	// 1
}

// ExampleOpenHash stores and retrieves via the persistent hash index.
func ExampleOpenHash() {
	h, err := fasp.OpenHash(fasp.Options{}, 16)
	if err != nil {
		panic(err)
	}
	_ = h.Put([]byte("session"), []byte("alive"))
	v, ok, _ := h.Get([]byte("session"))
	fmt.Println(ok, string(v))
	// Output:
	// true alive
}
