package fasp

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"testing"
)

func TestOpenAllSchemes(t *testing.T) {
	for _, scheme := range []string{SchemeFASTPlus, SchemeFAST, SchemeNVWAL, SchemeWAL, SchemeJournal} {
		t.Run(scheme, func(t *testing.T) {
			db, err := Open(Options{Scheme: scheme})
			if err != nil {
				t.Fatal(err)
			}
			db.MustExec(`CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)`)
			db.MustExec(`INSERT INTO t VALUES (1, 'hello')`)
			rows, err := db.Query(`SELECT v FROM t WHERE id = 1`)
			if err != nil || len(rows) != 1 || rows[0][0].AsText() != "hello" {
				t.Fatalf("rows = %v, err = %v", rows, err)
			}
			if db.SimulatedNS() <= 0 {
				t.Fatal("simulated clock did not advance")
			}
		})
	}
}

func TestOpenUnknownScheme(t *testing.T) {
	if _, err := Open(Options{Scheme: "bogus"}); err == nil {
		t.Fatal("no error for unknown scheme")
	}
}

func TestDBCrashReopen(t *testing.T) {
	db, err := Open(Options{Scheme: SchemeFASTPlus, PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec(`CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)`)
	for i := 1; i <= 50; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO t VALUES (%d, 'row-%d')`, i, i))
	}
	db.Crash(CrashOptions{Seed: 1, EvictProb: 0.5})
	if err := db.Reopen(); err != nil {
		t.Fatal(err)
	}
	rows, err := db.Query(`SELECT COUNT(*) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0].AsInt() != 50 {
		t.Fatalf("recovered %v rows, want 50", rows[0][0])
	}
}

func TestKVBasics(t *testing.T) {
	kv, err := OpenKV(Options{Scheme: SchemeFASTPlus, PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := kv.Insert([]byte(fmt.Sprintf("k%05d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	v, ok, err := kv.Get([]byte("k00042"))
	if err != nil || !ok || string(v) != "v42" {
		t.Fatalf("get = %q %v %v", v, ok, err)
	}
	if err := kv.Put([]byte("k00042"), []byte("patched")); err != nil {
		t.Fatal(err)
	}
	v, _, _ = kv.Get([]byte("k00042"))
	if string(v) != "patched" {
		t.Fatalf("after put: %q", v)
	}
	if err := kv.Delete([]byte("k00042")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := kv.Get([]byte("k00042")); ok {
		t.Fatal("deleted key present")
	}
	n, err := kv.Count()
	if err != nil || n != 299 {
		t.Fatalf("count = %d (%v)", n, err)
	}
	var seen int
	if err := kv.Scan([]byte("k00100"), []byte("k00109"), func(k, v []byte) bool {
		seen++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if seen != 10 {
		t.Fatalf("range scan saw %d", seen)
	}
	if err := kv.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestKVBatchAtomicity(t *testing.T) {
	kv, err := OpenKV(Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A failing batch leaves nothing behind.
	boom := fmt.Errorf("boom")
	err = kv.Batch(func(tx BatchTx) error {
		if err := tx.Insert([]byte("a"), []byte("1")); err != nil {
			return err
		}
		return boom
	})
	if err != boom {
		t.Fatalf("err = %v", err)
	}
	if _, ok, _ := kv.Get([]byte("a")); ok {
		t.Fatal("aborted batch visible")
	}
	// A successful batch commits all operations together.
	if err := kv.Batch(func(tx BatchTx) error {
		for i := 0; i < 5; i++ {
			if err := tx.Insert([]byte{byte('a' + i)}, []byte{byte(i)}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	n, _ := kv.Count()
	if n != 5 {
		t.Fatalf("count = %d", n)
	}
}

func TestHashBasics(t *testing.T) {
	h, err := OpenHash(Options{PageSize: 512}, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := h.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	v, ok, err := h.Get([]byte("k0042"))
	if err != nil || !ok || string(v) != "v42" {
		t.Fatalf("get = %q %v %v", v, ok, err)
	}
	if err := h.Delete([]byte("k0042")); err != nil {
		t.Fatal(err)
	}
	if n, _ := h.Len(); n != 199 {
		t.Fatalf("len = %d", n)
	}
	h.Crash(CrashOptions{Seed: 5, EvictProb: 0.5})
	if err := h.ReopenHash(); err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if n, _ := h.Len(); n != 199 {
		t.Fatalf("len after recovery = %d", n)
	}
	if err := h.Rehash(64); err != nil {
		t.Fatal(err)
	}
	if n, _ := h.Len(); n != 199 {
		t.Fatalf("len after rehash = %d", n)
	}
}

func TestKVCrashReopen(t *testing.T) {
	kv, err := OpenKV(Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := kv.Insert([]byte(fmt.Sprintf("k%04d", i)), bytes.Repeat([]byte{byte(i)}, 40)); err != nil {
			t.Fatal(err)
		}
	}
	kv.Crash(CrashOptions{Seed: 9, EvictProb: 0.3})
	if err := kv.ReopenKV(); err != nil {
		t.Fatal(err)
	}
	if err := kv.Validate(); err != nil {
		t.Fatal(err)
	}
	n, _ := kv.Count()
	if n != 100 {
		t.Fatalf("recovered %d keys", n)
	}
}

func TestSnapshotSaveLoadDB(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/db.fasp"
	db, err := Open(Options{Scheme: SchemeFASTPlus, PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec(`CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)`)
	for i := 1; i <= 60; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO t VALUES (%d, 'row-%d')`, i, i))
	}
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	// "New process": load the snapshot on a fresh simulated machine.
	db2, err := OpenSnapshot(path, Options{PMReadNS: 600, PMWriteNS: 600})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := db2.Query(`SELECT COUNT(*) FROM t`)
	if err != nil || rows[0][0].AsInt() != 60 {
		t.Fatalf("count = %v err = %v", rows, err)
	}
	rows, _ = db2.Query(`SELECT v FROM t WHERE id = 33`)
	if rows[0][0].AsText() != "row-33" {
		t.Fatalf("row = %v", rows)
	}
	// Scheme geometry came from the snapshot.
	if db2.SchemeName() != "FAST+" {
		t.Fatalf("scheme = %s", db2.SchemeName())
	}
}

func TestSnapshotSaveLoadKV(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/kv.fasp"
	kv, err := OpenKV(Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 150; i++ {
		if err := kv.Insert([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := kv.Save(path); err != nil {
		t.Fatal(err)
	}
	kv2, err := OpenSnapshotKV(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := kv2.Validate(); err != nil {
		t.Fatal(err)
	}
	n, _ := kv2.Count()
	if n != 150 {
		t.Fatalf("count = %d", n)
	}
	v, ok, _ := kv2.Get([]byte("k0077"))
	if !ok || string(v) != "v77" {
		t.Fatalf("get = %q %v", v, ok)
	}
}

func TestSnapshotSaveLoadHash(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/h.fasp"
	h, err := OpenHash(Options{PageSize: 512}, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := h.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Save(path); err != nil {
		t.Fatal(err)
	}
	h2, err := OpenSnapshotHash(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := h2.Validate(); err != nil {
		t.Fatal(err)
	}
	if n, _ := h2.Len(); n != 100 {
		t.Fatalf("len = %d", n)
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/junk"
	if err := os.WriteFile(path, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSnapshot(path, Options{}); err == nil {
		t.Fatal("no error for garbage snapshot")
	}
	if _, err := OpenSnapshot(dir+"/missing", Options{}); err == nil {
		t.Fatal("no error for missing file")
	}
}

// TestConcurrentFacadeAccess exercises the facade mutex: many goroutines
// hammer one KV store; the result must match a serial reference count.
func TestConcurrentFacadeAccess(t *testing.T) {
	kv, err := OpenKV(Options{PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				key := []byte(fmt.Sprintf("w%02d-%04d", w, i))
				if err := kv.Insert(key, []byte("v")); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				if _, ok, err := kv.Get(key); err != nil || !ok {
					t.Errorf("get: %v %v", ok, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	n, err := kv.Count()
	if err != nil || n != workers*perWorker {
		t.Fatalf("count = %d (%v), want %d", n, err, workers*perWorker)
	}
	if err := kv.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestExplicitTxnCrashRollsBack: a power failure before COMMIT erases the
// whole explicit transaction, across every scheme.
func TestExplicitTxnCrashRollsBack(t *testing.T) {
	for _, scheme := range []string{SchemeFASTPlus, SchemeFAST, SchemeNVWAL, SchemeWAL, SchemeJournal} {
		t.Run(scheme, func(t *testing.T) {
			db, err := Open(Options{Scheme: scheme, PageSize: 1024})
			if err != nil {
				t.Fatal(err)
			}
			db.MustExec(`CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)`)
			db.MustExec(`INSERT INTO t VALUES (1, 'committed')`)
			db.MustExec(`BEGIN`)
			for i := 2; i <= 20; i++ {
				db.MustExec(fmt.Sprintf(`INSERT INTO t VALUES (%d, 'torn')`, i))
			}
			// Power fails before COMMIT.
			db.Crash(CrashOptions{Seed: 4, EvictProb: 0.5})
			if err := db.Reopen(); err != nil {
				t.Fatal(err)
			}
			rows, err := db.Query(`SELECT COUNT(*) FROM t`)
			if err != nil {
				t.Fatal(err)
			}
			if rows[0][0].AsInt() != 1 {
				t.Fatalf("recovered %v rows, want only the committed one", rows[0][0])
			}
			rows, _ = db.Query(`SELECT v FROM t WHERE id = 1`)
			if rows[0][0].AsText() != "committed" {
				t.Fatal("committed row damaged")
			}
		})
	}
}

func TestKVScanReverse(t *testing.T) {
	kv, err := OpenKV(Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := kv.Insert([]byte(fmt.Sprintf("k%03d", i)), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	if err := kv.ScanReverse([]byte("k010"), []byte("k014"), func(k, _ []byte) bool {
		got = append(got, string(k))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 || got[0] != "k014" || got[4] != "k010" {
		t.Fatalf("reverse = %v", got)
	}
}
