package fasp

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"fasp/internal/shard"
)

// TestHealTable pins the KV.Heal contract across shard states: a healthy
// shard is a no-op returning nil (no recovery churn — a background healer
// may call it unconditionally), a degraded shard is recovered in place
// with its committed data intact, and a bad index is ErrBadShard.
func TestHealTable(t *testing.T) {
	var panicNext atomic.Int64 // shard index to panic on next commit, -1 = off
	panicNext.Store(-1)
	kv, err := OpenKV(Options{
		Shards:    4,
		PageSize:  1024,
		PMReadNS:  -1,
		PMWriteNS: -1,
		FaultHook: func(s int) {
			if int64(s) == panicNext.Swap(-1) {
				panic("heal_test: injected writer fault")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()

	// Seed one key per shard so every shard has committed state to keep.
	keyFor := func(s int) []byte {
		for i := 0; ; i++ {
			k := []byte(fmt.Sprintf("key-%d", i))
			if kv.eng.ShardFor(k) == s {
				return k
			}
		}
	}
	for s := 0; s < 4; s++ {
		if err := kv.Put(keyFor(s), []byte("seed")); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("healthy is a no-op", func(t *testing.T) {
		before := make([]ShardInfo, 4)
		for s := 0; s < 4; s++ {
			in, err := kv.ShardStats(s)
			if err != nil {
				t.Fatal(err)
			}
			before[s] = in
		}
		for s := 0; s < 4; s++ {
			if err := kv.Heal(s); err != nil {
				t.Fatalf("Heal(%d) on healthy shard: %v", s, err)
			}
		}
		for s := 0; s < 4; s++ {
			after, err := kv.ShardStats(s)
			if err != nil {
				t.Fatal(err)
			}
			// Recovery replays the log and rebuilds the store, which moves
			// the PM event counters; a no-op moves nothing.
			if after.PM != before[s].PM || after.SimNS != before[s].SimNS {
				t.Fatalf("Heal(%d) on healthy shard did work: before=%+v after=%+v", s, before[s].PM, after.PM)
			}
		}
	})

	t.Run("degraded shard heals in place", func(t *testing.T) {
		const victim = 2
		vk := keyFor(victim)
		panicNext.Store(victim)
		if err := kv.Put(vk, []byte("doomed")); !errors.Is(err, ErrShardDown) {
			t.Fatalf("write through injected fault: %v, want ErrShardDown", err)
		}
		in, _ := kv.ShardStats(victim)
		if in.Health != shard.Degraded {
			t.Fatalf("victim health = %v, want degraded", in.Health)
		}
		// Other shards keep serving while the victim is down.
		if err := kv.Put(keyFor(victim+1), []byte("alive")); err != nil {
			t.Fatalf("healthy shard during degrade: %v", err)
		}
		if err := kv.Heal(victim); err != nil {
			t.Fatalf("Heal(degraded): %v", err)
		}
		in, _ = kv.ShardStats(victim)
		if in.Health != shard.Healthy {
			t.Fatalf("post-heal health = %v, want healthy", in.Health)
		}
		// The faulted batch was never acknowledged, so the seed survives
		// and new writes land.
		if v, ok, err := kv.Get(vk); err != nil || !ok || string(v) != "seed" {
			t.Fatalf("post-heal read: %q %v %v, want seed", v, ok, err)
		}
		if err := kv.Put(vk, []byte("recovered")); err != nil {
			t.Fatalf("post-heal write: %v", err)
		}
	})

	t.Run("bad index", func(t *testing.T) {
		for _, i := range []int{-1, 4, 99} {
			if err := kv.Heal(i); !errors.Is(err, ErrBadShard) {
				t.Fatalf("Heal(%d) = %v, want ErrBadShard", i, err)
			}
		}
	})
}

// TestHealSingleStore pins Heal(0) on a single store: nil no-op while
// healthy, equivalent to ReopenKV after Crash.
func TestHealSingleStore(t *testing.T) {
	kv, err := OpenKV(Options{PageSize: 1024, PMReadNS: -1, PMWriteNS: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	if err := kv.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := kv.Heal(0); err != nil {
		t.Fatalf("Heal(0) healthy: %v", err)
	}
	if in, _ := kv.ShardStats(0); in.Health != shard.Healthy {
		t.Fatalf("healthy store reports %v", in.Health)
	}
	kv.Crash(CrashOptions{})
	if in, _ := kv.ShardStats(0); in.Health != shard.Crashed {
		t.Fatalf("crashed store reports %v", in.Health)
	}
	if err := kv.Heal(0); err != nil {
		t.Fatalf("Heal(0) after crash: %v", err)
	}
	if v, ok, err := kv.Get([]byte("k")); err != nil || !ok || string(v) != "v" {
		t.Fatalf("post-heal read: %q %v %v", v, ok, err)
	}
	if in, _ := kv.ShardStats(0); in.Health != shard.Healthy {
		t.Fatalf("healed store reports %v", in.Health)
	}
}
