package fasp

import (
	"errors"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"

	"fasp/internal/fast"
	"fasp/internal/obsv"
	"fasp/internal/pager"
	"fasp/internal/pmem"
	"fasp/internal/shard"
	"fasp/internal/wal"
)

// ErrBadShard reports a shard index outside [0, Shards()) passed to a
// per-shard accessor (ShardStats, ShardSystem, ShardStore, ShardScan,
// Heal). On a single store only index 0 is valid — it aliases the whole
// store, which is its own only shard.
var ErrBadShard = errors.New("fasp: shard index out of range")

// ErrClosed reports a write operation submitted to a KV after Close.
var ErrClosed = shard.ErrClosed

// Metrics is a KV's observability snapshot: per-op latency distributions
// (wall and simulated ns), commit-path event totals, group-commit batch
// shape, and slow-op counts. See KV.Metrics.
type Metrics = obsv.Snapshot

// OpMetrics is one op kind's latency summary inside Metrics.
type OpMetrics = obsv.OpStats

// TraceSample is one sampled transaction: latency pair plus its full
// commit-path event counts. See KV.TraceSample and KV.SlowOps.
type TraceSample = obsv.TraceSample

// newRecorder builds the obsv recorder OpenKV wires through the store
// (nil when metrics are disabled — every hook is nil-safe, so disabled
// metrics cost one pointer test per operation).
func newRecorder(opts Options) *obsv.Recorder {
	if opts.DisableMetrics {
		return nil
	}
	return obsv.New(obsv.Config{
		SampleEvery: opts.MetricsSampleEvery,
		SlowOpNS:    opts.SlowOpNS,
	})
}

// storeCounters bridges the simulated machine's existing commit-path
// counters into one obsv.Counters snapshot: clflush and fences from the
// PM layer, HTM commits/aborts and slot-header log appends from the
// FAST/FAST+ store, WAL frames and checkpoints from the baselines. The
// events are counted once, where they happen — the observability layer
// only reads the deltas between two snapshots. Allocation-free.
func storeCounters(sys *pmem.System, arena *pmem.Arena, st pager.Store) obsv.Counters {
	c := obsv.Counters{
		Flush: arena.Stats().FlushCalls,
		Fence: sys.Fences(),
	}
	switch s := st.(type) {
	case *fast.Store:
		h := s.HTMStats()
		c.HTMCommit = h.Commits
		c.HTMAbort = h.CapacityAborts + h.ExplicitAborts + h.SpuriousAborts
		fs := s.Stats()
		c.LogAppend = fs.LoggedFrames
		c.Checkpoint = fs.LogCommits
		c.SingleLeaf = fs.SingleLeaf
	case *wal.Store:
		ws := s.Stats()
		c.LogAppend = ws.WALFrames
		c.Checkpoint = ws.Checkpoints
		c.SingleLeaf = ws.SingleLeaf
	}
	return c
}

// beginOp opens an observation span on a single store. Callers hold kv.mu
// (the span reads the simulated clock and the store's counters).
func (kv *KV) beginOp() obsv.Span {
	if kv.rec == nil {
		return obsv.Span{}
	}
	return kv.rec.Begin(kv.sys.Clock().Now(), storeCounters(kv.sys, kv.arena, kv.store))
}

// endOp closes a single-store span as one operation.
func (kv *KV) endOp(sp obsv.Span, op obsv.Op) {
	if kv.rec == nil {
		return
	}
	kv.rec.End(sp, op, 0, kv.sys.Clock().Now(), storeCounters(kv.sys, kv.arena, kv.store))
}

// Metrics returns the store's observability snapshot. It is a cold-path
// aggregation (allocates); the underlying recording is lock-free and
// allocation-free. A store opened with DisableMetrics returns a zero
// snapshot.
func (kv *KV) Metrics() Metrics { return kv.rec.Snapshot() }

// TraceSample returns the sampled-transaction ring (every Nth transaction
// plus every slow one), oldest first — the full commit-path event counts
// of each sampled transaction.
func (kv *KV) TraceSample() []TraceSample { return kv.rec.TraceSamples() }

// SlowOps returns the slow-op log: every operation over Options.SlowOpNS,
// oldest first, bounded by the ring size.
func (kv *KV) SlowOps() []TraceSample { return kv.rec.SlowSamples() }

// shardGauges builds the per-shard exporter gauges (one entry for a
// single store).
func (kv *KV) shardGauges() []obsv.ShardGauge {
	if kv.eng != nil {
		return kv.eng.Gauges()
	}
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return []obsv.ShardGauge{{
		Shard:         0,
		Health:        shard.Healthy.String(),
		Ops:           int64(kv.rec.Seen()),
		SimNS:         kv.sys.Clock().Now(),
		Flushes:       kv.arena.Stats().FlushCalls,
		Fences:        kv.sys.Fences(),
		Scheme:        strings.ToLower(kv.store.Name()),
		Fragmentation: -1,
		MaxBatch:      kv.opts.MaxBatch,
	}}
}

// Registry of live KVs for the exporter. OpenKV registers, Close
// unregisters; ServeMetrics renders every registered store.
var (
	regMu     sync.Mutex
	regSeq    int
	regKVs    = map[string]*KV{}
	regSrcSeq int
	regSrcs   = map[int]func(io.Writer){}

	expvarOnce sync.Once
)

// RegisterPromSource adds an extra producer to the /metrics endpoint:
// fn is invoked on every scrape, after the KV sections, and must write
// Prometheus text exposition. Subsystems layered on top of the store (the
// network server) export through it without the facade knowing their
// metric set. The returned function unregisters.
func RegisterPromSource(fn func(io.Writer)) (unregister func()) {
	regMu.Lock()
	defer regMu.Unlock()
	id := regSrcSeq
	regSrcSeq++
	regSrcs[id] = fn
	return func() {
		regMu.Lock()
		defer regMu.Unlock()
		delete(regSrcs, id)
	}
}

// promSources snapshots the registered extra producers in a stable order.
func promSources() []func(io.Writer) {
	regMu.Lock()
	defer regMu.Unlock()
	ids := make([]int, 0, len(regSrcs))
	for id := range regSrcs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	fns := make([]func(io.Writer), 0, len(ids))
	for _, id := range ids {
		fns = append(fns, regSrcs[id])
	}
	return fns
}

func registerKV(kv *KV) {
	regMu.Lock()
	defer regMu.Unlock()
	kv.regName = fmt.Sprintf("kv%d", regSeq)
	regSeq++
	regKVs[kv.regName] = kv
}

func unregisterKV(kv *KV) {
	regMu.Lock()
	defer regMu.Unlock()
	delete(regKVs, kv.regName)
}

// registeredKVs snapshots the registry in a stable order.
func registeredKVs() (names []string, kvs []*KV) {
	regMu.Lock()
	defer regMu.Unlock()
	for name := range regKVs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		kvs = append(kvs, regKVs[name])
	}
	return names, kvs
}

// MetricsServer is a running metrics endpoint; see ServeMetrics.
type MetricsServer struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound listen address (useful with ":0").
func (m *MetricsServer) Addr() string { return m.ln.Addr().String() }

// Close shuts the endpoint down.
func (m *MetricsServer) Close() error { return m.srv.Close() }

// ServeMetrics starts an HTTP metrics endpoint on addr serving every KV
// opened by this process (and not yet closed):
//
//	/metrics     Prometheus text format: per-op latency quantiles (wall
//	             and simulated), commit-path event totals, batch-size and
//	             mailbox-depth histograms, per-shard health/throughput.
//	/debug/vars  expvar JSON; the "fasp" variable holds each store's full
//	             Metrics snapshot.
//
// Pass ":0" to bind an ephemeral port (Addr reports it). The returned
// server runs until Close.
func ServeMetrics(addr string) (*MetricsServer, error) {
	return serveMetrics(addr, false)
}

// ServeMetricsPprof is ServeMetrics plus the net/http/pprof profiling
// handlers under /debug/pprof/ (CPU, heap, goroutine, mutex, block,
// trace). Profiling exposure is opt-in per endpoint: plain ServeMetrics
// never mounts these handlers.
func ServeMetricsPprof(addr string) (*MetricsServer, error) {
	return serveMetrics(addr, true)
}

func serveMetrics(addr string, withPprof bool) (*MetricsServer, error) {
	expvarOnce.Do(func() {
		expvar.Publish("fasp", expvar.Func(func() any {
			names, kvs := registeredKVs()
			out := make(map[string]Metrics, len(kvs))
			for i, kv := range kvs {
				out[names[i]] = kv.Metrics()
			}
			return out
		}))
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fasp: metrics listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		names, kvs := registeredKVs()
		for i, kv := range kvs {
			obsv.WritePrometheus(w, names[i], kv.Metrics(), kv.shardGauges())
		}
		for _, fn := range promSources() {
			fn(w)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return &MetricsServer{ln: ln, srv: srv}, nil
}
