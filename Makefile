GO ?= go
N  ?= 20000

.PHONY: all build vet test race crashx obsv bench bench-json readbench phasebench serverbench chaos clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Exhaustive crash-schedule exploration with nested recovery crashes, the
# CI smoke configuration; run with BUDGET=0 for full enumeration.
BUDGET ?= 60
crashx:
	$(GO) run ./cmd/crashtest -exhaustive -nested -budget $(BUDGET) -samples 30 -nested-budget 12 -nested-samples 6 -scheme fast+ -txns 12
	$(GO) run ./cmd/crashtest -exhaustive -nested -budget $(BUDGET) -samples 30 -nested-budget 12 -nested-samples 6 -scheme fast -txns 12

# Observability smoke: vet, the obsv + facade metrics tests, then a
# sharded bench run that serves /metrics, self-scrapes once and validates
# the Prometheus text exposition.
obsv:
	$(GO) vet ./...
	$(GO) test ./internal/obsv/ .
	$(GO) run ./cmd/faspbench -benchjson - -n 2000 -shards 4 -clients 4 -metrics-addr 127.0.0.1:0 -scrape > /dev/null

# Go-benchmark view (wall clock + simulated metrics + allocs).
bench:
	$(GO) test -bench 'BenchmarkInsert|BenchmarkGet' -benchmem -run '^$$' .

# Machine-readable wall-clock trajectory: ns/op and allocs/op for insert and
# search across all five schemes, plus the sharded-engine series (wall-clock
# and simulated-parallel throughput for shards=1 vs SHARDS). Set BASELINE to
# a previous report to embed per-scheme speedup ratios.
SHARDS  ?= 8
CLIENTS ?= 8
bench-json:
	$(GO) run ./cmd/faspbench -benchjson BENCH_PR2.json $(if $(BASELINE),-baseline $(BASELINE)) -n $(N) -shards $(SHARDS) -clients $(CLIENTS)

# Read-scaling series: mixed read/write workload swept over reader counts
# and read fractions, optimistic vs locked arms, plus the single-reader
# latency-parity check (see DESIGN.md §10).
READERS  ?= 1,2,4,8
READFRAC ?= 0.5,0.95
readbench:
	$(GO) run ./cmd/faspbench -readbench BENCH_PR5.json -n $(N) -readers $(READERS) -readfrac $(READFRAC)

# Adaptive-vs-pinned phase benchmark: one three-phase workload (insert-,
# update-, scan-heavy) through the adaptive controller (warm and cold
# start) and the three pinned schemes it chooses between (see DESIGN.md
# §11). Simulated time only — the report is byte-reproducible.
phasebench:
	$(GO) run ./cmd/faspbench -phasebench BENCH_PR6.json -n $(N)

# Network-server benchmark: four loadgen arms (1 sync connection,
# SB_CONNS pipelined connections on the per-shard commit pipelines, the
# same workload on the global-batcher fallback as the A/B control, and
# overload against a tiny in-flight gate) against an in-process
# faspserver, with a /metrics self-scrape validated through
# ValidatePrometheus. -sb-strict turns a missed acceptance target (≥4x
# simulated speedup vs 1 conn, ≥1.5x pipelined vs global, per-shard
# coalesce width > 1, BUSY shedding with zero dropped connections) into
# a non-zero exit; see DESIGN.md §12/§14 for the accounting.
SB_CONNS ?= 256
SB_DUR   ?= 2s
serverbench:
	$(GO) run ./cmd/faspbench -serverbench BENCH_PR10.json -sb-conns $(SB_CONNS) -sb-dur $(SB_DUR) -metrics-addr 127.0.0.1:0 -scrape -sb-strict

# Chaos soak: the -race in-process soak test, then the standalone harness —
# a faspserver under a seeded storm of connection kills, torn frames,
# stalls, injected shard-writer panics and whole-server crash-restarts,
# driven by retrying clients, audited by the acked-prefix oracle after a
# final crash recovery. A failure prints the replayable faultx spec; replay
# it with CHAOS_SPEC=fx:1:<seed>:<kill>:<torn>:<stall>:<stallms>:<panic>:<restarts>.
CHAOS_DUR  ?= 3s
CHAOS_SPEC ?= fx:1:42:0.03:0.02:0.005:2:0.004:2
chaos:
	$(GO) test -race -run TestChaosSoak ./internal/server/
	$(GO) run ./cmd/faspbench -chaos - -chaos-spec "$(CHAOS_SPEC)" -chaos-dur $(CHAOS_DUR) > /dev/null

clean:
	rm -f BENCH_PR1.json BENCH_PR2.json BENCH_PR5.json BENCH_PR6.json BENCH_PR7.json BENCH_PR10.json
