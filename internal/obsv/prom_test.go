package obsv

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the exporter golden file")

// fixedSnapshot builds a fully deterministic snapshot (no wall clocks
// involved — histograms are filled directly).
func fixedSnapshot() (Snapshot, []ShardGauge) {
	var batch, mail, flush, fence Histogram
	for i := int64(1); i <= 16; i++ {
		batch.Observe(i)
	}
	mail.Observe(0)
	mail.Observe(3)
	flush.Observe(4)
	flush.Observe(6)
	fence.Observe(2)
	fence.Observe(2)
	snap := Snapshot{
		Ops: []OpStats{
			{Op: "put", Count: 100, WallP50NS: 900, WallP95NS: 4000, WallP99NS: 9000, WallMeanNS: 1500,
				SimP50NS: 1200, SimP95NS: 2400, SimP99NS: 3000, SimMeanNS: 1300},
			{Op: "get", Count: 50, WallP50NS: 300, WallP95NS: 700, WallP99NS: 800, WallMeanNS: 400,
				SimP50NS: 600, SimP95NS: 900, SimP99NS: 950, SimMeanNS: 650},
		},
		Events:    Counters{Flush: 10, Fence: 4, HTMCommit: 90, HTMAbort: 2, LogAppend: 12, Checkpoint: 1},
		Batches:   9,
		SlowOps:   1,
		Seen:      159,
		BatchSize: batch.Snapshot(),
		MailDepth: mail.Snapshot(),
		FlushPer:  flush.Snapshot(),
		FencePer:  fence.Snapshot(),
	}
	gauges := []ShardGauge{
		{Shard: 0, Health: "healthy", Ops: 60, Batches: 5, SimNS: 120000, Flushes: 6, Fences: 2},
		{Shard: 1, Health: "degraded", Ops: 40, Batches: 4, SimNS: 110000, Flushes: 4, Fences: 2},
	}
	return snap, gauges
}

func TestWritePrometheusGolden(t *testing.T) {
	snap, gauges := fixedSnapshot()
	var buf bytes.Buffer
	WritePrometheus(&buf, "kv0", snap, gauges)

	path := filepath.Join("testdata", "prom.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exporter output drifted from golden (run with -update to accept):\n--- got ---\n%s", buf.String())
	}
}

func TestWritePrometheusValidates(t *testing.T) {
	snap, gauges := fixedSnapshot()
	var buf bytes.Buffer
	WritePrometheus(&buf, "kv0", snap, gauges)
	if err := ValidatePrometheus(buf.Bytes()); err != nil {
		t.Fatalf("own exposition does not validate: %v", err)
	}
	// The degraded shard must export as down.
	if !strings.Contains(buf.String(), `fasp_shard_healthy{store="kv0",shard="1"} 0`) {
		t.Error("degraded shard not exported as unhealthy")
	}
	if !strings.Contains(buf.String(), `fasp_shard_healthy{store="kv0",shard="0"} 1`) {
		t.Error("healthy shard not exported as up")
	}
	// Cumulative histogram: the +Inf bucket equals the count.
	if !strings.Contains(buf.String(), `fasp_batch_size_bucket{store="kv0",le="+Inf"} 16`) {
		t.Error("+Inf bucket missing or wrong")
	}
	// No shard section for a single store.
	var single bytes.Buffer
	WritePrometheus(&single, "kv0", snap, nil)
	if strings.Contains(single.String(), "fasp_shard_ops_total") {
		t.Error("shard series emitted without gauges")
	}
	if err := ValidatePrometheus(single.Bytes()); err != nil {
		t.Fatalf("single-store exposition invalid: %v", err)
	}
}

func TestValidatePrometheusRejects(t *testing.T) {
	cases := []string{
		"",                                  // no samples at all
		"# HELP only comments\n",            // comments but no samples
		"fasp_ops_total{op=\"put\"} nope\n", // non-numeric value
		"fasp_ops_total{op='put'} 1\n",      // bad label quoting
		"{} 1\n",                            // missing metric name
		"fasp ops 1\n",                      // space in name
	}
	for _, c := range cases {
		if err := ValidatePrometheus([]byte(c)); err == nil {
			t.Errorf("ValidatePrometheus(%q) accepted malformed input", c)
		}
	}
	good := "fasp_ops_total{store=\"kv0\",op=\"put\"} 42\nfasp_up 1\n"
	if err := ValidatePrometheus([]byte(good)); err != nil {
		t.Errorf("ValidatePrometheus rejected well-formed input: %v", err)
	}
}
