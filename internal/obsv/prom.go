package obsv

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// ShardGauge is one shard's health/throughput gauge set for the exporter.
// The facade fills it from the engine's per-shard state (or from the
// single store, as shard 0).
type ShardGauge struct {
	Shard   int
	Health  string
	Ops     int64
	Batches int64
	SimNS   int64
	Flushes int64
	Fences  int64
	// Scheme is the shard's live commit scheme name ("" when unknown);
	// under adaptive tuning it may differ from the configured scheme.
	Scheme string
	// Fragmentation is the shard's committed-tree leaf fragmentation ratio
	// (dead bytes / cell area) in [0,1]; -1 when not measured.
	Fragmentation float64
	// MaxBatch is the shard's live group-commit drain bound.
	MaxBatch int
}

// eventNames labels Counters fields for the events_total metric, in the
// same order as Recorder.events.
var eventNames = [...]string{"clflush", "fence", "htm_commit", "htm_abort", "log_append", "checkpoint", "single_leaf"}

func (c Counters) byIndex(i int) int64 {
	switch i {
	case 0:
		return c.Flush
	case 1:
		return c.Fence
	case 2:
		return c.HTMCommit
	case 3:
		return c.HTMAbort
	case 4:
		return c.LogAppend
	case 5:
		return c.Checkpoint
	case 6:
		return c.SingleLeaf
	}
	return 0
}

// WritePrometheus renders one store's snapshot and shard gauges in the
// Prometheus text exposition format (version 0.0.4). Quantiles are
// exported as gauges (they come from the mergeable log-bucket histograms);
// batch-size and mailbox-depth distributions are exported as native
// Prometheus histograms with power-of-two le bounds.
func WritePrometheus(w io.Writer, store string, snap Snapshot, shards []ShardGauge) {
	fmt.Fprintf(w, "# HELP fasp_ops_total Operations observed, by kind.\n# TYPE fasp_ops_total counter\n")
	for _, o := range snap.Ops {
		fmt.Fprintf(w, "fasp_ops_total{store=%q,op=%q} %d\n", store, o.Op, o.Count)
	}

	fmt.Fprintf(w, "# HELP fasp_op_wall_ns Wall-clock latency quantiles per op kind.\n# TYPE fasp_op_wall_ns gauge\n")
	for _, o := range snap.Ops {
		fmt.Fprintf(w, "fasp_op_wall_ns{store=%q,op=%q,quantile=\"0.5\"} %d\n", store, o.Op, o.WallP50NS)
		fmt.Fprintf(w, "fasp_op_wall_ns{store=%q,op=%q,quantile=\"0.95\"} %d\n", store, o.Op, o.WallP95NS)
		fmt.Fprintf(w, "fasp_op_wall_ns{store=%q,op=%q,quantile=\"0.99\"} %d\n", store, o.Op, o.WallP99NS)
	}

	fmt.Fprintf(w, "# HELP fasp_op_sim_ns Simulated-time latency quantiles per op kind.\n# TYPE fasp_op_sim_ns gauge\n")
	for _, o := range snap.Ops {
		fmt.Fprintf(w, "fasp_op_sim_ns{store=%q,op=%q,quantile=\"0.5\"} %d\n", store, o.Op, o.SimP50NS)
		fmt.Fprintf(w, "fasp_op_sim_ns{store=%q,op=%q,quantile=\"0.95\"} %d\n", store, o.Op, o.SimP95NS)
		fmt.Fprintf(w, "fasp_op_sim_ns{store=%q,op=%q,quantile=\"0.99\"} %d\n", store, o.Op, o.SimP99NS)
	}

	fmt.Fprintf(w, "# HELP fasp_events_total Commit-path architectural events.\n# TYPE fasp_events_total counter\n")
	for i, name := range eventNames {
		fmt.Fprintf(w, "fasp_events_total{store=%q,event=%q} %d\n", store, name, snap.Events.byIndex(i))
	}

	fmt.Fprintf(w, "# HELP fasp_batches_total Group-commit transactions.\n# TYPE fasp_batches_total counter\n")
	fmt.Fprintf(w, "fasp_batches_total{store=%q} %d\n", store, snap.Batches)
	fmt.Fprintf(w, "# HELP fasp_slow_ops_total Operations over the slow-op threshold.\n# TYPE fasp_slow_ops_total counter\n")
	fmt.Fprintf(w, "fasp_slow_ops_total{store=%q} %d\n", store, snap.SlowOps)

	fmt.Fprintf(w, "# HELP fasp_get_reads_total Get operations by read path.\n# TYPE fasp_get_reads_total counter\n")
	fmt.Fprintf(w, "fasp_get_reads_total{store=%q,path=\"optimistic\"} %d\n", store, snap.GetOptimistic)
	fmt.Fprintf(w, "fasp_get_reads_total{store=%q,path=\"locked\"} %d\n", store, snap.GetLocked)
	fmt.Fprintf(w, "# HELP fasp_get_retries_total Epoch-acquisition retries on the optimistic Get path.\n# TYPE fasp_get_retries_total counter\n")
	fmt.Fprintf(w, "fasp_get_retries_total{store=%q} %d\n", store, snap.GetRetries)

	writeHist(w, "fasp_batch_size", "Operations per group commit.", store, snap.BatchSize)
	writeHist(w, "fasp_mailbox_depth", "Queued requests at mailbox drain.", store, snap.MailDepth)
	writeHist(w, "fasp_clflush_per_txn", "clflush instructions per transaction.", store, snap.FlushPer)
	writeHist(w, "fasp_fence_per_txn", "Memory fences per transaction.", store, snap.FencePer)
	writeHist(w, "fasp_scan_fanout", "Shard cursors per engine scan.", store, snap.ScanFanout)

	if len(shards) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP fasp_shard_ops_total Operations applied per shard.\n# TYPE fasp_shard_ops_total counter\n")
	for _, g := range shards {
		fmt.Fprintf(w, "fasp_shard_ops_total{store=%q,shard=\"%d\"} %d\n", store, g.Shard, g.Ops)
	}
	fmt.Fprintf(w, "# HELP fasp_shard_batches_total Group commits per shard.\n# TYPE fasp_shard_batches_total counter\n")
	for _, g := range shards {
		fmt.Fprintf(w, "fasp_shard_batches_total{store=%q,shard=\"%d\"} %d\n", store, g.Shard, g.Batches)
	}
	fmt.Fprintf(w, "# HELP fasp_shard_sim_ns Simulated clock per shard.\n# TYPE fasp_shard_sim_ns gauge\n")
	for _, g := range shards {
		fmt.Fprintf(w, "fasp_shard_sim_ns{store=%q,shard=\"%d\"} %d\n", store, g.Shard, g.SimNS)
	}
	fmt.Fprintf(w, "# HELP fasp_shard_flushes_total clflush instructions per shard.\n# TYPE fasp_shard_flushes_total counter\n")
	for _, g := range shards {
		fmt.Fprintf(w, "fasp_shard_flushes_total{store=%q,shard=\"%d\"} %d\n", store, g.Shard, g.Flushes)
	}
	fmt.Fprintf(w, "# HELP fasp_shard_fences_total Memory fences per shard.\n# TYPE fasp_shard_fences_total counter\n")
	for _, g := range shards {
		fmt.Fprintf(w, "fasp_shard_fences_total{store=%q,shard=\"%d\"} %d\n", store, g.Shard, g.Fences)
	}
	fmt.Fprintf(w, "# HELP fasp_shard_healthy Shard serving state (1 healthy, 0 crashed/degraded).\n# TYPE fasp_shard_healthy gauge\n")
	for _, g := range shards {
		up := 0
		if g.Health == "healthy" {
			up = 1
		}
		fmt.Fprintf(w, "fasp_shard_healthy{store=%q,shard=\"%d\"} %d\n", store, g.Shard, up)
	}
	fmt.Fprintf(w, "# HELP fasp_shard_fragmentation_ratio Committed-tree leaf fragmentation (dead bytes / cell area); -1 when unmeasured.\n# TYPE fasp_shard_fragmentation_ratio gauge\n")
	for _, g := range shards {
		fmt.Fprintf(w, "fasp_shard_fragmentation_ratio{store=%q,shard=\"%d\"} %g\n", store, g.Shard, g.Fragmentation)
	}
	fmt.Fprintf(w, "# HELP fasp_shard_scheme Live commit scheme per shard (1 for the active scheme label).\n# TYPE fasp_shard_scheme gauge\n")
	for _, g := range shards {
		if g.Scheme == "" {
			continue
		}
		fmt.Fprintf(w, "fasp_shard_scheme{store=%q,shard=\"%d\",scheme=%q} 1\n", store, g.Shard, g.Scheme)
	}
	fmt.Fprintf(w, "# HELP fasp_shard_max_batch Live group-commit drain bound per shard.\n# TYPE fasp_shard_max_batch gauge\n")
	for _, g := range shards {
		fmt.Fprintf(w, "fasp_shard_max_batch{store=%q,shard=\"%d\"} %d\n", store, g.Shard, g.MaxBatch)
	}
}

// writeHist renders one HistSnapshot as a Prometheus histogram with
// cumulative power-of-two buckets, labelled store="..." (writeHistAs
// chooses the label).
func writeHist(w io.Writer, name, help, store string, h HistSnapshot) {
	writeHistAs(w, name, help, "store", store, h)
}

// writeHistAs is writeHist with a caller-chosen label name, so server-side
// histograms can carry server="..." instead of store="...".
func writeHistAs(w io.Writer, name, help, label, val string, h HistSnapshot) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	last := -1
	for b := range h.Counts {
		if h.Counts[b] != 0 {
			last = b
		}
	}
	var cum int64
	for b := 0; b <= last; b++ {
		cum += h.Counts[b]
		fmt.Fprintf(w, "%s_bucket{%s=%q,le=\"%d\"} %d\n", name, label, val, BucketUpper(b), cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s=%q,le=\"+Inf\"} %d\n", name, label, val, h.Count)
	fmt.Fprintf(w, "%s_sum{%s=%q} %d\n", name, label, val, h.Sum)
	fmt.Fprintf(w, "%s_count{%s=%q} %d\n", name, label, val, h.Count)
}

var (
	promSample = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})?\s+(\S+)$`)
	promLabels = regexp.MustCompile(`^\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\}$`)
)

// ValidatePrometheus parses a text-format exposition and reports the first
// malformed line (or an empty exposition). It checks line syntax, label
// syntax, and numeric sample values — enough for the CI smoke step to
// assert a scrape is well-formed without a Prometheus dependency.
func ValidatePrometheus(data []byte) error {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	samples := 0
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		m := promSample.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("obsv: line %d: malformed sample %q", lineNo, line)
		}
		if m[2] != "" && !promLabels.MatchString(m[2]) {
			return fmt.Errorf("obsv: line %d: malformed labels %q", lineNo, m[2])
		}
		if _, err := strconv.ParseFloat(m[3], 64); err != nil {
			return fmt.Errorf("obsv: line %d: bad value %q", lineNo, m[3])
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return errors.New("obsv: exposition contains no samples")
	}
	return nil
}
