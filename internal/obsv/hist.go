// Package obsv is the runtime observability layer: lock-free log-bucketed
// latency histograms (wall-clock and simulated ns), commit-path event
// tracing (per-transaction clflush / fence / HTM / log-append /
// checkpoint counts), group-commit batch-size and mailbox-depth
// distributions, and a slow-op log — all allocation-free on the hot path
// and safe for concurrent writers.
//
// The package deliberately imports nothing from the rest of the repo. The
// simulated machine already counts every architectural event
// (pmem.Stats, htm.Stats, the schemes' commit counters); the facade
// bridges those counters into Counters snapshots and this package only
// observes the *deltas* — events are counted once, where they happen.
package obsv

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// NumBuckets is the histogram bucket count: one per power of two, which
// covers the full int64 range. Bucket 0 holds values ≤ 0; bucket b ≥ 1
// holds [2^(b-1), 2^b - 1].
const NumBuckets = 64

// bucketOf maps a value to its log2 bucket.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b > NumBuckets-1 {
		return NumBuckets - 1
	}
	return b
}

// BucketLower returns bucket b's smallest representable value.
func BucketLower(b int) int64 {
	if b <= 0 {
		return 0
	}
	return int64(1) << (b - 1)
}

// BucketUpper returns bucket b's largest representable value.
func BucketUpper(b int) int64 {
	if b <= 0 {
		return 0
	}
	if b >= 63 {
		return math.MaxInt64
	}
	return int64(1)<<b - 1
}

// Histogram is a lock-free log-bucketed distribution. Observe is wait-free
// (two atomic adds) and allocation-free; concurrent writers merge by
// construction. The zero value is ready to use.
type Histogram struct {
	counts [NumBuckets]atomic.Int64
	sum    atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.counts[bucketOf(v)].Add(1)
	h.sum.Add(v)
}

// Snapshot copies the histogram's current state. The copy is not a
// consistent point-in-time cut under concurrent writers, but every
// observation lands in exactly one snapshot eventually — good enough for
// monitoring, and exact once writers quiesce.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for b := range h.counts {
		c := h.counts[b].Load()
		s.Counts[b] = c
		s.Count += c
	}
	s.Sum = h.sum.Load()
	return s
}

// HistSnapshot is an immutable histogram state: mergeable across shards
// (or processes) and queryable for quantiles.
type HistSnapshot struct {
	Counts [NumBuckets]int64 `json:"-"`
	Count  int64             `json:"count"`
	Sum    int64             `json:"sum"`
}

// Merge accumulates o into s.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	for b := range s.Counts {
		s.Counts[b] += o.Counts[b]
	}
	s.Count += o.Count
	s.Sum += o.Sum
}

// Mean returns the exact mean of the observed values (the sum is tracked
// exactly; only the distribution is bucketed). An empty snapshot is 0.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an estimate of the q-quantile (q in [0, 1]), linearly
// interpolated within the winning bucket. An empty snapshot returns 0.
// The estimate's error is bounded by the bucket width (a factor of 2).
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	// 1-based rank of the target observation.
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for b := range s.Counts {
		c := s.Counts[b]
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo, hi := BucketLower(b), BucketUpper(b)
			// Position of the target within this bucket, in (0, 1].
			frac := float64(rank-cum) / float64(c)
			return lo + int64(frac*float64(hi-lo))
		}
		cum += c
	}
	// Unreachable when Count matches Counts; be defensive.
	return BucketUpper(NumBuckets - 1)
}
