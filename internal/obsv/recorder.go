package obsv

import (
	"sync"
	"sync/atomic"
	"time"
)

// Op classifies an observed operation.
type Op uint8

const (
	// OpPut .. OpDelete mirror the store's mutation kinds.
	OpPut Op = iota
	OpInsert
	OpUpdate
	OpDelete
	// OpGet and OpScan are read operations (no commit-path events).
	OpGet
	OpScan
	// OpBatch is one group-commit transaction (a drained mailbox batch or
	// an ApplyBatch chunk); its event deltas are per transaction.
	OpBatch

	numOps
)

func (o Op) String() string {
	switch o {
	case OpPut:
		return "put"
	case OpInsert:
		return "insert"
	case OpUpdate:
		return "update"
	case OpDelete:
		return "delete"
	case OpGet:
		return "get"
	case OpScan:
		return "scan"
	case OpBatch:
		return "batch"
	}
	return "unknown"
}

// mutation reports whether o carries commit-path events (one transaction's
// worth for OpPut..OpDelete, one group commit's worth for OpBatch).
func (o Op) mutation() bool { return o <= OpDelete || o == OpBatch }

// Counters is a point-in-time snapshot of the commit path's architectural
// event counters. The facade reads them from the simulated machine's
// existing counters (pmem / htm / scheme stats) — this package never
// counts events itself, it observes deltas between two snapshots.
type Counters struct {
	Flush      int64 `json:"clflush"`
	Fence      int64 `json:"fence"`
	HTMCommit  int64 `json:"htm_commit"`
	HTMAbort   int64 `json:"htm_abort"`
	LogAppend  int64 `json:"log_append"`
	Checkpoint int64 `json:"checkpoint"`
	// SingleLeaf counts commits whose write set was a single leaf page —
	// the FAST+ in-place-eligible shape, counted under every scheme. The
	// adaptive controller's scheme rule reads its windowed ratio.
	SingleLeaf int64 `json:"single_leaf"`
}

// Sub returns c - o, the events between two snapshots.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		Flush:      c.Flush - o.Flush,
		Fence:      c.Fence - o.Fence,
		HTMCommit:  c.HTMCommit - o.HTMCommit,
		HTMAbort:   c.HTMAbort - o.HTMAbort,
		LogAppend:  c.LogAppend - o.LogAppend,
		Checkpoint: c.Checkpoint - o.Checkpoint,
		SingleLeaf: c.SingleLeaf - o.SingleLeaf,
	}
}

// Add returns c + o.
func (c Counters) Add(o Counters) Counters {
	return Counters{
		Flush:      c.Flush + o.Flush,
		Fence:      c.Fence + o.Fence,
		HTMCommit:  c.HTMCommit + o.HTMCommit,
		HTMAbort:   c.HTMAbort + o.HTMAbort,
		LogAppend:  c.LogAppend + o.LogAppend,
		Checkpoint: c.Checkpoint + o.Checkpoint,
		SingleLeaf: c.SingleLeaf + o.SingleLeaf,
	}
}

// Config tunes a Recorder.
type Config struct {
	// SampleEvery samples every Nth transaction's full event counts into
	// the trace ring (default 64; 1 samples everything).
	SampleEvery int
	// SlowOpNS is the wall-clock threshold above which an operation is
	// logged in the slow-op ring regardless of sampling (default 1 ms).
	SlowOpNS int64
	// RingSize bounds the trace and slow-op rings (default 256 each).
	RingSize int
}

func (c *Config) fill() {
	if c.SampleEvery <= 0 {
		c.SampleEvery = 64
	}
	if c.SlowOpNS <= 0 {
		c.SlowOpNS = int64(time.Millisecond)
	}
	if c.RingSize <= 0 {
		c.RingSize = 256
	}
}

// TraceSample is one sampled transaction: its latency pair and the full
// commit-path event counts it incurred. Samples land in a fixed ring, so
// the hot path never allocates.
type TraceSample struct {
	Seq    uint64   `json:"seq"`
	Op     string   `json:"op"`
	Shard  int32    `json:"shard"`
	Ops    int32    `json:"ops"`
	Slow   bool     `json:"slow,omitempty"`
	WallNS int64    `json:"wall_ns"`
	SimNS  int64    `json:"sim_ns"`
	Events Counters `json:"events"`
}

// Span is an in-flight observation: the wall start time and the simulated
// clock / event-counter snapshots taken at Begin. It is a small value —
// callers keep it on the stack, so Begin/End allocate nothing.
type Span struct {
	t0   time.Time
	sim0 int64
	ev0  Counters
	on   bool
}

// Active reports whether the span came from an enabled recorder.
func (sp Span) Active() bool { return sp.on }

// Recorder accumulates one store's observations. All methods are safe for
// concurrent use and are no-ops on a nil receiver, so callers hold a
// single possibly-nil pointer and pay one branch when metrics are off.
type Recorder struct {
	cfg  Config
	wall [numOps]Histogram // wall-clock ns per op
	sim  [numOps]Histogram // simulated ns per op

	// Per-transaction commit-path event distributions (mutations only).
	flushPer Histogram
	fencePer Histogram

	// Group-commit shape.
	batchSize Histogram
	mailDepth Histogram

	// Read-path shape: optimistic vs locked Get outcomes, epoch-acquisition
	// retries, and per-engine-scan fan-out (shard cursors launched).
	getOptimistic atomic.Int64
	getLocked     atomic.Int64
	getRetries    atomic.Int64
	scanFanout    Histogram

	events  [7]atomic.Int64 // totals, indexed like Counters fields
	batches atomic.Int64
	slows   atomic.Int64
	seq     atomic.Uint64

	mu       sync.Mutex
	ring     []TraceSample
	ringN    uint64 // total samples ever written
	slowRing []TraceSample
	slowN    uint64
}

// New builds a Recorder; rings are allocated once, up front.
func New(cfg Config) *Recorder {
	cfg.fill()
	return &Recorder{
		cfg:      cfg,
		ring:     make([]TraceSample, cfg.RingSize),
		slowRing: make([]TraceSample, cfg.RingSize),
	}
}

// Begin opens a span. sim0 and ev0 are the simulated clock and the
// commit-path counter snapshot at entry (zero values are fine for reads).
func (r *Recorder) Begin(sim0 int64, ev0 Counters) Span {
	if r == nil {
		return Span{}
	}
	return Span{t0: time.Now(), sim0: sim0, ev0: ev0, on: true}
}

// End closes a span as one operation of kind op on the given shard
// (shard is -1 when not applicable). sim1/ev1 are the exit snapshots.
func (r *Recorder) End(sp Span, op Op, shard int32, sim1 int64, ev1 Counters) {
	if r == nil || !sp.on {
		return
	}
	r.observe(op, shard, 1, time.Since(sp.t0).Nanoseconds(), sim1-sp.sim0, ev1.Sub(sp.ev0))
}

// EndBatch closes a span as one group-commit transaction of n operations,
// returning the simulated-time delta so the caller can spread it over the
// batch's ops (0 when the span is inactive).
func (r *Recorder) EndBatch(sp Span, shard int32, n int, sim1 int64, ev1 Counters) int64 {
	if r == nil || !sp.on {
		return 0
	}
	simD := sim1 - sp.sim0
	r.batches.Add(1)
	r.batchSize.Observe(int64(n))
	r.observe(OpBatch, shard, int32(n), time.Since(sp.t0).Nanoseconds(), simD, ev1.Sub(sp.ev0))
	return simD
}

// observe is the shared hot-path sink: histograms, event totals, and
// (sampled or slow) trace capture. Allocation-free.
func (r *Recorder) observe(op Op, shard, n int32, wallNS, simNS int64, ev Counters) {
	r.wall[op].Observe(wallNS)
	r.sim[op].Observe(simNS)
	if op.mutation() {
		r.flushPer.Observe(ev.Flush)
		r.fencePer.Observe(ev.Fence)
		r.addEvents(ev)
	}
	seq := r.seq.Add(1)
	slow := wallNS >= r.cfg.SlowOpNS
	if slow {
		r.slows.Add(1)
	}
	if slow || seq%uint64(r.cfg.SampleEvery) == 0 {
		r.capture(TraceSample{
			Seq: seq, Op: op.String(), Shard: shard, Ops: n,
			Slow: slow, WallNS: wallNS, SimNS: simNS, Events: ev,
		})
	}
}

// ObserveWall records one operation's wall-clock latency without a
// simulated/event span — the sharded submission path, where the client's
// perceived latency (queueing + group commit) is measured at the mailbox
// while the commit path is observed per batch by the writer.
func (r *Recorder) ObserveWall(op Op, shard int32, wallNS int64) {
	if r == nil {
		return
	}
	r.wall[op].Observe(wallNS)
	if wallNS >= r.cfg.SlowOpNS {
		r.slows.Add(1)
		r.capture(TraceSample{
			Seq: r.seq.Add(1), Op: op.String(), Shard: shard, Ops: 1,
			Slow: true, WallNS: wallNS,
		})
	}
}

// ObserveSim records one operation's simulated-time share (a batch's sim
// delta spread over its ops).
func (r *Recorder) ObserveSim(op Op, simNS int64) {
	if r == nil {
		return
	}
	r.sim[op].Observe(simNS)
}

// ObserveMailDepth records a shard mailbox's queued-request depth at drain
// time.
func (r *Recorder) ObserveMailDepth(depth int) {
	if r == nil {
		return
	}
	r.mailDepth.Observe(int64(depth))
}

// ObserveReadPath records one Get's path outcome: whether it completed
// optimistically (epoch-pinned, off the shard lock) or fell back to the
// locked path, and how many epoch-acquisition retries it burned on the way.
func (r *Recorder) ObserveReadPath(optimistic bool, retries int) {
	if r == nil {
		return
	}
	if optimistic {
		r.getOptimistic.Add(1)
	} else {
		r.getLocked.Add(1)
	}
	if retries > 0 {
		r.getRetries.Add(int64(retries))
	}
}

// ObserveScanFanout records how many shard cursors one engine scan fanned
// out to.
func (r *Recorder) ObserveScanFanout(shards int) {
	if r == nil {
		return
	}
	r.scanFanout.Observe(int64(shards))
}

func (r *Recorder) addEvents(ev Counters) {
	r.events[0].Add(ev.Flush)
	r.events[1].Add(ev.Fence)
	r.events[2].Add(ev.HTMCommit)
	r.events[3].Add(ev.HTMAbort)
	r.events[4].Add(ev.LogAppend)
	r.events[5].Add(ev.Checkpoint)
	r.events[6].Add(ev.SingleLeaf)
}

// capture writes a sample into the appropriate ring slot(s).
func (r *Recorder) capture(s TraceSample) {
	r.mu.Lock()
	r.ring[r.ringN%uint64(len(r.ring))] = s
	r.ringN++
	if s.Slow {
		r.slowRing[r.slowN%uint64(len(r.slowRing))] = s
		r.slowN++
	}
	r.mu.Unlock()
}

// drainRing copies a ring oldest-first (cold path).
func drainRing(ring []TraceSample, written uint64) []TraceSample {
	n := written
	if n > uint64(len(ring)) {
		n = uint64(len(ring))
	}
	out := make([]TraceSample, 0, n)
	start := written - n
	for i := uint64(0); i < n; i++ {
		out = append(out, ring[(start+i)%uint64(len(ring))])
	}
	return out
}

// TraceSamples returns the sampled-transaction ring, oldest first.
func (r *Recorder) TraceSamples() []TraceSample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return drainRing(r.ring, r.ringN)
}

// SlowSamples returns the slow-op ring, oldest first.
func (r *Recorder) SlowSamples() []TraceSample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return drainRing(r.slowRing, r.slowN)
}

// OpStats summarises one op kind's latency distributions.
type OpStats struct {
	Op    string `json:"op"`
	Count int64  `json:"count"`

	WallP50NS  int64   `json:"wall_p50_ns"`
	WallP95NS  int64   `json:"wall_p95_ns"`
	WallP99NS  int64   `json:"wall_p99_ns"`
	WallMeanNS float64 `json:"wall_mean_ns"`

	SimP50NS  int64   `json:"sim_p50_ns"`
	SimP95NS  int64   `json:"sim_p95_ns"`
	SimP99NS  int64   `json:"sim_p99_ns"`
	SimMeanNS float64 `json:"sim_mean_ns"`
}

// Snapshot is a Recorder's cold-path summary (allocates; call off the hot
// path).
type Snapshot struct {
	Ops       []OpStats    `json:"ops,omitempty"`
	Events    Counters     `json:"events"`
	Batches   int64        `json:"batches"`
	SlowOps   int64        `json:"slow_ops"`
	Seen      uint64       `json:"seen"` // operations + batches observed
	BatchSize HistSnapshot `json:"batch_size"`
	MailDepth HistSnapshot `json:"mail_depth"`
	FlushPer  HistSnapshot `json:"clflush_per_txn"`
	FencePer  HistSnapshot `json:"fence_per_txn"`

	// Read-path split: Gets served optimistically vs through the shard
	// lock, total epoch-acquisition retries, and engine-scan fan-out.
	GetOptimistic int64        `json:"get_optimistic"`
	GetLocked     int64        `json:"get_locked"`
	GetRetries    int64        `json:"get_retries"`
	ScanFanout    HistSnapshot `json:"scan_fanout"`
}

// OpStats extracts one op's summary from the snapshot (zero if absent).
func (s Snapshot) OpStats(op Op) OpStats {
	for _, o := range s.Ops {
		if o.Op == op.String() {
			return o
		}
	}
	return OpStats{Op: op.String()}
}

// Snapshot summarises the recorder's current state. Nil-safe.
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	s := Snapshot{
		Events: Counters{
			Flush:      r.events[0].Load(),
			Fence:      r.events[1].Load(),
			HTMCommit:  r.events[2].Load(),
			HTMAbort:   r.events[3].Load(),
			LogAppend:  r.events[4].Load(),
			Checkpoint: r.events[5].Load(),
			SingleLeaf: r.events[6].Load(),
		},
		Batches:   r.batches.Load(),
		SlowOps:   r.slows.Load(),
		Seen:      r.seq.Load(),
		BatchSize: r.batchSize.Snapshot(),
		MailDepth: r.mailDepth.Snapshot(),
		FlushPer:  r.flushPer.Snapshot(),
		FencePer:  r.fencePer.Snapshot(),

		GetOptimistic: r.getOptimistic.Load(),
		GetLocked:     r.getLocked.Load(),
		GetRetries:    r.getRetries.Load(),
		ScanFanout:    r.scanFanout.Snapshot(),
	}
	for op := Op(0); op < numOps; op++ {
		w, m := r.wall[op].Snapshot(), r.sim[op].Snapshot()
		if w.Count == 0 && m.Count == 0 {
			continue
		}
		s.Ops = append(s.Ops, OpStats{
			Op:    op.String(),
			Count: w.Count,

			WallP50NS:  w.Quantile(0.50),
			WallP95NS:  w.Quantile(0.95),
			WallP99NS:  w.Quantile(0.99),
			WallMeanNS: w.Mean(),

			SimP50NS:  m.Quantile(0.50),
			SimP95NS:  m.Quantile(0.95),
			SimP99NS:  m.Quantile(0.99),
			SimMeanNS: m.Mean(),
		})
	}
	return s
}

// Seen returns the number of operations and batches observed. Nil-safe.
func (r *Recorder) Seen() uint64 {
	if r == nil {
		return 0
	}
	return r.seq.Load()
}

// WallHist / SimHist expose one op's raw histogram for tests and
// cross-recorder merging. Nil-safe.
func (r *Recorder) WallHist(op Op) HistSnapshot {
	if r == nil {
		return HistSnapshot{}
	}
	return r.wall[op].Snapshot()
}

func (r *Recorder) SimHist(op Op) HistSnapshot {
	if r == nil {
		return HistSnapshot{}
	}
	return r.sim[op].Snapshot()
}
