package obsv

import (
	"math"
	"testing"
)

func TestBucketBounds(t *testing.T) {
	// Every value must land in a bucket whose [lower, upper] range holds it.
	vals := []int64{-5, 0, 1, 2, 3, 4, 7, 8, 100, 1023, 1024, 1 << 40, math.MaxInt64}
	for _, v := range vals {
		b := bucketOf(v)
		lo, hi := BucketLower(b), BucketUpper(b)
		want := v
		if want < 0 {
			want = 0
		}
		if want < lo || want > hi {
			t.Errorf("value %d -> bucket %d [%d, %d]: out of range", v, b, lo, hi)
		}
	}
	if bucketOf(0) != 0 || bucketOf(-1) != 0 {
		t.Error("non-positive values must land in bucket 0")
	}
	if b := bucketOf(math.MaxInt64); b != NumBuckets-1 {
		t.Errorf("MaxInt64 in bucket %d, want %d", b, NumBuckets-1)
	}
}

func TestQuantileEmpty(t *testing.T) {
	var s HistSnapshot
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%g) = %d, want 0", q, got)
		}
	}
	if s.Mean() != 0 {
		t.Errorf("empty Mean = %g, want 0", s.Mean())
	}
}

func TestQuantileSingleBucket(t *testing.T) {
	// All observations identical: every quantile must stay inside the one
	// occupied bucket, and the mean is exact.
	var h Histogram
	const v = 300 // bucket [256, 511]
	for i := 0; i < 1000; i++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 1000 || s.Sum != 300_000 {
		t.Fatalf("count=%d sum=%d", s.Count, s.Sum)
	}
	if m := s.Mean(); m != v {
		t.Errorf("Mean = %g, want %d (sum is tracked exactly)", m, int64(v))
	}
	lo, hi := BucketLower(bucketOf(v)), BucketUpper(bucketOf(v))
	for _, q := range []float64{0, 0.01, 0.5, 0.95, 0.99, 1} {
		got := s.Quantile(q)
		if got < lo || got > hi {
			t.Errorf("Quantile(%g) = %d, outside bucket [%d, %d]", q, got, lo, hi)
		}
	}
}

func TestQuantileMonotonicAndBounded(t *testing.T) {
	// A spread of values: quantiles must be monotone in q and each estimate
	// within a factor of 2 of the true order statistic (bucket width bound).
	var h Histogram
	for v := int64(1); v <= 10000; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	prev := int64(-1)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99} {
		got := s.Quantile(q)
		if got < prev {
			t.Errorf("Quantile(%g) = %d < previous %d: not monotone", q, got, prev)
		}
		prev = got
		truth := int64(math.Ceil(q * 10000))
		if got < truth/2 || got > truth*2 {
			t.Errorf("Quantile(%g) = %d, true value %d: outside 2x bound", q, got, truth)
		}
	}
	// Clamping: out-of-range q values behave as 0 and 1.
	if s.Quantile(-1) != s.Quantile(0) || s.Quantile(2) != s.Quantile(1) {
		t.Error("out-of-range q not clamped")
	}
}

func TestMerge(t *testing.T) {
	// Merging two snapshots must equal observing the union.
	var a, b, all Histogram
	for v := int64(1); v <= 500; v++ {
		a.Observe(v)
		all.Observe(v)
	}
	for v := int64(501); v <= 1500; v++ {
		b.Observe(v)
		all.Observe(v)
	}
	m := a.Snapshot()
	m.Merge(b.Snapshot())
	want := all.Snapshot()
	if m != want {
		t.Fatalf("merged snapshot differs from union:\n got %+v\nwant %+v", m, want)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if m.Quantile(q) != want.Quantile(q) {
			t.Errorf("Quantile(%g): merged %d != union %d", q, m.Quantile(q), want.Quantile(q))
		}
	}
}

func TestMergeEmpty(t *testing.T) {
	var h Histogram
	h.Observe(42)
	s := h.Snapshot()
	orig := s
	s.Merge(HistSnapshot{}) // merging empty is the identity
	if s != orig {
		t.Fatalf("merge with empty changed snapshot: %+v -> %+v", orig, s)
	}
	var e HistSnapshot
	e.Merge(orig) // merging into empty copies
	if e != orig {
		t.Fatalf("merge into empty: got %+v, want %+v", e, orig)
	}
}
