package obsv

import (
	"testing"
	"time"
)

func TestRecorderBasics(t *testing.T) {
	r := New(Config{SampleEvery: 1, SlowOpNS: int64(time.Hour)})
	ev0 := Counters{}
	ev1 := Counters{Flush: 3, Fence: 2, LogAppend: 1}
	sp := r.Begin(100, ev0)
	if !sp.Active() {
		t.Fatal("span from live recorder inactive")
	}
	r.End(sp, OpPut, 0, 400, ev1)

	sp = r.Begin(400, ev1)
	r.End(sp, OpGet, 0, 400, ev1) // read: no event delta, no commit-path hists

	s := r.Snapshot()
	if got := s.OpStats(OpPut); got.Count != 1 {
		t.Fatalf("put count = %d", got.Count)
	}
	if got := s.OpStats(OpPut).SimP50NS; got < 256 || got > 511 {
		t.Fatalf("put sim p50 = %d, want within bucket of 300", got)
	}
	if s.Events != ev1 {
		t.Fatalf("events = %+v, want %+v", s.Events, ev1)
	}
	// Reads must not touch the per-txn commit-path distributions.
	if s.FlushPer.Count != 1 || s.FencePer.Count != 1 {
		t.Fatalf("per-txn hists polluted by reads: flush=%d fence=%d",
			s.FlushPer.Count, s.FencePer.Count)
	}
	if samples := r.TraceSamples(); len(samples) != 2 {
		t.Fatalf("SampleEvery=1 captured %d samples, want 2", len(samples))
	}
}

func TestRecorderBatchAndSlow(t *testing.T) {
	r := New(Config{SampleEvery: 1 << 30, SlowOpNS: 1}) // everything is slow
	sp := r.Begin(0, Counters{})
	simD := r.EndBatch(sp, 2, 8, 5000, Counters{Flush: 10, Fence: 6})
	if simD != 5000 {
		t.Fatalf("EndBatch simD = %d", simD)
	}
	r.ObserveMailDepth(3)
	s := r.Snapshot()
	if s.Batches != 1 || s.BatchSize.Count != 1 || s.MailDepth.Count != 1 {
		t.Fatalf("batch accounting: %+v", s)
	}
	if s.BatchSize.Quantile(0.5) < 8 || s.BatchSize.Quantile(0.5) > 15 {
		t.Fatalf("batch size p50 = %d, want in bucket of 8", s.BatchSize.Quantile(0.5))
	}
	if s.SlowOps != 1 {
		t.Fatalf("slow ops = %d, want 1 (threshold 1ns)", s.SlowOps)
	}
	slow := r.SlowSamples()
	if len(slow) != 1 || !slow[0].Slow || slow[0].Op != "batch" || slow[0].Ops != 8 {
		t.Fatalf("slow ring = %+v", slow)
	}
}

func TestRecorderRingWraps(t *testing.T) {
	r := New(Config{SampleEvery: 1, RingSize: 4, SlowOpNS: int64(time.Hour)})
	for i := 0; i < 10; i++ {
		sp := r.Begin(int64(i), Counters{})
		r.End(sp, OpPut, 0, int64(i+1), Counters{})
	}
	samples := r.TraceSamples()
	if len(samples) != 4 {
		t.Fatalf("ring returned %d samples, want 4", len(samples))
	}
	// Oldest-first: the last 4 of 10 sequence numbers.
	for i := 1; i < len(samples); i++ {
		if samples[i].Seq != samples[i-1].Seq+1 {
			t.Fatalf("ring out of order: %+v", samples)
		}
	}
	if samples[len(samples)-1].Seq != 10 {
		t.Fatalf("newest seq = %d, want 10", samples[len(samples)-1].Seq)
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	sp := r.Begin(0, Counters{})
	if sp.Active() {
		t.Fatal("nil recorder produced active span")
	}
	r.End(sp, OpPut, 0, 0, Counters{})
	if d := r.EndBatch(sp, 0, 4, 100, Counters{}); d != 0 {
		t.Fatalf("nil EndBatch = %d", d)
	}
	r.ObserveWall(OpPut, 0, 1)
	r.ObserveSim(OpPut, 1)
	r.ObserveMailDepth(1)
	if s := r.Snapshot(); len(s.Ops) != 0 || s.Seen != 0 {
		t.Fatalf("nil Snapshot = %+v", s)
	}
	if r.TraceSamples() != nil || r.SlowSamples() != nil {
		t.Fatal("nil rings not nil")
	}
	if r.Seen() != 0 {
		t.Fatal("nil Seen != 0")
	}
}

// TestHotPathZeroAllocs is the tentpole's allocation proof: the full
// instrumented span path — Begin, End with event deltas, sampling *every*
// operation into the trace ring — performs zero heap allocations, as do
// the auxiliary observe entry points and the disabled (nil) recorder.
func TestHotPathZeroAllocs(t *testing.T) {
	r := New(Config{SampleEvery: 1, SlowOpNS: 1}) // worst case: sample + slow-log every op
	ev := Counters{Flush: 2, Fence: 1}
	if n := testing.AllocsPerRun(1000, func() {
		sp := r.Begin(0, Counters{})
		r.End(sp, OpPut, 3, 100, ev)
	}); n != 0 {
		t.Errorf("enabled span path: %v allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		sp := r.Begin(0, Counters{})
		r.EndBatch(sp, 1, 16, 100, ev)
	}); n != 0 {
		t.Errorf("batch path: %v allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		r.ObserveWall(OpPut, 0, 5)
		r.ObserveSim(OpPut, 5)
		r.ObserveMailDepth(2)
	}); n != 0 {
		t.Errorf("observe path: %v allocs/op, want 0", n)
	}
	var off *Recorder
	if n := testing.AllocsPerRun(1000, func() {
		sp := off.Begin(0, Counters{})
		off.End(sp, OpPut, 0, 0, Counters{})
		off.ObserveWall(OpGet, 0, 1)
	}); n != 0 {
		t.Errorf("disabled path: %v allocs/op, want 0", n)
	}
}
