package obsv

import (
	"fmt"
	"io"
	"sort"
)

// ServerOpStats is one wire opcode's served-request summary inside a
// ServerSnapshot.
type ServerOpStats struct {
	Op        string `json:"op"`
	Count     int64  `json:"count"`
	Errors    int64  `json:"errors"`
	WallP50NS int64  `json:"wall_p50_ns"`
	WallP99NS int64  `json:"wall_p99_ns"`
	// WallP999NS is the tail quantile the serverbench overload arms watch.
	WallP999NS int64   `json:"wall_p999_ns"`
	WallMeanNS float64 `json:"wall_mean_ns"`
}

// ServerSnapshot is the network server's observability snapshot, rendered
// by WriteServerPrometheus and embedded in bench reports. The server
// builds it from its own atomics and histograms; obsv only defines the
// shape and the exposition, keeping the metric names in one place with
// the store's.
type ServerSnapshot struct {
	// ConnsOpen / ConnsTotal count live and lifetime accepted connections.
	ConnsOpen  int64 `json:"conns_open"`
	ConnsTotal int64 `json:"conns_total"`
	// InFlight is the number of requests currently admitted past the
	// backpressure gate; InFlightLimit is the gate's capacity.
	InFlight      int64 `json:"in_flight"`
	InFlightLimit int64 `json:"in_flight_limit"`
	// RejectBusy / RejectShutdown / RejectProto count requests answered
	// BUSY (load shed), SHUTDOWN (drain), and connections dropped after a
	// framing error.
	RejectBusy     int64 `json:"reject_busy"`
	RejectShutdown int64 `json:"reject_shutdown"`
	RejectProto    int64 `json:"reject_proto"`
	// Timeouts counts connections closed by the idle deadline.
	Timeouts int64 `json:"timeouts"`
	// HealAttempts / HealFailures count the background auto-heal loop's
	// recovery attempts on unhealthy shards; DegradedShards gauges how
	// many shards are currently not serving (degraded or crashed).
	HealAttempts   int64 `json:"heal_attempts"`
	HealFailures   int64 `json:"heal_failures"`
	DegradedShards int64 `json:"degraded_shards"`
	// BytesIn / BytesOut are wire totals.
	BytesIn  int64 `json:"bytes_in"`
	BytesOut int64 `json:"bytes_out"`
	// Ops is the per-opcode served summary, in opcode order.
	Ops []ServerOpStats `json:"ops"`
	// Coalesce is the distribution of write-ops per engine submission —
	// how many pipelined/coalesced mutations one submission carried.
	Coalesce HistSnapshot `json:"coalesce"`
	// ShardCoalesce is the distribution of write-ops per per-shard commit
	// round (the per-shard pipeline's group-commit width).
	ShardCoalesce HistSnapshot `json:"shard_coalesce"`
	// PipeOccupancy is the distribution of connection sub-submissions per
	// per-shard commit round — how many connections each pipelined round
	// joined.
	PipeOccupancy HistSnapshot `json:"pipe_occupancy"`
	// DedupCacheBytes gauges the reply bytes cached across all sessions
	// for exactly-once replays.
	DedupCacheBytes int64 `json:"dedup_cache_bytes"`
	// BarrierSimNS accumulates, under the global-batcher fallback, each
	// commit round's busiest-shard simulated time — the serialized-round
	// makespan that architecture imposes (zero under the pipelines).
	BarrierSimNS int64 `json:"barrier_sim_ns"`
}

// WriteServerPrometheus renders a server snapshot in the Prometheus text
// exposition format, alongside the store metrics on the same /metrics
// endpoint.
func WriteServerPrometheus(w io.Writer, server string, s ServerSnapshot) {
	fmt.Fprintf(w, "# HELP fasp_server_connections_open Live client connections.\n# TYPE fasp_server_connections_open gauge\n")
	fmt.Fprintf(w, "fasp_server_connections_open{server=%q} %d\n", server, s.ConnsOpen)
	fmt.Fprintf(w, "# HELP fasp_server_connections_total Accepted client connections.\n# TYPE fasp_server_connections_total counter\n")
	fmt.Fprintf(w, "fasp_server_connections_total{server=%q} %d\n", server, s.ConnsTotal)

	fmt.Fprintf(w, "# HELP fasp_server_inflight_requests Requests admitted past the backpressure gate.\n# TYPE fasp_server_inflight_requests gauge\n")
	fmt.Fprintf(w, "fasp_server_inflight_requests{server=%q} %d\n", server, s.InFlight)
	fmt.Fprintf(w, "# HELP fasp_server_inflight_limit Backpressure gate capacity.\n# TYPE fasp_server_inflight_limit gauge\n")
	fmt.Fprintf(w, "fasp_server_inflight_limit{server=%q} %d\n", server, s.InFlightLimit)

	fmt.Fprintf(w, "# HELP fasp_server_rejects_total Requests refused, by reason (busy = load shed, shutdown = drain, proto = framing error).\n# TYPE fasp_server_rejects_total counter\n")
	fmt.Fprintf(w, "fasp_server_rejects_total{server=%q,reason=\"busy\"} %d\n", server, s.RejectBusy)
	fmt.Fprintf(w, "fasp_server_rejects_total{server=%q,reason=\"shutdown\"} %d\n", server, s.RejectShutdown)
	fmt.Fprintf(w, "fasp_server_rejects_total{server=%q,reason=\"proto\"} %d\n", server, s.RejectProto)

	fmt.Fprintf(w, "# HELP fasp_server_conn_timeouts_total Connections closed by the idle deadline.\n# TYPE fasp_server_conn_timeouts_total counter\n")
	fmt.Fprintf(w, "fasp_server_conn_timeouts_total{server=%q} %d\n", server, s.Timeouts)

	fmt.Fprintf(w, "# HELP fasp_server_heal_attempts_total Auto-heal recovery attempts on unhealthy shards.\n# TYPE fasp_server_heal_attempts_total counter\n")
	fmt.Fprintf(w, "fasp_server_heal_attempts_total{server=%q} %d\n", server, s.HealAttempts)
	fmt.Fprintf(w, "# HELP fasp_server_heal_failures_total Auto-heal attempts that failed (the shard stayed down).\n# TYPE fasp_server_heal_failures_total counter\n")
	fmt.Fprintf(w, "fasp_server_heal_failures_total{server=%q} %d\n", server, s.HealFailures)
	fmt.Fprintf(w, "# HELP fasp_server_degraded_shards Shards currently not serving (degraded or crashed).\n# TYPE fasp_server_degraded_shards gauge\n")
	fmt.Fprintf(w, "fasp_server_degraded_shards{server=%q} %d\n", server, s.DegradedShards)

	fmt.Fprintf(w, "# HELP fasp_server_bytes_total Wire bytes, by direction.\n# TYPE fasp_server_bytes_total counter\n")
	fmt.Fprintf(w, "fasp_server_bytes_total{server=%q,dir=\"in\"} %d\n", server, s.BytesIn)
	fmt.Fprintf(w, "fasp_server_bytes_total{server=%q,dir=\"out\"} %d\n", server, s.BytesOut)

	fmt.Fprintf(w, "# HELP fasp_server_requests_total Requests served, by opcode.\n# TYPE fasp_server_requests_total counter\n")
	for _, o := range s.Ops {
		fmt.Fprintf(w, "fasp_server_requests_total{server=%q,op=%q} %d\n", server, o.Op, o.Count)
	}
	fmt.Fprintf(w, "# HELP fasp_server_request_errors_total Requests answered with a non-OK code, by opcode.\n# TYPE fasp_server_request_errors_total counter\n")
	for _, o := range s.Ops {
		fmt.Fprintf(w, "fasp_server_request_errors_total{server=%q,op=%q} %d\n", server, o.Op, o.Errors)
	}
	fmt.Fprintf(w, "# HELP fasp_server_request_wall_ns Request service latency quantiles, by opcode.\n# TYPE fasp_server_request_wall_ns gauge\n")
	for _, o := range s.Ops {
		fmt.Fprintf(w, "fasp_server_request_wall_ns{server=%q,op=%q,quantile=\"0.5\"} %d\n", server, o.Op, o.WallP50NS)
		fmt.Fprintf(w, "fasp_server_request_wall_ns{server=%q,op=%q,quantile=\"0.99\"} %d\n", server, o.Op, o.WallP99NS)
		fmt.Fprintf(w, "fasp_server_request_wall_ns{server=%q,op=%q,quantile=\"0.999\"} %d\n", server, o.Op, o.WallP999NS)
	}

	writeHistAs(w, "fasp_server_coalesce_width", "Write operations per engine submission (cross-connection coalescing).", "server", server, s.Coalesce)
	writeHistAs(w, "fasp_server_shard_coalesce_width", "Write operations per per-shard commit round (pipeline group-commit width).", "server", server, s.ShardCoalesce)
	writeHistAs(w, "fasp_server_pipeline_occupancy", "Connection sub-submissions joined per per-shard commit round.", "server", server, s.PipeOccupancy)

	fmt.Fprintf(w, "# HELP fasp_server_dedup_cache_bytes Reply bytes cached across sessions for exactly-once replays.\n# TYPE fasp_server_dedup_cache_bytes gauge\n")
	fmt.Fprintf(w, "fasp_server_dedup_cache_bytes{server=%q} %d\n", server, s.DedupCacheBytes)
	fmt.Fprintf(w, "# HELP fasp_server_barrier_sim_ns_total Per-round busiest-shard simulated time under the global batcher (serialized-round makespan).\n# TYPE fasp_server_barrier_sim_ns_total counter\n")
	fmt.Fprintf(w, "fasp_server_barrier_sim_ns_total{server=%q} %d\n", server, s.BarrierSimNS)
}

// ClientSnapshot is the retrying client layer's telemetry: retries by
// trigger code and reconnect count. The client package aggregates it
// process-wide; whoever owns the /metrics endpoint renders it via
// WriteClientPrometheus.
type ClientSnapshot struct {
	// Retries maps a code label (busy, unavail, conn_reset, ...) to how
	// many operations were retried because of it.
	Retries map[string]int64 `json:"retries"`
	// Reconnects counts successful redials (session re-established and
	// unacked frames replayed).
	Reconnects int64 `json:"reconnects"`
}

// WriteClientPrometheus renders client retry telemetry in the Prometheus
// text exposition format.
func WriteClientPrometheus(w io.Writer, client string, s ClientSnapshot) {
	fmt.Fprintf(w, "# HELP fasp_client_retries_total Operations retried by the client layer, by trigger code.\n# TYPE fasp_client_retries_total counter\n")
	codes := make([]string, 0, len(s.Retries))
	for code := range s.Retries {
		codes = append(codes, code)
	}
	sort.Strings(codes)
	for _, code := range codes {
		fmt.Fprintf(w, "fasp_client_retries_total{client=%q,code=%q} %d\n", client, code, s.Retries[code])
	}
	fmt.Fprintf(w, "# HELP fasp_client_reconnects_total Successful redial-and-replay cycles.\n# TYPE fasp_client_reconnects_total counter\n")
	fmt.Fprintf(w, "fasp_client_reconnects_total{client=%q} %d\n", client, s.Reconnects)
}
