package slotted

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
)

// Mem is the memory a page lives in. Implementations route content writes
// and header updates according to the commit scheme:
//
//   - a PM-direct backend (FAST/FAST+) writes content straight into the
//     persistent page and keeps header changes in a volatile working copy
//     until the commit protocol installs them;
//   - a DRAM buffer-cache backend (NVWAL, journaling, WAL) applies both to
//     the cached image and tracks dirty ranges;
//   - MemBuf applies both to a flat byte slice, for unit tests.
type Mem interface {
	// PageSize returns the page size in bytes.
	PageSize() int
	// Read returns n bytes at off of the transaction-visible page image.
	Read(off, n int) []byte
	// Write stores src at off within the cell-content area.
	Write(off int, src []byte)
	// HeaderChanged is invoked after every mutation of the decoded header.
	HeaderChanged(h *Header)
}

// ScratchMem is an optional Mem extension. ReadInto fills dst with
// len(dst) bytes at off of the transaction-visible image, charging exactly
// the same simulated cost as Read(off, len(dst)) but without allocating.
// Page uses it for transient internal reads (cell size headers, key
// comparisons, free-list walks) whose results never escape the operation.
type ScratchMem interface {
	ReadInto(off int, dst []byte)
}

type extent struct{ off, size uint16 }

// Page is an open handle on a slotted page. The decoded header in the
// handle is authoritative for the current transaction; mutating operations
// never overwrite previously committed record bytes, so the underlying
// committed image remains a consistent prior state until the commit
// protocol installs the new header.
type Page struct {
	mem        Mem
	sm         ScratchMem // mem's ScratchMem view, nil if unsupported
	hdr        Header
	deferFrees bool
	pending    []extent // frees deferred until after commit
	pendingSum int

	// Reusable scratch for transient reads and cell-image construction.
	// These never alias live data: transient reads are consumed before the
	// next page operation, and imgBuf's contents are copied into the page by
	// mem.Write before the call returns.
	tmp    [8]byte
	keyBuf []byte
	imgBuf []byte
}

// Init formats a fresh page of the given type in mem and returns its handle.
func Init(mem Mem, typ byte) *Page {
	p := &Page{}
	InitInto(p, mem, typ)
	return p
}

// InitInto formats a fresh page of the given type in mem, reusing p's
// internal buffers. The commit schemes pool Page handles across
// transactions through this.
func InitInto(p *Page, mem Mem, typ byte) {
	p.reset(mem)
	p.hdr.Type = typ
	p.hdr.Content = uint16(mem.PageSize())
	mem.HeaderChanged(&p.hdr)
}

// Open decodes the page header from mem.
func Open(mem Mem) (*Page, error) {
	p := &Page{}
	if err := OpenInto(p, mem); err != nil {
		return nil, err
	}
	return p, nil
}

// openHeader reads and decodes the header: a HeaderFixedSize prefix first,
// then the prefix plus the full offset array (the same two reads whatever
// the backend).
func (p *Page) openHeader(mem Mem) error {
	prefix := p.readT(0, HeaderFixedSize)
	n := int(binary.LittleEndian.Uint16(prefix[2:]))
	if HeaderFixedSize+2*n > mem.PageSize() {
		return fmt.Errorf("%w: offset array (%d cells) exceeds page", ErrCorrupt, n)
	}
	full := p.readT(0, HeaderFixedSize+2*n)
	return DecodeHeaderInto(&p.hdr, full, mem.PageSize())
}

// OpenInto decodes the page header from mem into p, reusing p's buffers.
func OpenInto(p *Page, mem Mem) error {
	p.reset(mem)
	return p.openHeader(mem)
}

// reset rebinds the handle to mem with empty transaction state, keeping the
// allocated scratch and header-offset capacity.
func (p *Page) reset(mem Mem) {
	p.mem = mem
	p.sm, _ = mem.(ScratchMem)
	p.hdr = Header{Offsets: p.hdr.Offsets[:0]}
	p.deferFrees = false
	p.pending = p.pending[:0]
	p.pendingSum = 0
}

// readT performs a transient read: the returned bytes are valid only until
// the next read and must not escape the current operation.
func (p *Page) readT(off, n int) []byte {
	if p.sm == nil {
		return p.mem.Read(off, n)
	}
	var b []byte
	if n <= len(p.tmp) {
		b = p.tmp[:n]
	} else {
		if cap(p.keyBuf) < n {
			p.keyBuf = make([]byte, n)
		}
		b = p.keyBuf[:n]
	}
	p.sm.ReadInto(off, b)
	return b
}

// OpenWithHeader attaches a handle using an already-decoded header (the
// FAST transaction cache uses this to resume a working header).
func OpenWithHeader(mem Mem, hdr Header) *Page {
	return &Page{mem: mem, hdr: hdr}
}

// SetDeferFrees selects whether freed cell extents enter the free list
// immediately (volatile caches) or only after ApplyPendingFrees (PM-direct
// backends, where writing a free-block header would destroy committed
// record bytes before the transaction commits).
func (p *Page) SetDeferFrees(d bool) { p.deferFrees = d }

// Header returns the authoritative decoded header.
func (p *Page) Header() *Header { return &p.hdr }

// Type returns the page type byte.
func (p *Page) Type() byte { return p.hdr.Type }

// NCells returns the number of records in the page.
func (p *Page) NCells() int { return len(p.hdr.Offsets) }

// notify pushes the mutated header to the backend.
func (p *Page) notify() { p.mem.HeaderChanged(&p.hdr) }

// --- Cell parsing ---------------------------------------------------------

// cellExtent returns the location and size of cell i.
func (p *Page) cellExtent(i int) extent {
	off := p.hdr.Offsets[i]
	switch p.hdr.Type {
	case TypeLeaf:
		b := p.readT(int(off), 4)
		klen := binary.LittleEndian.Uint16(b)
		vlen := binary.LittleEndian.Uint16(b[2:])
		return extent{off, 4 + klen + vlen}
	case TypeInterior:
		b := p.readT(int(off), 2)
		klen := binary.LittleEndian.Uint16(b)
		return extent{off, 6 + klen}
	default:
		panic(fmt.Sprintf("slotted: cellExtent on page type %#x", p.hdr.Type))
	}
}

// Key returns the key of cell i.
func (p *Page) Key(i int) []byte {
	off := int(p.hdr.Offsets[i])
	switch p.hdr.Type {
	case TypeLeaf:
		b := p.mem.Read(off, 4)
		klen := int(binary.LittleEndian.Uint16(b))
		return p.mem.Read(off+4, klen)
	case TypeInterior:
		b := p.mem.Read(off, 2)
		klen := int(binary.LittleEndian.Uint16(b))
		return p.mem.Read(off+6, klen)
	default:
		panic(fmt.Sprintf("slotted: Key on page type %#x", p.hdr.Type))
	}
}

// Value returns the value of leaf cell i.
func (p *Page) Value(i int) []byte {
	if p.hdr.Type != TypeLeaf {
		panic("slotted: Value on non-leaf page")
	}
	off := int(p.hdr.Offsets[i])
	b := p.mem.Read(off, 4)
	klen := int(binary.LittleEndian.Uint16(b))
	vlen := int(binary.LittleEndian.Uint16(b[2:]))
	return p.mem.Read(off+4+klen, vlen)
}

// Child returns the child page number of interior cell i.
func (p *Page) Child(i int) uint32 {
	if p.hdr.Type != TypeInterior {
		panic("slotted: Child on non-interior page")
	}
	off := int(p.hdr.Offsets[i])
	return binary.LittleEndian.Uint32(p.readT(off+2, 4))
}

// keyTransient returns the key of cell i into the page's scratch, issuing
// the same two reads as Key. The result is valid only until the next read.
func (p *Page) keyTransient(i int) []byte {
	off := int(p.hdr.Offsets[i])
	switch p.hdr.Type {
	case TypeLeaf:
		b := p.readT(off, 4)
		klen := int(binary.LittleEndian.Uint16(b))
		return p.readT(off+4, klen)
	case TypeInterior:
		b := p.readT(off, 2)
		klen := int(binary.LittleEndian.Uint16(b))
		return p.readT(off+6, klen)
	default:
		panic(fmt.Sprintf("slotted: Key on page type %#x", p.hdr.Type))
	}
}

// Search binary-searches the sorted offset array. It returns the index of
// the first cell with key ≥ key and whether that cell's key equals key.
func (p *Page) Search(key []byte) (int, bool) {
	i := sort.Search(len(p.hdr.Offsets), func(i int) bool {
		return bytes.Compare(p.keyTransient(i), key) >= 0
	})
	if i < len(p.hdr.Offsets) && bytes.Equal(p.keyTransient(i), key) {
		return i, true
	}
	return i, false
}

// --- Space management ------------------------------------------------------

// gapAfter returns the unallocated bytes between the offset array (assuming
// extraEntries future entries) and the content area.
func (p *Page) gapAfter(extraEntries int) int {
	return int(p.hdr.Content) - (HeaderFixedSize + 2*(len(p.hdr.Offsets)+extraEntries))
}

// FreeTotal returns the usable free bytes for new cells, assuming one more
// offset entry: gap plus free-list bytes (excluding pending frees, which
// cannot be reused before commit).
func (p *Page) FreeTotal() int {
	g := p.gapAfter(1)
	if g < 0 {
		g = 0
	}
	return g + int(p.hdr.Free) - p.pendingSum
}

// allocate finds size contiguous bytes for a new cell, preferring the gap
// (the paper's default: new records extend the record content area), then
// the free list. The caller is about to add one offset entry.
func (p *Page) allocate(size int) (uint16, error) {
	if p.gapAfter(1) < 0 {
		// No room for the offset-array entry itself. Churn can squeeze the
		// content start against the header while ample free-list space
		// remains below it; compaction repairs that.
		if size <= p.CapacityAfterDefrag() {
			return 0, fmt.Errorf("%w: offset array squeezed", ErrNeedsDefrag)
		}
		return 0, fmt.Errorf("%w: offset array full", ErrPageFull)
	}
	if p.gapAfter(1) >= size {
		off := p.hdr.Content - uint16(size)
		p.hdr.Content = off
		return off, nil
	}
	// First-fit over the free list.
	prev := uint16(0)
	cur := p.hdr.FreeLst
	for cur != 0 {
		b := p.readT(int(cur), 4)
		bsz := binary.LittleEndian.Uint16(b)
		next := binary.LittleEndian.Uint16(b[2:])
		if int(bsz) >= size {
			take := uint16(size)
			if int(bsz)-size >= MinFreeBlock {
				// Shrink the block in place; the new cell takes its tail.
				var nb [4]byte
				binary.LittleEndian.PutUint16(nb[:], bsz-take)
				binary.LittleEndian.PutUint16(nb[2:], next)
				p.mem.Write(int(cur), nb[:])
				p.hdr.Free -= take
				return cur + bsz - take, nil
			}
			// Take the whole block; the leftover (<MinFreeBlock) is lost
			// until defragmentation or a free-list rebuild.
			if prev == 0 {
				p.hdr.FreeLst = next
			} else {
				var nb [2]byte
				binary.LittleEndian.PutUint16(nb[:], next)
				p.mem.Write(int(prev)+2, nb[:])
			}
			p.hdr.Free -= bsz
			return cur, nil
		}
		prev, cur = cur, next
	}
	if size <= p.CapacityAfterDefrag() {
		return 0, fmt.Errorf("%w: %d bytes requested, %d free but fragmented or pending", ErrNeedsDefrag, size, p.FreeTotal())
	}
	return 0, fmt.Errorf("%w: %d bytes requested, %d free", ErrPageFull, size, p.FreeTotal())
}

// LiveBytes returns the total size of all live cells.
func (p *Page) LiveBytes() int {
	total := 0
	for i := range p.hdr.Offsets {
		total += int(p.cellExtent(i).size)
	}
	return total
}

// CapacityAfterDefrag returns the largest cell that would fit after
// copy-on-write defragmentation rebuilt the page compactly with one more
// offset entry. Unlike FreeTotal, this includes pending frees and lost
// fragments, because a rewritten page reclaims them all.
func (p *Page) CapacityAfterDefrag() int {
	c := p.mem.PageSize() - HeaderFixedSize - 2*(len(p.hdr.Offsets)+1) - p.LiveBytes()
	if c < 0 {
		c = 0
	}
	return c
}

// freeCell releases a cell extent. With deferred frees the extent only
// joins the free list at ApplyPendingFrees time; its bytes remain intact,
// preserving the page's committed state.
func (p *Page) freeCell(e extent) {
	p.hdr.Free += e.size
	if p.deferFrees {
		p.pending = append(p.pending, e)
		p.pendingSum += int(e.size)
		return
	}
	p.linkFreeBlock(e)
}

func (p *Page) linkFreeBlock(e extent) {
	if e.size < MinFreeBlock {
		// Too small to hold a block header; the bytes are lost until a
		// rebuild. Keep Free accounting honest by backing the bytes out.
		p.hdr.Free -= e.size
		return
	}
	var b [4]byte
	binary.LittleEndian.PutUint16(b[:], e.size)
	binary.LittleEndian.PutUint16(b[2:], p.hdr.FreeLst)
	p.mem.Write(int(e.off), b[:])
	p.hdr.FreeLst = e.off
}

// ApplyPendingFrees links every deferred free into the free list. Commit
// protocols call it after the transaction's commit point.
func (p *Page) ApplyPendingFrees() {
	if len(p.pending) == 0 {
		return
	}
	for _, e := range p.pending {
		p.linkFreeBlock(e)
	}
	p.pending = nil
	p.pendingSum = 0
	p.notify()
}

// PendingFrees reports the number of deferred free extents.
func (p *Page) PendingFrees() int { return len(p.pending) }

// --- Mutations --------------------------------------------------------------

// cellImg returns the reusable cell-image scratch sized to n. The image is
// consumed (copied into the page) by mem.Write before the operation returns.
func (p *Page) cellImg(n int) []byte {
	if cap(p.imgBuf) < n {
		p.imgBuf = make([]byte, n)
	}
	return p.imgBuf[:n]
}

// Insert adds a record to a leaf page, keeping the offset array sorted.
func (p *Page) Insert(key, val []byte) error {
	img := p.cellImg(4 + len(key) + len(val))
	binary.LittleEndian.PutUint16(img, uint16(len(key)))
	binary.LittleEndian.PutUint16(img[2:], uint16(len(val)))
	copy(img[4:], key)
	copy(img[4+len(key):], val)
	return p.insertCell(key, img)
}

// InsertChild adds a separator cell (key, child) to an interior page.
func (p *Page) InsertChild(key []byte, child uint32) error {
	img := p.cellImg(6 + len(key))
	binary.LittleEndian.PutUint16(img, uint16(len(key)))
	binary.LittleEndian.PutUint32(img[2:], child)
	copy(img[6:], key)
	return p.insertCell(key, img)
}

func (p *Page) insertCell(key, img []byte) error {
	if p.hdr.Type != TypeLeaf && p.hdr.Type != TypeInterior {
		panic(fmt.Sprintf("slotted: insert on page type %#x", p.hdr.Type))
	}
	i, found := p.Search(key)
	if found {
		return fmt.Errorf("%w: key %x", ErrDuplicate, key)
	}
	off, err := p.allocate(len(img))
	if err != nil {
		return err
	}
	p.mem.Write(int(off), img)
	p.hdr.Offsets = append(p.hdr.Offsets, 0)
	copy(p.hdr.Offsets[i+1:], p.hdr.Offsets[i:])
	p.hdr.Offsets[i] = off
	p.notify()
	return nil
}

// Update replaces the value of leaf cell i out of place: the new record is
// written into free space and the offset swapped, so the old record remains
// intact for recovery (§3.2, "Updating a record").
func (p *Page) Update(i int, val []byte) error {
	if p.hdr.Type != TypeLeaf {
		panic("slotted: Update on non-leaf page")
	}
	if i < 0 || i >= len(p.hdr.Offsets) {
		return fmt.Errorf("%w: cell %d", ErrNotFound, i)
	}
	key := p.keyTransient(i)
	img := p.cellImg(4 + len(key) + len(val))
	binary.LittleEndian.PutUint16(img, uint16(len(key)))
	binary.LittleEndian.PutUint16(img[2:], uint16(len(val)))
	copy(img[4:], key)
	copy(img[4+len(key):], val)
	return p.replaceCell(i, img)
}

// UpdateChild replaces the child pointer of interior cell i out of place,
// used when defragmentation substitutes a rewritten page.
func (p *Page) UpdateChild(i int, child uint32) error {
	if p.hdr.Type != TypeInterior {
		panic("slotted: UpdateChild on non-interior page")
	}
	if i < 0 || i >= len(p.hdr.Offsets) {
		return fmt.Errorf("%w: cell %d", ErrNotFound, i)
	}
	key := p.keyTransient(i)
	img := p.cellImg(6 + len(key))
	binary.LittleEndian.PutUint16(img, uint16(len(key)))
	binary.LittleEndian.PutUint32(img[2:], child)
	copy(img[6:], key)
	return p.replaceCell(i, img)
}

func (p *Page) replaceCell(i int, img []byte) error {
	old := p.cellExtent(i)
	off, err := p.allocate(len(img))
	if err != nil {
		return err
	}
	p.mem.Write(int(off), img)
	p.freeCell(old)
	p.hdr.Offsets[i] = off
	p.notify()
	return nil
}

// Delete removes cell i, releasing its extent (§3.2, "Deleting a record").
func (p *Page) Delete(i int) error {
	if i < 0 || i >= len(p.hdr.Offsets) {
		return fmt.Errorf("%w: cell %d", ErrNotFound, i)
	}
	p.freeCell(p.cellExtent(i))
	p.hdr.Offsets = append(p.hdr.Offsets[:i], p.hdr.Offsets[i+1:]...)
	p.notify()
	return nil
}

// SetAux updates the auxiliary pointer (rightmost child / right sibling).
func (p *Page) SetAux(v uint32) {
	p.hdr.Aux = v
	p.notify()
}

// Aux returns the auxiliary pointer.
func (p *Page) Aux() uint32 { return p.hdr.Aux }

// TruncateKeepUpper drops cells [0, from) from the offset array — the
// header-only half of a B-tree split, where the original page keeps the
// keys ≥ median (§4.1). The dropped extents are freed (deferred, under a
// PM-direct backend, until the split transaction commits).
func (p *Page) TruncateKeepUpper(from int) {
	for i := 0; i < from; i++ {
		p.freeCell(p.cellExtent(i))
	}
	p.hdr.Offsets = append([]uint16(nil), p.hdr.Offsets[from:]...)
	p.notify()
}

// CopyRangeTo copies cells [lo, hi) into dst (a fresh page of the same
// type), preserving order. Used to populate the new sibling during a split
// and the replacement page during defragmentation.
func (p *Page) CopyRangeTo(dst *Page, lo, hi int) error {
	for i := lo; i < hi; i++ {
		var err error
		if p.hdr.Type == TypeLeaf {
			err = dst.Insert(p.Key(i), p.Value(i))
		} else {
			err = dst.InsertChild(p.Key(i), p.Child(i))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// --- Free-list maintenance and validation -----------------------------------

// CheckFreeList verifies that the free list is structurally sound and that
// its total matches the header's Free counter (net of pending frees). A
// mismatch after a crash means the list must be rebuilt (§4.3).
func (p *Page) CheckFreeList() error {
	total := 0
	seen := 0
	cur := p.hdr.FreeLst
	for cur != 0 {
		if int(cur) < HeaderFixedSize || int(cur)+MinFreeBlock > p.mem.PageSize() {
			return fmt.Errorf("%w: free block at %d out of bounds", ErrCorrupt, cur)
		}
		b := p.readT(int(cur), 4)
		sz := binary.LittleEndian.Uint16(b)
		if sz < MinFreeBlock || int(cur)+int(sz) > p.mem.PageSize() {
			return fmt.Errorf("%w: free block at %d size %d invalid", ErrCorrupt, cur, sz)
		}
		total += int(sz)
		cur = binary.LittleEndian.Uint16(b[2:])
		if seen++; seen > p.mem.PageSize()/MinFreeBlock {
			return fmt.Errorf("%w: free list cycle", ErrCorrupt)
		}
	}
	if total != int(p.hdr.Free)-p.pendingSum {
		return fmt.Errorf("%w: free list total %d != header free %d - pending %d",
			ErrCorrupt, total, p.hdr.Free, p.pendingSum)
	}
	return nil
}

// RebuildFreeList reconstructs the free list from the record offset array,
// the paper's lazy repair for free lists damaged by an ill-timed crash
// (free-list updates are deliberately not failure-atomic). Every byte of
// the content area not covered by a live cell becomes free space; pending
// frees are absorbed.
func (p *Page) RebuildFreeList() {
	used := make([]extent, 0, len(p.hdr.Offsets))
	for i := range p.hdr.Offsets {
		used = append(used, p.cellExtent(i))
	}
	sort.Slice(used, func(i, j int) bool { return used[i].off < used[j].off })
	minUsed := uint16(p.mem.PageSize())
	if len(used) > 0 {
		minUsed = used[0].off
	}
	p.hdr.Content = minUsed
	p.hdr.FreeLst = 0
	p.hdr.Free = 0
	p.pending = nil
	p.pendingSum = 0
	// Walk gaps between used extents, building blocks from the tail so the
	// list ends up address-ordered from the head.
	type gap struct{ off, size int }
	var gaps []gap
	cursor := int(minUsed)
	for _, e := range used {
		if int(e.off) > cursor {
			gaps = append(gaps, gap{cursor, int(e.off) - cursor})
		}
		if end := int(e.off) + int(e.size); end > cursor {
			cursor = end
		}
	}
	if cursor < p.mem.PageSize() {
		gaps = append(gaps, gap{cursor, p.mem.PageSize() - cursor})
	}
	for i := len(gaps) - 1; i >= 0; i-- {
		g := gaps[i]
		if g.size < MinFreeBlock {
			continue
		}
		var b [4]byte
		binary.LittleEndian.PutUint16(b[:], uint16(g.size))
		binary.LittleEndian.PutUint16(b[2:], p.hdr.FreeLst)
		p.mem.Write(g.off, b[:])
		p.hdr.FreeLst = uint16(g.off)
		p.hdr.Free += uint16(g.size)
	}
	p.notify()
}

// Validate checks the structural invariants of the page: in-bounds,
// non-overlapping cells, sorted keys, and a coherent free list.
func (p *Page) Validate() error {
	ps := p.mem.PageSize()
	if p.hdr.Type != TypeLeaf && p.hdr.Type != TypeInterior {
		return fmt.Errorf("%w: unexpected page type %#x", ErrCorrupt, p.hdr.Type)
	}
	if int(p.hdr.Content) > ps {
		return fmt.Errorf("%w: content start %d > page size", ErrCorrupt, p.hdr.Content)
	}
	if p.gapAfter(0) < 0 {
		return fmt.Errorf("%w: offset array overlaps content area", ErrCorrupt)
	}
	minCellHeader := 4
	if p.hdr.Type == TypeInterior {
		minCellHeader = 6
	}
	exts := make([]extent, 0, len(p.hdr.Offsets))
	for i := range p.hdr.Offsets {
		// Bounds-check the raw offset before parsing the cell header, so
		// garbage images error rather than read out of range.
		off := int(p.hdr.Offsets[i])
		if off < HeaderFixedSize || off+minCellHeader > ps {
			return fmt.Errorf("%w: cell %d offset %d out of bounds", ErrCorrupt, i, off)
		}
		e := p.cellExtent(i)
		if int(e.off) < int(p.hdr.Content) || int(e.off)+int(e.size) > ps {
			return fmt.Errorf("%w: cell %d extent [%d,%d) out of bounds", ErrCorrupt, i, e.off, int(e.off)+int(e.size))
		}
		exts = append(exts, e)
	}
	sorted := append([]extent(nil), exts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].off < sorted[j].off })
	for i := 1; i < len(sorted); i++ {
		if int(sorted[i-1].off)+int(sorted[i-1].size) > int(sorted[i].off) {
			return fmt.Errorf("%w: cells overlap at %d", ErrCorrupt, sorted[i].off)
		}
	}
	for i := 1; i < len(p.hdr.Offsets); i++ {
		if bytes.Compare(p.Key(i-1), p.Key(i)) >= 0 {
			return fmt.Errorf("%w: keys out of order at cell %d", ErrCorrupt, i)
		}
	}
	return p.CheckFreeList()
}
