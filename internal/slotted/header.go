// Package slotted implements the slotted-page structure of the paper (§3.1):
// a fixed-size page holding variable-length records, with a slot header at
// the front (record count, content-area start, record-offset array), free
// space in the middle, and record cells growing from the tail.
//
// The slot header doubles as the page's commit mark: none of the package's
// mutating operations touch previously written record bytes, so installing a
// new header image atomically (via HTM in-place commit, or via slot-header
// logging plus checkpointing) transitions the page between consistent states.
//
// Layout of a page of size P:
//
//	off 0  : type byte (leaf / interior / meta / free)
//	off 1  : flags
//	off 2  : number of cells (uint16)
//	off 4  : content-area start (uint16; 0 on a fresh page means P)
//	off 6  : free bytes in the free list (uint16)
//	off 8  : free-list head offset (uint16; 0 = empty; NOT failure-atomic)
//	off 10 : aux (uint32): rightmost child (interior) or right sibling (leaf)
//	off 14 : record-offset array, ncells × uint16, sorted by key
//	...    : gap (unallocated)
//	...    : cell content area: cells and free blocks, through end of page
//
// The failure-atomic commit unit is the prefix [0, 14+2·ncells). With a
// 64-byte cache line, an in-place (HTM) commit therefore supports up to
// (64−14)/2 = 25 records per leaf; slot-header logging has no such limit.
package slotted

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Page type bytes (values chosen after SQLite's b-tree page flags).
const (
	TypeFree     byte = 0x00
	TypeMeta     byte = 0x01
	TypeInterior byte = 0x05
	TypeLeaf     byte = 0x0D
)

// Structural constants.
const (
	// HeaderFixedSize is the size of the header before the offset array.
	HeaderFixedSize = 14
	// MinFreeBlock is the smallest representable free block ({size,next}).
	MinFreeBlock = 4
	// MaxInPlaceCells is the largest offset-array length whose header fits
	// one cache line, the hardware limit for HTM in-place commits (§4.2).
	MaxInPlaceCells = (64 - HeaderFixedSize) / 2
)

// Errors reported by page operations.
var (
	// ErrPageFull means the page lacks total free space for the cell; the
	// caller must split.
	ErrPageFull = errors.New("slotted: page full")
	// ErrNeedsDefrag means total free space suffices but no contiguous run
	// does; the caller must defragment (copy-on-write) first.
	ErrNeedsDefrag = errors.New("slotted: page needs defragmentation")
	// ErrCorrupt reports a malformed page image.
	ErrCorrupt = errors.New("slotted: page corrupt")
	// ErrDuplicate reports an insert of a key already present.
	ErrDuplicate = errors.New("slotted: duplicate key")
	// ErrNotFound reports a lookup of an absent key or cell index.
	ErrNotFound = errors.New("slotted: not found")
)

// Header is the decoded slot header. While a Page handle is open, Header is
// the authoritative copy; the encoded bytes in the underlying memory are
// whatever the commit protocol has installed so far.
type Header struct {
	Type    byte
	Flags   byte
	Content uint16 // content-area start; never 0 once initialised
	Free    uint16 // total bytes in the free list (plus pending frees)
	FreeLst uint16 // free-list head offset; 0 = empty; not failure-atomic
	Aux     uint32 // interior: rightmost child page; leaf: right sibling
	Offsets []uint16
}

// EncodedLen returns the byte length of the encoded header.
func (h *Header) EncodedLen() int { return HeaderFixedSize + 2*len(h.Offsets) }

// Encode renders the header into a fresh byte slice.
func (h *Header) Encode() []byte {
	return h.EncodeInto(nil)
}

// EncodeInto renders the header into buf, reusing its capacity when it
// suffices, and returns the encoded bytes. The commit schemes call this with
// a per-transaction scratch buffer so the hot path does not allocate.
func (h *Header) EncodeInto(buf []byte) []byte {
	n := h.EncodedLen()
	var b []byte
	if cap(buf) >= n {
		b = buf[:n]
	} else {
		b = make([]byte, n)
	}
	b[0] = h.Type
	b[1] = h.Flags
	binary.LittleEndian.PutUint16(b[2:], uint16(len(h.Offsets)))
	binary.LittleEndian.PutUint16(b[4:], h.Content)
	binary.LittleEndian.PutUint16(b[6:], h.Free)
	binary.LittleEndian.PutUint16(b[8:], h.FreeLst)
	binary.LittleEndian.PutUint32(b[10:], h.Aux)
	for i, o := range h.Offsets {
		binary.LittleEndian.PutUint16(b[HeaderFixedSize+2*i:], o)
	}
	return b
}

// Clone deep-copies the header.
func (h *Header) Clone() Header {
	c := *h
	c.Offsets = append([]uint16(nil), h.Offsets...)
	return c
}

// DecodeHeader parses a header from the start of a page image prefix. The
// prefix must contain at least HeaderFixedSize bytes and the full offset
// array (callers read HeaderFixedSize first, inspect ncells, then reread).
func DecodeHeader(b []byte, pageSize int) (Header, error) {
	var h Header
	if err := DecodeHeaderInto(&h, b, pageSize); err != nil {
		return Header{}, err
	}
	return h, nil
}

// DecodeHeaderInto parses a header into h, reusing h.Offsets's capacity.
func DecodeHeaderInto(h *Header, b []byte, pageSize int) error {
	if len(b) < HeaderFixedSize {
		return fmt.Errorf("%w: header prefix too short", ErrCorrupt)
	}
	n := int(binary.LittleEndian.Uint16(b[2:]))
	if len(b) < HeaderFixedSize+2*n {
		return fmt.Errorf("%w: offset array truncated (ncells=%d)", ErrCorrupt, n)
	}
	offsets := h.Offsets
	if cap(offsets) >= n {
		offsets = offsets[:n]
	} else {
		offsets = make([]uint16, n)
	}
	*h = Header{
		Type:    b[0],
		Flags:   b[1],
		Content: binary.LittleEndian.Uint16(b[4:]),
		Free:    binary.LittleEndian.Uint16(b[6:]),
		FreeLst: binary.LittleEndian.Uint16(b[8:]),
		Aux:     binary.LittleEndian.Uint32(b[10:]),
		Offsets: offsets,
	}
	if h.Content == 0 {
		h.Content = uint16(pageSize)
	}
	for i := range h.Offsets {
		h.Offsets[i] = binary.LittleEndian.Uint16(b[HeaderFixedSize+2*i:])
	}
	if int(h.Content) > pageSize {
		return fmt.Errorf("%w: content start %d beyond page size %d", ErrCorrupt, h.Content, pageSize)
	}
	return nil
}
