package slotted

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func key(i int) []byte { return []byte(fmt.Sprintf("key%06d", i)) }

func newLeaf(size int) (*Page, *MemBuf) {
	m := NewMemBuf(size)
	return Init(m, TypeLeaf), m
}

func TestHeaderEncodeDecodeRoundTrip(t *testing.T) {
	h := Header{Type: TypeLeaf, Flags: 3, Content: 4000, Free: 12, FreeLst: 3990, Aux: 77,
		Offsets: []uint16{100, 200, 300}}
	enc := h.Encode()
	got, err := DecodeHeader(enc, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != h.Type || got.Flags != h.Flags || got.Content != h.Content ||
		got.Free != h.Free || got.FreeLst != h.FreeLst || got.Aux != h.Aux {
		t.Fatalf("decoded = %+v, want %+v", got, h)
	}
	if len(got.Offsets) != 3 || got.Offsets[1] != 200 {
		t.Fatalf("offsets = %v", got.Offsets)
	}
}

func TestDecodeHeaderErrors(t *testing.T) {
	if _, err := DecodeHeader([]byte{1, 2}, 4096); !errors.Is(err, ErrCorrupt) {
		t.Errorf("short prefix: %v", err)
	}
	h := Header{Type: TypeLeaf, Offsets: []uint16{1, 2, 3}}
	enc := h.Encode()
	if _, err := DecodeHeader(enc[:HeaderFixedSize+2], 4096); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated offsets: %v", err)
	}
}

func TestInsertAndSearch(t *testing.T) {
	p, _ := newLeaf(4096)
	for _, i := range []int{5, 1, 9, 3, 7} {
		if err := p.Insert(key(i), []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if p.NCells() != 5 {
		t.Fatalf("ncells = %d", p.NCells())
	}
	// Keys must be sorted regardless of insertion order.
	for i := 1; i < p.NCells(); i++ {
		if bytes.Compare(p.Key(i-1), p.Key(i)) >= 0 {
			t.Fatalf("keys out of order: %q >= %q", p.Key(i-1), p.Key(i))
		}
	}
	idx, found := p.Search(key(7))
	if !found {
		t.Fatal("key 7 not found")
	}
	if got := string(p.Value(idx)); got != "val-7" {
		t.Fatalf("value = %q", got)
	}
	if _, found := p.Search(key(4)); found {
		t.Fatal("phantom key found")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertDuplicateRejected(t *testing.T) {
	p, _ := newLeaf(4096)
	if err := p.Insert(key(1), []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := p.Insert(key(1), []byte("b")); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v, want ErrDuplicate", err)
	}
}

func TestUpdateIsOutOfPlace(t *testing.T) {
	p, m := newLeaf(4096)
	if err := p.Insert(key(1), []byte("original")); err != nil {
		t.Fatal(err)
	}
	oldOff := p.Header().Offsets[0]
	if err := p.Update(0, []byte("replacement")); err != nil {
		t.Fatal(err)
	}
	newOff := p.Header().Offsets[0]
	if newOff == oldOff {
		t.Fatal("update overwrote the record in place")
	}
	// The old record bytes are still intact at the old offset until the
	// free block header is linked over them (immediate mode links at once,
	// but only the first 4 bytes are touched).
	raw := m.Buf[int(oldOff)+4 : int(oldOff)+4+len("key000001")]
	if !bytes.Equal(raw, []byte("key000001")) {
		t.Fatalf("old key bytes damaged: %q", raw)
	}
	if got := string(p.Value(0)); got != "replacement" {
		t.Fatalf("value = %q", got)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteAndFreeListReuse(t *testing.T) {
	p, _ := newLeaf(4096)
	for i := 0; i < 10; i++ {
		if err := p.Insert(key(i), bytes.Repeat([]byte{byte(i)}, 50)); err != nil {
			t.Fatal(err)
		}
	}
	freeBefore := p.FreeTotal()
	if err := p.Delete(4); err != nil {
		t.Fatal(err)
	}
	if p.NCells() != 9 {
		t.Fatalf("ncells = %d", p.NCells())
	}
	if _, found := p.Search(key(4)); found {
		t.Fatal("deleted key still found")
	}
	if p.FreeTotal() <= freeBefore {
		t.Fatal("free space did not grow after delete")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// A same-size insert should reuse the freed block once the gap runs out.
	if err := p.Insert(key(100), bytes.Repeat([]byte{9}, 50)); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeferredFreesKeepOldBytesIntact(t *testing.T) {
	p, m := newLeaf(4096)
	if err := p.Insert(key(1), []byte("precious-data")); err != nil {
		t.Fatal(err)
	}
	off := int(p.Header().Offsets[0])
	imgBefore := append([]byte(nil), m.Buf[off:off+4+9+13]...)
	p.SetDeferFrees(true)
	if err := p.Delete(0); err != nil {
		t.Fatal(err)
	}
	if p.PendingFrees() != 1 {
		t.Fatalf("pending frees = %d", p.PendingFrees())
	}
	if !bytes.Equal(m.Buf[off:off+len(imgBefore)], imgBefore) {
		t.Fatal("deferred free damaged committed record bytes")
	}
	// Deferred space must not be reallocated before commit.
	if p.FreeTotal() != p.gapAfter(1) {
		t.Fatalf("pending free space counted as allocatable: %d", p.FreeTotal())
	}
	p.ApplyPendingFrees()
	if p.PendingFrees() != 0 {
		t.Fatal("pending frees not cleared")
	}
	if err := p.CheckFreeList(); err != nil {
		t.Fatal(err)
	}
	// Now the block header overwrote the first bytes.
	if bytes.Equal(m.Buf[off:off+4], imgBefore[:4]) && p.Header().FreeLst == uint16(off) {
		t.Fatal("free block header not written")
	}
}

func TestPageFullAndNeedsDefrag(t *testing.T) {
	p, _ := newLeaf(512)
	// Fill the page with several records.
	n := 0
	for ; ; n++ {
		err := p.Insert(key(n), bytes.Repeat([]byte{1}, 60))
		if err != nil {
			if !errors.Is(err, ErrPageFull) {
				t.Fatalf("fill err = %v", err)
			}
			break
		}
	}
	if n < 5 {
		t.Fatalf("only %d inserts fit", n)
	}
	// Delete two non-adjacent records: enough total space, fragmented.
	if err := p.Delete(0); err != nil {
		t.Fatal(err)
	}
	if err := p.Delete(2); err != nil {
		t.Fatal(err)
	}
	err := p.Insert([]byte("zz-big"), bytes.Repeat([]byte{2}, 100))
	if !errors.Is(err, ErrNeedsDefrag) {
		t.Fatalf("err = %v, want ErrNeedsDefrag", err)
	}
	// A record larger than all free space reports ErrPageFull.
	err = p.Insert([]byte("zz-huge"), bytes.Repeat([]byte{2}, 400))
	if !errors.Is(err, ErrPageFull) {
		t.Fatalf("err = %v, want ErrPageFull", err)
	}
}

func TestCopyRangeToCompacts(t *testing.T) {
	p, _ := newLeaf(1024)
	for i := 0; i < 8; i++ {
		if err := p.Insert(key(i), bytes.Repeat([]byte{byte(i)}, 40)); err != nil {
			t.Fatal(err)
		}
	}
	for _, i := range []int{6, 3, 0} {
		if err := p.Delete(i); err != nil {
			t.Fatal(err)
		}
	}
	dst, _ := newLeaf(1024)
	if err := p.CopyRangeTo(dst, 0, p.NCells()); err != nil {
		t.Fatal(err)
	}
	if dst.NCells() != p.NCells() {
		t.Fatalf("dst cells = %d, want %d", dst.NCells(), p.NCells())
	}
	// Total free space is conserved, but in dst it is all contiguous gap:
	// no free-list fragments remain.
	if dst.Header().FreeLst != 0 || dst.Header().Free != 0 {
		t.Fatalf("compacted page still fragmented: free=%d head=%d", dst.Header().Free, dst.Header().FreeLst)
	}
	if p.Header().FreeLst == 0 {
		t.Fatal("source page unexpectedly unfragmented; test is vacuous")
	}
	for i := 0; i < dst.NCells(); i++ {
		if !bytes.Equal(dst.Key(i), p.Key(i)) || !bytes.Equal(dst.Value(i), p.Value(i)) {
			t.Fatalf("cell %d mismatch after copy", i)
		}
	}
	if err := dst.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTruncateKeepUpper(t *testing.T) {
	p, _ := newLeaf(2048)
	for i := 0; i < 10; i++ {
		if err := p.Insert(key(i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	p.SetDeferFrees(true)
	p.TruncateKeepUpper(6)
	if p.NCells() != 4 {
		t.Fatalf("ncells = %d, want 4", p.NCells())
	}
	if !bytes.Equal(p.Key(0), key(6)) {
		t.Fatalf("first key = %q", p.Key(0))
	}
	if p.PendingFrees() != 6 {
		t.Fatalf("pending frees = %d, want 6", p.PendingFrees())
	}
	p.ApplyPendingFrees()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInteriorPageChildren(t *testing.T) {
	m := NewMemBuf(1024)
	p := Init(m, TypeInterior)
	for i := 0; i < 5; i++ {
		if err := p.InsertChild(key(i*10), uint32(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	p.SetAux(999)
	if p.Aux() != 999 {
		t.Fatal("aux lost")
	}
	i, found := p.Search(key(20))
	if !found || p.Child(i) != 102 {
		t.Fatalf("child(20) = %d found=%v", p.Child(i), found)
	}
	if err := p.UpdateChild(i, 555); err != nil {
		t.Fatal(err)
	}
	if p.Child(i) != 555 {
		t.Fatalf("child after update = %d", p.Child(i))
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRereadsHeader(t *testing.T) {
	m := NewMemBuf(4096)
	p := Init(m, TypeLeaf)
	if err := p.Insert(key(1), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	q, err := Open(m)
	if err != nil {
		t.Fatal(err)
	}
	if q.NCells() != 1 || !bytes.Equal(q.Value(0), []byte("v1")) {
		t.Fatal("reopened page lost data")
	}
}

func TestRebuildFreeListRecoversAllSpace(t *testing.T) {
	p, _ := newLeaf(2048)
	for i := 0; i < 12; i++ {
		if err := p.Insert(key(i), bytes.Repeat([]byte{1}, 30+i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, i := range []int{9, 5, 1} {
		if err := p.Delete(i); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate crash damage: corrupt the free-list head.
	p.Header().FreeLst = 7 // nonsense offset
	p.Header().Free = 9999
	if p.CheckFreeList() == nil {
		t.Fatal("corrupt free list passed check")
	}
	p.RebuildFreeList()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// All non-cell content bytes are free again: inserting until full should
	// recover at least as much space as the cells we deleted.
	if err := p.Insert(key(100), bytes.Repeat([]byte{2}, 30)); err != nil {
		t.Fatalf("insert after rebuild: %v", err)
	}
}

func TestMaxInPlaceCellsConstant(t *testing.T) {
	if MaxInPlaceCells != 25 {
		t.Fatalf("MaxInPlaceCells = %d, want 25 ((64-14)/2)", MaxInPlaceCells)
	}
	h := Header{Type: TypeLeaf, Offsets: make([]uint16, MaxInPlaceCells)}
	if h.EncodedLen() > 64 {
		t.Fatalf("header with max in-place cells is %d bytes > cache line", h.EncodedLen())
	}
}

// refModel is a map-based reference the property tests compare against.
type refModel map[string]string

func TestPageMatchesReferenceModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, _ := newLeaf(4096)
		ref := refModel{}
		for step := 0; step < 300; step++ {
			k := key(rng.Intn(40))
			switch rng.Intn(3) {
			case 0: // insert
				v := fmt.Sprintf("v%d", rng.Intn(1000))
				err := p.Insert(k, []byte(v))
				_, exists := ref[string(k)]
				switch {
				case errors.Is(err, ErrDuplicate):
					if !exists {
						return false
					}
				case errors.Is(err, ErrNeedsDefrag), errors.Is(err, ErrPageFull):
					// Acceptable: page space exhausted.
				case err == nil:
					if exists {
						return false
					}
					ref[string(k)] = v
				default:
					return false
				}
			case 1: // update
				if i, found := p.Search(k); found {
					v := fmt.Sprintf("u%d", rng.Intn(1000))
					if err := p.Update(i, []byte(v)); err == nil {
						ref[string(k)] = v
					} else if !errors.Is(err, ErrNeedsDefrag) && !errors.Is(err, ErrPageFull) {
						return false
					}
				}
			case 2: // delete
				if i, found := p.Search(k); found {
					if err := p.Delete(i); err != nil {
						return false
					}
					delete(ref, string(k))
				}
			}
			if p.Validate() != nil {
				return false
			}
		}
		// Final contents must match the model exactly.
		if p.NCells() != len(ref) {
			return false
		}
		keys := make([]string, 0, len(ref))
		for k := range ref {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for i, k := range keys {
			if !bytes.Equal(p.Key(i), []byte(k)) || string(p.Value(i)) != ref[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: an uncommitted header (in the handle) never requires the
// committed image to change — reopening the MemBuf image before
// HeaderChanged-driven writes would still decode. Here we check the
// stronger, simpler invariant that Encode/Decode round-trips arbitrary
// headers.
func TestHeaderRoundTripProperty(t *testing.T) {
	f := func(typ, flags byte, content, free, freeLst uint16, aux uint32, offs []uint16) bool {
		if len(offs) > 500 {
			offs = offs[:500]
		}
		h := Header{Type: typ, Flags: flags, Content: content % 4096, Free: free,
			FreeLst: freeLst, Aux: aux, Offsets: offs}
		if h.Content == 0 {
			h.Content = 1
		}
		got, err := DecodeHeader(h.Encode(), 4096)
		if err != nil {
			return false
		}
		if got.Type != h.Type || got.Content != h.Content || got.Aux != h.Aux ||
			len(got.Offsets) != len(h.Offsets) {
			return false
		}
		for i := range offs {
			if got.Offsets[i] != offs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCellExtentSizes(t *testing.T) {
	p, _ := newLeaf(4096)
	if err := p.Insert([]byte("abc"), []byte("defgh")); err != nil {
		t.Fatal(err)
	}
	e := p.cellExtent(0)
	if e.size != 4+3+5 {
		t.Fatalf("leaf cell size = %d, want 12", e.size)
	}
	m := NewMemBuf(4096)
	q := Init(m, TypeInterior)
	if err := q.InsertChild([]byte("abc"), 7); err != nil {
		t.Fatal(err)
	}
	if e := q.cellExtent(0); e.size != 6+3 {
		t.Fatalf("interior cell size = %d, want 9", e.size)
	}
}

func TestMemBufOnWrite(t *testing.T) {
	m := NewMemBuf(256)
	var writes []int
	m.OnWrite = func(off, n int) { writes = append(writes, off, n) }
	p := Init(m, TypeLeaf) // header write
	if err := p.Insert([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if len(writes) < 4 {
		t.Fatalf("OnWrite not invoked enough: %v", writes)
	}
	// Sanity: MemBuf image header decodes to the handle's header.
	got, err := DecodeHeader(m.Buf, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Offsets) != 1 || got.Offsets[0] != p.Header().Offsets[0] {
		t.Fatal("image header out of sync")
	}
	_ = binary.LittleEndian // keep import if unused elsewhere
}
