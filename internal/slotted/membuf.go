package slotted

// MemBuf is a Mem over a flat byte slice: content writes and header changes
// both apply immediately to the image. It backs unit tests and the volatile
// (DRAM) buffer-cache page images of the baseline schemes.
type MemBuf struct {
	Buf []byte
	// OnWrite, if non-nil, observes every write (offset, length); the
	// NVWAL backend uses it for dirty-range tracking.
	OnWrite func(off, n int)
}

// NewMemBuf allocates a zeroed page image of the given size.
func NewMemBuf(size int) *MemBuf { return &MemBuf{Buf: make([]byte, size)} }

// PageSize returns the image size.
func (m *MemBuf) PageSize() int { return len(m.Buf) }

// Read returns a copy of n bytes at off.
func (m *MemBuf) Read(off, n int) []byte {
	out := make([]byte, n)
	copy(out, m.Buf[off:off+n])
	return out
}

// ReadInto copies len(dst) bytes at off into dst (ScratchMem).
func (m *MemBuf) ReadInto(off int, dst []byte) {
	copy(dst, m.Buf[off:off+len(dst)])
}

// Write stores src at off.
func (m *MemBuf) Write(off int, src []byte) {
	copy(m.Buf[off:], src)
	if m.OnWrite != nil {
		m.OnWrite(off, len(src))
	}
}

// HeaderChanged re-encodes the header into the image.
func (m *MemBuf) HeaderChanged(h *Header) {
	enc := h.Encode()
	copy(m.Buf, enc)
	if m.OnWrite != nil {
		m.OnWrite(0, len(enc))
	}
}
