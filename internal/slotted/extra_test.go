package slotted

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: after any operation mix, copy-on-write compaction preserves
// exactly the live records and reclaims all free space.
func TestCompactionEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, _ := newLeaf(2048)
		for step := 0; step < 150; step++ {
			switch rng.Intn(3) {
			case 0:
				_ = p.Insert(key(rng.Intn(60)), bytes.Repeat([]byte{7}, 10+rng.Intn(60)))
			case 1:
				if p.NCells() > 0 {
					_ = p.Update(rng.Intn(p.NCells()), bytes.Repeat([]byte{8}, 10+rng.Intn(60)))
				}
			case 2:
				if p.NCells() > 0 {
					_ = p.Delete(rng.Intn(p.NCells()))
				}
			}
		}
		dst, _ := newLeaf(2048)
		if err := p.CopyRangeTo(dst, 0, p.NCells()); err != nil {
			return false
		}
		if dst.NCells() != p.NCells() {
			return false
		}
		for i := 0; i < p.NCells(); i++ {
			if !bytes.Equal(dst.Key(i), p.Key(i)) || !bytes.Equal(dst.Value(i), p.Value(i)) {
				return false
			}
		}
		// Compacted page has zero fragmentation and its capacity equals
		// the original's capacity-after-defrag (same live set).
		if dst.Header().Free != 0 || dst.Header().FreeLst != 0 {
			return false
		}
		return dst.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: whenever Insert reports ErrNeedsDefrag, the same insert
// succeeds on a compacted copy; whenever it reports ErrPageFull, it fails
// there too. This is the contract the B-tree's split/defrag decision
// depends on.
func TestDefragErrorContract(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, _ := newLeaf(512)
		for step := 0; step < 60; step++ {
			if rng.Intn(3) == 0 && p.NCells() > 0 {
				_ = p.Delete(rng.Intn(p.NCells()))
			} else {
				_ = p.Insert(key(rng.Intn(200)+1000), bytes.Repeat([]byte{1}, 10+rng.Intn(50)))
			}
		}
		k := key(5000)
		val := bytes.Repeat([]byte{2}, 10+rng.Intn(200))
		err := p.Insert(k, val)
		if err == nil || errors.Is(err, ErrDuplicate) {
			return true
		}
		// Replay onto a compacted copy.
		dst, _ := newLeaf(512)
		if cerr := p.CopyRangeTo(dst, 0, p.NCells()); cerr != nil {
			return false
		}
		dstErr := dst.Insert(k, val)
		switch {
		case errors.Is(err, ErrNeedsDefrag):
			return dstErr == nil
		case errors.Is(err, ErrPageFull):
			return dstErr != nil
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: RebuildFreeList after arbitrary damage restores a page where
// CheckFreeList passes and all non-live space is allocatable again.
func TestRebuildAfterArbitraryFreeListDamage(t *testing.T) {
	f := func(seed int64, junkHead uint16, junkFree uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		p, _ := newLeaf(1024)
		for i := 0; i < 12; i++ {
			_ = p.Insert(key(i), bytes.Repeat([]byte{3}, 20+rng.Intn(30)))
		}
		for i := 0; i < 4 && p.NCells() > 0; i++ {
			_ = p.Delete(rng.Intn(p.NCells()))
		}
		live := p.NCells()
		// Corrupt the free-list header fields arbitrarily.
		p.Header().FreeLst = junkHead
		p.Header().Free = junkFree
		p.RebuildFreeList()
		if p.CheckFreeList() != nil || p.Validate() != nil {
			return false
		}
		return p.NCells() == live
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestOffsetArraySqueezeReportsDefrag(t *testing.T) {
	// Regression for the bug found by the delete/reinsert longevity test:
	// a page whose content start is pressed against the header must report
	// ErrNeedsDefrag (copy-on-write fixes it), not ErrPageFull.
	m := NewMemBuf(256)
	p := Init(m, TypeLeaf)
	// Fill completely with small records.
	i := 0
	for {
		if err := p.Insert(key(i), bytes.Repeat([]byte{1}, 8)); err != nil {
			break
		}
		i++
	}
	// Delete all but one record: plenty of free-list space, but the gap
	// between the offset array and contentStart may be ~zero.
	for p.NCells() > 1 {
		if err := p.Delete(p.NCells() - 1); err != nil {
			t.Fatal(err)
		}
	}
	err := p.Insert(key(9999), bytes.Repeat([]byte{2}, 8))
	for err != nil {
		if errors.Is(err, ErrNeedsDefrag) {
			// Compact and retry — must succeed.
			dst, _ := newLeaf(256)
			if cerr := p.CopyRangeTo(dst, 0, p.NCells()); cerr != nil {
				t.Fatal(cerr)
			}
			if err2 := dst.Insert(key(9999), bytes.Repeat([]byte{2}, 8)); err2 != nil {
				t.Fatalf("insert after compaction: %v", err2)
			}
			return
		}
		t.Fatalf("unexpected error: %v", err)
	}
	// Direct success is also acceptable (gap happened to survive).
}

func TestHeaderCloneIsDeep(t *testing.T) {
	h := Header{Type: TypeLeaf, Offsets: []uint16{1, 2, 3}}
	c := h.Clone()
	c.Offsets[0] = 99
	if h.Offsets[0] != 1 {
		t.Fatal("Clone shares the offsets slice")
	}
}

func TestFreeTotalExcludesPending(t *testing.T) {
	p, _ := newLeaf(1024)
	for i := 0; i < 5; i++ {
		if err := p.Insert(key(i), bytes.Repeat([]byte{1}, 50)); err != nil {
			t.Fatal(err)
		}
	}
	p.SetDeferFrees(true)
	before := p.FreeTotal()
	if err := p.Delete(2); err != nil {
		t.Fatal(err)
	}
	// The freed extent is pending: allocatable space must not grow by the
	// cell size (only by the offset-entry bookkeeping slack).
	after := p.FreeTotal()
	if after > before+4 {
		t.Fatalf("pending free counted as allocatable: %d -> %d", before, after)
	}
	p.ApplyPendingFrees()
	if p.FreeTotal() <= after {
		t.Fatal("applied frees did not become allocatable")
	}
}

// Property: opening arbitrary page images never panics — it either decodes
// (and subsequent reads stay in bounds thanks to Validate) or errors.
func TestOpenArbitraryImageNeverPanics(t *testing.T) {
	f := func(img []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		buf := make([]byte, 512)
		copy(buf, img)
		m := &MemBuf{Buf: buf}
		p, err := Open(m)
		if err != nil {
			return true
		}
		// Validate must classify garbage without panicking; if it passes,
		// basic accessors must be safe too.
		if p.Validate() == nil {
			for i := 0; i < p.NCells(); i++ {
				_ = p.Key(i)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
