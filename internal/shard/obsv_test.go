package shard_test

import (
	"errors"
	"testing"
	"time"

	"fasp/internal/obsv"
	"fasp/internal/shard"
)

// TestDoAfterCloseReturnsErrClosed pins the post-Close submission bug:
// before the closed flag, an op enqueued into a buffered mailbox after the
// writer exited would block its submitter forever waiting for a reply.
// Now every submission path must fail fast with ErrClosed.
func TestDoAfterCloseReturnsErrClosed(t *testing.T) {
	e, err := shard.New(testConfig(2, 8, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Do(shard.Op{Kind: shard.OpPut, Key: key(1), Val: val(1)}); err != nil {
		t.Fatal(err)
	}
	e.Close()
	if !e.Closed() {
		t.Fatal("Closed() false after Close")
	}

	done := make(chan error, 1)
	go func() {
		done <- e.Do(shard.Op{Kind: shard.OpPut, Key: key(2), Val: val(2)})
	}()
	select {
	case err := <-done:
		if !errors.Is(err, shard.ErrClosed) {
			t.Fatalf("Do after Close = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do after Close deadlocked (the pre-fix behaviour)")
	}

	errs := e.DoBatch([]shard.Op{
		{Kind: shard.OpPut, Key: key(3), Val: val(3)},
		{Kind: shard.OpPut, Key: key(4), Val: val(4)},
	})
	for i, err := range errs {
		if !errors.Is(err, shard.ErrClosed) {
			t.Fatalf("DoBatch[%d] after Close = %v, want ErrClosed", i, err)
		}
	}
	e.Close() // still idempotent with the closed flag set
}

// TestEngineRecorderAndGauges checks the engine-side instrumentation: a
// configured recorder sees every op (wall + sim + batch accounting), and
// Gauges exposes per-shard throughput and health.
func TestEngineRecorderAndGauges(t *testing.T) {
	rec := obsv.New(obsv.Config{SampleEvery: 1})
	cfg := testConfig(4, 8, 0)
	cfg.Recorder = rec
	// The facade supplies the scheme-aware bridge; the engine test bridges
	// just the machine counters.
	cfg.Counters = func(i int, be *shard.Backend) obsv.Counters {
		return obsv.Counters{Flush: be.Arena.Stats().FlushCalls, Fence: be.Sys.Fences()}
	}
	e, err := shard.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	const n = 200
	for i := 0; i < n; i++ {
		if err := e.Do(shard.Op{Kind: shard.OpPut, Key: key(i), Val: val(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := e.Get(key(5)); err != nil {
		t.Fatal(err)
	}

	s := rec.Snapshot()
	if got := s.OpStats(obsv.OpPut); got.Count != n {
		t.Fatalf("put wall observations = %d, want %d", got.Count, n)
	}
	if got := s.OpStats(obsv.OpPut); got.SimP50NS <= 0 {
		t.Fatalf("put sim p50 = %d, want > 0", got.SimP50NS)
	}
	if s.OpStats(obsv.OpGet).Count != 1 {
		t.Fatalf("get observations = %d, want 1", s.OpStats(obsv.OpGet).Count)
	}
	if s.Batches <= 0 || s.BatchSize.Count != s.Batches {
		t.Fatalf("batch accounting: batches=%d sizes=%d", s.Batches, s.BatchSize.Count)
	}
	if s.MailDepth.Count != s.Batches {
		t.Fatalf("mailbox depth observed %d times, want one per drain (%d)",
			s.MailDepth.Count, s.Batches)
	}
	if s.Events.Flush <= 0 || s.Events.Fence <= 0 {
		t.Fatalf("commit-path events not bridged: %+v", s.Events)
	}
	if len(rec.TraceSamples()) == 0 {
		t.Fatal("no trace samples at SampleEvery=1")
	}

	gs := e.Gauges()
	if len(gs) != 4 {
		t.Fatalf("gauges for %d shards, want 4", len(gs))
	}
	var ops int64
	for i, g := range gs {
		if g.Shard != i {
			t.Fatalf("gauge %d has shard %d", i, g.Shard)
		}
		if g.Health != "healthy" {
			t.Fatalf("shard %d health %q", i, g.Health)
		}
		if g.SimNS <= 0 || g.Flushes <= 0 || g.Fences <= 0 {
			t.Fatalf("shard %d gauge empty: %+v", i, g)
		}
		ops += g.Ops
	}
	if ops != n {
		t.Fatalf("gauge ops sum = %d, want %d", ops, n)
	}
}
