package shard

import (
	"bytes"
	"runtime"
	"sync"
	"time"

	"fasp/internal/btree"
	"fasp/internal/obsv"
	"fasp/internal/pager"
)

// Optimistic concurrent read path.
//
// The paper's slot header is the per-page atomic commit mark: a reader that
// observes a consistent committed header observes a consistent page. That
// is exactly the invariant a latch-free read protocol needs — the only
// remaining hazard is reading WHILE a commit is installing headers. The
// shard engine closes that window with an epoch-pinned seqlock:
//
//   - s.seq is the writer's sequence: even = quiescent, odd = mutating.
//     Every mutator (group-commit apply, heal, crash, restore — and the
//     locked read fallback, whose pager transaction mutates the simulated
//     cache and clock) brackets its critical section with beginMutate /
//     endMutate while holding s.mu.
//   - A reader registers in s.readers, then re-checks s.seq: if it changed
//     (or was odd), the reader backs out and retries. Once registered under
//     an even, unchanged seq, the reader owns a quiescent snapshot for as
//     long as it stays registered — beginMutate spins until s.readers
//     drains, so no re-validation after the walk is needed and the race
//     detector sees a clean happens-before edge in both directions.
//   - Registered readers only Peek (pure reads of committed state through
//     pager.SnapshotReader), never touching the clock, the cache overlay or
//     the crash injector — reads add no crash points and leave the golden
//     determinism files bit-identical.
//
// Readers hold the epoch only briefly (one Get descent, one scan chunk), so
// the writer's spin is bounded; writers take priority by flipping seq odd
// first, which makes new readers back off immediately.

const (
	// getMaxAttempts bounds optimistic epoch acquisition before a read
	// falls back to the locked path (pathological write storms keep
	// today's semantics, just slower).
	getMaxAttempts = 8
	// scanChunkPairs / scanChunkBytes bound one optimistic scan chunk —
	// the longest a scan may pin the read epoch (and hence stall a writer
	// behind the gate) before releasing and resuming past its last key.
	scanChunkPairs = 256
	scanChunkBytes = 32 << 10
)

// readState publishes the handles an optimistic reader needs. It is
// replaced wholesale (under the write gate) when Heal swaps the store, so a
// registered reader can never mix an old tree with a new arena.
type readState struct {
	sr       pager.SnapshotReader
	pageSize int
}

// publishReadState derives the optimistic-read handles from the current
// store. Stores that do not implement pager.SnapshotReader (wrapped test
// stores, exotic schemes) publish nil and every read takes the locked path.
// Called under s.mu, inside the write gate when readers may exist.
func (s *state) publishReadState() {
	if sr, ok := s.be.Store.(pager.SnapshotReader); ok {
		s.reader.Store(&readState{sr: sr, pageSize: s.be.Store.PageSize()})
	} else {
		s.reader.Store(nil)
	}
}

// setHealth mirrors the crashed/degraded flags into the atomic health word
// optimistic readers check. Called under s.mu, inside the write gate, so a
// registered reader that passed the health check cannot miss a transition
// that completed before it registered.
func (s *state) setHealth() {
	h := Healthy
	switch {
	case s.crashed:
		h = Crashed
	case s.degraded:
		h = Degraded
	}
	s.health.Store(int32(h))
}

// beginMutate opens the write gate: flip the sequence odd (new readers back
// off), then wait for registered readers to drain. Callers hold s.mu.
func (s *state) beginMutate() {
	s.seq.Add(1)
	for s.readers.Load() != 0 {
		runtime.Gosched()
	}
}

// endMutate closes the write gate (sequence back to even) and publishes
// the machine's simulated clock into the lock-free mirror (SimClocks).
func (s *state) endMutate() {
	s.simNow.Store(s.be.Sys.Clock().Now())
	s.seq.Add(1)
}

// viewStatus is acquireView's outcome.
type viewStatus int

const (
	viewOK       viewStatus = iota // registered; caller must releaseView
	viewRetry                      // writer active; back off and retry
	viewFallback                   // no optimistic path; use the locked path
)

var viewPool = sync.Pool{New: func() any { return btree.NewView() }}

// acquireView registers the caller in the read epoch and binds a pooled
// B-tree view to the shard's committed snapshot. On viewOK the caller MUST
// call releaseView — the writer spins on the reader count.
func (s *state) acquireView() (*btree.View, viewStatus) {
	if s.noOpt {
		return nil, viewFallback
	}
	seq := s.seq.Load()
	if seq&1 != 0 {
		return nil, viewRetry
	}
	s.readers.Add(1)
	if s.seq.Load() != seq {
		s.readers.Add(-1)
		return nil, viewRetry
	}
	// Registered under a quiescent shard. The health word and read state
	// are (re)checked only now: both are updated inside the write gate, so
	// whatever this load sees is the completed truth, never a mid-mutation
	// value — a crashed shard cannot leak a garbage walk past this point.
	if Health(s.health.Load()) != Healthy {
		s.readers.Add(-1)
		return nil, viewFallback
	}
	rs := s.reader.Load()
	if rs == nil {
		s.readers.Add(-1)
		return nil, viewFallback
	}
	v := viewPool.Get().(*btree.View)
	v.Reset(rs.sr, rs.pageSize)
	return v, viewOK
}

// releaseView leaves the read epoch and returns the view to the pool.
func (s *state) releaseView(v *btree.View) {
	s.readers.Add(-1)
	v.Release()
	viewPool.Put(v)
}

// readBackoff paces epoch-acquisition retries: yield first, then grow short
// sleeps, so a group commit in flight is overlapped rather than hammered.
func readBackoff(attempt int) {
	if attempt < 4 {
		runtime.Gosched()
		return
	}
	time.Sleep(time.Microsecond << uint(attempt-4))
}

// Get reads a key from its shard, optimistically when possible.
func (e *Engine) Get(key []byte) ([]byte, bool, error) {
	return e.shards[e.ShardFor(key)].get(key, nil)
}

// GetInto is Get with a caller-supplied destination buffer: the value is
// appended to dst[:0], so a steady-state reader with a large enough
// buffer performs no heap allocation on the optimistic path. The locked
// fallback (unhealthy shard, optimism disabled, no snapshot reader)
// ignores dst and allocates as Get does.
func (e *Engine) GetInto(key, dst []byte) ([]byte, bool, error) {
	return e.shards[e.ShardFor(key)].get(key, dst)
}

// get serves one point read. The optimistic path registers in the read
// epoch, walks the committed tree through the snapshot reader, and reports
// the walk's simulated cost — which mirrors what the locked path's arena
// loads would have charged — to the recorder. Contention retries with
// bounded backoff; unhealthy shards, disabled optimism and stores without a
// snapshot reader fall back to the locked path, which owns the canonical
// error behaviour (ErrCrashed, wrapped ErrShardDown).
func (s *state) get(key, dst []byte) ([]byte, bool, error) {
	var t0 time.Time
	if s.rec != nil {
		t0 = time.Now()
	}
	for attempt := 0; attempt < getMaxAttempts; attempt++ {
		v, st := s.acquireView()
		switch st {
		case viewRetry:
			readBackoff(attempt)
			continue
		case viewFallback:
			s.rec.ObserveReadPath(false, attempt)
			return s.lockedGet(key)
		}
		val, ok, err := v.Get(key, dst)
		cost := v.Cost()
		s.releaseView(v)
		if s.rec != nil {
			s.rec.ObserveWall(obsv.OpGet, int32(s.id), time.Since(t0).Nanoseconds())
			s.rec.ObserveSim(obsv.OpGet, cost)
			s.rec.ObserveReadPath(true, attempt)
		}
		return val, ok, err
	}
	s.rec.ObserveReadPath(false, getMaxAttempts)
	return s.lockedGet(key)
}

// lockedGet is the pre-optimistic Get: shard lock, canonical availability
// errors, a pager-transaction tree read. The read mutates the simulated
// cache and clock, so it runs inside the write gate like any mutator.
func (s *state) lockedGet(key []byte) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.unavailable(); err != nil {
		return nil, false, err
	}
	s.beginMutate()
	defer s.endMutate()
	var sp obsv.Span
	if s.rec != nil {
		sp = s.rec.Begin(s.be.Sys.Clock().Now(), obsv.Counters{})
	}
	v, ok, err := s.tree.Get(key)
	if s.rec != nil {
		s.rec.End(sp, obsv.OpGet, int32(s.id), s.be.Sys.Clock().Now(), obsv.Counters{})
	}
	return v, ok, err
}

// --- Chunked range reads --------------------------------------------------

// pairRef locates one record inside a scanScratch buffer. Offsets, not
// slices: buf reallocates as it grows, and slices into it would dangle.
type pairRef struct {
	koff, klen, voff, vlen int
}

// scanScratch accumulates one chunk of scan results: keys and values append
// to one flat buffer, pairs index into it. Scratches recycle through
// scratchPool, so steady-state scanning stops allocating once the pool has
// warmed up — the fix for collect's per-record append([]byte(nil), ...)
// churn.
type scanScratch struct {
	refs []pairRef
	buf  []byte
}

func (sc *scanScratch) reset() {
	sc.refs = sc.refs[:0]
	sc.buf = sc.buf[:0]
}

// sizeHint pre-sizes the ref slice from the shard's record-count estimate,
// clamped to one chunk.
func (sc *scanScratch) sizeHint(recs int64) {
	n := int(recs)
	if n <= 0 {
		return
	}
	if n > scanChunkPairs {
		n = scanChunkPairs
	}
	if cap(sc.refs) < n {
		sc.refs = make([]pairRef, 0, n)
	}
}

func (sc *scanScratch) add(k, v []byte) {
	ko := len(sc.buf)
	sc.buf = append(sc.buf, k...)
	vo := len(sc.buf)
	sc.buf = append(sc.buf, v...)
	sc.refs = append(sc.refs, pairRef{ko, len(k), vo, len(v)})
}

func (sc *scanScratch) full() bool {
	return len(sc.refs) >= scanChunkPairs || len(sc.buf) >= scanChunkBytes
}

func (sc *scanScratch) len() int { return len(sc.refs) }

func (sc *scanScratch) pair(i int) (k, v []byte) {
	r := sc.refs[i]
	return sc.buf[r.koff : r.koff+r.klen], sc.buf[r.voff : r.voff+r.vlen]
}

var scratchPool = sync.Pool{New: func() any { return new(scanScratch) }}

func getScratch() *scanScratch {
	sc := scratchPool.Get().(*scanScratch)
	sc.reset()
	return sc
}

func putScratch(sc *scanScratch) { scratchPool.Put(sc) }

// scanChunks streams one shard's records in [lo, hi] to emit in bounded
// chunks, in the given direction. Optimistic chunks pin the read epoch only
// while filling and resume exclusively past their last key; contention past
// the retry budget — and shards without an optimistic path — drain the
// remaining range through the locked path. emit owns each scratch it
// receives (return it with putScratch) and is never called with the shard
// lock held; returning false stops the scan. No emit call follows an error.
// ScanShard, the engine-scan producers and Count all funnel through here —
// the single read-only range entry point.
func (s *state) scanChunks(lo, hi []byte, reverse bool, emit func(*scanScratch) bool) error {
	curLo, curHi := lo, hi
	curLoX, curHiX := false, false
	var resume []byte
	attempt := 0
	for {
		v, st := s.acquireView()
		if st == viewRetry {
			if attempt < getMaxAttempts {
				readBackoff(attempt)
				attempt++
				continue
			}
			st = viewFallback
		}
		if st == viewFallback {
			return s.lockedChunks(curLo, curHi, curLoX, curHiX, reverse, emit)
		}
		attempt = 0
		sc := getScratch()
		sc.sizeHint(s.recs.Load())
		full := false
		err := v.Scan(btree.Bounds{Lo: curLo, Hi: curHi, LoX: curLoX, HiX: curHiX, Reverse: reverse},
			func(k, val []byte) bool {
				sc.add(k, val)
				if sc.full() {
					full = true
					return false
				}
				return true
			})
		cost := v.Cost()
		s.releaseView(v)
		if err != nil {
			putScratch(sc)
			return err
		}
		if s.rec != nil && cost > 0 {
			s.rec.ObserveSim(obsv.OpScan, cost)
		}
		if full {
			// Copy the resume key before emit takes scratch ownership.
			k, _ := sc.pair(sc.len() - 1)
			resume = append(resume[:0], k...)
			if reverse {
				curHi, curHiX = resume, true
			} else {
				curLo, curLoX = resume, true
			}
		}
		if sc.len() == 0 {
			putScratch(sc)
			return nil
		}
		if !emit(sc) || !full {
			return nil
		}
	}
}

// lockedChunks drains [lo, hi] through the locked read path: records are
// collected into chunks under the shard lock (inside the write gate — a
// pager transaction's reads mutate the simulated cache and clock), then
// emitted after it is released, preserving emit's no-lock-held contract.
// The lo/hi exclusivity flags emulate the view path's resume semantics.
func (s *state) lockedChunks(lo, hi []byte, loX, hiX, reverse bool, emit func(*scanScratch) bool) error {
	var chunks []*scanScratch
	err := func() error {
		s.mu.Lock()
		defer s.mu.Unlock()
		if err := s.unavailable(); err != nil {
			return err
		}
		s.beginMutate()
		defer s.endMutate()
		tx, err := s.tree.Begin()
		if err != nil {
			return err
		}
		defer tx.Rollback()
		sc := getScratch()
		sc.sizeHint(s.recs.Load())
		gather := func(k, v []byte) bool {
			if !reverse {
				if loX && lo != nil && bytes.Equal(k, lo) {
					return true // the resume key itself: already delivered
				}
				if hiX && hi != nil && bytes.Equal(k, hi) {
					return false // exclusive upper bound reached
				}
			} else {
				if hiX && hi != nil && bytes.Equal(k, hi) {
					return true
				}
				if loX && lo != nil && bytes.Equal(k, lo) {
					return false
				}
			}
			if sc.full() {
				chunks = append(chunks, sc)
				sc = getScratch()
			}
			sc.add(k, v)
			return true
		}
		if reverse {
			err = tx.ScanReverse(lo, hi, gather)
		} else {
			err = tx.Scan(lo, hi, gather)
		}
		if sc.len() > 0 {
			chunks = append(chunks, sc)
		} else {
			putScratch(sc)
		}
		return err
	}()
	if err != nil {
		for _, sc := range chunks {
			putScratch(sc)
		}
		return err
	}
	for i, sc := range chunks {
		if !emit(sc) {
			for _, rest := range chunks[i+1:] {
				putScratch(rest)
			}
			return nil
		}
	}
	return nil
}

// ScanShard visits shard i's records in [lo, hi] in ascending order —
// inspection tooling and the golden tests read per-shard contents. It runs
// on the same chunked read-only entry point as the engine-scan producers,
// so the two paths cannot diverge. Key/value slices are valid only during
// the callback.
func (e *Engine) ScanShard(i int, lo, hi []byte, fn func(k, v []byte) bool) error {
	stopped := false
	return e.shards[i].scanChunks(lo, hi, false, func(sc *scanScratch) bool {
		for j := 0; j < sc.len(); j++ {
			k, v := sc.pair(j)
			if !fn(k, v) {
				stopped = true
				break
			}
		}
		putScratch(sc)
		return !stopped
	})
}

// --- Parallel streaming merge ---------------------------------------------

// chunkMsg is one producer→merge message: a chunk of records, or the
// terminal marker (sc == nil) carrying the shard's scan error (nil error =
// clean end of range).
type chunkMsg struct {
	sc  *scanScratch
	err error
}

// produce streams one shard's records to the merge as bounded chunks,
// aborting promptly once the merge closes stop.
func (s *state) produce(lo, hi []byte, reverse bool, out chan<- chunkMsg, stop <-chan struct{}) {
	err := s.scanChunks(lo, hi, reverse, func(sc *scanScratch) bool {
		select {
		case out <- chunkMsg{sc: sc}:
			return true
		case <-stop:
			putScratch(sc)
			return false
		}
	})
	select {
	case out <- chunkMsg{err: err}:
	case <-stop:
	}
}

// shardCursor is the merge's streaming view of one shard's chunk sequence.
type shardCursor struct {
	ch   chan chunkMsg
	sc   *scanScratch
	idx  int
	done bool
	err  error
}

// fill ensures the cursor points at a record, or marks it done (possibly
// with the shard's error).
func (c *shardCursor) fill() {
	for !c.done && (c.sc == nil || c.idx >= c.sc.len()) {
		if c.sc != nil {
			putScratch(c.sc)
			c.sc, c.idx = nil, 0
		}
		m := <-c.ch
		if m.sc == nil {
			c.done = true
			c.err = m.err
			return
		}
		c.sc = m.sc
	}
}

func (c *shardCursor) key() []byte {
	k, _ := c.sc.pair(c.idx)
	return k
}

// scan runs the k-way merge over per-shard streams. Each shard's records
// are produced by its own goroutine in bounded chunks (optimistic epochs
// with locked fallback), so collection overlaps across shards and with the
// merge, and nothing is fully materialised: once fn returns false the merge
// stops pulling and the producers abort at their next send. The merge
// output is byte-identical to the former sequential collect-then-merge.
// Key/value slices passed to fn are valid only during the callback; a shard
// error surfaces as soon as the merge needs that shard's next record.
func (e *Engine) scan(lo, hi []byte, reverse bool, fn func(k, v []byte) bool) error {
	e.cfg.Recorder.ObserveScanFanout(len(e.shards))
	stop := make(chan struct{})
	defer close(stop)
	curs := make([]*shardCursor, len(e.shards))
	for i, s := range e.shards {
		c := &shardCursor{ch: make(chan chunkMsg, 1)}
		curs[i] = c
		go s.produce(lo, hi, reverse, c.ch, stop)
	}
	for _, c := range curs {
		c.fill()
		if c.err != nil {
			return c.err
		}
	}
	// Linear-probe merge: shard counts are small (≤ a few dozen), so a heap
	// would not pay for itself.
	for {
		best := -1
		for i, c := range curs {
			if c.done {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			cm := bytes.Compare(c.key(), curs[best].key())
			if (!reverse && cm < 0) || (reverse && cm > 0) {
				best = i
			}
		}
		if best < 0 {
			return nil
		}
		c := curs[best]
		k, v := c.sc.pair(c.idx)
		c.idx++
		if !fn(k, v) {
			return nil
		}
		c.fill()
		if c.err != nil {
			return c.err
		}
	}
}

// Count sums the record counts of all shards, walking the shards in
// parallel and returning on the first error (the buffered channel lets the
// laggards finish after an early return without leaking goroutines).
func (e *Engine) Count() (int, error) {
	type result struct {
		n   int
		err error
	}
	ch := make(chan result, len(e.shards))
	for _, s := range e.shards {
		go func(s *state) {
			n, err := s.countRecords()
			ch <- result{n, err}
		}(s)
	}
	total := 0
	for range e.shards {
		r := <-ch
		if r.err != nil {
			return 0, r.err
		}
		total += r.n
	}
	return total, nil
}

// countRecords counts one shard's records through the shared chunked entry
// point (epoch-pinned in bounded chunks, locked fallback).
func (s *state) countRecords() (int, error) {
	n := 0
	err := s.scanChunks(nil, nil, false, func(sc *scanScratch) bool {
		n += sc.len()
		putScratch(sc)
		return true
	})
	return n, err
}
