package shard

import (
	"fmt"
	"sync"
	"time"
)

// request is one client submission: one or more ops bound for a single
// shard, a parallel error slice the writer fills, and a reusable
// completion channel. Requests are pooled — Do/DoBatch recycle them after
// the reply is consumed.
type request struct {
	ops  []Op
	errs []error
	done chan struct{}
}

var reqPool = sync.Pool{New: func() any {
	return &request{done: make(chan struct{}, 1)}
}}

// run is a shard's single-writer loop: block for one request, then drain
// the mailbox without blocking until the live drain bound is reached, and
// commit the drained set as one group-commit transaction. The drain bound
// keeps latency bounded under sustained load (and is re-read every drain,
// so the adaptive controller's retargets take effect at the next batch);
// the blocking receive means an idle shard costs nothing — which is the
// slot the proactive defrag pass borrows when work is pending.
func (s *state) run() {
	defer close(s.done)
	var (
		reqs []*request
		ops  []Op
		errs []error
	)
	for {
		select {
		case r := <-s.mail:
			reqs = append(reqs[:0], r)
			n := len(r.ops)
			maxBatch := s.maxBatchNow()
		drain:
			for n < maxBatch {
				select {
				case r2 := <-s.mail:
					reqs = append(reqs, r2)
					n += len(r2.ops)
				default:
					break drain
				}
			}
			s.serve(maxBatch, reqs, &ops, &errs)
			if len(s.mail) == 0 {
				s.maybeIdleDefrag()
			}
		case <-s.quit:
			// Serve the backlog, then exit. No new senders are allowed
			// once Close has been called.
			for {
				select {
				case r := <-s.mail:
					reqs = append(reqs[:0], r)
					s.serve(s.maxBatchNow(), reqs, &ops, &errs)
				default:
					return
				}
			}
		}
	}
}

// serve flattens a drained request set into one op slice, applies it as a
// group commit, and distributes the per-op errors back to each request.
func (s *state) serve(maxBatch int, reqs []*request, ops *[]Op, errs *[]error) {
	// Mailbox depth at drain time: how far the writer is behind its clients.
	s.rec.ObserveMailDepth(len(s.mail))
	flat := (*ops)[:0]
	for _, r := range reqs {
		flat = append(flat, r.ops...)
	}
	ferrs := (*errs)[:0]
	for range flat {
		ferrs = append(ferrs, nil)
	}
	s.applyLocked(maxBatch, flat, ferrs)
	k := 0
	for _, r := range reqs {
		copy(r.errs, ferrs[k:k+len(r.ops)])
		k += len(r.ops)
		r.done <- struct{}{}
	}
	*ops, *errs = flat, ferrs
}

// submit enqueues ops on shard si's mailbox and waits for the verdicts,
// copying them into out (len(ops)). A mailbox that stays full for the
// whole enqueue timeout fails the submission with ErrBusy instead of
// blocking the caller forever on a wedged writer, and a submission racing
// (or following) Close fails with ErrClosed instead of deadlocking on a
// mailbox no writer will ever drain again.
func (e *Engine) submit(si int, ops []Op, out []error) {
	s := e.shards[si]
	var t0 time.Time
	if s.rec != nil {
		t0 = time.Now()
	}
	if e.closed.Load() {
		failAll(s, out, ErrClosed)
		return
	}
	r := reqPool.Get().(*request)
	r.ops = append(r.ops[:0], ops...)
	r.errs = r.errs[:0]
	for range ops {
		r.errs = append(r.errs, nil)
	}
	if !e.enqueue(s, r) {
		cause := ErrBusy
		if e.closed.Load() {
			cause = ErrClosed
		}
		reqPool.Put(r)
		failAll(s, out, cause)
		return
	}
	select {
	case <-r.done:
	case <-s.done:
		// The writer exited. Its shutdown path drains the backlog before
		// closing done, so our reply may already be buffered; otherwise the
		// request slipped into the mailbox after the final drain and will
		// never be served. The unserved request stays out of the pool — the
		// mailbox still references it.
		select {
		case <-r.done:
		default:
			failAll(s, out, ErrClosed)
			return
		}
	}
	copy(out, r.errs)
	reqPool.Put(r)
	if s.rec != nil {
		// Client-perceived wall latency: queueing plus the group commit.
		wall := time.Since(t0).Nanoseconds()
		for i := range ops {
			s.rec.ObserveWall(kindOp[ops[i].Kind], int32(s.id), wall)
		}
	}
}

// ownedReqPool pools requests whose ops/errs slices are caller-owned for
// the duration of the call (SubmitShard) rather than copied in. Kept
// separate from reqPool so its recycled requests never carry stale
// capacity expectations between the two call styles.
var ownedReqPool = sync.Pool{New: func() any {
	return &request{done: make(chan struct{}, 1)}
}}

// SubmitShard enqueues ops — every key must route to shard si under
// ShardFor; placement is the caller's contract — as one submission on
// that shard's mailbox and blocks until the writer fills errs
// (len(ops)). Unlike submit it is zero-copy: the request carries the
// caller's slices directly, so the caller must not touch ops or errs
// until SubmitShard returns. This is the per-shard commit-pipeline entry
// point: N independent callers keep N writers busy with no cross-shard
// barrier, and a caller's next round can be accumulating while this one
// commits.
//
// Failure behaviour matches submit: a mailbox full past the enqueue
// timeout fails every op with ErrBusy, submissions racing or following
// Close fail with ErrClosed, and a request that slipped into the mailbox
// after the writer's final drain is abandoned (its request value stays
// out of the pool — the dead mailbox still references it).
func (e *Engine) SubmitShard(si int, ops []Op, errs []error) {
	s := e.shards[si]
	var t0 time.Time
	if s.rec != nil {
		t0 = time.Now()
	}
	if e.closed.Load() {
		failAll(s, errs, ErrClosed)
		return
	}
	r := ownedReqPool.Get().(*request)
	r.ops, r.errs = ops, errs
	if !e.enqueue(s, r) {
		cause := ErrBusy
		if e.closed.Load() {
			cause = ErrClosed
		}
		r.ops, r.errs = nil, nil
		ownedReqPool.Put(r)
		failAll(s, errs, cause)
		return
	}
	select {
	case <-r.done:
	case <-s.done:
		// Same race as submit: the writer's shutdown path drains the
		// backlog before closing done, so the reply may already be
		// buffered; otherwise the request will never be served.
		select {
		case <-r.done:
		default:
			failAll(s, errs, ErrClosed)
			return
		}
	}
	r.ops, r.errs = nil, nil
	ownedReqPool.Put(r)
	if s.rec != nil {
		wall := time.Since(t0).Nanoseconds()
		for i := range ops {
			s.rec.ObserveWall(kindOp[ops[i].Kind], int32(s.id), wall)
		}
	}
}

// failAll reports one error for every op of a failed submission.
func failAll(s *state, out []error, cause error) {
	err := fmt.Errorf("shard %d: %w", s.id, cause)
	for i := range out {
		out[i] = err
	}
}

// enqueue places r on s's mailbox, backing off exponentially (1 ms
// doubling to 64 ms) while the mailbox is full, up to the configured
// enqueue timeout. It reports whether the request was enqueued.
func (e *Engine) enqueue(s *state, r *request) bool {
	select {
	case s.mail <- r:
		return true
	default:
	}
	// The mailbox is full: one pressure event for the adaptive batch loop.
	s.backoffs.Add(1)
	deadline := time.Now().Add(e.cfg.EnqueueTimeout)
	backoff := time.Millisecond
	for {
		if e.closed.Load() {
			return false
		}
		wait := backoff
		if left := time.Until(deadline); left <= 0 {
			return false
		} else if wait > left {
			wait = left
		}
		t := time.NewTimer(wait)
		select {
		case s.mail <- r:
			t.Stop()
			return true
		case <-t.C:
		}
		if backoff < 64*time.Millisecond {
			backoff *= 2
		}
	}
}

// Do routes one operation to its shard's mailbox and waits for the
// verdict. Concurrent callers hitting the same shard are drained into one
// group commit by the shard's writer.
func (e *Engine) Do(op Op) error {
	var out [1]error
	e.submit(e.ShardFor(op.Key), op1(op), out[:])
	return out[0]
}

// op1 avoids a heap-allocated slice header for the common single-op case.
func op1(op Op) []Op {
	return []Op{op}
}

// DoBatch partitions ops by shard, submits every shard's sub-batch to its
// mailbox concurrently, and waits for all verdicts — the pipelined client
// path: one caller keeps every shard's writer busy at once. Per-op errors
// come back aligned with ops.
func (e *Engine) DoBatch(ops []Op) []error {
	errs := make([]error, len(ops))
	parts := make([][]int, len(e.shards))
	for i := range ops {
		si := e.ShardFor(ops[i].Key)
		parts[si] = append(parts[si], i)
	}
	var wg sync.WaitGroup
	for si, idxs := range parts {
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func(si int, idxs []int) {
			defer wg.Done()
			sOps := make([]Op, len(idxs))
			sErrs := make([]error, len(idxs))
			for k, i := range idxs {
				sOps[k] = ops[i]
			}
			e.submit(si, sOps, sErrs)
			for k, i := range idxs {
				errs[i] = sErrs[k]
			}
		}(si, idxs)
	}
	wg.Wait()
	return errs
}
