package shard_test

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fasp/internal/btree"
	"fasp/internal/fast"
	"fasp/internal/pager"
	"fasp/internal/pmem"
	"fasp/internal/shard"
	"fasp/internal/slotted"
)

// testGeometry mirrors the golden-test environment: small pages so batches
// span leaves, small cache so flushes hit the simulated medium.
const (
	testPageSize = 1024
	testMaxPages = 2048
)

func testConfig(shards, maxBatch, maxPages int) shard.Config {
	if maxPages == 0 {
		maxPages = testMaxPages
	}
	fcfg := fast.Config{PageSize: testPageSize, MaxPages: maxPages, Variant: fast.SlotHeaderLogging}
	return shard.Config{
		Shards:   shards,
		MaxBatch: maxBatch,
		Open: func(i int) (*shard.Backend, error) {
			lat := pmem.DefaultLatencies(300, 300)
			lat.CacheBytes = 16 << 10
			sys := pmem.NewSystem(lat)
			st := fast.Create(sys, fcfg)
			return &shard.Backend{Sys: sys, Arena: st.Arena(), Store: st}, nil
		},
		Reattach: func(i int, be *shard.Backend) (pager.Store, error) {
			ns, err := fast.Attach(be.Arena, fcfg)
			if err != nil {
				return nil, err
			}
			return ns, ns.Recover()
		},
	}
}

func newTestEngine(t *testing.T, shards, maxBatch int) *shard.Engine {
	t.Helper()
	e, err := shard.New(testConfig(shards, maxBatch, 0))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

func key(i int) []byte { return []byte(fmt.Sprintf("key%06d", i)) }
func val(i int) []byte { return []byte(fmt.Sprintf("val%06d", i)) }

func TestBasicOps(t *testing.T) {
	e := newTestEngine(t, 4, 8)
	const n = 200
	for i := 0; i < n; i++ {
		if err := e.Do(shard.Op{Kind: shard.OpPut, Key: key(i), Val: val(i)}); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		v, ok, err := e.Get(key(i))
		if err != nil || !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("get %d: %q %v %v", i, v, ok, err)
		}
	}
	// Update via put, then delete odd keys.
	for i := 0; i < n; i++ {
		if err := e.Do(shard.Op{Kind: shard.OpPut, Key: key(i), Val: []byte("v2")}); err != nil {
			t.Fatalf("overwrite %d: %v", i, err)
		}
	}
	for i := 1; i < n; i += 2 {
		if err := e.Do(shard.Op{Kind: shard.OpDelete, Key: key(i)}); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	c, err := e.Count()
	if err != nil || c != n/2 {
		t.Fatalf("count = %d, %v; want %d", c, err, n/2)
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	// Per-op verdicts for the kinds that can fail.
	if err := e.Do(shard.Op{Kind: shard.OpInsert, Key: key(0), Val: val(0)}); !errors.Is(err, slotted.ErrDuplicate) {
		t.Fatalf("duplicate insert: %v", err)
	}
	if err := e.Do(shard.Op{Kind: shard.OpUpdate, Key: []byte("nope"), Val: val(0)}); !errors.Is(err, btree.ErrKeyNotFound) {
		t.Fatalf("update absent: %v", err)
	}
	if err := e.Do(shard.Op{Kind: shard.OpDelete, Key: []byte("nope")}); !errors.Is(err, btree.ErrKeyNotFound) {
		t.Fatalf("delete absent: %v", err)
	}
}

func TestScanMerge(t *testing.T) {
	e := newTestEngine(t, 5, 16)
	const n = 300
	ops := make([]shard.Op, n)
	want := make([]string, n)
	for i := 0; i < n; i++ {
		ops[i] = shard.Op{Kind: shard.OpInsert, Key: key(i), Val: val(i)}
		want[i] = string(key(i))
	}
	for _, err := range e.ApplyBatch(ops) {
		if err != nil {
			t.Fatal(err)
		}
	}
	sort.Strings(want)

	var got []string
	if err := e.Scan(nil, nil, func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ascending merge broken: %d keys, first %v", len(got), got[:3])
	}

	got = got[:0]
	if err := e.ScanReverse(nil, nil, func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	for i, j := 0, len(want)-1; i < len(got); i, j = i+1, j-1 {
		if got[i] != want[j] {
			t.Fatalf("descending merge broken at %d: %s != %s", i, got[i], want[j])
		}
	}
	if len(got) != n {
		t.Fatalf("reverse scan saw %d keys, want %d", len(got), n)
	}

	// Bounded scan with early termination.
	var first []string
	if err := e.Scan([]byte("key000010"), []byte("key000290"), func(k, v []byte) bool {
		first = append(first, string(k))
		return len(first) < 5
	}); err != nil {
		t.Fatal(err)
	}
	if len(first) != 5 || first[0] != "key000010" || first[4] != "key000014" {
		t.Fatalf("bounded scan: %v", first)
	}

	// Per-shard scans partition the key space exactly.
	seen := 0
	for i := 0; i < e.Shards(); i++ {
		if err := e.ScanShard(i, nil, nil, func(k, v []byte) bool {
			if e.ShardFor(k) != i {
				t.Fatalf("key %q on shard %d, routed to %d", k, i, e.ShardFor(k))
			}
			seen++
			return true
		}); err != nil {
			t.Fatal(err)
		}
	}
	if seen != n {
		t.Fatalf("shard scans saw %d keys, want %d", seen, n)
	}
}

// TestApplyBatchDeterminism: batch boundaries on the ApplyBatch path are a
// pure function of the op sequence, so two engines fed the same sequence
// have bit-identical per-shard simulated time, phases, and PM counters.
func TestApplyBatchDeterminism(t *testing.T) {
	run := func() *shard.Engine {
		e := newTestEngine(t, 4, 16)
		var ops []shard.Op
		for i := 0; i < 400; i++ {
			ops = append(ops, shard.Op{Kind: shard.OpInsert, Key: key(i), Val: val(i)})
		}
		for i := 0; i < 100; i += 3 {
			ops = append(ops, shard.Op{Kind: shard.OpPut, Key: key(i), Val: []byte("updated")})
		}
		for i := 0; i < 50; i += 5 {
			ops = append(ops, shard.Op{Kind: shard.OpDelete, Key: key(i)})
		}
		for _, err := range e.ApplyBatch(ops) {
			if err != nil {
				t.Fatal(err)
			}
		}
		return e
	}
	a, b := run(), run()
	for i := 0; i < a.Shards(); i++ {
		ia, ib := a.ShardInfo(i), b.ShardInfo(i)
		if !reflect.DeepEqual(ia, ib) {
			t.Fatalf("shard %d diverged:\n%+v\n%+v", i, ia, ib)
		}
		if ia.SimNS == 0 || ia.Batches == 0 {
			t.Fatalf("shard %d did no work: %+v", i, ia)
		}
	}
}

// TestGroupCommitBatching: concurrent clients on one shard are drained into
// fewer commits than operations.
func TestGroupCommitBatching(t *testing.T) {
	e := newTestEngine(t, 1, 64)
	const clients, per = 8, 50
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				op := shard.Op{Kind: shard.OpPut, Key: key(c*per + i), Val: val(i)}
				if err := e.Do(op); err != nil {
					t.Errorf("client %d op %d: %v", c, i, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	st := e.Stats()
	if st.Ops != clients*per {
		t.Fatalf("ops = %d, want %d", st.Ops, clients*per)
	}
	if st.Batches == 0 || st.Batches > st.Ops {
		t.Fatalf("batches = %d out of range (ops %d)", st.Batches, st.Ops)
	}
	if st.MaxDrained < 1 || st.MaxDrained > 64 {
		t.Fatalf("maxDrained = %d out of range", st.MaxDrained)
	}
	if c, err := e.Count(); err != nil || c != clients*per {
		t.Fatalf("count = %d, %v", c, err)
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentClients exercises the mailbox path across shards with mixed
// readers and writers; run under -race this is the engine's thread-safety
// proof.
func TestConcurrentClients(t *testing.T) {
	e := newTestEngine(t, 4, 16)
	const writers, readers, per = 6, 3, 80
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := w * per
			for i := 0; i < per; i++ {
				if err := e.Do(shard.Op{Kind: shard.OpPut, Key: key(base + i), Val: val(base + i)}); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
			// And a multi-shard batch through the pipelined path.
			ops := make([]shard.Op, 10)
			for i := range ops {
				ops[i] = shard.Op{Kind: shard.OpPut, Key: key(base + i), Val: []byte("batched")}
			}
			for _, err := range e.DoBatch(ops) {
				if err != nil {
					t.Errorf("writer %d batch: %v", w, err)
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, _, err := e.Get(key(i)); err != nil {
					t.Errorf("get: %v", err)
					return
				}
			}
			e.Scan(nil, nil, func(k, v []byte) bool { return true })
			e.Count()
		}()
	}
	wg.Wait()
	if c, err := e.Count(); err != nil || c != writers*per {
		t.Fatalf("count = %d, %v; want %d", c, err, writers*per)
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestBenignErrorsInBatch: logical per-op failures don't abort the rest of
// a group commit.
func TestBenignErrorsInBatch(t *testing.T) {
	e := newTestEngine(t, 2, 32)
	if err := e.Do(shard.Op{Kind: shard.OpInsert, Key: key(0), Val: val(0)}); err != nil {
		t.Fatal(err)
	}
	ops := []shard.Op{
		{Kind: shard.OpInsert, Key: key(0), Val: val(9)},             // duplicate
		{Kind: shard.OpInsert, Key: key(1), Val: val(1)},             // fine
		{Kind: shard.OpDelete, Key: []byte("missing")},               // absent
		{Kind: shard.OpInsert, Key: key(2), Val: val(2)},             // fine
		{Kind: shard.OpUpdate, Key: []byte("missing2"), Val: val(0)}, // absent
	}
	errs := e.ApplyBatch(ops)
	if !errors.Is(errs[0], slotted.ErrDuplicate) {
		t.Fatalf("errs[0] = %v", errs[0])
	}
	if errs[1] != nil || errs[3] != nil {
		t.Fatalf("good ops failed: %v %v", errs[1], errs[3])
	}
	if !errors.Is(errs[2], btree.ErrKeyNotFound) || !errors.Is(errs[4], btree.ErrKeyNotFound) {
		t.Fatalf("absent-key errors: %v %v", errs[2], errs[4])
	}
	// The failed duplicate must not have clobbered the original value.
	v, ok, err := e.Get(key(0))
	if err != nil || !ok || !bytes.Equal(v, val(0)) {
		t.Fatalf("key0 = %q %v %v", v, ok, err)
	}
	for _, k := range [][]byte{key(1), key(2)} {
		if _, ok, _ := e.Get(k); !ok {
			t.Fatalf("key %q missing after batch with benign errors", k)
		}
	}
}

// TestHardErrorFallback: page-space exhaustion mid-batch falls back to
// per-op transactions so every caller gets an individual verdict and the
// tree stays structurally valid.
func TestHardErrorFallback(t *testing.T) {
	cfg := testConfig(1, 64, 24) // tiny page space
	e, err := shard.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ops := make([]shard.Op, 600)
	for i := range ops {
		ops[i] = shard.Op{Kind: shard.OpInsert, Key: key(i), Val: bytes.Repeat([]byte("x"), 64)}
	}
	errs := e.ApplyBatch(ops)
	full, okc := 0, 0
	for _, err := range errs {
		switch {
		case err == nil:
			okc++
		case errors.Is(err, pager.ErrFull):
			full++
		default:
			t.Fatalf("unexpected error class: %v", err)
		}
	}
	if full == 0 {
		t.Fatal("never hit ErrFull; grow the workload")
	}
	if okc == 0 {
		t.Fatal("no op succeeded before exhaustion")
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	if c, err := e.Count(); err != nil || c != okc {
		t.Fatalf("count = %d, %v; want %d successes", c, err, okc)
	}
}

// TestCrashReopen: an explicit whole-engine crash lands on batch
// boundaries; committed data on every shard survives recovery.
func TestCrashReopen(t *testing.T) {
	e := newTestEngine(t, 4, 8)
	const n = 250
	for i := 0; i < n; i++ {
		if err := e.Do(shard.Op{Kind: shard.OpInsert, Key: key(i), Val: val(i)}); err != nil {
			t.Fatal(err)
		}
	}
	e.Crash(pmem.CrashOptions{Seed: 42, EvictProb: 0.5})
	// Every path reports the poisoned state.
	if _, _, err := e.Get(key(0)); !errors.Is(err, shard.ErrCrashed) {
		t.Fatalf("get after crash: %v", err)
	}
	if err := e.Do(shard.Op{Kind: shard.OpPut, Key: key(0), Val: val(0)}); !errors.Is(err, shard.ErrCrashed) {
		t.Fatalf("do after crash: %v", err)
	}
	if _, err := e.Count(); !errors.Is(err, shard.ErrCrashed) {
		t.Fatalf("count after crash: %v", err)
	}
	if err := e.Reopen(); err != nil {
		t.Fatal(err)
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		v, ok, err := e.Get(key(i))
		if err != nil || !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("key %d lost after crash+reopen: %q %v %v", i, v, ok, err)
		}
	}
	// The engine accepts writes again.
	if err := e.Do(shard.Op{Kind: shard.OpPut, Key: key(n), Val: val(n)}); err != nil {
		t.Fatal(err)
	}
}

// TestInjectedCrashMidBatch: arm one shard's crash injector so the power
// failure fires inside a group commit; that batch reports ErrCrashed,
// other shards keep serving, and recovery yields exactly the pre-batch
// committed state on the crashed shard.
func TestInjectedCrashMidBatch(t *testing.T) {
	e := newTestEngine(t, 2, 32)
	// Commit a baseline on both shards.
	var ops []shard.Op
	for i := 0; i < 100; i++ {
		ops = append(ops, shard.Op{Kind: shard.OpInsert, Key: key(i), Val: val(i)})
	}
	for _, err := range e.ApplyBatch(ops) {
		if err != nil {
			t.Fatal(err)
		}
	}
	committed := map[int]bool{}
	for i := 0; i < 100; i++ {
		committed[e.ShardFor(key(i))] = true
	}

	const victim = 0
	e.ShardSys(victim).CrashAfter(10)

	// Route a batch to each shard. The victim's batch dies mid-flight.
	var vops, oops []shard.Op
	for i := 100; len(vops) < 20 || len(oops) < 20; i++ {
		op := shard.Op{Kind: shard.OpInsert, Key: key(i), Val: val(i)}
		if e.ShardFor(op.Key) == victim {
			vops = append(vops, op)
		} else {
			oops = append(oops, op)
		}
	}
	for _, err := range e.ApplyBatch(vops) {
		if !errors.Is(err, shard.ErrCrashed) {
			t.Fatalf("victim batch op: %v", err)
		}
	}
	for _, err := range e.ApplyBatch(oops) {
		if err != nil {
			t.Fatalf("healthy shard refused op: %v", err)
		}
	}

	// Power-failure proper: eviction lottery, then recovery.
	e.Crash(pmem.CrashOptions{Seed: 7, EvictProb: 0.5})
	if err := e.Reopen(); err != nil {
		t.Fatal(err)
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	// Baseline survived everywhere.
	for i := 0; i < 100; i++ {
		if _, ok, err := e.Get(key(i)); err != nil || !ok {
			t.Fatalf("baseline key %d lost: %v %v", i, ok, err)
		}
	}
	// The victim's mid-batch ops are gone: the group commit is atomic.
	for _, op := range vops {
		if _, ok, err := e.Get(op.Key); err != nil || ok {
			t.Fatalf("uncommitted key %q survived the crash: %v %v", op.Key, ok, err)
		}
	}
	// The healthy shard's batch committed before the explicit crash.
	for _, op := range oops {
		if _, ok, err := e.Get(op.Key); err != nil || !ok {
			t.Fatalf("healthy-shard key %q lost: %v %v", op.Key, ok, err)
		}
	}
}

func TestCloseIdempotent(t *testing.T) {
	e, err := shard.New(testConfig(3, 8, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Do(shard.Op{Kind: shard.OpPut, Key: key(1), Val: val(1)}); err != nil {
		t.Fatal(err)
	}
	e.Close()
	e.Close()
}

// faultyStore wraps a real store; when armed, the next Begin panics — a
// stand-in for a store bug or a hard PM error surfacing inside the writer.
type faultyStore struct {
	pager.Store
	arm atomic.Bool
}

func (f *faultyStore) Begin() (pager.Txn, error) {
	if f.arm.CompareAndSwap(true, false) {
		panic("injected hard PM fault")
	}
	return f.Store.Begin()
}

// TestWriterPanicContainment: a panic inside one shard's writer must not
// kill the process or wedge the mailbox — the batch fails with
// ErrShardDown, the shard degrades, the other shards keep serving, and
// Heal restores the degraded shard with no acked-write loss.
func TestWriterPanicContainment(t *testing.T) {
	const shards = 2
	cfg := testConfig(shards, 8, 0)
	faults := make([]*faultyStore, shards)
	open := cfg.Open
	cfg.Open = func(i int) (*shard.Backend, error) {
		be, err := open(i)
		if err != nil {
			return nil, err
		}
		faults[i] = &faultyStore{Store: be.Store}
		be.Store = faults[i]
		return be, nil
	}
	e, err := shard.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	const n = 120
	for i := 0; i < n; i++ {
		if err := e.Do(shard.Op{Kind: shard.OpInsert, Key: key(i), Val: val(i)}); err != nil {
			t.Fatal(err)
		}
	}

	// Route one key to each shard for the post-fault probes.
	probe := make([][]byte, shards)
	for i := 0; probe[0] == nil || probe[1] == nil; i++ {
		k := key(n + i)
		probe[e.ShardFor(k)] = k
	}

	const victim = 0
	faults[victim].arm.Store(true)
	err = e.Do(shard.Op{Kind: shard.OpInsert, Key: probe[victim], Val: val(0)})
	if !errors.Is(err, shard.ErrShardDown) {
		t.Fatalf("faulted batch: %v", err)
	}
	// The degraded shard refuses reads and writes with the cause attached...
	if _, _, err := e.Get(probe[victim]); !errors.Is(err, shard.ErrShardDown) {
		t.Fatalf("get on degraded shard: %v", err)
	}
	// ...while the other shard keeps serving both.
	if err := e.Do(shard.Op{Kind: shard.OpInsert, Key: probe[1], Val: val(1)}); err != nil {
		t.Fatalf("healthy shard refused a write: %v", err)
	}
	if _, ok, err := e.Get(probe[1]); err != nil || !ok {
		t.Fatalf("healthy shard refused a read: %v %v", ok, err)
	}

	in := e.ShardInfo(victim)
	if in.Health != shard.Degraded || in.Fault == "" {
		t.Fatalf("victim info: health=%v fault=%q", in.Health, in.Fault)
	}
	if st := e.Stats(); st.DegradedShards != 1 || st.CrashedShards != 0 {
		t.Fatalf("stats: %+v", st)
	}

	if err := e.Heal(victim); err != nil {
		t.Fatal(err)
	}
	if in := e.ShardInfo(victim); in.Health != shard.Healthy {
		t.Fatalf("victim not healthy after heal: %+v", in)
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	// No acked write was lost, and the healed shard serves again.
	for i := 0; i < n; i++ {
		v, ok, err := e.Get(key(i))
		if err != nil || !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("acked key %d lost across the fault: %q %v %v", i, v, ok, err)
		}
	}
	if err := e.Do(shard.Op{Kind: shard.OpInsert, Key: probe[victim], Val: val(0)}); err != nil {
		t.Fatalf("healed shard refused a write: %v", err)
	}
}

// blockingStore wedges the writer: when armed, the next Begin signals
// entry and then blocks until released.
type blockingStore struct {
	pager.Store
	arm     atomic.Bool
	entered chan struct{}
	release chan struct{}
}

func (s *blockingStore) Begin() (pager.Txn, error) {
	if s.arm.CompareAndSwap(true, false) {
		s.entered <- struct{}{}
		<-s.release
	}
	return s.Store.Begin()
}

// TestEnqueueBusy: with the writer wedged and the mailbox full, a
// submission fails with ErrBusy after the bounded enqueue timeout instead
// of blocking forever; once the writer resumes, queued work completes.
func TestEnqueueBusy(t *testing.T) {
	cfg := testConfig(1, 1, 0)
	cfg.Mailbox = 1
	cfg.EnqueueTimeout = 100 * time.Millisecond
	bs := &blockingStore{entered: make(chan struct{}, 1), release: make(chan struct{})}
	open := cfg.Open
	cfg.Open = func(i int) (*shard.Backend, error) {
		be, err := open(i)
		if err != nil {
			return nil, err
		}
		bs.Store = be.Store
		be.Store = bs
		return be, nil
	}
	e, err := shard.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	bs.arm.Store(true)
	first := make(chan error, 1)
	go func() { first <- e.Do(shard.Op{Kind: shard.OpInsert, Key: key(0), Val: val(0)}) }()
	<-bs.entered // the writer is now wedged mid-batch; the mailbox is empty

	// Two more submissions race for the single mailbox slot: the loser
	// must time out with ErrBusy while the winner waits for the writer.
	rest := make(chan error, 2)
	go func() { rest <- e.Do(shard.Op{Kind: shard.OpInsert, Key: key(1), Val: val(1)}) }()
	go func() { rest <- e.Do(shard.Op{Kind: shard.OpInsert, Key: key(2), Val: val(2)}) }()
	if err := <-rest; !errors.Is(err, shard.ErrBusy) {
		t.Fatalf("full mailbox submission: %v", err)
	}

	close(bs.release)
	if err := <-first; err != nil {
		t.Fatalf("wedged batch after release: %v", err)
	}
	if err := <-rest; err != nil {
		t.Fatalf("queued batch after release: %v", err)
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := shard.New(shard.Config{Shards: 0}); err == nil {
		t.Fatal("Shards=0 accepted")
	}
	if _, err := shard.New(shard.Config{Shards: 2}); err == nil {
		t.Fatal("missing Open accepted")
	}
	cfg := testConfig(2, 0, 0)
	cfg.Reattach = nil
	if _, err := shard.New(cfg); err == nil {
		t.Fatal("missing Reattach accepted")
	}
}

// TestCloseSealsLockedPath pins the stronger half of the Close contract
// on the locked (ApplyBatch) path: once Close has returned, no batch —
// including one already past the engine-level closed check — commits.
// Close seals each shard under its own lock, so a racing ApplyBatch
// either lands before Close returns or fails with ErrClosed.
func TestCloseSealsLockedPath(t *testing.T) {
	e, err := shard.New(testConfig(4, 8, 0))
	if err != nil {
		t.Fatal(err)
	}

	count := func() int {
		n := 0
		if err := e.Scan(nil, nil, func(k, v []byte) bool {
			n++
			return true
		}); err != nil {
			t.Fatalf("Scan: %v", err)
		}
		return n
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ops := []shard.Op{{Kind: shard.OpPut, Key: []byte(fmt.Sprintf("seal-c%d-%06d", c, i)), Val: []byte("v")}}
				for _, err := range e.ApplyBatch(ops) {
					if err != nil && !errors.Is(err, shard.ErrClosed) {
						t.Errorf("ApplyBatch: %v", err)
						return
					}
				}
			}
		}(c)
	}
	time.Sleep(2 * time.Millisecond) // let the writers commit a few batches
	e.Close()
	n0 := count()
	time.Sleep(2 * time.Millisecond) // racing batches would land here
	if n1 := count(); n1 != n0 {
		t.Fatalf("batch committed after Close returned: %d -> %d records", n0, n1)
	}
	close(stop)
	wg.Wait()
	if n2 := count(); n2 != n0 {
		t.Fatalf("late batch committed after Close returned: %d -> %d records", n0, n2)
	}
}
