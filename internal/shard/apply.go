// Package shard implements a sharded store engine: the key space is
// hash-partitioned across N independent stores — each with its own
// simulated machine, commit scheme and B-tree — and every shard is owned
// by a single-writer goroutine that drains a bounded mailbox of operations
// and commits each drained batch as one transaction (group commit).
//
// Why this composes with the paper's failure atomicity: FAST, FAST+ and
// the baseline schemes are all per-store local — a commit's durability
// point (the slot-header log's commit mark, the HTM cache-line write, the
// WAL frame) lives inside one store's arena and never references another
// store. Hash partitioning therefore preserves failure atomicity shard by
// shard: a crash leaves every shard either before or after each of its own
// commit marks, and recovery runs independently per shard. What is given
// up is only cross-shard transactions, which the engine does not offer.
//
// Group commit amortises the commit protocol the way SiloR-style redo-only
// logging batches its log writes: a drained batch of K operations pays one
// log-flush/commit-mark/checkpoint sequence instead of K. When a drained
// batch happens to touch exactly one leaf page, the FAST+ store's in-place
// eligibility check still holds and the batch commits through the single
// HTM cache-line write — the engine does not need to special-case it.
package shard

import (
	"errors"

	"fasp/internal/btree"
	"fasp/internal/slotted"
)

// OpKind selects the mutation an Op performs.
type OpKind uint8

const (
	// OpPut inserts the key or replaces its value if present.
	OpPut OpKind = iota
	// OpInsert inserts the key, failing on duplicates.
	OpInsert
	// OpUpdate replaces an existing key's value, failing if absent.
	OpUpdate
	// OpDelete removes the key, failing if absent.
	OpDelete
)

func (k OpKind) String() string {
	switch k {
	case OpPut:
		return "put"
	case OpInsert:
		return "insert"
	case OpUpdate:
		return "update"
	case OpDelete:
		return "delete"
	}
	return "unknown"
}

// Op is one key/value mutation routed to a shard.
type Op struct {
	Kind OpKind
	Key  []byte
	Val  []byte
}

// benign reports whether err is a per-operation logical failure (duplicate
// key, absent key, oversized record) that leaves the enclosing transaction's
// working state untouched, so the rest of a group-commit batch can proceed.
// Everything else (page-space exhaustion, corruption) is a hard error.
func benign(err error) bool {
	return errors.Is(err, slotted.ErrDuplicate) ||
		errors.Is(err, btree.ErrKeyNotFound) ||
		errors.Is(err, btree.ErrTooLarge)
}

// applyTxOp applies one op inside an open batch transaction.
func applyTxOp(tx *btree.Tx, op *Op) error {
	switch op.Kind {
	case OpPut:
		return tx.Put(op.Key, op.Val)
	case OpInsert:
		return tx.Insert(op.Key, op.Val)
	case OpUpdate:
		return tx.Update(op.Key, op.Val)
	case OpDelete:
		return tx.Delete(op.Key)
	}
	return errors.New("shard: unknown op kind")
}

// applySingle applies one op in its own transaction (the group-commit
// fallback when a batch hits a hard error).
func applySingle(tree *btree.Tree, op *Op) error {
	switch op.Kind {
	case OpPut:
		return tree.Put(op.Key, op.Val)
	case OpInsert:
		return tree.Insert(op.Key, op.Val)
	case OpUpdate:
		return tree.Update(op.Key, op.Val)
	case OpDelete:
		return tree.Delete(op.Key)
	}
	return errors.New("shard: unknown op kind")
}

// ApplyOps applies ops to tree as group commits of at most maxBatch
// operations per transaction, filling errs (which must have len(ops)).
// It returns the number of transactions committed.
//
// Per-op logical failures (duplicate insert, update/delete of an absent
// key, oversized record) are recorded in errs without aborting the batch:
// the B-tree reports them before mutating anything, so the transaction's
// other operations commit untouched. A hard error (e.g. out of pages)
// rolls the whole batch transaction back and re-applies each of its ops in
// its own transaction so every caller gets an individual verdict.
//
// This is the shared core of the per-shard writer goroutines, of
// Engine.ApplyBatch, and of the facade's deterministic single-store batch
// path; keeping them on one code path keeps batch boundaries — and
// therefore simulated time — a pure function of the op sequence.
func ApplyOps(tree *btree.Tree, maxBatch int, ops []Op, errs []error) int64 {
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	var batches int64
	for lo := 0; lo < len(ops); lo += maxBatch {
		hi := lo + maxBatch
		if hi > len(ops) {
			hi = len(ops)
		}
		batches += applyChunk(tree, ops[lo:hi], errs[lo:hi])
	}
	return batches
}

// applyChunk runs one group commit, returning the transaction count (1 for
// the batch, or one per op on the individual-retry fallback).
func applyChunk(tree *btree.Tree, ops []Op, errs []error) int64 {
	tx, err := tree.Begin()
	if err != nil {
		for i := range errs {
			errs[i] = err
		}
		return 0
	}
	for i := range ops {
		opErr := applyTxOp(tx, &ops[i])
		errs[i] = opErr
		if opErr != nil && !benign(opErr) {
			// Hard error mid-batch: the transaction's working state may be
			// partially mutated. Abandon it and give every op its own
			// transaction so failures stay per-op.
			tx.Rollback()
			for j := range ops {
				errs[j] = applySingle(tree, &ops[j])
			}
			return int64(len(ops))
		}
	}
	if cerr := tx.Commit(); cerr != nil {
		// Commit failed before the durability point: nothing from this
		// batch survives, report that to every op.
		for i := range errs {
			errs[i] = cerr
		}
		return 0
	}
	return 1
}
