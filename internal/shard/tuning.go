package shard

import (
	"strings"

	"fasp/internal/btree"
	"fasp/internal/obsv"
	"fasp/internal/pager"
	"fasp/internal/tune"
)

// Adaptive tuning: each shard owns a tune.Controller fed one Sample per
// committed group commit (tuneObserve, called from applyLocked under the
// shard lock inside the write gate). When a sample closes a decision window
// the shard acts on the decision at that point — which is exactly the
// quiesced moment the migration protocol requires: the writer is between
// group commits, the lock is held, and beginMutate has drained every
// optimistic reader.

// Bounds on one proactive defragmentation pass.
const (
	// maxHotLeaves caps the hot-leaf handles one FragScan collects.
	maxHotLeaves = 32
	// defragPerSlot caps the leaves rewritten in one idle slot, so a pass
	// never delays the next group commit by more than one small txn.
	defragPerSlot = 8
)

// canonSchemeName lowers a store's Name() ("FAST+", "WAL", …) to the
// facade's canonical scheme strings, which are what tune.Controller and the
// persisted scheme tag speak.
func canonSchemeName(n string) string { return strings.ToLower(n) }

// tuneObserve feeds one committed batch to the controller and, when the
// sample closes a decision window, acts on the decision: retarget the live
// batch bound, measure fragmentation and run a proactive defrag pass, and
// perform a proposed scheme migration. Called under s.mu inside the write
// gate, between group commits.
func (s *state) tuneObserve(nOps int, batches0 int64, c0 obsv.Counters, sim0 int64) {
	d := s.counters().Sub(c0)
	dec, closed := s.ctl.Observe(tune.Sample{
		Ops:        nOps,
		Commits:    s.batches - batches0,
		SingleLeaf: d.SingleLeaf,
		HTMCommit:  d.HTMCommit,
		HTMAbort:   d.HTMAbort,
		MailDepth:  len(s.mail),
		Backoffs:   s.backoffs.Swap(0),
		SimNS:      s.be.Sys.Clock().Now() - sim0,
	})
	if !closed {
		return
	}
	s.liveBatch.Store(int64(dec.MaxBatch))
	if s.defragTh > 0 {
		s.measureFrag(dec)
		s.defragPass(dec)
	}
	if dec.Migrate != "" && s.migrate != nil {
		s.migrateTo(dec)
	}
}

// measureFrag scans the committed tree's leaf fragmentation through the
// snapshot reader — pure Peeks, no clock advance, no crash points — and
// queues the over-threshold leaves for the next defrag pass. Callers hold
// s.mu inside the write gate (the store is quiescent).
func (s *state) measureFrag(dec *tune.Decision) {
	sr, ok := s.be.Store.(pager.SnapshotReader)
	if !ok {
		return
	}
	v := viewPool.Get().(*btree.View)
	v.Reset(sr, s.be.Store.PageSize())
	rep, err := v.FragScan(s.defragTh, maxHotLeaves)
	v.Release()
	viewPool.Put(v)
	if err != nil {
		return
	}
	s.frag = rep.Ratio()
	dec.FragPct = int(s.frag * 100)
	if s.frag >= s.defragTh && len(rep.HotKeys) > 0 {
		s.hotKeys = append(s.hotKeys[:0], rep.HotKeys...)
	} else {
		s.hotKeys = s.hotKeys[:0]
	}
}

// defragPass rewrites up to defragPerSlot pending hot leaves copy-on-write
// in one transaction, containing crash injection and panics the same way a
// batch apply does. dec (when non-nil) records the page count. Callers hold
// s.mu inside the write gate.
func (s *state) defragPass(dec *tune.Decision) {
	if len(s.hotKeys) == 0 {
		return
	}
	var n int
	var derr error
	crashed, fault := s.runContained(func() {
		n, derr = s.tree.DefragLeaves(s.hotKeys, defragPerSlot)
	})
	switch {
	case fault != nil:
		s.degraded = true
		s.downCause = fault
		s.setHealth()
		return
	case crashed:
		s.crashed = true
		s.setHealth()
		return
	case derr != nil:
		return
	}
	if dec != nil {
		dec.DefragPages += n
	}
	if n >= len(s.hotKeys) {
		s.hotKeys = s.hotKeys[:0]
	} else {
		s.hotKeys = s.hotKeys[:copy(s.hotKeys, s.hotKeys[n:])]
	}
}

// maybeIdleDefrag runs one defrag pass when the shard has pending hot
// leaves and its mailbox is empty — the idle group-commit slot. The writer
// loop calls it after a drain that left the mailbox dry.
func (s *state) maybeIdleDefrag() {
	if s.ctl == nil || s.defragTh <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed || s.degraded || len(s.hotKeys) == 0 {
		return
	}
	s.beginMutate()
	defer s.endMutate()
	s.defragPass(nil)
}

// migrateTo performs a proposed scheme migration through the facade's
// closure: checkpoint the old scheme to a clean page image, build the
// target image, flip the persisted scheme tag, attach the new store. A
// simulated power failure inside the protocol poisons the shard exactly
// like one inside a batch — recovery re-resolves the tag and reattaches
// whichever image it names. Callers hold s.mu inside the write gate.
func (s *state) migrateTo(dec *tune.Decision) {
	var ns pager.Store
	var merr error
	crashed, fault := s.runContained(func() { ns, merr = s.migrate(dec.Migrate) })
	switch {
	case fault != nil:
		s.degraded = true
		s.downCause = fault
		s.setHealth()
		return
	case crashed:
		s.crashed = true
		s.setHealth()
		return
	case merr != nil:
		// Clean refusal (unsupported target, full machine): the old store
		// is intact and keeps serving; the controller proposal stands and
		// may be retried next window.
		return
	}
	s.be.Store = ns
	s.tree = btree.New(ns)
	s.publishReadState()
	s.ctl.SetScheme(dec.Migrate)
	dec.Migrated = true
}

// ShardScheme returns shard i's live commit-scheme name in the facade's
// canonical lowercase form; under adaptive tuning it may differ from the
// configured scheme.
func (e *Engine) ShardScheme(i int) string {
	s := e.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	return canonSchemeName(s.be.Store.Name())
}

// ShardMaxBatch returns shard i's live group-commit drain bound.
func (e *Engine) ShardMaxBatch(i int) int { return e.shards[i].maxBatchNow() }

// ShardFragmentation returns shard i's last measured leaf-fragmentation
// ratio, -1 before any measurement.
func (e *Engine) ShardFragmentation(i int) float64 {
	s := e.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.frag
}

// ShardTrace returns a copy of shard i's controller decision trace, nil
// when tuning is off.
func (e *Engine) ShardTrace(i int) []tune.Decision {
	s := e.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ctl == nil {
		return nil
	}
	return append([]tune.Decision(nil), s.ctl.Trace()...)
}
