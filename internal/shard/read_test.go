package shard_test

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"fasp/internal/obsv"
	"fasp/internal/pmem"
	"fasp/internal/shard"
)

// TestConcurrentReadStress runs N reader goroutines against a writer doing
// inserts (with page splits) and group commits, under -race in CI. Every
// value a reader observes must be exactly the model value for its key, and
// any key the writer has acknowledged must be visible. This is the seqlock
// soundness test: a torn or mid-commit read would surface as a malformed
// value, a phantom miss, or a race-detector report.
func TestConcurrentReadStress(t *testing.T) {
	const (
		nKeys    = 1500
		nReaders = 6
	)
	e := newTestEngine(t, 4, 8)
	var acked atomic.Int64
	acked.Store(-1)
	var stop atomic.Bool
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for i := 0; i < nKeys; i++ {
			if err := e.Do(shard.Op{Kind: shard.OpPut, Key: key(i), Val: val(i)}); err != nil {
				t.Errorf("put %d: %v", i, err)
				return
			}
			acked.Store(int64(i))
		}
	}()

	for r := 0; r < nReaders; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := uint64(r)*2654435761 + 12345
			for !stop.Load() {
				max := acked.Load()
				if max < 0 {
					continue
				}
				rng = rng*6364136223846793005 + 1442695040888963407
				j := int(rng % uint64(max+1))
				v, ok, err := e.Get(key(j))
				if err != nil {
					t.Errorf("reader %d: get %d: %v", r, j, err)
					return
				}
				if !ok {
					t.Errorf("reader %d: acked key %d missing", r, j)
					return
				}
				if !bytes.Equal(v, val(j)) {
					t.Errorf("reader %d: key %d = %q, want %q", r, j, v, val(j))
					return
				}
			}
		}(r)
	}

	// One scanner: full scans must stay strictly ordered with well-formed
	// pairs and include everything acked before the scan began.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			before := acked.Load()
			seen := make(map[int]bool)
			var prev []byte
			err := e.Scan(nil, nil, func(k, v []byte) bool {
				if prev != nil && bytes.Compare(prev, k) >= 0 {
					t.Errorf("scan order violated: %q then %q", prev, k)
					return false
				}
				prev = append(prev[:0], k...)
				var i int
				if _, err := fmt.Sscanf(string(k), "key%06d", &i); err != nil {
					t.Errorf("malformed key %q", k)
					return false
				}
				if !bytes.Equal(v, val(i)) {
					t.Errorf("scan key %d = %q, want %q", i, v, val(i))
					return false
				}
				seen[i] = true
				return true
			})
			if err != nil {
				t.Errorf("scan: %v", err)
				return
			}
			for i := int64(0); i <= before; i++ {
				if !seen[int(i)] {
					t.Errorf("scan missed acked key %d", i)
					return
				}
			}
			// Count is not a snapshot, but records only grow here.
			n, err := e.Count()
			if err != nil {
				t.Errorf("count: %v", err)
				return
			}
			if n < int(before+1) {
				t.Errorf("count %d < acked %d", n, before+1)
				return
			}
		}
	}()

	wg.Wait()
	// Final state must be complete and intact.
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	n, err := e.Count()
	if err != nil || n != nKeys {
		t.Fatalf("final count %d (%v), want %d", n, err, nKeys)
	}
}

// TestReadsAddNoCrashPoints runs the same deterministic write workload on
// twin engines, interleaving heavy reads on one of them, and requires every
// shard's machine state — crash points, PM event counters, simulated clock —
// to be bit-identical. Optimistic reads must be invisible to the simulated
// machine, or the crash-schedule explorer and the golden determinism files
// would shift under read load.
func TestReadsAddNoCrashPoints(t *testing.T) {
	const shards = 4
	build := func(withReads bool) *shard.Engine {
		e := newTestEngine(t, shards, 8)
		for i := 0; i < 400; i += 20 {
			batch := make([]shard.Op, 0, 20)
			for j := i; j < i+20; j++ {
				batch = append(batch, shard.Op{Kind: shard.OpPut, Key: key(j), Val: val(j)})
			}
			for _, err := range e.ApplyBatch(batch) {
				if err != nil {
					t.Fatalf("apply: %v", err)
				}
			}
			if withReads {
				for j := 0; j < i+20; j += 7 {
					if _, ok, err := e.Get(key(j)); !ok || err != nil {
						t.Fatalf("get %d: %v %v", j, ok, err)
					}
				}
				if err := e.Scan(nil, nil, func(_, _ []byte) bool { return true }); err != nil {
					t.Fatal(err)
				}
				if err := e.ScanShard(i%shards, nil, nil, func(_, _ []byte) bool { return true }); err != nil {
					t.Fatal(err)
				}
				if _, err := e.Count(); err != nil {
					t.Fatal(err)
				}
			}
		}
		return e
	}
	quiet := build(false)
	noisy := build(true)
	for i := 0; i < shards; i++ {
		qi, ni := quiet.ShardInfo(i), noisy.ShardInfo(i)
		if qi.SimNS != ni.SimNS {
			t.Errorf("shard %d: reads moved the clock: %d vs %d", i, qi.SimNS, ni.SimNS)
		}
		if qi.PM != ni.PM {
			t.Errorf("shard %d: reads changed PM stats:\n  quiet %+v\n  noisy %+v", i, qi.PM, ni.PM)
		}
		if qp, np := quiet.ShardSys(i).CrashPoints(), noisy.ShardSys(i).CrashPoints(); qp != np {
			t.Errorf("shard %d: reads added crash points: %d vs %d", i, qp, np)
		}
	}
}

// TestReadPathSelection pins which path serves reads: optimistic on a
// healthy snapshot-capable store, locked when optimism is disabled.
func TestReadPathSelection(t *testing.T) {
	run := func(noOpt bool) obsv.Snapshot {
		cfg := testConfig(2, 8, 0)
		cfg.NoOptimisticReads = noOpt
		cfg.Recorder = obsv.New(obsv.Config{SampleEvery: 1})
		e, err := shard.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		for i := 0; i < 50; i++ {
			if err := e.Do(shard.Op{Kind: shard.OpPut, Key: key(i), Val: val(i)}); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 50; i++ {
			if _, ok, err := e.Get(key(i)); !ok || err != nil {
				t.Fatalf("get %d: %v %v", i, ok, err)
			}
		}
		return cfg.Recorder.Snapshot()
	}
	opt := run(false)
	if opt.GetOptimistic != 50 || opt.GetLocked != 0 {
		t.Fatalf("default: optimistic=%d locked=%d, want 50/0", opt.GetOptimistic, opt.GetLocked)
	}
	locked := run(true)
	if locked.GetOptimistic != 0 || locked.GetLocked != 50 {
		t.Fatalf("noOpt: optimistic=%d locked=%d, want 0/50", locked.GetOptimistic, locked.GetLocked)
	}
}

// TestReadFallbackSemantics pins the error contract on unhealthy shards:
// the optimistic path must surface exactly the canonical errors.
func TestReadFallbackSemantics(t *testing.T) {
	e := newTestEngine(t, 2, 8)
	for i := 0; i < 100; i++ {
		if err := e.Do(shard.Op{Kind: shard.OpInsert, Key: key(i), Val: val(i)}); err != nil {
			t.Fatal(err)
		}
	}
	e.Crash(pmem.CrashOptions{Seed: 9, EvictProb: 0.5})
	if _, _, err := e.Get(key(0)); !errors.Is(err, shard.ErrCrashed) {
		t.Fatalf("get on crashed shard: %v", err)
	}
	if err := e.Scan(nil, nil, func(_, _ []byte) bool { return true }); !errors.Is(err, shard.ErrCrashed) {
		t.Fatalf("scan on crashed engine: %v", err)
	}
	if err := e.ScanShard(0, nil, nil, func(_, _ []byte) bool { return true }); !errors.Is(err, shard.ErrCrashed) {
		t.Fatalf("scanshard on crashed shard: %v", err)
	}
	if _, err := e.Count(); !errors.Is(err, shard.ErrCrashed) {
		t.Fatalf("count on crashed engine: %v", err)
	}
	if err := e.Reopen(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if v, ok, err := e.Get(key(i)); err != nil || !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("post-reopen get %d: %q %v %v", i, v, ok, err)
		}
	}
}

// TestReadsAfterClose: Close stops the writers; reads — optimistic and
// merged scans — must keep serving the final committed state.
func TestReadsAfterClose(t *testing.T) {
	e := newTestEngine(t, 3, 8)
	const n = 120
	for i := 0; i < n; i++ {
		if err := e.Do(shard.Op{Kind: shard.OpPut, Key: key(i), Val: val(i)}); err != nil {
			t.Fatal(err)
		}
	}
	e.Close()
	for i := 0; i < n; i++ {
		if v, ok, err := e.Get(key(i)); err != nil || !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("post-close get %d: %q %v %v", i, v, ok, err)
		}
	}
	count := 0
	if err := e.Scan(nil, nil, func(_, _ []byte) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("post-close scan saw %d, want %d", count, n)
	}
	if got, err := e.Count(); err != nil || got != n {
		t.Fatalf("post-close count %d (%v)", got, err)
	}
}

// TestScanEarlyStopStopsProducers: fn returning false must abort the merge
// without draining every shard (the producers park on the stop channel) and
// without goroutine leaks (run under -race to catch teardown races).
func TestScanEarlyStopStopsProducers(t *testing.T) {
	e := newTestEngine(t, 4, 8)
	for i := 0; i < 2000; i++ {
		if err := e.Do(shard.Op{Kind: shard.OpPut, Key: key(i), Val: val(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 20; trial++ {
		seen := 0
		if err := e.Scan(nil, nil, func(_, _ []byte) bool {
			seen++
			return seen < 5
		}); err != nil {
			t.Fatal(err)
		}
		if seen != 5 {
			t.Fatalf("early stop visited %d", seen)
		}
	}
	// Reverse with bounds, early stop.
	var got []string
	if err := e.ScanReverse(key(100), key(1900), func(k, _ []byte) bool {
		got = append(got, string(k))
		return len(got) < 3
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{string(key(1900)), string(key(1899)), string(key(1898))}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reverse scan = %v, want %v", got, want)
		}
	}
}
