package shard

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fasp/internal/btree"
	"fasp/internal/obsv"
	"fasp/internal/pager"
	"fasp/internal/pmem"
	"fasp/internal/tune"
)

// Defaults for Config.
const (
	// DefaultMaxBatch bounds the operations one group commit may drain.
	DefaultMaxBatch = 64
	// defaultMailboxFactor sizes a shard's mailbox as a multiple of
	// MaxBatch, so a burst can queue a few batches ahead of the writer.
	defaultMailboxFactor = 4
	// DefaultEnqueueTimeout bounds how long a submission waits for mailbox
	// space before giving up with ErrBusy.
	DefaultEnqueueTimeout = 2 * time.Second
)

// ErrCrashed is returned for operations submitted to a shard whose
// simulated machine has suffered a (injected or explicit) power failure
// and has not been recovered yet; call Engine.Reopen.
var ErrCrashed = errors.New("shard: store crashed; recovery required")

// ErrShardDown is returned (wrapped, with the root cause) for operations
// submitted to a shard whose writer hit a fault that is not a simulated
// power failure — a store panic or hard PM error. The fault is contained:
// the writer keeps draining its mailbox (failing every batch with this
// error), the other shards keep serving, and Engine.Heal re-runs recovery
// on just the degraded shard.
var ErrShardDown = errors.New("shard: writer faulted; shard degraded until healed")

// ErrBusy is returned when a shard's mailbox stays full for the whole
// enqueue timeout — the writer is wedged or the shard is badly
// oversubscribed. The submission is not applied.
var ErrBusy = errors.New("shard: mailbox full; enqueue timed out")

// ErrClosed is returned for write operations submitted after Close: the
// writer goroutines have exited and nothing will serve the mailbox. The
// submission is not applied. (Reads keep working — they never needed a
// writer.)
var ErrClosed = errors.New("shard: engine closed")

// Backend is one shard's independent store: its own simulated machine,
// PM arena, and commit-scheme store. The engine owns all access to it.
type Backend struct {
	Sys   *pmem.System
	Arena *pmem.Arena
	Store pager.Store
	// Ctl is the shard's control arena holding the persisted live-scheme
	// tag; nil unless adaptive scheme selection is on. The facade owns its
	// layout — the engine only carries it so Reattach and Migrate closures
	// share one handle.
	Ctl *pmem.Arena
	// NewArena / NewScheme stage an in-flight cross-arena scheme migration:
	// the target arena is fully built and NewScheme names its scheme before
	// the tag flips, so a crash-time Reattach can tell which image the
	// persisted tag refers to. Cleared once the swap completes.
	NewArena  *pmem.Arena
	NewScheme string
	// EvBase accumulates the commit-path event counters of stores retired
	// by scheme migrations, so the facade's counter bridge stays monotonic
	// across store swaps.
	EvBase obsv.Counters
}

// Config builds an Engine. Open and Reattach keep the engine
// scheme-agnostic: the facade supplies closures that construct and recover
// whichever commit scheme the caller picked.
type Config struct {
	// Shards is the number of hash partitions (≥ 1).
	Shards int
	// MaxBatch bounds the operations per group commit (default 64).
	MaxBatch int
	// Mailbox is each shard's queue capacity (default 4×MaxBatch).
	Mailbox int
	// EnqueueTimeout bounds how long a submission waits (with backoff) for
	// mailbox space before failing with ErrBusy (default 2s).
	EnqueueTimeout time.Duration
	// Open creates shard i's backend on a fresh simulated machine.
	Open func(i int) (*Backend, error)
	// Reattach rebuilds shard i's store over its surviving arena after a
	// crash and runs the scheme's recovery.
	Reattach func(i int, be *Backend) (pager.Store, error)
	// Recorder, when set, observes the engine: per-op wall latency at the
	// mailbox, per-batch simulated time and commit-path events at the
	// writer, batch-size and mailbox-depth distributions.
	Recorder *obsv.Recorder
	// Counters snapshots shard i's commit-path event counters (clflush,
	// fence, HTM, log appends) so the recorder can observe per-batch
	// deltas. The facade supplies the scheme-aware bridge; nil means event
	// deltas are not recorded.
	Counters func(i int, be *Backend) obsv.Counters
	// NoOptimisticReads forces every read through the locked path, even on
	// stores that support snapshot peeks — the baseline arm for read-path
	// benchmarks, and an escape hatch.
	NoOptimisticReads bool
	// Tune, when set, runs the per-shard adaptive controller (online scheme
	// selection, AIMD batch sizing, defrag scheduling). The facade fills
	// Scheme before handing it over; MaxBatch and MailboxCap default to the
	// engine's. Each shard gets its own Controller built from this template.
	Tune *tune.Config
	// Migrate performs a crash-safe commit-scheme migration of shard i to
	// target, returning the new store over the (possibly replaced) arena.
	// It is called with the shard quiesced — lock held, write gate closed,
	// between group commits. Required when Tune.AdaptScheme is on.
	Migrate func(i int, be *Backend, target string) (pager.Store, error)
	// DefragThreshold enables proactive copy-on-write defragmentation under
	// Tune: each closed decision window measures the committed tree's leaf
	// fragmentation, and leaves at or above the threshold are rewritten
	// during idle group-commit slots. 0 disables.
	DefragThreshold float64
	// FaultHook, when set, runs at the top of every group commit with the
	// shard index, inside the contained writer section: a panic degrades
	// just that shard (wrapped ErrShardDown until Heal re-runs recovery), a
	// sleep stalls that shard's batch while the others keep serving. The
	// fault-injection harness (internal/faultx) plugs in here; production
	// leaves it nil.
	FaultHook func(shard int)
}

func (c *Config) fill() error {
	if c.Shards < 1 {
		return fmt.Errorf("shard: Shards must be ≥ 1, got %d", c.Shards)
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.Mailbox <= 0 {
		c.Mailbox = defaultMailboxFactor * c.MaxBatch
	}
	if c.EnqueueTimeout <= 0 {
		c.EnqueueTimeout = DefaultEnqueueTimeout
	}
	if c.Open == nil {
		return errors.New("shard: Config.Open is required")
	}
	if c.Reattach == nil {
		return errors.New("shard: Config.Reattach is required")
	}
	if c.Tune != nil && c.Tune.AdaptScheme && c.Migrate == nil {
		return errors.New("shard: Tune.AdaptScheme requires Config.Migrate")
	}
	return nil
}

// Health is one shard's serving state.
type Health int

const (
	// Healthy shards serve reads and writes. The zero value, so healthy
	// shards keep their golden-test JSON stable.
	Healthy Health = iota
	// Crashed shards suffered a simulated power failure; Reopen (or Heal)
	// runs recovery.
	Crashed
	// Degraded shards hit a writer fault (store panic / hard PM error);
	// Heal re-runs recovery on just that shard.
	Degraded
)

func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Crashed:
		return "crashed"
	case Degraded:
		return "degraded"
	}
	return fmt.Sprintf("health(%d)", int(h))
}

// Info is one shard's observable state, for stats aggregation and the
// golden determinism tests.
type Info struct {
	// SimNS is the shard machine's simulated time.
	SimNS int64 `json:"sim_ns"`
	// Ops counts operations applied through the writer or ApplyBatch.
	Ops int64 `json:"ops"`
	// Batches counts committed group-commit transactions.
	Batches int64 `json:"batches"`
	// MaxDrained is the largest batch one drain has committed.
	MaxDrained int `json:"max_drained"`
	// PM is the shard arena's architectural event counters.
	PM pmem.Stats `json:"pm_stats"`
	// Phases is the shard clock's per-phase simulated-time breakdown.
	Phases map[string]int64 `json:"phases"`
	// Health is the shard's serving state (zero = healthy).
	Health Health `json:"health,omitempty"`
	// Fault is the root cause text when Health is Degraded.
	Fault string `json:"fault,omitempty"`
}

// Stats aggregates the engine's shards.
type Stats struct {
	Shards int
	// CrashedShards and DegradedShards count the shards not serving.
	CrashedShards  int
	DegradedShards int
	Ops            int64
	Batches        int64
	// MaxDrained is the largest single group commit across shards.
	MaxDrained int
	// PM sums the per-shard architectural event counters.
	PM pmem.Stats
	// SimMaxNS is the slowest shard's simulated time — the simulated
	// elapsed time of the sharded system, since shards run in parallel.
	SimMaxNS int64
	// SimSumNS is the total simulated work across shards.
	SimSumNS int64
}

// state is one shard: a backend plus its writer goroutine. mu guards
// everything below it — the simulated machine is not internally
// synchronised, so locked reads take the lock too. Optimistic reads run
// OFF the lock under the seq/readers epoch protocol (see read.go): every
// mutation of the machine happens inside beginMutate/endMutate, and the
// fields optimistic readers consult (seq, readers, health, reader, recs)
// are atomics updated under the gate.
type state struct {
	id int

	mu         sync.Mutex
	be         *Backend
	tree       *btree.Tree
	closed     bool // sealed by Engine.Close after the writer drained
	crashed    bool
	degraded   bool
	downCause  error
	ops        int64
	batches    int64
	maxDrained int

	// Read-epoch gate (read.go). seq: even = quiescent, odd = mutating.
	// readers counts registered optimistic readers; beginMutate spins on
	// it. health mirrors crashed/degraded; reader publishes the snapshot
	// handles (replaced when Heal swaps the store); recs is an upper-bound
	// record-count estimate that pre-sizes scan scratch buffers. noOpt
	// short-circuits the optimistic path entirely.
	seq     atomic.Uint64
	readers atomic.Int64
	health  atomic.Int32
	reader  atomic.Pointer[readState]
	recs    atomic.Int64
	noOpt   bool

	// simNow mirrors the shard machine's simulated clock as of the last
	// completed mutation (updated in endMutate, under the write gate), so
	// the serving layer can sample per-shard device time race-free without
	// taking shard locks — the global-batcher barrier accounting reads it
	// around each commit round.
	simNow atomic.Int64

	mail chan *request
	quit chan struct{}
	done chan struct{}

	// faultHook is Config.FaultHook (nil in production).
	faultHook func(int)

	// rec/evFn are the observability hooks (nil when metrics are off).
	// evFn is bound once at construction; it reads be.Store at call time,
	// so it stays correct across Heal's store replacement.
	rec  *obsv.Recorder
	evFn func() obsv.Counters

	// Adaptive tuning state (tuning.go). ctl is nil when tuning is off.
	// liveBatch is always the live drain bound (== Config.MaxBatch until
	// the controller retargets it), read by the writer loop and ApplyBatch.
	// backoffs counts full-mailbox enqueue events since the last sample.
	// frag and hotKeys hold the last fragmentation measurement (under mu;
	// frag is -1 until measured). migrate is the bound facade migration
	// closure.
	ctl       *tune.Controller
	liveBatch atomic.Int64
	backoffs  atomic.Int64
	defragTh  float64
	frag      float64
	hotKeys   [][]byte
	migrate   func(target string) (pager.Store, error)
}

// maxBatchNow is the shard's live group-commit drain bound.
func (s *state) maxBatchNow() int { return int(s.liveBatch.Load()) }

// counters snapshots the shard's commit-path event counters (zero when no
// bridge is configured). Callers hold s.mu.
func (s *state) counters() obsv.Counters {
	if s.evFn == nil {
		return obsv.Counters{}
	}
	return s.evFn()
}

// kindOp maps an OpKind to its observability label.
var kindOp = [4]obsv.Op{
	OpPut:    obsv.OpPut,
	OpInsert: obsv.OpInsert,
	OpUpdate: obsv.OpUpdate,
	OpDelete: obsv.OpDelete,
}

// Engine is the sharded store engine.
type Engine struct {
	cfg       Config
	shards    []*state
	closed    atomic.Bool
	closeOnce sync.Once
}

// New builds the engine and starts one writer goroutine per shard.
func New(cfg Config) (*Engine, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	e := &Engine{cfg: cfg, shards: make([]*state, cfg.Shards)}
	for i := range e.shards {
		be, err := cfg.Open(i)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		s := &state{
			id:    i,
			be:    be,
			tree:  btree.New(be.Store),
			noOpt: cfg.NoOptimisticReads,
			mail:  make(chan *request, cfg.Mailbox),
			quit:  make(chan struct{}),
			done:  make(chan struct{}),
			rec:   cfg.Recorder,

			faultHook: cfg.FaultHook,
		}
		s.frag = -1
		s.liveBatch.Store(int64(cfg.MaxBatch))
		s.publishReadState()
		// The counter bridge serves the recorder AND the tuner, so it is
		// bound whenever the facade supplies it — metrics may be disabled
		// while tuning is on.
		if cfg.Counters != nil {
			i, be := i, be
			s.evFn = func() obsv.Counters { return cfg.Counters(i, be) }
		}
		if cfg.Tune != nil {
			tc := *cfg.Tune
			if tc.MaxBatch <= 0 {
				tc.MaxBatch = cfg.MaxBatch
			}
			if tc.MailboxCap <= 0 {
				tc.MailboxCap = cfg.Mailbox
			}
			s.ctl = tune.New(tc)
			s.liveBatch.Store(int64(s.ctl.MaxBatch()))
			s.defragTh = cfg.DefragThreshold
			if cfg.Migrate != nil {
				i, be := i, be
				s.migrate = func(target string) (pager.Store, error) {
					return cfg.Migrate(i, be, target)
				}
			}
		}
		e.shards[i] = s
	}
	for _, s := range e.shards {
		go s.run()
	}
	return e, nil
}

// Shards returns the shard count.
func (e *Engine) Shards() int { return len(e.shards) }

// MaxBatch returns the group-commit drain bound.
func (e *Engine) MaxBatch() int { return e.cfg.MaxBatch }

// SimClocks fills dst (grown if needed) with every shard's simulated
// clock as of its last completed mutation and returns it. The values are
// lock-free atomic snapshots — exact whenever the shard's writer is
// between batches, at most one batch stale while it is mid-commit — which
// is what makespan accounting over commit rounds needs.
func (e *Engine) SimClocks(dst []int64) []int64 {
	if cap(dst) < len(e.shards) {
		dst = make([]int64, len(e.shards))
	}
	dst = dst[:len(e.shards)]
	for i, s := range e.shards {
		dst[i] = s.simNow.Load()
	}
	return dst
}

// ShardFor routes a key: FNV-1a over the key, modulo the shard count.
// The hash is part of the on-disk contract — snapshots record the shard
// count and images are only valid under the same routing.
func (e *Engine) ShardFor(key []byte) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range key {
		h = (h ^ uint64(c)) * prime64
	}
	return int(h % uint64(len(e.shards)))
}

// Close stops the writer goroutines after serving every queued request.
// It is idempotent, and safe to call while shards are crashed or degraded
// (their writers still drain, reporting errors). Write operations
// submitted after Close fail with ErrClosed instead of deadlocking on an
// unserved mailbox; reads keep working.
func (e *Engine) Close() {
	e.closed.Store(true)
	e.closeOnce.Do(func() {
		for _, s := range e.shards {
			close(s.quit)
		}
		for _, s := range e.shards {
			<-s.done
		}
		// Seal each shard under its lock. A locked-path ApplyBatch that
		// passed the engine-level closed check either already holds s.mu —
		// then Close waits for it here, so its commit lands before Close
		// returns — or it takes the lock later and fails with ErrClosed.
		// Nothing commits after Close returns.
		for _, s := range e.shards {
			s.mu.Lock()
			s.closed = true
			s.mu.Unlock()
		}
	})
}

// Closed reports whether Close has begun.
func (e *Engine) Closed() bool { return e.closed.Load() }

// ApplyBatch partitions ops by shard and applies each shard's sub-batch —
// in submission order, in ascending shard order, as group commits of at
// most MaxBatch ops — returning per-op errors aligned with ops.
//
// Unlike the mailbox path, batch boundaries here are a pure function of
// the op sequence, so per-shard simulated time is bit-reproducible; the
// golden determinism tests pin it.
func (e *Engine) ApplyBatch(ops []Op) []error {
	errs := make([]error, len(ops))
	// Close's contract: writes after Close fail with ErrClosed. The mailbox
	// path enforces it in submit; this locked path must too, or a post-Close
	// ApplyBatch silently mutates a store its owner believes quiesced.
	if e.closed.Load() {
		for i := range errs {
			errs[i] = ErrClosed
		}
		return errs
	}
	parts := make([][]int, len(e.shards))
	for i := range ops {
		si := e.ShardFor(ops[i].Key)
		parts[si] = append(parts[si], i)
	}
	var sOps []Op
	var sErrs []error
	for si, idxs := range parts {
		if len(idxs) == 0 {
			continue
		}
		sOps = sOps[:0]
		for _, i := range idxs {
			sOps = append(sOps, ops[i])
		}
		sErrs = append(sErrs[:0], make([]error, len(idxs))...)
		s := e.shards[si]
		s.applyLocked(s.maxBatchNow(), sOps, sErrs)
		for k, i := range idxs {
			errs[i] = sErrs[k]
		}
	}
	return errs
}

// unavailable returns the error every operation on this shard gets while
// it is not serving, or nil. Callers hold s.mu.
func (s *state) unavailable() error {
	switch {
	case s.crashed:
		return ErrCrashed
	case s.degraded:
		return fmt.Errorf("shard %d: %w: %v", s.id, ErrShardDown, s.downCause)
	}
	return nil
}

// runContained executes fn under the shard machine's crash injector and
// additionally contains every other panic — a store bug or a hard PM
// error must degrade this one shard, not kill the writer goroutine (which
// would wedge the mailbox) or the process.
func (s *state) runContained(fn func()) (crashed bool, fault error) {
	defer func() {
		if r := recover(); r != nil {
			fault = fmt.Errorf("writer panic: %v", r)
		}
	}()
	return s.be.Sys.RunToCrash(fn), nil
}

// applyLocked takes the shard lock and applies ops, honouring the crashed
// and degraded flags, converting an injected simulated power failure into
// ErrCrashed for every op of the poisoned batch, and containing writer
// faults as ErrShardDown.
func (s *state) applyLocked(maxBatch int, ops []Op, errs []error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		for i := range errs {
			errs[i] = ErrClosed
		}
		return
	}
	if err := s.unavailable(); err != nil {
		for i := range errs {
			errs[i] = err
		}
		return
	}
	s.beginMutate()
	defer s.endMutate()
	var sp obsv.Span
	if s.rec != nil {
		sp = s.rec.Begin(s.be.Sys.Clock().Now(), s.counters())
	}
	var tSim0, tBatches0 int64
	var tc0 obsv.Counters
	if s.ctl != nil {
		tSim0 = s.be.Sys.Clock().Now()
		tBatches0 = s.batches
		tc0 = s.counters()
	}
	crashed, fault := s.runContained(func() {
		if s.faultHook != nil {
			s.faultHook(s.id)
		}
		s.batches += ApplyOps(s.tree, maxBatch, ops, errs)
	})
	if s.rec != nil {
		// One group commit observed: batch size, wall/sim latency, and the
		// commit-path event delta; the batch's simulated time is spread
		// evenly over its ops for the per-kind distributions. Pure reads of
		// the machine's counters — the simulated clock never advances here,
		// so the golden determinism files are untouched.
		simD := s.rec.EndBatch(sp, int32(s.id), len(ops), s.be.Sys.Clock().Now(), s.counters())
		if n := int64(len(ops)); n > 0 {
			per := simD / n
			for i := range ops {
				s.rec.ObserveSim(kindOp[ops[i].Kind], per)
			}
		}
	}
	if fault != nil {
		// The batch died mid-apply; like a crash, nothing in it can be
		// acknowledged. The shard stops serving until Heal re-runs
		// recovery over its (intact) arena; the other shards are
		// untouched.
		s.degraded = true
		s.downCause = fault
		s.setHealth()
		err := s.unavailable()
		for i := range errs {
			errs[i] = err
		}
	} else if crashed {
		// The failure unwound mid-batch: whatever did not reach a commit
		// mark is gone, and even committed ops cannot be acknowledged
		// (the crash may have fired between the mark and the reply), so
		// the whole drained batch reports ErrCrashed. The shard stays
		// poisoned with its volatile state frozen; the harness then calls
		// Engine.Crash to run the eviction lottery (the power failure
		// proper) and Reopen to recover — the same arm/crash/reattach
		// protocol cmd/crashtest drives on a single store.
		s.crashed = true
		s.setHealth()
		for i := range errs {
			errs[i] = ErrCrashed
		}
	} else {
		// recs is a record-count estimate (an upper bound: Put may
		// overwrite rather than insert) used only to pre-size read scratch
		// buffers, so the cheap accounting is fine.
		var d int64
		for i := range ops {
			if errs[i] != nil {
				continue
			}
			switch ops[i].Kind {
			case OpPut, OpInsert:
				d++
			case OpDelete:
				d--
			}
		}
		if d != 0 {
			s.recs.Add(d)
		}
		if s.ctl != nil {
			s.tuneObserve(len(ops), tBatches0, tc0, tSim0)
		}
	}
	s.ops += int64(len(ops))
	// ApplyOps chunks at maxBatch, so the largest single group commit out
	// of this submission is capped by it.
	drained := len(ops)
	if drained > maxBatch {
		drained = maxBatch
	}
	if drained > s.maxDrained {
		s.maxDrained = drained
	}
}

// Scan visits keys in [lo, hi] in ascending order across all shards
// (nil bounds are open). Each shard holds a disjoint subset of the key
// space, so the global order is a k-way merge of the per-shard streams;
// per-shard collection is streamed by one producer goroutine each (see
// read.go). Key/value slices are valid only during the callback.
func (e *Engine) Scan(lo, hi []byte, fn func(k, v []byte) bool) error {
	return e.scan(lo, hi, false, fn)
}

// ScanReverse visits keys in [lo, hi] in descending order across shards.
func (e *Engine) ScanReverse(lo, hi []byte, fn func(k, v []byte) bool) error {
	return e.scan(lo, hi, true, fn)
}

// Validate checks full structural integrity of every shard's tree.
func (e *Engine) Validate() error {
	for i, s := range e.shards {
		err := func() error {
			s.mu.Lock()
			defer s.mu.Unlock()
			if err := s.unavailable(); err != nil {
				return err
			}
			s.beginMutate()
			defer s.endMutate()
			tx, err := s.tree.Begin()
			if err != nil {
				return err
			}
			defer tx.Rollback()
			return tx.Validate()
		}()
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Crash simulates a power failure on every shard: each shard's machine
// runs its eviction lottery (with the seed decorrelated per shard) and the
// shard is poisoned until Reopen. In-flight batches finish first — the
// crash takes each shard's lock — so explicit Crash lands on group-commit
// boundaries; use pmem's crash injection (ShardSys + CrashAfter) to fail
// *inside* a batch.
func (e *Engine) Crash(opts pmem.CrashOptions) {
	for _, s := range e.shards {
		s.mu.Lock()
	}
	for i, s := range e.shards {
		o := opts
		o.Seed = opts.Seed + int64(i)
		s.beginMutate()
		s.be.Sys.Crash(o)
		s.crashed = true
		s.setHealth()
		s.endMutate()
	}
	for _, s := range e.shards {
		s.mu.Unlock()
	}
}

// Heal recovers one shard: the configured Reattach rebuilds its store over
// the surviving arena and runs the commit scheme's recovery, clearing the
// crashed and degraded flags. It is the containment counterpart of Reopen —
// after a writer fault, healing the one degraded shard brings it back
// without touching the healthy ones. A fresh store over the arena also
// resets any poisoned in-DRAM store state the faulting batch left behind;
// acked writes live in PM and survive.
func (e *Engine) Heal(i int) error {
	s := e.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	s.beginMutate()
	defer s.endMutate()
	ns, err := e.cfg.Reattach(i, s.be)
	if err != nil {
		return fmt.Errorf("shard %d: heal: %w", i, err)
	}
	s.be.Store = ns
	s.tree = btree.New(ns)
	s.crashed = false
	s.degraded = false
	s.downCause = nil
	s.publishReadState()
	s.setHealth()
	if s.ctl != nil {
		// Recovery resolves the persisted scheme tag; the controller syncs
		// to whatever scheme the reattached store actually runs.
		s.ctl.SetScheme(canonSchemeName(ns.Name()))
	}
	return nil
}

// Reopen recovers every shard after a crash: Heal on each one in turn.
func (e *Engine) Reopen() error {
	for i := range e.shards {
		if err := e.Heal(i); err != nil {
			return err
		}
	}
	return nil
}

// ShardSys returns shard i's simulated machine, for crash-injection
// harnesses (CrashAfter/CrashPoints). Arm it before concurrent traffic
// starts: the machine itself is only synchronised by the shard lock.
func (e *Engine) ShardSys(i int) *pmem.System { return e.shards[i].be.Sys }

// ShardStore returns shard i's pager store, for inspection tooling.
func (e *Engine) ShardStore(i int) pager.Store {
	s := e.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.be.Store
}

// ShardInfo returns shard i's observable state.
func (e *Engine) ShardInfo(i int) Info {
	s := e.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	in := Info{
		SimNS:      s.be.Sys.Clock().Now(),
		Ops:        s.ops,
		Batches:    s.batches,
		MaxDrained: s.maxDrained,
		PM:         s.be.Arena.Stats(),
		Phases:     s.be.Sys.Clock().Phases(),
	}
	switch {
	case s.crashed:
		in.Health = Crashed
	case s.degraded:
		in.Health = Degraded
		in.Fault = s.downCause.Error()
	}
	return in
}

// Stats aggregates all shards.
func (e *Engine) Stats() Stats {
	st := Stats{Shards: len(e.shards)}
	for i := range e.shards {
		in := e.ShardInfo(i)
		switch in.Health {
		case Crashed:
			st.CrashedShards++
		case Degraded:
			st.DegradedShards++
		}
		st.Ops += in.Ops
		st.Batches += in.Batches
		if in.MaxDrained > st.MaxDrained {
			st.MaxDrained = in.MaxDrained
		}
		st.PM = st.PM.Add(in.PM)
		st.SimSumNS += in.SimNS
		if in.SimNS > st.SimMaxNS {
			st.SimMaxNS = in.SimNS
		}
	}
	return st
}

// Gauges returns one health/throughput gauge per shard for the metrics
// exporter, each read under its shard's lock.
func (e *Engine) Gauges() []obsv.ShardGauge {
	out := make([]obsv.ShardGauge, len(e.shards))
	for i, s := range e.shards {
		s.mu.Lock()
		health := Healthy
		switch {
		case s.crashed:
			health = Crashed
		case s.degraded:
			health = Degraded
		}
		out[i] = obsv.ShardGauge{
			Shard:         i,
			Health:        health.String(),
			Ops:           s.ops,
			Batches:       s.batches,
			SimNS:         s.be.Sys.Clock().Now(),
			Flushes:       s.be.Arena.Stats().FlushCalls,
			Fences:        s.be.Sys.Fences(),
			Scheme:        canonSchemeName(s.be.Store.Name()),
			Fragmentation: s.frag,
			MaxBatch:      int(s.liveBatch.Load()),
		}
		s.mu.Unlock()
	}
	return out
}

// Phases sums the per-shard simulated-time phase breakdowns.
func (e *Engine) Phases() map[string]int64 {
	out := map[string]int64{}
	for i := range e.shards {
		for k, v := range e.ShardInfo(i).Phases {
			out[k] += v
		}
	}
	return out
}

// MediumSnapshots returns a crash-consistent PM image per shard, each
// taken under its shard's lock. Cross-shard skew (a batch committing on
// shard j while shard i is copied) is benign: there are no cross-shard
// transactions, so every image pins a valid prefix of its own history.
func (e *Engine) MediumSnapshots() [][]byte {
	imgs := make([][]byte, len(e.shards))
	for i, s := range e.shards {
		s.mu.Lock()
		imgs[i] = s.be.Arena.MediumSnapshot()
		s.mu.Unlock()
	}
	return imgs
}

// RestoreShard replaces shard i's durable medium with a snapshot image and
// poisons the shard until Reopen runs recovery over it.
func (e *Engine) RestoreShard(i int, img []byte) error {
	s := e.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	s.beginMutate()
	defer s.endMutate()
	if err := s.be.Arena.RestoreMedium(img); err != nil {
		return err
	}
	s.crashed = true
	s.setHealth()
	return nil
}
