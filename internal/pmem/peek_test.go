package pmem

import (
	"bytes"
	"testing"
)

func TestPeekMatchesLoadContent(t *testing.T) {
	_, a := newPM(t, 4096)
	src := make([]byte, 300)
	for i := range src {
		src[i] = byte(i)
	}
	a.Store(100, src)
	a.Persist(100, 300)
	dst := make([]byte, 300)
	a.Peek(100, dst)
	if !bytes.Equal(dst, src) {
		t.Fatalf("Peek = %v, want %v", dst[:8], src[:8])
	}
}

func TestPeekSeesCachedDirtyLines(t *testing.T) {
	// A dirty resident line's newest content lives in the cache; Peek must
	// read the same bytes Load would, not the stale medium.
	_, a := newPM(t, 4096)
	a.Store(0, []byte{7, 8, 9}) // unflushed
	dst := make([]byte, 3)
	a.Peek(0, dst)
	if !bytes.Equal(dst, []byte{7, 8, 9}) {
		t.Fatalf("Peek of dirty line = %v", dst)
	}
}

func TestPeekCostModel(t *testing.T) {
	sys, a := newPM(t, 4096)
	lat := sys.Latencies()
	a.Load(0, make([]byte, 1)) // line 0 now resident
	dst := make([]byte, 1)
	if c := a.Peek(0, dst); c != lat.CacheHit {
		t.Fatalf("resident peek cost %d, want %d", c, lat.CacheHit)
	}
	if c := a.Peek(1024, dst); c != lat.PMRead {
		t.Fatalf("absent peek cost %d, want %d", c, lat.PMRead)
	}
	// Peek never fills the cache: a repeat of the absent line pays again.
	if c := a.Peek(1024, dst); c != lat.PMRead {
		t.Fatalf("repeat absent peek cost %d, want %d (no fill)", c, lat.PMRead)
	}
}

func TestPeekLeavesMachineUntouched(t *testing.T) {
	sys, a := newPM(t, 4096)
	a.Store(0, []byte{1, 2, 3})
	a.Persist(0, 3)
	clock := sys.Clock().Now()
	stats := a.Stats()
	res := a.ResidentLines()
	points := sys.CrashPoints()
	dst := make([]byte, 128)
	a.Peek(0, dst)
	a.Peek(2048, dst) // absent lines too
	if now := sys.Clock().Now(); now != clock {
		t.Errorf("Peek advanced the clock: %d -> %d", clock, now)
	}
	if got := a.Stats(); got != stats {
		t.Errorf("Peek changed stats: %+v -> %+v", stats, got)
	}
	if got := a.ResidentLines(); got != res {
		t.Errorf("Peek changed residency: %d -> %d", res, got)
	}
	if got := sys.CrashPoints(); got != points {
		t.Errorf("Peek added crash points: %d -> %d", points, got)
	}
}

func TestPeekZeroLengthAndBounds(t *testing.T) {
	_, a := newPM(t, 128)
	if c := a.Peek(0, nil); c != 0 {
		t.Fatalf("zero-length peek cost %d", c)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range peek did not panic")
		}
	}()
	a.Peek(120, make([]byte, 16))
}
