package pmem

import (
	"fmt"
	"sort"
	"strings"
)

// Clock is a deterministic simulated clock with hierarchical phase
// accounting. Code brackets regions of interest with Enter/Exit; every
// Advance attributes the elapsed simulated time to each phase currently on
// the stack, producing inclusive per-phase totals exactly like the stacked
// breakdowns in the paper's figures (e.g. Figure 6's Search / Page Update /
// Commit, and Figure 7's sub-phases of Page Update).
//
// Phase names are hierarchical by convention: "Commit" and "Commit/LogFlush"
// are independent accumulation buckets; nesting comes from the stack, so
// entering "LogFlush" while "Commit" is open attributes time to both.
type Clock struct {
	now    int64
	stack  []string
	phases map[string]int64
}

// NewClock returns a clock at time zero with no phases.
func NewClock() *Clock {
	return &Clock{phases: make(map[string]int64)}
}

// Now returns the current simulated time in nanoseconds.
func (c *Clock) Now() int64 { return c.now }

// Advance moves simulated time forward by d nanoseconds and attributes d to
// every distinct phase on the stack (a phase open at several stack depths —
// e.g. a catalog-tree search nested inside a table-tree search — is charged
// once). Negative d panics: time never runs backwards.
func (c *Clock) Advance(d int64) {
	if d < 0 {
		panic(fmt.Sprintf("pmem: clock advanced by negative duration %d", d))
	}
	c.now += d
	for i, p := range c.stack {
		dup := false
		for _, q := range c.stack[:i] {
			if q == p {
				dup = true
				break
			}
		}
		if !dup {
			c.phases[p] += d
		}
	}
}

// Enter pushes a phase. Re-entering an open phase is allowed (nested trees
// share accounting buckets); the duplicate is attributed only once.
func (c *Clock) Enter(phase string) {
	c.stack = append(c.stack, phase)
}

// Exit pops a phase; the name must match the top of the stack.
func (c *Clock) Exit(phase string) {
	if len(c.stack) == 0 || c.stack[len(c.stack)-1] != phase {
		panic("pmem: phase exit mismatch for " + phase)
	}
	c.stack = c.stack[:len(c.stack)-1]
}

// InPhase runs fn bracketed by Enter/Exit, surviving panics (the crash
// injector unwinds through phases).
func (c *Clock) InPhase(phase string, fn func()) {
	c.Enter(phase)
	defer c.Exit(phase)
	fn()
}

// Phase returns the inclusive simulated time accumulated by the named phase.
func (c *Clock) Phase(name string) int64 { return c.phases[name] }

// Phases returns a copy of all phase totals.
func (c *Clock) Phases() map[string]int64 {
	out := make(map[string]int64, len(c.phases))
	for k, v := range c.phases {
		out[k] = v
	}
	return out
}

// ResetPhases zeroes the per-phase accumulators but keeps the current time
// and stack, so a harness can time a warmup and then a measured region.
func (c *Clock) ResetPhases() {
	c.phases = make(map[string]int64)
}

// ClearStack drops any open phases. The crash simulator calls this after a
// simulated power failure unwinds the protocol code mid-phase.
func (c *Clock) ClearStack() { c.stack = nil }

// Depth reports how many phases are currently open.
func (c *Clock) Depth() int { return len(c.stack) }

// String renders the phase totals sorted by name, for debugging.
func (c *Clock) String() string {
	names := make([]string, 0, len(c.phases))
	for k := range c.phases {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "t=%dns", c.now)
	for _, n := range names {
		fmt.Fprintf(&b, " %s=%d", n, c.phases[n])
	}
	return b.String()
}
