package pmem

import "math/bits"

// System owns the simulated clock, the latency model, the crash injector and
// every memory arena. One System corresponds to one machine in the paper's
// testbed; all arenas share its clock, so time spent in DRAM and PM composes
// into a single timeline.
type System struct {
	clock    *Clock
	lat      LatencyModel
	arenas   []*Arena
	injector crashInjector
	fences   int64
}

// NewSystem creates a machine with the given latency model.
func NewSystem(lat LatencyModel) *System {
	return &System{clock: NewClock(), lat: lat}
}

// Clock returns the system's simulated clock.
func (s *System) Clock() *Clock { return s.clock }

// Latencies returns the latency model the system was built with.
func (s *System) Latencies() LatencyModel { return s.lat }

// Kind selects the medium an arena models.
type Kind int

const (
	// PM is byte-addressable persistent memory behind the CPU cache.
	PM Kind = iota
	// DRAM is volatile memory; its contents vanish at a crash.
	DRAM
)

// NewArena allocates an arena of the given size (rounded up to a whole
// number of cache lines) on the chosen medium.
func (s *System) NewArena(name string, size int64, kind Kind) *Arena {
	if size <= 0 {
		panic("pmem: arena size must be positive")
	}
	if r := size % CacheLineSize; r != 0 {
		size += CacheLineSize - r
	}
	cacheBytes := s.lat.CacheBytes
	if cacheBytes <= 0 {
		cacheBytes = 2 << 20
	}
	a := &Arena{
		name:     name,
		kind:     kind,
		sys:      s,
		data:     make([]byte, size),
		maxLines: int(cacheBytes / CacheLineSize),
		freeHead: noSlot,
		ringHead: noSlot,
	}
	if a.maxLines < 8 {
		a.maxLines = 8
	}
	// Size the index so the steady-state resident set fits under the 3/4
	// load factor without growing; the slab gets capacity for every resident
	// line plus the one transient over-capacity fill.
	idx := minIndexSize
	for idx*3 < (a.maxLines+1)*4 {
		idx *= 2
	}
	a.index = make([]int32, idx)
	for i := range a.index {
		a.index[i] = noSlot
	}
	a.shift = uint(64 - bits.TrailingZeros(uint(idx)))
	a.slab = make([]cacheLine, 0, a.maxLines+1)
	if kind == PM {
		a.readNS, a.writeNS = s.lat.PMRead, s.lat.PMWrite
	} else {
		a.readNS, a.writeNS = s.lat.DRAMRead, s.lat.DRAMWrite
	}
	s.arenas = append(s.arenas, a)
	return a
}

// Fence executes a memory fence (MFENCE/SFENCE): a crash after the fence is
// guaranteed to see every previously flushed line in PM. In the emulator
// flushes already reach the medium synchronously, so the fence only costs
// time and is counted; protocols still issue it at every point the paper
// requires so the counts are faithful.
func (s *System) Fence() {
	s.fences++
	s.clock.Advance(s.lat.Fence)
}

// Fences returns the number of fences executed so far.
func (s *System) Fences() int64 { return s.fences }

// Compute charges the cost of n words of pure CPU work (compares, register
// copies). Used to model software overheads such as NVWAL's differential
// logging computation.
func (s *System) Compute(nwords int64) {
	if nwords > 0 {
		s.clock.Advance(nwords * s.lat.CPUWord)
	}
}

// ComputeNS charges d nanoseconds of CPU work directly.
func (s *System) ComputeNS(d int64) { s.clock.Advance(d) }

// CrashAfter arms the crash injector: a simulated power failure fires after
// n further crash points (word stores and flushes) execute. The failure is
// delivered as a panic that RunToCrash recovers.
func (s *System) CrashAfter(n int64) {
	s.injector.armed = true
	s.injector.remaining = n
}

// DisarmCrash cancels a pending injected crash.
func (s *System) DisarmCrash() { s.injector.armed = false }

// CrashPoints returns the total number of crash points executed since the
// system was created. Run a workload once uncrashed to learn its crash-point
// count, then sweep CrashAfter over [0, count) to explore every failure
// point.
func (s *System) CrashPoints() int64 { return s.injector.ticks }

// CrashTick registers one externally defined crash point (the HTM emulator
// uses this for transactional stores, which do not touch the cache).
func (s *System) CrashTick() { s.injector.tick() }

// RunToCrash executes fn, recovering the injected-crash panic if it fires.
// It reports whether the run crashed. On a crash the clock's phase stack is
// cleared (the "CPU" stopped mid-phase). The caller then invokes Crash to
// apply the memory-loss semantics before recovering.
func (s *System) RunToCrash(fn func()) (crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(crashSignal); ok {
				crashed = true
				s.clock.ClearStack()
				return
			}
			panic(r)
		}
	}()
	fn()
	return false
}

// Crash applies power-failure semantics to every arena: DRAM contents are
// lost; for PM arenas each dirty cache line is independently written back
// (as if evicted just before the failure) with probability opts.EvictProb,
// and otherwise lost. Explicitly flushed data always survives.
//
// Crash panics if opts fails CrashOptions.Validate — an out-of-range
// eviction probability is a harness bug, and silently clamping it would
// corrupt the crash schedule being explored.
func (s *System) Crash(opts CrashOptions) {
	if err := opts.Validate(); err != nil {
		panic(err)
	}
	s.injector.armed = false
	evict := opts.evictFn()
	for _, a := range s.arenas {
		a.crash(evict)
	}
}
