package pmem

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func newPM(t *testing.T, size int64) (*System, *Arena) {
	t.Helper()
	sys := NewSystem(DefaultLatencies(300, 300))
	return sys, sys.NewArena("pm", size, PM)
}

func TestStoreLoadRoundTrip(t *testing.T) {
	_, a := newPM(t, 4096)
	src := []byte("hello persistent world")
	a.Store(100, src)
	got := a.Read(100, len(src))
	if !bytes.Equal(got, src) {
		t.Fatalf("Load = %q, want %q", got, src)
	}
}

func TestStoreIsVolatileUntilFlushed(t *testing.T) {
	sys, a := newPM(t, 4096)
	a.Store(0, []byte{1, 2, 3, 4})
	if m := a.MediumBytes(0, 4); !bytes.Equal(m, []byte{0, 0, 0, 0}) {
		t.Fatalf("unflushed store reached medium: %v", m)
	}
	a.Flush(0, 4)
	sys.Fence()
	if m := a.MediumBytes(0, 4); !bytes.Equal(m, []byte{1, 2, 3, 4}) {
		t.Fatalf("flushed store missing from medium: %v", m)
	}
}

func TestCrashLosesUnflushedData(t *testing.T) {
	sys, a := newPM(t, 4096)
	a.Store(0, []byte{1, 2, 3, 4})
	a.Persist(0, 4)
	a.Store(128, []byte{9, 9, 9, 9}) // never flushed
	sys.Crash(EvictNone)
	if got := a.Read(0, 4); !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Fatalf("flushed data lost at crash: %v", got)
	}
	if got := a.Read(128, 4); !bytes.Equal(got, []byte{0, 0, 0, 0}) {
		t.Fatalf("unflushed data survived EvictNone crash: %v", got)
	}
}

func TestCrashEvictAllWritesDirtyLinesBack(t *testing.T) {
	sys, a := newPM(t, 4096)
	a.Store(128, []byte{9, 8, 7})
	sys.Crash(EvictAll)
	if got := a.Read(128, 3); !bytes.Equal(got, []byte{9, 8, 7}) {
		t.Fatalf("dirty line not written back under EvictAll: %v", got)
	}
}

func TestCrashEvictionIsDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []byte {
		sys := NewSystem(DefaultLatencies(300, 300))
		a := sys.NewArena("pm", 4096, PM)
		for i := int64(0); i < 4096; i += CacheLineSize {
			a.Store(i, []byte{byte(i / CacheLineSize)})
		}
		sys.Crash(CrashOptions{Seed: seed, EvictProb: 0.5})
		return a.Read(0, 4096)
	}
	if !bytes.Equal(run(7), run(7)) {
		t.Fatal("same seed produced different crash images")
	}
	if bytes.Equal(run(7), run(8)) {
		t.Fatal("different seeds produced identical crash images (suspicious)")
	}
}

func TestDRAMArenaLosesEverythingAtCrash(t *testing.T) {
	sys := NewSystem(DefaultLatencies(300, 300))
	d := sys.NewArena("dram", 1024, DRAM)
	d.Store(0, []byte{5, 5})
	if got := d.Read(0, 2); !bytes.Equal(got, []byte{5, 5}) {
		t.Fatalf("DRAM read-back failed: %v", got)
	}
	sys.Crash(EvictNone)
	if got := d.Read(0, 2); !bytes.Equal(got, []byte{0, 0}) {
		t.Fatalf("DRAM survived crash: %v", got)
	}
}

func TestLatencyAccounting(t *testing.T) {
	sys, a := newPM(t, 4096)
	lat := sys.Latencies()
	t0 := sys.Clock().Now()
	a.Load(0, make([]byte, 1)) // one line fill
	if d := sys.Clock().Now() - t0; d != lat.PMRead {
		t.Fatalf("line fill cost %d, want %d", d, lat.PMRead)
	}
	t0 = sys.Clock().Now()
	a.Load(0, make([]byte, 1)) // clean line stays resident: cache hit
	if d := sys.Clock().Now() - t0; d != lat.CacheHit {
		t.Fatalf("second access cost %d, want cache hit %d", d, lat.CacheHit)
	}
	t0 = sys.Clock().Now()
	a.Store(0, []byte{1}) // resident: hit + store cost only
	if d := sys.Clock().Now() - t0; d != lat.CacheHit+lat.Store {
		t.Fatalf("resident store cost %d, want %d", d, lat.CacheHit+lat.Store)
	}
	t0 = sys.Clock().Now()
	a.Store(1024, []byte{1}) // absent: write-allocate fill + store
	if d := sys.Clock().Now() - t0; d != lat.PMRead+lat.Store {
		t.Fatalf("write-allocate cost %d, want %d", d, lat.PMRead+lat.Store)
	}
	t0 = sys.Clock().Now()
	a.Flush(0, 1)
	if d := sys.Clock().Now() - t0; d != lat.PMWrite {
		t.Fatalf("flush cost %d, want %d", d, lat.PMWrite)
	}
	t0 = sys.Clock().Now()
	a.Flush(0, 1) // clean line: counted, no write-back cost
	if d := sys.Clock().Now() - t0; d != 0 {
		t.Fatalf("clean flush cost %d, want 0", d)
	}
}

func TestCacheCapacityEviction(t *testing.T) {
	lat := DefaultLatencies(300, 300)
	lat.CacheBytes = 8 * CacheLineSize // tiny cache: 8 lines
	sys := NewSystem(lat)
	a := sys.NewArena("pm", 4096, PM)
	// Touch 16 clean lines; only 8 stay resident.
	for i := int64(0); i < 16; i++ {
		a.Load(i*CacheLineSize, make([]byte, 1))
	}
	if got := a.ResidentLines(); got > 8 {
		t.Fatalf("resident lines = %d, want <= 8", got)
	}
	// The first line was evicted: re-reading it is a miss again.
	t0 := sys.Clock().Now()
	a.Load(0, make([]byte, 1))
	if d := sys.Clock().Now() - t0; d != lat.PMRead {
		t.Fatalf("evicted line reload cost %d, want %d", d, lat.PMRead)
	}
}

func TestDirtyPMLinesArePinned(t *testing.T) {
	lat := DefaultLatencies(300, 300)
	lat.CacheBytes = 8 * CacheLineSize
	sys := NewSystem(lat)
	a := sys.NewArena("pm", 8192, PM)
	a.Store(0, []byte{9}) // dirty, unflushed
	for i := int64(1); i < 40; i++ {
		a.Load(i*CacheLineSize, make([]byte, 1))
	}
	// Despite heavy traffic, the unflushed dirty line must not have been
	// silently written back to the medium.
	if m := a.MediumBytes(0, 1); m[0] != 0 {
		t.Fatal("dirty PM line leaked to medium via capacity eviction")
	}
	sys.Crash(EvictNone)
	if m := a.MediumBytes(0, 1); m[0] != 0 {
		t.Fatal("unflushed data survived EvictNone crash")
	}
}

func TestFlushCountsMatchPaperCounter(t *testing.T) {
	_, a := newPM(t, 4096)
	a.Store(0, make([]byte, 256)) // 4 lines dirty
	before := a.Stats()
	a.Flush(0, 256)
	d := a.Stats().Delta(before)
	if d.FlushCalls != 4 || d.LineWritebacks != 4 {
		t.Fatalf("flush counters = %+v, want 4 calls / 4 writebacks", d)
	}
}

func TestStoreSpanningLines(t *testing.T) {
	sys, a := newPM(t, 4096)
	src := make([]byte, 200)
	for i := range src {
		src[i] = byte(i)
	}
	a.Store(60, src) // crosses multiple line boundaries, unaligned
	if got := a.Read(60, 200); !bytes.Equal(got, src) {
		t.Fatal("unaligned spanning store corrupted data")
	}
	a.Persist(60, 200)
	sys.Crash(EvictNone)
	if got := a.Read(60, 200); !bytes.Equal(got, src) {
		t.Fatal("spanning store lost after persist+crash")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	_, a := newPM(t, 128)
	for name, fn := range map[string]func(){
		"load":  func() { a.Load(120, make([]byte, 16)) },
		"store": func() { a.Store(-1, []byte{0}) },
		"flush": func() { a.Flush(128, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s out of range did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestCrashInjectorFiresAtExactPoint(t *testing.T) {
	// Count crash points of the workload on a scratch system first.
	{
		scratch, sa := newPM(t, 4096)
		base := scratch.CrashPoints()
		sa.Store(0, []byte{1, 2, 3, 4, 5, 6, 7, 8})
		sa.Flush(0, 8)
		if total := scratch.CrashPoints() - base; total != 2 {
			t.Fatalf("crash points = %d, want 2 (1 store + 1 flush)", total)
		}
	}
	sys, a := newPM(t, 4096)
	work := func() {
		a.Store(0, []byte{1, 2, 3, 4, 5, 6, 7, 8})
		a.Flush(0, 8)
	}
	sys.CrashAfter(1) // allow the store, crash at the flush
	crashed := sys.RunToCrash(work)
	if !crashed {
		t.Fatal("injected crash did not fire")
	}
	sys.Crash(EvictNone)
	if got := a.Read(0, 8); !bytes.Equal(got, make([]byte, 8)) {
		t.Fatalf("data survived crash before flush: %v", got)
	}
}

func TestCrashInjectorTearsMultiWordStore(t *testing.T) {
	sys, a := newPM(t, 4096)
	src := []byte("0123456789abcdef") // 2 words
	sys.CrashAfter(1)                 // crash after the first word
	crashed := sys.RunToCrash(func() {
		a.Store(0, src)
		a.Flush(0, len(src))
	})
	if !crashed {
		t.Fatal("crash did not fire")
	}
	sys.Crash(EvictAll) // force the torn line back
	got := a.Read(0, 16)
	want := append([]byte("01234567"), make([]byte, 8)...)
	if !bytes.Equal(got, want) {
		t.Fatalf("torn store image = %q, want %q", got, want)
	}
}

func TestAtomicRegionSuppressesCrashPoints(t *testing.T) {
	sys, a := newPM(t, 4096)
	sys.CrashAfter(0) // next crash point fires
	crashed := sys.RunToCrash(func() {
		a.AtomicRegion(func() {
			a.Store(0, make([]byte, 64)) // 8 word stores, none may crash
		})
	})
	if crashed {
		t.Fatal("crash fired inside atomic region")
	}
	// The pending crash fires at the next normal point.
	if !sys.RunToCrash(func() { a.Store(64, []byte{1}) }) {
		t.Fatal("pending crash did not fire after atomic region")
	}
}

func TestFenceCountsAndCost(t *testing.T) {
	sys, _ := newPM(t, 128)
	t0 := sys.Clock().Now()
	sys.Fence()
	if sys.Fences() != 1 {
		t.Fatalf("fences = %d, want 1", sys.Fences())
	}
	if d := sys.Clock().Now() - t0; d != sys.Latencies().Fence {
		t.Fatalf("fence cost %d, want %d", d, sys.Latencies().Fence)
	}
}

func TestIntegerAccessors(t *testing.T) {
	_, a := newPM(t, 4096)
	a.StoreU16(0, 0xBEEF)
	a.StoreU32(8, 0xDEADBEEF)
	a.StoreU64(16, 0x0123456789ABCDEF)
	if v := a.LoadU16(0); v != 0xBEEF {
		t.Errorf("U16 = %#x", v)
	}
	if v := a.LoadU32(8); v != 0xDEADBEEF {
		t.Errorf("U32 = %#x", v)
	}
	if v := a.LoadU64(16); v != 0x0123456789ABCDEF {
		t.Errorf("U64 = %#x", v)
	}
}

// Property: for any sequence of stores followed by a full flush, the medium
// equals a reference flat buffer.
func TestStoreFlushMatchesReferenceModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sys := NewSystem(DefaultLatencies(300, 300))
		a := sys.NewArena("pm", 2048, PM)
		ref := make([]byte, 2048)
		for i := 0; i < 50; i++ {
			off := rng.Int63n(2000)
			n := rng.Intn(48) + 1
			b := make([]byte, n)
			rng.Read(b)
			a.Store(off, b)
			copy(ref[off:], b)
		}
		a.Flush(0, 2048)
		return bytes.Equal(a.MediumBytes(0, 2048), ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: a crash with any eviction probability leaves every word either
// entirely old or entirely new (8-byte failure atomicity).
func TestCrashWordAtomicity(t *testing.T) {
	f := func(seed int64, prob8 uint8) bool {
		sys := NewSystem(DefaultLatencies(300, 300))
		a := sys.NewArena("pm", 1024, PM)
		oldPat := bytes.Repeat([]byte{0xAA}, 1024)
		newPat := bytes.Repeat([]byte{0xBB}, 1024)
		a.Store(0, oldPat)
		a.Flush(0, 1024)
		a.Store(0, newPat)
		sys.Crash(CrashOptions{Seed: seed, EvictProb: float64(prob8) / 255})
		img := a.MediumBytes(0, 1024)
		for w := 0; w < 1024; w += WordSize {
			word := img[w : w+WordSize]
			if !bytes.Equal(word, oldPat[:WordSize]) && !bytes.Equal(word, newPat[:WordSize]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestClockPhaseAccounting(t *testing.T) {
	c := NewClock()
	c.Enter("outer")
	c.Advance(10)
	c.Enter("inner")
	c.Advance(5)
	c.Exit("inner")
	c.Advance(1)
	c.Exit("outer")
	if got := c.Phase("outer"); got != 16 {
		t.Errorf("outer = %d, want 16", got)
	}
	if got := c.Phase("inner"); got != 5 {
		t.Errorf("inner = %d, want 5", got)
	}
	if c.Now() != 16 {
		t.Errorf("now = %d, want 16", c.Now())
	}
}

func TestClockReentrantPhase(t *testing.T) {
	c := NewClock()
	c.Enter("a")
	c.Enter("a") // nested trees may reopen a phase
	c.Advance(5) // attributed once, not twice
	c.Exit("a")
	c.Advance(3)
	c.Exit("a")
	if got := c.Phase("a"); got != 8 {
		t.Fatalf("reentrant phase total = %d, want 8", got)
	}
}

func TestClockMisuse(t *testing.T) {
	c := NewClock()
	c.Enter("a")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("mismatched exit did not panic")
			}
		}()
		c.Exit("b")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative advance did not panic")
			}
		}()
		c.Advance(-1)
	}()
}

func TestStatsDeltaAndAdd(t *testing.T) {
	a := Stats{LineFills: 10, FlushCalls: 4}
	b := Stats{LineFills: 3, FlushCalls: 1}
	if d := a.Delta(b); d.LineFills != 7 || d.FlushCalls != 3 {
		t.Fatalf("delta = %+v", d)
	}
	if s := a.Add(b); s.LineFills != 13 || s.FlushCalls != 5 {
		t.Fatalf("add = %+v", s)
	}
}

func TestMediumSnapshotRestore(t *testing.T) {
	sys, a := newPM(t, 4096)
	a.Store(0, []byte{1, 2, 3})
	a.Persist(0, 3)
	a.Store(128, []byte{9}) // dirty, unflushed: excluded from snapshots
	img := a.MediumSnapshot()
	if len(img) != 4096 {
		t.Fatalf("snapshot size %d", len(img))
	}
	if img[0] != 1 || img[128] != 0 {
		t.Fatalf("snapshot contents wrong: %v %v", img[0], img[128])
	}
	// Restore into a second arena on a fresh system.
	sys2 := NewSystem(DefaultLatencies(300, 300))
	b := sys2.NewArena("pm2", 4096, PM)
	if err := b.RestoreMedium(img); err != nil {
		t.Fatal(err)
	}
	if got := b.Read(0, 3); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("restored = %v", got)
	}
	// Size mismatch is rejected.
	c := sys2.NewArena("pm3", 8192, PM)
	if err := c.RestoreMedium(img); err == nil {
		t.Fatal("size mismatch accepted")
	}
	_ = sys
}

func TestComputeChargesCPUCost(t *testing.T) {
	sys := NewSystem(DefaultLatencies(300, 300))
	t0 := sys.Clock().Now()
	sys.Compute(100)
	if d := sys.Clock().Now() - t0; d != 100*sys.Latencies().CPUWord {
		t.Fatalf("compute cost %d", d)
	}
	sys.Compute(-5) // negative is a no-op
	sys.ComputeNS(42)
	if sys.Clock().Now()-t0 != 100+42 {
		t.Fatal("ComputeNS wrong")
	}
}

func TestFlushOnDRAMIsNoop(t *testing.T) {
	sys := NewSystem(DefaultLatencies(300, 300))
	d := sys.NewArena("dram", 1024, DRAM)
	d.Store(0, []byte{1})
	before := d.Stats()
	d.Flush(0, 64)
	d.FlushLine(0)
	if delta := d.Stats().Delta(before); delta.FlushCalls != 0 {
		t.Fatalf("DRAM flush counted: %+v", delta)
	}
}

func TestDRAMEvictionWritesBack(t *testing.T) {
	lat := DefaultLatencies(300, 300)
	lat.CacheBytes = 8 * CacheLineSize
	sys := NewSystem(lat)
	d := sys.NewArena("dram", 8192, DRAM)
	d.Store(0, []byte{42}) // dirty DRAM line
	for i := int64(1); i < 40; i++ {
		d.Load(i*CacheLineSize, make([]byte, 1))
	}
	// The dirty line was evicted with write-back: content survives reads.
	if got := d.Read(0, 1); got[0] != 42 {
		t.Fatalf("DRAM eviction lost data: %v", got)
	}
}
