package pmem

import (
	"testing"
)

// smallCacheSystem builds a machine whose per-arena cache overlay holds only
// a few lines, so eviction traffic is easy to provoke.
func smallCacheSystem(cacheBytes int64) *System {
	lat := DefaultLatencies(300, 300)
	lat.CacheBytes = cacheBytes
	return NewSystem(lat)
}

// TestWarmArenaZeroAllocs pins the tentpole invariant: once the overlay slab
// and index have warmed up, the Load/Store/Flush hot path performs no Go
// allocation — even in steady state with misses, write-allocates, evictions
// and write-backs on every iteration.
func TestWarmArenaZeroAllocs(t *testing.T) {
	sys := smallCacheSystem(16 << 10) // 256-line overlay
	const size = 1 << 20              // 16384 lines: most touches miss
	pm := sys.NewArena("pm", size, PM)
	dram := sys.NewArena("dram", size, DRAM)

	buf := make([]byte, 256)
	var pos int64
	step := func() {
		off := (pos * 7 * CacheLineSize) % (size - int64(len(buf)))
		pos++
		dram.Load(off, buf)
		dram.Store(off, buf)
		pm.Load(off, buf)
		pm.Store(off, buf)
		pm.Flush(off, len(buf))
	}
	// Warm up: grow the slab to capacity and settle the index size.
	for i := 0; i < 4096; i++ {
		step()
	}
	if n := testing.AllocsPerRun(200, step); n != 0 {
		t.Fatalf("warm arena Load/Store/Flush allocated %.1f times per run, want 0", n)
	}
}

// TestOverlayMemoryBounded is the regression test for the FIFO eviction
// slice-churn pattern the slab overlay replaced: after a million line
// touches across a working set far larger than the cache, the overlay's
// backing storage must still be bounded by the resident-set limit — the
// slab never grows past maxLines+1 slots and the index never rehashes
// beyond its initial steady-state size.
func TestOverlayMemoryBounded(t *testing.T) {
	sys := smallCacheSystem(64 << 10) // 1024-line overlay
	const size = 8 << 20              // 131072 lines
	a := sys.NewArena("pm", size, PM)
	indexSize := len(a.index)

	touches := 1_000_000
	if testing.Short() {
		touches = 100_000
	}
	var word [8]byte
	for i := 0; i < touches; i++ {
		off := (int64(i) * 13 * CacheLineSize) % size
		if i%4 == 0 {
			a.Store(off, word[:])
			a.FlushLine(off)
		} else {
			a.Load(off, word[:])
		}
	}

	if a.nres > a.maxLines {
		t.Errorf("resident lines %d exceed cache capacity %d", a.nres, a.maxLines)
	}
	if cap(a.slab) > a.maxLines+1 {
		t.Errorf("slab capacity %d exceeds maxLines+1 = %d after %d touches",
			cap(a.slab), a.maxLines+1, touches)
	}
	if len(a.index) != indexSize {
		t.Errorf("index rehashed from %d to %d slots; steady state should never grow",
			indexSize, len(a.index))
	}
	if got := a.ResidentLines(); got != a.nres {
		t.Errorf("ResidentLines() = %d, internal count %d", got, a.nres)
	}
}

// TestOverlayEvictionKeepsLookupConsistent drives heavy eviction and
// verifies the open-addressed index (with backward-shift deletion) still
// resolves every resident line and forgets every evicted one.
func TestOverlayEvictionKeepsLookupConsistent(t *testing.T) {
	sys := smallCacheSystem(1) // clamps to the 8-line minimum
	const size = 64 * CacheLineSize
	a := sys.NewArena("pm", size, PM)

	var word [8]byte
	for i := 0; i < 10_000; i++ {
		off := (int64(i) * 11 * CacheLineSize) % size
		a.Load(off, word[:])
	}
	// Every line reachable from the ring must be found by lookup, and the
	// ring length must equal the resident count.
	n := 0
	if h := a.ringHead; h != noSlot {
		s := h
		for {
			n++
			if got := a.lookup(a.slab[s].off); got != s {
				t.Fatalf("lookup(%d) = %d, want slot %d", a.slab[s].off, got, s)
			}
			s = a.slab[s].next
			if s == h {
				break
			}
		}
	}
	if n != a.nres {
		t.Fatalf("ring holds %d lines, resident count is %d", n, a.nres)
	}
}
