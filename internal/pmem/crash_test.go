package pmem

import (
	"math"
	"strings"
	"testing"
)

func TestCrashOptionsValidate(t *testing.T) {
	for _, p := range []float64{0, 0.25, 0.5, 1} {
		if err := (CrashOptions{EvictProb: p}).Validate(); err != nil {
			t.Errorf("EvictProb=%v rejected: %v", p, err)
		}
	}
	for _, p := range []float64{-0.01, -1, 1.01, 42, math.NaN(), math.Inf(1), math.Inf(-1)} {
		err := (CrashOptions{EvictProb: p}).Validate()
		if err == nil {
			t.Errorf("EvictProb=%v accepted", p)
			continue
		}
		if !strings.Contains(err.Error(), "EvictProb") {
			t.Errorf("EvictProb=%v: error does not name the field: %v", p, err)
		}
	}
}

func TestSystemCrashRejectsBadProb(t *testing.T) {
	sys := NewSystem(DefaultLatencies(300, 300))
	sys.NewArena("t", 4096, PM)
	defer func() {
		if recover() == nil {
			t.Fatal("Crash with EvictProb=2 did not panic")
		}
	}()
	sys.Crash(CrashOptions{EvictProb: 2})
}

// TestBoundaryLotteriesIgnoreSeed pins the documented fast paths: at
// EvictProb 0 and 1 the outcome is independent of Seed.
func TestBoundaryLotteriesIgnoreSeed(t *testing.T) {
	run := func(opts CrashOptions) []byte {
		sys := NewSystem(DefaultLatencies(300, 300))
		a := sys.NewArena("t", 4096, PM)
		a.Store(0, []byte("flushed"))
		a.Persist(0, 8)
		a.Store(64, []byte("dirty"))
		sys.Crash(opts)
		return a.MediumBytes(0, 128)
	}
	for _, p := range []float64{0, 1} {
		a := run(CrashOptions{EvictProb: p, Seed: 1})
		b := run(CrashOptions{EvictProb: p, Seed: 999})
		if string(a) != string(b) {
			t.Errorf("EvictProb=%v: seed changed the outcome", p)
		}
	}
}
