package pmem

// Stats counts the architectural events an arena has performed. The paper's
// Figure 9(b) reports clflush instructions per insertion; FlushCalls is that
// counter. All counters are cumulative; use Delta to measure a region.
type Stats struct {
	// LineFills counts cache-line fills from the medium (read misses and
	// write-allocates).
	LineFills int64
	// CacheHits counts line accesses served by the cache overlay.
	CacheHits int64
	// WordStores counts 8-byte (or smaller) store operations.
	WordStores int64
	// BytesStored counts the bytes written by stores.
	BytesStored int64
	// FlushCalls counts CLFLUSH/CLWB instructions issued.
	FlushCalls int64
	// LineWritebacks counts dirty lines actually written to the medium
	// (by flushes or by simulated evictions at crash time).
	LineWritebacks int64
	// BytesRead counts the bytes returned by loads.
	BytesRead int64
}

// Delta returns s - prev, field by field.
func (s Stats) Delta(prev Stats) Stats {
	return Stats{
		LineFills:      s.LineFills - prev.LineFills,
		CacheHits:      s.CacheHits - prev.CacheHits,
		WordStores:     s.WordStores - prev.WordStores,
		BytesStored:    s.BytesStored - prev.BytesStored,
		FlushCalls:     s.FlushCalls - prev.FlushCalls,
		LineWritebacks: s.LineWritebacks - prev.LineWritebacks,
		BytesRead:      s.BytesRead - prev.BytesRead,
	}
}

// Add returns s + o, field by field.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		LineFills:      s.LineFills + o.LineFills,
		CacheHits:      s.CacheHits + o.CacheHits,
		WordStores:     s.WordStores + o.WordStores,
		BytesStored:    s.BytesStored + o.BytesStored,
		FlushCalls:     s.FlushCalls + o.FlushCalls,
		LineWritebacks: s.LineWritebacks + o.LineWritebacks,
		BytesRead:      s.BytesRead + o.BytesRead,
	}
}
