package pmem

// Peek copies len(dst) bytes at off into dst without mutating any simulated
// state, and returns the simulated cost of the equivalent Load. It reads the
// cache-coherent view — resident overlay lines win over the medium — exactly
// like Load, but performs no fill, no eviction, no clock advance and no stat
// update, and it ticks no crash injector. That makes it safe to call
// concurrently with other Peeks (the optimistic read path calls it outside
// the writer's critical section) and guarantees reads add no crash points:
// the per-line cost is the cache-hit latency for resident lines and the
// medium read latency otherwise, identical to what Load would charge, but
// charged to the caller's accumulator rather than the machine clock.
func (a *Arena) Peek(off int64, dst []byte) int64 {
	a.check(off, len(dst))
	if len(dst) == 0 {
		return 0
	}
	var cost int64
	for first, last := lineOf(off), lineOf(off+int64(len(dst))-1); first <= last; first += CacheLineSize {
		lo, hi := first, first+CacheLineSize
		if lo < off {
			lo = off
		}
		if end := off + int64(len(dst)); hi > end {
			hi = end
		}
		if s := a.lookup(first); s != noSlot {
			cost += a.sys.lat.CacheHit
			copy(dst[lo-off:hi-off], a.slab[s].buf[lo-first:hi-first])
		} else {
			cost += a.readNS
			copy(dst[lo-off:hi-off], a.data[lo:hi])
		}
	}
	return cost
}
