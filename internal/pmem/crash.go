package pmem

import "math/rand"

// crashSignal is the panic value used to simulate a power failure at an
// arbitrary architectural event. It unwinds through whatever protocol code
// was executing, exactly as a real crash interrupts it.
type crashSignal struct{}

// crashInjector fires a simulated power failure after a configured number of
// crash points (word stores and flushes) have executed.
type crashInjector struct {
	ticks     int64 // total crash points observed, armed or not
	armed     bool
	remaining int64
	suspended int // >0 inside an atomic region (models HTM commit)
}

func (ci *crashInjector) tick() {
	ci.ticks++
	if !ci.armed || ci.suspended > 0 {
		return
	}
	ci.remaining--
	if ci.remaining < 0 {
		ci.armed = false
		panic(crashSignal{})
	}
}

// CrashOptions controls what happens to dirty cache lines at crash time.
// Hardware may have evicted (written back) any dirty line before the crash;
// a correct protocol must tolerate every subset. EvictProb selects each
// dirty line for write-back independently using the seeded generator, so a
// given (Seed, EvictProb) pair is fully reproducible.
type CrashOptions struct {
	Seed      int64
	EvictProb float64
}

// EvictNone loses all unflushed data: only explicitly flushed lines survive.
var EvictNone = CrashOptions{}

// EvictAll writes every dirty line back, as if the cache drained right
// before the failure.
var EvictAll = CrashOptions{EvictProb: 1}

func (o CrashOptions) evictFn() func() bool {
	switch o.EvictProb {
	case 0:
		return func() bool { return false }
	case 1:
		return func() bool { return true }
	}
	rng := rand.New(rand.NewSource(o.Seed))
	return func() bool { return rng.Float64() < o.EvictProb }
}
