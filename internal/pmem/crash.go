package pmem

import (
	"fmt"
	"math/rand"
)

// crashSignal is the panic value used to simulate a power failure at an
// arbitrary architectural event. It unwinds through whatever protocol code
// was executing, exactly as a real crash interrupts it.
type crashSignal struct{}

// crashInjector fires a simulated power failure after a configured number of
// crash points (word stores and flushes) have executed.
type crashInjector struct {
	ticks     int64 // total crash points observed, armed or not
	armed     bool
	remaining int64
	suspended int // >0 inside an atomic region (models HTM commit)
}

func (ci *crashInjector) tick() {
	ci.ticks++
	if !ci.armed || ci.suspended > 0 {
		return
	}
	ci.remaining--
	if ci.remaining < 0 {
		ci.armed = false
		panic(crashSignal{})
	}
}

// CrashOptions controls what happens to dirty cache lines at crash time.
// Hardware may have evicted (written back) any dirty line before the crash;
// a correct protocol must tolerate every subset. EvictProb selects each
// dirty line for write-back independently using the seeded generator, so a
// given (Seed, EvictProb) pair is fully reproducible.
//
// EvictProb must lie in [0, 1]; System.Crash rejects anything else. The
// boundary values take deterministic fast paths — EvictProb 0 loses every
// dirty line and EvictProb 1 writes every dirty line back — so Seed is
// ignored for them and only influences the lottery for 0 < EvictProb < 1.
type CrashOptions struct {
	Seed      int64
	EvictProb float64
}

// Validate rejects an eviction probability outside [0, 1] (including NaN,
// which fails both comparisons). Harnesses that accept user-supplied
// probabilities should call this before arming a crash; System.Crash
// enforces it with a panic, since by then the caller is committed.
func (o CrashOptions) Validate() error {
	if !(o.EvictProb >= 0 && o.EvictProb <= 1) {
		return fmt.Errorf("pmem: CrashOptions.EvictProb must be in [0, 1], got %v", o.EvictProb)
	}
	return nil
}

// EvictNone loses all unflushed data: only explicitly flushed lines survive.
var EvictNone = CrashOptions{}

// EvictAll writes every dirty line back, as if the cache drained right
// before the failure.
var EvictAll = CrashOptions{EvictProb: 1}

func (o CrashOptions) evictFn() func() bool {
	switch o.EvictProb {
	case 0:
		return func() bool { return false }
	case 1:
		return func() bool { return true }
	}
	rng := rand.New(rand.NewSource(o.Seed))
	return func() bool { return rng.Float64() < o.EvictProb }
}
