// Package pmem emulates a byte-addressable persistent memory (PM) subsystem
// with an explicit CPU-cache overlay, cache-line flush and memory-fence
// primitives, a deterministic simulated clock, and crash simulation.
//
// The emulator plays the role Quartz plays in the paper: instead of injecting
// wall-clock delays, every architectural event (cache-line fill, cache-line
// write-back, fence, word store) advances a virtual clock by a configurable
// latency. Experiments therefore measure *simulated* nanoseconds, which makes
// the paper's figures reproducible bit-for-bit on any machine.
//
// Persistence model (the assumption set of the paper, §3.2):
//
//   - Stores go to the volatile CPU cache, never directly to PM.
//   - A store to a line not present in the cache fills the line first
//     (write-allocate), paying the read latency.
//   - CLFLUSH writes a dirty line back to PM and pays the write latency.
//   - PM writes are failure-atomic at 8-byte granularity.
//   - On a crash, each dirty line independently may or may not have been
//     evicted (written back) by the hardware; unevicted dirty data is lost.
//
// Arenas are not safe for concurrent use; a database handle built on top of
// an arena serialises access.
package pmem

// Architectural constants shared by the whole system.
const (
	// CacheLineSize is the unit of CLFLUSH and of HTM failure-atomic writes.
	CacheLineSize = 64
	// WordSize is the PM failure-atomic write granularity (8 bytes).
	WordSize = 8
	// WordsPerLine is the number of failure-atomic words per cache line.
	WordsPerLine = CacheLineSize / WordSize
)

// LatencyModel holds the cost, in simulated nanoseconds, of each
// architectural event. The defaults correspond to the paper's testbed
// (120 ns local DRAM) and its default PM emulation point (300/300 ns).
type LatencyModel struct {
	// PMRead is the latency of filling one cache line from PM.
	PMRead int64
	// PMWrite is the latency of writing one cache line back to PM
	// (charged by CLFLUSH and by dirty evictions).
	PMWrite int64
	// DRAMRead is the latency of one cache-line access to DRAM.
	DRAMRead int64
	// DRAMWrite is the latency of one cache-line write to DRAM.
	DRAMWrite int64
	// Fence is the cost of a memory-fence instruction (MFENCE/SFENCE).
	Fence int64
	// Store is the cost of one 8-byte store that hits the cache.
	Store int64
	// CacheHit is the cost of reading a line already present in the cache.
	CacheHit int64
	// CPUWord is the cost of one word of pure computation (compares,
	// copies in registers); used to model software overheads such as
	// NVWAL's differential-logging computation.
	CPUWord int64
	// CacheBytes bounds each arena's CPU-cache overlay (the share of the
	// last-level cache available to it). 0 selects the 2 MiB default. The
	// paper's testbed has a 40 MB LLC; 2 MiB per arena keeps hot B-tree
	// levels and allocator metadata cached while leaf pages of a grown
	// database still miss, reproducing the "CPU cache effect" the paper
	// observes without flattening the latency sweeps.
	CacheBytes int64
}

// DefaultLatencies returns the paper's default configuration: DRAM at
// 120 ns and PM at the given read/write latencies.
func DefaultLatencies(pmRead, pmWrite int64) LatencyModel {
	return LatencyModel{
		PMRead:    pmRead,
		PMWrite:   pmWrite,
		DRAMRead:  120,
		DRAMWrite: 120,
		Fence:     30,
		Store:     1,
		CacheHit:  2,
		CPUWord:   1,
	}
}

// DRAMLatencies returns a model in which "PM" behaves exactly like DRAM
// (the paper's 120/120 point, where PM is as fast as local DRAM).
func DRAMLatencies() LatencyModel { return DefaultLatencies(120, 120) }
