package pmem

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// cacheLine is one slot of the CPU-cache overlay slab. It always holds the
// full current content of its line. Dirty lines differ from the medium;
// clean lines mirror it (kept resident to model the last-level cache — the
// paper notes insertion time does not scale linearly with PM latency
// "because of the computation time and CPU cache effect").
//
// Replacement order is intrusive: next/prev thread a circular FIFO ring
// through the slab slots, so touching, requeueing, and evicting lines never
// allocates. Free slots reuse next as the free-list link.
type cacheLine struct {
	buf   [CacheLineSize]byte
	off   int64 // line offset this slot caches (valid while resident)
	next  int32 // FIFO ring successor (or next free slot when on free list)
	prev  int32 // FIFO ring predecessor
	dirty bool
}

// Arena is one contiguous region of simulated memory behind a CPU-cache
// overlay. PM arenas persist flushed data across crashes; DRAM arenas lose
// everything. Offsets are byte addresses within the arena. Arenas are not
// safe for concurrent use.
//
// Cache model: a bounded set of resident lines with FIFO replacement.
// Misses pay the medium's read latency (loads and write-allocates alike);
// hits pay the cache-hit cost. CLFLUSH writes a dirty line back (paying the
// write latency) and leaves it resident clean. Dirty PM lines are never
// replaced silently — the protocols under test flush what they dirty, and
// pinning keeps crash testing strictly adversarial: unflushed data survives
// a crash only via the explicit eviction lottery in CrashOptions. Dirty
// DRAM lines are written back on replacement at the DRAM write cost.
//
// Overlay representation: resident lines live in a flat slab ([]cacheLine)
// located by a power-of-two open-addressed index keyed on line offset, and
// FIFO order is the intrusive ring threaded through the slots. The hot path
// (hit lookup, miss fill, eviction, flush) performs no Go allocation once
// the slab and index have warmed up, and the overlay footprint is bounded
// by the resident set — the event sequence (hits, fills, write-backs, clock
// advances) is identical to the reference map+slice implementation.
type Arena struct {
	name     string
	kind     Kind
	sys      *System
	data     []byte      // the medium (durable for PM, volatile for DRAM)
	slab     []cacheLine // slot storage; grows monotonically, capacity reused
	index    []int32     // open-addressed table of slab indices; -1 = empty
	shift    uint        // 64 - log2(len(index)), for fibonacci hashing
	freeHead int32       // free-slot list head (-1 = none)
	ringHead int32       // FIFO ring head = oldest resident line (-1 = empty)
	nres     int         // resident line count
	maxLines int
	readNS   int64
	writeNS  int64
	stats    Stats
	crashBuf []int64 // scratch for crash's sorted dirty-offset sweep
}

const noSlot = int32(-1)

// minIndexSize is the smallest open-addressed table (power of two).
const minIndexSize = 256

// --- Open-addressed line index ------------------------------------------

// hashPos returns the home position of line offset l in the index.
func (a *Arena) hashPos(l int64) int {
	// Fibonacci hashing on the line number; offsets are line-aligned so the
	// low 6 bits carry no information.
	return int((uint64(l) >> 6 * 0x9E3779B97F4A7C15) >> a.shift)
}

// lookup returns the slab slot caching line l, or noSlot.
func (a *Arena) lookup(l int64) int32 {
	mask := len(a.index) - 1
	for i := a.hashPos(l); ; i = (i + 1) & mask {
		e := a.index[i]
		if e == noSlot {
			return noSlot
		}
		if a.slab[e].off == l {
			return e
		}
	}
}

// indexInsert records that slab slot s caches line l, growing the table
// when the load factor reaches 3/4.
func (a *Arena) indexInsert(l int64, s int32) {
	if (a.nres+1)*4 >= len(a.index)*3 {
		a.growIndex()
	}
	mask := len(a.index) - 1
	i := a.hashPos(l)
	for a.index[i] != noSlot {
		i = (i + 1) & mask
	}
	a.index[i] = s
}

// indexDelete removes line l using backward-shift deletion, which keeps
// probe chains intact without tombstones.
func (a *Arena) indexDelete(l int64) {
	mask := len(a.index) - 1
	i := a.hashPos(l)
	for {
		e := a.index[i]
		if e == noSlot {
			return // not present (cannot happen for resident lines)
		}
		if a.slab[e].off == l {
			break
		}
		i = (i + 1) & mask
	}
	j := i
	for {
		j = (j + 1) & mask
		e := a.index[j]
		if e == noSlot {
			break
		}
		k := a.hashPos(a.slab[e].off)
		// Move e into the hole when its home position lies outside (i, j].
		if (j-k)&mask >= (j-i)&mask {
			a.index[i] = e
			i = j
		}
	}
	a.index[i] = noSlot
}

// growIndex doubles the table and reinserts every resident line.
func (a *Arena) growIndex() {
	old := a.index
	a.index = make([]int32, 2*len(old))
	a.shift--
	for i := range a.index {
		a.index[i] = noSlot
	}
	mask := len(a.index) - 1
	for _, e := range old {
		if e == noSlot {
			continue
		}
		i := a.hashPos(a.slab[e].off)
		for a.index[i] != noSlot {
			i = (i + 1) & mask
		}
		a.index[i] = e
	}
}

// --- Slab slots and the intrusive FIFO ring ------------------------------

// allocSlot returns a free slab slot, reusing freed slots before growing.
func (a *Arena) allocSlot() int32 {
	if s := a.freeHead; s != noSlot {
		a.freeHead = a.slab[s].next
		return s
	}
	if len(a.slab) < cap(a.slab) {
		a.slab = a.slab[:len(a.slab)+1]
	} else {
		a.slab = append(a.slab, cacheLine{})
	}
	return int32(len(a.slab) - 1)
}

// freeSlot pushes a slot onto the free list.
func (a *Arena) freeSlot(s int32) {
	a.slab[s].next = a.freeHead
	a.freeHead = s
}

// ringPushBack appends slot s at the tail of the FIFO ring (newest).
func (a *Arena) ringPushBack(s int32) {
	if a.ringHead == noSlot {
		a.ringHead = s
		a.slab[s].next = s
		a.slab[s].prev = s
		return
	}
	head := a.ringHead
	tail := a.slab[head].prev
	a.slab[tail].next = s
	a.slab[s].prev = tail
	a.slab[s].next = head
	a.slab[head].prev = s
}

// ringPopFront unlinks and returns the oldest slot (ring must be non-empty).
func (a *Arena) ringPopFront() int32 {
	s := a.ringHead
	next := a.slab[s].next
	if next == s {
		a.ringHead = noSlot
		return s
	}
	prev := a.slab[s].prev
	a.slab[prev].next = next
	a.slab[next].prev = prev
	a.ringHead = next
	return s
}

// resetOverlay drops every resident line and returns the overlay to its
// empty state, keeping the slab and index capacity for reuse.
func (a *Arena) resetOverlay() {
	for i := range a.index {
		a.index[i] = noSlot
	}
	a.slab = a.slab[:0]
	a.freeHead = noSlot
	a.ringHead = noSlot
	a.nres = 0
}

// Name returns the arena's diagnostic name.
func (a *Arena) Name() string { return a.name }

// Sys returns the System the arena belongs to.
func (a *Arena) Sys() *System { return a.sys }

// Size returns the arena size in bytes.
func (a *Arena) Size() int64 { return int64(len(a.data)) }

// Kind reports the medium the arena models.
func (a *Arena) Kind() Kind { return a.kind }

// Stats returns a copy of the arena's event counters.
func (a *Arena) Stats() Stats { return a.stats }

func (a *Arena) check(off int64, n int) {
	if off < 0 || n < 0 || off+int64(n) > int64(len(a.data)) {
		panic(fmt.Sprintf("pmem: %s access [%d,%d) out of range [0,%d)",
			a.name, off, off+int64(n), len(a.data)))
	}
}

func lineOf(off int64) int64 { return off &^ (CacheLineSize - 1) }

// fill brings a line into the cache (charging the read latency) and returns
// it; if already resident it is a hit.
//
// The returned pointer is valid until the next fill: even if evictOverflow
// replaces the just-filled line (possible only when every other line is a
// pinned dirty PM line), the freed slab slot's memory is untouched until the
// next allocSlot, and every caller consumes the line before issuing another
// arena operation.
func (a *Arena) fill(l int64) *cacheLine {
	if s := a.lookup(l); s != noSlot {
		a.stats.CacheHits++
		a.sys.clock.Advance(a.sys.lat.CacheHit)
		return &a.slab[s]
	}
	a.stats.LineFills++
	a.sys.clock.Advance(a.readNS)
	s := a.allocSlot()
	ln := &a.slab[s]
	ln.off = l
	ln.dirty = false
	copy(ln.buf[:], a.data[l:l+CacheLineSize])
	a.indexInsert(l, s)
	a.ringPushBack(s)
	a.nres++
	a.evictOverflow()
	return ln
}

// evictOverflow enforces the cache capacity with FIFO replacement.
func (a *Arena) evictOverflow() {
	attempts := a.nres
	for a.nres > a.maxLines && attempts > 0 {
		attempts--
		s := a.ringPopFront()
		ln := &a.slab[s]
		if ln.dirty {
			if a.kind == PM {
				// Pinned: protocols must flush explicitly. Requeue.
				a.ringPushBack(s)
				continue
			}
			// DRAM write-back on replacement.
			a.stats.LineWritebacks++
			a.sys.clock.Advance(a.writeNS)
			copy(a.data[ln.off:ln.off+CacheLineSize], ln.buf[:])
		}
		a.indexDelete(ln.off)
		a.freeSlot(s)
		a.nres--
	}
}

// Load copies len(dst) bytes at off into dst, charging per cache line: the
// cache-hit cost for resident lines, the medium read latency otherwise.
func (a *Arena) Load(off int64, dst []byte) {
	a.check(off, len(dst))
	if len(dst) == 0 {
		return
	}
	a.stats.BytesRead += int64(len(dst))
	for first, last := lineOf(off), lineOf(off+int64(len(dst))-1); first <= last; first += CacheLineSize {
		ln := a.fill(first)
		lo, hi := first, first+CacheLineSize
		if lo < off {
			lo = off
		}
		if end := off + int64(len(dst)); hi > end {
			hi = end
		}
		copy(dst[lo-off:hi-off], ln.buf[lo-first:hi-first])
	}
}

// Read is a convenience Load that allocates and returns the bytes.
func (a *Arena) Read(off int64, n int) []byte {
	dst := make([]byte, n)
	a.Load(off, dst)
	return dst
}

// Store writes src at off into the cache (write-allocate: an absent line is
// filled first, paying the read latency). Data becomes durable only when
// flushed (PM). Each 8-byte-aligned fragment is a separate crash point: an
// injected crash can tear a multi-word store at any word boundary, matching
// the paper's 8-byte failure-atomicity assumption.
func (a *Arena) Store(off int64, src []byte) {
	a.check(off, len(src))
	pos := off
	rem := src
	for len(rem) > 0 {
		// Fragment ends at the next 8-byte boundary.
		n := int(WordSize - pos%WordSize)
		if n > len(rem) {
			n = len(rem)
		}
		a.storeWord(pos, rem[:n])
		pos += int64(n)
		rem = rem[n:]
	}
}

// storeWord applies one ≤8-byte, non-boundary-crossing store atomically.
func (a *Arena) storeWord(off int64, src []byte) {
	a.sys.injector.tick()
	a.stats.WordStores++
	a.stats.BytesStored += int64(len(src))
	a.sys.clock.Advance(a.sys.lat.Store)
	l := lineOf(off)
	ln := a.fill(l)
	ln.dirty = true
	copy(ln.buf[off-l:], src)
}

// Flush issues CLFLUSH for every cache line overlapping [off, off+n),
// writing dirty lines back to the medium (they stay resident, clean). Each
// flush is a crash point. Flushing a clean or absent line is counted but
// costs no write-back. On DRAM arenas Flush is a no-op (no persistence
// domain).
func (a *Arena) Flush(off int64, n int) {
	a.check(off, n)
	if a.kind == DRAM || n == 0 {
		return
	}
	for first, last := lineOf(off), lineOf(off+int64(n)-1); first <= last; first += CacheLineSize {
		a.flushLine(first)
	}
}

// FlushLine issues CLFLUSH for the single line containing off.
func (a *Arena) FlushLine(off int64) {
	a.check(off, 1)
	if a.kind == DRAM {
		return
	}
	a.flushLine(lineOf(off))
}

func (a *Arena) flushLine(l int64) {
	a.sys.injector.tick()
	a.stats.FlushCalls++
	s := a.lookup(l)
	if s == noSlot || !a.slab[s].dirty {
		return
	}
	ln := &a.slab[s]
	a.sys.clock.Advance(a.writeNS)
	a.stats.LineWritebacks++
	copy(a.data[l:l+CacheLineSize], ln.buf[:])
	ln.dirty = false
}

// Persist flushes [off, off+n) and issues a fence: the canonical
// "clflush; mfence" durability point.
func (a *Arena) Persist(off int64, n int) {
	a.Flush(off, n)
	a.sys.Fence()
}

// Zero stores n zero bytes at off.
func (a *Arena) Zero(off int64, n int) {
	zeros := make([]byte, n)
	a.Store(off, zeros)
}

// DirtyLines reports how many resident lines are dirty.
func (a *Arena) DirtyLines() int {
	n := 0
	if h := a.ringHead; h != noSlot {
		s := h
		for {
			if a.slab[s].dirty {
				n++
			}
			s = a.slab[s].next
			if s == h {
				break
			}
		}
	}
	return n
}

// ResidentLines reports the total cache-resident lines.
func (a *Arena) ResidentLines() int { return a.nres }

// AtomicRegion runs fn with crash injection suspended. The HTM emulator uses
// it to publish a transaction's write set atomically: real RTM guarantees a
// line modified inside a transaction is never visible (or evictable) in a
// partially updated state.
func (a *Arena) AtomicRegion(fn func()) {
	a.sys.injector.suspended++
	defer func() { a.sys.injector.suspended-- }()
	fn()
}

// crash applies power-failure semantics: DRAM loses everything; each dirty
// PM line is either evicted (written back whole) or lost, per the lottery.
// Clean lines are dropped (they mirror the medium anyway).
func (a *Arena) crash(evict func() bool) {
	if a.kind == DRAM {
		clear(a.data)
		a.resetOverlay()
		return
	}
	// The lottery iterates dirty offsets in ascending order so a given seed
	// always evicts the same lines; collect them from the ring and sort.
	offs := a.crashBuf[:0]
	if h := a.ringHead; h != noSlot {
		s := h
		for {
			if a.slab[s].dirty {
				offs = append(offs, a.slab[s].off)
			}
			s = a.slab[s].next
			if s == h {
				break
			}
		}
	}
	a.crashBuf = offs
	sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
	for _, l := range offs {
		if evict() {
			a.stats.LineWritebacks++
			ln := &a.slab[a.lookup(l)]
			copy(a.data[l:l+CacheLineSize], ln.buf[:])
		}
	}
	a.resetOverlay()
}

// MediumBytes returns the durable medium contents in [off, off+n) without
// charging time — a debugging/verification window onto what would survive a
// crash with no evictions.
func (a *Arena) MediumBytes(off int64, n int) []byte {
	a.check(off, n)
	out := make([]byte, n)
	copy(out, a.data[off:off+int64(n)])
	return out
}

// MediumSnapshot copies the entire durable medium — a crash-consistent
// image of the arena (unflushed cache lines are, by definition, absent).
// Used to persist simulated PM across process runs.
func (a *Arena) MediumSnapshot() []byte {
	out := make([]byte, len(a.data))
	copy(out, a.data)
	return out
}

// RestoreMedium replaces the durable medium with a snapshot and drops the
// cache overlay, as if the machine had just powered on with this PM image.
// The snapshot length must match the arena size.
func (a *Arena) RestoreMedium(img []byte) error {
	if len(img) != len(a.data) {
		return fmt.Errorf("pmem: snapshot is %d bytes, arena is %d", len(img), len(a.data))
	}
	copy(a.data, img)
	a.resetOverlay()
	return nil
}

// --- Little-endian integer convenience accessors -------------------------

// LoadU16 loads a little-endian uint16 at off.
func (a *Arena) LoadU16(off int64) uint16 {
	var b [2]byte
	a.Load(off, b[:])
	return binary.LittleEndian.Uint16(b[:])
}

// LoadU32 loads a little-endian uint32 at off.
func (a *Arena) LoadU32(off int64) uint32 {
	var b [4]byte
	a.Load(off, b[:])
	return binary.LittleEndian.Uint32(b[:])
}

// LoadU64 loads a little-endian uint64 at off.
func (a *Arena) LoadU64(off int64) uint64 {
	var b [8]byte
	a.Load(off, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// StoreU16 stores v little-endian at off.
func (a *Arena) StoreU16(off int64, v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	a.Store(off, b[:])
}

// StoreU32 stores v little-endian at off.
func (a *Arena) StoreU32(off int64, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	a.Store(off, b[:])
}

// StoreU64 stores v little-endian at off.
func (a *Arena) StoreU64(off int64, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	a.Store(off, b[:])
}
