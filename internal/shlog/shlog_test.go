package shlog

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"fasp/internal/pmem"
)

func newLog(t *testing.T) (*pmem.System, *pmem.Arena, *Log) {
	t.Helper()
	sys := pmem.NewSystem(pmem.DefaultLatencies(300, 300))
	a := sys.NewArena("pm", 1<<16, pmem.PM)
	return sys, a, Format(a, 0, 1<<16)
}

func TestCommitAndReplayRoundTrip(t *testing.T) {
	_, _, l := newLog(t)
	l.Begin()
	h1 := []byte{1, 2, 3, 4, 5}
	h2 := bytes.Repeat([]byte{9}, 30)
	if err := l.AppendHeader(3, h1); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendHeader(1, h2); err != nil {
		t.Fatal(err)
	}
	if _, ok := l.Committed(); ok {
		t.Fatal("log committed before Commit")
	}
	l.Commit(42)
	txid, ok := l.Committed()
	if !ok || txid != 42 {
		t.Fatalf("committed = %d,%v", txid, ok)
	}
	frames, err := l.Frames()
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 2 {
		t.Fatalf("frames = %d", len(frames))
	}
	if frames[0].PageNo != 3 || !bytes.Equal(frames[0].Header, h1) {
		t.Fatalf("frame 0 = %+v", frames[0])
	}
	if frames[1].PageNo != 1 || !bytes.Equal(frames[1].Header, h2) {
		t.Fatalf("frame 1 = %+v", frames[1])
	}
	l.Truncate()
	if _, ok := l.Committed(); ok {
		t.Fatal("log committed after Truncate")
	}
}

func TestUncommittedFramesVanishAtCrash(t *testing.T) {
	sys, a, l := newLog(t)
	l.Begin()
	if err := l.AppendHeader(7, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	// No commit: crash.
	sys.Crash(pmem.EvictAll) // even if everything is evicted…
	l2, err := Open(a, 0, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := l2.Committed(); ok {
		t.Fatal("uncommitted transaction visible after crash")
	}
}

func TestCommittedSurvivesCrashWithNoEvictions(t *testing.T) {
	sys, a, l := newLog(t)
	l.Begin()
	hdr := []byte("headerimage")
	if err := l.AppendHeader(5, hdr); err != nil {
		t.Fatal(err)
	}
	l.Commit(9)
	sys.Crash(pmem.EvictNone)
	l2, err := Open(a, 0, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	txid, ok := l2.Committed()
	if !ok || txid != 9 {
		t.Fatalf("committed after crash = %d,%v", txid, ok)
	}
	frames, err := l2.Frames()
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 1 || !bytes.Equal(frames[0].Header, hdr) {
		t.Fatalf("frames after crash = %+v", frames)
	}
}

func TestLogFull(t *testing.T) {
	sys := pmem.NewSystem(pmem.DefaultLatencies(120, 120))
	a := sys.NewArena("pm", 256, pmem.PM)
	l := Format(a, 0, 256)
	l.Begin()
	if err := l.AppendHeader(1, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendHeader(2, make([]byte, 200)); !errors.Is(err, ErrLogFull) {
		t.Fatalf("err = %v, want ErrLogFull", err)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	sys := pmem.NewSystem(pmem.DefaultLatencies(120, 120))
	a := sys.NewArena("pm", 4096, pmem.PM)
	if _, err := Open(a, 0, 4096); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestChecksumDetectsTornFrames(t *testing.T) {
	_, a, l := newLog(t)
	l.Begin()
	if err := l.AppendHeader(1, bytes.Repeat([]byte{3}, 64)); err != nil {
		t.Fatal(err)
	}
	l.Commit(1)
	// Corrupt one committed frame byte behind the log's back.
	raw := a.Read(logHeaderSize+frameHeader, 1)
	a.Store(logHeaderSize+frameHeader, []byte{raw[0] ^ 0xFF})
	if _, err := l.Frames(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestTruncatedLengthRejected(t *testing.T) {
	_, a, l := newLog(t)
	l.Begin()
	_ = l.AppendHeader(1, []byte{1})
	l.Commit(1)
	a.StoreU64(8, 1<<20) // absurd committed length
	if _, err := l.Frames(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

// Exhaustive crash sweep: at every crash point of append+commit, recovery
// sees either no transaction or the complete transaction — never a torn one.
func TestCommitIsFailureAtomicAtEveryCrashPoint(t *testing.T) {
	headers := [][]byte{
		bytes.Repeat([]byte{0xA1}, 22),
		bytes.Repeat([]byte{0xB2}, 40),
		bytes.Repeat([]byte{0xC3}, 14),
	}
	run := func(l *Log) {
		l.Begin()
		for i, h := range headers {
			if err := l.AppendHeader(uint32(i+1), h); err != nil {
				panic(err)
			}
		}
		l.Commit(77)
	}
	// Count crash points.
	sys, _, l := newLog(t)
	base := sys.CrashPoints()
	run(l)
	total := sys.CrashPoints() - base
	if total < 10 {
		t.Fatalf("suspiciously few crash points: %d", total)
	}
	for _, opts := range []pmem.CrashOptions{pmem.EvictNone, pmem.EvictAll, {Seed: 3, EvictProb: 0.5}} {
		for k := int64(0); k < total; k++ {
			sys, a, l := newLog(t)
			sys.CrashAfter(k)
			crashed := sys.RunToCrash(func() { run(l) })
			sys.Crash(opts)
			l2, err := Open(a, 0, 1<<16)
			if err != nil {
				t.Fatalf("crash@%d opts=%+v: open: %v", k, opts, err)
			}
			if _, ok := l2.Committed(); !ok {
				continue // transaction absent: fine
			}
			frames, err := l2.Frames()
			if err != nil {
				t.Fatalf("crash@%d opts=%+v crashed=%v: committed but unreadable: %v", k, opts, crashed, err)
			}
			if len(frames) != len(headers) {
				t.Fatalf("crash@%d: committed with %d frames, want %d", k, len(frames), len(headers))
			}
			for i, f := range frames {
				if f.PageNo != uint32(i+1) || !bytes.Equal(f.Header, headers[i]) {
					t.Fatalf("crash@%d: frame %d corrupt", k, i)
				}
			}
		}
	}
}

// The log is reusable across many transactions.
func TestSequentialTransactions(t *testing.T) {
	_, _, l := newLog(t)
	for txn := uint64(1); txn <= 20; txn++ {
		l.Begin()
		for p := 0; p < 3; p++ {
			hdr := []byte(fmt.Sprintf("txn%d-page%d", txn, p))
			if err := l.AppendHeader(uint32(p), hdr); err != nil {
				t.Fatal(err)
			}
		}
		l.Commit(txn)
		frames, err := l.Frames()
		if err != nil {
			t.Fatal(err)
		}
		if len(frames) != 3 {
			t.Fatalf("txn %d: %d frames", txn, len(frames))
		}
		l.Truncate()
	}
}

// TestReplayIsIdempotent: recovery may crash mid-checkpoint and run again;
// applying the same committed frames twice must be harmless, and the log
// stays committed until explicitly truncated.
func TestReplayIsIdempotent(t *testing.T) {
	sys, a, l := newLog(t)
	hdr := bytes.Repeat([]byte{0x5A}, 26)
	l.Begin()
	if err := l.AppendHeader(4, hdr); err != nil {
		t.Fatal(err)
	}
	l.Commit(3)
	for round := 0; round < 3; round++ {
		frames, err := l.Frames()
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if len(frames) != 1 || !bytes.Equal(frames[0].Header, hdr) {
			t.Fatalf("round %d: frames = %+v", round, frames)
		}
		// Simulate a crash between replay rounds.
		sys.Crash(pmem.EvictNone)
		l2, err := Open(a, 0, 1<<16)
		if err != nil {
			t.Fatal(err)
		}
		l = l2
	}
	l.Truncate()
	if _, ok := l.Committed(); ok {
		t.Fatal("log still committed after truncate")
	}
}
