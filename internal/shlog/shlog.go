// Package shlog implements the paper's slot-header log (§3.3): a small
// PM-resident redo log that holds only the *metadata* (slot headers) of the
// pages a transaction dirtied, never the records themselves — those are
// already persistent, written in-place into page free space.
//
// Protocol (the order is the entire correctness argument):
//
//  1. During the transaction, updated slot headers are appended to the log
//     with plain stores — no flushes, no ordering constraints, because the
//     frames are meaningless until the commit mark exists.
//  2. At commit, the frame region is flushed and fenced, the checksum and
//     transaction id are written and flushed, and finally the committed
//     length — a single 8-byte failure-atomic PM word — is written and
//     flushed. That word is the transaction's commit mark.
//  3. The committed headers are immediately ("eagerly") checkpointed into
//     their pages by the caller, and the log is truncated by atomically
//     zeroing the length word.
//
// Recovery: a zero length means no transaction was mid-commit — ignore the
// log. A non-zero length with a valid checksum means the transaction
// committed but checkpointing may not have finished — replay the frames
// (idempotent) and truncate.
package shlog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"

	"fasp/internal/pmem"
)

const (
	logHeaderSize = 40                  // magic, length, txid, checksum(8), reserved
	frameHeader   = 8                   // pageNo u32, hdrLen u16, pad u16
	magic         = 0x53484C4F_47303100 // "SHLOG01\0"
)

// Errors reported by the log.
var (
	// ErrLogFull means the frame region is exhausted; the transaction is
	// too large for the configured log size.
	ErrLogFull = errors.New("shlog: log full")
	// ErrCorrupt reports an invalid log image (bad magic or checksum).
	ErrCorrupt = errors.New("shlog: log corrupt")
)

// Frame is one decoded slot-header log entry.
type Frame struct {
	PageNo uint32
	Header []byte
}

// Log is a slot-header log in a PM arena region [base, base+size).
type Log struct {
	a    *pmem.Arena
	base int64
	size int64
	// cursor is the volatile append position (bytes past the log header).
	// It does not need to be persistent: a crash before commit discards
	// the frames wholesale.
	cursor   int64
	hash     uint64 // running FNV-1a over appended frame bytes
	frameBuf []byte // reusable frame-assembly scratch
}

// FNV-1a parameters, matching hash/fnv's 64-bit variant bit for bit: the
// checksums are persisted and re-verified by Frames at recovery.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvFold advances an FNV-1a running hash over b.
func fnvFold(h uint64, b []byte) uint64 {
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime64
	}
	return h
}

// Format initialises an empty log over the region.
func Format(a *pmem.Arena, base, size int64) *Log {
	if size < logHeaderSize+64 {
		panic("shlog: region too small")
	}
	l := &Log{a: a, base: base, size: size}
	a.StoreU64(base+8, 0)  // length: not committed
	a.StoreU64(base+16, 0) // txid
	a.StoreU64(base+24, 0) // checksum
	a.StoreU64(base, magic)
	a.Persist(base, logHeaderSize)
	l.reset()
	return l
}

// Open attaches to an existing log, verifying the magic. The returned log
// may hold a committed transaction awaiting replay; check Committed.
func Open(a *pmem.Arena, base, size int64) (*Log, error) {
	if a.LoadU64(base) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	l := &Log{a: a, base: base, size: size}
	l.reset()
	return l, nil
}

func (l *Log) reset() {
	l.cursor = 0
	l.hash = fnvOffset64
}

// Begin starts accumulating frames for a new transaction, discarding any
// unappended state. It must not be called while a committed transaction
// awaits replay.
func (l *Log) Begin() {
	l.reset()
}

// AppendHeader stores one page's updated slot header into the log with
// plain stores (no flush — ordering is irrelevant before the commit mark).
func (l *Log) AppendHeader(pageNo uint32, hdr []byte) error {
	need := int64(frameHeader + len(hdr))
	if pad := need % 8; pad != 0 {
		need += 8 - pad
	}
	if logHeaderSize+l.cursor+need > l.size {
		return fmt.Errorf("%w: need %d bytes", ErrLogFull, need)
	}
	if int64(cap(l.frameBuf)) < need {
		l.frameBuf = make([]byte, need)
	}
	buf := l.frameBuf[:need]
	for i := range buf {
		buf[i] = 0 // padding bytes must not leak previous frame contents
	}
	binary.LittleEndian.PutUint32(buf, pageNo)
	binary.LittleEndian.PutUint16(buf[4:], uint16(len(hdr)))
	copy(buf[frameHeader:], hdr)
	l.a.Store(l.base+logHeaderSize+l.cursor, buf)
	l.cursor += need
	// Fold the frame into the running checksum (pure CPU work). The fold
	// seeds a fresh FNV-1a state with the previous hash's little-endian
	// bytes, exactly as recovery's verifier does.
	var seed [8]byte
	binary.LittleEndian.PutUint64(seed[:], l.hash)
	l.hash = fnvFold(fnvFold(fnvOffset64, seed[:]), buf)
	l.a.Sys().Compute(int64(len(buf)) / 8)
	return nil
}

// PendingBytes reports the bytes of frames appended since Begin.
func (l *Log) PendingBytes() int64 { return l.cursor }

// Commit makes the appended frames durable and writes the commit mark.
// After Commit returns, a crash at any point leaves the transaction
// committed; before the final length store becomes durable, it leaves the
// transaction entirely absent.
func (l *Log) Commit(txid uint64) {
	// 1. Flush the frame region; fence.
	l.a.Flush(l.base+logHeaderSize, int(l.cursor))
	l.a.Sys().Fence()
	// 2. Auxiliary commit metadata, flushed before the mark.
	l.a.StoreU64(l.base+16, txid)
	l.a.StoreU64(l.base+24, l.hash)
	l.a.Persist(l.base+16, 16)
	// 3. The commit mark: one failure-atomic 8-byte store.
	l.a.StoreU64(l.base+8, uint64(l.cursor))
	l.a.Persist(l.base+8, 8)
}

// Committed reports whether the log holds a committed, un-truncated
// transaction, returning its id.
func (l *Log) Committed() (txid uint64, ok bool) {
	if l.a.LoadU64(l.base+8) == 0 {
		return 0, false
	}
	return l.a.LoadU64(l.base + 16), true
}

// Frames decodes the committed frames for replay, verifying the checksum.
func (l *Log) Frames() ([]Frame, error) {
	length := int64(l.a.LoadU64(l.base + 8))
	if length == 0 {
		return nil, nil
	}
	if logHeaderSize+length > l.size {
		return nil, fmt.Errorf("%w: committed length %d exceeds log", ErrCorrupt, length)
	}
	raw := l.a.Read(l.base+logHeaderSize, int(length))
	// Verify the checksum by refolding frame by frame.
	var frames []Frame
	hash := fnv.New64a().Sum64()
	for pos := int64(0); pos < length; {
		if pos+frameHeader > length {
			return nil, fmt.Errorf("%w: truncated frame header", ErrCorrupt)
		}
		pageNo := binary.LittleEndian.Uint32(raw[pos:])
		hdrLen := int64(binary.LittleEndian.Uint16(raw[pos+4:]))
		need := frameHeader + hdrLen
		if pad := need % 8; pad != 0 {
			need += 8 - pad
		}
		if pos+need > length {
			return nil, fmt.Errorf("%w: truncated frame body", ErrCorrupt)
		}
		h := fnv.New64a()
		var seed [8]byte
		binary.LittleEndian.PutUint64(seed[:], hash)
		h.Write(seed[:])
		h.Write(raw[pos : pos+need])
		hash = h.Sum64()
		frames = append(frames, Frame{
			PageNo: pageNo,
			Header: append([]byte(nil), raw[pos+frameHeader:pos+frameHeader+hdrLen]...),
		})
		pos += need
	}
	if stored := l.a.LoadU64(l.base + 24); stored != hash {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return frames, nil
}

// Truncate clears the commit mark after checkpointing completes. The log is
// then reusable for the next transaction.
func (l *Log) Truncate() {
	l.a.StoreU64(l.base+8, 0)
	l.a.Persist(l.base+8, 8)
	l.reset()
}
