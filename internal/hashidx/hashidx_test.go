package hashidx

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"fasp/internal/fast"
	"fasp/internal/pmem"
	"fasp/internal/wal"
)

func newIndex(t testing.TB, variant fast.Variant, buckets uint32) (*pmem.System, *fast.Store, *Index) {
	t.Helper()
	sys := pmem.NewSystem(pmem.DefaultLatencies(300, 300))
	st := fast.Create(sys, fast.Config{PageSize: 512, MaxPages: 4096, Variant: variant})
	ix := New(st)
	if err := ix.Create(buckets); err != nil {
		t.Fatal(err)
	}
	return sys, st, ix
}

func hk(i int) []byte { return []byte(fmt.Sprintf("hkey-%05d", i)) }
func hv(i int) []byte { return []byte(fmt.Sprintf("hval-%d", i)) }

func TestPutGetDelete(t *testing.T) {
	_, _, ix := newIndex(t, fast.InPlaceCommit, 8)
	for i := 0; i < 200; i++ {
		if err := ix.Put(hk(i), hv(i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for i := 0; i < 200; i++ {
		v, ok, err := ix.Get(hk(i))
		if err != nil || !ok || !bytes.Equal(v, hv(i)) {
			t.Fatalf("get %d = %q %v %v", i, v, ok, err)
		}
	}
	if _, ok, _ := ix.Get([]byte("missing")); ok {
		t.Fatal("phantom key")
	}
	n, err := ix.Len()
	if err != nil || n != 200 {
		t.Fatalf("len = %d (%v)", n, err)
	}
	for i := 0; i < 200; i += 3 {
		if err := ix.Delete(hk(i)); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	if err := ix.Delete(hk(0)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
	for i := 0; i < 200; i++ {
		_, ok, _ := ix.Get(hk(i))
		if want := i%3 != 0; ok != want {
			t.Fatalf("key %d present=%v want %v", i, ok, want)
		}
	}
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPutReplaces(t *testing.T) {
	_, _, ix := newIndex(t, fast.InPlaceCommit, 4)
	if err := ix.Put(hk(1), []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := ix.Put(hk(1), []byte("second")); err != nil {
		t.Fatal(err)
	}
	v, ok, _ := ix.Get(hk(1))
	if !ok || string(v) != "second" {
		t.Fatalf("got %q", v)
	}
	// Replace with a much larger value (forces delete+reinsert paths).
	big := bytes.Repeat([]byte{'x'}, 200)
	if err := ix.Put(hk(1), big); err != nil {
		t.Fatal(err)
	}
	v, ok, _ = ix.Get(hk(1))
	if !ok || !bytes.Equal(v, big) {
		t.Fatalf("big replace lost (len %d)", len(v))
	}
	n, _ := ix.Len()
	if n != 1 {
		t.Fatalf("len = %d", n)
	}
}

func TestOverflowChainsGrowAndShrink(t *testing.T) {
	_, st, ix := newIndex(t, fast.InPlaceCommit, 1) // everything in one bucket
	const n = 120
	for i := 0; i < n; i++ {
		if err := ix.Put(hk(i), hv(i)); err != nil {
			t.Fatal(err)
		}
	}
	if st.Meta().NPages < 5 {
		t.Fatalf("expected a long chain; npages = %d", st.Meta().NPages)
	}
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := ix.Delete(hk(i)); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	cnt, _ := ix.Len()
	if cnt != 0 {
		t.Fatalf("len after full delete = %d", cnt)
	}
	// Emptied overflow pages were unlinked and freed.
	if st.Meta().FreeCount == 0 {
		t.Fatal("no overflow pages were reclaimed")
	}
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMatchesReferenceModel(t *testing.T) {
	for _, variant := range []fast.Variant{fast.SlotHeaderLogging, fast.InPlaceCommit} {
		t.Run(variant.String(), func(t *testing.T) {
			_, _, ix := newIndex(t, variant, 16)
			rng := rand.New(rand.NewSource(3))
			model := map[string]string{}
			for step := 0; step < 800; step++ {
				i := rng.Intn(150)
				switch rng.Intn(3) {
				case 0, 1:
					v := fmt.Sprintf("v%d-%d", i, rng.Intn(100))
					if err := ix.Put(hk(i), []byte(v)); err != nil {
						t.Fatalf("step %d put: %v", step, err)
					}
					model[string(hk(i))] = v
				case 2:
					err := ix.Delete(hk(i))
					if _, exists := model[string(hk(i))]; exists {
						if err != nil {
							t.Fatalf("step %d delete: %v", step, err)
						}
						delete(model, string(hk(i)))
					} else if !errors.Is(err, ErrNotFound) {
						t.Fatalf("step %d: phantom delete err=%v", step, err)
					}
				}
			}
			got := map[string]string{}
			tx, err := ix.Begin()
			if err != nil {
				t.Fatal(err)
			}
			if err := tx.Each(func(k, v []byte) bool {
				got[string(k)] = string(v)
				return true
			}); err != nil {
				t.Fatal(err)
			}
			tx.Rollback()
			if len(got) != len(model) {
				t.Fatalf("index %d keys, model %d", len(got), len(model))
			}
			for k, v := range model {
				if got[k] != v {
					t.Fatalf("key %q = %q, want %q", k, got[k], v)
				}
			}
			if err := ix.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRehash(t *testing.T) {
	_, _, ix := newIndex(t, fast.InPlaceCommit, 2)
	const n = 150
	for i := 0; i < n; i++ {
		if err := ix.Put(hk(i), hv(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Rehash(64); err != nil {
		t.Fatal(err)
	}
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
	cnt, _ := ix.Len()
	if cnt != n {
		t.Fatalf("len after rehash = %d", cnt)
	}
	for i := 0; i < n; i++ {
		v, ok, err := ix.Get(hk(i))
		if err != nil || !ok || !bytes.Equal(v, hv(i)) {
			t.Fatalf("key %d lost in rehash", i)
		}
	}
}

func TestTxnAtomicity(t *testing.T) {
	_, _, ix := newIndex(t, fast.InPlaceCommit, 8)
	tx, err := ix.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := tx.Put(hk(i), hv(i)); err != nil {
			t.Fatal(err)
		}
	}
	tx.Rollback()
	if n, _ := ix.Len(); n != 0 {
		t.Fatalf("rolled-back puts visible: %d", n)
	}
	tx2, _ := ix.Begin()
	for i := 0; i < 20; i++ {
		if err := tx2.Put(hk(i), hv(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if n, _ := ix.Len(); n != 20 {
		t.Fatalf("committed puts missing: %d", n)
	}
}

func TestFASTPlusSinglePagePutsCommitInPlace(t *testing.T) {
	_, st, ix := newIndex(t, fast.InPlaceCommit, 64)
	for i := 0; i < 40; i++ {
		if err := ix.Put(hk(i), hv(i)); err != nil {
			t.Fatal(err)
		}
	}
	s := st.Stats()
	if s.InPlaceCommits == 0 {
		t.Fatalf("hash puts never used the in-place commit: %+v", s)
	}
}

func TestWorksOnBaselineStores(t *testing.T) {
	sys := pmem.NewSystem(pmem.DefaultLatencies(300, 300))
	st := wal.Create(sys, wal.Config{PageSize: 512, MaxPages: 2048, Kind: wal.NVWAL})
	ix := New(st)
	if err := ix.Create(8); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := ix.Put(hk(i), hv(i)); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := ix.Len(); n != 100 {
		t.Fatalf("len = %d", n)
	}
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashRecoverySweep: the hash index inherits failure atomicity from
// the store — verify across sampled crash points and eviction policies.
func TestCrashRecoverySweep(t *testing.T) {
	cfg := fast.Config{PageSize: 256, MaxPages: 2048, Variant: fast.InPlaceCommit}
	const nOps = 25
	run := func(ix *Index, committed *int) {
		if err := ix.Create(4); err != nil {
			panic(err)
		}
		*committed++
		for i := 0; i < nOps; i++ {
			if err := ix.Put(hk(i), hv(i)); err != nil {
				panic(err)
			}
			*committed++
		}
	}
	sys := pmem.NewSystem(pmem.DefaultLatencies(300, 300))
	st := fast.Create(sys, cfg)
	n := 0
	base := sys.CrashPoints()
	run(New(st), &n)
	total := sys.CrashPoints() - base
	step := total / 80
	if step == 0 {
		step = 1
	}
	if testing.Short() {
		step = total / 15
	}
	for kpt := int64(0); kpt < total; kpt += step {
		sys := pmem.NewSystem(pmem.DefaultLatencies(300, 300))
		st := fast.Create(sys, cfg)
		committed := 0
		sys.CrashAfter(kpt)
		sys.RunToCrash(func() { run(New(st), &committed) })
		sys.Crash(pmem.CrashOptions{Seed: kpt, EvictProb: 0.5})
		st2, err := fast.Attach(st.Arena(), cfg)
		if err != nil {
			t.Fatalf("crash@%d: attach: %v", kpt, err)
		}
		if err := st2.Recover(); err != nil {
			t.Fatalf("crash@%d: recover: %v", kpt, err)
		}
		if committed == 0 {
			continue // Create itself may not have committed
		}
		ix2 := New(st2)
		if err := ix2.Validate(); err != nil {
			t.Fatalf("crash@%d: invalid index: %v", kpt, err)
		}
		cnt, err := ix2.Len()
		if err != nil {
			t.Fatalf("crash@%d: len: %v", kpt, err)
		}
		puts := committed - 1 // minus the Create txn
		if cnt != puts && cnt != puts+1 {
			t.Fatalf("crash@%d: %d keys, %d committed puts", kpt, cnt, puts)
		}
		for i := 0; i < puts; i++ {
			v, ok, err := ix2.Get(hk(i))
			if err != nil || !ok || !bytes.Equal(v, hv(i)) {
				t.Fatalf("crash@%d: committed key %d missing/corrupt", kpt, i)
			}
		}
	}
}

// TestChainPageDefrag drives the copy-on-write defragmentation of bucket
// pages: shrink-grow cycles fragment a page until a larger record needs
// compaction, both at the chain head and in an overflow page.
func TestChainPageDefrag(t *testing.T) {
	_, st, ix := newIndex(t, fast.InPlaceCommit, 1)
	// Fill the single bucket until it has overflow pages.
	for i := 0; i < 40; i++ {
		if err := ix.Put(hk(i), bytes.Repeat([]byte{1}, 24)); err != nil {
			t.Fatal(err)
		}
	}
	// Grow values in place repeatedly: deletes + reinserts fragment chain
	// pages until defragmentation triggers.
	for round := 1; round <= 4; round++ {
		for i := 0; i < 40; i += 3 {
			if err := ix.Put(hk(i), bytes.Repeat([]byte{byte(round)}, 24+round*20)); err != nil {
				t.Fatalf("round %d key %d: %v", round, i, err)
			}
		}
		if err := ix.Validate(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if st.Stats().Defrags == 0 {
		t.Fatal("no chain-page defragmentation happened; test is vacuous")
	}
	// Contents survived every rewrite.
	for i := 0; i < 40; i++ {
		v, ok, err := ix.Get(hk(i))
		if err != nil || !ok {
			t.Fatalf("key %d lost: %v", i, err)
		}
		if i%3 == 0 && len(v) != 24+4*20 {
			t.Fatalf("key %d final size %d", i, len(v))
		}
	}
}

// TestGetOnMissingBucket covers the no-page path.
func TestGetOnMissingBucket(t *testing.T) {
	_, _, ix := newIndex(t, fast.InPlaceCommit, 1024)
	if _, ok, err := ix.Get([]byte("anything")); ok || err != nil {
		t.Fatalf("get on empty index = %v %v", ok, err)
	}
	if err := ix.Delete([]byte("anything")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete on empty index: %v", err)
	}
}

// TestCreateTwiceRejected guards the root check.
func TestCreateTwiceRejected(t *testing.T) {
	_, _, ix := newIndex(t, fast.InPlaceCommit, 4)
	if err := ix.Create(8); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("double create: %v", err)
	}
}
