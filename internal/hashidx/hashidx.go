// Package hashidx is a persistent hash index built on failure-atomic
// slotted pages, realising the paper's claim (§2.2) that the persistent
// slotted-page optimisation "can be used not only for B+-trees (or any of
// its variants) but also for other hash-based indexes".
//
// Structure:
//
//   - each bucket is a chain of slotted leaf pages; overflow pages are
//     linked through the page's auxiliary header field, so extending a
//     chain is committed atomically with the slot header that references
//     the new page;
//   - the bucket directory (bucket number → head page) is a small B-tree
//     reusing the same transactional machinery, so directory updates —
//     bucket creation, rehashing — commit with everything else;
//   - records are written into bucket free space in place and the slot
//     header is the commit mark, exactly as in the B-tree case. Under
//     FAST+, a Put that touches a single bucket page commits with one
//     HTM cache-line write.
//
// The index tolerates crashes at any point through the store's recovery,
// inheriting the B-tree's guarantees without new protocol code — which is
// precisely the paper's point.
package hashidx

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"

	"fasp/internal/btree"
	"fasp/internal/pager"
	"fasp/internal/slotted"
)

// Errors returned by the index.
var (
	// ErrNotFound reports a Get/Delete of an absent key.
	ErrNotFound = errors.New("hashidx: key not found")
	// ErrCorrupt reports structural damage.
	ErrCorrupt = errors.New("hashidx: index corrupt")
)

// metaKey is the reserved 8-byte directory key holding the bucket count;
// bucket keys are 4 bytes, so it cannot collide.
var metaKey = []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}

// Index is a persistent hash index over a store. Like the B-tree, it is
// bound to the store's root pointer (the directory tree); one store hosts
// one index.
type Index struct {
	st pager.Store
}

// New binds an index to a store.
func New(st pager.Store) *Index { return &Index{st: st} }

// Create initialises the directory with n buckets (rounded up to ≥ 1) in
// its own transaction. The store must be empty (root 0).
func (ix *Index) Create(n uint32) error {
	if n == 0 {
		n = 1
	}
	tx, err := ix.begin()
	if err != nil {
		return err
	}
	if tx.dir.Pager().Root() != 0 {
		tx.Rollback()
		return fmt.Errorf("%w: store already holds an index or tree", ErrCorrupt)
	}
	var nb [4]byte
	binary.BigEndian.PutUint32(nb[:], n)
	if err := tx.dir.Insert(metaKey, nb[:]); err != nil {
		tx.Rollback()
		return err
	}
	return tx.Commit()
}

func bucketKey(b uint32) []byte {
	var k [4]byte
	binary.BigEndian.PutUint32(k[:], b)
	return k[:]
}

func hashOf(key []byte) uint32 {
	h := fnv.New64a()
	h.Write(key)
	return uint32(h.Sum64() >> 32)
}

// Tx is one transaction over the index.
type Tx struct {
	ix   *Index
	p    pager.Txn
	dir  *btree.Tx
	owns bool
	done bool
	n    uint32 // cached bucket count
}

func (ix *Index) begin() (*Tx, error) {
	ptx, err := ix.st.Begin()
	if err != nil {
		return nil, err
	}
	return &Tx{ix: ix, p: ptx, dir: btree.Attach(ix.st, ptx, ptx), owns: true}, nil
}

// Begin opens a read-write transaction.
func (ix *Index) Begin() (*Tx, error) { return ix.begin() }

// Commit commits the transaction.
func (tx *Tx) Commit() error {
	tx.done = true
	return tx.p.Commit()
}

// Rollback abandons the transaction.
func (tx *Tx) Rollback() {
	if tx.done {
		return
	}
	tx.done = true
	tx.p.Rollback()
}

// buckets returns the configured bucket count.
func (tx *Tx) buckets() (uint32, error) {
	if tx.n != 0 {
		return tx.n, nil
	}
	v, ok, err := tx.dir.Get(metaKey)
	if err != nil {
		return 0, err
	}
	if !ok || len(v) != 4 {
		return 0, fmt.Errorf("%w: missing bucket-count record", ErrCorrupt)
	}
	tx.n = binary.BigEndian.Uint32(v)
	return tx.n, nil
}

// headPage returns the head page of key's bucket, creating it if asked.
func (tx *Tx) headPage(bucket uint32, create bool) (uint32, *slotted.Page, error) {
	v, ok, err := tx.dir.Get(bucketKey(bucket))
	if err != nil {
		return 0, nil, err
	}
	if ok {
		no := binary.BigEndian.Uint32(v)
		p, err := tx.p.Page(no)
		return no, p, err
	}
	if !create {
		return 0, nil, nil
	}
	no, p, err := tx.p.AllocPage(slotted.TypeLeaf)
	if err != nil {
		return 0, nil, err
	}
	var nb [4]byte
	binary.BigEndian.PutUint32(nb[:], no)
	if err := tx.dir.Insert(bucketKey(bucket), nb[:]); err != nil {
		return 0, nil, err
	}
	return no, p, nil
}

// cellCap mirrors the B-tree's FAST+ leaf restriction: bucket pages keep
// their slot headers within one cache line so single-page Puts stay
// eligible for the HTM in-place commit.
func (tx *Tx) cellCap() int {
	if c, ok := tx.ix.st.(interface{ LeafCellCap() int }); ok {
		if cap := c.LeafCellCap(); cap > 0 {
			return cap
		}
	}
	return 1 << 30
}

// Put inserts or replaces a key.
func (tx *Tx) Put(key, val []byte) error {
	n, err := tx.buckets()
	if err != nil {
		return err
	}
	bucket := hashOf(key) % n
	_, page, err := tx.headPage(bucket, true)
	if err != nil {
		return err
	}
	cap := tx.cellCap()
	// Pass 1: if the key exists anywhere in the chain, update in place
	// (out-of-place at the cell level, as always).
	var chain []*slotted.Page
	for p := page; ; {
		chain = append(chain, p)
		if i, found := p.Search(key); found {
			err := p.Update(i, val)
			if errors.Is(err, slotted.ErrNeedsDefrag) || errors.Is(err, slotted.ErrPageFull) {
				// No room for the bigger value here: delete and reinsert
				// into the chain.
				if err := p.Delete(i); err != nil {
					return err
				}
				return tx.insertIntoChain(chain, key, val, cap)
			}
			if err == nil {
				tx.p.OpEnd()
			}
			return err
		}
		next := p.Aux()
		if next == 0 {
			break
		}
		var perr error
		p, perr = tx.p.Page(next)
		if perr != nil {
			return perr
		}
		if len(chain) > 1<<16 {
			return fmt.Errorf("%w: bucket chain cycle", ErrCorrupt)
		}
	}
	return tx.insertIntoChain(chain, key, val, cap)
}

// insertIntoChain places a new record in the first chain page with room,
// growing the chain if none has. The chain passed in may be a prefix (the
// caller stopped walking when it found the key), so it is first extended to
// the true end — otherwise appending an overflow page would overwrite the
// tail's next pointer and orphan the rest of the chain.
func (tx *Tx) insertIntoChain(chain []*slotted.Page, key, val []byte, cap int) error {
	for steps := 0; ; steps++ {
		next := chain[len(chain)-1].Aux()
		if next == 0 {
			break
		}
		p, err := tx.p.Page(next)
		if err != nil {
			return err
		}
		chain = append(chain, p)
		if steps > 1<<16 {
			return fmt.Errorf("%w: bucket chain cycle", ErrCorrupt)
		}
	}
	for _, p := range chain {
		if p.NCells() >= cap {
			continue
		}
		err := p.Insert(key, val)
		switch {
		case err == nil:
			tx.p.OpEnd()
			return nil
		case errors.Is(err, slotted.ErrNeedsDefrag):
			np, derr := tx.defragChainPage(chain, p)
			if derr != nil {
				return derr
			}
			if err := np.Insert(key, val); err == nil {
				tx.p.OpEnd()
				return nil
			}
			// Still no room after compaction (giant record): keep walking.
		case errors.Is(err, slotted.ErrPageFull):
			// try the next page
		default:
			return err
		}
	}
	// Extend the chain: the new overflow page is committed atomically via
	// the tail page's slot header (Aux field).
	tail := chain[len(chain)-1]
	no, np, err := tx.p.AllocPage(slotted.TypeLeaf)
	if err != nil {
		return err
	}
	if err := np.Insert(key, val); err != nil {
		return err
	}
	tail.SetAux(no)
	tx.p.OpEnd()
	return nil
}

// defragChainPage rewrites a fragmented chain page via copy-on-write and
// relinks it from its predecessor (Aux) or the directory (head).
func (tx *Tx) defragChainPage(chain []*slotted.Page, old *slotted.Page) (*slotted.Page, error) {
	tx.p.Defragged()
	no, np, err := tx.p.AllocPage(slotted.TypeLeaf)
	if err != nil {
		return nil, err
	}
	if err := old.CopyRangeTo(np, 0, old.NCells()); err != nil {
		return nil, err
	}
	np.SetAux(old.Aux())
	// Find old's page number by scanning the chain linkage.
	oldNo, err := tx.pageNoOf(chain, old)
	if err != nil {
		return nil, err
	}
	idx := -1
	for i, p := range chain {
		if p == old {
			idx = i
			break
		}
	}
	if idx > 0 {
		chain[idx-1].SetAux(no)
	} else {
		// Head page: update the directory entry.
		bucket, err := tx.bucketOfHead(oldNo)
		if err != nil {
			return nil, err
		}
		var nb [4]byte
		binary.BigEndian.PutUint32(nb[:], no)
		if err := tx.dir.Update(bucketKey(bucket), nb[:]); err != nil {
			return nil, err
		}
	}
	tx.p.FreePage(oldNo)
	chain[idx] = np
	return np, nil
}

// pageNoOf resolves a chain page handle back to its page number by
// re-walking the linkage from the directory.
func (tx *Tx) pageNoOf(chain []*slotted.Page, target *slotted.Page) (uint32, error) {
	// The head's number comes from the directory; successors from Aux.
	headNo, err := tx.headNoOf(chain[0])
	if err != nil {
		return 0, err
	}
	no := headNo
	for _, p := range chain {
		if p == target {
			return no, nil
		}
		no = p.Aux()
	}
	return 0, fmt.Errorf("%w: page not in chain", ErrCorrupt)
}

// headNoOf finds the directory entry whose head page handle matches.
func (tx *Tx) headNoOf(head *slotted.Page) (uint32, error) {
	var found uint32
	ok := false
	err := tx.dir.Scan(nil, nil, func(k, v []byte) bool {
		if len(k) != 4 || len(v) != 4 {
			return true
		}
		no := binary.BigEndian.Uint32(v)
		if p, perr := tx.p.Page(no); perr == nil && p == head {
			found, ok = no, true
			return false
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("%w: chain head not in directory", ErrCorrupt)
	}
	return found, nil
}

// bucketOfHead finds the bucket number whose entry references headNo.
func (tx *Tx) bucketOfHead(headNo uint32) (uint32, error) {
	var bucket uint32
	ok := false
	err := tx.dir.Scan(nil, nil, func(k, v []byte) bool {
		if len(k) != 4 || len(v) != 4 {
			return true
		}
		if binary.BigEndian.Uint32(v) == headNo {
			bucket, ok = binary.BigEndian.Uint32(k), true
			return false
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("%w: head page %d not in directory", ErrCorrupt, headNo)
	}
	return bucket, nil
}

// Get returns the value stored under key.
func (tx *Tx) Get(key []byte) ([]byte, bool, error) {
	n, err := tx.buckets()
	if err != nil {
		return nil, false, err
	}
	_, page, err := tx.headPage(hashOf(key)%n, false)
	if err != nil || page == nil {
		return nil, false, err
	}
	steps := 0
	for p := page; ; {
		if i, found := p.Search(key); found {
			return p.Value(i), true, nil
		}
		next := p.Aux()
		if next == 0 {
			return nil, false, nil
		}
		var perr error
		p, perr = tx.p.Page(next)
		if perr != nil {
			return nil, false, perr
		}
		if steps++; steps > 1<<16 {
			return nil, false, fmt.Errorf("%w: bucket chain cycle", ErrCorrupt)
		}
	}
}

// Delete removes key, unlinking overflow pages that become empty.
func (tx *Tx) Delete(key []byte) error {
	n, err := tx.buckets()
	if err != nil {
		return err
	}
	_, page, err := tx.headPage(hashOf(key)%n, false)
	if err != nil {
		return err
	}
	if page == nil {
		return fmt.Errorf("%w: %x", ErrNotFound, key)
	}
	var prev *slotted.Page
	steps := 0
	for p := page; ; {
		if i, found := p.Search(key); found {
			if err := p.Delete(i); err != nil {
				return err
			}
			// Unlink an emptied overflow page (head pages stay).
			if p.NCells() == 0 && prev != nil {
				orphan := prev.Aux()
				prev.SetAux(p.Aux())
				tx.p.FreePage(orphan)
			}
			tx.p.OpEnd()
			return nil
		}
		next := p.Aux()
		if next == 0 {
			return fmt.Errorf("%w: %x", ErrNotFound, key)
		}
		prev = p
		var perr error
		p, perr = tx.p.Page(next)
		if perr != nil {
			return perr
		}
		if steps++; steps > 1<<16 {
			return fmt.Errorf("%w: bucket chain cycle", ErrCorrupt)
		}
	}
}

// Each visits every record (bucket order, then chain order), stopping
// early if fn returns false.
func (tx *Tx) Each(fn func(key, val []byte) bool) error {
	type entry struct{ no uint32 }
	var heads []entry
	if err := tx.dir.Scan(nil, nil, func(k, v []byte) bool {
		if len(k) == 4 && len(v) == 4 {
			heads = append(heads, entry{binary.BigEndian.Uint32(v)})
		}
		return true
	}); err != nil {
		return err
	}
	for _, h := range heads {
		no := h.no
		steps := 0
		for no != 0 {
			p, err := tx.p.Page(no)
			if err != nil {
				return err
			}
			for i := 0; i < p.NCells(); i++ {
				if !fn(p.Key(i), p.Value(i)) {
					return nil
				}
			}
			no = p.Aux()
			if steps++; steps > 1<<16 {
				return fmt.Errorf("%w: bucket chain cycle", ErrCorrupt)
			}
		}
	}
	return nil
}

// Len counts the records in the index.
func (tx *Tx) Len() (int, error) {
	n := 0
	err := tx.Each(func(_, _ []byte) bool { n++; return true })
	return n, err
}

// Validate checks structural invariants: every page valid, every key in
// its hash bucket, chains acyclic, directory entries well-formed.
func (tx *Tx) Validate() error {
	n, err := tx.buckets()
	if err != nil {
		return err
	}
	if err := tx.dir.Validate(); err != nil {
		return fmt.Errorf("directory: %w", err)
	}
	return tx.dir.Scan(nil, nil, func(k, v []byte) bool {
		if len(k) != 4 {
			return true // the meta record
		}
		bucket := binary.BigEndian.Uint32(k)
		no := binary.BigEndian.Uint32(v)
		seen := map[uint32]bool{}
		for no != 0 {
			if seen[no] {
				err = fmt.Errorf("%w: chain cycle at page %d", ErrCorrupt, no)
				return false
			}
			seen[no] = true
			p, perr := tx.p.Page(no)
			if perr != nil {
				err = perr
				return false
			}
			if verr := p.Validate(); verr != nil {
				err = fmt.Errorf("bucket %d page %d: %w", bucket, no, verr)
				return false
			}
			for i := 0; i < p.NCells(); i++ {
				if hashOf(p.Key(i))%n != bucket {
					err = fmt.Errorf("%w: key %x in bucket %d, belongs in %d",
						ErrCorrupt, p.Key(i), bucket, hashOf(p.Key(i))%n)
					return false
				}
			}
			no = p.Aux()
		}
		return true
	})
}

// --- Auto-transaction conveniences -------------------------------------------

// Put inserts or replaces a key in its own transaction.
func (ix *Index) Put(key, val []byte) error {
	return ix.inTx(func(tx *Tx) error { return tx.Put(key, val) })
}

// Get looks a key up in a read-only transaction.
func (ix *Index) Get(key []byte) ([]byte, bool, error) {
	tx, err := ix.begin()
	if err != nil {
		return nil, false, err
	}
	defer tx.Rollback()
	return tx.Get(key)
}

// Delete removes a key in its own transaction.
func (ix *Index) Delete(key []byte) error {
	return ix.inTx(func(tx *Tx) error { return tx.Delete(key) })
}

// Len counts records in a read-only transaction.
func (ix *Index) Len() (int, error) {
	tx, err := ix.begin()
	if err != nil {
		return 0, err
	}
	defer tx.Rollback()
	return tx.Len()
}

// Validate checks the whole index in a read-only transaction.
func (ix *Index) Validate() error {
	tx, err := ix.begin()
	if err != nil {
		return err
	}
	defer tx.Rollback()
	return tx.Validate()
}

func (ix *Index) inTx(fn func(*Tx) error) error {
	tx, err := ix.begin()
	if err != nil {
		return err
	}
	if err := fn(tx); err != nil {
		tx.Rollback()
		return err
	}
	return tx.Commit()
}

// Rehash rebuilds the index with a new bucket count in one transaction
// (grow-only offline resize; chains shorten, directory grows).
func (ix *Index) Rehash(newN uint32) error {
	if newN == 0 {
		newN = 1
	}
	tx, err := ix.begin()
	if err != nil {
		return err
	}
	// Collect every record and every old page.
	type kv struct{ k, v []byte }
	var all []kv
	if err := tx.Each(func(k, v []byte) bool {
		all = append(all, kv{append([]byte(nil), k...), append([]byte(nil), v...)})
		return true
	}); err != nil {
		tx.Rollback()
		return err
	}
	var oldPages []uint32
	if err := tx.dir.Scan(nil, nil, func(k, v []byte) bool {
		if len(k) != 4 {
			return true
		}
		no := binary.BigEndian.Uint32(v)
		for no != 0 {
			oldPages = append(oldPages, no)
			p, perr := tx.p.Page(no)
			if perr != nil {
				return false
			}
			no = p.Aux()
		}
		return true
	}); err != nil {
		tx.Rollback()
		return err
	}
	// Drop every directory bucket entry and rewrite the bucket count.
	var bucketKeys [][]byte
	if err := tx.dir.Scan(nil, nil, func(k, _ []byte) bool {
		if len(k) == 4 {
			bucketKeys = append(bucketKeys, append([]byte(nil), k...))
		}
		return true
	}); err != nil {
		tx.Rollback()
		return err
	}
	for _, bk := range bucketKeys {
		if err := tx.dir.Delete(bk); err != nil {
			tx.Rollback()
			return err
		}
	}
	var nb [4]byte
	binary.BigEndian.PutUint32(nb[:], newN)
	if err := tx.dir.Update(metaKey, nb[:]); err != nil {
		tx.Rollback()
		return err
	}
	tx.n = newN
	// Reinsert everything into fresh pages and free the old ones.
	for _, e := range all {
		if err := tx.Put(e.k, e.v); err != nil {
			tx.Rollback()
			return err
		}
	}
	for _, no := range oldPages {
		tx.p.FreePage(no)
	}
	return tx.Commit()
}
