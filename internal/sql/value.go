// Package sql provides the SQL front end of the engine: typed values, a
// lexer, an AST, and a recursive-descent parser for the dialect the paper's
// SQLite workloads use (CREATE/DROP TABLE, INSERT, SELECT, UPDATE, DELETE,
// BEGIN/COMMIT/ROLLBACK).
package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates SQLite's fundamental value types.
type Kind int

const (
	// KindNull is the SQL NULL.
	KindNull Kind = iota
	// KindInt is a 64-bit signed integer.
	KindInt
	// KindReal is a 64-bit float.
	KindReal
	// KindText is a string.
	KindText
	// KindBlob is a byte string.
	KindBlob
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindReal:
		return "REAL"
	case KindText:
		return "TEXT"
	default:
		return "BLOB"
	}
}

// Value is one SQL value.
type Value struct {
	kind Kind
	i    int64
	r    float64
	s    string
	b    []byte
}

// Null returns the NULL value.
func Null() Value { return Value{kind: KindNull} }

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Real returns a float value.
func Real(v float64) Value { return Value{kind: KindReal, r: v} }

// Text returns a string value.
func Text(v string) Value { return Value{kind: KindText, s: v} }

// Blob returns a byte-string value.
func Blob(v []byte) Value { return Value{kind: KindBlob, b: v} }

// Kind reports the value's type.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the value as an integer (coercing reals and numeric text).
func (v Value) AsInt() int64 {
	switch v.kind {
	case KindInt:
		return v.i
	case KindReal:
		return int64(v.r)
	case KindText:
		n, _ := strconv.ParseInt(strings.TrimSpace(v.s), 10, 64)
		return n
	default:
		return 0
	}
}

// AsReal returns the value as a float.
func (v Value) AsReal() float64 {
	switch v.kind {
	case KindInt:
		return float64(v.i)
	case KindReal:
		return v.r
	case KindText:
		f, _ := strconv.ParseFloat(strings.TrimSpace(v.s), 64)
		return f
	default:
		return 0
	}
}

// AsText renders the value as a string.
func (v Value) AsText() string {
	switch v.kind {
	case KindNull:
		return ""
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindReal:
		return strconv.FormatFloat(v.r, 'g', -1, 64)
	case KindText:
		return v.s
	default:
		return string(v.b)
	}
}

// AsBlob returns the value's bytes.
func (v Value) AsBlob() []byte {
	if v.kind == KindBlob {
		return v.b
	}
	return []byte(v.AsText())
}

// Truthy implements SQL boolean coercion (nonzero numeric = true).
func (v Value) Truthy() bool {
	switch v.kind {
	case KindInt:
		return v.i != 0
	case KindReal:
		return v.r != 0
	case KindText:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64)
		return err == nil && f != 0
	default:
		return false
	}
}

// String renders the value for display.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindText:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	case KindBlob:
		return fmt.Sprintf("x'%x'", v.b)
	default:
		return v.AsText()
	}
}

// Compare orders two values using SQLite's cross-type ordering: NULL <
// numbers < text < blob; numbers compare numerically across Int/Real.
func Compare(a, b Value) int {
	ra, rb := typeRank(a.kind), typeRank(b.kind)
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	switch ra {
	case 0: // both NULL
		return 0
	case 1: // numeric
		fa, fb := a.AsReal(), b.AsReal()
		if a.kind == KindInt && b.kind == KindInt {
			switch {
			case a.i < b.i:
				return -1
			case a.i > b.i:
				return 1
			}
			return 0
		}
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		}
		return 0
	case 2:
		return strings.Compare(a.s, b.s)
	default:
		return strings.Compare(string(a.b), string(b.b))
	}
}

func typeRank(k Kind) int {
	switch k {
	case KindNull:
		return 0
	case KindInt, KindReal:
		return 1
	case KindText:
		return 2
	default:
		return 3
	}
}

// Equal reports SQL equality (NULL never equals anything; callers handle
// three-valued logic above this).
func Equal(a, b Value) bool {
	if a.IsNull() || b.IsNull() {
		return false
	}
	return Compare(a, b) == 0
}
