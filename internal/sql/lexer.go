package sql

import (
	"fmt"
	"strings"
)

// TokKind classifies lexer tokens.
type TokKind int

const (
	// TokEOF ends the input.
	TokEOF TokKind = iota
	// TokIdent is an identifier or unquoted keyword.
	TokIdent
	// TokKeyword is a recognised SQL keyword (uppercased in Text).
	TokKeyword
	// TokInt is an integer literal.
	TokInt
	// TokFloat is a float literal.
	TokFloat
	// TokString is a 'single-quoted' string literal (unescaped in Text).
	TokString
	// TokBlob is an x'hex' blob literal (decoded bytes in Blob).
	TokBlob
	// TokOp is an operator or punctuation (=, <>, <=, (, ), ",", ;, …).
	TokOp
)

// Token is one lexical unit.
type Token struct {
	Kind TokKind
	Text string
	Blob []byte
	Pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "INSERT": true, "INTO": true,
	"VALUES": true, "UPDATE": true, "SET": true, "DELETE": true, "CREATE": true,
	"TABLE": true, "DROP": true, "IF": true, "EXISTS": true, "NOT": true,
	"NULL": true, "PRIMARY": true, "KEY": true, "INTEGER": true, "INT": true,
	"TEXT": true, "REAL": true, "BLOB": true, "AND": true, "OR": true,
	"ORDER": true, "BY": true, "ASC": true, "DESC": true, "LIMIT": true,
	"OFFSET": true, "BEGIN": true, "GROUP": true, "HAVING": true, "DISTINCT": true, "COMMIT": true, "ROLLBACK": true,
	"TRANSACTION": true, "IS": true, "LIKE": true, "COUNT": true, "AS": true,
	"VACUUM": true, "DEFAULT": true, "INDEX": true, "UNIQUE": true, "ON": true, "IN": true, "BETWEEN": true,
}

// Lex tokenises a SQL string.
func Lex(src string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && src[i+1] == '-': // line comment
			for i < n && src[i] != '\n' {
				i++
			}
		case isAlpha(c):
			j := i
			for j < n && (isAlpha(src[j]) || isDigit(src[j])) {
				j++
			}
			word := src[i:j]
			up := strings.ToUpper(word)
			// x'ABCD' blob literal
			if (up == "X") && j < n && src[j] == '\'' {
				end := strings.IndexByte(src[j+1:], '\'')
				if end < 0 {
					return nil, fmt.Errorf("sql: unterminated blob literal at %d", i)
				}
				hexs := src[j+1 : j+1+end]
				b, err := decodeHex(hexs)
				if err != nil {
					return nil, fmt.Errorf("sql: bad blob literal at %d: %v", i, err)
				}
				toks = append(toks, Token{Kind: TokBlob, Blob: b, Pos: i})
				i = j + 2 + end
				continue
			}
			if keywords[up] {
				toks = append(toks, Token{Kind: TokKeyword, Text: up, Pos: i})
			} else {
				toks = append(toks, Token{Kind: TokIdent, Text: word, Pos: i})
			}
			i = j
		case isDigit(c) || (c == '.' && i+1 < n && isDigit(src[i+1])):
			j := i
			isFloat := false
			for j < n && (isDigit(src[j]) || src[j] == '.' || src[j] == 'e' || src[j] == 'E' ||
				((src[j] == '+' || src[j] == '-') && j > i && (src[j-1] == 'e' || src[j-1] == 'E'))) {
				if src[j] == '.' || src[j] == 'e' || src[j] == 'E' {
					isFloat = true
				}
				j++
			}
			kind := TokInt
			if isFloat {
				kind = TokFloat
			}
			toks = append(toks, Token{Kind: kind, Text: src[i:j], Pos: i})
			i = j
		case c == '\'':
			var sb strings.Builder
			j := i + 1
			for {
				if j >= n {
					return nil, fmt.Errorf("sql: unterminated string at %d", i)
				}
				if src[j] == '\'' {
					if j+1 < n && src[j+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(src[j])
				j++
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Pos: i})
			i = j + 1
		case c == '"' || c == '`': // quoted identifier
			q := c
			j := i + 1
			for j < n && src[j] != q {
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("sql: unterminated quoted identifier at %d", i)
			}
			toks = append(toks, Token{Kind: TokIdent, Text: src[i+1 : j], Pos: i})
			i = j + 1
		default:
			// Multi-char operators first.
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			switch two {
			case "<=", ">=", "<>", "!=", "==", "||":
				toks = append(toks, Token{Kind: TokOp, Text: two, Pos: i})
				i += 2
				continue
			}
			switch c {
			case '=', '<', '>', '+', '-', '*', '/', '%', '(', ')', ',', ';', '.':
				toks = append(toks, Token{Kind: TokOp, Text: string(c), Pos: i})
				i++
			default:
				return nil, fmt.Errorf("sql: unexpected character %q at %d", c, i)
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: n})
	return toks, nil
}

func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func decodeHex(s string) ([]byte, error) {
	if len(s)%2 != 0 {
		return nil, fmt.Errorf("odd hex length")
	}
	out := make([]byte, len(s)/2)
	for i := 0; i < len(s); i += 2 {
		hi, ok1 := hexVal(s[i])
		lo, ok2 := hexVal(s[i+1])
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("bad hex digit")
		}
		out[i/2] = hi<<4 | lo
	}
	return out, nil
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}
