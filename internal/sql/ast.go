package sql

// Stmt is a parsed SQL statement.
type Stmt interface{ stmt() }

// ColType is a declared column type.
type ColType int

const (
	// TInteger is INTEGER/INT.
	TInteger ColType = iota
	// TText is TEXT.
	TText
	// TReal is REAL.
	TReal
	// TBlob is BLOB.
	TBlob
)

func (t ColType) String() string {
	switch t {
	case TInteger:
		return "INTEGER"
	case TText:
		return "TEXT"
	case TReal:
		return "REAL"
	default:
		return "BLOB"
	}
}

// ColDef is one column definition of CREATE TABLE.
type ColDef struct {
	Name       string
	Type       ColType
	PrimaryKey bool
	NotNull    bool
}

// CreateTable is CREATE TABLE [IF NOT EXISTS] name (cols…).
type CreateTable struct {
	Name        string
	Cols        []ColDef
	IfNotExists bool
}

// DropTable is DROP TABLE [IF EXISTS] name.
type DropTable struct {
	Name     string
	IfExists bool
}

// CreateIndex is CREATE [UNIQUE] INDEX [IF NOT EXISTS] name ON table (col).
type CreateIndex struct {
	Name        string
	Table       string
	Col         string
	Unique      bool
	IfNotExists bool
}

// DropIndex is DROP INDEX [IF EXISTS] name.
type DropIndex struct {
	Name     string
	IfExists bool
}

// Insert is INSERT INTO name [(cols…)] VALUES (…), (…), ….
type Insert struct {
	Table string
	Cols  []string
	Rows  [][]Expr
}

// SelectCol is one projection of a SELECT (Star means "*").
type SelectCol struct {
	Expr  Expr
	Alias string
	Star  bool
}

// OrderTerm is one ORDER BY term.
type OrderTerm struct {
	Expr Expr
	Desc bool
}

// Select is SELECT [DISTINCT] cols FROM table [WHERE] [GROUP BY [HAVING]]
// [ORDER BY] [LIMIT [OFFSET]].
type Select struct {
	Distinct bool
	Cols     []SelectCol
	Table    string
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderTerm
	Limit    Expr // nil = none
	Offset   Expr // nil = none
}

// Update is UPDATE table SET col=expr, … [WHERE].
type Update struct {
	Table string
	Sets  []SetClause
	Where Expr
}

// SetClause is one col = expr assignment.
type SetClause struct {
	Col  string
	Expr Expr
}

// Delete is DELETE FROM table [WHERE].
type Delete struct {
	Table string
	Where Expr
}

// Begin / Commit / Rollback are transaction-control statements.
type (
	Begin    struct{}
	Commit   struct{}
	Rollback struct{}
)

// Vacuum triggers store-wide garbage collection of leaked pages.
type Vacuum struct{}

func (CreateTable) stmt() {}
func (DropTable) stmt()   {}
func (CreateIndex) stmt() {}
func (DropIndex) stmt()   {}
func (Insert) stmt()      {}
func (Select) stmt()      {}
func (Update) stmt()      {}
func (Delete) stmt()      {}
func (Begin) stmt()       {}
func (Commit) stmt()      {}
func (Rollback) stmt()    {}
func (Vacuum) stmt()      {}

// Expr is an expression tree node.
type Expr interface{ expr() }

// Literal is a constant value.
type Literal struct{ Val Value }

// Column references a column by name ("rowid" included).
type Column struct{ Name string }

// Binary applies an infix operator: comparison, arithmetic, AND/OR, LIKE,
// IS / IS NOT (null tests), ||.
type Binary struct {
	Op   string
	L, R Expr
}

// Unary applies a prefix operator: -, +, NOT.
type Unary struct {
	Op string
	X  Expr
}

// Call is a function call; Star marks COUNT(*).
type Call struct {
	Name string
	Args []Expr
	Star bool
}

// In is x [NOT] IN (e1, e2, …).
type In struct {
	X    Expr
	List []Expr
	Not  bool
}

// Between is x [NOT] BETWEEN lo AND hi.
type Between struct {
	X, Lo, Hi Expr
	Not       bool
}

func (Literal) expr() {}
func (Column) expr()  {}
func (Binary) expr()  {}
func (Unary) expr()   {}
func (Call) expr()    {}
func (In) expr()      {}
func (Between) expr() {}
