package sql

import (
	"fmt"
	"strconv"
)

// Parse parses a semicolon-separated sequence of statements.
func Parse(src string) ([]Stmt, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmts []Stmt
	for {
		for p.acceptOp(";") {
		}
		if p.peek().Kind == TokEOF {
			return stmts, nil
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
		if !p.acceptOp(";") && p.peek().Kind != TokEOF {
			return nil, p.errf("expected ';' or end of input")
		}
	}
}

// ParseOne parses exactly one statement.
func ParseOne(src string) (Stmt, error) {
	stmts, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("sql: expected one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: %s (near position %d)", fmt.Sprintf(format, args...), p.peek().Pos)
}

func (p *parser) acceptKw(kw string) bool {
	if t := p.peek(); t.Kind == TokKeyword && t.Text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errf("expected %s", kw)
	}
	return nil
}

func (p *parser) acceptOp(op string) bool {
	if t := p.peek(); t.Kind == TokOp && t.Text == op {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errf("expected %q", op)
	}
	return nil
}

// ident accepts an identifier or a non-reserved keyword used as a name.
func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.Kind == TokIdent {
		p.pos++
		return t.Text, nil
	}
	if t.Kind == TokKeyword && (t.Text == "KEY" || t.Text == "COUNT") {
		p.pos++
		return t.Text, nil
	}
	return "", p.errf("expected identifier, got %q", t.Text)
}

func (p *parser) statement() (Stmt, error) {
	t := p.peek()
	if t.Kind != TokKeyword {
		return nil, p.errf("expected statement keyword, got %q", t.Text)
	}
	switch t.Text {
	case "CREATE":
		return p.createTable()
	case "DROP":
		return p.dropTable()
	case "INSERT":
		return p.insert()
	case "SELECT":
		return p.selectStmt()
	case "UPDATE":
		return p.update()
	case "DELETE":
		return p.delete()
	case "BEGIN":
		p.pos++
		p.acceptKw("TRANSACTION")
		return Begin{}, nil
	case "COMMIT":
		p.pos++
		p.acceptKw("TRANSACTION")
		return Commit{}, nil
	case "ROLLBACK":
		p.pos++
		p.acceptKw("TRANSACTION")
		return Rollback{}, nil
	case "VACUUM":
		p.pos++
		return Vacuum{}, nil
	default:
		return nil, p.errf("unsupported statement %s", t.Text)
	}
}

func (p *parser) createTable() (Stmt, error) {
	p.pos++ // CREATE
	if p.acceptKw("UNIQUE") {
		if err := p.expectKw("INDEX"); err != nil {
			return nil, err
		}
		return p.createIndex(true)
	}
	if p.acceptKw("INDEX") {
		return p.createIndex(false)
	}
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	stmt := CreateTable{}
	if p.acceptKw("IF") {
		if err := p.expectKw("NOT"); err != nil {
			return nil, err
		}
		if err := p.expectKw("EXISTS"); err != nil {
			return nil, err
		}
		stmt.IfNotExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	stmt.Name = name
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	for {
		col, err := p.colDef()
		if err != nil {
			return nil, err
		}
		stmt.Cols = append(stmt.Cols, col)
		if p.acceptOp(",") {
			continue
		}
		break
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	if len(stmt.Cols) == 0 {
		return nil, p.errf("table needs at least one column")
	}
	return stmt, nil
}

func (p *parser) colDef() (ColDef, error) {
	var c ColDef
	name, err := p.ident()
	if err != nil {
		return c, err
	}
	c.Name = name
	t := p.peek()
	if t.Kind == TokKeyword {
		switch t.Text {
		case "INTEGER", "INT":
			c.Type = TInteger
			p.pos++
		case "TEXT":
			c.Type = TText
			p.pos++
		case "REAL":
			c.Type = TReal
			p.pos++
		case "BLOB":
			c.Type = TBlob
			p.pos++
		}
	}
	for {
		switch {
		case p.acceptKw("PRIMARY"):
			if err := p.expectKw("KEY"); err != nil {
				return c, err
			}
			c.PrimaryKey = true
		case p.acceptKw("NOT"):
			if err := p.expectKw("NULL"); err != nil {
				return c, err
			}
			c.NotNull = true
		default:
			return c, nil
		}
	}
}

// createIndex parses the remainder of CREATE [UNIQUE] INDEX.
func (p *parser) createIndex(unique bool) (Stmt, error) {
	stmt := CreateIndex{Unique: unique}
	if p.acceptKw("IF") {
		if err := p.expectKw("NOT"); err != nil {
			return nil, err
		}
		if err := p.expectKw("EXISTS"); err != nil {
			return nil, err
		}
		stmt.IfNotExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	stmt.Name = name
	if err := p.expectKw("ON"); err != nil {
		return nil, err
	}
	if stmt.Table, err = p.ident(); err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	if stmt.Col, err = p.ident(); err != nil {
		return nil, err
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return stmt, nil
}

func (p *parser) dropTable() (Stmt, error) {
	p.pos++ // DROP
	if p.acceptKw("INDEX") {
		stmt := DropIndex{}
		if p.acceptKw("IF") {
			if err := p.expectKw("EXISTS"); err != nil {
				return nil, err
			}
			stmt.IfExists = true
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		stmt.Name = name
		return stmt, nil
	}
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	stmt := DropTable{}
	if p.acceptKw("IF") {
		if err := p.expectKw("EXISTS"); err != nil {
			return nil, err
		}
		stmt.IfExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	stmt.Name = name
	return stmt, nil
}

func (p *parser) insert() (Stmt, error) {
	p.pos++ // INSERT
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	stmt := Insert{}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	stmt.Table = name
	if p.acceptOp("(") {
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			stmt.Cols = append(stmt.Cols, col)
			if p.acceptOp(",") {
				continue
			}
			break
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKw("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.acceptOp(",") {
				continue
			}
			break
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		stmt.Rows = append(stmt.Rows, row)
		if p.acceptOp(",") {
			continue
		}
		break
	}
	return stmt, nil
}

func (p *parser) selectStmt() (Stmt, error) {
	p.pos++ // SELECT
	stmt := Select{}
	if p.acceptKw("DISTINCT") {
		stmt.Distinct = true
	}
	for {
		if p.acceptOp("*") {
			stmt.Cols = append(stmt.Cols, SelectCol{Star: true})
		} else {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			sc := SelectCol{Expr: e}
			if p.acceptKw("AS") {
				alias, err := p.ident()
				if err != nil {
					return nil, err
				}
				sc.Alias = alias
			}
			stmt.Cols = append(stmt.Cols, sc)
		}
		if p.acceptOp(",") {
			continue
		}
		break
	}
	if p.acceptKw("FROM") {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		stmt.Table = name
	}
	if p.acceptKw("WHERE") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	if p.acceptKw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if p.acceptOp(",") {
				continue
			}
			break
		}
		if p.acceptKw("HAVING") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			stmt.Having = e
		}
	}
	if p.acceptKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			term := OrderTerm{Expr: e}
			if p.acceptKw("DESC") {
				term.Desc = true
			} else {
				p.acceptKw("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, term)
			if p.acceptOp(",") {
				continue
			}
			break
		}
	}
	if p.acceptKw("LIMIT") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		stmt.Limit = e
		if p.acceptKw("OFFSET") {
			o, err := p.expr()
			if err != nil {
				return nil, err
			}
			stmt.Offset = o
		}
	}
	return stmt, nil
}

func (p *parser) update() (Stmt, error) {
	p.pos++ // UPDATE
	stmt := Update{}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	stmt.Table = name
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		stmt.Sets = append(stmt.Sets, SetClause{Col: col, Expr: e})
		if p.acceptOp(",") {
			continue
		}
		break
	}
	if p.acceptKw("WHERE") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	return stmt, nil
}

func (p *parser) delete() (Stmt, error) {
	p.pos++ // DELETE
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	stmt := Delete{}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	stmt.Table = name
	if p.acceptKw("WHERE") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	return stmt, nil
}

// --- Expressions (precedence climbing) --------------------------------------

func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.acceptKw("NOT") {
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return Unary{Op: "NOT", X: x}, nil
	}
	return p.cmpExpr()
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		// x [NOT] IN (...) / x [NOT] BETWEEN lo AND hi.
		negate := false
		if t.Kind == TokKeyword && t.Text == "NOT" && p.pos+1 < len(p.toks) &&
			p.toks[p.pos+1].Kind == TokKeyword &&
			(p.toks[p.pos+1].Text == "IN" || p.toks[p.pos+1].Text == "BETWEEN" || p.toks[p.pos+1].Text == "LIKE") {
			p.pos++
			negate = true
			t = p.peek()
		}
		if t.Kind == TokKeyword && t.Text == "IN" {
			p.pos++
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			in := In{X: l, Not: negate}
			for {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				in.List = append(in.List, e)
				if p.acceptOp(",") {
					continue
				}
				break
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			l = in
			continue
		}
		if t.Kind == TokKeyword && t.Text == "BETWEEN" {
			p.pos++
			lo, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("AND"); err != nil {
				return nil, err
			}
			hi, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			l = Between{X: l, Lo: lo, Hi: hi, Not: negate}
			continue
		}
		if negate { // NOT LIKE
			if t.Kind != TokKeyword || t.Text != "LIKE" {
				return nil, p.errf("expected IN, BETWEEN or LIKE after NOT")
			}
			p.pos++
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			l = Unary{Op: "NOT", X: Binary{Op: "LIKE", L: l, R: r}}
			continue
		}
		var op string
		switch {
		case t.Kind == TokOp && (t.Text == "=" || t.Text == "==" || t.Text == "<" ||
			t.Text == ">" || t.Text == "<=" || t.Text == ">=" || t.Text == "<>" || t.Text == "!="):
			op = t.Text
			if op == "==" {
				op = "="
			}
			if op == "<>" {
				op = "!="
			}
			p.pos++
		case t.Kind == TokKeyword && t.Text == "IS":
			p.pos++
			op = "IS"
			if p.acceptKw("NOT") {
				op = "IS NOT"
			}
		case t.Kind == TokKeyword && t.Text == "LIKE":
			p.pos++
			op = "LIKE"
		default:
			return l, nil
		}
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != TokOp || (t.Text != "+" && t.Text != "-" && t.Text != "||") {
			return l, nil
		}
		p.pos++
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: t.Text, L: l, R: r}
	}
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != TokOp || (t.Text != "*" && t.Text != "/" && t.Text != "%") {
			return l, nil
		}
		p.pos++
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: t.Text, L: l, R: r}
	}
}

func (p *parser) unaryExpr() (Expr, error) {
	t := p.peek()
	if t.Kind == TokOp && (t.Text == "-" || t.Text == "+") {
		p.pos++
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return Unary{Op: t.Text, X: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokInt:
		p.pos++
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer %q", t.Text)
		}
		return Literal{Int(n)}, nil
	case TokFloat:
		p.pos++
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errf("bad float %q", t.Text)
		}
		return Literal{Real(f)}, nil
	case TokString:
		p.pos++
		return Literal{Text(t.Text)}, nil
	case TokBlob:
		p.pos++
		return Literal{Blob(t.Blob)}, nil
	case TokKeyword:
		switch t.Text {
		case "NULL":
			p.pos++
			return Literal{Null()}, nil
		case "COUNT":
			p.pos++
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			if p.acceptOp("*") {
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return Call{Name: "COUNT", Star: true}, nil
			}
			arg, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return Call{Name: "COUNT", Args: []Expr{arg}}, nil
		}
		return nil, p.errf("unexpected keyword %s in expression", t.Text)
	case TokIdent:
		p.pos++
		// function call?
		if p.acceptOp("(") {
			call := Call{Name: t.Text}
			if !p.acceptOp(")") {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if p.acceptOp(",") {
						continue
					}
					break
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
			}
			return call, nil
		}
		return Column{Name: t.Text}, nil
	case TokOp:
		if t.Text == "(" {
			p.pos++
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("unexpected token %q in expression", t.Text)
}
