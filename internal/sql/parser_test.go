package sql

import (
	"strings"
	"testing"
	"testing/quick"
)

func parseOne(t *testing.T, src string) Stmt {
	t.Helper()
	s, err := ParseOne(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return s
}

func TestParseCreateTable(t *testing.T) {
	s := parseOne(t, `CREATE TABLE IF NOT EXISTS users (
		id INTEGER PRIMARY KEY, name TEXT NOT NULL, score REAL, pic BLOB)`)
	ct, ok := s.(CreateTable)
	if !ok {
		t.Fatalf("got %T", s)
	}
	if ct.Name != "users" || !ct.IfNotExists || len(ct.Cols) != 4 {
		t.Fatalf("parsed %+v", ct)
	}
	if !ct.Cols[0].PrimaryKey || ct.Cols[0].Type != TInteger {
		t.Fatalf("col0 = %+v", ct.Cols[0])
	}
	if !ct.Cols[1].NotNull || ct.Cols[1].Type != TText {
		t.Fatalf("col1 = %+v", ct.Cols[1])
	}
}

func TestParseInsert(t *testing.T) {
	s := parseOne(t, `INSERT INTO t (a, b) VALUES (1, 'x''y'), (2.5, x'CAFE')`)
	ins := s.(Insert)
	if ins.Table != "t" || len(ins.Cols) != 2 || len(ins.Rows) != 2 {
		t.Fatalf("parsed %+v", ins)
	}
	if lit := ins.Rows[0][1].(Literal); lit.Val.AsText() != "x'y" {
		t.Fatalf("string literal = %v", lit.Val)
	}
	if lit := ins.Rows[1][1].(Literal); string(lit.Val.AsBlob()) != "\xca\xfe" {
		t.Fatalf("blob literal = %v", lit.Val)
	}
}

func TestParseSelect(t *testing.T) {
	s := parseOne(t, `SELECT id, name AS n, score * 2 FROM users
		WHERE score >= 10 AND NOT (name = 'bob' OR id < 3)
		ORDER BY score DESC, id LIMIT 10 OFFSET 5`)
	sel := s.(Select)
	if sel.Table != "users" || len(sel.Cols) != 3 {
		t.Fatalf("parsed %+v", sel)
	}
	if sel.Cols[1].Alias != "n" {
		t.Fatalf("alias = %q", sel.Cols[1].Alias)
	}
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Fatalf("order by = %+v", sel.OrderBy)
	}
	if sel.Limit == nil || sel.Offset == nil {
		t.Fatal("limit/offset missing")
	}
	b, ok := sel.Where.(Binary)
	if !ok || b.Op != "AND" {
		t.Fatalf("where = %+v", sel.Where)
	}
}

func TestParseSelectStarAndCount(t *testing.T) {
	s := parseOne(t, `SELECT * FROM t`)
	if !s.(Select).Cols[0].Star {
		t.Fatal("star not parsed")
	}
	s = parseOne(t, `SELECT COUNT(*) FROM t WHERE a IS NOT NULL`)
	c := s.(Select).Cols[0].Expr.(Call)
	if c.Name != "COUNT" || !c.Star {
		t.Fatalf("count = %+v", c)
	}
	w := s.(Select).Where.(Binary)
	if w.Op != "IS NOT" {
		t.Fatalf("where op = %q", w.Op)
	}
}

func TestParseUpdateDelete(t *testing.T) {
	s := parseOne(t, `UPDATE t SET a = a + 1, b = 'z' WHERE id = 7`)
	up := s.(Update)
	if up.Table != "t" || len(up.Sets) != 2 || up.Where == nil {
		t.Fatalf("parsed %+v", up)
	}
	s = parseOne(t, `DELETE FROM t WHERE id != 3`)
	del := s.(Delete)
	if del.Table != "t" || del.Where.(Binary).Op != "!=" {
		t.Fatalf("parsed %+v", del)
	}
}

func TestParseTransactionControl(t *testing.T) {
	stmts, err := Parse(`BEGIN; INSERT INTO t VALUES (1); COMMIT; ROLLBACK TRANSACTION`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 4 {
		t.Fatalf("%d statements", len(stmts))
	}
	if _, ok := stmts[0].(Begin); !ok {
		t.Fatalf("stmt0 = %T", stmts[0])
	}
	if _, ok := stmts[2].(Commit); !ok {
		t.Fatalf("stmt2 = %T", stmts[2])
	}
	if _, ok := stmts[3].(Rollback); !ok {
		t.Fatalf("stmt3 = %T", stmts[3])
	}
}

func TestParsePrecedence(t *testing.T) {
	s := parseOne(t, `SELECT 1 + 2 * 3 = 7 AND 1`)
	e := s.(Select).Cols[0].Expr.(Binary)
	if e.Op != "AND" {
		t.Fatalf("top op = %q", e.Op)
	}
	cmp := e.L.(Binary)
	if cmp.Op != "=" {
		t.Fatalf("cmp op = %q", cmp.Op)
	}
	add := cmp.L.(Binary)
	if add.Op != "+" {
		t.Fatalf("add op = %q", add.Op)
	}
	if add.R.(Binary).Op != "*" {
		t.Fatal("mul did not bind tighter than +")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"CREATE users",
		"INSERT t VALUES (1)",
		"SELECT FROM t",
		"SELECT * FROM t WHERE",
		"UPDATE t WHERE a = 1",
		"DELETE t",
		"INSERT INTO t VALUES (1",
		"CREATE TABLE t ()",
		"SELECT 'unterminated",
		"SELECT x'zz'",
		"FOO BAR",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("SELECT 1 -- trailing comment\n + 2")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokKind
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
	}
	if len(toks) != 5 { // SELECT 1 + 2 EOF
		t.Fatalf("tokens = %v", kinds)
	}
}

func TestValueCompareOrdering(t *testing.T) {
	order := []Value{Null(), Int(-5), Int(0), Real(0.5), Int(1), Text("a"), Text("b"), Blob([]byte("a"))}
	for i := 1; i < len(order); i++ {
		if Compare(order[i-1], order[i]) >= 0 {
			t.Fatalf("%v should sort before %v", order[i-1], order[i])
		}
	}
	if Compare(Int(3), Real(3.0)) != 0 {
		t.Fatal("3 != 3.0")
	}
}

func TestValueAccessors(t *testing.T) {
	if Int(42).AsText() != "42" || Text("42").AsInt() != 42 {
		t.Fatal("int/text coercion")
	}
	if !Int(1).Truthy() || Int(0).Truthy() || Null().Truthy() {
		t.Fatal("truthiness")
	}
	if Text("0.5").AsReal() != 0.5 {
		t.Fatal("text→real")
	}
	if Equal(Null(), Null()) {
		t.Fatal("NULL must not equal NULL")
	}
}

// Property: lexing never panics and either errors or terminates with EOF.
func TestLexerRobustness(t *testing.T) {
	f := func(s string) bool {
		toks, err := Lex(s)
		if err != nil {
			return true
		}
		return len(toks) > 0 && toks[len(toks)-1].Kind == TokEOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the parser never panics on arbitrary keyword soup.
func TestParserRobustness(t *testing.T) {
	words := []string{"SELECT", "FROM", "WHERE", "(", ")", ",", "1", "'x'",
		"a", "=", "AND", "*", "INSERT", "INTO", "VALUES", ";", "ORDER", "BY"}
	f := func(idxs []uint8) bool {
		var sb strings.Builder
		for _, i := range idxs {
			sb.WriteString(words[int(i)%len(words)])
			sb.WriteByte(' ')
		}
		_, _ = Parse(sb.String()) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
