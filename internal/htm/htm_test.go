package htm

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"fasp/internal/pmem"
)

func newEnv() (*pmem.System, *pmem.Arena, *Manager) {
	sys := pmem.NewSystem(pmem.DefaultLatencies(300, 300))
	a := sys.NewArena("pm", 4096, pmem.PM)
	return sys, a, NewManager(sys, DefaultConfig())
}

func TestCommitPublishesWrites(t *testing.T) {
	_, a, m := newEnv()
	err := m.Run(a, func(tx *Txn) error {
		tx.Store(0, []byte{1, 2, 3, 4})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Read(0, 4); !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Fatalf("committed writes missing: %v", got)
	}
	if s := m.Stats(); s.Commits != 1 || s.Begins != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestWritesInvisibleBeforeEnd(t *testing.T) {
	_, a, m := newEnv()
	err := m.Run(a, func(tx *Txn) error {
		tx.Store(0, []byte{9})
		if got := a.Read(0, 1); got[0] != 0 {
			t.Errorf("uncommitted tx write visible outside: %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReadOwnWrites(t *testing.T) {
	_, a, m := newEnv()
	a.Store(0, []byte{1, 1, 1, 1})
	err := m.Run(a, func(tx *Txn) error {
		tx.Store(1, []byte{7, 7})
		got := make([]byte, 4)
		tx.Load(0, got)
		if !bytes.Equal(got, []byte{1, 7, 7, 1}) {
			t.Errorf("read-own-writes = %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCapacityAbortOnSecondLine(t *testing.T) {
	_, a, m := newEnv()
	err := m.Run(a, func(tx *Txn) error {
		tx.Store(0, []byte{1})
		tx.Store(64, []byte{2}) // second line: capacity abort
		return nil
	})
	if !errors.Is(err, ErrCapacity) {
		t.Fatalf("err = %v, want ErrCapacity", err)
	}
	if got := a.Read(0, 1); got[0] != 0 {
		t.Fatal("aborted write leaked")
	}
	if s := m.Stats(); s.CapacityAborts != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestExplicitAbortDiscardsWrites(t *testing.T) {
	_, a, m := newEnv()
	boom := errors.New("boom")
	err := m.Run(a, func(tx *Txn) error {
		tx.Store(0, []byte{5})
		tx.Abort(boom)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if got := a.Read(0, 1); got[0] != 0 {
		t.Fatal("aborted write leaked")
	}
}

func TestErrorReturnAborts(t *testing.T) {
	_, a, m := newEnv()
	boom := errors.New("boom")
	err := m.Run(a, func(tx *Txn) error {
		tx.Store(0, []byte{5})
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if got := a.Read(0, 1); got[0] != 0 {
		t.Fatal("write from failed body leaked")
	}
}

func TestSpuriousAbortRetries(t *testing.T) {
	sys := pmem.NewSystem(pmem.DefaultLatencies(300, 300))
	a := sys.NewArena("pm", 4096, pmem.PM)
	n := 0
	cfg := DefaultConfig()
	cfg.InjectAbort = func() bool { n++; return n <= 3 }
	m := NewManager(sys, cfg)
	if err := m.Run(a, func(tx *Txn) error {
		tx.Store(0, []byte{1})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.SpuriousAborts != 3 || s.Commits != 1 || s.Begins != 4 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestRetriesExhausted(t *testing.T) {
	sys := pmem.NewSystem(pmem.DefaultLatencies(300, 300))
	a := sys.NewArena("pm", 4096, pmem.PM)
	cfg := DefaultConfig()
	cfg.MaxRetries = 2
	cfg.InjectAbort = func() bool { return true }
	m := NewManager(sys, cfg)
	err := m.Run(a, func(tx *Txn) error { tx.Store(0, []byte{1}); return nil })
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v", err)
	}
}

func TestCrashInsideTxnDiscardsEverything(t *testing.T) {
	sys, a, m := newEnv()
	sys.CrashAfter(0) // the first transactional store crashes
	crashed := sys.RunToCrash(func() {
		_ = m.Run(a, func(tx *Txn) error {
			tx.Store(0, []byte{1, 2, 3, 4, 5, 6, 7, 8})
			return nil
		})
	})
	if !crashed {
		t.Fatal("crash did not fire inside transaction")
	}
	sys.Crash(pmem.EvictAll)
	if got := a.Read(0, 8); !bytes.Equal(got, make([]byte, 8)) {
		t.Fatalf("transactional writes survived a mid-txn crash: %v", got)
	}
}

func TestAtomicLineWriteRejectsSpanningData(t *testing.T) {
	_, a, m := newEnv()
	err := m.AtomicLineWrite(a, 60, make([]byte, 8)) // crosses the 64B boundary
	if !errors.Is(err, ErrCapacity) {
		t.Fatalf("err = %v, want ErrCapacity", err)
	}
	if err := m.AtomicLineWrite(a, 64, make([]byte, 64)); err != nil {
		t.Fatalf("aligned full-line write failed: %v", err)
	}
}

// Property: AtomicLineWrite is failure-atomic — crash at every possible
// crash point leaves the line either entirely old or entirely new, under
// both eviction extremes.
func TestAtomicLineWriteFailureAtomicity(t *testing.T) {
	oldPat := bytes.Repeat([]byte{0xAA}, 64)
	newPat := bytes.Repeat([]byte{0xBB}, 64)

	// Count crash points in one uncrashed run.
	countPoints := func() int64 {
		sys := pmem.NewSystem(pmem.DefaultLatencies(300, 300))
		a := sys.NewArena("pm", 4096, pmem.PM)
		m := NewManager(sys, DefaultConfig())
		a.Store(0, oldPat)
		a.Persist(0, 64)
		base := sys.CrashPoints()
		if err := m.AtomicLineWrite(a, 0, newPat); err != nil {
			t.Fatal(err)
		}
		return sys.CrashPoints() - base
	}
	total := countPoints()
	if total == 0 {
		t.Fatal("no crash points recorded")
	}
	for _, opts := range []pmem.CrashOptions{pmem.EvictNone, pmem.EvictAll, {Seed: 42, EvictProb: 0.5}} {
		for k := int64(0); k < total; k++ {
			sys := pmem.NewSystem(pmem.DefaultLatencies(300, 300))
			a := sys.NewArena("pm", 4096, pmem.PM)
			m := NewManager(sys, DefaultConfig())
			a.Store(0, oldPat)
			a.Persist(0, 64)
			sys.CrashAfter(k)
			crashed := sys.RunToCrash(func() { _ = m.AtomicLineWrite(a, 0, newPat) })
			sys.Crash(opts)
			img := a.MediumBytes(0, 64)
			if !bytes.Equal(img, oldPat) && !bytes.Equal(img, newPat) {
				t.Fatalf("crash at point %d (opts %+v, crashed=%v): torn line %x", k, opts, crashed, img)
			}
		}
	}
}

// Property: committing arbitrary single-line writes equals applying them to
// a flat reference buffer.
func TestTxnMatchesReferenceModel(t *testing.T) {
	f := func(offs []uint8, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		_, a, m := newEnv()
		ref := make([]byte, 64)
		err := m.Run(a, func(tx *Txn) error {
			for i, o := range offs {
				off := int64(o) % 60
				b := data[i%len(data) : i%len(data)+1]
				tx.Store(off, b)
				ref[off] = b[0]
			}
			return nil
		})
		if err != nil {
			return len(offs) == 0
		}
		return bytes.Equal(a.Read(0, 64), ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAtomicLineWriteRetriesSpuriousAborts(t *testing.T) {
	sys := pmem.NewSystem(pmem.DefaultLatencies(300, 300))
	a := sys.NewArena("pm", 4096, pmem.PM)
	n := 0
	cfg := DefaultConfig()
	cfg.InjectAbort = func() bool { n++; return n <= 2 }
	m := NewManager(sys, cfg)
	if err := m.AtomicLineWrite(a, 64, bytes.Repeat([]byte{7}, 64)); err != nil {
		t.Fatal(err)
	}
	if got := a.MediumBytes(64, 64); !bytes.Equal(got, bytes.Repeat([]byte{7}, 64)) {
		t.Fatal("line not durable after retried atomic write")
	}
	if s := m.Stats(); s.SpuriousAborts != 2 || s.Commits != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestAtomicLineWriteExhaustionLeavesOldValue(t *testing.T) {
	sys := pmem.NewSystem(pmem.DefaultLatencies(300, 300))
	a := sys.NewArena("pm", 4096, pmem.PM)
	a.Store(0, bytes.Repeat([]byte{0xAA}, 64))
	a.Persist(0, 64)
	cfg := DefaultConfig()
	cfg.MaxRetries = 2
	cfg.InjectAbort = func() bool { return true }
	m := NewManager(sys, cfg)
	err := m.AtomicLineWrite(a, 0, bytes.Repeat([]byte{0xBB}, 64))
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v", err)
	}
	if got := a.MediumBytes(0, 64); !bytes.Equal(got, bytes.Repeat([]byte{0xAA}, 64)) {
		t.Fatal("failed atomic write disturbed the old value")
	}
}
