// Package htm emulates Intel Restricted Transactional Memory (RTM) on top of
// the pmem cache model, as the paper uses it (§3.2): not for isolation or
// durability, but to obtain a *failure-atomic cache-line write* — the store
// operations inside a transaction stay invisible (buffered, never evictable)
// until XEND, so a crash anywhere inside the transaction simply discards
// them, and after XEND the whole line is published to the cache at once.
// Durability then comes from an ordinary CLFLUSH *after* the transaction
// (clflush is illegal inside an RTM region).
//
// The emulator reproduces RTM's programming model: Begin/End with buffered
// write sets, capacity aborts when the write set exceeds the hardware limit
// (the paper restricts it to a single cache line), explicit aborts, and a
// retry-with-fallback discipline. Best-effort behaviour — transactions may
// spuriously abort — can be injected for testing fallback paths.
package htm

import (
	"errors"
	"fmt"

	"fasp/internal/pmem"
)

// Errors returned by Manager.Run.
var (
	// ErrCapacity reports a deterministic capacity abort: the write set
	// cannot fit the hardware limit, so retrying cannot succeed and the
	// caller must use its software fallback (slot-header logging).
	ErrCapacity = errors.New("htm: transaction write set exceeds capacity")
	// ErrRetriesExhausted reports that spurious aborts persisted past the
	// retry budget.
	ErrRetriesExhausted = errors.New("htm: retries exhausted")
)

// Config bounds the emulated hardware transaction.
type Config struct {
	// MaxWriteLines is the number of distinct cache lines a transaction may
	// write. The paper restricts transactions to one line so that the
	// post-XEND flush is failure-atomic.
	MaxWriteLines int
	// MaxReadLines bounds the read set (generously, like an L1 way-set).
	MaxReadLines int
	// MaxRetries bounds retries of spuriously aborted transactions before
	// Run gives up with ErrRetriesExhausted.
	MaxRetries int
	// InjectAbort, if non-nil, is consulted at every XEND; returning true
	// forces a spurious (best-effort) abort. Used by tests to exercise the
	// fallback path.
	InjectAbort func() bool
}

// DefaultConfig is the paper's configuration: single-line write sets.
func DefaultConfig() Config {
	return Config{MaxWriteLines: 1, MaxReadLines: 512, MaxRetries: 64}
}

// Stats counts transaction outcomes.
type Stats struct {
	Begins         int64
	Commits        int64
	CapacityAborts int64
	ExplicitAborts int64
	SpuriousAborts int64
}

// Manager issues hardware transactions against arenas of one pmem.System.
type Manager struct {
	sys   *pmem.System
	cfg   Config
	stats Stats
	// txn is the recycled transaction scratch (write set, line sets); busy
	// guards against reuse if a transaction body ever starts another one.
	txn  Txn
	busy bool
}

// NewManager creates a Manager for the system with the given config.
func NewManager(sys *pmem.System, cfg Config) *Manager {
	if cfg.MaxWriteLines <= 0 {
		cfg.MaxWriteLines = 1
	}
	if cfg.MaxReadLines <= 0 {
		cfg.MaxReadLines = 512
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 64
	}
	return &Manager{sys: sys, cfg: cfg}
}

// Stats returns a copy of the outcome counters.
func (m *Manager) Stats() Stats { return m.stats }

// abortSignal unwinds a transaction body on abort.
type abortSignal struct{ err error }

// fragment is one buffered store: at most one word, never crossing a word
// boundary (Txn.Store splits on word boundaries before buffering).
type fragment struct {
	off int64
	n   int
	buf [pmem.WordSize]byte
}

// Txn is an open hardware transaction. Its stores are buffered privately —
// they are not in the cache, cannot be evicted, and vanish if a crash or
// abort occurs before End. The write set is a flat fragment list (write
// sets are at most a few cache lines, so linear scans beat hashing and the
// buffers recycle through the Manager without allocation).
type Txn struct {
	m      *Manager
	arena  *pmem.Arena
	frags  []fragment // buffered writes, insertion order
	wlines []int64    // distinct cache lines written
	rlines []int64    // distinct cache lines read
}

func containsLine(lines []int64, l int64) bool {
	for _, x := range lines {
		if x == l {
			return true
		}
	}
	return false
}

// Store buffers a write at off. Writing more distinct cache lines than the
// hardware allows triggers an immediate capacity abort.
func (tx *Txn) Store(off int64, src []byte) {
	pos := off
	rem := src
	for len(rem) > 0 {
		n := int(pmem.WordSize - pos%pmem.WordSize)
		if n > len(rem) {
			n = len(rem)
		}
		tx.storeFragment(pos, rem[:n])
		pos += int64(n)
		rem = rem[n:]
	}
}

func (tx *Txn) storeFragment(off int64, src []byte) {
	tx.m.sys.CrashTick() // a crash here discards the whole transaction
	l := off &^ (pmem.CacheLineSize - 1)
	if !containsLine(tx.wlines, l) {
		if len(tx.wlines) >= tx.m.cfg.MaxWriteLines {
			tx.m.stats.CapacityAborts++
			panic(abortSignal{ErrCapacity})
		}
		tx.wlines = append(tx.wlines, l)
	}
	for i := range tx.frags {
		if tx.frags[i].off == off {
			f := &tx.frags[i]
			f.n = len(src)
			copy(f.buf[:], src)
			return
		}
	}
	tx.frags = append(tx.frags, fragment{off: off, n: len(src)})
	copy(tx.frags[len(tx.frags)-1].buf[:], src)
}

// StoreU16 buffers a little-endian uint16 store.
func (tx *Txn) StoreU16(off int64, v uint16) {
	var b [2]byte
	b[0], b[1] = byte(v), byte(v>>8)
	tx.Store(off, b[:])
}

// Load reads through the transaction's own pending writes, falling back to
// the arena. Reads join the read set; exceeding it aborts.
func (tx *Txn) Load(off int64, dst []byte) {
	for p := off &^ (pmem.CacheLineSize - 1); p < off+int64(len(dst)); p += pmem.CacheLineSize {
		if !containsLine(tx.rlines, p) {
			if len(tx.rlines) >= tx.m.cfg.MaxReadLines {
				tx.m.stats.CapacityAborts++
				panic(abortSignal{ErrCapacity})
			}
			tx.rlines = append(tx.rlines, p)
		}
	}
	tx.arena.Load(off, dst)
	// Overlay pending writes (read-own-writes), in buffering order.
	for i := range tx.frags {
		f := &tx.frags[i]
		end := f.off + int64(f.n)
		if end <= off || f.off >= off+int64(len(dst)) {
			continue
		}
		lo, hi := f.off, end
		if lo < off {
			lo = off
		}
		if m := off + int64(len(dst)); hi > m {
			hi = m
		}
		copy(dst[lo-off:hi-off], f.buf[lo-f.off:hi-f.off])
	}
}

// Abort explicitly aborts the transaction (XABORT); Run returns err.
func (tx *Txn) Abort(err error) {
	if err == nil {
		err = errors.New("htm: explicit abort")
	}
	tx.m.stats.ExplicitAborts++
	panic(abortSignal{err})
}

// Run executes fn as a hardware transaction (XBEGIN … XEND) with the
// paper's fallback discipline: spurious aborts retry up to the budget;
// capacity aborts and explicit aborts return immediately. On success the
// buffered write set is published to the cache atomically — the emulator
// suspends crash injection during publication, because real RTM makes the
// published lines appear all at once.
func (m *Manager) Run(arena *pmem.Arena, fn func(tx *Txn) error) error {
	for attempt := 0; attempt <= m.cfg.MaxRetries; attempt++ {
		err, abort := m.attempt(arena, fn)
		if err != nil {
			return err
		}
		if !abort {
			return nil
		}
	}
	return ErrRetriesExhausted
}

// attempt runs one transaction try. It returns (err, false) for definitive
// outcomes and (nil, true) when a spurious abort asks for a retry.
func (m *Manager) attempt(arena *pmem.Arena, fn func(tx *Txn) error) (err error, retry bool) {
	m.stats.Begins++
	tx := &m.txn
	if m.busy {
		tx = &Txn{} // nested transaction body; do not clobber the scratch
	} else {
		m.busy = true
		defer func() { m.busy = false }()
	}
	tx.m, tx.arena = m, arena
	tx.frags = tx.frags[:0]
	tx.wlines = tx.wlines[:0]
	tx.rlines = tx.rlines[:0]
	defer func() {
		if r := recover(); r != nil {
			if sig, ok := r.(abortSignal); ok {
				err = sig.err
				return
			}
			panic(r)
		}
	}()
	if ferr := fn(tx); ferr != nil {
		m.stats.ExplicitAborts++
		return ferr, false
	}
	if m.cfg.InjectAbort != nil && m.cfg.InjectAbort() {
		m.stats.SpuriousAborts++
		return nil, true
	}
	// XEND: publish the write set to the cache atomically, in ascending
	// fragment order (insertion sort: the set is tiny and must not allocate).
	for i := 1; i < len(tx.frags); i++ {
		for j := i; j > 0 && tx.frags[j].off < tx.frags[j-1].off; j-- {
			tx.frags[j], tx.frags[j-1] = tx.frags[j-1], tx.frags[j]
		}
	}
	arena.AtomicRegion(func() {
		for i := range tx.frags {
			f := &tx.frags[i]
			arena.Store(f.off, f.buf[:f.n])
		}
	})
	m.stats.Commits++
	return nil, false
}

// AtomicLineWrite performs the paper's failure-atomic cache-line write: an
// RTM transaction stores data (which must lie within a single cache line),
// and a CLFLUSH + fence after XEND makes it durable. A crash at any point
// leaves the line either entirely old or entirely new in PM. Returns
// ErrCapacity if data spans a line boundary.
func (m *Manager) AtomicLineWrite(arena *pmem.Arena, off int64, data []byte) error {
	if len(data) > pmem.CacheLineSize ||
		off&^(pmem.CacheLineSize-1) != (off+int64(len(data))-1)&^(pmem.CacheLineSize-1) {
		return fmt.Errorf("%w: %d bytes at offset %d", ErrCapacity, len(data), off)
	}
	if err := m.Run(arena, func(tx *Txn) error {
		tx.Store(off, data)
		return nil
	}); err != nil {
		return err
	}
	arena.FlushLine(off)
	m.sys.Fence()
	return nil
}
