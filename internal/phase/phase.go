// Package phase names the simulated-clock accounting buckets used to
// reproduce the paper's time-breakdown figures. Top-level phases follow
// Figure 6 (Search / Page Update / Commit); sub-phases follow the
// decompositions of Figures 7 and 8. Because the clock attributes time to
// every open phase, sub-phase times are included in their parent totals,
// exactly like the stacked bars in the paper.
package phase

// Top-level phases (Figure 6).
const (
	// Search is the root-to-leaf B-tree traversal.
	Search = "Search"
	// PageUpdate runs from locating the leaf to finishing all page updates
	// in the buffer cache, excluding commit work.
	PageUpdate = "PageUpdate"
	// Commit is the transaction commit protocol.
	Commit = "Commit"
)

// Page-update sub-phases (Figure 7).
const (
	// RecordWrite is writing the record bytes: "in-place record insert"
	// for FAST/FAST+, "volatile buffer caching" for NVWAL.
	RecordWrite = "PageUpdate/record-write"
	// SlotHeader is copying updated slot headers to the slot-header log
	// (stores only; no flushes in this phase).
	SlotHeader = "PageUpdate/update-slot-header"
	// FlushRecord is the clflush(record) cost of persisting new record
	// bytes in page free space.
	FlushRecord = "PageUpdate/clflush-record"
	// Defrag is on-demand copy-on-write defragmentation.
	Defrag = "PageUpdate/defragment"
)

// Commit sub-phases (Figure 8).
const (
	// NVWALCompute is NVWAL's differential-logging computation.
	NVWALCompute = "Commit/nvwal-computation"
	// Heap is NVWAL's user-level PM heap management (pmalloc/pfree).
	Heap = "Commit/heap-management"
	// LogFlush is flushing log/WAL frames and the commit mark to PM.
	LogFlush = "Commit/log-flush"
	// Checkpoint is eager checkpointing of slot headers (FAST/FAST+).
	Checkpoint = "Commit/checkpointing"
	// AtomicWrite is the HTM failure-atomic cache-line commit (FAST+).
	AtomicWrite = "Commit/atomic-64B-write"
	// Misc is residual commit bookkeeping (e.g. NVWAL's WAL-frame index
	// construction).
	Misc = "Commit/misc"
)
