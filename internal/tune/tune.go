// Package tune implements the per-shard adaptive controller: online
// commit-scheme selection, AIMD group-commit batch sizing, and proactive
// defragmentation scheduling.
//
// The controller is deliberately dumb about time: every input is a counter
// from the simulated machine or the shard's mailbox, accumulated over a
// fixed window of group commits, and every decision is a pure function of
// those counters. No wall clock, no randomness — the same op sequence
// always produces the same decision trace, which is what lets the trace be
// pinned in a golden file.
//
// The scheme rule follows the paper's own crossover data: FAST+ (HTM
// in-place commit) only pays off when most commits touch a single leaf and
// HTM aborts are rare; WAL amortises better once group commits grow into
// multi-page batches; FAST is the safe middle. Hysteresis (the target must
// win several consecutive windows) plus a post-migration cooldown keep the
// controller from thrashing at a boundary.
package tune

// Scheme names the controller migrates between. They match the fasp
// package's canonical Options.Scheme strings for the three schemes the
// adaptive set covers.
const (
	SchemeFASTPlus = "fast+"
	SchemeFAST     = "fast"
	SchemeWAL      = "wal"
)

// Config parameterises a Controller. Zero fields take the defaults noted.
type Config struct {
	// Window is the number of group commits per decision window (default 32).
	Window int
	// Scheme is the shard's initial commit scheme.
	Scheme string
	// MaxBatch is the configured group-commit drain bound; the AIMD range
	// is derived from it unless BatchFloor/BatchCeil are set.
	MaxBatch int
	// BatchFloor / BatchCeil clamp the adaptive batch size
	// (defaults max(1, MaxBatch/4) and MaxBatch*4).
	BatchFloor, BatchCeil int
	// BatchStep is the additive-increase step (default max(1, MaxBatch/8)).
	BatchStep int
	// MailboxCap is the shard mailbox capacity, for the hot-mailbox test.
	MailboxCap int
	// SingleLeafHi is the single-leaf commit fraction above which FAST+ is
	// preferred (default 0.5).
	SingleLeafHi float64
	// AbortHi is the HTM abort rate above which FAST+ is avoided
	// (default 0.25).
	AbortHi float64
	// BatchHi is the mean ops-per-commit above which WAL is preferred
	// (default 6).
	BatchHi float64
	// HotFrac is the mean mailbox-depth fraction of MailboxCap above which
	// the batch bound grows (default 0.5).
	HotFrac float64
	// Hysteresis is the number of consecutive windows a scheme target must
	// win before a migration is proposed (default 2).
	Hysteresis int
	// Cooldown is the number of windows after a migration during which no
	// new migration is proposed (default 2).
	Cooldown int
	// AdaptScheme / AdaptBatch enable the two control loops independently.
	AdaptScheme, AdaptBatch bool
	// TraceCap bounds the retained decision trace (default 256).
	TraceCap int
}

func (c *Config) fill() {
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.BatchFloor <= 0 {
		c.BatchFloor = c.MaxBatch / 4
		if c.BatchFloor < 1 {
			c.BatchFloor = 1
		}
	}
	if c.BatchCeil <= 0 {
		c.BatchCeil = c.MaxBatch * 4
	}
	if c.BatchStep <= 0 {
		c.BatchStep = c.MaxBatch / 8
		if c.BatchStep < 1 {
			c.BatchStep = 1
		}
	}
	if c.SingleLeafHi == 0 {
		c.SingleLeafHi = 0.5
	}
	if c.AbortHi == 0 {
		c.AbortHi = 0.25
	}
	if c.BatchHi == 0 {
		c.BatchHi = 6
	}
	if c.HotFrac == 0 {
		c.HotFrac = 0.5
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = 2
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2
	}
	if c.TraceCap <= 0 {
		c.TraceCap = 256
	}
	if c.Scheme == "" {
		c.Scheme = SchemeFASTPlus
	}
}

// Sample is one group commit's worth of signal deltas, fed to Observe by
// the shard after each committed batch. All fields are deltas or point
// observations derived from the simulated machine and the mailbox — never
// wall time.
type Sample struct {
	// Ops is the number of operations in the batch.
	Ops int
	// Commits is the store commit delta (usually 1 per batch, more when a
	// batch fell back to per-op transactions).
	Commits int64
	// SingleLeaf is the delta of commits whose write set was a single leaf
	// page (the FAST+ in-place-eligible shape).
	SingleLeaf int64
	// HTMCommit / HTMAbort are the HTM event deltas.
	HTMCommit, HTMAbort int64
	// MailDepth is the mailbox depth observed when the batch was drained.
	MailDepth int
	// Backoffs is the delta of enqueue attempts that found the mailbox full.
	Backoffs int64
	// SimNS is the simulated-time delta spent applying the batch.
	SimNS int64
}

// Decision is one closed window's trace record. The shard fills the
// outcome fields (Migrated, FragRatio, DefragPages) after acting on it.
type Decision struct {
	// Window is the 1-based decision-window ordinal.
	Window int `json:"window"`
	// Scheme is the scheme the window ran under.
	Scheme string `json:"scheme"`
	// Target is the scheme the rule picked for the observed signals.
	Target string `json:"target"`
	// Migrate is the proposed migration ("" = stay).
	Migrate string `json:"migrate,omitempty"`
	// Migrated reports whether the shard completed the migration.
	Migrated bool `json:"migrated,omitempty"`
	// SingleLeafPct / AbortPct are the window's signal percentages
	// (integer, rounded down — keeps the trace arithmetic exact).
	SingleLeafPct int `json:"single_leaf_pct"`
	AbortPct      int `json:"abort_pct"`
	// MeanBatchX10 is the mean ops-per-commit × 10 (integer).
	MeanBatchX10 int `json:"mean_batch_x10"`
	// MaxBatch is the live batch bound after this window's AIMD step.
	MaxBatch int `json:"max_batch"`
	// FragPct is the measured fragmentation ratio × 100 at window close
	// (-1 when not measured).
	FragPct int `json:"frag_pct"`
	// DefragPages is the number of pages the proactive defrag pass rewrote.
	DefragPages int `json:"defrag_pages,omitempty"`
}

// Controller runs the three adaptive loops for one shard. It is not
// internally synchronised: the owning shard calls it with the shard lock
// held.
type Controller struct {
	cfg Config

	scheme   string
	maxBatch int

	// Window accumulators.
	n          int
	ops        int64
	commits    int64
	singleLeaf int64
	htmCommit  int64
	htmAbort   int64
	mailDepth  int64
	backoffs   int64
	simNS      int64

	// Scheme hysteresis / cooldown state.
	agree    string
	agreeN   int
	cooldown int

	windows int
	trace   []Decision
}

// New builds a controller; cfg.Scheme and cfg.MaxBatch seed the live state.
func New(cfg Config) *Controller {
	cfg.fill()
	mb := cfg.MaxBatch
	if mb < cfg.BatchFloor {
		mb = cfg.BatchFloor
	}
	if mb > cfg.BatchCeil {
		mb = cfg.BatchCeil
	}
	return &Controller{cfg: cfg, scheme: cfg.Scheme, maxBatch: mb}
}

// Scheme returns the scheme the controller believes the shard runs under.
func (c *Controller) Scheme() string { return c.scheme }

// MaxBatch returns the live adaptive batch bound.
func (c *Controller) MaxBatch() int { return c.maxBatch }

// Windows returns the number of closed decision windows.
func (c *Controller) Windows() int { return c.windows }

// Trace returns the retained decision records, oldest first. The returned
// slice aliases the controller's ring; callers must not mutate it.
func (c *Controller) Trace() []Decision { return c.trace }

// SetScheme records a completed migration: the live scheme changes, the
// hysteresis resets, and the cooldown starts. The shard calls it only
// after the tag flip and store swap succeeded.
func (c *Controller) SetScheme(s string) {
	c.scheme = s
	c.agree = ""
	c.agreeN = 0
	c.cooldown = c.cfg.Cooldown
}

// Observe feeds one batch sample. When the sample closes a decision
// window it returns a pointer to the freshly appended trace record — the
// shard acts on Migrate/MaxBatch and fills the outcome fields through the
// pointer — and true. Otherwise it returns nil, false.
func (c *Controller) Observe(s Sample) (*Decision, bool) {
	c.n++
	c.ops += int64(s.Ops)
	c.commits += s.Commits
	c.singleLeaf += s.SingleLeaf
	c.htmCommit += s.HTMCommit
	c.htmAbort += s.HTMAbort
	c.mailDepth += int64(s.MailDepth)
	c.backoffs += s.Backoffs
	c.simNS += s.SimNS
	if c.n < c.cfg.Window {
		return nil, false
	}
	return c.closeWindow(), true
}

// closeWindow computes the window's signals, runs the scheme rule and the
// AIMD step, appends the trace record and resets the accumulators.
func (c *Controller) closeWindow() *Decision {
	c.windows++
	d := Decision{
		Window:   c.windows,
		Scheme:   c.scheme,
		MaxBatch: c.maxBatch,
		FragPct:  -1,
	}

	// Window signals, integer-scaled for the trace.
	var singleLeafFrac, abortRate, meanBatch float64
	if c.commits > 0 {
		singleLeafFrac = float64(c.singleLeaf) / float64(c.commits)
		meanBatch = float64(c.ops) / float64(c.commits)
	}
	if t := c.htmCommit + c.htmAbort; t > 0 {
		abortRate = float64(c.htmAbort) / float64(t)
	}
	d.SingleLeafPct = int(singleLeafFrac * 100)
	d.AbortPct = int(abortRate * 100)
	d.MeanBatchX10 = int(meanBatch * 10)

	// Scheme rule.
	target := c.scheme
	if c.cfg.AdaptScheme {
		switch {
		case meanBatch >= c.cfg.BatchHi:
			target = SchemeWAL
		case singleLeafFrac >= c.cfg.SingleLeafHi && abortRate <= c.cfg.AbortHi:
			target = SchemeFASTPlus
		default:
			target = SchemeFAST
		}
	}
	d.Target = target

	if c.cfg.AdaptScheme {
		if c.cooldown > 0 {
			c.cooldown--
			c.agree = ""
			c.agreeN = 0
		} else if target != c.scheme {
			if target == c.agree {
				c.agreeN++
			} else {
				c.agree = target
				c.agreeN = 1
			}
			if c.agreeN >= c.cfg.Hysteresis {
				d.Migrate = target
			}
		} else {
			c.agree = ""
			c.agreeN = 0
		}
	}

	// AIMD batch step, driven purely by mailbox pressure: grow additively
	// while enqueuers back off or the queue runs deep, decay multiplicatively
	// back toward the configured bound once the queue fully drains. Per-op
	// simulated latency is deliberately not an input — it rises whenever the
	// tree deepens, and reacting to it ratchets the bound to the floor on
	// workloads with no queueing at all (the deterministic ApplyBatch path).
	if c.cfg.AdaptBatch {
		meanDepth := float64(c.mailDepth) / float64(c.n)
		hot := c.backoffs > 0 ||
			(c.cfg.MailboxCap > 0 && meanDepth >= c.cfg.HotFrac*float64(c.cfg.MailboxCap))
		switch {
		case hot:
			c.maxBatch += c.cfg.BatchStep
		case c.mailDepth == 0 && c.maxBatch > c.cfg.MaxBatch:
			c.maxBatch /= 2
			if c.maxBatch < c.cfg.MaxBatch {
				c.maxBatch = c.cfg.MaxBatch
			}
		}
		if c.maxBatch < c.cfg.BatchFloor {
			c.maxBatch = c.cfg.BatchFloor
		}
		if c.maxBatch > c.cfg.BatchCeil {
			c.maxBatch = c.cfg.BatchCeil
		}
		d.MaxBatch = c.maxBatch
	}

	// Reset accumulators for the next window.
	c.n = 0
	c.ops = 0
	c.commits = 0
	c.singleLeaf = 0
	c.htmCommit = 0
	c.htmAbort = 0
	c.mailDepth = 0
	c.backoffs = 0
	c.simNS = 0

	if len(c.trace) >= c.cfg.TraceCap {
		copy(c.trace, c.trace[1:])
		c.trace = c.trace[:len(c.trace)-1]
	}
	c.trace = append(c.trace, d)
	return &c.trace[len(c.trace)-1]
}
