package tune

import "testing"

// feedWindow feeds one full window of identical samples and returns the
// closing decision.
func feedWindow(t *testing.T, c *Controller, s Sample) *Decision {
	t.Helper()
	for i := 0; i < 31; i++ {
		if d, closed := c.Observe(s); closed || d != nil {
			t.Fatalf("window closed early at sample %d", i)
		}
	}
	d, closed := c.Observe(s)
	if !closed || d == nil {
		t.Fatalf("window did not close")
	}
	return d
}

// singleLeafSample is the FAST+-favouring shape: every commit single-leaf,
// no aborts, batch of one.
var singleLeafSample = Sample{Ops: 1, Commits: 1, SingleLeaf: 1, HTMCommit: 1, SimNS: 1000}

// bigBatchSample is the WAL-favouring shape: large multi-page batches.
var bigBatchSample = Sample{Ops: 10, Commits: 1, SimNS: 5000}

// mixedSample favours FAST: small batches, low single-leaf ratio.
var mixedSample = Sample{Ops: 2, Commits: 1, SimNS: 2000}

func TestSchemeRuleTargets(t *testing.T) {
	cases := []struct {
		name   string
		s      Sample
		target string
	}{
		{"single-leaf", singleLeafSample, SchemeFASTPlus},
		{"big-batch", bigBatchSample, SchemeWAL},
		{"mixed", mixedSample, SchemeFAST},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := New(Config{Scheme: SchemeFASTPlus, AdaptScheme: true})
			d := feedWindow(t, c, tc.s)
			if d.Target != tc.target {
				t.Fatalf("target = %q, want %q", d.Target, tc.target)
			}
		})
	}
}

func TestHysteresisDelaysMigration(t *testing.T) {
	c := New(Config{Scheme: SchemeFASTPlus, AdaptScheme: true, Hysteresis: 2})
	// First window disagreeing with the live scheme: no migration yet.
	d := feedWindow(t, c, bigBatchSample)
	if d.Migrate != "" {
		t.Fatalf("migration proposed after one window, want hysteresis delay")
	}
	// Second consecutive window: migration proposed.
	d = feedWindow(t, c, bigBatchSample)
	if d.Migrate != SchemeWAL {
		t.Fatalf("migrate = %q, want %q", d.Migrate, SchemeWAL)
	}
	// The shard completes it; cooldown suppresses immediate flapping.
	c.SetScheme(SchemeWAL)
	if c.Scheme() != SchemeWAL {
		t.Fatalf("scheme = %q after SetScheme", c.Scheme())
	}
	for i := 0; i < 2; i++ {
		if d = feedWindow(t, c, singleLeafSample); d.Migrate != "" {
			t.Fatalf("migration proposed during cooldown window %d", i)
		}
	}
	// After cooldown, two agreeing windows migrate back.
	feedWindow(t, c, singleLeafSample)
	d = feedWindow(t, c, singleLeafSample)
	if d.Migrate != SchemeFASTPlus {
		t.Fatalf("migrate = %q after cooldown, want %q", d.Migrate, SchemeFASTPlus)
	}
}

func TestAIMDBatchGrowAndDecay(t *testing.T) {
	c := New(Config{MaxBatch: 64, AdaptBatch: true, MailboxCap: 100})
	if c.MaxBatch() != 64 {
		t.Fatalf("initial MaxBatch = %d", c.MaxBatch())
	}
	// No queue signal at all (the deterministic ApplyBatch path): the bound
	// must not move — latency is not an AIMD input.
	idle := Sample{Ops: 4, Commits: 1, SimNS: 8000}
	d := feedWindow(t, c, idle)
	if d.MaxBatch != 64 {
		t.Fatalf("MaxBatch after idle window = %d, want 64 (no queue signal)", d.MaxBatch)
	}
	// Hot mailbox (backoffs observed): additive growth.
	hot := Sample{Ops: 4, Commits: 1, Backoffs: 1, MailDepth: 90, SimNS: 4000}
	d = feedWindow(t, c, hot)
	if d.MaxBatch != 64+8 {
		t.Fatalf("MaxBatch after hot window = %d, want 72", d.MaxBatch)
	}
	// Sustained pressure saturates at the ceiling (MaxBatch*4).
	for i := 0; i < 30; i++ {
		d = feedWindow(t, c, hot)
	}
	if d.MaxBatch != 256 {
		t.Fatalf("MaxBatch ceiling = %d, want 256", d.MaxBatch)
	}
	// Queue fully drained: multiplicative decay back toward the configured
	// bound, never below it.
	d = feedWindow(t, c, idle)
	if d.MaxBatch != 128 {
		t.Fatalf("MaxBatch after drain = %d, want 128", d.MaxBatch)
	}
	for i := 0; i < 5; i++ {
		d = feedWindow(t, c, idle)
	}
	if d.MaxBatch != 64 {
		t.Fatalf("MaxBatch after full decay = %d, want 64 (configured bound)", d.MaxBatch)
	}
}

func TestDeterministicTrace(t *testing.T) {
	run := func() []Decision {
		c := New(Config{Scheme: SchemeFAST, AdaptScheme: true, AdaptBatch: true, MailboxCap: 64})
		seq := []Sample{singleLeafSample, bigBatchSample, mixedSample}
		for i := 0; i < 32*6; i++ {
			c.Observe(seq[i%len(seq)])
		}
		out := make([]Decision, len(c.Trace()))
		copy(out, c.Trace())
		return out
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatalf("no windows closed")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverged at window %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestTraceCapBounded(t *testing.T) {
	c := New(Config{Window: 1, TraceCap: 4, AdaptScheme: true})
	for i := 0; i < 20; i++ {
		c.Observe(mixedSample)
	}
	if len(c.Trace()) != 4 {
		t.Fatalf("trace len = %d, want 4", len(c.Trace()))
	}
	if got := c.Trace()[3].Window; got != 20 {
		t.Fatalf("newest window = %d, want 20", got)
	}
}
