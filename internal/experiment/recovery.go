package experiment

import (
	"fmt"
	"io"

	"fasp/internal/btree"
	"fasp/internal/fast"
	"fasp/internal/metrics"
	"fasp/internal/pager"
	"fasp/internal/pmem"
	"fasp/internal/wal"
	"fasp/internal/workload"
)

// RecoveryRow is one point of the recovery-time experiment.
type RecoveryRow struct {
	Scheme Scheme
	Txns   int   // committed transactions since the last checkpoint
	NS     int64 // simulated recovery time
}

// RecoveryPoints are the transactions-since-checkpoint sweep.
var RecoveryPoints = []int{100, 1000, 5000, 20000}

// RunRecovery measures crash-recovery time as a function of the work
// accumulated since the last checkpoint. The experiment substantiates the
// design argument behind the paper's *eager* checkpointing (§3.3): FAST's
// slot-header log never holds more than one transaction, so its recovery
// cost is constant, while NVWAL must replay every uncheckpointed WAL frame.
func RunRecovery(p Params) ([]RecoveryRow, error) {
	p.fill()
	var rows []RecoveryRow
	for _, txns := range RecoveryPoints {
		for _, s := range PaperSchemes {
			sys := pmem.NewSystem(pmem.DefaultLatencies(300, 300))
			var arena *pmem.Arena
			attach := func() (interface{ Recover() error }, error) { return nil, nil }
			switch s {
			case FAST, FASTPlus:
				variant := fast.SlotHeaderLogging
				if s == FASTPlus {
					variant = fast.InPlaceCommit
				}
				cfg := fast.Config{PageSize: p.PageSize, MaxPages: txns/2 + 4096, Variant: variant}
				st := fast.Create(sys, cfg)
				arena = st.Arena()
				if err := fill(st, txns, p.Seed); err != nil {
					return nil, err
				}
				attach = func() (interface{ Recover() error }, error) {
					return fast.Attach(arena, cfg)
				}
			default:
				// Disable lazy checkpointing so the WAL accumulates all
				// transactions, the worst case NVWAL's laziness permits.
				cfg := wal.Config{PageSize: p.PageSize, MaxPages: txns/2 + 4096,
					LogBytes: 1 << 30, CheckpointBytes: 1 << 62, Kind: wal.NVWAL}
				st := wal.Create(sys, cfg)
				arena = st.Arena()
				if err := fill(st, txns, p.Seed); err != nil {
					return nil, err
				}
				attach = func() (interface{ Recover() error }, error) {
					return wal.Attach(arena, cfg)
				}
			}
			// Power failure; committed data must survive, so nothing is
			// evicted beyond what the protocols flushed.
			sys.Crash(pmem.EvictNone)
			st2, err := attach()
			if err != nil {
				return nil, err
			}
			t0 := sys.Clock().Now()
			if err := st2.Recover(); err != nil {
				return nil, fmt.Errorf("%v recover: %w", s, err)
			}
			rows = append(rows, RecoveryRow{Scheme: s, Txns: txns, NS: sys.Clock().Now() - t0})
		}
	}
	return rows, nil
}

// fill inserts txns single-record transactions through the B-tree.
func fill(st pager.Store, txns int, seed int64) error {
	tr := btree.New(st)
	gen := workload.New(workload.Config{Seed: seed, RecordSize: 64})
	for i := 0; i < txns; i++ {
		if err := tr.Insert(gen.NextKey(), gen.NextValue()); err != nil {
			return err
		}
	}
	return nil
}

// PrintRecovery renders the recovery experiment.
func PrintRecovery(rows []RecoveryRow, w io.Writer) {
	t := metrics.NewTable(
		"Recovery time vs transactions since last checkpoint (PM 300/300)",
		"txns", "scheme", "recovery(us)")
	for _, r := range rows {
		t.AddRow(r.Txns, r.Scheme.String(), metrics.UsecF(r.NS))
	}
	t.Render(w)
}
