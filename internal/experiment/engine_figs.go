package experiment

import (
	"fmt"
	"io"

	"fasp/internal/engine"
	"fasp/internal/metrics"
	"fasp/internal/pmem"
	"fasp/internal/workload"
)

// --- Figure 11: full query response time ---------------------------------------

// Fig11Row is one point of Figure 11: the response time of a complete
// INSERT statement through the SQL engine (parsing and statement execution
// included, unlike Figures 6–9).
type Fig11Row struct {
	Latency    int64
	Scheme     Scheme
	ResponseNS int64 // average per-statement response time
	P99NS      int64
	// ImprovementPct is the response-time improvement vs NVWAL at the same
	// latency (positive = faster than NVWAL); 0 for NVWAL itself.
	ImprovementPct float64
}

// RunFig11 reproduces Figure 11: per-query response time of the full SQL
// path, sweeping PM latency. The paper's headline is FAST+ improving query
// response time by up to 33 % over NVWAL.
func RunFig11(p Params) ([]Fig11Row, error) {
	p.fill()
	var rows []Fig11Row
	for _, lat := range LatencyPoints {
		base := int64(0)
		for _, s := range PaperSchemes {
			e, db := NewEngineEnv(s, pmem.DefaultLatencies(lat, lat), p)
			if _, err := db.Exec(`CREATE TABLE log (id INTEGER PRIMARY KEY, payload BLOB)`); err != nil {
				return nil, err
			}
			gen := workload.New(workload.Config{Seed: p.Seed, RecordSize: 64})
			clock := e.Sys.Clock()
			samples := make([]int64, 0, p.N)
			for i := 1; i <= p.N; i++ {
				stmt := workload.SQLInsert("log", uint64(i), gen.NextValue())
				t0 := clock.Now()
				if _, err := db.Exec(stmt); err != nil {
					return nil, fmt.Errorf("%v stmt %d: %w", s, i, err)
				}
				samples = append(samples, clock.Now()-t0)
			}
			var total int64
			for _, d := range samples {
				total += d
			}
			avg := total / int64(len(samples))
			row := Fig11Row{
				Latency:    lat,
				Scheme:     s,
				ResponseNS: avg,
				P99NS:      workload.Percentile(samples, 99),
			}
			if s == NVWAL {
				base = avg
			} else if base > 0 {
				row.ImprovementPct = 100 * (1 - float64(avg)/float64(base))
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// PrintFig11 renders Figure 11.
func PrintFig11(rows []Fig11Row, w io.Writer) {
	t := metrics.NewTable(
		"Figure 11: full SQL INSERT response time vs PM latency (parse+execute included)",
		"lat(ns)", "scheme", "us/stmt", "p99(us)", "vs NVWAL")
	for _, r := range rows {
		imp := "-"
		if r.Scheme != NVWAL {
			imp = fmt.Sprintf("%+.1f%%", r.ImprovementPct)
		}
		t.AddRow(LatencyLabel(r.Latency, r.Latency), r.Scheme.String(),
			metrics.UsecF(r.ResponseNS), metrics.UsecF(r.P99NS), imp)
	}
	t.Render(w)
}

// --- Figure 12: mixed-workload throughput ---------------------------------------

// Fig12Row is one point of Figure 12 (reconstructed companion of Figure 11:
// throughput of mixed CRUD statement streams through the full engine).
type Fig12Row struct {
	Latency int64
	Scheme  Scheme
	Mix     string
	// ThroughputKTPS is thousands of statements per simulated second.
	ThroughputKTPS float64
	PerStmtNS      int64
}

// Fig12Mixes are the workload mixes of the throughput experiment.
var Fig12Mixes = []struct {
	Name string
	Mix  workload.Mix
}{
	{"insert-only", workload.MobileMix},
	{"mixed-crud", workload.BalancedMix},
}

// RunFig12 reproduces the mixed-workload throughput comparison at PM
// 300/300 and 900/900.
func RunFig12(p Params) ([]Fig12Row, error) {
	p.fill()
	var rows []Fig12Row
	for _, lat := range []int64{300, 900} {
		for _, mix := range Fig12Mixes {
			for _, s := range PaperSchemes {
				e, db := NewEngineEnv(s, pmem.DefaultLatencies(lat, lat), p)
				if _, err := db.Exec(`CREATE TABLE kv (id INTEGER PRIMARY KEY, payload BLOB)`); err != nil {
					return nil, err
				}
				gen := workload.New(workload.Config{Seed: p.Seed, RecordSize: 64, KeySpace: uint64(p.N) * 4})
				clock := e.Sys.Clock()
				start := clock.Now()
				nextID := 1
				live := map[int]bool{}
				for i := 0; i < p.N; i++ {
					var stmt string
					switch gen.NextOp(mix.Mix) {
					case workload.OpInsert:
						stmt = workload.SQLInsert("kv", uint64(nextID), gen.NextValue())
						live[nextID] = true
						nextID++
					case workload.OpUpdate:
						id := pickLive(live, nextID)
						stmt = fmt.Sprintf("UPDATE kv SET payload = x'%x' WHERE id = %d", gen.NextValue(), id)
					case workload.OpDelete:
						id := pickLive(live, nextID)
						stmt = fmt.Sprintf("DELETE FROM kv WHERE id = %d", id)
						delete(live, id)
					default:
						id := pickLive(live, nextID)
						stmt = fmt.Sprintf("SELECT payload FROM kv WHERE id = %d", id)
					}
					if _, err := db.Exec(stmt); err != nil {
						return nil, fmt.Errorf("%v mixed stmt: %w", s, err)
					}
				}
				elapsed := clock.Now() - start
				rows = append(rows, Fig12Row{
					Latency: lat, Scheme: s, Mix: mix.Name,
					ThroughputKTPS: float64(p.N) / (float64(elapsed) / 1e9) / 1000,
					PerStmtNS:      elapsed / int64(p.N),
				})
			}
		}
	}
	return rows, nil
}

func pickLive(live map[int]bool, nextID int) int {
	// Deterministic-enough pick: the smallest live id; falls back to 1.
	for id := range live {
		return id
	}
	_ = nextID
	return 1
}

// PrintFig12 renders Figure 12.
func PrintFig12(rows []Fig12Row, w io.Writer) {
	t := metrics.NewTable(
		"Figure 12: full-engine throughput on statement streams (simulated kTPS)",
		"lat(ns)", "mix", "scheme", "kTPS", "us/stmt")
	for _, r := range rows {
		t.AddRow(LatencyLabel(r.Latency, r.Latency), r.Mix, r.Scheme.String(),
			r.ThroughputKTPS, metrics.UsecF(r.PerStmtNS))
	}
	t.Render(w)
}

// EngineOverheadNS exposes the modelled SQL front-end cost for EXPERIMENTS.md.
func EngineOverheadNS() int64 { return engine.Open(nil).StatementOverheadNS }
