package experiment

import (
	"io"
	"math/rand"

	"fasp/internal/btree"
	"fasp/internal/fast"
	"fasp/internal/htm"
	"fasp/internal/metrics"
	"fasp/internal/phase"
	"fasp/internal/pmem"
)

// --- Ablation 1: all five schemes on the mobile workload ------------------------

// AblRow is one row of the scheme ablation.
type AblRow struct {
	Scheme   Scheme
	TotalNS  int64
	CommitNS int64
	Flushes  float64
	BytesLog int64 // bytes written to log/journal per insert
}

// RunAblationSchemes compares all five schemes — the paper's three plus the
// classic full-page WAL and rollback journal (Figure 1's mechanisms) — on
// the single-insert mobile workload at PM 300/300. It quantifies why the
// paper dismisses page-granularity logging outright.
func RunAblationSchemes(p Params) ([]AblRow, error) {
	p.fill()
	var rows []AblRow
	for _, s := range AllSchemes {
		e := NewEnv(s, pmem.DefaultLatencies(300, 300), p)
		m, err := RunInserts(e, p.N, 64, 1, p.Seed)
		if err != nil {
			return nil, err
		}
		logBytes := m.WALBytes
		if s == FAST || s == FASTPlus {
			logBytes = m.LoggedBytes
		}
		rows = append(rows, AblRow{
			Scheme:   s,
			TotalNS:  m.PerInsertNS(),
			CommitNS: m.PhasePer(phase.Commit),
			Flushes:  m.FlushesPerInsert(),
			BytesLog: logBytes / int64(m.N),
		})
	}
	return rows, nil
}

// PrintAblationSchemes renders the scheme ablation.
func PrintAblationSchemes(rows []AblRow, w io.Writer) {
	t := metrics.NewTable(
		"Ablation: all recovery schemes, single-insert workload at PM 300/300",
		"scheme", "us/insert", "commit(us)", "clflush/insert", "logB/insert")
	for _, r := range rows {
		t.AddRow(r.Scheme.String(), metrics.UsecF(r.TotalNS),
			metrics.UsecF(r.CommitNS), r.Flushes, r.BytesLog)
	}
	t.Render(w)
}

// --- Ablation 2: page-size sweep --------------------------------------------------

// PageSizeRow is one row of the page-size ablation.
type PageSizeRow struct {
	PageSize int
	Scheme   Scheme
	TotalNS  int64
	Splits   int64
	InPlace  int64
}

// RunAblationPageSize sweeps the database page size. Larger pages raise the
// cost of page-granular schemes but barely affect FAST's metadata-only
// logging; smaller pages split more often, pushing FAST+ off its in-place
// path more frequently.
func RunAblationPageSize(p Params) ([]PageSizeRow, error) {
	p.fill()
	var rows []PageSizeRow
	for _, ps := range []int{1024, 4096, 16384} {
		for _, s := range PaperSchemes {
			pp := p
			pp.PageSize = ps
			e := NewEnv(s, pmem.DefaultLatencies(300, 300), pp)
			m, err := RunInserts(e, p.N, 64, 1, p.Seed)
			if err != nil {
				return nil, err
			}
			rows = append(rows, PageSizeRow{
				PageSize: ps, Scheme: s,
				TotalNS: m.PerInsertNS(), Splits: m.Splits, InPlace: m.InPlaceCommits,
			})
		}
	}
	return rows, nil
}

// PrintAblationPageSize renders the page-size ablation.
func PrintAblationPageSize(rows []PageSizeRow, w io.Writer) {
	t := metrics.NewTable(
		"Ablation: page-size sweep at PM 300/300",
		"page(B)", "scheme", "us/insert", "splits", "in-place-commits")
	for _, r := range rows {
		t.AddRow(r.PageSize, r.Scheme.String(), metrics.UsecF(r.TotalNS),
			r.Splits, r.InPlace)
	}
	t.Render(w)
}

// --- Ablation 3: HTM best-effort aborts --------------------------------------------

// HTMAbortRow is one row of the HTM-reliability ablation.
type HTMAbortRow struct {
	AbortProb float64
	TotalNS   int64
	CommitNS  int64
	InPlace   int64
	Spurious  int64
}

// RunAblationHTMAborts injects spurious (best-effort) RTM aborts into FAST+
// at increasing probability, quantifying the cost of the paper's
// retry-until-success fallback handler (§3.2 footnote 1).
func RunAblationHTMAborts(p Params) ([]HTMAbortRow, error) {
	p.fill()
	var rows []HTMAbortRow
	for _, prob := range []float64{0, 0.01, 0.1, 0.5} {
		sys := pmem.NewSystem(pmem.DefaultLatencies(300, 300))
		cfg := htm.DefaultConfig()
		if prob > 0 {
			rng := rand.New(rand.NewSource(p.Seed))
			cfg.InjectAbort = func() bool { return rng.Float64() < prob }
		}
		st := fast.Create(sys, fast.Config{
			PageSize: p.PageSize, MaxPages: p.MaxPages,
			Variant: fast.InPlaceCommit, HTM: cfg,
		})
		e := &Env{Scheme: FASTPlus, Sys: sys, Store: st, Tree: btree.New(st), PM: st.Arena()}
		m, err := RunInserts(e, p.N, 64, 1, p.Seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, HTMAbortRow{
			AbortProb: prob,
			TotalNS:   m.PerInsertNS(),
			CommitNS:  m.PhasePer(phase.Commit),
			InPlace:   m.InPlaceCommits,
			Spurious:  st.HTMStats().SpuriousAborts,
		})
	}
	return rows, nil
}

// PrintAblationHTMAborts renders the HTM ablation.
func PrintAblationHTMAborts(rows []HTMAbortRow, w io.Writer) {
	t := metrics.NewTable(
		"Ablation: FAST+ under best-effort HTM aborts at PM 300/300",
		"abort-prob", "us/insert", "commit(us)", "in-place-commits", "spurious-aborts")
	for _, r := range rows {
		t.AddRow(r.AbortProb, metrics.UsecF(r.TotalNS), metrics.UsecF(r.CommitNS),
			r.InPlace, r.Spurious)
	}
	t.Render(w)
}
