package experiment

import (
	"fmt"

	"fasp/internal/fast"
	"fasp/internal/phase"
	"fasp/internal/pmem"
	"fasp/internal/wal"
	"fasp/internal/workload"
)

// InsertMeasurement aggregates one insert-workload run.
type InsertMeasurement struct {
	Scheme  Scheme
	N       int
	TotalNS int64            // simulated ns across the measured region
	Phases  map[string]int64 // phase totals (simulated ns)
	PM      pmem.Stats       // PM arena counter deltas
	Fences  int64
	// Scheme-level counters (zero-valued where not applicable).
	InPlaceCommits int64
	LogCommits     int64
	LoggedBytes    int64
	WALBytes       int64
	WALFrames      int64
	Splits         int64
	Defrags        int64
}

// PerInsertNS returns the average simulated time per transaction.
func (m InsertMeasurement) PerInsertNS() int64 {
	if m.N == 0 {
		return 0
	}
	return m.TotalNS / int64(m.N)
}

// PhasePer returns a phase's average per transaction in ns.
func (m InsertMeasurement) PhasePer(name string) int64 {
	if m.N == 0 {
		return 0
	}
	return m.Phases[name] / int64(m.N)
}

// FlushesPerInsert returns the clflush instructions per transaction.
func (m InsertMeasurement) FlushesPerInsert() float64 {
	if m.N == 0 {
		return 0
	}
	return float64(m.PM.FlushCalls) / float64(m.N)
}

// RunInserts measures n single-record insert transactions of recSize-byte
// values with random keys (the paper's default microbenchmark), optionally
// batching batch inserts per transaction (batch > 1 exercises the
// multi-page logging paths, Figure 10).
func RunInserts(e *Env, n, recSize, batch int, seed int64) (InsertMeasurement, error) {
	if batch < 1 {
		batch = 1
	}
	gen := workload.New(workload.Config{Seed: seed, RecordSize: recSize})
	clock := e.Sys.Clock()
	clock.ResetPhases()
	pmBefore := e.PM.Stats()
	fencesBefore := e.Sys.Fences()
	start := clock.Now()

	txns := n / batch
	if txns == 0 {
		txns = 1
	}
	for t := 0; t < txns; t++ {
		if batch == 1 {
			if err := e.Tree.Insert(gen.NextKey(), gen.NextValue()); err != nil {
				return InsertMeasurement{}, fmt.Errorf("%v insert %d: %w", e.Scheme, t, err)
			}
			continue
		}
		tx, err := e.Tree.Begin()
		if err != nil {
			return InsertMeasurement{}, err
		}
		for b := 0; b < batch; b++ {
			if err := tx.Insert(gen.NextKey(), gen.NextValue()); err != nil {
				tx.Rollback()
				return InsertMeasurement{}, fmt.Errorf("%v batch insert: %w", e.Scheme, err)
			}
		}
		if err := tx.Commit(); err != nil {
			return InsertMeasurement{}, err
		}
	}

	m := InsertMeasurement{
		Scheme:  e.Scheme,
		N:       txns * batch,
		TotalNS: clock.Now() - start,
		Phases:  clock.Phases(),
		PM:      e.PM.Stats().Delta(pmBefore),
		Fences:  e.Sys.Fences() - fencesBefore,
	}
	switch st := e.Store.(type) {
	case *fast.Store:
		s := st.Stats()
		m.InPlaceCommits = s.InPlaceCommits
		m.LogCommits = s.LogCommits
		m.LoggedBytes = s.LoggedBytes
		m.Splits = s.Splits
		m.Defrags = s.Defrags
	case *wal.Store:
		s := st.Stats()
		m.WALBytes = s.WALBytes
		m.WALFrames = s.WALFrames
	}
	return m, nil
}

// RecordWritePhase maps the scheme to its Figure 7 record-write label.
func RecordWritePhase(s Scheme) string {
	if s == NVWAL || s == FullWAL || s == Journal {
		return "volatile buffer caching"
	}
	return "in-place record insert"
}

// CommitPhaseNames are Figure 8's breakdown components in display order.
var CommitPhaseNames = []string{
	phase.NVWALCompute, phase.Heap, phase.LogFlush,
	phase.Checkpoint, phase.AtomicWrite, phase.Misc,
}
