package experiment

import (
	"strings"
	"testing"

	"fasp/internal/phase"
	"fasp/internal/pmem"
)

// quick returns small-but-meaningful params for tests.
func quick() Params { return Params{N: 1500, PageSize: 4096, Seed: 7} }

func findFig6(rows []Fig6Row, lat int64, s Scheme) Fig6Row {
	for _, r := range rows {
		if r.Latency == lat && r.Scheme == s {
			return r
		}
	}
	return Fig6Row{}
}

// TestFig6Shape verifies the paper's headline shape: FAST/FAST+ beat NVWAL
// at every latency point, and total time rises with latency.
func TestFig6Shape(t *testing.T) {
	rows, err := RunFig6(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(LatencyPoints)*3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, lat := range LatencyPoints {
		nv := findFig6(rows, lat, NVWAL)
		fa := findFig6(rows, lat, FAST)
		fp := findFig6(rows, lat, FASTPlus)
		if fp.TotalNS >= nv.TotalNS {
			t.Errorf("lat %d: FAST+ (%d ns) not faster than NVWAL (%d ns)", lat, fp.TotalNS, nv.TotalNS)
		}
		if fa.TotalNS >= nv.TotalNS {
			t.Errorf("lat %d: FAST (%d ns) not faster than NVWAL (%d ns)", lat, fa.TotalNS, nv.TotalNS)
		}
		if fp.TotalNS > fa.TotalNS {
			t.Errorf("lat %d: FAST+ (%d ns) slower than FAST (%d ns)", lat, fp.TotalNS, fa.TotalNS)
		}
		// Breakdown covers the total (phases are the whole insert path).
		sum := fp.SearchNS + fp.UpdateNS + fp.CommitNS
		if sum > fp.TotalNS || sum < fp.TotalNS*8/10 {
			t.Errorf("lat %d: FAST+ phases (%d) do not cover total (%d)", lat, sum, fp.TotalNS)
		}
	}
	// Totals increase with latency for every scheme.
	for _, s := range PaperSchemes {
		prev := int64(0)
		for _, lat := range LatencyPoints {
			r := findFig6(rows, lat, s)
			if r.TotalNS <= prev {
				t.Errorf("%v: total did not rise from lat %d", s, lat)
			}
			prev = r.TotalNS
		}
	}
	// The paper: FAST+ is 1.5x+ faster than NVWAL even at 1.2us.
	nv, fp := findFig6(rows, 1200, NVWAL), findFig6(rows, 1200, FASTPlus)
	if ratio := float64(nv.TotalNS) / float64(fp.TotalNS); ratio < 1.3 {
		t.Errorf("FAST+ speedup at 1200ns = %.2fx, want >= 1.3x", ratio)
	}
	var sb strings.Builder
	PrintFig6(rows, &sb)
	if !strings.Contains(sb.String(), "Figure 6") {
		t.Error("render missing title")
	}
	t.Log("\n" + sb.String())
}

// TestFig8Shape verifies the 1/6 commit-overhead headline: FAST+ commit is
// several times cheaper than NVWAL's, and NVWAL pays compute+heap costs the
// FAST schemes do not have.
func TestFig8Shape(t *testing.T) {
	rows, err := RunFig8(quick())
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[[2]int64]Fig8Row{}
	for _, r := range rows {
		byKey[[2]int64{r.WriteLatency, int64(r.Scheme)}] = r
	}
	for _, wlat := range WriteLatencyPoints {
		nv := byKey[[2]int64{wlat, int64(NVWAL)}]
		fp := byKey[[2]int64{wlat, int64(FASTPlus)}]
		fa := byKey[[2]int64{wlat, int64(FAST)}]
		if nv.ComputeNS == 0 || nv.HeapNS == 0 || nv.MiscNS == 0 {
			t.Errorf("wlat %d: NVWAL breakdown missing components: %+v", wlat, nv)
		}
		if fp.ComputeNS != 0 || fa.ComputeNS != 0 {
			t.Errorf("wlat %d: FAST schemes should have no diff computation", wlat)
		}
		ratio := float64(nv.CommitNS) / float64(fp.CommitNS)
		if ratio < 3 {
			t.Errorf("wlat %d: NVWAL/FAST+ commit ratio %.2f, want >= 3 (paper: ~6)", wlat, ratio)
		}
		// FAST+ checkpointing is cheaper than FAST's (49% less in paper).
		if fp.CheckpointNS >= fa.CheckpointNS {
			t.Errorf("wlat %d: FAST+ checkpoint (%d) not below FAST (%d)", wlat, fp.CheckpointNS, fa.CheckpointNS)
		}
	}
	var sb strings.Builder
	PrintFig8(rows, &sb)
	t.Log("\n" + sb.String())
}

// TestFig9Shape verifies the record-size claims: the FAST/NVWAL gap widens
// with record size, and NVWAL WAL bytes exceed slot-header bytes by 4-8x.
func TestFig9Shape(t *testing.T) {
	rows, err := RunFig9(quick())
	if err != nil {
		t.Fatal(err)
	}
	get := func(size int, s Scheme) Fig9Row {
		for _, r := range rows {
			if r.RecordSize == size && r.Scheme == s {
				return r
			}
		}
		return Fig9Row{}
	}
	// The paper: "the performance gap widens between FAST and NVWAL as the
	// record size increases" — the absolute per-insert gap grows because
	// NVWAL duplicates ever-larger data into WAL frames.
	gapSmall := get(64, NVWAL).TotalNS - get(64, FASTPlus).TotalNS
	gapLarge := get(1024, NVWAL).TotalNS - get(1024, FASTPlus).TotalNS
	if gapLarge <= gapSmall {
		t.Errorf("gap did not widen with record size: %dns at 64B, %dns at 1024B", gapSmall, gapLarge)
	}
	// FAST+ stays ahead at every size.
	for _, size := range RecordSizes {
		if get(size, FASTPlus).TotalNS >= get(size, NVWAL).TotalNS {
			t.Errorf("size %d: FAST+ not faster than NVWAL", size)
		}
		if get(size, FASTPlus).Flushes >= get(size, NVWAL).Flushes {
			t.Errorf("size %d: FAST+ flushes not below NVWAL", size)
		}
	}
	// WAL frames are several times larger than slot headers.
	nv, fa := get(64, NVWAL), get(64, FAST)
	if fa.LogBytes == 0 || nv.WALBytes < 2*fa.LogBytes {
		t.Errorf("WAL bytes %d vs slot-header bytes %d: expected several-fold gap", nv.WALBytes, fa.LogBytes)
	}
	var sb strings.Builder
	PrintFig9(rows, &sb)
	t.Log("\n" + sb.String())
}

// TestFig10Shape verifies that FAST+ commits in place only for single-page
// transactions and falls back beyond.
func TestFig10Shape(t *testing.T) {
	p := quick()
	p.N = 1024
	rows, err := RunFig10(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Scheme != FASTPlus {
			continue
		}
		if r.Batch == 1 && r.InPlace == 0 {
			t.Errorf("batch 1: no in-place commits")
		}
		if r.Batch >= 8 && r.InPlace > r.LogCommit {
			t.Errorf("batch %d: in-place (%d) should be rare vs logged (%d)", r.Batch, r.InPlace, r.LogCommit)
		}
	}
	var sb strings.Builder
	PrintFig10(rows, &sb)
	t.Log("\n" + sb.String())
}

// TestFig11Shape verifies the end-to-end 33% headline direction: FAST+
// improves full-query response time over NVWAL at every latency.
func TestFig11Shape(t *testing.T) {
	p := quick()
	p.N = 800
	rows, err := RunFig11(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Scheme == FASTPlus && r.ImprovementPct <= 0 {
			t.Errorf("lat %d: FAST+ improvement %.1f%%, want positive", r.Latency, r.ImprovementPct)
		}
	}
	var sb strings.Builder
	PrintFig11(rows, &sb)
	t.Log("\n" + sb.String())
}

func TestFig12Runs(t *testing.T) {
	p := quick()
	p.N = 600
	rows, err := RunFig12(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*2*3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.ThroughputKTPS <= 0 {
			t.Errorf("%+v: nonpositive throughput", r)
		}
	}
	var sb strings.Builder
	PrintFig12(rows, &sb)
	t.Log("\n" + sb.String())
}

func TestFig7Runs(t *testing.T) {
	p := quick()
	p.N = 1000
	rows, err := RunFig7(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		switch r.Scheme {
		case NVWAL:
			if r.FlushRecordNS != 0 {
				t.Errorf("NVWAL should not clflush records in page update: %+v", r)
			}
		case FAST, FASTPlus:
			if r.FlushRecordNS == 0 {
				t.Errorf("%v missing clflush(record): %+v", r.Scheme, r)
			}
		}
		if r.Scheme == FAST && r.SlotHeaderNS == 0 {
			t.Errorf("FAST missing update-slot-header cost")
		}
	}
	var sb strings.Builder
	PrintFig7(rows, &sb)
	t.Log("\n" + sb.String())
}

func TestAblations(t *testing.T) {
	p := quick()
	p.N = 800
	abl, err := RunAblationSchemes(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(abl) != len(AllSchemes) {
		t.Fatalf("%d rows", len(abl))
	}
	// Full-page logging schemes write far more log bytes than FAST.
	var fastB, walB, jB int64
	for _, r := range abl {
		switch r.Scheme {
		case FASTPlus:
			fastB = r.BytesLog
		case FullWAL:
			walB = r.BytesLog
		case Journal:
			jB = r.BytesLog
		}
	}
	if walB < 10*fastB || jB < 10*fastB {
		t.Errorf("page-granular logging (%d, %d B) should dwarf FAST+ (%d B)", walB, jB, fastB)
	}

	ps, err := RunAblationPageSize(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 9 {
		t.Fatalf("%d page-size rows", len(ps))
	}

	ha, err := RunAblationHTMAborts(p)
	if err != nil {
		t.Fatal(err)
	}
	if ha[0].Spurious != 0 || ha[len(ha)-1].Spurious == 0 {
		t.Errorf("abort injection not reflected: %+v", ha)
	}
	if ha[len(ha)-1].TotalNS < ha[0].TotalNS {
		t.Errorf("high abort rate should not be faster")
	}
	var sb strings.Builder
	PrintAblationSchemes(abl, &sb)
	PrintAblationPageSize(ps, &sb)
	PrintAblationHTMAborts(ha, &sb)
	t.Log("\n" + sb.String())
}

// Sanity: the measurement helper reports phases consistent with the clock.
func TestRunInsertsAccounting(t *testing.T) {
	e := NewEnv(FASTPlus, pmem.DefaultLatencies(300, 300), quick())
	m, err := RunInserts(e, 500, 64, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if m.N != 500 || m.TotalNS <= 0 {
		t.Fatalf("measurement %+v", m)
	}
	if m.Phases[phase.Search] == 0 || m.Phases[phase.Commit] == 0 {
		t.Fatal("phases missing")
	}
	if m.PM.FlushCalls == 0 {
		t.Fatal("no flushes counted")
	}
	if m.InPlaceCommits == 0 {
		t.Fatal("FAST+ did not commit in place")
	}
}

// TestRecoveryShape: FAST(+) recovery is O(1) in transactions since the
// last checkpoint; NVWAL's grows with the uncheckpointed WAL.
func TestRecoveryShape(t *testing.T) {
	p := quick()
	rows, err := RunRecovery(p)
	if err != nil {
		t.Fatal(err)
	}
	get := func(txns int, s Scheme) int64 {
		for _, r := range rows {
			if r.Txns == txns && r.Scheme == s {
				return r.NS
			}
		}
		return -1
	}
	small, large := RecoveryPoints[0], RecoveryPoints[len(RecoveryPoints)-1]
	// NVWAL recovery grows at least ~10x across a 200x txn range.
	if g := float64(get(large, NVWAL)) / float64(get(small, NVWAL)); g < 10 {
		t.Errorf("NVWAL recovery grew only %.1fx over the sweep", g)
	}
	// FAST+ recovery stays within a small constant factor.
	if g := float64(get(large, FASTPlus)) / float64(get(small, FASTPlus)+1); g > 3 {
		t.Errorf("FAST+ recovery not constant: %.1fx growth", g)
	}
	// At the large point NVWAL recovery is much slower than FAST+.
	if get(large, NVWAL) < 10*get(large, FASTPlus) {
		t.Errorf("NVWAL %dns vs FAST+ %dns at %d txns", get(large, NVWAL), get(large, FASTPlus), large)
	}
	var sb strings.Builder
	PrintRecovery(rows, &sb)
	t.Log("\n" + sb.String())
}

// TestWriteAmplificationShape: FAST+ writes the least PM bytes per insert;
// page-granular schemes amplify writes by orders of magnitude.
func TestWriteAmplificationShape(t *testing.T) {
	p := quick()
	rows, err := RunWriteAmplification(p)
	if err != nil {
		t.Fatal(err)
	}
	get := func(s Scheme) AmpRow {
		for _, r := range rows {
			if r.Scheme == s {
				return r
			}
		}
		return AmpRow{}
	}
	if !(get(FASTPlus).Amplification < get(FAST).Amplification &&
		get(FAST).Amplification < get(NVWAL).Amplification &&
		get(NVWAL).Amplification < get(FullWAL).Amplification) {
		t.Errorf("amplification ordering broken: %+v", rows)
	}
	if get(FullWAL).Amplification < 10*get(FASTPlus).Amplification {
		t.Errorf("page-granular amplification should dwarf FAST+: %+v", rows)
	}
	var sb strings.Builder
	PrintWriteAmplification(rows, &sb)
	t.Log("\n" + sb.String())
}
