package experiment

import (
	"io"

	"fasp/internal/metrics"
	"fasp/internal/pmem"
)

// AmpRow is one row of the write-amplification experiment.
type AmpRow struct {
	Scheme Scheme
	// PMBytesPerInsert is the bytes physically written to PM (cache-line
	// write-backs × 64) per inserted record.
	PMBytesPerInsert float64
	// Amplification is PM bytes written per logical byte inserted
	// (record + key + cell header).
	Amplification float64
	// Flushes is clflush instructions per insert.
	Flushes float64
}

// RunWriteAmplification measures physical PM write traffic per logical
// byte inserted. The paper motivates eliminating redundant copies partly by
// PM endurance: every journal/WAL/checkpoint copy is PM wear. Logical bytes
// per insert = 8-byte key + 64-byte value + 4-byte cell header.
func RunWriteAmplification(p Params) ([]AmpRow, error) {
	p.fill()
	const logicalBytes = 8 + 64 + 4
	var rows []AmpRow
	for _, s := range AllSchemes {
		e := NewEnv(s, pmem.DefaultLatencies(300, 300), p)
		m, err := RunInserts(e, p.N, 64, 1, p.Seed)
		if err != nil {
			return nil, err
		}
		pmBytes := float64(m.PM.LineWritebacks) * pmem.CacheLineSize / float64(m.N)
		rows = append(rows, AmpRow{
			Scheme:           s,
			PMBytesPerInsert: pmBytes,
			Amplification:    pmBytes / logicalBytes,
			Flushes:          m.FlushesPerInsert(),
		})
	}
	return rows, nil
}

// PrintWriteAmplification renders the write-amplification table.
func PrintWriteAmplification(rows []AmpRow, w io.Writer) {
	t := metrics.NewTable(
		"Write amplification: PM bytes physically written per 76-byte insert (300/300)",
		"scheme", "PM B/insert", "amplification", "clflush/insert")
	for _, r := range rows {
		t.AddRow(r.Scheme.String(), r.PMBytesPerInsert, r.Amplification, r.Flushes)
	}
	t.Render(w)
}
