// Package experiment reproduces the paper's evaluation (Figures 6–12): one
// driver per figure, each running the schemes under test (NVWAL, FAST,
// FAST+, plus the extra WAL and Journal baselines) on the simulated PM
// machine and reporting the same rows and series the paper plots. Absolute
// numbers are simulated nanoseconds; the claims being reproduced are
// relative (who wins, by what factor, where crossovers fall).
package experiment

import (
	"fmt"

	"fasp/internal/btree"
	"fasp/internal/engine"
	"fasp/internal/fast"
	"fasp/internal/pager"
	"fasp/internal/pmem"
	"fasp/internal/wal"
)

// Scheme identifies a system under test.
type Scheme int

// The schemes of the paper's evaluation plus the two extra baselines.
const (
	NVWAL Scheme = iota
	FAST
	FASTPlus
	FullWAL
	Journal
)

func (s Scheme) String() string {
	switch s {
	case NVWAL:
		return "NVWAL"
	case FAST:
		return "FAST"
	case FASTPlus:
		return "FAST+"
	case FullWAL:
		return "WAL"
	default:
		return "Journal"
	}
}

// PaperSchemes are the three systems the paper's figures compare.
var PaperSchemes = []Scheme{NVWAL, FAST, FASTPlus}

// AllSchemes adds the classic WAL and rollback-journal baselines.
var AllSchemes = []Scheme{NVWAL, FAST, FASTPlus, FullWAL, Journal}

// Params controls experiment scale.
type Params struct {
	// N is the number of transactions per data point (the paper uses
	// 100,000; the default here is 10,000 for quick runs).
	N int
	// PageSize is the database page size (default 4096).
	PageSize int
	// MaxPages bounds the page space (default sized from N).
	MaxPages int
	// Seed drives the workload generator.
	Seed int64
}

func (p *Params) fill() {
	if p.N == 0 {
		p.N = 10000
	}
	if p.PageSize == 0 {
		p.PageSize = 4096
	}
	if p.MaxPages == 0 {
		// Generous: every insert could allocate a page plus slack.
		p.MaxPages = p.N/2 + 4096
	}
	if p.Seed == 0 {
		p.Seed = 42
	}
}

// Env is one instantiated system under test.
type Env struct {
	Scheme Scheme
	Sys    *pmem.System
	Store  pager.Store
	Tree   *btree.Tree
	// PM is the arena holding database pages and logs (counter source).
	PM *pmem.Arena
}

// NewEnv builds a fresh machine and store for a scheme.
func NewEnv(s Scheme, lat pmem.LatencyModel, p Params) *Env {
	p.fill()
	sys := pmem.NewSystem(lat)
	var st pager.Store
	var arena *pmem.Arena
	switch s {
	case FAST, FASTPlus:
		variant := fast.SlotHeaderLogging
		if s == FASTPlus {
			variant = fast.InPlaceCommit
		}
		fs := fast.Create(sys, fast.Config{
			PageSize: p.PageSize, MaxPages: p.MaxPages,
			LogBytes: 4 << 20, Variant: variant,
		})
		st, arena = fs, fs.Arena()
	default:
		kind := wal.NVWAL
		switch s {
		case FullWAL:
			kind = wal.FullWAL
		case Journal:
			kind = wal.Journal
		}
		ws := wal.Create(sys, wal.Config{
			PageSize: p.PageSize, MaxPages: p.MaxPages,
			LogBytes: 64 << 20, CheckpointBytes: 32 << 20, Kind: kind,
		})
		st, arena = ws, ws.Arena()
	}
	return &Env{Scheme: s, Sys: sys, Store: st, Tree: btree.New(st), PM: arena}
}

// NewEngineEnv builds an Env plus a SQL engine on top (Figures 11–12).
func NewEngineEnv(s Scheme, lat pmem.LatencyModel, p Params) (*Env, *engine.DB) {
	e := NewEnv(s, lat, p)
	return e, engine.Open(e.Store)
}

// LatencyPoints are the PM read/write latencies of Figure 6 (ns); local
// DRAM is 120 ns, so 120/120 is the "PM as fast as DRAM" point.
var LatencyPoints = []int64{120, 300, 600, 900, 1200}

// WriteLatencyPoints are Figure 8's write-latency sweep (read fixed 300).
var WriteLatencyPoints = []int64{300, 600, 900, 1200}

// LatencyLabel renders a read/write pair like the paper's axis labels.
func LatencyLabel(read, write int64) string {
	return fmt.Sprintf("%d/%d", read, write)
}
