package experiment

import (
	"io"

	"fasp/internal/metrics"
	"fasp/internal/phase"
	"fasp/internal/pmem"
)

// --- Figure 6: insert-time breakdown vs PM latency ---------------------------

// Fig6Row is one bar of Figure 6.
type Fig6Row struct {
	Latency  int64 // symmetric read/write latency (ns)
	Scheme   Scheme
	SearchNS int64
	UpdateNS int64
	CommitNS int64
	TotalNS  int64
}

// RunFig6 reproduces Figure 6: the breakdown of time spent per single-record
// INSERT transaction (Search / Page Update / Commit) as PM read/write
// latency varies from DRAM-equal (120/120) to 1200/1200 ns.
func RunFig6(p Params) ([]Fig6Row, error) {
	p.fill()
	var rows []Fig6Row
	for _, lat := range LatencyPoints {
		for _, s := range PaperSchemes {
			e := NewEnv(s, pmem.DefaultLatencies(lat, lat), p)
			m, err := RunInserts(e, p.N, 64, 1, p.Seed)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig6Row{
				Latency:  lat,
				Scheme:   s,
				SearchNS: m.PhasePer(phase.Search),
				UpdateNS: m.PhasePer(phase.PageUpdate),
				CommitNS: m.PhasePer(phase.Commit),
				TotalNS:  m.PerInsertNS(),
			})
		}
	}
	return rows, nil
}

// PrintFig6 renders Figure 6 as the paper's table (values in µs/insert).
func PrintFig6(rows []Fig6Row, w io.Writer) {
	t := metrics.NewTable(
		"Figure 6: B-tree insertion time breakdown vs PM latency (us/insert)",
		"lat(ns)", "scheme", "search", "page-update", "commit", "total")
	for _, r := range rows {
		t.AddRow(LatencyLabel(r.Latency, r.Latency), r.Scheme.String(),
			metrics.UsecF(r.SearchNS), metrics.UsecF(r.UpdateNS),
			metrics.UsecF(r.CommitNS), metrics.UsecF(r.TotalNS))
	}
	t.Render(w)
}

// --- Figure 7: page-update breakdown ------------------------------------------

// Fig7Row is one bar of Figure 7.
type Fig7Row struct {
	Latency       int64
	Scheme        Scheme
	RecordWriteNS int64 // volatile buffer caching / in-place record insert
	SlotHeaderNS  int64 // copying slot headers to the log (stores only)
	FlushRecordNS int64 // clflush(record)
	DefragNS      int64
	UpdateNS      int64 // whole Page Update phase
}

// RunFig7 reproduces Figure 7: the decomposition of Page Update time.
func RunFig7(p Params) ([]Fig7Row, error) {
	p.fill()
	var rows []Fig7Row
	for _, lat := range []int64{300, 600, 900, 1200} {
		for _, s := range PaperSchemes {
			e := NewEnv(s, pmem.DefaultLatencies(lat, lat), p)
			m, err := RunInserts(e, p.N, 64, 1, p.Seed)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig7Row{
				Latency:       lat,
				Scheme:        s,
				RecordWriteNS: m.PhasePer(phase.RecordWrite),
				SlotHeaderNS:  m.PhasePer(phase.SlotHeader),
				FlushRecordNS: m.PhasePer(phase.FlushRecord),
				DefragNS:      m.PhasePer(phase.Defrag),
				UpdateNS:      m.PhasePer(phase.PageUpdate),
			})
		}
	}
	return rows, nil
}

// PrintFig7 renders Figure 7 (values in µs/insert).
func PrintFig7(rows []Fig7Row, w io.Writer) {
	t := metrics.NewTable(
		"Figure 7: Page Update time breakdown vs PM latency (us/insert)",
		"lat(ns)", "scheme", "record-write", "update-slot-hdr", "clflush(record)", "defragment", "page-update")
	for _, r := range rows {
		t.AddRow(LatencyLabel(r.Latency, r.Latency), r.Scheme.String(),
			metrics.UsecF(r.RecordWriteNS), metrics.UsecF(r.SlotHeaderNS),
			metrics.UsecF(r.FlushRecordNS), metrics.UsecF(r.DefragNS),
			metrics.UsecF(r.UpdateNS))
	}
	t.Render(w)
}

// --- Figure 8: commit-time breakdown vs PM write latency ----------------------

// Fig8Row is one bar of Figure 8.
type Fig8Row struct {
	WriteLatency int64
	Scheme       Scheme
	ComputeNS    int64 // NVWAL differential-logging computation
	HeapNS       int64 // NVWAL pmalloc/pfree
	LogFlushNS   int64
	CheckpointNS int64
	AtomicNS     int64 // FAST+ atomic 64B write
	MiscNS       int64 // WAL-index construction etc.
	CommitNS     int64
}

// RunFig8 reproduces Figure 8: the commit-time breakdown as PM *write*
// latency varies with read latency fixed at 300 ns.
func RunFig8(p Params) ([]Fig8Row, error) {
	p.fill()
	var rows []Fig8Row
	for _, wlat := range WriteLatencyPoints {
		for _, s := range PaperSchemes {
			e := NewEnv(s, pmem.DefaultLatencies(300, wlat), p)
			m, err := RunInserts(e, p.N, 64, 1, p.Seed)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig8Row{
				WriteLatency: wlat,
				Scheme:       s,
				ComputeNS:    m.PhasePer(phase.NVWALCompute),
				HeapNS:       m.PhasePer(phase.Heap),
				LogFlushNS:   m.PhasePer(phase.LogFlush),
				CheckpointNS: m.PhasePer(phase.Checkpoint),
				AtomicNS:     m.PhasePer(phase.AtomicWrite),
				MiscNS:       m.PhasePer(phase.Misc),
				CommitNS:     m.PhasePer(phase.Commit),
			})
		}
	}
	return rows, nil
}

// PrintFig8 renders Figure 8 (values in µs/insert).
func PrintFig8(rows []Fig8Row, w io.Writer) {
	t := metrics.NewTable(
		"Figure 8: Commit time breakdown vs PM write latency (read=300ns; us/insert)",
		"wlat(ns)", "scheme", "nvwal-comp", "heap-mgmt", "log-flush", "checkpoint", "atomic-64B", "misc", "commit")
	for _, r := range rows {
		t.AddRow(r.WriteLatency, r.Scheme.String(),
			metrics.UsecF(r.ComputeNS), metrics.UsecF(r.HeapNS),
			metrics.UsecF(r.LogFlushNS), metrics.UsecF(r.CheckpointNS),
			metrics.UsecF(r.AtomicNS), metrics.UsecF(r.MiscNS),
			metrics.UsecF(r.CommitNS))
	}
	t.Render(w)
}

// --- Figure 9: record-size sweep ----------------------------------------------

// Fig9Row is one point of Figures 9(a) and 9(b).
type Fig9Row struct {
	RecordSize int
	Scheme     Scheme
	TotalNS    int64   // 9(a): average insertion time
	Flushes    float64 // 9(b): clflush instructions per insertion
	WALBytes   int64   // per insert, for the discussion of frame sizes
	LogBytes   int64   // slot-header bytes per insert (FAST/FAST+)
}

// RecordSizes are Figure 9's x-axis.
var RecordSizes = []int{64, 128, 256, 512, 1024}

// RunFig9 reproduces Figure 9: insertion time (a) and clflush count (b) as
// the record size grows, at PM 300/300.
func RunFig9(p Params) ([]Fig9Row, error) {
	p.fill()
	var rows []Fig9Row
	for _, size := range RecordSizes {
		for _, s := range PaperSchemes {
			e := NewEnv(s, pmem.DefaultLatencies(300, 300), p)
			m, err := RunInserts(e, p.N, size, 1, p.Seed)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig9Row{
				RecordSize: size,
				Scheme:     s,
				TotalNS:    m.PerInsertNS(),
				Flushes:    m.FlushesPerInsert(),
				WALBytes:   m.WALBytes / int64(m.N),
				LogBytes:   m.LoggedBytes / int64(m.N),
			})
		}
	}
	return rows, nil
}

// PrintFig9 renders Figure 9.
func PrintFig9(rows []Fig9Row, w io.Writer) {
	t := metrics.NewTable(
		"Figure 9: record-size sweep at PM 300/300 — (a) us/insert, (b) clflush/insert",
		"rec(B)", "scheme", "us/insert", "clflush/insert", "walB/insert", "shlogB/insert")
	for _, r := range rows {
		t.AddRow(r.RecordSize, r.Scheme.String(), metrics.UsecF(r.TotalNS),
			r.Flushes, r.WALBytes, r.LogBytes)
	}
	t.Render(w)
}

// --- Figure 10: transaction-size sweep -----------------------------------------

// Fig10Row is one point of Figure 10 (reconstructed; see DESIGN.md).
type Fig10Row struct {
	Batch     int // inserts per transaction
	Scheme    Scheme
	PerOpNS   int64   // time per inserted record
	Flushes   float64 // clflush per record
	InPlace   int64   // in-place commits (FAST+ falls back beyond 1 page)
	LogCommit int64
}

// BatchSizes are Figure 10's x-axis: inserts per transaction.
var BatchSizes = []int{1, 2, 4, 8, 16, 32}

// RunFig10 reproduces the multi-record-transaction experiment: as a
// transaction grows beyond one page, FAST+ falls back to slot-header
// logging and the amortised commit cost of all schemes changes.
func RunFig10(p Params) ([]Fig10Row, error) {
	p.fill()
	var rows []Fig10Row
	for _, batch := range BatchSizes {
		for _, s := range PaperSchemes {
			e := NewEnv(s, pmem.DefaultLatencies(300, 300), p)
			m, err := RunInserts(e, p.N, 64, batch, p.Seed)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig10Row{
				Batch:     batch,
				Scheme:    s,
				PerOpNS:   m.PerInsertNS(),
				Flushes:   m.FlushesPerInsert(),
				InPlace:   m.InPlaceCommits,
				LogCommit: m.LogCommits,
			})
		}
	}
	return rows, nil
}

// PrintFig10 renders Figure 10.
func PrintFig10(rows []Fig10Row, w io.Writer) {
	t := metrics.NewTable(
		"Figure 10: inserts per transaction at PM 300/300 (per-record costs)",
		"txn-size", "scheme", "us/record", "clflush/record", "in-place-commits", "log-commits")
	for _, r := range rows {
		t.AddRow(r.Batch, r.Scheme.String(), metrics.UsecF(r.PerOpNS),
			r.Flushes, r.InPlace, r.LogCommit)
	}
	t.Render(w)
}
