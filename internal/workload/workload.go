// Package workload generates the deterministic key/value streams the
// paper's evaluation uses: uniformly random keys (the paper's default —
// "100,000 insertions each invoked through an INSERT statement with
// randomly generated keys"), sequential keys, zipfian skew, configurable
// record sizes, and transaction shapes (single-insert mobile transactions,
// multi-insert batches, and mixed CRUD streams).
package workload

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// KeyDist selects the key distribution.
type KeyDist int

const (
	// UniformKeys draws keys uniformly at random without repetition.
	UniformKeys KeyDist = iota
	// SequentialKeys issues monotonically increasing keys.
	SequentialKeys
	// ZipfKeys draws from a zipfian distribution (reuse-heavy).
	ZipfKeys
)

// Config parameterises a generator.
type Config struct {
	Seed       int64
	Keys       KeyDist
	KeySpace   uint64 // uniform/zipf key universe (default 1<<40)
	RecordSize int    // value bytes per record (default 64, the paper's)
	Zipf       float64
}

func (c *Config) fill() {
	if c.KeySpace == 0 {
		c.KeySpace = 1 << 40
	}
	if c.RecordSize == 0 {
		c.RecordSize = 64
	}
	if c.Zipf == 0 {
		c.Zipf = 1.2
	}
}

// Gen produces keys and values.
type Gen struct {
	cfg  Config
	rng  *rand.Rand
	zipf *rand.Zipf
	seq  uint64
	used map[uint64]bool
}

// New creates a deterministic generator.
func New(cfg Config) *Gen {
	cfg.fill()
	g := &Gen{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), used: make(map[uint64]bool)}
	if cfg.Keys == ZipfKeys {
		g.zipf = rand.NewZipf(g.rng, cfg.Zipf, 1, cfg.KeySpace-1)
	}
	return g
}

// NextKey returns the next 8-byte big-endian key.
func (g *Gen) NextKey() []byte {
	var id uint64
	switch g.cfg.Keys {
	case SequentialKeys:
		g.seq++
		id = g.seq
	case ZipfKeys:
		id = g.zipf.Uint64()
	default:
		for {
			id = g.rng.Uint64() % g.cfg.KeySpace
			if !g.used[id] {
				break
			}
		}
	}
	g.used[id] = true
	var k [8]byte
	binary.BigEndian.PutUint64(k[:], id)
	return k[:]
}

// UsedKey returns a previously issued key (for updates/deletes/lookups);
// it falls back to a fresh key when none exist.
func (g *Gen) UsedKey() []byte {
	if len(g.used) == 0 {
		return g.NextKey()
	}
	// Deterministic pick: draw until a used id is hit; bounded retries keep
	// this cheap for dense key sets, with a linear fallback.
	for try := 0; try < 64; try++ {
		id := g.rng.Uint64() % g.cfg.KeySpace
		if g.used[id] {
			var k [8]byte
			binary.BigEndian.PutUint64(k[:], id)
			return k[:]
		}
	}
	target := g.rng.Intn(len(g.used))
	i := 0
	for id := range g.used {
		if i == target {
			var k [8]byte
			binary.BigEndian.PutUint64(k[:], id)
			return k[:]
		}
		i++
	}
	return g.NextKey()
}

// Forget removes a key from the used set after a delete.
func (g *Gen) Forget(k []byte) {
	delete(g.used, binary.BigEndian.Uint64(k))
}

// NextValue returns a pseudo-random record body of the configured size.
func (g *Gen) NextValue() []byte {
	v := make([]byte, g.cfg.RecordSize)
	g.rng.Read(v)
	return v
}

// ValueOfSize returns a record body of an explicit size.
func (g *Gen) ValueOfSize(n int) []byte {
	v := make([]byte, n)
	g.rng.Read(v)
	return v
}

// OpKind enumerates mixed-workload operations.
type OpKind int

// Operation kinds for mixed streams.
const (
	OpInsert OpKind = iota
	OpUpdate
	OpDelete
	OpSelect
)

func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpUpdate:
		return "update"
	case OpDelete:
		return "delete"
	default:
		return "select"
	}
}

// Mix is a CRUD ratio; fields need not sum to 1 (they are normalised).
type Mix struct {
	Insert, Update, Delete, Select float64
}

// MobileMix is the paper's Android-style workload: every transaction
// inserts a single record.
var MobileMix = Mix{Insert: 1}

// BalancedMix exercises all four operations.
var BalancedMix = Mix{Insert: 0.5, Update: 0.2, Delete: 0.1, Select: 0.2}

// NextOp draws an operation kind from the mix.
func (g *Gen) NextOp(m Mix) OpKind {
	total := m.Insert + m.Update + m.Delete + m.Select
	if total <= 0 {
		return OpInsert
	}
	x := g.rng.Float64() * total
	switch {
	case x < m.Insert:
		return OpInsert
	case x < m.Insert+m.Update:
		return OpUpdate
	case x < m.Insert+m.Update+m.Delete:
		return OpDelete
	default:
		return OpSelect
	}
}

// SQLInsert renders a single-row INSERT statement for the engine-level
// experiments (Figures 11–12).
func SQLInsert(table string, id uint64, payload []byte) string {
	return fmt.Sprintf("INSERT INTO %s VALUES (%d, x'%x')", table, id, payload)
}

// ZipfTheta exposes the default zipf parameter for documentation.
func ZipfTheta() float64 { return 1.2 }

// Percentile computes the p-th percentile (0..100) of a sample slice
// without sorting the caller's copy.
func Percentile(xs []int64, p float64) int64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]int64(nil), xs...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	idx := int(math.Ceil(p/100*float64(len(cp)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(cp) {
		idx = len(cp) - 1
	}
	return cp[idx]
}
