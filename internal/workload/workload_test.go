package workload

import (
	"bytes"
	"testing"
)

func TestDeterminism(t *testing.T) {
	run := func() ([][]byte, [][]byte) {
		g := New(Config{Seed: 7, RecordSize: 32})
		var ks, vs [][]byte
		for i := 0; i < 50; i++ {
			ks = append(ks, g.NextKey())
			vs = append(vs, g.NextValue())
		}
		return ks, vs
	}
	k1, v1 := run()
	k2, v2 := run()
	for i := range k1 {
		if !bytes.Equal(k1[i], k2[i]) || !bytes.Equal(v1[i], v2[i]) {
			t.Fatalf("generator not deterministic at %d", i)
		}
	}
}

func TestUniformKeysAreUnique(t *testing.T) {
	g := New(Config{Seed: 1})
	seen := map[string]bool{}
	for i := 0; i < 5000; i++ {
		k := g.NextKey()
		if len(k) != 8 {
			t.Fatalf("key length %d", len(k))
		}
		if seen[string(k)] {
			t.Fatalf("duplicate key at %d", i)
		}
		seen[string(k)] = true
	}
}

func TestSequentialKeysIncrease(t *testing.T) {
	g := New(Config{Seed: 1, Keys: SequentialKeys})
	prev := g.NextKey()
	for i := 0; i < 100; i++ {
		k := g.NextKey()
		if bytes.Compare(k, prev) <= 0 {
			t.Fatal("sequential keys not increasing")
		}
		prev = k
	}
}

func TestZipfKeysSkew(t *testing.T) {
	g := New(Config{Seed: 1, Keys: ZipfKeys, KeySpace: 1 << 20})
	counts := map[string]int{}
	for i := 0; i < 5000; i++ {
		counts[string(g.NextKey())]++
	}
	// A zipfian stream must repeat hot keys heavily.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 50 {
		t.Fatalf("zipf not skewed: hottest key seen %d times", max)
	}
}

func TestUsedKeyReturnsIssuedKeys(t *testing.T) {
	g := New(Config{Seed: 2, KeySpace: 64}) // dense space: fast hits
	issued := map[string]bool{}
	for i := 0; i < 20; i++ {
		issued[string(g.NextKey())] = true
	}
	for i := 0; i < 50; i++ {
		if !issued[string(g.UsedKey())] {
			t.Fatal("UsedKey returned a never-issued key")
		}
	}
	// Forget removes keys from the pool.
	for k := range issued {
		g.Forget([]byte(k))
	}
	// With no used keys the generator falls back to a fresh key.
	if k := g.UsedKey(); len(k) != 8 {
		t.Fatal("fallback key malformed")
	}
}

func TestValueSizes(t *testing.T) {
	g := New(Config{Seed: 1, RecordSize: 100})
	if len(g.NextValue()) != 100 {
		t.Fatal("NextValue size")
	}
	if len(g.ValueOfSize(7)) != 7 {
		t.Fatal("ValueOfSize")
	}
}

func TestMixProportions(t *testing.T) {
	g := New(Config{Seed: 3})
	counts := map[OpKind]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[g.NextOp(BalancedMix)]++
	}
	frac := func(k OpKind) float64 { return float64(counts[k]) / n }
	if f := frac(OpInsert); f < 0.45 || f > 0.55 {
		t.Fatalf("insert fraction %.2f", f)
	}
	if f := frac(OpDelete); f < 0.07 || f > 0.13 {
		t.Fatalf("delete fraction %.2f", f)
	}
	// MobileMix is all inserts.
	for i := 0; i < 100; i++ {
		if g.NextOp(MobileMix) != OpInsert {
			t.Fatal("mobile mix produced a non-insert")
		}
	}
	// Degenerate mix defaults to insert.
	if g.NextOp(Mix{}) != OpInsert {
		t.Fatal("zero mix did not default to insert")
	}
}

func TestSQLInsertRendering(t *testing.T) {
	s := SQLInsert("t", 7, []byte{0xAB, 0xCD})
	if s != "INSERT INTO t VALUES (7, x'abcd')" {
		t.Fatalf("rendered %q", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []int64{5, 1, 9, 3, 7}
	if p := Percentile(xs, 50); p != 5 {
		t.Fatalf("p50 = %d", p)
	}
	if p := Percentile(xs, 100); p != 9 {
		t.Fatalf("p100 = %d", p)
	}
	if p := Percentile(nil, 50); p != 0 {
		t.Fatalf("empty = %d", p)
	}
	// The input must not be mutated.
	if xs[0] != 5 {
		t.Fatal("Percentile sorted the caller's slice")
	}
}

func TestOpKindString(t *testing.T) {
	for k, want := range map[OpKind]string{
		OpInsert: "insert", OpUpdate: "update", OpDelete: "delete", OpSelect: "select",
	} {
		if k.String() != want {
			t.Fatalf("%v", k)
		}
	}
}
