package btree

import (
	"bytes"
	"fmt"

	"fasp/internal/pager"
	"fasp/internal/slotted"
)

// Validate checks the full structural integrity of the tree: every page's
// slotted invariants, key ordering and separator bounds, uniform leaf
// depth, and the absence of page cycles. Crash-recovery tests call it after
// every recovered image.
func (x *Tx) Validate() error {
	root := x.root.Root()
	if root == 0 {
		return nil
	}
	seen := map[uint32]bool{}
	_, err := x.validatePage(root, nil, nil, seen, true)
	return err
}

// validatePage checks the subtree at no, whose keys must lie in (lo, hi]
// (nil bounds are open), and returns its leaf depth.
func (x *Tx) validatePage(no uint32, lo, hi []byte, seen map[uint32]bool, allowFreeListFix bool) (int, error) {
	if seen[no] {
		return 0, fmt.Errorf("%w: page %d reachable twice", pager.ErrCorrupt, no)
	}
	seen[no] = true
	p, err := x.p.Page(no)
	if err != nil {
		return 0, err
	}
	if err := p.Validate(); err != nil {
		return 0, fmt.Errorf("page %d: %w", no, err)
	}
	inBounds := func(k []byte) error {
		if lo != nil && bytes.Compare(k, lo) <= 0 {
			return fmt.Errorf("%w: page %d key %x <= lower bound %x", pager.ErrCorrupt, no, k, lo)
		}
		if hi != nil && bytes.Compare(k, hi) > 0 {
			return fmt.Errorf("%w: page %d key %x > upper bound %x", pager.ErrCorrupt, no, k, hi)
		}
		return nil
	}
	switch p.Type() {
	case slotted.TypeLeaf:
		for i := 0; i < p.NCells(); i++ {
			if err := inBounds(p.Key(i)); err != nil {
				return 0, err
			}
		}
		return 1, nil
	case slotted.TypeInterior:
		if p.Aux() == 0 {
			return 0, fmt.Errorf("%w: interior page %d has no rightmost child", pager.ErrCorrupt, no)
		}
		depth := -1
		prev := lo
		for i := 0; i < p.NCells(); i++ {
			k := p.Key(i)
			if err := inBounds(k); err != nil {
				return 0, err
			}
			d, err := x.validatePage(p.Child(i), prev, k, seen, allowFreeListFix)
			if err != nil {
				return 0, err
			}
			if depth == -1 {
				depth = d
			} else if d != depth {
				return 0, fmt.Errorf("%w: uneven leaf depth under page %d", pager.ErrCorrupt, no)
			}
			prev = k
		}
		d, err := x.validatePage(p.Aux(), prev, hi, seen, allowFreeListFix)
		if err != nil {
			return 0, err
		}
		if depth != -1 && d != depth {
			return 0, fmt.Errorf("%w: uneven leaf depth at rightmost child of page %d", pager.ErrCorrupt, no)
		}
		return d + 1, nil
	default:
		return 0, fmt.Errorf("%w: page %d has type %#x", pager.ErrCorrupt, no, p.Type())
	}
}

// Reachable returns the set of pages reachable from the root, for garbage
// collection of pages leaked by crashed transactions (the paper notes such
// orphans "can be safely garbage collected", §4.4).
func (x *Tx) Reachable() (map[uint32]bool, error) {
	seen := map[uint32]bool{}
	root := x.root.Root()
	if root == 0 {
		return seen, nil
	}
	var walk func(no uint32) error
	walk = func(no uint32) error {
		if seen[no] {
			return fmt.Errorf("%w: cycle at page %d", pager.ErrCorrupt, no)
		}
		seen[no] = true
		p, err := x.p.Page(no)
		if err != nil {
			return err
		}
		if p.Type() != slotted.TypeInterior {
			return nil
		}
		for i := 0; i < p.NCells(); i++ {
			if err := walk(p.Child(i)); err != nil {
				return err
			}
		}
		if p.Aux() != 0 {
			return walk(p.Aux())
		}
		return nil
	}
	if err := walk(root); err != nil {
		return nil, err
	}
	return seen, nil
}
