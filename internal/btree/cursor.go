package btree

import (
	"bytes"
	"errors"

	"fasp/internal/slotted"
)

func errorsIs(err, target error) bool { return errors.Is(err, target) }

// Scan visits records with keys in [lo, hi] in key order. Nil bounds are
// open. fn returning false stops the scan early. The tree has no sibling
// links (splits must not touch neighbours, §4.1), so iteration keeps an
// explicit descent stack.
func (x *Tx) Scan(lo, hi []byte, fn func(key, val []byte) bool) error {
	root := x.root.Root()
	if root == 0 {
		return nil
	}
	type frame struct {
		page *slotted.Page
		next int // next cell/child index to visit
	}
	var stack []frame

	push := func(no uint32, first bool) error {
		p, err := x.p.Page(no)
		if err != nil {
			return err
		}
		start := 0
		if first && lo != nil {
			start, _ = p.Search(lo)
		}
		stack = append(stack, frame{page: p, next: start})
		return nil
	}
	if err := push(root, true); err != nil {
		return err
	}
	first := true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		p := f.page
		if p.Type() == slotted.TypeLeaf {
			done := false
			for ; f.next < p.NCells(); f.next++ {
				k := p.Key(f.next)
				if lo != nil && bytes.Compare(k, lo) < 0 {
					continue
				}
				if hi != nil && bytes.Compare(k, hi) > 0 {
					return nil
				}
				if !fn(k, p.Value(f.next)) {
					done = true
					break
				}
			}
			if done {
				return nil
			}
			stack = stack[:len(stack)-1]
			first = false
			continue
		}
		// Interior: children are cell 0..n-1, then the rightmost pointer.
		if f.next > p.NCells() {
			stack = stack[:len(stack)-1]
			first = false
			continue
		}
		var child uint32
		if f.next < p.NCells() {
			// Prune subtrees entirely above hi.
			if hi != nil && f.next > 0 && bytes.Compare(p.Key(f.next-1), hi) > 0 {
				return nil
			}
			child = p.Child(f.next)
		} else {
			child = p.Aux()
		}
		f.next++
		if child == 0 {
			continue
		}
		if err := push(child, first); err != nil {
			return err
		}
	}
	return nil
}

// ScanReverse visits records with keys in [lo, hi] in descending key
// order (nil bounds are open), stopping early if fn returns false.
func (x *Tx) ScanReverse(lo, hi []byte, fn func(key, val []byte) bool) error {
	root := x.root.Root()
	if root == 0 {
		return nil
	}
	type frame struct {
		page *slotted.Page
		next int // next child/cell index to visit, counting down
	}
	var stack []frame
	push := func(no uint32) error {
		p, err := x.p.Page(no)
		if err != nil {
			return err
		}
		start := p.NCells()
		if p.Type() != slotted.TypeLeaf {
			start = p.NCells() + 1 // children: cells 0..n-1 then Aux ⇒ reverse starts at Aux
		}
		stack = append(stack, frame{page: p, next: start})
		return nil
	}
	if err := push(root); err != nil {
		return err
	}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		p := f.page
		if p.Type() == slotted.TypeLeaf {
			done := false
			for f.next--; f.next >= 0; f.next-- {
				k := p.Key(f.next)
				if hi != nil && bytes.Compare(k, hi) > 0 {
					continue
				}
				if lo != nil && bytes.Compare(k, lo) < 0 {
					return nil
				}
				if !fn(k, p.Value(f.next)) {
					done = true
					break
				}
			}
			if done {
				return nil
			}
			stack = stack[:len(stack)-1]
			continue
		}
		// Interior, descending: Aux first, then cells n-1..0.
		f.next--
		if f.next < 0 {
			stack = stack[:len(stack)-1]
			continue
		}
		var child uint32
		if f.next == p.NCells() {
			child = p.Aux()
		} else {
			// Prune subtrees entirely below lo.
			if lo != nil && bytes.Compare(p.Key(f.next), lo) < 0 {
				return nil
			}
			child = p.Child(f.next)
		}
		if child == 0 {
			continue
		}
		if err := push(child); err != nil {
			return err
		}
	}
	return nil
}

// Count returns the number of records in the tree.
func (x *Tx) Count() (int, error) {
	n := 0
	err := x.Scan(nil, nil, func(_, _ []byte) bool { n++; return true })
	return n, err
}

// MaxKey returns the largest key in the tree, descending rightmost-first
// (used by the SQL engine to assign rowids).
func (x *Tx) MaxKey() ([]byte, bool, error) {
	root := x.root.Root()
	if root == 0 {
		return nil, false, nil
	}
	return x.maxUnder(root, 0)
}

func (x *Tx) maxUnder(no uint32, depth int) ([]byte, bool, error) {
	if depth > 64 {
		return nil, false, errors.New("btree: max descent too deep")
	}
	p, err := x.p.Page(no)
	if err != nil {
		return nil, false, err
	}
	if p.Type() == slotted.TypeLeaf {
		if n := p.NCells(); n > 0 {
			return p.Key(n - 1), true, nil
		}
		return nil, false, nil
	}
	if aux := p.Aux(); aux != 0 {
		if k, ok, err := x.maxUnder(aux, depth+1); ok || err != nil {
			return k, ok, err
		}
	}
	for i := p.NCells() - 1; i >= 0; i-- {
		if k, ok, err := x.maxUnder(p.Child(i), depth+1); ok || err != nil {
			return k, ok, err
		}
	}
	return nil, false, nil
}

// Min returns the smallest key, or nil if the tree is empty.
func (x *Tx) Min() ([]byte, error) {
	var k []byte
	err := x.Scan(nil, nil, func(key, _ []byte) bool {
		k = append([]byte(nil), key...)
		return false
	})
	return k, err
}
