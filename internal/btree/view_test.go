package btree

import (
	"bytes"
	"math/rand"
	"testing"

	"fasp/internal/fast"
	"fasp/internal/pager"
	"fasp/internal/pmem"
)

type rec struct{ k, v []byte }

// viewFixture builds a multi-level tree and returns its sorted contents.
func viewFixture(t *testing.T, n int) (*pmem.System, *fast.Store, *Tree, []rec) {
	t.Helper()
	sys, st, tr := newFastTree(t, fast.InPlaceCommit)
	perm := rand.New(rand.NewSource(42)).Perm(n)
	recs := make([]rec, n)
	for _, i := range perm {
		mustInsert(t, tr, i, 10+i%40)
	}
	for i := 0; i < n; i++ {
		recs[i] = rec{k: k(i), v: v(i, 10+i%40)}
	}
	return sys, st, tr, recs
}

func newView(t *testing.T, st *fast.Store) *View {
	t.Helper()
	sr, ok := interface{}(st).(pager.SnapshotReader)
	if !ok {
		t.Fatal("fast.Store does not implement pager.SnapshotReader")
	}
	vw := NewView()
	vw.Reset(sr, st.PageSize())
	return vw
}

func TestViewGetMatchesTree(t *testing.T) {
	_, st, tr, recs := viewFixture(t, 600)
	vw := newView(t, st)
	for _, r := range recs {
		want, ok, err := tr.Get(r.k)
		if err != nil || !ok {
			t.Fatalf("tree get %q: %v %v", r.k, ok, err)
		}
		got, ok, err := vw.Get(r.k, nil)
		if err != nil || !ok {
			t.Fatalf("view get %q: %v %v", r.k, ok, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("view get %q = %q, want %q", r.k, got, want)
		}
	}
	if _, ok, err := vw.Get([]byte("nope"), nil); ok || err != nil {
		t.Fatalf("phantom key: %v %v", ok, err)
	}
	if vw.Cost() <= 0 {
		t.Fatal("view walk charged no simulated cost")
	}
}

func TestViewGetDoesNotAdvanceClock(t *testing.T) {
	sys, st, _, recs := viewFixture(t, 200)
	vw := newView(t, st)
	before := sys.Clock().Now()
	for _, r := range recs {
		if _, ok, err := vw.Get(r.k, nil); !ok || err != nil {
			t.Fatalf("get: %v %v", ok, err)
		}
	}
	if now := sys.Clock().Now(); now != before {
		t.Fatalf("view reads advanced the clock: %d -> %d", before, now)
	}
}

// collectView runs one View.Scan and copies out the results.
func collectView(t *testing.T, vw *View, b Bounds) []rec {
	t.Helper()
	var out []rec
	err := vw.Scan(b, func(k, v []byte) bool {
		out = append(out, rec{append([]byte(nil), k...), append([]byte(nil), v...)})
		return true
	})
	if err != nil {
		t.Fatalf("view scan: %v", err)
	}
	return out
}

// collectTx runs the transactional scan over the same bounds (inclusive
// only — Tx has no exclusive bounds).
func collectTx(t *testing.T, tr *Tree, lo, hi []byte, reverse bool) []rec {
	t.Helper()
	var out []rec
	gather := func(k, v []byte) bool {
		out = append(out, rec{append([]byte(nil), k...), append([]byte(nil), v...)})
		return true
	}
	tx, err := tr.Begin()
	if err != nil {
		t.Fatalf("begin: %v", err)
	}
	defer tx.Rollback()
	if reverse {
		err = tx.ScanReverse(lo, hi, gather)
	} else {
		err = tx.Scan(lo, hi, gather)
	}
	if err != nil {
		t.Fatalf("tx scan: %v", err)
	}
	return out
}

func sameRecs(t *testing.T, got, want []rec, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d records, want %d", label, len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i].k, want[i].k) || !bytes.Equal(got[i].v, want[i].v) {
			t.Fatalf("%s: record %d = %q/%q, want %q/%q",
				label, i, got[i].k, got[i].v, want[i].k, want[i].v)
		}
	}
}

func TestViewScanMatchesTx(t *testing.T) {
	_, st, tr, _ := viewFixture(t, 600)
	vw := newView(t, st)
	cases := []struct {
		name   string
		lo, hi []byte
	}{
		{"full", nil, nil},
		{"bounded", k(100), k(450)},
		{"lo-only", k(300), nil},
		{"hi-only", nil, k(222)},
		{"between-keys", []byte("k00000100x"), []byte("k00000449x")},
		{"empty", []byte("zz"), nil},
	}
	for _, reverse := range []bool{false, true} {
		for _, tc := range cases {
			got := collectView(t, vw, Bounds{Lo: tc.lo, Hi: tc.hi, Reverse: reverse})
			want := collectTx(t, tr, tc.lo, tc.hi, reverse)
			dir := "fwd"
			if reverse {
				dir = "rev"
			}
			sameRecs(t, got, want, tc.name+"/"+dir)
		}
	}
}

func TestViewScanExclusiveBounds(t *testing.T) {
	_, st, tr, _ := viewFixture(t, 400)
	vw := newView(t, st)
	// Forward resume: everything strictly after k(100), up to k(300).
	got := collectView(t, vw, Bounds{Lo: k(100), Hi: k(300), LoX: true})
	want := collectTx(t, tr, k(101), k(300), false)
	sameRecs(t, got, want, "forward LoX")
	// Reverse resume: everything strictly below k(300), down to k(100).
	got = collectView(t, vw, Bounds{Lo: k(100), Hi: k(300), HiX: true, Reverse: true})
	want = collectTx(t, tr, k(100), k(299), true)
	sameRecs(t, got, want, "reverse HiX")
	// Both exclusive, both directions.
	got = collectView(t, vw, Bounds{Lo: k(100), Hi: k(300), LoX: true, HiX: true})
	want = collectTx(t, tr, k(101), k(299), false)
	sameRecs(t, got, want, "forward LoX+HiX")
	got = collectView(t, vw, Bounds{Lo: k(100), Hi: k(300), LoX: true, HiX: true, Reverse: true})
	want = collectTx(t, tr, k(101), k(299), true)
	sameRecs(t, got, want, "reverse LoX+HiX")
}

func TestViewScanChunkedResumeEquivalence(t *testing.T) {
	// Resuming with an exclusive bound at the last delivered key — the shard
	// engine's chunking pattern — must reassemble the exact full scan.
	_, st, tr, _ := viewFixture(t, 500)
	vw := newView(t, st)
	want := collectTx(t, tr, nil, nil, false)
	var got []rec
	var lo []byte
	loX := false
	for {
		n := 0
		err := vw.Scan(Bounds{Lo: lo, LoX: loX}, func(k, v []byte) bool {
			got = append(got, rec{append([]byte(nil), k...), append([]byte(nil), v...)})
			n++
			return n < 37 // odd chunk size to exercise resume at page seams
		})
		if err != nil {
			t.Fatal(err)
		}
		if n < 37 {
			break
		}
		lo = got[len(got)-1].k
		loX = true
	}
	sameRecs(t, got, want, "chunked forward")

	got = nil
	var hi []byte
	hiX := false
	for {
		n := 0
		err := vw.Scan(Bounds{Hi: hi, HiX: hiX, Reverse: true}, func(k, v []byte) bool {
			got = append(got, rec{append([]byte(nil), k...), append([]byte(nil), v...)})
			n++
			return n < 37
		})
		if err != nil {
			t.Fatal(err)
		}
		if n < 37 {
			break
		}
		hi = got[len(got)-1].k
		hiX = true
	}
	wantRev := collectTx(t, tr, nil, nil, true)
	sameRecs(t, got, wantRev, "chunked reverse")
}

func TestViewEarlyStopAndCount(t *testing.T) {
	_, st, _, recs := viewFixture(t, 300)
	vw := newView(t, st)
	seen := 0
	if err := vw.Scan(Bounds{}, func(_, _ []byte) bool {
		seen++
		return seen < 10
	}); err != nil {
		t.Fatal(err)
	}
	if seen != 10 {
		t.Fatalf("early stop visited %d", seen)
	}
	n, err := vw.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != len(recs) {
		t.Fatalf("Count = %d, want %d", n, len(recs))
	}
}

func TestViewSeesOnlyCommittedState(t *testing.T) {
	// The view reads the last committed snapshot; uncommitted txn writes are
	// invisible until Commit.
	_, st, tr, _ := viewFixture(t, 50)
	vw := newView(t, st)
	tx, err := tr.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert([]byte("zz-new"), []byte("val")); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := vw.Get([]byte("zz-new"), nil); ok || err != nil {
		t.Fatalf("uncommitted insert visible through view: %v %v", ok, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	vw.Reset(interface{}(st).(pager.SnapshotReader), st.PageSize())
	if _, ok, err := vw.Get([]byte("zz-new"), nil); !ok || err != nil {
		t.Fatalf("committed insert not visible: %v %v", ok, err)
	}
}
