package btree

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"fasp/internal/fast"
	"fasp/internal/slotted"
	"fasp/internal/workload"
)

func TestMaxKey(t *testing.T) {
	_, _, tr := newFastTree(t, fast.InPlaceCommit)
	tx, err := tr.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := tx.MaxKey(); ok || err != nil {
		t.Fatalf("empty tree max = %v %v", ok, err)
	}
	tx.Rollback()
	for i := 0; i < 300; i++ {
		mustInsert(t, tr, i, 20)
	}
	tx2, _ := tr.Begin()
	defer tx2.Rollback()
	maxK, ok, err := tx2.MaxKey()
	if err != nil || !ok {
		t.Fatal(err)
	}
	if !bytes.Equal(maxK, k(299)) {
		t.Fatalf("max = %q", maxK)
	}
	minK, err := tx2.Min()
	if err != nil || !bytes.Equal(minK, k(0)) {
		t.Fatalf("min = %q (%v)", minK, err)
	}
}

func TestMaxKeySkipsEmptyRightmostLeaves(t *testing.T) {
	_, _, tr := newFastTree(t, fast.InPlaceCommit)
	for i := 0; i < 60; i++ {
		mustInsert(t, tr, i, 30)
	}
	// Delete the largest keys: the rightmost leaf may become empty but is
	// kept (it is the parent's rightmost child).
	for i := 59; i >= 40; i-- {
		if err := tr.Delete(k(i)); err != nil {
			t.Fatal(err)
		}
	}
	tx, _ := tr.Begin()
	defer tx.Rollback()
	maxK, ok, err := tx.MaxKey()
	if err != nil || !ok {
		t.Fatal(err)
	}
	if !bytes.Equal(maxK, k(39)) {
		t.Fatalf("max after deletes = %q", maxK)
	}
}

func TestSequentialInsertsStayBalancedEnough(t *testing.T) {
	_, st, tr := newFastTree(t, fast.InPlaceCommit)
	const n = 800
	for i := 0; i < n; i++ {
		mustInsert(t, tr, i, 20)
	}
	tx, _ := tr.Begin()
	defer tx.Rollback()
	if err := tx.Validate(); err != nil {
		t.Fatal(err)
	}
	count, _ := tx.Count()
	if count != n {
		t.Fatalf("count = %d", count)
	}
	reach, _ := tx.Reachable()
	// Sanity on space: pages should hold a reasonable number of records.
	if len(reach) > n/3 {
		t.Fatalf("%d pages for %d records: degenerate fill", len(reach), n)
	}
	_ = st
}

func TestZipfUpdateHeavyWorkload(t *testing.T) {
	_, _, tr := newFastTree(t, fast.InPlaceCommit)
	gen := workload.New(workload.Config{Seed: 5, Keys: workload.ZipfKeys, KeySpace: 200, RecordSize: 24})
	live := map[string]bool{}
	for i := 0; i < 1500; i++ {
		key := gen.NextKey()
		if live[string(key)] {
			if err := tr.Update(key, gen.NextValue()); err != nil {
				t.Fatalf("update: %v", err)
			}
		} else {
			if err := tr.Insert(key, gen.NextValue()); err != nil {
				t.Fatalf("insert: %v", err)
			}
			live[string(key)] = true
		}
	}
	tx, _ := tr.Begin()
	defer tx.Rollback()
	if err := tx.Validate(); err != nil {
		t.Fatal(err)
	}
	n, _ := tx.Count()
	if n != len(live) {
		t.Fatalf("count = %d, want %d", n, len(live))
	}
}

func TestDeleteEverythingThenReinsert(t *testing.T) {
	_, st, tr := newFastTree(t, fast.InPlaceCommit)
	for round := 0; round < 3; round++ {
		for i := 0; i < 200; i++ {
			if err := tr.Insert(k(i), v(i, 25)); err != nil {
				t.Fatalf("round %d insert %d: %v", round, i, err)
			}
		}
		for i := 0; i < 200; i++ {
			if err := tr.Delete(k(i)); err != nil {
				t.Fatalf("round %d delete %d: %v", round, i, err)
			}
		}
		tx, _ := tr.Begin()
		if err := tx.Validate(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		n, _ := tx.Count()
		tx.Rollback()
		if n != 0 {
			t.Fatalf("round %d: %d leftovers", round, n)
		}
	}
	// Page space must not grow unboundedly across rounds (reclaim works).
	if st.Meta().NPages > 200 {
		t.Fatalf("page space ballooned to %d", st.Meta().NPages)
	}
}

func TestLeafCellCapHonoured(t *testing.T) {
	_, _, tr := newFastTree(t, fast.InPlaceCommit)
	// Tiny records: without the cap a 512B page would hold far more than
	// MaxInPlaceCells records.
	for i := 0; i < 200; i++ {
		mustInsert(t, tr, i, 1)
	}
	tx, _ := tr.Begin()
	defer tx.Rollback()
	reach, err := tx.Reachable()
	if err != nil {
		t.Fatal(err)
	}
	for no := range reach {
		p, err := tx.Pager().Page(no)
		if err != nil {
			t.Fatal(err)
		}
		if p.Type() == 0x0D && p.NCells() > 25 {
			t.Fatalf("leaf %d holds %d cells under FAST+ (cap 25)", no, p.NCells())
		}
	}
}

func TestAttachSharesTransaction(t *testing.T) {
	_, st, tr := newFastTree(t, fast.InPlaceCommit)
	// Seed a tree.
	for i := 0; i < 10; i++ {
		mustInsert(t, tr, i, 10)
	}
	ptx, err := st.Begin()
	if err != nil {
		t.Fatal(err)
	}
	ax := Attach(st, ptx, ptx)
	if err := ax.Insert(k(100), v(100, 10)); err != nil {
		t.Fatal(err)
	}
	// Attached transactions must not own commit/rollback.
	if err := ax.Commit(); err == nil {
		t.Fatal("attached commit did not error")
	}
	if err := ptx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := tr.Get(k(100)); !ok {
		t.Fatal("insert through attached tx lost")
	}
}

func TestRandomizedLongevity(t *testing.T) {
	for _, seed := range []int64{11, 22, 33} {
		_, _, tr := newFastTree(t, fast.InPlaceCommit)
		rng := rand.New(rand.NewSource(seed))
		model := map[string][]byte{}
		for step := 0; step < 2500; step++ {
			i := rng.Intn(400)
			switch rng.Intn(5) {
			case 0, 1:
				val := v(i, 5+rng.Intn(80))
				if err := tr.Insert(k(i), val); err == nil {
					model[string(k(i))] = val
				}
			case 2:
				val := v(i+1, 5+rng.Intn(80))
				if err := tr.Update(k(i), val); err == nil {
					model[string(k(i))] = val
				} else if _, in := model[string(k(i))]; in {
					t.Fatalf("seed %d step %d: update of live key failed: %v", seed, step, err)
				}
			case 3:
				if err := tr.Delete(k(i)); err == nil {
					delete(model, string(k(i)))
				}
			case 4:
				got, ok, err := tr.Get(k(i))
				if err != nil {
					t.Fatal(err)
				}
				want, in := model[string(k(i))]
				if ok != in || (ok && !bytes.Equal(got, want)) {
					t.Fatalf("seed %d step %d: get mismatch", seed, step)
				}
			}
		}
		tx, _ := tr.Begin()
		if err := tx.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		n, _ := tx.Count()
		tx.Rollback()
		if n != len(model) {
			t.Fatalf("seed %d: count %d vs model %d", seed, n, len(model))
		}
	}
}

func TestInsertEmptyKeyAndValue(t *testing.T) {
	_, _, tr := newFastTree(t, fast.InPlaceCommit)
	if err := tr.Insert([]byte{}, []byte{}); err != nil {
		t.Fatalf("empty key/value: %v", err)
	}
	got, ok, err := tr.Get([]byte{})
	if err != nil || !ok || len(got) != 0 {
		t.Fatalf("get empty = %v %v %v", got, ok, err)
	}
	if err := tr.Insert([]byte{}, []byte{1}); !errors.Is(err, slotted.ErrDuplicate) {
		t.Fatalf("duplicate empty key: %v", err)
	}
}

// TestInsertIntoOverflowedPageWithinTxn is the paper's §4.3 scenario: an
// insert splits a page, and a later insert in the SAME transaction targets
// the still-uncommitted overflowing page — whose freed space is pending
// and unusable — forcing copy-on-write defragmentation.
func TestInsertIntoOverflowedPageWithinTxn(t *testing.T) {
	_, st, tr := newFastTree(t, fast.InPlaceCommit)
	tx, err := tr.Begin()
	if err != nil {
		t.Fatal(err)
	}
	// Fill one leaf to the brink, then keep inserting keys that land in
	// the upper half (the page that keeps its cells after the split).
	for i := 0; i < 60; i++ {
		if err := tx.Insert(k(i*10), v(i, 40)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	// Dense inserts between existing upper keys, same transaction.
	for i := 0; i < 60; i++ {
		if err := tx.Insert(k(i*10+5), v(i, 40)); err != nil {
			t.Fatalf("dense insert %d: %v", i, err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2, _ := tr.Begin()
	defer tx2.Rollback()
	if err := tx2.Validate(); err != nil {
		t.Fatal(err)
	}
	n, _ := tx2.Count()
	if n != 120 {
		t.Fatalf("count = %d", n)
	}
	if st.Stats().Defrags == 0 {
		t.Log("note: no defrag triggered (split spacing avoided it); counts still verified")
	}
}

// Property (testing/quick): any operation sequence leaves the tree
// structurally valid and exactly equal to a map-based reference model.
func TestQuickCheckAgainstModel(t *testing.T) {
	f := func(seed int64, ops []uint8) bool {
		_, _, tr := newFastTree(t, fast.InPlaceCommit)
		rng := rand.New(rand.NewSource(seed))
		model := map[string][]byte{}
		for _, op := range ops {
			i := rng.Intn(64)
			switch op % 4 {
			case 0, 1:
				val := v(i, 5+rng.Intn(40))
				if err := tr.Insert(k(i), val); err == nil {
					model[string(k(i))] = val
				} else if !errors.Is(err, slotted.ErrDuplicate) {
					return false
				}
			case 2:
				val := v(i+1, 5+rng.Intn(40))
				err := tr.Update(k(i), val)
				if _, in := model[string(k(i))]; in {
					if err != nil {
						return false
					}
					model[string(k(i))] = val
				} else if !errors.Is(err, ErrKeyNotFound) {
					return false
				}
			case 3:
				err := tr.Delete(k(i))
				if _, in := model[string(k(i))]; in {
					if err != nil {
						return false
					}
					delete(model, string(k(i)))
				} else if !errors.Is(err, ErrKeyNotFound) {
					return false
				}
			}
		}
		tx, err := tr.Begin()
		if err != nil {
			return false
		}
		defer tx.Rollback()
		if tx.Validate() != nil {
			return false
		}
		got := map[string][]byte{}
		if err := tx.Scan(nil, nil, func(kk, vv []byte) bool {
			got[string(kk)] = append([]byte(nil), vv...)
			return true
		}); err != nil {
			return false
		}
		if len(got) != len(model) {
			return false
		}
		for kk, vv := range model {
			if !bytes.Equal(got[kk], vv) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestScanReverse(t *testing.T) {
	_, _, tr := newFastTree(t, fast.InPlaceCommit)
	for i := 0; i < 200; i++ {
		mustInsert(t, tr, i, 12)
	}
	tx, _ := tr.Begin()
	defer tx.Rollback()
	// Full reverse scan: strictly descending, complete.
	var keys [][]byte
	if err := tx.ScanReverse(nil, nil, func(k, _ []byte) bool {
		keys = append(keys, append([]byte(nil), k...))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(keys) != 200 {
		t.Fatalf("reverse scan found %d keys", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if bytes.Compare(keys[i-1], keys[i]) <= 0 {
			t.Fatal("reverse scan not descending")
		}
	}
	if !bytes.Equal(keys[0], k(199)) || !bytes.Equal(keys[199], k(0)) {
		t.Fatalf("endpoints %q %q", keys[0], keys[199])
	}
	// Bounded reverse range.
	var got []string
	if err := tx.ScanReverse(k(50), k(59), func(kk, _ []byte) bool {
		got = append(got, string(kk))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0] != string(k(59)) || got[9] != string(k(50)) {
		t.Fatalf("bounded reverse = %v", got)
	}
	// Early stop.
	n := 0
	_ = tx.ScanReverse(nil, nil, func(_, _ []byte) bool { n++; return n < 7 })
	if n != 7 {
		t.Fatalf("early stop at %d", n)
	}
}

// Property: reverse scan equals the reversal of the forward scan for any
// tree contents.
func TestScanReverseMatchesForward(t *testing.T) {
	f := func(seed int64) bool {
		_, _, tr := newFastTree(t, fast.InPlaceCommit)
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(150)
		for i := 0; i < n; i++ {
			_ = tr.Insert(k(rng.Intn(500)), v(i, 10))
		}
		tx, err := tr.Begin()
		if err != nil {
			return false
		}
		defer tx.Rollback()
		var fwd, rev [][]byte
		if err := tx.Scan(nil, nil, func(kk, _ []byte) bool {
			fwd = append(fwd, append([]byte(nil), kk...))
			return true
		}); err != nil {
			return false
		}
		if err := tx.ScanReverse(nil, nil, func(kk, _ []byte) bool {
			rev = append(rev, append([]byte(nil), kk...))
			return true
		}); err != nil {
			return false
		}
		if len(fwd) != len(rev) {
			return false
		}
		for i := range fwd {
			if !bytes.Equal(fwd[i], rev[len(rev)-1-i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
