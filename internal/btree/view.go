package btree

import (
	"bytes"
	"fmt"

	"fasp/internal/pager"
	"fasp/internal/slotted"
)

// View is a read-only walker over the last committed state of a store,
// reading pages through pager.SnapshotReader instead of opening a pager
// transaction. It never mutates simulated machine state (no clock advance,
// no cache fills, no crash points): every byte it touches is charged to an
// internal cost accumulator that mirrors exactly what the locked path's
// arena Loads would have cost, so callers can report an equivalent
// simulated latency.
//
// A View is NOT safe for concurrent use and must only walk while the store
// is quiescent (no commit in progress) — the shard engine's epoch gate
// provides that window. Keys and values passed to scan callbacks are valid
// only during the callback.
type View struct {
	sr       pager.SnapshotReader
	pageSize int
	cost     int64
	frames   []*viewFrame
	keyBuf   []byte
}

// viewFrame is one level of the descent stack: a slotted page handle bound
// to a peek-backed Mem. Frames are pooled per View and reused by depth.
type viewFrame struct {
	mem  peekMem
	page slotted.Page
	next int
}

// peekMem adapts a (SnapshotReader, page) pair to slotted.Mem. All reads
// funnel through PeekCommitted; writes are impossible by construction. The
// scratch buffer backs Read results, which Page consumes before issuing the
// next read on the same handle (slotted documents exactly that discipline
// for its own transient reads).
type peekMem struct {
	v   *View
	no  uint32
	buf []byte
}

// peekFault carries a PeekCommitted error out of slotted's panic-free read
// accessors; View entry points recover it back into an error return.
type peekFault struct{ err error }

func (m *peekMem) PageSize() int { return m.v.pageSize }

func (m *peekMem) ReadInto(off int, dst []byte) {
	c, err := m.v.sr.PeekCommitted(m.no, off, dst)
	if err != nil {
		panic(peekFault{err})
	}
	m.v.cost += c
}

func (m *peekMem) Read(off, n int) []byte {
	if cap(m.buf) < n {
		m.buf = make([]byte, n)
	}
	b := m.buf[:n]
	m.ReadInto(off, b)
	return b
}

func (m *peekMem) Write(int, []byte) { panic("btree: write through read-only view") }
func (m *peekMem) HeaderChanged(*slotted.Header) {
	panic("btree: header change through read-only view")
}

// NewView returns an unbound View; Reset binds it to a store snapshot.
func NewView() *View { return &View{} }

// Reset binds the view to a store's committed snapshot and zeroes the cost
// accumulator. Views are pooled across reads; Reset is the rebind point.
func (v *View) Reset(sr pager.SnapshotReader, pageSize int) {
	v.sr = sr
	v.pageSize = pageSize
	v.cost = 0
}

// Release drops the store reference so a pooled View cannot pin a healed
// shard's old arena.
func (v *View) Release() { v.sr = nil }

// Cost returns the accumulated simulated read cost in nanoseconds.
func (v *View) Cost() int64 { return v.cost }

// frame returns the pooled frame for one descent level.
func (v *View) frame(i int) *viewFrame {
	for len(v.frames) <= i {
		f := &viewFrame{}
		f.mem.v = v
		v.frames = append(v.frames, f)
	}
	return v.frames[i]
}

// open binds the depth-th frame to page no and decodes its header.
func (v *View) open(depth int, no uint32) (*viewFrame, error) {
	f := v.frame(depth)
	f.mem.no = no
	if err := slotted.OpenInto(&f.page, &f.mem); err != nil {
		return nil, err
	}
	f.next = 0
	return f, nil
}

// run executes op, converting peekFault panics back into errors.
func (v *View) run(op func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			pf, ok := r.(peekFault)
			if !ok {
				panic(r)
			}
			err = pf.err
		}
	}()
	return op()
}

// Get returns the value stored under key in the committed snapshot. The
// result is appended to dst[:0] (dst may be nil) and never aliases view or
// store memory, so it stays valid after the caller leaves the read epoch.
func (v *View) Get(key, dst []byte) ([]byte, bool, error) {
	var out []byte
	var found bool
	err := v.run(func() error {
		no := v.sr.CommittedRoot()
		if no == 0 {
			return nil
		}
		for depth := 0; ; depth++ {
			if depth > 64 {
				return fmt.Errorf("%w: descent too deep (cycle?)", pager.ErrCorrupt)
			}
			f, err := v.open(depth, no)
			if err != nil {
				return err
			}
			p := &f.page
			if p.Type() == slotted.TypeLeaf {
				i, ok := p.Search(key)
				if !ok {
					return nil
				}
				out = append(dst[:0], p.Value(i)...)
				found = true
				return nil
			}
			i, _ := p.Search(key)
			if i < p.NCells() {
				no = p.Child(i)
			} else {
				no = p.Aux()
				if no == 0 {
					return fmt.Errorf("%w: interior page %d lacks rightmost child",
						pager.ErrCorrupt, f.mem.no)
				}
			}
		}
	})
	if err != nil {
		return nil, false, err
	}
	return out, found, nil
}

// Bounds selects a key range for View.Scan. Nil bounds are open; LoX/HiX
// make the corresponding bound exclusive — the shard engine's chunked
// readers use that to resume a scan just past the last delivered key.
type Bounds struct {
	Lo, Hi   []byte
	LoX, HiX bool
	Reverse  bool
}

// Scan visits committed records within b in key order (descending when
// b.Reverse), stopping early when fn returns false. Key and value slices
// are valid only during the callback. The visit order and record bytes are
// identical to Tx.Scan/Tx.ScanReverse over the same committed state.
func (v *View) Scan(b Bounds, fn func(key, val []byte) bool) error {
	return v.run(func() error {
		if b.Reverse {
			return v.scanReverse(b, fn)
		}
		return v.scanForward(b, fn)
	})
}

func (v *View) scanForward(b Bounds, fn func(key, val []byte) bool) error {
	root := v.sr.CommittedRoot()
	if root == 0 {
		return nil
	}
	depth := 0
	push := func(no uint32, first bool) error {
		if depth > 64 {
			return fmt.Errorf("%w: descent too deep (cycle?)", pager.ErrCorrupt)
		}
		f, err := v.open(depth, no)
		if err != nil {
			return err
		}
		if first && b.Lo != nil {
			f.next, _ = f.page.Search(b.Lo)
		}
		depth++
		return nil
	}
	if err := push(root, true); err != nil {
		return err
	}
	first := true
	for depth > 0 {
		f := v.frames[depth-1]
		p := &f.page
		if p.Type() == slotted.TypeLeaf {
			for ; f.next < p.NCells(); f.next++ {
				k := p.Key(f.next)
				if b.Lo != nil {
					if c := bytes.Compare(k, b.Lo); c < 0 || (b.LoX && c == 0) {
						continue
					}
				}
				if b.Hi != nil {
					if c := bytes.Compare(k, b.Hi); c > 0 || (b.HiX && c == 0) {
						return nil
					}
				}
				// Key into the view scratch: Value reuses the frame's read
				// buffer and would clobber it otherwise.
				v.keyBuf = append(v.keyBuf[:0], k...)
				if !fn(v.keyBuf, p.Value(f.next)) {
					return nil
				}
			}
			depth--
			first = false
			continue
		}
		// Interior: children are cell 0..n-1, then the rightmost pointer.
		if f.next > p.NCells() {
			depth--
			first = false
			continue
		}
		var child uint32
		if f.next < p.NCells() {
			// Prune subtrees entirely above hi: subtree keys exceed the
			// previous separator, so ≥ hi suffices under an exclusive bound.
			if b.Hi != nil && f.next > 0 {
				if c := bytes.Compare(p.Key(f.next-1), b.Hi); c > 0 || (b.HiX && c == 0) {
					return nil
				}
			}
			child = p.Child(f.next)
		} else {
			child = p.Aux()
		}
		f.next++
		if child == 0 {
			continue
		}
		if err := push(child, first); err != nil {
			return err
		}
	}
	return nil
}

func (v *View) scanReverse(b Bounds, fn func(key, val []byte) bool) error {
	root := v.sr.CommittedRoot()
	if root == 0 {
		return nil
	}
	depth := 0
	push := func(no uint32, first bool) error {
		if depth > 64 {
			return fmt.Errorf("%w: descent too deep (cycle?)", pager.ErrCorrupt)
		}
		f, err := v.open(depth, no)
		if err != nil {
			return err
		}
		p := &f.page
		if p.Type() != slotted.TypeLeaf {
			f.next = p.NCells() + 1 // children: cells 0..n-1 then Aux ⇒ reverse starts at Aux
			if first && b.Hi != nil {
				// Children past Search(hi) hold keys strictly above their
				// preceding separator, itself ≥ hi — skip them and Aux.
				if i, _ := p.Search(b.Hi); i < p.NCells() {
					f.next = i + 1
				}
			}
		} else {
			f.next = p.NCells()
			if first && b.Hi != nil {
				i, found := p.Search(b.Hi)
				if found && !b.HiX {
					f.next = i + 1
				} else {
					f.next = i
				}
			}
		}
		depth++
		return nil
	}
	if err := push(root, true); err != nil {
		return err
	}
	first := true
	for depth > 0 {
		f := v.frames[depth-1]
		p := &f.page
		if p.Type() == slotted.TypeLeaf {
			for f.next--; f.next >= 0; f.next-- {
				k := p.Key(f.next)
				if b.Hi != nil {
					if c := bytes.Compare(k, b.Hi); c > 0 || (b.HiX && c == 0) {
						continue
					}
				}
				if b.Lo != nil {
					if c := bytes.Compare(k, b.Lo); c < 0 || (b.LoX && c == 0) {
						return nil
					}
				}
				v.keyBuf = append(v.keyBuf[:0], k...)
				if !fn(v.keyBuf, p.Value(f.next)) {
					return nil
				}
			}
			depth--
			first = false
			continue
		}
		// Interior, descending: Aux first, then cells n-1..0.
		f.next--
		if f.next < 0 {
			depth--
			first = false
			continue
		}
		var child uint32
		if f.next == p.NCells() {
			child = p.Aux()
		} else {
			// Prune subtrees entirely below lo: the separator is the subtree
			// max, so ≤ lo suffices under an exclusive bound.
			if b.Lo != nil {
				if c := bytes.Compare(p.Key(f.next), b.Lo); c < 0 || (b.LoX && c == 0) {
					return nil
				}
			}
			child = p.Child(f.next)
		}
		if child == 0 {
			continue
		}
		if err := push(child, first); err != nil {
			return err
		}
	}
	return nil
}

// Count returns the number of committed records.
func (v *View) Count() (int, error) {
	n := 0
	err := v.Scan(Bounds{}, func(_, _ []byte) bool { n++; return true })
	return n, err
}
