package btree

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"fasp/internal/fast"
	"fasp/internal/pmem"
	"fasp/internal/slotted"
)

func newFastTree(t testing.TB, variant fast.Variant) (*pmem.System, *fast.Store, *Tree) {
	t.Helper()
	sys := pmem.NewSystem(pmem.DefaultLatencies(300, 300))
	st := fast.Create(sys, fast.Config{PageSize: 512, MaxPages: 4096, Variant: variant})
	return sys, st, New(st)
}

func k(i int) []byte        { return []byte(fmt.Sprintf("k%08d", i)) }
func v(i int, n int) []byte { return bytes.Repeat([]byte{byte('a' + i%26)}, n) }
func mustInsert(t testing.TB, tr *Tree, i, n int) {
	t.Helper()
	if err := tr.Insert(k(i), v(i, n)); err != nil {
		t.Fatalf("insert %d: %v", i, err)
	}
}

func TestInsertGetSingle(t *testing.T) {
	_, _, tr := newFastTree(t, fast.InPlaceCommit)
	mustInsert(t, tr, 1, 20)
	got, ok, err := tr.Get(k(1))
	if err != nil || !ok {
		t.Fatalf("get: %v %v", ok, err)
	}
	if !bytes.Equal(got, v(1, 20)) {
		t.Fatalf("value = %q", got)
	}
	if _, ok, _ := tr.Get(k(2)); ok {
		t.Fatal("phantom key")
	}
}

func TestManyInsertsWithSplits(t *testing.T) {
	for _, variant := range []fast.Variant{fast.SlotHeaderLogging, fast.InPlaceCommit} {
		t.Run(variant.String(), func(t *testing.T) {
			_, st, tr := newFastTree(t, variant)
			const n = 500
			perm := rand.New(rand.NewSource(1)).Perm(n)
			for _, i := range perm {
				mustInsert(t, tr, i, 30)
			}
			if st.Stats().Splits == 0 {
				t.Fatal("no splits happened; test is vacuous")
			}
			// Every key readable.
			for i := 0; i < n; i++ {
				got, ok, err := tr.Get(k(i))
				if err != nil || !ok {
					t.Fatalf("get %d: %v %v", i, ok, err)
				}
				if !bytes.Equal(got, v(i, 30)) {
					t.Fatalf("value %d mismatch", i)
				}
			}
			// Scan yields all keys in order.
			var keys [][]byte
			if err := tr.Scan(nil, nil, func(key, _ []byte) bool {
				keys = append(keys, append([]byte(nil), key...))
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if len(keys) != n {
				t.Fatalf("scan found %d keys, want %d", len(keys), n)
			}
			for i := 1; i < len(keys); i++ {
				if bytes.Compare(keys[i-1], keys[i]) >= 0 {
					t.Fatal("scan out of order")
				}
			}
			// Structural validation.
			tx, err := tr.Begin()
			if err != nil {
				t.Fatal(err)
			}
			defer tx.Rollback()
			if err := tx.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDuplicateInsertFails(t *testing.T) {
	_, _, tr := newFastTree(t, fast.InPlaceCommit)
	mustInsert(t, tr, 1, 10)
	if err := tr.Insert(k(1), v(1, 10)); !errors.Is(err, slotted.ErrDuplicate) {
		t.Fatalf("err = %v, want ErrDuplicate", err)
	}
	// The failed transaction rolled back; the tree still works.
	mustInsert(t, tr, 2, 10)
}

func TestUpdateAndDelete(t *testing.T) {
	_, _, tr := newFastTree(t, fast.InPlaceCommit)
	for i := 0; i < 100; i++ {
		mustInsert(t, tr, i, 25)
	}
	if err := tr.Update(k(7), []byte("updated")); err != nil {
		t.Fatal(err)
	}
	got, ok, _ := tr.Get(k(7))
	if !ok || string(got) != "updated" {
		t.Fatalf("after update: %q %v", got, ok)
	}
	if err := tr.Update(k(9999), []byte("x")); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("update missing: %v", err)
	}
	if err := tr.Delete(k(7)); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := tr.Get(k(7)); ok {
		t.Fatal("deleted key still present")
	}
	if err := tr.Delete(k(7)); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestUpdateGrowingValueForcesDefrag(t *testing.T) {
	_, st, tr := newFastTree(t, fast.InPlaceCommit)
	// Fill one leaf nearly full, then grow a value so the update cannot fit
	// without copy-on-write defragmentation.
	for i := 0; i < 8; i++ {
		mustInsert(t, tr, i, 40)
	}
	for size := 50; size <= 110; size += 30 {
		if err := tr.Update(k(3), v(3, size)); err != nil {
			t.Fatalf("grow to %d: %v", size, err)
		}
	}
	got, ok, _ := tr.Get(k(3))
	if !ok || len(got) != 110 {
		t.Fatalf("after growth: len=%d ok=%v", len(got), ok)
	}
	if st.Stats().Defrags == 0 {
		t.Fatal("defragmentation never triggered; test is vacuous")
	}
	tx, _ := tr.Begin()
	defer tx.Rollback()
	if err := tx.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMultiOpTransactionAtomicity(t *testing.T) {
	_, _, tr := newFastTree(t, fast.InPlaceCommit)
	tx, err := tr.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := tx.Insert(k(i), v(i, 20)); err != nil {
			t.Fatal(err)
		}
	}
	tx.Rollback()
	for i := 0; i < 10; i++ {
		if _, ok, _ := tr.Get(k(i)); ok {
			t.Fatalf("rolled-back key %d visible", i)
		}
	}
	tx2, _ := tr.Begin()
	for i := 0; i < 10; i++ {
		if err := tx2.Insert(k(i), v(i, 20)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, ok, _ := tr.Get(k(i)); !ok {
			t.Fatalf("committed key %d missing", i)
		}
	}
}

func TestFASTPlusUsesInPlaceCommits(t *testing.T) {
	_, st, tr := newFastTree(t, fast.InPlaceCommit)
	for i := 0; i < 12; i++ {
		mustInsert(t, tr, i, 16)
	}
	s := st.Stats()
	if s.InPlaceCommits == 0 {
		t.Fatalf("no in-place commits: %+v", s)
	}
	// The first insert allocates the root (meta change → logged); later
	// single-leaf inserts should all commit in place while the leaf fits.
	if s.InPlaceCommits < 8 {
		t.Fatalf("too few in-place commits: %+v", s)
	}
}

func TestFASTNeverCommitsInPlace(t *testing.T) {
	_, st, tr := newFastTree(t, fast.SlotHeaderLogging)
	for i := 0; i < 12; i++ {
		mustInsert(t, tr, i, 16)
	}
	if s := st.Stats(); s.InPlaceCommits != 0 || s.LogCommits != s.Commits {
		t.Fatalf("FAST stats: %+v", s)
	}
}

func TestVariantsProduceSameLogicalTree(t *testing.T) {
	collect := func(variant fast.Variant) map[string]string {
		_, _, tr := newFastTree(t, variant)
		rng := rand.New(rand.NewSource(99))
		live := map[string]string{}
		for step := 0; step < 600; step++ {
			i := rng.Intn(150)
			switch rng.Intn(4) {
			case 0, 1:
				val := v(i, 10+rng.Intn(60))
				if err := tr.Insert(k(i), val); err == nil {
					live[string(k(i))] = string(val)
				}
			case 2:
				val := v(i+1, 10+rng.Intn(60))
				if err := tr.Update(k(i), val); err == nil {
					live[string(k(i))] = string(val)
				}
			case 3:
				if err := tr.Delete(k(i)); err == nil {
					delete(live, string(k(i)))
				}
			}
		}
		got := map[string]string{}
		if err := tr.Scan(nil, nil, func(key, val []byte) bool {
			got[string(key)] = string(val)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		// Cross-check scan against the op log.
		if len(got) != len(live) {
			t.Fatalf("%v: scan %d keys, model %d", variant, len(got), len(live))
		}
		for kk, vv := range live {
			if got[kk] != vv {
				t.Fatalf("%v: key %q = %q, want %q", variant, kk, got[kk], vv)
			}
		}
		return got
	}
	a := collect(fast.SlotHeaderLogging)
	b := collect(fast.InPlaceCommit)
	if len(a) != len(b) {
		t.Fatalf("variants diverge: %d vs %d keys", len(a), len(b))
	}
	for kk, vv := range a {
		if b[kk] != vv {
			t.Fatalf("variants diverge at %q", kk)
		}
	}
}

func TestScanRange(t *testing.T) {
	_, _, tr := newFastTree(t, fast.InPlaceCommit)
	for i := 0; i < 200; i++ {
		mustInsert(t, tr, i, 12)
	}
	var got []string
	if err := tr.Scan(k(50), k(59), func(key, _ []byte) bool {
		got = append(got, string(key))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0] != string(k(50)) || got[9] != string(k(59)) {
		t.Fatalf("range scan = %v", got)
	}
	// Early termination.
	n := 0
	_ = tr.Scan(nil, nil, func(_, _ []byte) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestReopenWithoutCrash(t *testing.T) {
	_, st, tr := newFastTree(t, fast.InPlaceCommit)
	for i := 0; i < 120; i++ {
		mustInsert(t, tr, i, 30)
	}
	st2, err := fast.Attach(st.Arena(), fast.Config{PageSize: 512, MaxPages: 4096, Variant: fast.InPlaceCommit})
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Recover(); err != nil {
		t.Fatal(err)
	}
	tr2 := New(st2)
	for i := 0; i < 120; i++ {
		if _, ok, _ := tr2.Get(k(i)); !ok {
			t.Fatalf("key %d lost across reopen", i)
		}
	}
	tx, _ := tr2.Begin()
	defer tx.Rollback()
	if err := tx.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTooLargeRecordRejected(t *testing.T) {
	_, _, tr := newFastTree(t, fast.InPlaceCommit)
	err := tr.Insert(k(1), make([]byte, 4096))
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestReachableAndGarbage(t *testing.T) {
	_, st, tr := newFastTree(t, fast.InPlaceCommit)
	for i := 0; i < 300; i++ {
		mustInsert(t, tr, i, 30)
	}
	tx, _ := tr.Begin()
	defer tx.Rollback()
	reach, err := tx.Reachable()
	if err != nil {
		t.Fatal(err)
	}
	if len(reach) < 10 {
		t.Fatalf("only %d reachable pages", len(reach))
	}
	meta := st.Meta()
	// Every reachable page is within the allocated range.
	for no := range reach {
		if no == 0 || no >= meta.NPages {
			t.Fatalf("reachable page %d outside [1,%d)", no, meta.NPages)
		}
	}
}

// checkRecovered validates a recovered store: structure intact, all
// committed keys present with correct values, and at most the in-flight
// transaction's key extra.
func checkRecovered(t *testing.T, st *fast.Store, committed []int, inflight int, valSize int, label string) {
	t.Helper()
	tr := New(st)
	tx, err := tr.Begin()
	if err != nil {
		t.Fatalf("%s: begin: %v", label, err)
	}
	defer tx.Rollback()
	if err := tx.Validate(); err != nil {
		t.Fatalf("%s: tree invalid after recovery: %v", label, err)
	}
	count, err := tx.Count()
	if err != nil {
		t.Fatalf("%s: count: %v", label, err)
	}
	for _, i := range committed {
		got, ok, err := tx.Get(k(i))
		if err != nil || !ok {
			t.Fatalf("%s: committed key %d missing (err=%v)", label, i, err)
		}
		if !bytes.Equal(got, v(i, valSize)) {
			t.Fatalf("%s: committed key %d corrupt", label, i)
		}
	}
	switch count {
	case len(committed):
		// in-flight transaction absent: fine
	case len(committed) + 1:
		// in-flight transaction committed its mark before the crash: its
		// key must be complete and correct.
		got, ok, err := tx.Get(k(inflight))
		if err != nil || !ok {
			t.Fatalf("%s: count=%d but in-flight key %d absent", label, count, inflight)
		}
		if !bytes.Equal(got, v(inflight, valSize)) {
			t.Fatalf("%s: in-flight key %d torn", label, inflight)
		}
	default:
		t.Fatalf("%s: recovered %d keys, committed %d", label, count, len(committed))
	}
}

// TestCrashRecoverySweep is the core durability property: at every sampled
// crash point of a split-heavy insert workload, under adversarial eviction
// choices, recovery yields a valid tree containing exactly the committed
// transactions (plus possibly the marked-but-unchecked-pointed in-flight
// one, complete).
func TestCrashRecoverySweep(t *testing.T) {
	const nTxns = 24
	const valSize = 40
	cfg := fast.Config{PageSize: 256, MaxPages: 1024, Variant: fast.InPlaceCommit}

	for _, variant := range []fast.Variant{fast.SlotHeaderLogging, fast.InPlaceCommit} {
		cfg.Variant = variant
		// Learn the total crash points from one uncrashed run.
		sys := pmem.NewSystem(pmem.DefaultLatencies(300, 300))
		st := fast.Create(sys, cfg)
		tr := New(st)
		base := sys.CrashPoints()
		for i := 0; i < nTxns; i++ {
			mustInsert(t, tr, i, valSize)
		}
		total := sys.CrashPoints() - base
		if total < 100 {
			t.Fatalf("suspiciously few crash points: %d", total)
		}
		step := total / 160
		if step == 0 {
			step = 1
		}
		if testing.Short() {
			step = total / 25
		}
		evictions := []pmem.CrashOptions{pmem.EvictNone, pmem.EvictAll, {Seed: 11, EvictProb: 0.5}}
		for _, opts := range evictions {
			for kpt := int64(0); kpt < total; kpt += step {
				sys := pmem.NewSystem(pmem.DefaultLatencies(300, 300))
				st := fast.Create(sys, cfg)
				tr := New(st)
				var committed []int
				inflight := -1
				sys.CrashAfter(kpt)
				crashed := sys.RunToCrash(func() {
					for i := 0; i < nTxns; i++ {
						inflight = i
						if err := tr.Insert(k(i), v(i, valSize)); err != nil {
							panic(fmt.Sprintf("insert %d: %v", i, err))
						}
						committed = append(committed, i)
					}
				})
				sys.Crash(opts)
				if !crashed {
					// Workload finished before the crash point; recovery on
					// a cleanly committed image must still be exact.
					inflight = -1
				}
				st2, err := fast.Attach(st.Arena(), cfg)
				if err != nil {
					t.Fatalf("%v crash@%d: attach: %v", variant, kpt, err)
				}
				if err := st2.Recover(); err != nil {
					t.Fatalf("%v crash@%d: recover: %v", variant, kpt, err)
				}
				label := fmt.Sprintf("%v crash@%d evict=%.1f", variant, kpt, opts.EvictProb)
				checkRecovered(t, st2, committed, inflight, valSize, label)
			}
		}
	}
}

// TestCrashDuringMixedWorkload stresses recovery across updates and deletes
// too: whatever the crash point, the recovered tree must equal the state at
// some transaction boundary (the last committed one, or one later).
func TestCrashDuringMixedWorkload(t *testing.T) {
	cfg := fast.Config{PageSize: 256, MaxPages: 2048, Variant: fast.InPlaceCommit}
	type op struct {
		kind int // 0 insert, 1 update, 2 delete
		i    int
		size int
	}
	rng := rand.New(rand.NewSource(5))
	var ops []op
	for s := 0; s < 40; s++ {
		ops = append(ops, op{kind: rng.Intn(3), i: rng.Intn(25), size: 10 + rng.Intn(50)})
	}
	apply := func(m map[string]string, o op) {
		switch o.kind {
		case 0:
			if _, ok := m[string(k(o.i))]; !ok {
				m[string(k(o.i))] = string(v(o.i, o.size))
			}
		case 1:
			if _, ok := m[string(k(o.i))]; ok {
				m[string(k(o.i))] = string(v(o.i, o.size))
			}
		case 2:
			delete(m, string(k(o.i)))
		}
	}
	run := func(tr *Tree, committed *int) {
		for _, o := range ops {
			var err error
			switch o.kind {
			case 0:
				err = tr.Insert(k(o.i), v(o.i, o.size))
			case 1:
				err = tr.Update(k(o.i), v(o.i, o.size))
			case 2:
				err = tr.Delete(k(o.i))
			}
			// "key not found"/"duplicate" failures still commit boundaries
			// in the model: the transaction was a no-op.
			_ = err
			*committed++
		}
	}
	// Count crash points.
	sys := pmem.NewSystem(pmem.DefaultLatencies(300, 300))
	st := fast.Create(sys, cfg)
	n := 0
	base := sys.CrashPoints()
	run(New(st), &n)
	total := sys.CrashPoints() - base
	step := total / 80
	if step == 0 {
		step = 1
	}
	if testing.Short() {
		step = total / 15
	}
	for kpt := int64(0); kpt < total; kpt += step {
		sys := pmem.NewSystem(pmem.DefaultLatencies(300, 300))
		st := fast.Create(sys, cfg)
		tr := New(st)
		committed := 0
		sys.CrashAfter(kpt)
		sys.RunToCrash(func() { run(tr, &committed) })
		sys.Crash(pmem.CrashOptions{Seed: kpt, EvictProb: 0.5})

		st2, err := fast.Attach(st.Arena(), cfg)
		if err != nil {
			t.Fatalf("crash@%d: attach: %v", kpt, err)
		}
		if err := st2.Recover(); err != nil {
			t.Fatalf("crash@%d: recover: %v", kpt, err)
		}
		tr2 := New(st2)
		tx, err := tr2.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Validate(); err != nil {
			t.Fatalf("crash@%d: invalid tree: %v", kpt, err)
		}
		got := map[string]string{}
		if err := tx.Scan(nil, nil, func(key, val []byte) bool {
			got[string(key)] = string(val)
			return true
		}); err != nil {
			t.Fatalf("crash@%d: scan: %v", kpt, err)
		}
		tx.Rollback()
		// The recovered state must equal the model at `committed` ops or at
		// `committed+1` (mark written, Commit not yet returned).
		model := map[string]string{}
		for i := 0; i < committed && i < len(ops); i++ {
			apply(model, ops[i])
		}
		if !mapsEqual(got, model) {
			model2 := map[string]string{}
			for i := 0; i <= committed && i < len(ops); i++ {
				apply(model2, ops[i])
			}
			if !mapsEqual(got, model2) {
				t.Fatalf("crash@%d: recovered state matches neither boundary (committed=%d)\n got: %v\n want: %v or %v",
					kpt, committed, summarize(got), summarize(model), summarize(model2))
			}
		}
	}
}

func mapsEqual(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func summarize(m map[string]string) []string {
	var out []string
	for k, v := range m {
		out = append(out, fmt.Sprintf("%s(%d)", k, len(v)))
	}
	sort.Strings(out)
	return out
}
