// Package btree implements a B+-tree of slotted pages over the pager
// abstraction, following the paper's SQLite case study (§4):
//
//   - variable-length records live in leaf pages; interior pages hold
//     separator cells (key, child) where key is the largest key in the
//     child's subtree, plus a rightmost-child pointer;
//   - a page split allocates a new LEFT sibling, copies the keys smaller
//     than the median into it, truncates the original page's offset array
//     (a header-only change), and inserts the new separator into the
//     parent's free space (Figure 4);
//   - fragmentation is repaired by on-demand copy-on-write defragmentation:
//     live cells are copied to a fresh page and the parent's child pointer
//     is swapped out of place (§4.3).
//
// All mutations run inside a pager transaction; the commit scheme of the
// underlying store (FAST, FAST+, NVWAL, …) decides how they become durable.
package btree

import (
	"bytes"
	"errors"
	"fmt"

	"fasp/internal/pager"
	"fasp/internal/phase"
	"fasp/internal/slotted"
)

// Errors returned by tree operations.
var (
	// ErrKeyNotFound reports an Update/Delete of an absent key.
	ErrKeyNotFound = errors.New("btree: key not found")
	// ErrTooLarge reports a record that cannot fit in an empty page.
	ErrTooLarge = errors.New("btree: record too large for page")
)

// Tree is a B+-tree bound to a store.
type Tree struct {
	st pager.Store
	// pathBuf is the descent-path buffer handed to each transaction in turn
	// (the store is single-writer, so at most one borrows it at a time).
	pathBuf []pathElem
}

// New binds a tree to a store. The tree's root pointer lives in the store's
// metadata; an empty store is an empty tree.
func New(st pager.Store) *Tree { return &Tree{st: st} }

// Store returns the underlying store.
func (t *Tree) Store() pager.Store { return t.st }

// Begin opens a read-write transaction on the tree. The tree's root is the
// store's root pointer.
func (t *Tree) Begin() (*Tx, error) {
	ptx, err := t.st.Begin()
	if err != nil {
		return nil, err
	}
	tx := &Tx{st: t.st, p: ptx, root: ptx, owns: true, tree: t, path: t.pathBuf[:0]}
	t.pathBuf = nil
	return tx, nil
}

// RootRef locates a tree's root pointer. A pager.Txn is itself a RootRef
// (the store's primary tree); the SQL engine supplies RootRefs backed by
// catalog rows so that many trees share one transaction.
type RootRef interface {
	Root() uint32
	SetRoot(no uint32)
}

// Attach opens a tree view over an existing pager transaction with an
// external root pointer. The caller owns the transaction's lifecycle:
// Commit and Rollback on an attached Tx are errors by construction and
// must not be called.
func Attach(st pager.Store, ptx pager.Txn, root RootRef) *Tx {
	return &Tx{st: st, p: ptx, root: root}
}

// Insert runs a single-insert transaction — the paper's canonical mobile
// workload (one INSERT statement per transaction).
func (t *Tree) Insert(key, val []byte) error {
	return t.inTx(func(tx *Tx) error { return tx.Insert(key, val) })
}

// Update runs a single-update transaction.
func (t *Tree) Update(key, val []byte) error {
	return t.inTx(func(tx *Tx) error { return tx.Update(key, val) })
}

// Put runs a single-upsert transaction: insert, or replace on duplicate —
// one transaction (one commit, one simulated-time accounting unit) either
// way, unlike an Insert-then-Update pair at this level, which would pay
// the commit protocol twice for one logical op.
func (t *Tree) Put(key, val []byte) error {
	return t.inTx(func(tx *Tx) error { return tx.Put(key, val) })
}

// Delete runs a single-delete transaction.
func (t *Tree) Delete(key []byte) error {
	return t.inTx(func(tx *Tx) error { return tx.Delete(key) })
}

func (t *Tree) inTx(fn func(*Tx) error) error {
	tx, err := t.Begin()
	if err != nil {
		return err
	}
	if err := fn(tx); err != nil {
		tx.Rollback()
		return err
	}
	return tx.Commit()
}

// Get looks a key up in its own read-only transaction.
func (t *Tree) Get(key []byte) ([]byte, bool, error) {
	tx, err := t.Begin()
	if err != nil {
		return nil, false, err
	}
	defer tx.Rollback()
	return tx.Get(key)
}

// Scan iterates records with keys in [lo, hi] (nil bounds are open) in key
// order, stopping early if fn returns false.
func (t *Tree) Scan(lo, hi []byte, fn func(key, val []byte) bool) error {
	tx, err := t.Begin()
	if err != nil {
		return err
	}
	defer tx.Rollback()
	return tx.Scan(lo, hi, fn)
}

// Tx is a transaction on the tree. All operations share the transaction's
// working state and commit (or vanish) together.
type Tx struct {
	st   pager.Store
	p    pager.Txn
	root RootRef
	tree *Tree      // set when created by Tree.Begin; owns pathBuf loan
	path []pathElem // descent-path buffer, reused across descends
	owns bool       // Tx owns the pager transaction's lifecycle
	done bool
}

// release returns the borrowed descent-path buffer to the tree.
func (x *Tx) release() {
	if x.tree != nil {
		x.tree.pathBuf = x.path[:0]
		x.path = nil
		x.tree = nil
	}
}

// Pager exposes the underlying pager transaction.
func (x *Tx) Pager() pager.Txn { return x.p }

// Commit commits the transaction through the store's scheme.
func (x *Tx) Commit() error {
	if !x.owns {
		return fmt.Errorf("btree: commit on attached transaction")
	}
	x.done = true
	x.release()
	return x.p.Commit()
}

// Rollback abandons the transaction.
func (x *Tx) Rollback() {
	if x.done || !x.owns {
		return
	}
	x.done = true
	x.release()
	x.p.Rollback()
}

// pathElem is one step of a root-to-leaf descent.
type pathElem struct {
	no     uint32
	page   *slotted.Page
	idx    int  // which cell was followed (when !viaAux)
	viaAux bool // followed the rightmost-child pointer
}

// descend walks from the root to the leaf that owns key.
func (x *Tx) descend(key []byte) ([]pathElem, error) {
	no := x.root.Root()
	if no == 0 {
		return nil, nil
	}
	path := x.path[:0]
	defer func() { x.path = path }()
	for {
		p, err := x.p.Page(no)
		if err != nil {
			return nil, err
		}
		if p.Type() == slotted.TypeLeaf {
			path = append(path, pathElem{no: no, page: p})
			return path, nil
		}
		i, _ := p.Search(key)
		if i < p.NCells() {
			path = append(path, pathElem{no: no, page: p, idx: i})
			no = p.Child(i)
		} else {
			path = append(path, pathElem{no: no, page: p, viaAux: true})
			no = p.Aux()
			if no == 0 {
				return nil, fmt.Errorf("%w: interior page %d lacks rightmost child",
					pager.ErrCorrupt, path[len(path)-1].no)
			}
		}
		if len(path) > 64 {
			return nil, fmt.Errorf("%w: descent too deep (cycle?)", pager.ErrCorrupt)
		}
	}
}

// Get returns the value stored under key.
func (x *Tx) Get(key []byte) ([]byte, bool, error) {
	clock := x.st.Sys().Clock()
	clock.Enter(phase.Search)
	path, err := x.descend(key)
	clock.Exit(phase.Search)
	if err != nil || path == nil {
		return nil, false, err
	}
	leaf := path[len(path)-1].page
	i, found := leaf.Search(key)
	if !found {
		return nil, false, nil
	}
	return leaf.Value(i), true, nil
}

// Insert adds a record; duplicate keys are rejected.
func (x *Tx) Insert(key, val []byte) error {
	if cellSize(key, val) > x.maxCell() {
		return fmt.Errorf("%w: %d-byte cell", ErrTooLarge, cellSize(key, val))
	}
	clock := x.st.Sys().Clock()
	for attempt := 0; ; attempt++ {
		if attempt > 64 {
			return fmt.Errorf("%w: insert did not converge", pager.ErrCorrupt)
		}
		clock.Enter(phase.Search)
		path, err := x.descend(key)
		clock.Exit(phase.Search)
		if err != nil {
			return err
		}
		if path == nil {
			// Empty tree: allocate the root leaf.
			_, _, err := x.allocRoot()
			if err != nil {
				return err
			}
			continue
		}
		var opErr error
		clock.InPhase(phase.PageUpdate, func() {
			opErr = x.insertAt(path, key, val)
		})
		switch {
		case opErr == nil:
			return nil
		case errors.Is(opErr, errRetry):
			continue
		default:
			return opErr
		}
	}
}

// errRetry asks the outer loop to re-descend after a structural change.
var errRetry = errors.New("btree: retry after structural change")

// leafCellCap returns the store's leaf-fanout bound (FAST+ keeps leaf
// headers within one cache line so the in-place commit stays eligible).
func (x *Tx) leafCellCap() int {
	if c, ok := x.st.(interface{ LeafCellCap() int }); ok {
		return c.LeafCellCap()
	}
	return 0
}

func (x *Tx) insertAt(path []pathElem, key, val []byte) error {
	leaf := path[len(path)-1].page
	if cap := x.leafCellCap(); cap > 0 && leaf.NCells() >= cap {
		// The offset array is at its in-place commit limit: split early.
		if serr := x.split(path); serr != nil {
			return serr
		}
		return errRetry
	}
	var err error
	x.st.Sys().Clock().InPhase(phase.RecordWrite, func() {
		err = leaf.Insert(key, val)
	})
	switch {
	case err == nil:
		x.p.OpEnd()
		return nil
	case errors.Is(err, slotted.ErrDuplicate):
		return err
	case errors.Is(err, slotted.ErrNeedsDefrag):
		if _, derr := x.defrag(path, len(path)-1); derr != nil {
			return derr
		}
		return errRetry
	case errors.Is(err, slotted.ErrPageFull):
		if serr := x.split(path); serr != nil {
			return serr
		}
		return errRetry
	default:
		return err
	}
}

// Put upserts inside the transaction: insert, or replace the value on a
// duplicate key. The duplicate probe is Insert's own (it reports
// ErrDuplicate before mutating anything), so Put costs exactly an Insert
// when the key is new and an Insert-probe plus an Update when it exists.
func (x *Tx) Put(key, val []byte) error {
	err := x.Insert(key, val)
	if errors.Is(err, slotted.ErrDuplicate) {
		return x.Update(key, val)
	}
	return err
}

// Update replaces the value under key (out of place at the page level).
func (x *Tx) Update(key, val []byte) error {
	clock := x.st.Sys().Clock()
	for attempt := 0; ; attempt++ {
		if attempt > 64 {
			return fmt.Errorf("%w: update did not converge", pager.ErrCorrupt)
		}
		clock.Enter(phase.Search)
		path, err := x.descend(key)
		clock.Exit(phase.Search)
		if err != nil {
			return err
		}
		if path == nil {
			return fmt.Errorf("%w: %x", ErrKeyNotFound, key)
		}
		leaf := path[len(path)-1].page
		i, found := leaf.Search(key)
		if !found {
			return fmt.Errorf("%w: %x", ErrKeyNotFound, key)
		}
		var opErr error
		clock.InPhase(phase.PageUpdate, func() {
			clock.InPhase(phase.RecordWrite, func() {
				opErr = leaf.Update(i, val)
			})
			if opErr == nil {
				x.p.OpEnd()
			}
		})
		switch {
		case opErr == nil:
			return nil
		case errors.Is(opErr, slotted.ErrNeedsDefrag):
			clock.Enter(phase.PageUpdate)
			_, derr := x.defrag(path, len(path)-1)
			clock.Exit(phase.PageUpdate)
			if derr != nil {
				return derr
			}
		case errors.Is(opErr, slotted.ErrPageFull):
			// Larger value that no longer fits: delete + reinsert (the
			// reinsert may split).
			if err := x.Delete(key); err != nil {
				return err
			}
			return x.Insert(key, val)
		default:
			return opErr
		}
	}
}

// Delete removes the record under key. Leaves that become empty are
// reclaimed when they are not the parent's rightmost child.
func (x *Tx) Delete(key []byte) error {
	clock := x.st.Sys().Clock()
	clock.Enter(phase.Search)
	path, err := x.descend(key)
	clock.Exit(phase.Search)
	if err != nil {
		return err
	}
	if path == nil {
		return fmt.Errorf("%w: %x", ErrKeyNotFound, key)
	}
	leaf := path[len(path)-1].page
	i, found := leaf.Search(key)
	if !found {
		return fmt.Errorf("%w: %x", ErrKeyNotFound, key)
	}
	clock.InPhase(phase.PageUpdate, func() {
		clock.InPhase(phase.RecordWrite, func() {
			err = leaf.Delete(i)
		})
		if err == nil {
			x.reclaimIfEmpty(path)
			x.p.OpEnd()
		}
	})
	return err
}

// reclaimIfEmpty frees an empty leaf that is addressed through a parent
// cell (not the rightmost pointer), removing the separator. A root leaf
// stays; an empty-celled interior root collapses to its rightmost child.
func (x *Tx) reclaimIfEmpty(path []pathElem) {
	leaf := path[len(path)-1].page
	if leaf.NCells() != 0 || len(path) == 1 {
		return
	}
	parentElem := path[len(path)-2]
	if parentElem.viaAux {
		return // rightmost child: keep as the insertion frontier
	}
	if err := parentElem.page.Delete(parentElem.idx); err != nil {
		return // non-fatal: the empty leaf just stays
	}
	x.p.FreePage(path[len(path)-1].no)
	// Collapse a rootward chain of empty interior pages.
	if len(path) == 2 && parentElem.page.NCells() == 0 && parentElem.page.Aux() != 0 {
		x.root.SetRoot(parentElem.page.Aux())
		x.p.FreePage(parentElem.no)
	}
}

// allocRoot creates the root leaf of an empty tree.
func (x *Tx) allocRoot() (uint32, *slotted.Page, error) {
	no, p, err := x.p.AllocPage(slotted.TypeLeaf)
	if err != nil {
		return 0, nil, err
	}
	x.root.SetRoot(no)
	return no, p, nil
}

// cellSize mirrors the slotted leaf-cell layout.
func cellSize(key, val []byte) int { return 4 + len(key) + len(val) }

// maxCell is the largest leaf cell an empty page can host.
func (x *Tx) maxCell() int {
	return x.p.PageSize() - slotted.HeaderFixedSize - 2
}

// keyUpperBoundOK reports key order for validation.
func keyLE(a, b []byte) bool { return bytes.Compare(a, b) <= 0 }
