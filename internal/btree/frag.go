package btree

import (
	"fmt"

	"fasp/internal/pager"
	"fasp/internal/phase"
	"fasp/internal/slotted"
)

// FragReport summarises committed-leaf fragmentation: how much of the cell
// area (the region below the content pointer, where cells live) is dead —
// freed by deletes and out-of-place updates but not yet reclaimed by a
// copy-on-write defragmentation (§4.3).
type FragReport struct {
	// Leaves is the number of leaf pages visited.
	Leaves int
	// CellArea is the total cell-area bytes across leaves (page size minus
	// content-pointer offset).
	CellArea int64
	// DeadBytes is the cell-area bytes not covered by live cells.
	DeadBytes int64
	// HotKeys holds the first key of each leaf whose dead ratio met the
	// scan threshold (bounded by the scan's maxHot) — handles a later
	// DefragLeaves call can descend to.
	HotKeys [][]byte
}

// Ratio returns DeadBytes/CellArea in [0,1] (0 for an empty tree).
func (r *FragReport) Ratio() float64 {
	if r.CellArea == 0 {
		return 0
	}
	return float64(r.DeadBytes) / float64(r.CellArea)
}

// FragScan walks every committed leaf and measures its fragmentation,
// recording the first key of up to maxHot leaves whose dead ratio is ≥
// threshold. Like every View walk it only Peeks committed state — no clock
// advance, no cache fills, no crash points — so the shard engine can measure
// under the read epoch without perturbing the golden determinism files; the
// Peek cost accrues to Cost as usual.
func (v *View) FragScan(threshold float64, maxHot int) (FragReport, error) {
	var rep FragReport
	err := v.run(func() error {
		root := v.sr.CommittedRoot()
		if root == 0 {
			return nil
		}
		depth := 0
		push := func(no uint32) error {
			if depth > 64 {
				return fmt.Errorf("%w: descent too deep (cycle?)", pager.ErrCorrupt)
			}
			if _, err := v.open(depth, no); err != nil {
				return err
			}
			depth++
			return nil
		}
		if err := push(root); err != nil {
			return err
		}
		for depth > 0 {
			f := v.frames[depth-1]
			p := &f.page
			if p.Type() == slotted.TypeLeaf {
				area := int64(v.pageSize) - int64(p.Header().Content)
				dead := area - int64(p.LiveBytes())
				if dead < 0 {
					dead = 0
				}
				rep.Leaves++
				rep.CellArea += area
				rep.DeadBytes += dead
				if p.NCells() > 0 && area > 0 && len(rep.HotKeys) < maxHot &&
					float64(dead) >= threshold*float64(area) {
					rep.HotKeys = append(rep.HotKeys, append([]byte(nil), p.Key(0)...))
				}
				depth--
				continue
			}
			// Interior: children are cell 0..n-1, then the rightmost pointer.
			if f.next > p.NCells() {
				depth--
				continue
			}
			var child uint32
			if f.next < p.NCells() {
				child = p.Child(f.next)
			} else {
				child = p.Aux()
			}
			f.next++
			if child == 0 {
				continue
			}
			if err := push(child); err != nil {
				return err
			}
		}
		return nil
	})
	return rep, err
}

// DefragLeaves rewrites the leaves owning the given keys copy-on-write
// (§4.3) in one transaction, reclaiming their dead cell space, stopping
// after max leaves. It is the proactive counterpart of the on-demand defrag
// an insert triggers when a page has room only in its dead space: the
// adaptive controller calls it during idle group-commit slots with the hot
// keys a FragScan reported. Returns the number of leaves rewritten; when
// none were (empty tree, vanished keys) nothing is committed.
func (t *Tree) DefragLeaves(keys [][]byte, max int) (int, error) {
	if len(keys) == 0 || max <= 0 {
		return 0, nil
	}
	tx, err := t.Begin()
	if err != nil {
		return 0, err
	}
	clock := t.st.Sys().Clock()
	n := 0
	for _, key := range keys {
		if n >= max {
			break
		}
		clock.Enter(phase.Search)
		path, derr := tx.descend(key)
		clock.Exit(phase.Search)
		if derr != nil {
			tx.Rollback()
			return 0, derr
		}
		if path == nil {
			continue
		}
		clock.Enter(phase.PageUpdate)
		_, derr = tx.defrag(path, len(path)-1)
		if derr == nil {
			tx.p.OpEnd()
		}
		clock.Exit(phase.PageUpdate)
		if derr != nil {
			tx.Rollback()
			return 0, derr
		}
		n++
	}
	if n == 0 {
		tx.Rollback()
		return 0, nil
	}
	return n, tx.Commit()
}
