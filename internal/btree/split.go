package btree

import (
	"fmt"

	"fasp/internal/pager"
	"fasp/internal/phase"
	"fasp/internal/slotted"
)

// split splits the leaf at the end of the descent path, following the
// paper's Figure 4: allocate a new LEFT sibling, copy the keys below the
// median into it, truncate the original page's offset array (header-only),
// and add the separator to the parent — recursively splitting parents as
// needed. The original page never moves, so ancestors' child references to
// it stay valid throughout the cascade.
func (x *Tx) split(path []pathElem) error {
	_, _, err := x.splitLevel(path, len(path)-1)
	return err
}

// splitLevel splits path[level], returning the new left sibling and its
// separator key (the largest key it holds).
func (x *Tx) splitLevel(path []pathElem, level int) (*slotted.Page, []byte, error) {
	pg := path[level].page
	n := pg.NCells()
	if n < 2 {
		return nil, nil, fmt.Errorf("%w: cannot split page with %d cells", ErrTooLarge, n)
	}
	m := n / 2
	sep := pg.Key(m - 1)
	newNo, left, err := x.p.AllocPage(pg.Type())
	if err != nil {
		return nil, nil, err
	}
	if pg.Type() == slotted.TypeInterior {
		// The median cell's child becomes the left sibling's rightmost
		// pointer: left covers (…, sep], keyed by cells [0, m-1).
		if err := pg.CopyRangeTo(left, 0, m-1); err != nil {
			return nil, nil, err
		}
		left.SetAux(pg.Child(m - 1))
	} else if err := pg.CopyRangeTo(left, 0, m); err != nil {
		return nil, nil, err
	}
	pg.TruncateKeepUpper(m)
	if ns, ok := x.st.(interface{ NoteSplit() }); ok {
		ns.NoteSplit()
	}
	if err := x.addSeparator(path, level-1, sep, newNo, path[level].no); err != nil {
		return nil, nil, err
	}
	return left, sep, nil
}

// addSeparator inserts the cell (sep, childNo) into the interior page at
// path[level]. level < 0 means childNo's right sibling rightNo was the
// root: a new root is created above both.
func (x *Tx) addSeparator(path []pathElem, level int, sep []byte, childNo, rightNo uint32) error {
	if level < 0 {
		rootNo, root, err := x.p.AllocPage(slotted.TypeInterior)
		if err != nil {
			return err
		}
		if err := root.InsertChild(sep, childNo); err != nil {
			return err
		}
		root.SetAux(rightNo)
		x.root.SetRoot(rootNo)
		return nil
	}
	target := path[level].page
	for try := 0; try < 16; try++ {
		err := target.InsertChild(sep, childNo)
		if err == nil {
			return nil
		}
		if target != path[level].page {
			// A freshly split-off sibling could not absorb one separator:
			// pathological key sizes beyond the supported limits.
			return fmt.Errorf("%w: separator does not fit a fresh sibling", ErrTooLarge)
		}
		switch {
		case isNeedsDefrag(err):
			np, derr := x.defrag(path, level)
			if derr != nil {
				return derr
			}
			target = np
		case isPageFull(err):
			left, leftSep, serr := x.splitLevel(path, level)
			if serr != nil {
				return serr
			}
			if keyLE(sep, leftSep) {
				target = left
			} else {
				target = path[level].page
			}
		default:
			return err
		}
	}
	return fmt.Errorf("%w: separator insertion did not converge", pager.ErrCorrupt)
}

// defrag performs the paper's copy-on-write defragmentation (§4.3): live
// cells are copied compactly to a fresh page, and the parent's reference is
// swapped to the new page (out of place). The old page is freed at commit.
// The descent path entry is updated in place.
func (x *Tx) defrag(path []pathElem, level int) (*slotted.Page, error) {
	var np *slotted.Page
	var err error
	x.st.Sys().Clock().InPhase(phase.Defrag, func() {
		np, err = x.defragLocked(path, level)
	})
	return np, err
}

func (x *Tx) defragLocked(path []pathElem, level int) (*slotted.Page, error) {
	old := path[level]
	x.p.Defragged()
	newNo, np, err := x.p.AllocPage(old.page.Type())
	if err != nil {
		return nil, err
	}
	if err := old.page.CopyRangeTo(np, 0, old.page.NCells()); err != nil {
		return nil, err
	}
	np.SetAux(old.page.Aux())
	if level == 0 {
		x.root.SetRoot(newNo)
	} else {
		if err := x.relinkChild(path, level-1, old.no, newNo); err != nil {
			return nil, err
		}
	}
	x.p.FreePage(old.no)
	path[level] = pathElem{no: newNo, page: np, idx: old.idx, viaAux: old.viaAux}
	return np, nil
}

// relinkChild swaps the parent's reference from oldNo to newNo. The
// rightmost pointer is a header field (atomic with the commit); a cell
// reference is replaced out of place, falling back to delete+reinsert when
// the parent itself lacks space.
func (x *Tx) relinkChild(path []pathElem, parentLevel int, oldNo, newNo uint32) error {
	parent := path[parentLevel].page
	idx, viaAux, ok := findChildRef(parent, oldNo)
	if !ok {
		return fmt.Errorf("%w: page %d not referenced by its parent", pager.ErrCorrupt, oldNo)
	}
	if viaAux {
		parent.SetAux(newNo)
		return nil
	}
	err := parent.UpdateChild(idx, newNo)
	if err == nil {
		return nil
	}
	if !isNeedsDefrag(err) && !isPageFull(err) {
		return err
	}
	// No in-page room for the replacement cell: remove the old cell and
	// reinsert through the full separator machinery (may defrag or split
	// the parent).
	sepKey := parent.Key(idx)
	if err := parent.Delete(idx); err != nil {
		return err
	}
	return x.addSeparator(path, parentLevel, sepKey, newNo, 0)
}

// findChildRef locates the reference to child no in an interior page.
func findChildRef(parent *slotted.Page, no uint32) (idx int, viaAux, ok bool) {
	if parent.Aux() == no {
		return 0, true, true
	}
	for i := 0; i < parent.NCells(); i++ {
		if parent.Child(i) == no {
			return i, false, true
		}
	}
	return 0, false, false
}

func isNeedsDefrag(err error) bool { return errorsIs(err, slotted.ErrNeedsDefrag) }
func isPageFull(err error) bool    { return errorsIs(err, slotted.ErrPageFull) }
