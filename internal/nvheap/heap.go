// Package nvheap is a user-level persistent-memory heap (pmalloc/pfree), the
// substrate NVWAL uses to allocate write-ahead-log frames in PM. The paper
// measures this "Heap Management" overhead at roughly 3 µs per transaction
// commit (Figure 8); the cost emerges here naturally from the free-list
// walks, header stores, flushes and fences a persistent allocator performs.
//
// Layout: the managed region starts with a heap header, followed by blocks.
// Every block carries a 16-byte header {size, next}. Free blocks are linked
// in an address-ordered free list rooted in the heap header, which enables
// coalescing with the successor on free.
//
// Crash behaviour: metadata updates are ordered (new headers are written and
// flushed before the links that publish them), so after a crash the free
// list is always structurally valid and every block header is intact; at
// worst a block that was mid-allocation leaks. That matches real PM
// allocators that rely on a post-crash garbage collection or log.
package nvheap

import (
	"errors"
	"fmt"

	"fasp/internal/pmem"
)

const (
	headerSize    = 32 // heap header: magic, freeHead, used, total
	blockHeader   = 16 // block header: size, next
	minBlockSize  = blockHeader + 16
	magic         = 0x4E564845_41503031 // "NVHEAP01"
	allocatedMark = ^uint64(0)          // next field of an allocated block
)

// Errors returned by heap operations.
var (
	ErrOutOfMemory = errors.New("nvheap: out of memory")
	ErrBadFree     = errors.New("nvheap: free of invalid or unallocated block")
	ErrCorrupt     = errors.New("nvheap: heap metadata corrupt")
)

// Heap manages a region [base, base+size) of a PM arena.
type Heap struct {
	a    *pmem.Arena
	base int64
	size int64
}

// Format initialises a fresh heap over the region and returns it.
func Format(a *pmem.Arena, base, size int64) *Heap {
	if size < headerSize+minBlockSize {
		panic("nvheap: region too small")
	}
	h := &Heap{a: a, base: base, size: size}
	first := base + headerSize
	// First (and only) free block spans the whole region.
	h.writeBlockHeader(first, uint64(size-headerSize), 0)
	a.Persist(first, blockHeader)
	a.StoreU64(base+8, uint64(first)) // freeHead
	a.StoreU64(base+16, 0)            // used bytes
	a.StoreU64(base+24, uint64(size)) // total
	a.StoreU64(base, magic)
	a.Persist(base, headerSize)
	return h
}

// Open attaches to a previously formatted heap, verifying its metadata.
func Open(a *pmem.Arena, base, size int64) (*Heap, error) {
	h := &Heap{a: a, base: base, size: size}
	if a.LoadU64(base) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if int64(a.LoadU64(base+24)) != size {
		return nil, fmt.Errorf("%w: size mismatch", ErrCorrupt)
	}
	if err := h.Verify(); err != nil {
		return nil, err
	}
	return h, nil
}

func (h *Heap) writeBlockHeader(off int64, size, next uint64) {
	h.a.StoreU64(off, size)
	h.a.StoreU64(off+8, next)
}

func (h *Heap) freeHead() int64           { return int64(h.a.LoadU64(h.base + 8)) }
func (h *Heap) setFreeHead(v int64)       { h.a.StoreU64(h.base+8, uint64(v)); h.a.Persist(h.base+8, 8) }
func (h *Heap) used() int64               { return int64(h.a.LoadU64(h.base + 16)) }
func (h *Heap) setUsed(v int64)           { h.a.StoreU64(h.base+16, uint64(v)) }
func (h *Heap) blockSize(off int64) int64 { return int64(h.a.LoadU64(off)) }
func (h *Heap) blockNext(off int64) int64 { return int64(h.a.LoadU64(off + 8)) }

func align(n int64) int64 {
	const a = 16
	return (n + a - 1) &^ (a - 1)
}

// Alloc allocates n usable bytes and returns the PM offset of the payload
// (base-relative absolute arena offset). First-fit over the address-ordered
// free list.
func (h *Heap) Alloc(n int64) (int64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("nvheap: invalid allocation size %d", n)
	}
	need := align(n + blockHeader)
	if need < minBlockSize {
		need = minBlockSize
	}
	prev := int64(0) // 0 = head pointer in heap header
	cur := h.freeHead()
	for cur != 0 {
		sz := h.blockSize(cur)
		if sz >= need {
			return h.takeBlock(prev, cur, sz, need), nil
		}
		prev = cur
		cur = h.blockNext(cur)
	}
	return 0, fmt.Errorf("%w: %d bytes requested", ErrOutOfMemory, n)
}

// takeBlock carves need bytes from the free block cur (whose predecessor in
// the free list is prev; prev==0 means the list head).
func (h *Heap) takeBlock(prev, cur, sz, need int64) int64 {
	next := h.blockNext(cur)
	replacement := next
	if sz-need >= minBlockSize {
		// Split: the remainder becomes a free block. Write and flush the
		// remainder's header before publishing it in the list, so a crash
		// never exposes an unwritten header.
		rem := cur + need
		h.writeBlockHeader(rem, uint64(sz-need), uint64(next))
		h.a.Persist(rem, blockHeader)
		replacement = rem
		h.a.StoreU64(cur, uint64(need))
	}
	// Unlink cur (or link the remainder) — a single 8-byte atomic update.
	if prev == 0 {
		h.setFreeHead(replacement)
	} else {
		h.a.StoreU64(prev+8, uint64(replacement))
		h.a.Persist(prev+8, 8)
	}
	h.a.StoreU64(cur+8, allocatedMark)
	h.a.Persist(cur, blockHeader)
	h.setUsed(h.used() + h.blockSize(cur))
	h.a.Persist(h.base+16, 8)
	return cur + blockHeader
}

// Free returns a previously allocated payload offset to the heap,
// coalescing with the following block when adjacent.
func (h *Heap) Free(payload int64) error {
	blk := payload - blockHeader
	if blk < h.base+headerSize || blk >= h.base+h.size {
		return fmt.Errorf("%w: offset %d outside heap", ErrBadFree, payload)
	}
	if h.a.LoadU64(blk+8) != allocatedMark {
		return fmt.Errorf("%w: offset %d", ErrBadFree, payload)
	}
	sz := h.blockSize(blk)
	h.setUsed(h.used() - sz)
	h.a.Persist(h.base+16, 8)

	// Find the insertion point in the address-ordered list.
	prev := int64(0)
	cur := h.freeHead()
	for cur != 0 && cur < blk {
		prev = cur
		cur = h.blockNext(cur)
	}
	// Coalesce with successor if adjacent.
	if cur != 0 && blk+sz == cur {
		sz += h.blockSize(cur)
		cur = h.blockNext(cur)
	}
	// Coalesce with predecessor if adjacent.
	if prev != 0 && prev+h.blockSize(prev) == blk {
		h.a.StoreU64(prev, uint64(h.blockSize(prev)+sz))
		h.a.StoreU64(prev+8, uint64(cur))
		h.a.Persist(prev, blockHeader)
		return nil
	}
	h.writeBlockHeader(blk, uint64(sz), uint64(cur))
	h.a.Persist(blk, blockHeader)
	if prev == 0 {
		h.setFreeHead(blk)
	} else {
		h.a.StoreU64(prev+8, uint64(blk))
		h.a.Persist(prev+8, 8)
	}
	return nil
}

// UsableSize reports the payload capacity of an allocated block.
func (h *Heap) UsableSize(payload int64) int64 {
	return h.blockSize(payload-blockHeader) - blockHeader
}

// FreeBytes walks the free list and returns the total free payload capacity.
func (h *Heap) FreeBytes() int64 {
	total := int64(0)
	for cur := h.freeHead(); cur != 0; cur = h.blockNext(cur) {
		total += h.blockSize(cur) - blockHeader
	}
	return total
}

// UsedBytes returns the bytes currently allocated (including headers).
func (h *Heap) UsedBytes() int64 { return h.used() }

// Verify checks structural invariants of the free list: address order,
// in-bounds blocks, no overlap, sane sizes.
func (h *Heap) Verify() error {
	last := int64(0)
	seen := 0
	for cur := h.freeHead(); cur != 0; cur = h.blockNext(cur) {
		if cur <= last {
			return fmt.Errorf("%w: free list not address ordered at %d", ErrCorrupt, cur)
		}
		sz := h.blockSize(cur)
		if sz < minBlockSize || cur+sz > h.base+h.size {
			return fmt.Errorf("%w: block %d size %d out of bounds", ErrCorrupt, cur, sz)
		}
		if last != 0 && last+h.blockSize(last) > cur {
			return fmt.Errorf("%w: blocks %d and %d overlap", ErrCorrupt, last, cur)
		}
		last = cur
		if seen++; seen > 1<<22 {
			return fmt.Errorf("%w: free list cycle", ErrCorrupt)
		}
	}
	return nil
}
