package nvheap

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"fasp/internal/pmem"
)

func newHeap(t *testing.T, size int64) (*pmem.System, *pmem.Arena, *Heap) {
	t.Helper()
	sys := pmem.NewSystem(pmem.DefaultLatencies(300, 300))
	a := sys.NewArena("pm", size, pmem.PM)
	return sys, a, Format(a, 0, size)
}

func TestAllocFreeRoundTrip(t *testing.T) {
	_, a, h := newHeap(t, 1<<16)
	off, err := h.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if h.UsableSize(off) < 100 {
		t.Fatalf("usable size %d < 100", h.UsableSize(off))
	}
	a.Store(off, make([]byte, 100)) // payload is writable
	if err := h.Free(off); err != nil {
		t.Fatal(err)
	}
	if err := h.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocationsDoNotOverlap(t *testing.T) {
	_, _, h := newHeap(t, 1<<16)
	type blk struct{ off, n int64 }
	var blocks []blk
	for i := 0; i < 50; i++ {
		n := int64(10 + i*7)
		off, err := h.Alloc(n)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range blocks {
			if off < b.off+b.n && b.off < off+n {
				t.Fatalf("alloc [%d,%d) overlaps [%d,%d)", off, off+n, b.off, b.off+b.n)
			}
		}
		blocks = append(blocks, blk{off, n})
	}
}

func TestFreeCoalesces(t *testing.T) {
	_, _, h := newHeap(t, 1<<14)
	before := h.FreeBytes()
	var offs []int64
	for i := 0; i < 8; i++ {
		off, err := h.Alloc(200)
		if err != nil {
			t.Fatal(err)
		}
		offs = append(offs, off)
	}
	// Free out of order; coalescing should restore one big block.
	for _, i := range []int{3, 1, 0, 2, 7, 5, 6, 4} {
		if err := h.Free(offs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.FreeBytes(); got != before {
		t.Fatalf("free bytes after full free = %d, want %d", got, before)
	}
	if err := h.Verify(); err != nil {
		t.Fatal(err)
	}
	// The heap can now satisfy one allocation of nearly everything.
	if _, err := h.Alloc(before - 64); err != nil {
		t.Fatalf("large alloc after coalesce failed: %v", err)
	}
}

func TestOutOfMemory(t *testing.T) {
	_, _, h := newHeap(t, 1<<10)
	if _, err := h.Alloc(1 << 20); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestBadFree(t *testing.T) {
	_, _, h := newHeap(t, 1<<12)
	if err := h.Free(999999); !errors.Is(err, ErrBadFree) {
		t.Fatalf("out-of-range free: err = %v", err)
	}
	off, err := h.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Free(off); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(off); !errors.Is(err, ErrBadFree) {
		t.Fatalf("double free: err = %v", err)
	}
}

func TestOpenAfterCleanShutdown(t *testing.T) {
	sys, a, h := newHeap(t, 1<<14)
	off, err := h.Alloc(500)
	if err != nil {
		t.Fatal(err)
	}
	_ = off
	sys.Crash(pmem.EvictAll) // metadata was persisted; EvictAll is benign
	h2, err := Open(a, 0, 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	if err := h2.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRejectsUnformattedRegion(t *testing.T) {
	sys := pmem.NewSystem(pmem.DefaultLatencies(300, 300))
	a := sys.NewArena("pm", 1<<12, pmem.PM)
	if _, err := Open(a, 0, 1<<12); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

// Property: any interleaving of allocs and frees keeps the free list valid
// and conserves bytes (used + free == capacity).
func TestHeapConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sys := pmem.NewSystem(pmem.DefaultLatencies(120, 120))
		a := sys.NewArena("pm", 1<<16, pmem.PM)
		h := Format(a, 0, 1<<16)
		capacity := h.FreeBytes() + h.UsedBytes()
		var live []int64
		for i := 0; i < 120; i++ {
			if len(live) > 0 && rng.Intn(2) == 0 {
				j := rng.Intn(len(live))
				if err := h.Free(live[j]); err != nil {
					return false
				}
				live = append(live[:j], live[j+1:]...)
			} else {
				off, err := h.Alloc(int64(rng.Intn(700) + 1))
				if err == nil {
					live = append(live, off)
				}
			}
			if h.Verify() != nil {
				return false
			}
		}
		// Conservation is approximate only in that headers move between
		// used and free accounting; check the strong invariant instead:
		// freeing everything restores full capacity.
		for _, off := range live {
			if err := h.Free(off); err != nil {
				return false
			}
		}
		return h.FreeBytes()+h.UsedBytes() == capacity && h.UsedBytes() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: crash at any injected point leaves the heap structurally valid
// (free list walkable and non-overlapping) under EvictAll, the adversarial
// case where every partial update reaches PM.
func TestHeapCrashStructuralIntegrity(t *testing.T) {
	workload := func(sys *pmem.System, h *Heap) {
		var live []int64
		for i := 0; i < 10; i++ {
			if off, err := h.Alloc(int64(64 + i*32)); err == nil {
				live = append(live, off)
			}
			if i%3 == 2 && len(live) > 0 {
				_ = h.Free(live[0])
				live = live[1:]
			}
		}
	}
	// Count crash points.
	sys := pmem.NewSystem(pmem.DefaultLatencies(120, 120))
	a := sys.NewArena("pm", 1<<15, pmem.PM)
	h := Format(a, 0, 1<<15)
	base := sys.CrashPoints()
	workload(sys, h)
	total := sys.CrashPoints() - base

	step := total/40 + 1
	for k := int64(0); k < total; k += step {
		sys := pmem.NewSystem(pmem.DefaultLatencies(120, 120))
		a := sys.NewArena("pm", 1<<15, pmem.PM)
		h := Format(a, 0, 1<<15)
		sys.CrashAfter(k)
		if !sys.RunToCrash(func() { workload(sys, h) }) {
			continue
		}
		sys.Crash(pmem.EvictAll)
		h2, err := Open(a, 0, 1<<15)
		if err != nil {
			t.Fatalf("crash at %d: open failed: %v", k, err)
		}
		if err := h2.Verify(); err != nil {
			t.Fatalf("crash at %d: %v", k, err)
		}
	}
}
