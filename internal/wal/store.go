// Package wal implements the paper's baseline recovery schemes, all built
// on a volatile DRAM buffer cache over PM database pages:
//
//   - NVWAL (Kim et al.) — the state of the art the paper compares against:
//     transactions update pages in DRAM; at commit the dirty byte ranges
//     are computed (differential logging), WAL frames are allocated from a
//     user-level persistent heap (pmalloc), payloads are copied to PM and
//     flushed, an 8-byte pointer link commits the transaction, and a
//     volatile WAL-frame index is maintained. Checkpointing is lazy.
//   - FullWAL — classic SQLite-style write-ahead logging with whole-page
//     frames in PM (no diffing, bump allocation).
//   - Journal — a rollback journal: original page images are saved to PM
//     before in-place page overwrites, and an invalid journal is replayed
//     backwards at recovery.
//
// The commit paths charge exactly the cost centres of the paper's Figure 8:
// NVWAL computation, heap management, log flush, and index construction
// (Misc).
package wal

import (
	"fmt"

	"fasp/internal/nvheap"
	"fasp/internal/pager"
	"fasp/internal/pmem"
	"fasp/internal/slotted"
)

// Kind selects the baseline scheme.
type Kind int

const (
	// NVWAL is differential logging into a PM heap.
	NVWAL Kind = iota
	// FullWAL logs whole-page frames.
	FullWAL
	// Journal is a rollback journal with in-place database writes.
	Journal
)

func (k Kind) String() string {
	switch k {
	case NVWAL:
		return "NVWAL"
	case FullWAL:
		return "WAL"
	default:
		return "Journal"
	}
}

// Config sizes a baseline store.
type Config struct {
	PageSize int
	MaxPages int
	// LogBytes sizes the WAL heap / WAL region / journal region.
	LogBytes int64
	// CheckpointBytes triggers a lazy checkpoint once the WAL holds this
	// many payload bytes (NVWAL/FullWAL only). 0 means LogBytes/2.
	CheckpointBytes int64
	Kind            Kind
}

func (c *Config) fill() {
	if c.PageSize == 0 {
		c.PageSize = 4096
	}
	if c.MaxPages == 0 {
		c.MaxPages = 4096
	}
	if c.LogBytes == 0 {
		c.LogBytes = 4 << 20
	}
	if c.CheckpointBytes == 0 {
		c.CheckpointBytes = c.LogBytes / 2
	}
}

func (c Config) pagesBytes() int64 { return int64(c.PageSize) * int64(c.MaxPages) }
func (c Config) walBase() int64    { return c.pagesBytes() }
func (c Config) arenaBytes() int64 { return c.walBase() + walMasterSize + c.LogBytes }
func (c Config) pageBase(no uint32) int64 {
	return int64(no) * int64(c.PageSize)
}

// Stats counts scheme-level events.
type Stats struct {
	Commits   int64
	WALFrames int64
	WALBytes  int64 // payload bytes written to the log/journal
	// SingleLeaf counts commits whose write set was exactly one leaf page —
	// the shape FAST+ would commit with one HTM cache-line write. The
	// adaptive controller reads it to decide when a migration to FAST+
	// would pay off.
	SingleLeaf     int64
	Checkpoints    int64
	JournaledPages int64
	Splits         int64
}

// Store is a DRAM-cached baseline database.
type Store struct {
	sys   *pmem.System
	pm    *pmem.Arena
	dram  *pmem.Arena
	cfg   Config
	meta  pager.Meta
	heap  *nvheap.Heap // NVWAL frame allocator
	stats Stats
	open  bool
	txid  uint64

	// Volatile buffer cache state: which pages have a valid DRAM image.
	resident map[uint32]bool

	// Volatile WAL state.
	walIndex  map[uint32][]int64 // pageNo -> frame offsets, oldest first
	walOrder  []int64            // all committed frames in order
	walTail   int64              // last committed frame (0 = none)
	walAlloc  int64              // FullWAL bump cursor
	walBytes  int64              // payload bytes since last checkpoint
	freePages []uint32           // committed-free page numbers (volatile)

	// Reusable scratch: page-image/payload copies and the differential-
	// logging coverage bitmap (all consumed within a single call).
	ioBuf    []byte
	coverBuf []bool
	diffBuf  []pageDiff
	frameBuf []pendingFrame

	// Recycled single-writer transaction resources, handed from finished
	// transaction to the next Begin (see the fast package for the pattern).
	rec struct {
		pages      map[uint32]*txnPage
		dirtyOrder []uint32
		poppedFree []uint32
		freed      []uint32
		handles    []*txnPage
	}
}

// takeHandle pops a pooled page handle (or makes a fresh one).
func (st *Store) takeHandle() *txnPage {
	if n := len(st.rec.handles); n > 0 {
		tp := st.rec.handles[n-1]
		st.rec.handles = st.rec.handles[:n-1]
		return tp
	}
	return &txnPage{page: new(slotted.Page), mem: new(dramMem)}
}

// pageBuf returns the store's page-size scratch buffer.
func (st *Store) pageBuf(n int) []byte {
	if cap(st.ioBuf) < n {
		st.ioBuf = make([]byte, n)
	}
	return st.ioBuf[:n]
}

const walMasterSize = 64 // magic u64, head u64, reserved

// Create formats a fresh baseline store.
func Create(sys *pmem.System, cfg Config) *Store {
	cfg.fill()
	pm := sys.NewArena(cfg.Kind.String()+"-pm", cfg.arenaBytes(), pmem.PM)
	dram := sys.NewArena(cfg.Kind.String()+"-cache", cfg.pagesBytes(), pmem.DRAM)
	st := &Store{sys: sys, pm: pm, dram: dram, cfg: cfg,
		resident: map[uint32]bool{}, walIndex: map[uint32][]int64{}}
	st.meta = pager.Meta{PageSize: uint32(cfg.PageSize), NPages: 1}
	pager.WriteMeta(pm, 0, st.meta)
	pm.StoreU64(cfg.walBase(), walMagic)
	pm.StoreU64(cfg.walBase()+8, 0) // chain head: empty
	pm.Persist(cfg.walBase(), 16)
	if cfg.Kind == NVWAL {
		st.heap = nvheap.Format(pm, cfg.walBase()+walMasterSize, cfg.LogBytes)
	}
	st.walAlloc = cfg.walBase() + walMasterSize
	return st
}

// Attach reopens a store on an existing PM arena after a crash; the DRAM
// cache starts cold. Call Recover before use.
func Attach(pmArena *pmem.Arena, cfg Config) (*Store, error) {
	cfg.fill()
	meta, err := pager.ReadMeta(pmArena, 0)
	if err != nil {
		return nil, err
	}
	if int(meta.PageSize) != cfg.PageSize {
		return nil, fmt.Errorf("%w: page size mismatch", pager.ErrCorrupt)
	}
	sys := pmArena.Sys()
	dram := sys.NewArena(cfg.Kind.String()+"-cache", cfg.pagesBytes(), pmem.DRAM)
	st := &Store{sys: sys, pm: pmArena, dram: dram, cfg: cfg, meta: meta,
		resident: map[uint32]bool{}, walIndex: map[uint32][]int64{}}
	if pmArena.LoadU64(cfg.walBase()) != walMagic {
		return nil, fmt.Errorf("%w: bad WAL master magic", pager.ErrCorrupt)
	}
	st.walAlloc = cfg.walBase() + walMasterSize
	return st, nil
}

const walMagic = 0x57414C4D_53545231 // "WALMSTR1"

// Name returns the scheme name.
func (st *Store) Name() string { return st.cfg.Kind.String() }

// PageSize returns the page size.
func (st *Store) PageSize() int { return st.cfg.PageSize }

// Sys returns the simulated machine.
func (st *Store) Sys() *pmem.System { return st.sys }

// Arena exposes the PM arena for experiment counters.
func (st *Store) Arena() *pmem.Arena { return st.pm }

// DRAM exposes the buffer-cache arena.
func (st *Store) DRAM() *pmem.Arena { return st.dram }

// Meta returns the committed metadata.
func (st *Store) Meta() pager.Meta { return st.meta }

// Stats returns scheme-level counters.
func (st *Store) Stats() Stats { return st.stats }

// NoteSplit lets the B-tree layer record a page split.
func (st *Store) NoteSplit() { st.stats.Splits++ }

// ensureResident materialises the last-committed image of a page in the
// DRAM buffer cache: the PM copy, plus — for the WAL schemes — the page's
// committed WAL frames replayed in order (PM pages are stale between
// checkpoints). This is NVWAL's mandatory extra copy that the paper's
// in-place design eliminates.
func (st *Store) ensureResident(no uint32) {
	if st.resident[no] {
		return
	}
	base := st.cfg.pageBase(no)
	img := st.pageBuf(st.cfg.PageSize)
	st.pm.Load(base, img)
	st.dram.Store(base, img)
	for _, fo := range st.walIndex[no] {
		var hdr [frameHeaderSize]byte
		st.pm.Load(fo, hdr[:])
		off := int64(leU32(hdr[4:]))
		n := int(leU32(hdr[8:]))
		payload := st.pageBuf(n)
		st.pm.Load(fo+frameHeaderSize, payload)
		st.dram.Store(base+off, payload)
	}
	st.resident[no] = true
}
