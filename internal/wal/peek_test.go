package wal

import (
	"bytes"
	"testing"

	"fasp/internal/btree"
	"fasp/internal/pager"
)

func viewOver(t *testing.T, st *Store) *btree.View {
	t.Helper()
	sr, ok := interface{}(st).(pager.SnapshotReader)
	if !ok {
		t.Fatal("wal.Store does not implement pager.SnapshotReader")
	}
	vw := btree.NewView()
	vw.Reset(sr, st.PageSize())
	return vw
}

// checkAll asserts the view sees exactly the committed records. The
// reference values come from tree reads gathered first, so the caller can
// bracket only the view walks with clock assertions.
func checkAll(t *testing.T, vw *btree.View, tr *btree.Tree, n int, label string) {
	t.Helper()
	want := make([][]byte, n)
	for i := 0; i < n; i++ {
		w, ok, err := tr.Get(k(i))
		if err != nil || !ok {
			t.Fatalf("%s: tree get %d: %v %v", label, i, ok, err)
		}
		want[i] = w
	}
	for i := 0; i < n; i++ {
		got, ok, err := vw.Get(k(i), nil)
		if err != nil || !ok {
			t.Fatalf("%s: view get %d: %v %v", label, i, ok, err)
		}
		if !bytes.Equal(got, want[i]) {
			t.Fatalf("%s: view get %d = %q, want %q", label, i, got, want[i])
		}
	}
}

func TestPeekCommittedMatchesTreeAllKinds(t *testing.T) {
	for _, kind := range allKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			sys, st, tr := newStore(t, kind)
			const n = 300
			for i := 0; i < n; i++ {
				if err := tr.Insert(k(i), v(i, 20+i%30)); err != nil {
					t.Fatalf("insert %d: %v", i, err)
				}
			}
			vw := viewOver(t, st)
			checkAll(t, vw, tr, n, "warm")
			// Pure view walks never advance the machine clock.
			before := sys.Clock().Now()
			for i := 0; i < n; i++ {
				if _, ok, err := vw.Get(k(i), nil); !ok || err != nil {
					t.Fatalf("view get %d: %v %v", i, ok, err)
				}
			}
			if now := sys.Clock().Now(); now != before {
				t.Fatalf("view reads advanced the clock: %d -> %d", before, now)
			}
			if vw.Cost() <= 0 {
				t.Fatal("view walk charged no simulated cost")
			}
		})
	}
}

func TestPeekCommittedReplaysWALFrames(t *testing.T) {
	// A rolled-back transaction evicts the pages it dirtied from the DRAM
	// cache, leaving committed WAL frames as the only delta over the stale
	// PM image. PeekCommitted must replay those frames.
	for _, kind := range []Kind{NVWAL, FullWAL} {
		t.Run(kind.String(), func(t *testing.T) {
			_, st, tr := newStore(t, kind)
			const n = 200
			for i := 0; i < n; i++ {
				if err := tr.Insert(k(i), v(i, 25)); err != nil {
					t.Fatalf("insert %d: %v", i, err)
				}
			}
			tx, err := tr.Begin()
			if err != nil {
				t.Fatal(err)
			}
			if err := tx.Insert([]byte("zzz"), []byte("aborted")); err != nil {
				t.Fatal(err)
			}
			tx.Rollback()
			replayable := false
			for no := range st.walIndex {
				if !st.resident[no] && len(st.walIndex[no]) > 0 {
					replayable = true
					break
				}
			}
			if !replayable {
				t.Fatal("no non-resident page with WAL frames; scenario vacuous")
			}
			vw := viewOver(t, st)
			checkAll(t, vw, tr, n, "post-rollback")
			if _, ok, err := vw.Get([]byte("zzz"), nil); ok || err != nil {
				t.Fatalf("aborted insert visible: %v %v", ok, err)
			}
		})
	}
}

func TestPeekCommittedColdAttach(t *testing.T) {
	// After Attach re-runs recovery over the arena, the PM pages alone hold
	// the committed image (the WAL was replayed home); peeks on the fresh
	// store must see every record without making anything resident.
	for _, kind := range allKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			_, st, tr := newStore(t, kind)
			const n = 150
			for i := 0; i < n; i++ {
				if err := tr.Insert(k(i), v(i, 20)); err != nil {
					t.Fatalf("insert %d: %v", i, err)
				}
			}
			st2, err := Attach(st.Arena(), st.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := st2.Recover(); err != nil {
				t.Fatal(err)
			}
			vw := viewOver(t, st2)
			for i := 0; i < n; i++ {
				got, ok, err := vw.Get(k(i), nil)
				if err != nil || !ok {
					t.Fatalf("cold view get %d: %v %v", i, ok, err)
				}
				if !bytes.Equal(got, v(i, 20)) {
					t.Fatalf("cold view get %d = %q", i, got)
				}
			}
			if len(st2.resident) != 0 {
				t.Fatalf("peeks made %d pages resident", len(st2.resident))
			}
		})
	}
}
