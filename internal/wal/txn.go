package wal

import (
	"fmt"

	"fasp/internal/pager"
	"fasp/internal/phase"
	"fasp/internal/pmem"
	"fasp/internal/slotted"
)

// byteRange is a dirty region of a cached page.
type byteRange struct{ off, n int }

// dramMem is the slotted.Mem backend of a buffer-cached page: all reads and
// writes hit the DRAM image (charging DRAM latency); dirty byte ranges are
// recorded for differential logging.
type dramMem struct {
	tx     *Txn
	no     uint32
	base   int64
	dirty  []byteRange
	encBuf []byte      // header-encode scratch
	merged []byteRange // mergedRanges output, reused per transaction
}

// bind resets a pooled dramMem for a new page in this transaction.
func (m *dramMem) bind(tx *Txn, no uint32, base int64) {
	m.tx = tx
	m.no = no
	m.base = base
	m.dirty = m.dirty[:0]
	m.merged = m.merged[:0]
}

func (m *dramMem) PageSize() int { return m.tx.st.cfg.PageSize }

func (m *dramMem) Read(off, n int) []byte {
	return m.tx.st.dram.Read(m.base+int64(off), n)
}

// ReadInto is the allocation-free read path (slotted.ScratchMem); it issues
// the same DRAM Load as Read.
func (m *dramMem) ReadInto(off int, dst []byte) {
	m.tx.st.dram.Load(m.base+int64(off), dst)
}

func (m *dramMem) Write(off int, src []byte) {
	m.tx.st.dram.Store(m.base+int64(off), src)
	m.markDirty(off, len(src))
}

func (m *dramMem) HeaderChanged(h *slotted.Header) {
	enc := h.EncodeInto(m.encBuf)
	m.encBuf = enc[:0]
	m.tx.st.dram.Store(m.base, enc)
	m.markDirty(0, len(enc))
}

func (m *dramMem) markDirty(off, n int) {
	if len(m.dirty) == 0 {
		m.tx.dirtyOrder = append(m.tx.dirtyOrder, m.no)
	}
	m.dirty = append(m.dirty, byteRange{off, n})
}

// mergedRanges coalesces the dirty ranges into sorted, disjoint spans —
// the product of NVWAL's differential-logging computation. The result
// (m.merged) stays valid until the page is rebound to a new transaction;
// the coverage bitmap is a store-level scratch shared by all pages.
func (m *dramMem) mergedRanges() []byteRange {
	if len(m.dirty) == 0 {
		return nil
	}
	ps := m.tx.st.cfg.PageSize
	covered := m.tx.st.coverBuf
	if len(covered) < ps {
		covered = make([]bool, ps)
		m.tx.st.coverBuf = covered
	}
	for i := range covered[:ps] {
		covered[i] = false
	}
	for _, r := range m.dirty {
		for i := r.off; i < r.off+r.n && i < ps; i++ {
			covered[i] = true
		}
	}
	out := m.merged[:0]
	i := 0
	for i < ps {
		if !covered[i] {
			i++
			continue
		}
		j := i
		for j < ps && covered[j] {
			j++
		}
		out = append(out, byteRange{i, j - i})
		i = j
	}
	m.merged = out
	return out
}

type txnPage struct {
	page *slotted.Page
	mem  *dramMem
}

// Txn is a baseline transaction over the DRAM buffer cache.
type Txn struct {
	st         *Store
	meta       pager.Meta
	metaDirty  bool
	pages      map[uint32]*txnPage
	dirtyOrder []uint32
	poppedFree []uint32
	freed      []uint32
	done       bool
}

var _ pager.Txn = (*Txn)(nil)

// Begin opens the single write transaction.
func (st *Store) Begin() (pager.Txn, error) {
	if st.open {
		return nil, pager.ErrTxnActive
	}
	st.open = true
	pages := st.rec.pages
	if pages == nil {
		pages = make(map[uint32]*txnPage)
	}
	st.rec.pages = nil
	return &Txn{
		st:         st,
		meta:       st.meta,
		pages:      pages,
		dirtyOrder: st.rec.dirtyOrder,
		poppedFree: st.rec.poppedFree,
		freed:      st.rec.freed,
	}, nil
}

// PageSize returns the page size.
func (tx *Txn) PageSize() int { return tx.st.cfg.PageSize }

// Root returns the working root page.
func (tx *Txn) Root() uint32 { return tx.meta.Root }

// SetRoot updates the working root pointer.
func (tx *Txn) SetRoot(no uint32) {
	tx.meta.Root = no
	tx.metaDirty = true
}

// Page opens page no through the buffer cache.
func (tx *Txn) Page(no uint32) (*slotted.Page, error) {
	if no == pager.MetaPageNo || no >= tx.meta.NPages {
		return nil, fmt.Errorf("%w: page %d out of range", pager.ErrCorrupt, no)
	}
	if tp, ok := tx.pages[no]; ok {
		return tp.page, nil
	}
	tx.st.ensureResident(no)
	tp := tx.st.takeHandle()
	tp.mem.bind(tx, no, tx.st.cfg.pageBase(no))
	if err := slotted.OpenInto(tp.page, tp.mem); err != nil {
		tx.st.rec.handles = append(tx.st.rec.handles, tp)
		return nil, err
	}
	p := tp.page
	// Volatile cache: freed cell space is reusable immediately (the PM
	// copy is untouched until commit/checkpoint).
	p.SetDeferFrees(false)
	tx.pages[no] = tp
	return p, nil
}

// AllocPage allocates and initialises a fresh page in the cache.
func (tx *Txn) AllocPage(typ byte) (uint32, *slotted.Page, error) {
	var no uint32
	if n := len(tx.st.freePages); n > 0 {
		no = tx.st.freePages[n-1]
		tx.st.freePages = tx.st.freePages[:n-1]
		tx.poppedFree = append(tx.poppedFree, no)
	} else {
		if int(tx.meta.NPages) >= tx.st.cfg.MaxPages {
			return 0, nil, pager.ErrFull
		}
		no = tx.meta.NPages
		tx.meta.NPages++
	}
	tx.metaDirty = true
	base := tx.st.cfg.pageBase(no)
	tx.st.dram.Zero(base, tx.st.cfg.PageSize)
	tx.st.resident[no] = true
	tp := tx.st.takeHandle()
	tp.mem.bind(tx, no, base)
	slotted.InitInto(tp.page, tp.mem, typ)
	p := tp.page
	p.SetDeferFrees(false)
	tx.pages[no] = tp
	return no, p, nil
}

// FreePage releases a page for reuse after commit.
func (tx *Txn) FreePage(no uint32) { tx.freed = append(tx.freed, no) }

// OpEnd is a no-op: the volatile cache needs no per-operation persistence.
func (tx *Txn) OpEnd() {}

// Defragged is recorded only for symmetry; baselines always log.
func (tx *Txn) Defragged() {}

// Rollback abandons the transaction, invalidating dirty cache images so
// the next access re-reads the committed PM copy.
func (tx *Txn) Rollback() {
	if tx.done {
		return
	}
	for _, no := range tx.dirtyOrder {
		tx.st.resident[no] = false
	}
	// Pages popped from the volatile free list go back.
	tx.st.freePages = append(tx.st.freePages, tx.poppedFree...)
	tx.finish()
}

// singleLeafShape reports whether the transaction's write set has the
// FAST+ in-place-commit shape (one dirty leaf, cache-line header, no
// alloc/free/meta change) — the same in-memory check the fast package
// counts, so scheme comparisons see one signal. No arena traffic.
func (tx *Txn) singleLeafShape() bool {
	if tx.metaDirty || len(tx.poppedFree) != 0 || len(tx.freed) != 0 ||
		len(tx.dirtyOrder) != 1 {
		return false
	}
	tp, ok := tx.pages[tx.dirtyOrder[0]]
	if !ok || tp.page.Type() != slotted.TypeLeaf {
		return false
	}
	return tp.page.NCells() <= slotted.MaxInPlaceCells &&
		tp.page.Header().EncodedLen() <= pmem.CacheLineSize
}

// Commit dispatches to the scheme's protocol.
func (tx *Txn) Commit() error {
	if tx.done {
		return fmt.Errorf("wal: commit on finished transaction")
	}
	singleLeaf := tx.singleLeafShape()
	// Fold the working meta into the cached page 0 so it is logged and
	// checkpointed like any other page.
	if tx.metaDirty {
		tx.meta.TxID = tx.st.txid + 1
		tx.flushMetaToCache()
	}
	clock := tx.st.sys.Clock()
	var err error
	clock.InPhase(phase.Commit, func() {
		switch tx.st.cfg.Kind {
		case NVWAL:
			err = tx.commitNVWAL(false)
		case FullWAL:
			err = tx.commitNVWAL(true)
		default:
			err = tx.commitJournal()
		}
	})
	if err != nil {
		// A failed commit rolls the transaction back: nothing reached the
		// database pages (the journal/WAL write failed first), so dropping
		// the dirty cache images restores the committed state.
		tx.Rollback()
		return err
	}
	tx.st.txid++
	tx.st.meta = tx.meta
	tx.st.freePages = append(tx.st.freePages, tx.freed...)
	tx.st.stats.Commits++
	if singleLeaf {
		tx.st.stats.SingleLeaf++
	}
	tx.finish()
	// Lazy checkpointing runs outside the measured commit path, as in the
	// paper's NVWAL comparison.
	if tx.st.cfg.Kind != Journal && tx.st.walBytes >= tx.st.cfg.CheckpointBytes {
		clock.InPhase("LazyCheckpoint", func() { tx.st.Checkpoint() })
	}
	return nil
}

// flushMetaToCache writes the working meta into the cached page 0 image and
// marks the range dirty, creating the page's dramMem if needed.
func (tx *Txn) flushMetaToCache() {
	tx.st.ensureResident(pager.MetaPageNo)
	tp, ok := tx.pages[pager.MetaPageNo]
	if !ok {
		tp = tx.st.takeHandle()
		tp.mem.bind(tx, pager.MetaPageNo, 0)
		tx.pages[pager.MetaPageNo] = tp
	}
	pager.WriteMeta(tx.st.dram, 0, tx.meta)
	tp.mem.markDirty(0, 32)
}

func (tx *Txn) finish() {
	tx.done = true
	st := tx.st
	st.open = false
	// Return the per-transaction resources to the store for the next Begin.
	// Map iteration order is irrelevant here: pooling touches no arena.
	for _, tp := range tx.pages {
		st.rec.handles = append(st.rec.handles, tp)
	}
	clear(tx.pages)
	st.rec.pages = tx.pages
	st.rec.dirtyOrder = tx.dirtyOrder[:0]
	st.rec.poppedFree = tx.poppedFree[:0]
	st.rec.freed = tx.freed[:0]
	tx.pages = nil
}
