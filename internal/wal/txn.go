package wal

import (
	"fmt"

	"fasp/internal/pager"
	"fasp/internal/phase"
	"fasp/internal/slotted"
)

// byteRange is a dirty region of a cached page.
type byteRange struct{ off, n int }

// dramMem is the slotted.Mem backend of a buffer-cached page: all reads and
// writes hit the DRAM image (charging DRAM latency); dirty byte ranges are
// recorded for differential logging.
type dramMem struct {
	tx    *Txn
	no    uint32
	base  int64
	dirty []byteRange
}

func (m *dramMem) PageSize() int { return m.tx.st.cfg.PageSize }

func (m *dramMem) Read(off, n int) []byte {
	return m.tx.st.dram.Read(m.base+int64(off), n)
}

func (m *dramMem) Write(off int, src []byte) {
	m.tx.st.dram.Store(m.base+int64(off), src)
	m.markDirty(off, len(src))
}

func (m *dramMem) HeaderChanged(h *slotted.Header) {
	enc := h.Encode()
	m.tx.st.dram.Store(m.base, enc)
	m.markDirty(0, len(enc))
}

func (m *dramMem) markDirty(off, n int) {
	if len(m.dirty) == 0 {
		m.tx.dirtyOrder = append(m.tx.dirtyOrder, m.no)
	}
	m.dirty = append(m.dirty, byteRange{off, n})
}

// mergedRanges coalesces the dirty ranges into sorted, disjoint spans —
// the product of NVWAL's differential-logging computation.
func (m *dramMem) mergedRanges() []byteRange {
	if len(m.dirty) == 0 {
		return nil
	}
	ps := m.tx.st.cfg.PageSize
	covered := make([]bool, ps)
	for _, r := range m.dirty {
		for i := r.off; i < r.off+r.n && i < ps; i++ {
			covered[i] = true
		}
	}
	var out []byteRange
	i := 0
	for i < ps {
		if !covered[i] {
			i++
			continue
		}
		j := i
		for j < ps && covered[j] {
			j++
		}
		out = append(out, byteRange{i, j - i})
		i = j
	}
	return out
}

type txnPage struct {
	page *slotted.Page
	mem  *dramMem
}

// Txn is a baseline transaction over the DRAM buffer cache.
type Txn struct {
	st         *Store
	meta       pager.Meta
	metaDirty  bool
	pages      map[uint32]*txnPage
	dirtyOrder []uint32
	poppedFree []uint32
	freed      []uint32
	done       bool
}

var _ pager.Txn = (*Txn)(nil)

// Begin opens the single write transaction.
func (st *Store) Begin() (pager.Txn, error) {
	if st.open {
		return nil, pager.ErrTxnActive
	}
	st.open = true
	return &Txn{st: st, meta: st.meta, pages: make(map[uint32]*txnPage)}, nil
}

// PageSize returns the page size.
func (tx *Txn) PageSize() int { return tx.st.cfg.PageSize }

// Root returns the working root page.
func (tx *Txn) Root() uint32 { return tx.meta.Root }

// SetRoot updates the working root pointer.
func (tx *Txn) SetRoot(no uint32) {
	tx.meta.Root = no
	tx.metaDirty = true
}

// Page opens page no through the buffer cache.
func (tx *Txn) Page(no uint32) (*slotted.Page, error) {
	if no == pager.MetaPageNo || no >= tx.meta.NPages {
		return nil, fmt.Errorf("%w: page %d out of range", pager.ErrCorrupt, no)
	}
	if tp, ok := tx.pages[no]; ok {
		return tp.page, nil
	}
	tx.st.ensureResident(no)
	mem := &dramMem{tx: tx, no: no, base: tx.st.cfg.pageBase(no)}
	p, err := slotted.Open(mem)
	if err != nil {
		return nil, err
	}
	// Volatile cache: freed cell space is reusable immediately (the PM
	// copy is untouched until commit/checkpoint).
	p.SetDeferFrees(false)
	tx.pages[no] = &txnPage{page: p, mem: mem}
	return p, nil
}

// AllocPage allocates and initialises a fresh page in the cache.
func (tx *Txn) AllocPage(typ byte) (uint32, *slotted.Page, error) {
	var no uint32
	if n := len(tx.st.freePages); n > 0 {
		no = tx.st.freePages[n-1]
		tx.st.freePages = tx.st.freePages[:n-1]
		tx.poppedFree = append(tx.poppedFree, no)
	} else {
		if int(tx.meta.NPages) >= tx.st.cfg.MaxPages {
			return 0, nil, pager.ErrFull
		}
		no = tx.meta.NPages
		tx.meta.NPages++
	}
	tx.metaDirty = true
	base := tx.st.cfg.pageBase(no)
	tx.st.dram.Zero(base, tx.st.cfg.PageSize)
	tx.st.resident[no] = true
	mem := &dramMem{tx: tx, no: no, base: base}
	p := slotted.Init(mem, typ)
	p.SetDeferFrees(false)
	tx.pages[no] = &txnPage{page: p, mem: mem}
	return no, p, nil
}

// FreePage releases a page for reuse after commit.
func (tx *Txn) FreePage(no uint32) { tx.freed = append(tx.freed, no) }

// OpEnd is a no-op: the volatile cache needs no per-operation persistence.
func (tx *Txn) OpEnd() {}

// Defragged is recorded only for symmetry; baselines always log.
func (tx *Txn) Defragged() {}

// Rollback abandons the transaction, invalidating dirty cache images so
// the next access re-reads the committed PM copy.
func (tx *Txn) Rollback() {
	if tx.done {
		return
	}
	for _, no := range tx.dirtyOrder {
		tx.st.resident[no] = false
	}
	// Pages popped from the volatile free list go back.
	tx.st.freePages = append(tx.st.freePages, tx.poppedFree...)
	tx.finish()
}

// Commit dispatches to the scheme's protocol.
func (tx *Txn) Commit() error {
	if tx.done {
		return fmt.Errorf("wal: commit on finished transaction")
	}
	// Fold the working meta into the cached page 0 so it is logged and
	// checkpointed like any other page.
	if tx.metaDirty {
		tx.meta.TxID = tx.st.txid + 1
		tx.flushMetaToCache()
	}
	clock := tx.st.sys.Clock()
	var err error
	clock.InPhase(phase.Commit, func() {
		switch tx.st.cfg.Kind {
		case NVWAL:
			err = tx.commitNVWAL(false)
		case FullWAL:
			err = tx.commitNVWAL(true)
		default:
			err = tx.commitJournal()
		}
	})
	if err != nil {
		// A failed commit rolls the transaction back: nothing reached the
		// database pages (the journal/WAL write failed first), so dropping
		// the dirty cache images restores the committed state.
		tx.Rollback()
		return err
	}
	tx.st.txid++
	tx.st.meta = tx.meta
	tx.st.freePages = append(tx.st.freePages, tx.freed...)
	tx.st.stats.Commits++
	tx.finish()
	// Lazy checkpointing runs outside the measured commit path, as in the
	// paper's NVWAL comparison.
	if tx.st.cfg.Kind != Journal && tx.st.walBytes >= tx.st.cfg.CheckpointBytes {
		clock.InPhase("LazyCheckpoint", func() { tx.st.Checkpoint() })
	}
	return nil
}

// flushMetaToCache writes the working meta into the cached page 0 image and
// marks the range dirty, creating the page's dramMem if needed.
func (tx *Txn) flushMetaToCache() {
	tx.st.ensureResident(pager.MetaPageNo)
	tp, ok := tx.pages[pager.MetaPageNo]
	if !ok {
		mem := &dramMem{tx: tx, no: pager.MetaPageNo, base: 0}
		tp = &txnPage{mem: mem}
		tx.pages[pager.MetaPageNo] = tp
	}
	pager.WriteMeta(tx.st.dram, 0, tx.meta)
	tp.mem.markDirty(0, 32)
}

func (tx *Txn) finish() {
	tx.done = true
	tx.st.open = false
}
