package wal

import (
	"encoding/binary"
	"fmt"
	"sort"

	"fasp/internal/nvheap"
	"fasp/internal/pager"
	"fasp/internal/phase"
)

// WAL frame header layout (32 bytes, 8-aligned):
//
//	0:  pageNo  u32
//	4:  off     u32  (byte offset of the payload within the page)
//	8:  len     u32  (payload length)
//	12: pad     u32
//	16: txid    u64
//	24: next    u64  (arena offset of the next frame; 0 = end of chain)
const frameHeaderSize = 32

func leU32(b []byte) uint32 { return binary.LittleEndian.Uint32(b) }

type pendingFrame struct {
	frameOff int64
	pageNo   uint32
	off      int
	n        int
}

// pageDiff is one dirty page's differential-logging result.
type pageDiff struct {
	no     uint32
	base   int64
	ranges []byteRange
}

// commitNVWAL implements the NVWAL commit protocol; fullPage selects the
// FullWAL variant (whole-page frames, bump allocation, no diffing).
func (tx *Txn) commitNVWAL(fullPage bool) error {
	st := tx.st
	clock := st.sys.Clock()

	// 1. Differential-logging computation: scan each dirty page to derive
	//    the dirty byte ranges (Figure 8, "NVWAL Computation").
	diffs := st.diffBuf[:0]
	if !fullPage {
		clock.InPhase(phase.NVWALCompute, func() {
			for _, no := range tx.dirtyOrder {
				tp := tx.pages[no]
				// The diff pass compares the working image against the
				// clean copy word by word across the whole page.
				st.sys.Compute(int64(st.cfg.PageSize) / 8)
				diffs = append(diffs, pageDiff{no: no, base: tp.mem.base, ranges: tp.mem.mergedRanges()})
			}
		})
	} else {
		for _, no := range tx.dirtyOrder {
			tp := tx.pages[no]
			diffs = append(diffs, pageDiff{no: no, base: tp.mem.base,
				ranges: []byteRange{{0, st.cfg.PageSize}}})
		}
	}

	st.diffBuf = diffs

	// 2. Allocate WAL frames from the persistent heap (Figure 8, "Heap
	//    Management"). FullWAL uses a bump region instead, checkpointing
	//    when it runs out.
	frames := st.frameBuf[:0]
	var allocErr error
	clock.InPhase(phase.Heap, func() {
		for _, d := range diffs {
			for _, r := range d.ranges {
				var fo int64
				if fullPage {
					need := int64(frameHeaderSize + r.n)
					if st.walAlloc+need > st.cfg.walBase()+walMasterSize+st.cfg.LogBytes {
						st.Checkpoint()
					}
					fo = st.walAlloc
					st.walAlloc += need
					if pad := st.walAlloc % 8; pad != 0 {
						st.walAlloc += 8 - pad
					}
				} else {
					var err error
					fo, err = st.heap.Alloc(int64(frameHeaderSize + r.n))
					if err != nil {
						// Heap exhausted: checkpoint reclaims every frame,
						// then retry once.
						st.Checkpoint()
						fo, err = st.heap.Alloc(int64(frameHeaderSize + r.n))
						if err != nil {
							allocErr = err
							return
						}
					}
				}
				frames = append(frames, pendingFrame{frameOff: fo, pageNo: d.no, off: r.off, n: r.n})
			}
		}
	})
	st.frameBuf = frames
	if allocErr != nil {
		return allocErr
	}

	// 3. Log flush: copy the dirty bytes from the volatile cache into the
	//    frames, chain them, flush, and commit with one 8-byte link store.
	clock.InPhase(phase.LogFlush, func() {
		var hdr [frameHeaderSize]byte
		for i, f := range frames {
			next := int64(0)
			if i+1 < len(frames) {
				next = frames[i+1].frameOff
			}
			binary.LittleEndian.PutUint32(hdr[0:], f.pageNo)
			binary.LittleEndian.PutUint32(hdr[4:], uint32(f.off))
			binary.LittleEndian.PutUint32(hdr[8:], uint32(f.n))
			binary.LittleEndian.PutUint64(hdr[16:], tx.meta.TxID)
			binary.LittleEndian.PutUint64(hdr[24:], uint64(next))
			st.pm.Store(f.frameOff, hdr[:])
			payload := st.pageBuf(f.n)
			st.dram.Load(st.cfg.pageBase(f.pageNo)+int64(f.off), payload)
			st.pm.Store(f.frameOff+frameHeaderSize, payload)
			st.pm.Flush(f.frameOff, frameHeaderSize+f.n)
			st.stats.WALBytes += int64(f.n)
		}
		if len(frames) > 0 {
			st.sys.Fence()
			// The commit mark: link the transaction's first frame into the
			// committed chain with one failure-atomic pointer store.
			first := frames[0].frameOff
			if st.walTail == 0 {
				st.pm.StoreU64(st.cfg.walBase()+8, uint64(first))
				st.pm.Persist(st.cfg.walBase()+8, 8)
			} else {
				st.pm.StoreU64(st.walTail+24, uint64(first))
				st.pm.Persist(st.walTail+24, 8)
			}
			st.walTail = frames[len(frames)-1].frameOff
		}
	})

	// 4. Misc: construct the volatile WAL-frame index entries.
	clock.InPhase(phase.Misc, func() {
		for _, f := range frames {
			st.walIndex[f.pageNo] = append(st.walIndex[f.pageNo], f.frameOff)
			st.walOrder = append(st.walOrder, f.frameOff)
			st.walBytes += int64(f.n)
			st.sys.Compute(8)
		}
		st.stats.WALFrames += int64(len(frames))
	})
	return nil
}

// Checkpoint applies the committed WAL to the PM database pages and resets
// the log. NVWAL does this lazily; the cost is deliberately outside the
// per-transaction commit path.
func (st *Store) Checkpoint() {
	if len(st.walIndex) == 0 && st.walTail == 0 {
		st.walAlloc = st.cfg.walBase() + walMasterSize
		return
	}
	// The buffer cache holds the newest committed image of every logged
	// page; write those images home and flush them, in ascending page order
	// so the cache-overlay traffic (and thus simulated time) is
	// deterministic.
	pages := make([]uint32, 0, len(st.walIndex))
	for no := range st.walIndex {
		pages = append(pages, no)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	for _, no := range pages {
		base := st.cfg.pageBase(no)
		img := st.pageBuf(st.cfg.PageSize)
		st.dram.Load(base, img)
		st.pm.Store(base, img)
		st.pm.Flush(base, st.cfg.PageSize)
	}
	st.sys.Fence()
	// Invalidate the WAL with one atomic store, then reclaim frames.
	st.pm.StoreU64(st.cfg.walBase()+8, 0)
	st.pm.Persist(st.cfg.walBase()+8, 8)
	if st.cfg.Kind == NVWAL {
		for _, fo := range st.walOrder {
			if err := st.heap.Free(fo); err != nil {
				panic(fmt.Sprintf("wal: checkpoint free: %v", err))
			}
		}
	}
	st.walIndex = map[uint32][]int64{}
	st.walOrder = nil
	st.walTail = 0
	st.walBytes = 0
	st.walAlloc = st.cfg.walBase() + walMasterSize
	st.stats.Checkpoints++
}

// Recover completes crash recovery for the scheme.
func (st *Store) Recover() error {
	if st.cfg.Kind == Journal {
		return st.recoverJournal()
	}
	// Replay the committed WAL chain onto the PM pages.
	head := int64(st.pm.LoadU64(st.cfg.walBase() + 8))
	steps := 0
	for cur := head; cur != 0; {
		hdr := st.pm.Read(cur, frameHeaderSize)
		pageNo := binary.LittleEndian.Uint32(hdr[0:])
		off := int64(binary.LittleEndian.Uint32(hdr[4:]))
		n := int(binary.LittleEndian.Uint32(hdr[8:]))
		next := int64(binary.LittleEndian.Uint64(hdr[24:]))
		if int(pageNo) >= st.cfg.MaxPages || off+int64(n) > int64(st.cfg.PageSize) {
			return fmt.Errorf("%w: WAL frame at %d malformed", pager.ErrCorrupt, cur)
		}
		payload := st.pm.Read(cur+frameHeaderSize, n)
		base := st.cfg.pageBase(pageNo)
		st.pm.Store(base+off, payload)
		st.pm.Flush(base+off, n)
		cur = next
		if steps++; steps > 1<<22 {
			return fmt.Errorf("%w: WAL chain cycle", pager.ErrCorrupt)
		}
	}
	st.sys.Fence()
	st.pm.StoreU64(st.cfg.walBase()+8, 0)
	st.pm.Persist(st.cfg.walBase()+8, 8)
	// Every frame is dead now; rebuild the allocator from scratch.
	if st.cfg.Kind == NVWAL {
		st.heap = nil
	}
	st.resetWALState()
	meta, err := pager.ReadMeta(st.pm, 0)
	if err != nil {
		return err
	}
	st.meta = meta
	st.txid = meta.TxID
	return nil
}

func (st *Store) resetWALState() {
	st.walIndex = map[uint32][]int64{}
	st.walOrder = nil
	st.walTail = 0
	st.walBytes = 0
	st.walAlloc = st.cfg.walBase() + walMasterSize
	if st.cfg.Kind == NVWAL && st.heap == nil {
		st.heap = nvheap.Format(st.pm, st.cfg.walBase()+walMasterSize, st.cfg.LogBytes)
	}
}
