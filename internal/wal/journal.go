package wal

import (
	"fmt"

	"fasp/internal/pager"
	"fasp/internal/phase"
)

// Rollback-journal layout in the log region:
//
//	walBase+0:  master magic (shared)
//	walBase+8:  committed chain head — unused by the journal
//	walBase+16: journal entry count (u64; 0 = journal invalid)
//	walBase+32: entries: { pageNo u32, pad u32, original page image }
//
// The journal follows SQLite's rollback protocol mapped onto PM (Figure 1a):
// save the original images and flush ("journal sync"), overwrite the
// database pages in place and flush ("database sync"), then invalidate the
// journal. Recovery from a valid journal restores the originals, rolling
// the torn transaction back.
const journalCountOff = 16
const journalEntriesOff = 32

func (st *Store) journalEntrySize() int64 { return int64(8 + st.cfg.PageSize) }

// commitJournal implements the rollback-journal commit.
func (tx *Txn) commitJournal() error {
	st := tx.st
	clock := st.sys.Clock()
	jbase := st.cfg.walBase()

	// 1. Journal the original page images (still intact in PM).
	var err error
	clock.InPhase(phase.LogFlush, func() {
		need := journalEntriesOff + st.journalEntrySize()*int64(len(tx.dirtyOrder))
		if need > walMasterSize+st.cfg.LogBytes {
			err = fmt.Errorf("%w: journal region too small for %d pages", pager.ErrFull, len(tx.dirtyOrder))
			return
		}
		for i, no := range tx.dirtyOrder {
			entry := jbase + journalEntriesOff + st.journalEntrySize()*int64(i)
			st.pm.StoreU32(entry, no)
			orig := st.pageBuf(st.cfg.PageSize)
			st.pm.Load(st.cfg.pageBase(no), orig)
			st.pm.Store(entry+8, orig)
			st.pm.Flush(entry, int(st.journalEntrySize()))
			st.stats.WALBytes += int64(st.cfg.PageSize)
			st.stats.JournaledPages++
		}
		st.sys.Fence()
		// Validate the journal with one atomic count store.
		st.pm.StoreU64(jbase+journalCountOff, uint64(len(tx.dirtyOrder)))
		st.pm.Persist(jbase+journalCountOff, 8)
	})
	if err != nil {
		return err
	}

	// 2. Overwrite the database pages in place from the cache and flush.
	clock.InPhase(phase.Checkpoint, func() {
		for _, no := range tx.dirtyOrder {
			base := st.cfg.pageBase(no)
			img := st.pageBuf(st.cfg.PageSize)
			st.dram.Load(base, img)
			st.pm.Store(base, img)
			st.pm.Flush(base, st.cfg.PageSize)
		}
		st.sys.Fence()
		// 3. Invalidate the journal.
		st.pm.StoreU64(jbase+journalCountOff, 0)
		st.pm.Persist(jbase+journalCountOff, 8)
	})
	return nil
}

// recoverJournal rolls back a transaction whose journal is still valid.
func (st *Store) recoverJournal() error {
	jbase := st.cfg.walBase()
	count := st.pm.LoadU64(jbase + journalCountOff)
	if count > 0 {
		if journalEntriesOff+st.journalEntrySize()*int64(count) > walMasterSize+st.cfg.LogBytes {
			return fmt.Errorf("%w: journal count %d malformed", pager.ErrCorrupt, count)
		}
		for i := int64(0); i < int64(count); i++ {
			entry := jbase + journalEntriesOff + st.journalEntrySize()*i
			no := st.pm.LoadU32(entry)
			if int(no) >= st.cfg.MaxPages {
				return fmt.Errorf("%w: journal entry %d page %d", pager.ErrCorrupt, i, no)
			}
			img := st.pm.Read(entry+8, st.cfg.PageSize)
			base := st.cfg.pageBase(no)
			st.pm.Store(base, img)
			st.pm.Flush(base, st.cfg.PageSize)
		}
		st.sys.Fence()
		st.pm.StoreU64(jbase+journalCountOff, 0)
		st.pm.Persist(jbase+journalCountOff, 8)
	}
	meta, err := pager.ReadMeta(st.pm, 0)
	if err != nil {
		return err
	}
	st.meta = meta
	st.txid = meta.TxID
	return nil
}
