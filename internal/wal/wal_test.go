package wal

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"fasp/internal/btree"
	"fasp/internal/pager"
	"fasp/internal/pmem"
)

func newStore(t testing.TB, kind Kind) (*pmem.System, *Store, *btree.Tree) {
	t.Helper()
	sys := pmem.NewSystem(pmem.DefaultLatencies(300, 300))
	st := Create(sys, Config{PageSize: 512, MaxPages: 2048, LogBytes: 1 << 20, Kind: kind})
	return sys, st, btree.New(st)
}

func k(i int) []byte        { return []byte(fmt.Sprintf("k%08d", i)) }
func v(i int, n int) []byte { return bytes.Repeat([]byte{byte('a' + i%26)}, n) }

func allKinds() []Kind { return []Kind{NVWAL, FullWAL, Journal} }

func TestBasicCRUDAllKinds(t *testing.T) {
	for _, kind := range allKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			_, _, tr := newStore(t, kind)
			for i := 0; i < 300; i++ {
				if err := tr.Insert(k(i), v(i, 30)); err != nil {
					t.Fatalf("insert %d: %v", i, err)
				}
			}
			for i := 0; i < 300; i += 7 {
				if err := tr.Update(k(i), v(i+1, 20)); err != nil {
					t.Fatalf("update %d: %v", i, err)
				}
			}
			for i := 3; i < 300; i += 11 {
				if err := tr.Delete(k(i)); err != nil {
					t.Fatalf("delete %d: %v", i, err)
				}
			}
			// Verify contents.
			for i := 0; i < 300; i++ {
				got, ok, err := tr.Get(k(i))
				if err != nil {
					t.Fatal(err)
				}
				deleted := i >= 3 && (i-3)%11 == 0
				updated := i%7 == 0 && !deleted
				switch {
				case deleted && ok:
					t.Fatalf("deleted key %d present", i)
				case !deleted && !ok:
					t.Fatalf("key %d missing", i)
				case updated && !bytes.Equal(got, v(i+1, 20)):
					t.Fatalf("key %d not updated", i)
				}
			}
			tx, err := tr.Begin()
			if err != nil {
				t.Fatal(err)
			}
			defer tx.Rollback()
			if err := tx.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRollbackInvalidatesCache(t *testing.T) {
	for _, kind := range allKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			_, _, tr := newStore(t, kind)
			if err := tr.Insert(k(1), v(1, 20)); err != nil {
				t.Fatal(err)
			}
			tx, err := tr.Begin()
			if err != nil {
				t.Fatal(err)
			}
			if err := tx.Insert(k(2), v(2, 20)); err != nil {
				t.Fatal(err)
			}
			if err := tx.Update(k(1), []byte("dirty")); err != nil {
				t.Fatal(err)
			}
			tx.Rollback()
			got, ok, err := tr.Get(k(1))
			if err != nil || !ok {
				t.Fatalf("get after rollback: %v %v", ok, err)
			}
			if !bytes.Equal(got, v(1, 20)) {
				t.Fatalf("rollback leaked dirty value %q", got)
			}
			if _, ok, _ := tr.Get(k(2)); ok {
				t.Fatal("rolled-back insert visible")
			}
		})
	}
}

func TestNVWALFramesAndIndex(t *testing.T) {
	_, st, tr := newStore(t, NVWAL)
	for i := 0; i < 20; i++ {
		if err := tr.Insert(k(i), v(i, 40)); err != nil {
			t.Fatal(err)
		}
	}
	s := st.Stats()
	if s.WALFrames == 0 || s.WALBytes == 0 {
		t.Fatalf("no WAL activity: %+v", s)
	}
	// Differential logging writes far fewer bytes than full pages.
	if s.WALBytes >= int64(st.PageSize())*s.WALFrames {
		t.Fatalf("NVWAL frames look like full pages: %+v", s)
	}
	if len(st.walIndex) == 0 {
		t.Fatal("WAL index empty")
	}
}

func TestFullWALWritesWholePages(t *testing.T) {
	_, st, tr := newStore(t, FullWAL)
	for i := 0; i < 10; i++ {
		if err := tr.Insert(k(i), v(i, 40)); err != nil {
			t.Fatal(err)
		}
	}
	s := st.Stats()
	if s.WALBytes != int64(st.PageSize())*s.WALFrames {
		t.Fatalf("FullWAL frame bytes %d != pages*%d (%d frames)", s.WALBytes, st.PageSize(), s.WALFrames)
	}
}

func TestExplicitCheckpointResetsWAL(t *testing.T) {
	_, st, tr := newStore(t, NVWAL)
	for i := 0; i < 30; i++ {
		if err := tr.Insert(k(i), v(i, 40)); err != nil {
			t.Fatal(err)
		}
	}
	st.Checkpoint()
	if st.walTail != 0 || len(st.walIndex) != 0 || st.walBytes != 0 {
		t.Fatal("checkpoint left WAL state behind")
	}
	// PM pages now hold the data: a cold reattach (no WAL replay needed)
	// must see everything.
	st2, err := Attach(st.Arena(), st.cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Recover(); err != nil {
		t.Fatal(err)
	}
	tr2 := btree.New(st2)
	for i := 0; i < 30; i++ {
		if _, ok, _ := tr2.Get(k(i)); !ok {
			t.Fatalf("key %d missing after checkpoint+reattach", i)
		}
	}
}

func TestLazyCheckpointTriggers(t *testing.T) {
	sys := pmem.NewSystem(pmem.DefaultLatencies(300, 300))
	st := Create(sys, Config{PageSize: 512, MaxPages: 2048, LogBytes: 1 << 20,
		CheckpointBytes: 4096, Kind: NVWAL})
	tr := btree.New(st)
	for i := 0; i < 200; i++ {
		if err := tr.Insert(k(i), v(i, 40)); err != nil {
			t.Fatal(err)
		}
	}
	if st.Stats().Checkpoints == 0 {
		t.Fatal("lazy checkpoint never fired")
	}
}

func TestRecoveryAfterCrashAllKinds(t *testing.T) {
	for _, kind := range allKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			cfg := Config{PageSize: 256, MaxPages: 1024, LogBytes: 1 << 20, Kind: kind}
			const nTxns = 18
			// Count crash points.
			sys := pmem.NewSystem(pmem.DefaultLatencies(300, 300))
			st := Create(sys, cfg)
			tr := btree.New(st)
			base := sys.CrashPoints()
			for i := 0; i < nTxns; i++ {
				if err := tr.Insert(k(i), v(i, 40)); err != nil {
					t.Fatal(err)
				}
			}
			total := sys.CrashPoints() - base
			step := total / 60
			if step == 0 {
				step = 1
			}
			if testing.Short() {
				step = total / 12
			}
			for _, opts := range []pmem.CrashOptions{pmem.EvictNone, pmem.EvictAll, {Seed: 7, EvictProb: 0.5}} {
				for kpt := int64(0); kpt < total; kpt += step {
					sys := pmem.NewSystem(pmem.DefaultLatencies(300, 300))
					st := Create(sys, cfg)
					tr := btree.New(st)
					var committed []int
					sys.CrashAfter(kpt)
					sys.RunToCrash(func() {
						for i := 0; i < nTxns; i++ {
							if err := tr.Insert(k(i), v(i, 40)); err != nil {
								panic(err)
							}
							committed = append(committed, i)
						}
					})
					sys.Crash(opts)
					st2, err := Attach(st.Arena(), cfg)
					if err != nil {
						t.Fatalf("%v crash@%d: attach: %v", kind, kpt, err)
					}
					if err := st2.Recover(); err != nil {
						t.Fatalf("%v crash@%d: recover: %v", kind, kpt, err)
					}
					tr2 := btree.New(st2)
					tx, err := tr2.Begin()
					if err != nil {
						t.Fatal(err)
					}
					if err := tx.Validate(); err != nil {
						t.Fatalf("%v crash@%d evict=%.1f: invalid tree: %v", kind, kpt, opts.EvictProb, err)
					}
					count, err := tx.Count()
					if err != nil {
						t.Fatal(err)
					}
					for _, i := range committed {
						got, ok, err := tx.Get(k(i))
						if err != nil || !ok {
							t.Fatalf("%v crash@%d: committed key %d missing", kind, kpt, i)
						}
						if !bytes.Equal(got, v(i, 40)) {
							t.Fatalf("%v crash@%d: committed key %d corrupt", kind, kpt, i)
						}
					}
					if count != len(committed) && count != len(committed)+1 {
						t.Fatalf("%v crash@%d: %d keys recovered, %d committed", kind, kpt, count, len(committed))
					}
					tx.Rollback()
				}
			}
		})
	}
}

func TestVariantsMatchReferenceModel(t *testing.T) {
	for _, kind := range allKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			_, _, tr := newStore(t, kind)
			rng := rand.New(rand.NewSource(4))
			model := map[string]string{}
			for step := 0; step < 400; step++ {
				i := rng.Intn(120)
				switch rng.Intn(4) {
				case 0, 1:
					val := v(i, 10+rng.Intn(50))
					if err := tr.Insert(k(i), val); err == nil {
						model[string(k(i))] = string(val)
					}
				case 2:
					val := v(i+2, 10+rng.Intn(50))
					if err := tr.Update(k(i), val); err == nil {
						model[string(k(i))] = string(val)
					}
				case 3:
					if err := tr.Delete(k(i)); err == nil {
						delete(model, string(k(i)))
					}
				}
			}
			got := map[string]string{}
			if err := tr.Scan(nil, nil, func(key, val []byte) bool {
				got[string(key)] = string(val)
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if len(got) != len(model) {
				t.Fatalf("%d keys, model %d", len(got), len(model))
			}
			for kk, vv := range model {
				if got[kk] != vv {
					t.Fatalf("key %q = %q, want %q", kk, got[kk], vv)
				}
			}
		})
	}
}

func TestBeginWhileActiveRejected(t *testing.T) {
	_, st, _ := newStore(t, NVWAL)
	tx, err := st.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Begin(); err != pager.ErrTxnActive {
		t.Fatalf("second begin: %v", err)
	}
	tx.Rollback()
	if _, err := st.Begin(); err != nil {
		t.Fatalf("begin after rollback: %v", err)
	}
}

// TestCrashDuringCheckpoint sweeps crash points through an explicit
// checkpoint: a crash mid-checkpoint must leave the WAL head intact so
// recovery replays the frames, never losing committed data.
func TestCrashDuringCheckpoint(t *testing.T) {
	for _, kind := range []Kind{NVWAL, FullWAL} {
		t.Run(kind.String(), func(t *testing.T) {
			cfg := Config{PageSize: 256, MaxPages: 1024, LogBytes: 4 << 20,
				CheckpointBytes: 1 << 60, Kind: kind}
			const n = 15
			prep := func() (*pmem.System, *Store) {
				sys := pmem.NewSystem(pmem.DefaultLatencies(300, 300))
				st := Create(sys, cfg)
				tr := btree.New(st)
				for i := 0; i < n; i++ {
					if err := tr.Insert(k(i), v(i, 40)); err != nil {
						t.Fatal(err)
					}
				}
				return sys, st
			}
			// Count checkpoint crash points.
			sys, st := prep()
			base := sys.CrashPoints()
			st.Checkpoint()
			total := sys.CrashPoints() - base
			if total < 10 {
				t.Fatalf("checkpoint has only %d crash points", total)
			}
			step := total / 40
			if step == 0 {
				step = 1
			}
			for kpt := int64(0); kpt < total; kpt += step {
				sys, st := prep()
				sys.CrashAfter(kpt)
				sys.RunToCrash(func() { st.Checkpoint() })
				sys.Crash(pmem.CrashOptions{Seed: kpt, EvictProb: 0.5})
				st2, err := Attach(st.Arena(), cfg)
				if err != nil {
					t.Fatalf("crash@%d: %v", kpt, err)
				}
				if err := st2.Recover(); err != nil {
					t.Fatalf("crash@%d: recover: %v", kpt, err)
				}
				tr2 := btree.New(st2)
				tx, err := tr2.Begin()
				if err != nil {
					t.Fatal(err)
				}
				if err := tx.Validate(); err != nil {
					t.Fatalf("crash@%d: invalid: %v", kpt, err)
				}
				for i := 0; i < n; i++ {
					got, ok, err := tx.Get(k(i))
					if err != nil || !ok || !bytes.Equal(got, v(i, 40)) {
						t.Fatalf("crash@%d: committed key %d lost in checkpoint crash", kpt, i)
					}
				}
				tx.Rollback()
			}
		})
	}
}

// TestWALWrapForcesCheckpoint fills the FullWAL bump region until it wraps.
func TestWALWrapForcesCheckpoint(t *testing.T) {
	sys := pmem.NewSystem(pmem.DefaultLatencies(120, 120))
	st := Create(sys, Config{PageSize: 512, MaxPages: 2048, LogBytes: 64 << 10,
		CheckpointBytes: 1 << 60, Kind: FullWAL})
	tr := btree.New(st)
	for i := 0; i < 300; i++ {
		if err := tr.Insert(k(i), v(i, 40)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if st.Stats().Checkpoints == 0 {
		t.Fatal("bump-region exhaustion never forced a checkpoint")
	}
	for i := 0; i < 300; i++ {
		if _, ok, _ := tr.Get(k(i)); !ok {
			t.Fatalf("key %d lost across forced checkpoint", i)
		}
	}
}

// TestNVWALHeapExhaustionForcesCheckpoint does the same for the heap.
func TestNVWALHeapExhaustionForcesCheckpoint(t *testing.T) {
	sys := pmem.NewSystem(pmem.DefaultLatencies(120, 120))
	st := Create(sys, Config{PageSize: 512, MaxPages: 2048, LogBytes: 64 << 10,
		CheckpointBytes: 1 << 60, Kind: NVWAL})
	tr := btree.New(st)
	for i := 0; i < 400; i++ {
		if err := tr.Insert(k(i), v(i, 40)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if st.Stats().Checkpoints == 0 {
		t.Fatal("heap exhaustion never forced a checkpoint")
	}
	for i := 0; i < 400; i++ {
		if _, ok, _ := tr.Get(k(i)); !ok {
			t.Fatalf("key %d lost", i)
		}
	}
}

// TestJournalRegionTooSmall: a transaction dirtying more pages than the
// journal region can hold fails cleanly and rolls back.
func TestJournalRegionTooSmall(t *testing.T) {
	sys := pmem.NewSystem(pmem.DefaultLatencies(120, 120))
	st := Create(sys, Config{PageSize: 512, MaxPages: 2048, LogBytes: 1100, Kind: Journal})
	tr := btree.New(st)
	if err := tr.Insert(k(1), v(1, 20)); err != nil {
		t.Fatal(err)
	}
	// A multi-page transaction exceeds the tiny journal.
	tx, _ := tr.Begin()
	var txErr error
	for i := 2; i < 200 && txErr == nil; i++ {
		txErr = tx.Insert(k(i), v(i, 40))
	}
	if txErr == nil {
		txErr = tx.Commit()
	} else {
		tx.Rollback()
	}
	if txErr == nil {
		t.Fatal("oversized journal transaction committed")
	}
	// Store still consistent and usable.
	if _, ok, err := tr.Get(k(1)); err != nil || !ok {
		t.Fatalf("store damaged after journal overflow: %v %v", ok, err)
	}
	if err := tr.Insert(k(9999), v(1, 20)); err != nil {
		t.Fatalf("store unusable after journal overflow: %v", err)
	}
}
