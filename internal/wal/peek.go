package wal

import (
	"fmt"

	"fasp/internal/pager"
)

// The DRAM-cache schemes keep the last committed image of a page in one of
// two places: the DRAM buffer cache for resident pages (between
// transactions the cached image IS the committed image — Rollback evicts
// pages an aborted transaction dirtied), or the PM page plus its committed
// WAL frames for non-resident ones. PeekCommitted reproduces exactly what
// ensureResident would materialise, restricted to the requested range, but
// without mutating the cache, the clock or the crash injector. For the
// Journal kind the WAL index is empty and the PM page alone is the
// committed image.

// CommittedRoot returns the last committed B-tree root page.
func (st *Store) CommittedRoot() uint32 { return st.meta.Root }

// PeekCommitted implements pager.SnapshotReader.
func (st *Store) PeekCommitted(no uint32, off int, dst []byte) (int64, error) {
	if no < 1 || no >= st.meta.NPages {
		return 0, fmt.Errorf("%w: peek of page %d outside [1,%d)",
			pager.ErrCorrupt, no, st.meta.NPages)
	}
	if off < 0 || off+len(dst) > st.cfg.PageSize {
		return 0, fmt.Errorf("%w: peek of page %d range [%d,%d) outside page",
			pager.ErrCorrupt, no, off, off+len(dst))
	}
	base := st.cfg.pageBase(no)
	if st.resident[no] {
		return st.dram.Peek(base+int64(off), dst), nil
	}
	cost := st.pm.Peek(base+int64(off), dst)
	lo, hi := int64(off), int64(off+len(dst))
	for _, fo := range st.walIndex[no] {
		var hdr [frameHeaderSize]byte
		cost += st.pm.Peek(fo, hdr[:])
		foff := int64(leU32(hdr[4:]))
		n := int64(leU32(hdr[8:]))
		s, e := foff, foff+n
		if s < lo {
			s = lo
		}
		if e > hi {
			e = hi
		}
		if s >= e {
			continue
		}
		cost += st.pm.Peek(fo+frameHeaderSize+(s-foff), dst[s-lo:e-lo])
	}
	return cost, nil
}
