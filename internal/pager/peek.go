package pager

// SnapshotReader is the optional read-only view a Store can expose for
// optimistic (lock-free) readers. It serves the LAST COMMITTED state only:
// in-flight transaction writes must never be visible through it, and calls
// must not mutate any simulated machine state (no clock advance, no cache
// fill, no crash points). Implementations are NOT internally synchronized —
// callers must guarantee no commit runs concurrently (the shard engine's
// epoch gate provides exactly that window).
type SnapshotReader interface {
	// CommittedRoot returns the B-tree root page of the last committed
	// transaction (0 = empty tree).
	CommittedRoot() uint32
	// PeekCommitted copies committed bytes [off, off+len(dst)) of page no
	// into dst and returns the simulated read cost the locked path would
	// have charged. Out-of-range pages or offsets return an error (wrapping
	// ErrCorrupt) instead of panicking: a torn walk over a stale root must
	// surface as a retryable failure, not a process fault.
	PeekCommitted(no uint32, off int, dst []byte) (int64, error)
}
