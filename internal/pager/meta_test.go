package pager

import (
	"errors"
	"testing"

	"fasp/internal/pmem"
)

func newArena(t *testing.T) (*pmem.System, *pmem.Arena) {
	t.Helper()
	sys := pmem.NewSystem(pmem.DefaultLatencies(300, 300))
	return sys, sys.NewArena("pm", 4096, pmem.PM)
}

func TestMetaRoundTrip(t *testing.T) {
	_, a := newArena(t)
	m := Meta{PageSize: 4096, NPages: 17, Root: 3, FreeCount: 2, TxID: 99}
	WriteMeta(a, 0, m)
	got, err := ReadMeta(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("got %+v, want %+v", got, m)
	}
}

func TestReadMetaRejectsGarbage(t *testing.T) {
	_, a := newArena(t)
	if _, err := ReadMeta(a, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestMetaSurvivesCrashAfterWrite(t *testing.T) {
	sys, a := newArena(t)
	m := Meta{PageSize: 4096, NPages: 5, Root: 2, TxID: 7}
	WriteMeta(a, 0, m)
	sys.Crash(pmem.EvictNone)
	got, err := ReadMeta(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("after crash: %+v", got)
	}
}

func TestMetaFrameRoundTrip(t *testing.T) {
	_, a := newArena(t)
	WriteMeta(a, 0, Meta{PageSize: 4096, NPages: 1})
	m := Meta{PageSize: 4096, NPages: 44, Root: 9, FreeCount: 3, TxID: 1234}
	frame := EncodeMetaFrame(m)
	if len(frame) != MetaFrameLen {
		t.Fatalf("frame length %d", len(frame))
	}
	if err := ApplyMetaFrame(a, 0, frame); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMeta(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	// PageSize is immutable; the frame carries the mutable fields.
	if got.NPages != 44 || got.Root != 9 || got.FreeCount != 3 || got.TxID != 1234 {
		t.Fatalf("after apply: %+v", got)
	}
}

func TestApplyMetaFrameRejectsBadLength(t *testing.T) {
	_, a := newArena(t)
	if err := ApplyMetaFrame(a, 0, []byte{1, 2, 3}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v", err)
	}
}

func TestPokeFreeCount(t *testing.T) {
	sys, a := newArena(t)
	WriteMeta(a, 0, Meta{PageSize: 4096, NPages: 1})
	PokeFreeCount(a, 0, 11)
	sys.Crash(pmem.EvictNone)
	got, err := ReadMeta(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.FreeCount != 11 {
		t.Fatalf("free count = %d", got.FreeCount)
	}
}
