package pager

import (
	"encoding/binary"
	"fmt"

	"fasp/internal/pmem"
)

// Meta is the decoded metadata page (page 0) of a store: the root pointer,
// the page high-water mark, the free-page list head and the transaction
// counter. During a transaction the working copy lives in memory; commit
// schemes persist it atomically with the transaction (FAST encodes it as a
// pseudo slot-header frame for page 0; the DRAM-cache schemes treat page 0
// like any other dirty page).
type Meta struct {
	PageSize  uint32
	NPages    uint32 // next never-allocated page number (≥ 1)
	Root      uint32 // B-tree root page (0 = none)
	FreeCount uint32 // number of entries in the free-page stack
	TxID      uint64 // last committed transaction id
}

// Meta page field offsets within page 0.
const (
	metaMagicOff     = 0
	metaPageSizeOff  = 8
	metaNPagesOff    = 12
	metaRootOff      = 16
	metaFreeCountOff = 20
	metaTxIDOff      = 24
	metaMagic        = 0x46415350_44423031 // "FASPDB01"
	// MetaFrameLen is the byte length of an encoded meta frame.
	MetaFrameLen = 24
)

// WriteMeta initialises page 0 of a PM (or DRAM image) arena region.
func WriteMeta(a *pmem.Arena, base int64, m Meta) {
	a.StoreU64(base+metaMagicOff, metaMagic)
	a.StoreU32(base+metaPageSizeOff, m.PageSize)
	a.StoreU32(base+metaNPagesOff, m.NPages)
	a.StoreU32(base+metaRootOff, m.Root)
	a.StoreU32(base+metaFreeCountOff, m.FreeCount)
	a.StoreU64(base+metaTxIDOff, m.TxID)
	a.Persist(base, 32)
}

// ReadMeta decodes and validates page 0.
func ReadMeta(a *pmem.Arena, base int64) (Meta, error) {
	if a.LoadU64(base+metaMagicOff) != metaMagic {
		return Meta{}, fmt.Errorf("%w: bad meta magic", ErrCorrupt)
	}
	return Meta{
		PageSize:  a.LoadU32(base + metaPageSizeOff),
		NPages:    a.LoadU32(base + metaNPagesOff),
		Root:      a.LoadU32(base + metaRootOff),
		FreeCount: a.LoadU32(base + metaFreeCountOff),
		TxID:      a.LoadU64(base + metaTxIDOff),
	}, nil
}

// EncodeMetaFrame renders the mutable meta fields as a slot-header-log
// frame body for page 0.
func EncodeMetaFrame(m Meta) []byte {
	return EncodeMetaFrameInto(m, nil)
}

// EncodeMetaFrameInto renders the meta frame into buf, reusing its capacity
// when it suffices. The padding bytes are zeroed so the frame image does not
// depend on the buffer's previous contents.
func EncodeMetaFrameInto(m Meta, buf []byte) []byte {
	var b []byte
	if cap(buf) >= MetaFrameLen {
		b = buf[:MetaFrameLen]
	} else {
		b = make([]byte, MetaFrameLen)
	}
	binary.LittleEndian.PutUint32(b[0:], m.NPages)
	binary.LittleEndian.PutUint32(b[4:], m.Root)
	binary.LittleEndian.PutUint32(b[8:], m.FreeCount)
	binary.LittleEndian.PutUint32(b[12:], 0)
	binary.LittleEndian.PutUint64(b[16:], m.TxID)
	return b
}

// PokeFreeCount updates only the free-page-stack count in page 0 with a
// single atomic store (used post-commit when freed pages are pushed; a
// crash in between merely leaks pages).
func PokeFreeCount(a *pmem.Arena, base int64, v uint32) {
	a.StoreU32(base+metaFreeCountOff, v)
	a.Flush(base+metaFreeCountOff, 4)
}

// ApplyMetaFrame replays an encoded meta frame onto page 0 and flushes it.
func ApplyMetaFrame(a *pmem.Arena, base int64, frame []byte) error {
	if len(frame) != MetaFrameLen {
		return fmt.Errorf("%w: meta frame length %d", ErrCorrupt, len(frame))
	}
	a.StoreU32(base+metaNPagesOff, binary.LittleEndian.Uint32(frame[0:]))
	a.StoreU32(base+metaRootOff, binary.LittleEndian.Uint32(frame[4:]))
	a.StoreU32(base+metaFreeCountOff, binary.LittleEndian.Uint32(frame[8:]))
	a.StoreU64(base+metaTxIDOff, binary.LittleEndian.Uint64(frame[16:]))
	a.Flush(base, 32)
	return nil
}
