// Package pager defines the storage abstraction the B-tree runs on: a Store
// that opens transactions, and a Txn that hands out slotted-page handles and
// implements one of the commit schemes under evaluation.
//
// Implementations:
//
//   - internal/fast: the paper's contribution — a PM-only persistent buffer
//     cache with slot-header logging (FAST) and HTM in-place commit (FAST+);
//   - internal/wal: the baselines — NVWAL (DRAM cache + differential
//     logging in PM), full-page WAL, and rollback journaling.
package pager

import (
	"errors"

	"fasp/internal/pmem"
	"fasp/internal/slotted"
)

// Errors shared by store implementations.
var (
	// ErrTxnActive reports Begin while a transaction is open (stores are
	// single-writer, like SQLite in exclusive mode).
	ErrTxnActive = errors.New("pager: transaction already active")
	// ErrFull reports page-space exhaustion.
	ErrFull = errors.New("pager: out of pages")
	// ErrCorrupt reports an unrecoverable store image.
	ErrCorrupt = errors.New("pager: store corrupt")
)

// Store is a database file: a page space plus a recovery mechanism.
type Store interface {
	// Name identifies the commit scheme ("FAST+", "NVWAL", …).
	Name() string
	// PageSize returns the page size in bytes.
	PageSize() int
	// Sys returns the simulated machine the store lives on.
	Sys() *pmem.System
	// Begin opens the store's single write transaction.
	Begin() (Txn, error)
	// Recover runs crash recovery; call once after (re)opening a store
	// whose previous incarnation may have crashed.
	Recover() error
}

// Txn is one transaction's view of the store. Page handles returned by Page
// and AllocPage are stable for the life of the transaction; their decoded
// headers are the transaction's working state and become durable only
// through Commit.
type Txn interface {
	// PageSize returns the page size in bytes.
	PageSize() int
	// Root returns the B-tree root page number (0 = empty tree).
	Root() uint32
	// SetRoot changes the root pointer; committed atomically with the
	// transaction.
	SetRoot(no uint32)
	// Page opens the slotted page no.
	Page(no uint32) (*slotted.Page, error)
	// AllocPage allocates a fresh page and initialises it with the given
	// slotted type. The allocation is undone if the transaction does not
	// commit.
	AllocPage(typ byte) (uint32, *slotted.Page, error)
	// FreePage releases a page; it is reused only after commit.
	FreePage(no uint32)
	// OpEnd marks the end of one logical B-tree operation. PM-direct
	// schemes flush freshly written record bytes (clflush(record)) and,
	// under FAST, stage updated slot headers into the log.
	OpEnd()
	// Defragged tells the transaction that copy-on-write defragmentation
	// occurred, which disqualifies the in-place (FAST+) commit path.
	Defragged()
	// Commit runs the scheme's commit protocol.
	Commit() error
	// Rollback abandons the transaction. Content already written into
	// page free space is dead (never referenced by a committed header).
	Rollback()
}

// MetaPageNo is the page number of the store's metadata page; shlog frames
// addressed to it carry encoded meta fields instead of a slot header.
const MetaPageNo = 0
