package pager_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"fasp/internal/fast"
	"fasp/internal/pager"
	"fasp/internal/pmem"
	"fasp/internal/slotted"
	"fasp/internal/wal"
)

// makeStore builds each scheme over a fresh simulated machine.
func makeStore(name string) (pager.Store, func() (pager.Store, error)) {
	sys := pmem.NewSystem(pmem.DefaultLatencies(300, 300))
	switch name {
	case "FAST", "FAST+":
		variant := fast.SlotHeaderLogging
		if name == "FAST+" {
			variant = fast.InPlaceCommit
		}
		cfg := fast.Config{PageSize: 512, MaxPages: 512, Variant: variant}
		st := fast.Create(sys, cfg)
		return st, func() (pager.Store, error) {
			ns, err := fast.Attach(st.Arena(), cfg)
			if err != nil {
				return nil, err
			}
			return ns, ns.Recover()
		}
	default:
		kind := wal.NVWAL
		switch name {
		case "WAL":
			kind = wal.FullWAL
		case "Journal":
			kind = wal.Journal
		}
		cfg := wal.Config{PageSize: 512, MaxPages: 512, Kind: kind}
		st := wal.Create(sys, cfg)
		return st, func() (pager.Store, error) {
			ns, err := wal.Attach(st.Arena(), cfg)
			if err != nil {
				return nil, err
			}
			return ns, ns.Recover()
		}
	}
}

var schemeNames = []string{"FAST", "FAST+", "NVWAL", "WAL", "Journal"}

// TestStoreConformance checks the semantic contract every pager.Store must
// honour, identically across schemes.
func TestStoreConformance(t *testing.T) {
	for _, name := range schemeNames {
		t.Run(name, func(t *testing.T) {
			st, reopen := makeStore(name)

			// Naming and geometry.
			if st.Name() == "" || st.PageSize() != 512 || st.Sys() == nil {
				t.Fatalf("identity: %q %d", st.Name(), st.PageSize())
			}

			// Single-writer.
			tx, err := st.Begin()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := st.Begin(); !errors.Is(err, pager.ErrTxnActive) {
				t.Fatalf("second begin: %v", err)
			}

			// Fresh store: root 0, no pages addressable.
			if tx.Root() != 0 {
				t.Fatalf("fresh root = %d", tx.Root())
			}
			if _, err := tx.Page(0); err == nil {
				t.Fatal("meta page addressable as data")
			}
			if _, err := tx.Page(7); err == nil {
				t.Fatal("unallocated page addressable")
			}

			// Allocate, write, set root, commit.
			no, p, err := tx.AllocPage(slotted.TypeLeaf)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Insert([]byte("alpha"), []byte("1")); err != nil {
				t.Fatal(err)
			}
			tx.SetRoot(no)
			tx.OpEnd()
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}

			// Committed state visible in the next transaction.
			tx2, err := st.Begin()
			if err != nil {
				t.Fatal(err)
			}
			if tx2.Root() != no {
				t.Fatalf("root = %d, want %d", tx2.Root(), no)
			}
			p2, err := tx2.Page(no)
			if err != nil {
				t.Fatal(err)
			}
			if i, found := p2.Search([]byte("alpha")); !found || !bytes.Equal(p2.Value(i), []byte("1")) {
				t.Fatal("committed record missing")
			}
			// Rolled-back changes invisible.
			if err := p2.Insert([]byte("beta"), []byte("2")); err != nil {
				t.Fatal(err)
			}
			tx2.OpEnd()
			tx2.Rollback()

			tx3, err := st.Begin()
			if err != nil {
				t.Fatal(err)
			}
			p3, err := tx3.Page(no)
			if err != nil {
				t.Fatal(err)
			}
			if _, found := p3.Search([]byte("beta")); found {
				t.Fatal("rolled-back record visible")
			}
			// Same-transaction read-your-writes.
			if err := p3.Insert([]byte("gamma"), []byte("3")); err != nil {
				t.Fatal(err)
			}
			if _, found := p3.Search([]byte("gamma")); !found {
				t.Fatal("own write invisible")
			}
			tx3.OpEnd()
			if err := tx3.Commit(); err != nil {
				t.Fatal(err)
			}

			// Clean reopen (crash with nothing volatile pending).
			st.Sys().Crash(pmem.EvictNone)
			st4, err := reopen()
			if err != nil {
				t.Fatal(err)
			}
			tx4, err := st4.Begin()
			if err != nil {
				t.Fatal(err)
			}
			p4, err := tx4.Page(no)
			if err != nil {
				t.Fatal(err)
			}
			for _, want := range []string{"alpha", "gamma"} {
				if _, found := p4.Search([]byte(want)); !found {
					t.Fatalf("%q lost across reopen", want)
				}
			}
			tx4.Rollback()
		})
	}
}

// TestStoreConformanceFreePages checks allocate/free lifecycles.
func TestStoreConformanceFreePages(t *testing.T) {
	for _, name := range schemeNames {
		t.Run(name, func(t *testing.T) {
			st, _ := makeStore(name)
			tx, err := st.Begin()
			if err != nil {
				t.Fatal(err)
			}
			a, _, err := tx.AllocPage(slotted.TypeLeaf)
			if err != nil {
				t.Fatal(err)
			}
			b, _, err := tx.AllocPage(slotted.TypeLeaf)
			if err != nil {
				t.Fatal(err)
			}
			if a == b {
				t.Fatal("duplicate page numbers")
			}
			tx.SetRoot(a)
			tx.OpEnd()
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			// Free b; a later allocation may reuse it but never hand out a
			// live page.
			tx2, _ := st.Begin()
			tx2.FreePage(b)
			if err := tx2.Commit(); err != nil {
				t.Fatal(err)
			}
			tx3, _ := st.Begin()
			seen := map[uint32]bool{a: true}
			for i := 0; i < 5; i++ {
				no, _, err := tx3.AllocPage(slotted.TypeLeaf)
				if err != nil {
					t.Fatal(err)
				}
				if seen[no] {
					t.Fatalf("page %d handed out twice", no)
				}
				seen[no] = true
			}
			tx3.Rollback()
		})
	}
}

// TestStoreConformanceManyTxns runs a long alternating commit/rollback
// sequence and checks the committed view stays exact.
func TestStoreConformanceManyTxns(t *testing.T) {
	for _, name := range schemeNames {
		t.Run(name, func(t *testing.T) {
			st, _ := makeStore(name)
			// Bootstrap.
			tx, _ := st.Begin()
			no, _, err := tx.AllocPage(slotted.TypeLeaf)
			if err != nil {
				t.Fatal(err)
			}
			tx.SetRoot(no)
			tx.OpEnd()
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			committed := map[string]bool{}
			for i := 0; i < 24; i++ {
				key := fmt.Sprintf("key%02d", i)
				tx, err := st.Begin()
				if err != nil {
					t.Fatal(err)
				}
				p, err := tx.Page(no)
				if err != nil {
					t.Fatal(err)
				}
				if err := p.Insert([]byte(key), []byte("v")); err != nil {
					// Page filled up: acceptable; stop inserting.
					tx.Rollback()
					break
				}
				tx.OpEnd()
				if i%3 == 2 {
					tx.Rollback()
				} else {
					if err := tx.Commit(); err != nil {
						t.Fatal(err)
					}
					committed[key] = true
				}
			}
			tx2, _ := st.Begin()
			p, err := tx2.Page(no)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 24; i++ {
				key := fmt.Sprintf("key%02d", i)
				_, found := p.Search([]byte(key))
				if found != committed[key] {
					t.Fatalf("%s: key %s found=%v committed=%v", name, key, found, committed[key])
				}
			}
			tx2.Rollback()
		})
	}
}
