package fast

import (
	"fmt"

	"fasp/internal/pager"
)

// The FAST schemes checkpoint eagerly: Commit installs every slot header
// in-place before it returns, so the PM arena always holds the complete
// last-committed image once no transaction is running. Pre-commit record
// bytes land only in free space that no committed header references, which
// makes a plain coherent read of the committed pages a consistent snapshot
// — exactly the slot-header-is-the-commit-mark invariant the paper builds
// on. Peek reads that view without touching the machine clock, cache
// overlay or crash injector.

// CommittedRoot returns the last committed B-tree root page.
func (st *Store) CommittedRoot() uint32 { return st.meta.Root }

// PeekCommitted implements pager.SnapshotReader over the PM arena.
func (st *Store) PeekCommitted(no uint32, off int, dst []byte) (int64, error) {
	if no < 1 || no >= st.meta.NPages {
		return 0, fmt.Errorf("%w: peek of page %d outside [1,%d)",
			pager.ErrCorrupt, no, st.meta.NPages)
	}
	if off < 0 || off+len(dst) > st.cfg.PageSize {
		return 0, fmt.Errorf("%w: peek of page %d range [%d,%d) outside page",
			pager.ErrCorrupt, no, off, off+len(dst))
	}
	return st.arena.Peek(st.cfg.pageBase(no)+int64(off), dst), nil
}
