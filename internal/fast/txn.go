package fast

import (
	"fmt"

	"fasp/internal/pager"
	"fasp/internal/phase"
	"fasp/internal/pmem"
	"fasp/internal/slotted"
)

// byteRange is an unflushed content write within a page.
type byteRange struct{ off, n int }

// pageMem is the slotted.Mem backend of one page inside a transaction.
// Content writes go straight to PM (in-place, into free space); header
// changes stay in the page handle's decoded header until commit installs
// them. Unflushed content ranges are persisted at OpEnd, the paper's
// clflush(record) step.
type pageMem struct {
	tx        *Txn
	no        uint32
	base      int64
	unflushed []byteRange
	hdrDirty  bool // header changed since transaction start
	hdrStaged bool // header staged into the log since last change (FAST)
}

func (m *pageMem) PageSize() int { return m.tx.st.cfg.PageSize }

func (m *pageMem) Read(off, n int) []byte {
	return m.tx.st.arena.Read(m.base+int64(off), n)
}

// ReadInto is the allocation-free read path (slotted.ScratchMem); it issues
// the same arena Load as Read.
func (m *pageMem) ReadInto(off int, dst []byte) {
	m.tx.st.arena.Load(m.base+int64(off), dst)
}

func (m *pageMem) Write(off int, src []byte) {
	m.tx.st.arena.Store(m.base+int64(off), src)
	m.unflushed = append(m.unflushed, byteRange{off, len(src)})
}

func (m *pageMem) HeaderChanged(h *slotted.Header) {
	if !m.hdrDirty {
		m.hdrDirty = true
		m.tx.dirtyOrder = append(m.tx.dirtyOrder, m.no)
	}
	m.hdrStaged = false
}

// txnPage pairs a page handle with its backend.
type txnPage struct {
	page *slotted.Page
	mem  *pageMem
}

// Txn is a FAST/FAST+ transaction.
type Txn struct {
	st         *Store
	meta       pager.Meta
	metaDirty  bool
	pages      map[uint32]*txnPage
	dirtyOrder []uint32
	allocated  []uint32
	freed      []uint32
	encBuf     []byte // scratch for header/meta-frame encodes
	defragged  bool
	done       bool
}

// bind resets a pooled pageMem for a new page in this transaction.
func (m *pageMem) bind(tx *Txn, no uint32, base int64) {
	*m = pageMem{tx: tx, no: no, base: base, unflushed: m.unflushed[:0]}
}

var _ pager.Txn = (*Txn)(nil)

// PageSize returns the page size in bytes.
func (tx *Txn) PageSize() int { return tx.st.cfg.PageSize }

// Root returns the working root page number.
func (tx *Txn) Root() uint32 { return tx.meta.Root }

// SetRoot updates the working root pointer.
func (tx *Txn) SetRoot(no uint32) {
	tx.meta.Root = no
	tx.metaDirty = true
}

// Page opens (or returns the cached handle of) page no.
func (tx *Txn) Page(no uint32) (*slotted.Page, error) {
	if tp, ok := tx.pages[no]; ok {
		return tp.page, nil
	}
	if no == pager.MetaPageNo || no >= tx.meta.NPages {
		return nil, fmt.Errorf("%w: page %d out of range", pager.ErrCorrupt, no)
	}
	tp := tx.st.takeHandle()
	tp.mem.bind(tx, no, tx.st.cfg.pageBase(no))
	if err := slotted.OpenInto(tp.page, tp.mem); err != nil {
		tx.st.rec.handles = append(tx.st.rec.handles, tp)
		return nil, err
	}
	p := tp.page
	p.SetDeferFrees(true)
	tx.st.maybeFixFreeList(no, p)
	tx.pages[no] = tp
	return p, nil
}

// AllocPage allocates a page — from the free-page stack if possible,
// otherwise by bumping the high-water mark — and initialises it.
func (tx *Txn) AllocPage(typ byte) (uint32, *slotted.Page, error) {
	var no uint32
	if tx.meta.FreeCount > 0 {
		tx.meta.FreeCount--
		no = tx.st.stackEntry(tx.meta.FreeCount)
	} else {
		if int(tx.meta.NPages) >= tx.st.cfg.MaxPages {
			return 0, nil, pager.ErrFull
		}
		no = tx.meta.NPages
		tx.meta.NPages++
	}
	tx.metaDirty = true
	tx.allocated = append(tx.allocated, no)
	tp := tx.st.takeHandle()
	tp.mem.bind(tx, no, tx.st.cfg.pageBase(no))
	slotted.InitInto(tp.page, tp.mem, typ)
	p := tp.page
	p.SetDeferFrees(true)
	tx.pages[no] = tp
	return no, p, nil
}

// FreePage releases a page. Its number enters the persistent free stack
// only after commit; a crash leaks it at worst.
func (tx *Txn) FreePage(no uint32) {
	tx.freed = append(tx.freed, no)
	tx.metaDirty = true
}

// Defragged records that copy-on-write defragmentation happened, which
// disqualifies the FAST+ in-place commit for this transaction.
func (tx *Txn) Defragged() {
	tx.defragged = true
	tx.st.stats.Defrags++
}

// OpEnd finishes one logical B-tree operation: freshly written record
// bytes are flushed (clflush(record), charged to Page Update per Figure 7),
// and under FAST the updated slot headers are copied into the log with
// plain stores (the "update slot header" component — cheap, no flushes).
func (tx *Txn) OpEnd() {
	clock := tx.st.sys.Clock()
	flushed := false
	clock.InPhase(phase.FlushRecord, func() {
		for _, no := range tx.dirtyOrder {
			tp := tx.pages[no]
			for _, r := range tp.mem.unflushed {
				tx.st.arena.Flush(tp.mem.base+int64(r.off), r.n)
				flushed = true
			}
			tp.mem.unflushed = tp.mem.unflushed[:0]
		}
		if flushed {
			tx.st.sys.Fence()
		}
	})
	if tx.st.cfg.Variant == SlotHeaderLogging {
		clock.InPhase(phase.SlotHeader, func() {
			tx.stageHeaders()
		})
	}
}

// stageHeaders appends every changed-and-unstaged slot header to the log.
func (tx *Txn) stageHeaders() {
	for _, no := range tx.dirtyOrder {
		tp := tx.pages[no]
		if !tp.mem.hdrDirty || tp.mem.hdrStaged {
			continue
		}
		enc := tp.page.Header().EncodeInto(tx.encBuf)
		tx.encBuf = enc[:0]
		if err := tx.st.log.AppendHeader(no, enc); err != nil {
			// The log is sized by configuration; treat exhaustion as a
			// programming error rather than silently losing durability.
			panic(err)
		}
		tx.st.stats.LoggedBytes += int64(len(enc))
		tx.st.stats.LoggedFrames++
		tp.mem.hdrStaged = true
	}
}

// singleLeafShape reports whether the transaction's write set has the
// FAST+ in-place-commit shape (§4.2): exactly one dirty page, a leaf,
// header within one cache line, and no allocation, free, defragmentation
// or metadata change. The check reads only in-memory transaction state —
// no arena traffic — so counting it under FAST costs no simulated time.
func (tx *Txn) singleLeafShape() (*txnPage, bool) {
	if tx.defragged || tx.metaDirty ||
		len(tx.allocated) != 0 || len(tx.freed) != 0 || len(tx.dirtyOrder) != 1 {
		return nil, false
	}
	tp := tx.pages[tx.dirtyOrder[0]]
	if tp.page.Type() != slotted.TypeLeaf {
		return nil, false
	}
	if tp.page.NCells() > slotted.MaxInPlaceCells ||
		tp.page.Header().EncodedLen() > pmem.CacheLineSize {
		return nil, false
	}
	return tp, true
}

// inPlaceEligible reports whether the FAST+ single-page HTM commit applies:
// the single-leaf shape, under the in-place variant.
func (tx *Txn) inPlaceEligible() (*txnPage, bool) {
	if tx.st.cfg.Variant != InPlaceCommit {
		return nil, false
	}
	return tx.singleLeafShape()
}

// Commit runs the commit protocol and closes the transaction.
func (tx *Txn) Commit() error {
	if tx.done {
		return fmt.Errorf("fast: commit on finished transaction")
	}
	clock := tx.st.sys.Clock()
	_, singleLeaf := tx.singleLeafShape()
	var err error
	clock.InPhase(phase.Commit, func() {
		// Safety: any record bytes not flushed by OpEnd must be durable
		// before the commit mark.
		tx.flushStragglers()
		if tp, ok := tx.inPlaceEligible(); ok {
			err = tx.commitInPlace(tp)
			if err == nil {
				return
			}
			// Best-effort HTM failed; fall back to slot-header logging,
			// exactly as the paper's fallback handler prescribes.
		}
		err = tx.commitLogged()
	})
	if err != nil {
		// A failed commit (nothing reached the commit mark) rolls back:
		// the committed page images are untouched; consumed free-list
		// space is repaired like any abort.
		tx.Rollback()
		return err
	}
	tx.finish()
	tx.st.stats.Commits++
	if singleLeaf {
		tx.st.stats.SingleLeaf++
	}
	return nil
}

func (tx *Txn) flushStragglers() {
	flushed := false
	for _, no := range tx.dirtyOrder {
		tp := tx.pages[no]
		for _, r := range tp.mem.unflushed {
			tx.st.arena.Flush(tp.mem.base+int64(r.off), r.n)
			flushed = true
		}
		tp.mem.unflushed = tp.mem.unflushed[:0]
	}
	if flushed {
		tx.st.sys.Fence()
	}
}

// commitInPlace is the FAST+ path: one failure-atomic cache-line write
// installs the new slot header, which is the commit mark.
func (tx *Txn) commitInPlace(tp *txnPage) error {
	clock := tx.st.sys.Clock()
	var err error
	clock.InPhase(phase.AtomicWrite, func() {
		enc := tp.page.Header().EncodeInto(tx.encBuf)
		tx.encBuf = enc[:0]
		err = tx.st.htm.AtomicLineWrite(tx.st.arena, tp.mem.base, enc)
	})
	if err != nil {
		return err
	}
	// Post-commit: link deferred frees and persist the free-list fields.
	tx.applyFrees(tp)
	tx.st.stats.InPlaceCommits++
	return nil
}

// commitLogged is the FAST path (and the FAST+ fallback): commit through
// the slot-header log, then checkpoint eagerly.
func (tx *Txn) commitLogged() error {
	clock := tx.st.sys.Clock()
	st := tx.st

	// Ensure every dirty header is in the log. Under FAST most were staged
	// at OpEnd; under FAST+ fallback they are appended here.
	clock.InPhase(phase.LogFlush, func() {
		tx.stageHeaders()
		if tx.metaDirty {
			tx.meta.TxID++
			frame := pager.EncodeMetaFrameInto(tx.meta, tx.encBuf)
			tx.encBuf = frame[:0]
			if err := st.log.AppendHeader(pager.MetaPageNo, frame); err != nil {
				panic(err)
			}
			st.stats.LoggedBytes += int64(len(frame))
			st.stats.LoggedFrames++
		}
		st.log.Commit(tx.meta.TxID)
	})

	// Eager checkpointing (§3.3): install the committed headers so readers
	// never consult the log, then drop the log.
	clock.InPhase(phase.Checkpoint, func() {
		for _, no := range tx.dirtyOrder {
			tp := tx.pages[no]
			if !tp.mem.hdrDirty {
				continue
			}
			enc := tp.page.Header().EncodeInto(tx.encBuf)
			tx.encBuf = enc[:0]
			st.arena.Store(tp.mem.base, enc)
			st.arena.Flush(tp.mem.base, len(enc))
		}
		if tx.metaDirty {
			pager.WriteMeta(st.arena, 0, tx.meta)
		}
		st.sys.Fence()
		st.log.Truncate()
		// Post-commit bookkeeping: deferred frees become free blocks, and
		// freed pages enter the persistent free stack.
		for _, no := range tx.dirtyOrder {
			tx.applyFrees(tx.pages[no])
		}
		if len(tx.freed) > 0 {
			count := tx.meta.FreeCount
			st.pushFreePages(&count, tx.freed)
			tx.meta.FreeCount = count
		}
	})
	st.stats.LogCommits++
	st.meta = tx.meta
	return nil
}

// applyFrees links a page's deferred frees into its free list and persists
// the free-list header fields. This happens after the commit point; the
// free list is deliberately not failure-atomic (§4.3) — a crash here is
// repaired by the lazy rebuild.
func (tx *Txn) applyFrees(tp *txnPage) {
	if tp.page.PendingFrees() == 0 {
		return
	}
	tp.page.ApplyPendingFrees()
	enc := tp.page.Header().EncodeInto(tx.encBuf)
	tx.encBuf = enc[:0]
	prefix := enc
	if len(prefix) > slotted.HeaderFixedSize {
		prefix = prefix[:slotted.HeaderFixedSize]
	}
	tx.st.arena.Store(tp.mem.base, prefix)
	tx.st.arena.Flush(tp.mem.base, len(prefix))
	// Free-block headers written by ApplyPendingFrees are flushed lazily;
	// flush them now to keep the cache overlay small.
	for _, r := range tp.mem.unflushed {
		tx.st.arena.Flush(tp.mem.base+int64(r.off), r.n)
	}
	tp.mem.unflushed = tp.mem.unflushed[:0]
}

// Rollback abandons the transaction. Free lists of touched pages may have
// been consumed by allocations; rebuild them from the committed headers so
// the space is not lost.
func (tx *Txn) Rollback() {
	if tx.done {
		return
	}
	// dirtyOrder holds exactly the pages whose header changed, in first-touch
	// order — iterating it (not the pages map) keeps the arena traffic of the
	// free-list repair deterministic.
	for _, no := range tx.dirtyOrder {
		tp := tx.pages[no]
		isAllocated := false
		for _, a := range tx.allocated {
			if a == no {
				isAllocated = true
				break
			}
		}
		if isAllocated {
			continue // never committed; nothing to restore
		}
		// Reopen the committed header and repair the free list if in-page
		// free blocks were consumed or written during the transaction.
		mem := &pageMem{tx: tx, no: no, base: tp.mem.base}
		if p, err := slotted.Open(mem); err == nil {
			if p.CheckFreeList() != nil {
				p.RebuildFreeList()
				tx.st.stats.FreeListFixes++
			}
			mem.unflushed = nil
		}
	}
	tx.finish()
}

func (tx *Txn) finish() {
	tx.done = true
	st := tx.st
	st.open = false
	// Return the per-transaction resources to the store for the next Begin.
	// Map iteration order is irrelevant here: pooling touches no arena.
	for _, tp := range tx.pages {
		st.rec.handles = append(st.rec.handles, tp)
	}
	clear(tx.pages)
	st.rec.pages = tx.pages
	st.rec.dirtyOrder = tx.dirtyOrder[:0]
	st.rec.allocated = tx.allocated[:0]
	st.rec.freed = tx.freed[:0]
	st.rec.encBuf = tx.encBuf
	tx.pages = nil
}
