package fast

import (
	"bytes"
	"errors"
	"fasp/internal/htm"
	"testing"

	"fasp/internal/pager"
	"fasp/internal/pmem"
	"fasp/internal/slotted"
)

func newStore(t testing.TB, variant Variant) (*pmem.System, *Store) {
	t.Helper()
	sys := pmem.NewSystem(pmem.DefaultLatencies(300, 300))
	return sys, Create(sys, Config{PageSize: 512, MaxPages: 256, Variant: variant})
}

func TestCreateAndAttach(t *testing.T) {
	_, st := newStore(t, InPlaceCommit)
	if st.Name() != "FAST+" || st.PageSize() != 512 {
		t.Fatalf("name=%s pagesize=%d", st.Name(), st.PageSize())
	}
	st2, err := Attach(st.Arena(), Config{PageSize: 512, MaxPages: 256, Variant: InPlaceCommit})
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Recover(); err != nil {
		t.Fatal(err)
	}
	if st2.Meta().NPages != 1 {
		t.Fatalf("meta = %+v", st2.Meta())
	}
}

func TestAttachRejectsPageSizeMismatch(t *testing.T) {
	_, st := newStore(t, InPlaceCommit)
	if _, err := Attach(st.Arena(), Config{PageSize: 1024, MaxPages: 256}); !errors.Is(err, pager.ErrCorrupt) {
		t.Fatalf("err = %v", err)
	}
}

func TestSingleWriterEnforced(t *testing.T) {
	_, st := newStore(t, InPlaceCommit)
	tx, err := st.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Begin(); !errors.Is(err, pager.ErrTxnActive) {
		t.Fatalf("second begin: %v", err)
	}
	tx.Rollback()
	tx2, err := st.Begin()
	if err != nil {
		t.Fatalf("begin after rollback: %v", err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocFreeReuseAcrossTxns(t *testing.T) {
	_, st := newStore(t, InPlaceCommit)
	// Allocate two pages and commit.
	tx, _ := st.Begin()
	no1, p1, err := tx.AllocPage(slotted.TypeLeaf)
	if err != nil {
		t.Fatal(err)
	}
	if err := p1.Insert([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	tx.SetRoot(no1)
	no2, _, err := tx.AllocPage(slotted.TypeLeaf)
	if err != nil {
		t.Fatal(err)
	}
	tx.OpEnd()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if st.Meta().NPages != 3 {
		t.Fatalf("npages = %d", st.Meta().NPages)
	}
	// Free the second page; it returns through the persistent stack.
	tx2, _ := st.Begin()
	tx2.FreePage(no2)
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if st.Meta().FreeCount != 1 {
		t.Fatalf("free count = %d", st.Meta().FreeCount)
	}
	// The next allocation reuses it instead of growing the space.
	tx3, _ := st.Begin()
	no3, _, err := tx3.AllocPage(slotted.TypeLeaf)
	if err != nil {
		t.Fatal(err)
	}
	if no3 != no2 {
		t.Fatalf("alloc = page %d, want reused %d", no3, no2)
	}
	if err := tx3.Commit(); err != nil {
		t.Fatal(err)
	}
	if st.Meta().NPages != 3 || st.Meta().FreeCount != 0 {
		t.Fatalf("meta after reuse = %+v", st.Meta())
	}
}

func TestAbortedAllocationDoesNotLeakPages(t *testing.T) {
	_, st := newStore(t, InPlaceCommit)
	before := st.Meta()
	tx, _ := st.Begin()
	if _, _, err := tx.AllocPage(slotted.TypeLeaf); err != nil {
		t.Fatal(err)
	}
	tx.Rollback()
	if st.Meta() != before {
		t.Fatalf("meta changed by aborted txn: %+v -> %+v", before, st.Meta())
	}
}

func TestPageSpaceExhaustion(t *testing.T) {
	sys := pmem.NewSystem(pmem.DefaultLatencies(120, 120))
	st := Create(sys, Config{PageSize: 512, MaxPages: 4, Variant: InPlaceCommit})
	tx, _ := st.Begin()
	for i := 0; i < 3; i++ {
		if _, _, err := tx.AllocPage(slotted.TypeLeaf); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if _, _, err := tx.AllocPage(slotted.TypeLeaf); !errors.Is(err, pager.ErrFull) {
		t.Fatalf("err = %v, want ErrFull", err)
	}
	tx.Rollback()
}

func TestInPlaceEligibilityBoundaries(t *testing.T) {
	_, st := newStore(t, InPlaceCommit)
	// Bootstrap a root leaf (logged commit: allocation changes meta).
	tx, _ := st.Begin()
	rootNo, root, err := tx.AllocPage(slotted.TypeLeaf)
	if err != nil {
		t.Fatal(err)
	}
	tx.SetRoot(rootNo)
	if err := root.Insert([]byte("k0"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	tx.OpEnd()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if st.Stats().InPlaceCommits != 0 {
		t.Fatal("allocation txn must not commit in place")
	}
	// A plain single-leaf insert commits in place.
	tx2, _ := st.Begin()
	p, err := tx2.Page(rootNo)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Insert([]byte("k1"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	tx2.OpEnd()
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if st.Stats().InPlaceCommits != 1 {
		t.Fatalf("stats = %+v", st.Stats())
	}
	// Marking defragmentation forces the logged path.
	tx3, _ := st.Begin()
	p3, _ := tx3.Page(rootNo)
	if err := p3.Insert([]byte("k2"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	tx3.Defragged()
	tx3.OpEnd()
	if err := tx3.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := st.Stats().InPlaceCommits; got != 1 {
		t.Fatalf("defragged txn committed in place (count %d)", got)
	}
}

func TestLeafCellCap(t *testing.T) {
	_, plus := newStore(t, InPlaceCommit)
	if plus.LeafCellCap() != slotted.MaxInPlaceCells {
		t.Fatalf("FAST+ cap = %d", plus.LeafCellCap())
	}
	_, plain := newStore(t, SlotHeaderLogging)
	if plain.LeafCellCap() != 0 {
		t.Fatalf("FAST cap = %d", plain.LeafCellCap())
	}
}

func TestRecoverReplaysCommittedLog(t *testing.T) {
	sys, st := newStore(t, SlotHeaderLogging)
	// Build one committed transaction, crashing right after the commit
	// mark but before checkpointing finishes.
	tx, _ := st.Begin()
	rootNo, root, err := tx.AllocPage(slotted.TypeLeaf)
	if err != nil {
		t.Fatal(err)
	}
	tx.SetRoot(rootNo)
	if err := root.Insert([]byte("key"), []byte("value")); err != nil {
		t.Fatal(err)
	}
	tx.OpEnd()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	sys.Crash(pmem.EvictNone)
	st2, err := Attach(st.Arena(), Config{PageSize: 512, MaxPages: 256, Variant: SlotHeaderLogging})
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Recover(); err != nil {
		t.Fatal(err)
	}
	if st2.Meta().Root != rootNo {
		t.Fatalf("root = %d, want %d", st2.Meta().Root, rootNo)
	}
	tx2, _ := st2.Begin()
	p, err := tx2.Page(rootNo)
	if err != nil {
		t.Fatal(err)
	}
	i, found := p.Search([]byte("key"))
	if !found || !bytes.Equal(p.Value(i), []byte("value")) {
		t.Fatal("committed record lost across crash")
	}
	tx2.Rollback()
}

func TestReclaimExceptFindsLeaks(t *testing.T) {
	_, st := newStore(t, InPlaceCommit)
	tx, _ := st.Begin()
	no1, _, _ := tx.AllocPage(slotted.TypeLeaf)
	no2, _, _ := tx.AllocPage(slotted.TypeLeaf)
	tx.SetRoot(no1)
	tx.OpEnd()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// no2 is allocated but unreachable: a leak.
	n, err := st.ReclaimExcept(map[uint32]bool{no1: true})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("reclaimed %d pages, want 1 (page %d)", n, no2)
	}
	if st.Meta().FreeCount != 1 {
		t.Fatalf("free count = %d", st.Meta().FreeCount)
	}
	// Idempotent: a second pass finds nothing.
	n, err = st.ReclaimExcept(map[uint32]bool{no1: true})
	if err != nil || n != 0 {
		t.Fatalf("second reclaim = %d, %v", n, err)
	}
}

func TestStatsAccumulate(t *testing.T) {
	_, st := newStore(t, SlotHeaderLogging)
	tx, _ := st.Begin()
	no, p, _ := tx.AllocPage(slotted.TypeLeaf)
	tx.SetRoot(no)
	_ = p.Insert([]byte("a"), []byte("b"))
	tx.OpEnd()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	s := st.Stats()
	if s.Commits != 1 || s.LogCommits != 1 || s.LoggedFrames == 0 || s.LoggedBytes == 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestHTMFailureFallsBackToLogging: if best-effort RTM never succeeds,
// FAST+ must still commit — through the slot-header log — exactly as the
// paper's fallback handler prescribes (§3.2 footnote 1).
func TestHTMFailureFallsBackToLogging(t *testing.T) {
	sys := pmem.NewSystem(pmem.DefaultLatencies(300, 300))
	hcfg := htm.DefaultConfig()
	hcfg.MaxRetries = 3
	hcfg.InjectAbort = func() bool { return true } // RTM never commits
	st := Create(sys, Config{PageSize: 512, MaxPages: 256, Variant: InPlaceCommit, HTM: hcfg})

	tx, _ := st.Begin()
	no, p, err := tx.AllocPage(slotted.TypeLeaf)
	if err != nil {
		t.Fatal(err)
	}
	tx.SetRoot(no)
	_ = p.Insert([]byte("k0"), []byte("v"))
	tx.OpEnd()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// A single-leaf insert would normally go in place; with HTM broken it
	// must fall back and still commit durably.
	tx2, _ := st.Begin()
	p2, _ := tx2.Page(no)
	if err := p2.Insert([]byte("k1"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	tx2.OpEnd()
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	s := st.Stats()
	if s.InPlaceCommits != 0 || s.LogCommits != 2 {
		t.Fatalf("stats = %+v (want all commits logged)", s)
	}
	// Durable: survive a crash.
	sys.Crash(pmem.EvictNone)
	st2, err := Attach(st.Arena(), Config{PageSize: 512, MaxPages: 256, Variant: InPlaceCommit})
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Recover(); err != nil {
		t.Fatal(err)
	}
	tx3, _ := st2.Begin()
	p3, err := tx3.Page(no)
	if err != nil {
		t.Fatal(err)
	}
	if _, found := p3.Search([]byte("k1")); !found {
		t.Fatal("fallback-committed record lost")
	}
	tx3.Rollback()
}
