// Package fast implements the paper's contribution: a PM-only persistent
// database buffer cache with failure-atomic slotted paging.
//
// Two variants are provided (§4):
//
//   - FAST (failure-atomic slot-header logging): every transaction commits
//     through the slot-header log — records are written in place into page
//     free space and flushed, updated slot headers go to a small PM redo
//     log, an 8-byte commit mark commits the transaction, and the headers
//     are eagerly checkpointed into their pages.
//   - FAST+ (FAST with in-place commit): a transaction that dirtied exactly
//     one leaf page — no split, no defragmentation, no page allocation —
//     skips the log entirely and commits by installing the new slot header
//     with one HTM-backed failure-atomic cache-line write.
//
// PM layout of a store:
//
//	[ page 0: meta ][ pages 1..MaxPages ) [ free-page stack ][ slot-header log ]
//
// Free pages are tracked by a persistent stack rather than a chain threaded
// through the pages themselves: a page popped from the stack can be
// overwritten freely before the transaction commits, because the committed
// stack count still records it as free.
package fast

import (
	"errors"
	"fmt"

	"fasp/internal/htm"
	"fasp/internal/pager"
	"fasp/internal/pmem"
	"fasp/internal/shlog"
	"fasp/internal/slotted"
)

// Variant selects the commit scheme.
type Variant int

const (
	// SlotHeaderLogging is FAST: every commit goes through the log.
	SlotHeaderLogging Variant = iota
	// InPlaceCommit is FAST+: single-leaf transactions commit via an HTM
	// failure-atomic cache-line write; everything else falls back to FAST.
	InPlaceCommit
)

func (v Variant) String() string {
	if v == InPlaceCommit {
		return "FAST+"
	}
	return "FAST"
}

// Config sizes a store.
type Config struct {
	PageSize int   // bytes per page (default 4096)
	MaxPages int   // page-space capacity including page 0 (default 4096)
	LogBytes int64 // slot-header log region size (default 256 KiB)
	Variant  Variant
	HTM      htm.Config // used by FAST+ (default htm.DefaultConfig)
}

func (c *Config) fill() {
	if c.PageSize == 0 {
		c.PageSize = 4096
	}
	if c.MaxPages == 0 {
		c.MaxPages = 4096
	}
	if c.LogBytes == 0 {
		c.LogBytes = 256 << 10
	}
	if c.HTM.MaxWriteLines == 0 {
		c.HTM = htm.DefaultConfig()
	}
}

// Stats counts scheme-level events for the experiment harness.
type Stats struct {
	Commits        int64
	InPlaceCommits int64
	LogCommits     int64
	// SingleLeaf counts commits whose write set was exactly one leaf page
	// with a cache-line header — the FAST+ in-place-eligible shape. It is
	// counted under both variants (shape only, ignoring Variant), so the
	// adaptive controller can estimate FAST+'s win rate while running FAST.
	SingleLeaf    int64
	LoggedBytes   int64 // slot-header bytes written to the log
	LoggedFrames  int64
	Defrags       int64
	Splits        int64 // updated by the B-tree layer via NoteSplit
	FreeListFixes int64
}

// Store is a FAST/FAST+ database in persistent memory.
type Store struct {
	sys   *pmem.System
	arena *pmem.Arena
	cfg   Config
	htm   *htm.Manager
	log   *shlog.Log
	meta  pager.Meta
	open  bool // a transaction is active
	stats Stats

	// Post-crash lazy free-list validation (§4.3): pages are checked on
	// first use and rebuilt if the free list disagrees with the header.
	needFLCheck bool
	flChecked   map[uint32]bool

	// Recycled single-writer transaction resources: the store has at most
	// one live transaction, so its page map, slices, scratch buffer, and
	// page handles are handed from finished transaction to next Begin
	// instead of being reallocated per transaction.
	rec struct {
		pages      map[uint32]*txnPage
		dirtyOrder []uint32
		allocated  []uint32
		freed      []uint32
		encBuf     []byte
		handles    []*txnPage
	}
}

// takeHandle pops a pooled page handle (or makes a fresh one).
func (st *Store) takeHandle() *txnPage {
	if n := len(st.rec.handles); n > 0 {
		tp := st.rec.handles[n-1]
		st.rec.handles = st.rec.handles[:n-1]
		return tp
	}
	return &txnPage{page: new(slotted.Page), mem: new(pageMem)}
}

func (c Config) pagesBytes() int64 { return int64(c.PageSize) * int64(c.MaxPages) }
func (c Config) stackBase() int64  { return c.pagesBytes() }
func (c Config) stackBytes() int64 { return 4 * int64(c.MaxPages) }
func (c Config) logBase() int64    { return c.stackBase() + c.stackBytes() }
func (c Config) arenaBytes() int64 { return c.logBase() + c.LogBytes }
func (c Config) pageBase(no uint32) int64 {
	return int64(no) * int64(c.PageSize)
}

// Create formats a new store on a fresh PM arena of sys.
func Create(sys *pmem.System, cfg Config) *Store {
	cfg.fill()
	arena := sys.NewArena("fast-db", cfg.arenaBytes(), pmem.PM)
	st := &Store{sys: sys, arena: arena, cfg: cfg, flChecked: map[uint32]bool{}}
	st.htm = htm.NewManager(sys, cfg.HTM)
	st.log = shlog.Format(arena, cfg.logBase(), cfg.LogBytes)
	st.meta = pager.Meta{PageSize: uint32(cfg.PageSize), NPages: 1}
	pager.WriteMeta(arena, 0, st.meta)
	return st
}

// Attach reopens a store on an existing arena (e.g. after a simulated
// crash). Call Recover before starting transactions.
func Attach(arena *pmem.Arena, cfg Config) (*Store, error) {
	cfg.fill()
	meta, err := pager.ReadMeta(arena, 0)
	if err != nil {
		return nil, err
	}
	if int(meta.PageSize) != cfg.PageSize {
		return nil, fmt.Errorf("%w: page size mismatch (%d vs %d)", pager.ErrCorrupt, meta.PageSize, cfg.PageSize)
	}
	st := &Store{sys: arena.Sys(), arena: arena, cfg: cfg, meta: meta, flChecked: map[uint32]bool{}}
	st.htm = htm.NewManager(st.sys, cfg.HTM)
	st.log, err = shlog.Open(arena, cfg.logBase(), cfg.LogBytes)
	if err != nil {
		return nil, err
	}
	return st, nil
}

// Name returns the scheme name ("FAST" or "FAST+").
func (st *Store) Name() string { return st.cfg.Variant.String() }

// PageSize returns the page size in bytes.
func (st *Store) PageSize() int { return st.cfg.PageSize }

// Sys returns the simulated machine.
func (st *Store) Sys() *pmem.System { return st.sys }

// Arena exposes the backing arena (experiments read its counters).
func (st *Store) Arena() *pmem.Arena { return st.arena }

// Meta returns the last committed metadata.
func (st *Store) Meta() pager.Meta { return st.meta }

// Stats returns scheme-level counters.
func (st *Store) Stats() Stats { return st.stats }

// NoteSplit lets the B-tree layer record a page split for the statistics.
func (st *Store) NoteSplit() { st.stats.Splits++ }

// HTMStats exposes the HTM manager's transaction-outcome counters.
func (st *Store) HTMStats() htm.Stats { return st.htm.Stats() }

// LeafCellCap bounds leaf-page fanout under FAST+ (§4.2): the leaf slot
// header must fit one cache line so the HTM in-place commit applies, so
// leaves split once the record-offset array reaches the hardware limit
// ("the slot-header of the B-tree leaf page can hold a maximum of 28
// records"; 25 here, as our header prefix also carries the free-list
// fields and sibling pointer — see the slotted package). FAST's headers
// are unbounded and return 0 (no cap).
func (st *Store) LeafCellCap() int {
	if st.cfg.Variant == InPlaceCommit {
		return slotted.MaxInPlaceCells
	}
	return 0
}

// Recover completes or discards the transaction that was in flight when the
// previous incarnation crashed (§4.4). If the slot-header log holds a valid
// commit mark, checkpointing is replayed (idempotently); otherwise the log
// is ignored. Free lists are validated lazily afterwards.
func (st *Store) Recover() error {
	if _, ok := st.log.Committed(); ok {
		frames, err := st.log.Frames()
		if err != nil {
			return err
		}
		for _, f := range frames {
			if f.PageNo == pager.MetaPageNo {
				if err := pager.ApplyMetaFrame(st.arena, 0, f.Header); err != nil {
					return err
				}
				continue
			}
			base := st.cfg.pageBase(f.PageNo)
			st.arena.Store(base, f.Header)
			st.arena.Flush(base, len(f.Header))
		}
		st.sys.Fence()
		st.log.Truncate()
		meta, err := pager.ReadMeta(st.arena, 0)
		if err != nil {
			return err
		}
		st.meta = meta
	}
	st.needFLCheck = true
	st.flChecked = map[uint32]bool{}
	return nil
}

// maybeFixFreeList applies the paper's lazy free-list repair on the first
// post-crash use of a page.
func (st *Store) maybeFixFreeList(no uint32, p *slotted.Page) {
	if !st.needFLCheck || st.flChecked[no] {
		return
	}
	st.flChecked[no] = true
	if p.CheckFreeList() != nil {
		p.RebuildFreeList()
		st.stats.FreeListFixes++
	}
}

// Begin opens the store's single write transaction.
func (st *Store) Begin() (pager.Txn, error) {
	if st.open {
		return nil, pager.ErrTxnActive
	}
	st.open = true
	st.log.Begin()
	pages := st.rec.pages
	if pages == nil {
		pages = make(map[uint32]*txnPage)
	}
	st.rec.pages = nil
	return &Txn{
		st:         st,
		meta:       st.meta,
		pages:      pages,
		dirtyOrder: st.rec.dirtyOrder,
		allocated:  st.rec.allocated,
		freed:      st.rec.freed,
		encBuf:     st.rec.encBuf,
	}, nil
}

// stackEntry reads free-page stack slot i.
func (st *Store) stackEntry(i uint32) uint32 {
	return st.arena.LoadU32(st.cfg.stackBase() + 4*int64(i))
}

// pushFreePages appends freed pages to the stack post-commit. A crash in
// here leaks the pages (reclaimable by GC), never corrupts the store.
func (st *Store) pushFreePages(count *uint32, pages []uint32) {
	for _, no := range pages {
		st.arena.StoreU32(st.cfg.stackBase()+4*int64(*count), no)
		st.arena.Flush(st.cfg.stackBase()+4*int64(*count), 4)
		*count++
		// Publish the new count with a single atomic store.
		pager.PokeFreeCount(st.arena, 0, *count)
	}
}

// ReclaimExcept garbage-collects pages leaked by crashed or aborted
// transactions (§4.4: orphaned sibling pages "can be safely garbage
// collected"): every allocated page that is neither reachable nor already
// in the free-page stack is pushed onto the stack. The caller supplies the
// reachability set (the B-tree layer computes it); the engine's VACUUM
// statement drives this.
func (st *Store) ReclaimExcept(reachable map[uint32]bool) (int, error) {
	free := make(map[uint32]bool, st.meta.FreeCount)
	for i := uint32(0); i < st.meta.FreeCount; i++ {
		free[st.stackEntry(i)] = true
	}
	var leaked []uint32
	for no := uint32(1); no < st.meta.NPages; no++ {
		if !reachable[no] && !free[no] {
			leaked = append(leaked, no)
		}
	}
	count := st.meta.FreeCount
	st.pushFreePages(&count, leaked)
	st.meta.FreeCount = count
	return len(leaked), nil
}

// Errors specific to the FAST store.
var (
	// ErrTooLarge reports a record that cannot fit any page.
	ErrTooLarge = errors.New("fast: record too large for page")
)
