// Package metrics renders the experiment harness's output: fixed-width
// tables whose rows and series mirror the paper's figures, plus small
// helpers for phase-breakdown bookkeeping.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Table is a simple fixed-width text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(pad(c, widths[i]))
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Usec formats simulated nanoseconds as microseconds with 2 decimals.
func Usec(ns int64) string { return fmt.Sprintf("%.2f", float64(ns)/1000) }

// UsecF converts simulated nanoseconds to float microseconds.
func UsecF(ns int64) float64 { return float64(ns) / 1000 }

// Breakdown is an ordered set of named phase durations (simulated ns).
type Breakdown struct {
	order []string
	vals  map[string]int64
}

// NewBreakdown creates an empty breakdown.
func NewBreakdown() *Breakdown {
	return &Breakdown{vals: map[string]int64{}}
}

// Set records a phase total.
func (b *Breakdown) Set(name string, ns int64) {
	if _, ok := b.vals[name]; !ok {
		b.order = append(b.order, name)
	}
	b.vals[name] = ns
}

// Get returns a phase total.
func (b *Breakdown) Get(name string) int64 { return b.vals[name] }

// Names returns the phases in insertion order.
func (b *Breakdown) Names() []string { return append([]string(nil), b.order...) }

// Total sums all phases.
func (b *Breakdown) Total() int64 {
	var t int64
	for _, v := range b.vals {
		t += v
	}
	return t
}

// SortedPhases renders map totals deterministically (for logs and tests).
func SortedPhases(m map[string]int64) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	out := make([]string, 0, len(names))
	for _, n := range names {
		out = append(out, fmt.Sprintf("%s=%s", n, Usec(m[n])))
	}
	return out
}

// Ratio formats a/b as "N.NNx", guarding against division by zero.
func Ratio(a, b int64) string {
	if b == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2fx", float64(a)/float64(b))
}
