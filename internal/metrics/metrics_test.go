package metrics

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Title", "col-a", "b")
	tb.AddRow("x", 1)
	tb.AddRow("longer-cell", 2.5)
	out := tb.String()
	if !strings.HasPrefix(out, "Title\n") {
		t.Fatalf("missing title: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4+1 { // title, header, separator, 2 rows
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.Contains(lines[1], "col-a") || !strings.Contains(lines[1], "b") {
		t.Fatalf("header = %q", lines[1])
	}
	if !strings.Contains(out, "2.50") {
		t.Fatalf("float not formatted: %q", out)
	}
	// Columns align: the 'b' column starts at the same offset everywhere.
	idx := strings.Index(lines[1], "b")
	for _, ln := range lines[3:] {
		if len(ln) <= idx {
			t.Fatalf("row too short: %q", ln)
		}
	}
}

func TestTableWithoutTitle(t *testing.T) {
	tb := NewTable("", "x")
	tb.AddRow(1)
	if strings.HasPrefix(tb.String(), "\n") {
		t.Fatal("leading blank line for untitled table")
	}
}

func TestUsecFormatting(t *testing.T) {
	if Usec(1500) != "1.50" {
		t.Fatalf("Usec = %s", Usec(1500))
	}
	if UsecF(2500) != 2.5 {
		t.Fatalf("UsecF = %f", UsecF(2500))
	}
}

func TestBreakdown(t *testing.T) {
	b := NewBreakdown()
	b.Set("a", 10)
	b.Set("b", 20)
	b.Set("a", 15) // overwrite keeps order
	if got := b.Names(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("names = %v", got)
	}
	if b.Get("a") != 15 || b.Total() != 35 {
		t.Fatalf("get=%d total=%d", b.Get("a"), b.Total())
	}
}

func TestSortedPhases(t *testing.T) {
	out := SortedPhases(map[string]int64{"z": 1000, "a": 2000})
	if len(out) != 2 || !strings.HasPrefix(out[0], "a=") || !strings.HasPrefix(out[1], "z=") {
		t.Fatalf("out = %v", out)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(10, 4) != "2.50x" {
		t.Fatalf("ratio = %s", Ratio(10, 4))
	}
	if Ratio(1, 0) != "n/a" {
		t.Fatal("division by zero not guarded")
	}
}
