// Package crashx is a deterministic crash-schedule explorer for the commit
// schemes under test. Where cmd/crashtest's classic mode samples one random
// crash point per round, crashx *enumerates* schedules: it measures a
// recorded workload's crash-point count, then replays the workload crashing
// at every point up to a budget (stratified-sampling the rest), sweeps a
// small set of eviction lotteries per point, and checks an exact-state
// durability oracle after recovery. It can additionally inject a second
// crash at every crash point *inside recovery itself* and recover again,
// proving recovery idempotent — the paper asserts it (§4.4), this tests it.
//
// Every run is a pure function of its Spec (crash point, eviction lottery,
// optional nested recovery crash point and lottery): the workload is fixed,
// the simulated machine is deterministic, and the eviction lottery iterates
// dirty lines in sorted offset order under a seeded generator. A failing
// schedule therefore reproduces byte-for-byte from its Spec string, which
// cmd/crashtest accepts via -repro.
package crashx

import (
	"fmt"
	"strconv"
	"strings"

	"fasp/internal/pager"
	"fasp/internal/pmem"
)

// OpKind selects the mutation one workload transaction performs.
type OpKind uint8

const (
	// OpInsert adds a new key (the workload guarantees it is absent).
	OpInsert OpKind = iota
	// OpUpdate replaces an existing key's value.
	OpUpdate
	// OpDelete removes an existing key.
	OpDelete
)

func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpUpdate:
		return "update"
	case OpDelete:
		return "delete"
	}
	return "unknown"
}

// Op is one workload transaction. Each op runs in its own B-tree
// transaction so the acknowledgement boundary — the durability oracle's
// ground truth — is exact: ops [0, acked) returned to the caller, op
// `acked` (if any) was in flight when the crash fired.
type Op struct {
	Kind OpKind
	Key  []byte
	Val  []byte
}

// DefaultWorkload builds a deterministic n-transaction workload of inserts
// with periodic updates and deletes of still-live keys, so crash points land
// inside record writes, slot-header commits, page splits, and free-page
// pushes alike. Every op is valid against the state left by its
// predecessors (Measure verifies this).
func DefaultWorkload(n int) []Op {
	ops := make([]Op, 0, n)
	var live []int
	id := 0
	for len(ops) < n {
		switch {
		case len(live) > 4 && len(ops)%7 == 5:
			k := live[len(ops)%len(live)]
			ops = append(ops, Op{Kind: OpUpdate, Key: wkey(k), Val: wval(k + 1000)})
		case len(live) > 6 && len(ops)%11 == 8:
			i := len(ops) % len(live)
			k := live[i]
			live = append(live[:i], live[i+1:]...)
			ops = append(ops, Op{Kind: OpDelete, Key: wkey(k)})
		default:
			ops = append(ops, Op{Kind: OpInsert, Key: wkey(id), Val: wval(id)})
			live = append(live, id)
			id++
		}
	}
	return ops
}

func wkey(i int) []byte { return []byte(fmt.Sprintf("k%06d", i)) }
func wval(i int) []byte {
	return []byte(strings.Repeat(string(rune('a'+i%26)), 40))
}

// Spec pins one crash schedule completely: where the primary crash fires,
// which eviction lottery runs, and — when RecPoint >= 0 — where a second
// crash fires inside recovery and which lottery follows it. Point counts
// crash points from the start of the workload run; RecPoint counts from the
// start of recovery.
type Spec struct {
	Point    int64
	Evict    pmem.CrashOptions
	RecPoint int64 // -1: no nested crash
	RecEvict pmem.CrashOptions
}

// String renders the spec in the form cmd/crashtest -repro accepts:
// "point:prob:seed" or "point:prob:seed/recpoint:recprob:recseed".
func (s Spec) String() string {
	out := fmt.Sprintf("%d:%s:%d", s.Point, formatProb(s.Evict.EvictProb), s.Evict.Seed)
	if s.RecPoint >= 0 {
		out += fmt.Sprintf("/%d:%s:%d", s.RecPoint, formatProb(s.RecEvict.EvictProb), s.RecEvict.Seed)
	}
	return out
}

func formatProb(p float64) string { return strconv.FormatFloat(p, 'g', -1, 64) }

// ParseSpec parses the String form back into a Spec, validating the
// eviction probabilities.
func ParseSpec(s string) (Spec, error) {
	spec := Spec{RecPoint: -1}
	prim, nested, hasNested := strings.Cut(strings.TrimSpace(s), "/")
	var err error
	if spec.Point, spec.Evict, err = parseStage(prim); err != nil {
		return Spec{}, fmt.Errorf("crashx: bad spec %q: %w", s, err)
	}
	if hasNested {
		if spec.RecPoint, spec.RecEvict, err = parseStage(nested); err != nil {
			return Spec{}, fmt.Errorf("crashx: bad spec %q: %w", s, err)
		}
	}
	return spec, nil
}

func parseStage(s string) (int64, pmem.CrashOptions, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return 0, pmem.CrashOptions{}, fmt.Errorf("want point:prob:seed, got %q", s)
	}
	point, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil || point < 0 {
		return 0, pmem.CrashOptions{}, fmt.Errorf("bad crash point %q", parts[0])
	}
	prob, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return 0, pmem.CrashOptions{}, fmt.Errorf("bad eviction probability %q", parts[1])
	}
	seed, err := strconv.ParseInt(parts[2], 10, 64)
	if err != nil {
		return 0, pmem.CrashOptions{}, fmt.Errorf("bad eviction seed %q", parts[2])
	}
	opts := pmem.CrashOptions{Seed: seed, EvictProb: prob}
	if err := opts.Validate(); err != nil {
		return 0, pmem.CrashOptions{}, err
	}
	return point, opts, nil
}

// Config drives an exploration. Open and Reattach keep the explorer
// scheme-agnostic, exactly like internal/shard's Config: the caller supplies
// closures that build a fresh store on a new simulated machine and that
// rebuild + recover a store over its surviving arena.
type Config struct {
	// Open creates a fresh store on a fresh simulated machine.
	Open func() (*pmem.System, pager.Store)
	// Reattach rebuilds the store over its surviving arena after a crash
	// and runs the scheme's recovery. It is called a second time when a
	// nested crash interrupts the first recovery.
	Reattach func(st pager.Store) (pager.Store, error)
	// Workload is the recorded transaction sequence (one txn per op).
	Workload []Op
	// AtOp, when set, runs before workload op i in every replay (Measure
	// and Run alike) — the injection point migration sweeps use to switch
	// the store's commit scheme mid-workload. It executes inside the
	// crashed region, so its PM traffic contributes crash points like any
	// transaction. It must be deterministic. A non-nil returned store
	// replaces the one the replay applies the remaining ops to (a scheme
	// migration swaps stores); returning nil keeps the current store.
	AtOp func(i int, st pager.Store) (pager.Store, error)

	// Points, when non-nil, overrides the schedule entirely: exactly these
	// primary crash points are explored and Budget/Samples are ignored.
	// Migration sweeps use it to enumerate the migration window (learned
	// from a measured run) exhaustively while only sampling the rest.
	Points []int64
	// Budget is the number of crash points enumerated exhaustively from
	// point 0; 0 enumerates every point. Beyond the budget, Samples points
	// are stratified-sampled (seeded) from the remaining range.
	Budget int
	// Samples is the stratified sample count past the budget (default 64;
	// ignored when the budget covers the whole range).
	Samples int
	// Lotteries is the number of seeded probabilistic (p=0.5) eviction
	// lotteries swept per crash point, in addition to EvictNone and
	// EvictAll (default 2).
	Lotteries int
	// Seed derives every sampled point and lottery seed (default 1).
	Seed int64

	// Nested injects a second crash at recovery crash points: for each
	// primary schedule that crashed, recovery's crash points are counted
	// and re-explored under NestedBudget/NestedSamples (same semantics as
	// Budget/Samples; NestedBudget 0 enumerates all of them).
	Nested        bool
	NestedBudget  int
	NestedSamples int

	// MaxFailures stops the exploration after this many oracle violations
	// (default 1 — fail fast; raise it to keep going).
	MaxFailures int

	// Check, when set, runs as an extra oracle clause over the recovered
	// state (tests use it to deliberately weaken or strengthen the
	// invariants). got maps key → value of the fully recovered store.
	Check func(got map[string]string, acked int) error

	// Progress, when set, is called after each explored primary point.
	Progress func(pointsDone, pointsTotal, runs int)

	// OnFailure, when set, is called the moment each oracle violation is
	// recorded — harnesses print the reproduction command immediately
	// instead of waiting for the final report.
	OnFailure func(Failure)
}

func (c *Config) fill() error {
	if c.Open == nil || c.Reattach == nil {
		return fmt.Errorf("crashx: Config.Open and Config.Reattach are required")
	}
	if len(c.Workload) == 0 {
		return fmt.Errorf("crashx: Config.Workload is empty")
	}
	if c.Samples <= 0 {
		c.Samples = 64
	}
	if c.Lotteries < 0 {
		c.Lotteries = 0
	} else if c.Lotteries == 0 {
		c.Lotteries = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.NestedSamples <= 0 {
		c.NestedSamples = 16
	}
	if c.MaxFailures <= 0 {
		c.MaxFailures = 1
	}
	return nil
}

// lotteries returns the eviction sweep for one crash point: EvictNone,
// EvictAll, then c.Lotteries seeded p=0.5 draws decorrelated per point.
func (c *Config) lotteries(point int64) []pmem.CrashOptions {
	out := make([]pmem.CrashOptions, 0, 2+c.Lotteries)
	out = append(out, pmem.EvictNone, pmem.EvictAll)
	for i := 0; i < c.Lotteries; i++ {
		out = append(out, pmem.CrashOptions{
			Seed:      mix(c.Seed, point, int64(i)),
			EvictProb: 0.5,
		})
	}
	return out
}

// mix is a splitmix64-style hash combining the master seed with schedule
// coordinates, so derived seeds are deterministic yet decorrelated.
func mix(vs ...int64) int64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, v := range vs {
		h ^= uint64(v) + 0x9E3779B97F4A7C15 + (h << 6) + (h >> 2)
		h *= 0xBF58476D1CE4E5B9
		h ^= h >> 31
	}
	// Keep it positive so specs stay readable.
	return int64(h &^ (1 << 63))
}

// schedule returns the crash points to explore in [0, total): the first
// min(budget, total) points enumerated, then `samples` stratified seeded
// picks from the remainder. budget <= 0 enumerates everything.
func schedule(total int64, budget, samples int, seed int64) []int64 {
	if total <= 0 {
		return nil
	}
	if budget <= 0 || int64(budget) >= total {
		pts := make([]int64, total)
		for i := range pts {
			pts[i] = int64(i)
		}
		return pts
	}
	pts := make([]int64, 0, budget+samples)
	for i := 0; i < budget; i++ {
		pts = append(pts, int64(i))
	}
	rest := total - int64(budget)
	if int64(samples) > rest {
		samples = int(rest)
	}
	// One pick per equal stratum of the unenumerated tail; seeded offsets
	// keep the schedule reproducible without ever repeating a point.
	for i := 0; i < samples; i++ {
		lo := int64(budget) + rest*int64(i)/int64(samples)
		hi := int64(budget) + rest*int64(i+1)/int64(samples)
		if hi <= lo {
			continue
		}
		pts = append(pts, lo+int64(uint64(mix(seed, int64(i), total))%uint64(hi-lo)))
	}
	return pts
}
