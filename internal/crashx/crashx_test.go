package crashx_test

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"fasp/internal/crashx"
	"fasp/internal/fast"
	"fasp/internal/pager"
	"fasp/internal/pmem"
	"fasp/internal/wal"
)

// testConfig builds an explorer config for one scheme on a tiny geometry:
// every explored schedule replays the workload on a fresh arena, so small
// page/log spaces keep the allocation cost of tens of thousands of replays
// negligible.
func testConfig(scheme string, txns int) *crashx.Config {
	fcfg := fast.Config{PageSize: 256, MaxPages: 64, LogBytes: 8 << 10}
	wcfg := wal.Config{PageSize: 256, MaxPages: 64, LogBytes: 64 << 10, Kind: wal.NVWAL}
	mk := func() (*pmem.System, pager.Store) {
		sys := pmem.NewSystem(pmem.DefaultLatencies(300, 300))
		switch scheme {
		case "fast":
			cfg := fcfg
			cfg.Variant = fast.SlotHeaderLogging
			return sys, fast.Create(sys, cfg)
		case "fast+":
			cfg := fcfg
			cfg.Variant = fast.InPlaceCommit
			return sys, fast.Create(sys, cfg)
		case "nvwal":
			return sys, wal.Create(sys, wcfg)
		}
		panic("unknown scheme " + scheme)
	}
	re := func(st pager.Store) (pager.Store, error) {
		switch s := st.(type) {
		case *fast.Store:
			cfg := fcfg
			cfg.Variant = fast.InPlaceCommit
			if scheme == "fast" {
				cfg.Variant = fast.SlotHeaderLogging
			}
			ns, err := fast.Attach(s.Arena(), cfg)
			if err != nil {
				return nil, err
			}
			return ns, ns.Recover()
		case *wal.Store:
			ns, err := wal.Attach(s.Arena(), wcfg)
			if err != nil {
				return nil, err
			}
			return ns, ns.Recover()
		}
		return nil, fmt.Errorf("unknown store type %T", st)
	}
	return &crashx.Config{
		Open:     mk,
		Reattach: re,
		Workload: crashx.DefaultWorkload(txns),
		Seed:     1,
	}
}

func TestSpecRoundTrip(t *testing.T) {
	specs := []crashx.Spec{
		{Point: 0, Evict: pmem.EvictNone, RecPoint: -1},
		{Point: 734, Evict: pmem.CrashOptions{Seed: 12345, EvictProb: 0.5}, RecPoint: -1},
		{
			Point: 9, Evict: pmem.EvictAll,
			RecPoint: 88, RecEvict: pmem.CrashOptions{Seed: 7, EvictProb: 0.25},
		},
	}
	for _, want := range specs {
		got, err := crashx.ParseSpec(want.String())
		if err != nil {
			t.Fatalf("parse %q: %v", want.String(), err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip %q: got %+v", want.String(), got)
		}
	}
	for _, bad := range []string{"", "1:2", "x:0:0", "1:-0.5:0", "1:1.5:0", "1:0:0/2", "-1:0:0"} {
		if _, err := crashx.ParseSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestScheduleDeterministicAndComplete(t *testing.T) {
	// Full enumeration when the budget covers the range.
	full, err := crashx.Explore(cloneSmall(t, "fast+", 4))
	if err != nil {
		t.Fatal(err)
	}
	if full.TotalPoints <= 0 || full.Enumerated != int(full.TotalPoints) || full.Sampled != 0 {
		t.Fatalf("full enumeration bookkeeping wrong: %+v", full)
	}
	if !full.Ok() {
		t.Fatalf("oracle violations on fast+: %+v", full.Failures)
	}
	if full.Runs != int(full.TotalPoints)*full.LotteriesPerPoint {
		t.Fatalf("runs = %d, want points(%d) x lotteries(%d)", full.Runs, full.TotalPoints, full.LotteriesPerPoint)
	}
}

func cloneSmall(t *testing.T, scheme string, txns int) *crashx.Config {
	t.Helper()
	cfg := testConfig(scheme, txns)
	cfg.Lotteries = 1
	return cfg
}

// TestExploreBudgeted: budget + stratified sampling explore a strict subset,
// reproducibly, with zero oracle violations on every scheme.
func TestExploreBudgeted(t *testing.T) {
	for _, scheme := range []string{"fast+", "fast", "nvwal"} {
		t.Run(scheme, func(t *testing.T) {
			cfg := testConfig(scheme, 12)
			cfg.Budget = 25
			cfg.Samples = 10
			cfg.Lotteries = 1
			rep, err := crashx.Explore(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Ok() {
				t.Fatalf("%d violations, first: %s → %s",
					len(rep.Failures), rep.Failures[0].Spec, rep.Failures[0].Err)
			}
			if rep.Enumerated != 25 || rep.Sampled == 0 || rep.Sampled > 10 {
				t.Fatalf("schedule bookkeeping: %+v", rep)
			}
		})
	}
}

// TestExploreNested: a second crash at every recovery crash point of the
// first few schedules must still recover to an oracle-clean state —
// recovery is idempotent.
func TestExploreNested(t *testing.T) {
	for _, scheme := range []string{"fast+", "fast", "nvwal"} {
		t.Run(scheme, func(t *testing.T) {
			// Full primary enumeration of a small workload guarantees
			// hitting the windows where recovery actually replays state
			// (log checkpointing, WAL replay), where nested crashes bite.
			// Recovery points are capped per schedule to bound test time;
			// the CLI's -exhaustive -nested run sweeps them all. NVWAL
			// recovers (replays its WAL chain) after nearly every crash
			// point, so its primary schedule is budgeted too.
			cfg := testConfig(scheme, 5)
			cfg.Lotteries = 1
			cfg.Nested = true
			cfg.NestedBudget = 12
			cfg.NestedSamples = 6
			if scheme == "nvwal" {
				cfg.Budget = 60
				cfg.Samples = 30
			}
			rep, err := crashx.Explore(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Ok() {
				t.Fatalf("%d violations, first: %s → %s",
					len(rep.Failures), rep.Failures[0].Spec, rep.Failures[0].Err)
			}
			if rep.NestedRuns == 0 {
				t.Fatal("nested exploration ran no nested schedules")
			}
		})
	}
}

// TestFailureRepro deliberately weakens the oracle (an extra Check that
// rejects any crash losing an unacknowledged transaction — i.e. almost
// every real crash) and verifies the explorer reports the schedule and that
// replaying the reported Spec reproduces the identical error byte-for-byte,
// including after a String/ParseSpec round trip.
func TestFailureRepro(t *testing.T) {
	cfg := testConfig("fast", 10)
	cfg.Lotteries = 1
	cfg.MaxFailures = 3
	wl := len(cfg.Workload)
	cfg.Check = func(got map[string]string, acked int) error {
		if acked < wl {
			return fmt.Errorf("weakened invariant: only %d/%d txns acknowledged", acked, wl)
		}
		return nil
	}
	rep, err := crashx.Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() {
		t.Fatal("weakened oracle produced no failures")
	}
	f := rep.Failures[0]
	if !strings.Contains(f.Err, "weakened invariant") {
		t.Fatalf("unexpected failure class: %s", f.Err)
	}
	// Byte-for-byte reproduction from the parsed spec string.
	spec, err := crashx.ParseSpec(f.Spec.String())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		res := crashx.Run(cfg, spec)
		if res.Err == nil || res.Err.Error() != f.Err {
			t.Fatalf("replay %d diverged:\n got: %v\nwant: %s", i, res.Err, f.Err)
		}
	}
}

// TestRunDeterminism: the same spec replayed twice yields identical results
// (acked count, crash flags, recovery point count).
func TestRunDeterminism(t *testing.T) {
	cfg := testConfig("fast+", 10)
	spec := crashx.Spec{Point: 200, Evict: pmem.CrashOptions{Seed: 99, EvictProb: 0.5}, RecPoint: -1}
	a := crashx.Run(cfg, spec)
	b := crashx.Run(cfg, spec)
	if a.Err != nil || b.Err != nil {
		t.Fatalf("runs failed: %v / %v", a.Err, b.Err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical specs diverged: %+v vs %+v", a, b)
	}
	if !a.Crashed || a.Acked >= len(cfg.Workload) {
		t.Fatalf("crash point 200 did not land inside the workload: %+v", a)
	}
}
