package crashx

import (
	"fmt"
	"sort"

	"fasp/internal/btree"
	"fasp/internal/pager"
	"fasp/internal/pmem"
)

// Failure records one oracle violation. Err is kept as a string so a
// reproduced failure can be compared byte-for-byte against the original.
type Failure struct {
	Spec Spec
	Err  string
}

// Report summarises one exploration.
type Report struct {
	// TotalPoints is the workload's crash-point count (one uncrashed run).
	TotalPoints int64
	// Enumerated and Sampled split the explored primary points.
	Enumerated, Sampled int
	// LotteriesPerPoint is the eviction sweep width.
	LotteriesPerPoint int
	// Runs counts every workload replay (primary and nested).
	Runs int
	// NestedRuns counts the replays that injected a recovery crash.
	NestedRuns int
	// Failures holds every oracle violation found (bounded by MaxFailures).
	Failures []Failure
}

// Ok reports whether the exploration found no violations.
func (r *Report) Ok() bool { return len(r.Failures) == 0 }

// Result is the outcome of one schedule replay.
type Result struct {
	// Crashed reports whether the primary crash fired (false when the
	// crash point lies beyond the workload).
	Crashed bool
	// RecCrashed reports whether the nested recovery crash fired.
	RecCrashed bool
	// Acked is the number of workload transactions acknowledged before the
	// crash.
	Acked int
	// RecPoints is the number of crash points recovery executed (measured
	// on the first, possibly interrupted, recovery attempt only when no
	// nested crash was requested).
	RecPoints int64
	// Err is the oracle violation or harness error, nil on success.
	Err error
}

// Measure replays the workload once without crashing and returns its
// crash-point count. It doubles as a workload validity check: every op must
// succeed, and the final store state must match the replayed model.
func Measure(cfg *Config) (int64, error) {
	if err := cfg.fill(); err != nil {
		return 0, err
	}
	sys, st := cfg.Open()
	base := sys.CrashPoints()
	tree := btree.New(st)
	for i := range cfg.Workload {
		var err error
		if st, tree, err = cfg.atOp(i, st, tree); err != nil {
			return 0, fmt.Errorf("crashx: AtOp hook before op %d failed uncrashed: %w", i, err)
		}
		if err := applyOp(tree, &cfg.Workload[i]); err != nil {
			return 0, fmt.Errorf("crashx: workload op %d (%s %q) failed uncrashed: %w",
				i, cfg.Workload[i].Kind, cfg.Workload[i].Key, err)
		}
	}
	total := sys.CrashPoints() - base
	if err := checkOracle(st, cfg.Workload, len(cfg.Workload), cfg.Check); err != nil {
		return 0, fmt.Errorf("crashx: uncrashed run fails its own oracle: %w", err)
	}
	return total, nil
}

// Run replays the workload under one fully pinned crash schedule and checks
// the durability oracle after recovery. It is deterministic: the same
// Config and Spec always produce the same Result, down to the error text.
func Run(cfg *Config, spec Spec) Result {
	if err := cfg.fill(); err != nil {
		return Result{Err: err}
	}
	if err := spec.Evict.Validate(); err != nil {
		return Result{Err: err}
	}
	if spec.RecPoint >= 0 {
		if err := spec.RecEvict.Validate(); err != nil {
			return Result{Err: err}
		}
	}
	res := Result{RecPoints: -1}

	sys, st := cfg.Open()
	tree := btree.New(st)
	var opErr error
	sys.CrashAfter(spec.Point)
	res.Crashed = sys.RunToCrash(func() {
		for i := range cfg.Workload {
			var err error
			if st, tree, err = cfg.atOp(i, st, tree); err != nil {
				opErr = fmt.Errorf("crashx: AtOp hook before op %d failed: %w", i, err)
				return
			}
			if err := applyOp(tree, &cfg.Workload[i]); err != nil {
				opErr = fmt.Errorf("crashx: workload op %d failed: %w", i, err)
				return
			}
			res.Acked++
		}
	})
	sys.DisarmCrash()
	if opErr != nil {
		res.Err = opErr
		return res
	}

	// Power failure proper: the eviction lottery decides which dirty lines
	// the hardware happened to write back.
	sys.Crash(spec.Evict)

	// First recovery, optionally interrupted by a nested crash.
	recBase := sys.CrashPoints()
	var st2 pager.Store
	var recErr error
	recoverOnce := func() {
		st2, recErr = cfg.Reattach(st)
	}
	if spec.RecPoint >= 0 {
		sys.CrashAfter(spec.RecPoint)
		res.RecCrashed = sys.RunToCrash(recoverOnce)
		sys.DisarmCrash()
		if res.RecCrashed {
			// Second power failure, mid-recovery. Apply its lottery and
			// recover again: recovery must be idempotent.
			sys.Crash(spec.RecEvict)
			recoverOnce()
		}
	} else {
		res.RecCrashed = sys.RunToCrash(recoverOnce)
		sys.DisarmCrash()
		if res.RecCrashed {
			res.Err = fmt.Errorf("crashx: recovery crashed without an armed nested crash")
			return res
		}
		res.RecPoints = sys.CrashPoints() - recBase
	}
	if recErr != nil {
		res.Err = fmt.Errorf("crashx: recovery failed: %v", recErr)
		return res
	}

	res.Err = checkOracle(st2, cfg.Workload, res.Acked, cfg.Check)
	return res
}

// atOp runs the pre-op hook (when configured) and rebinds the replay's
// store and tree if the hook swapped stores.
func (c *Config) atOp(i int, st pager.Store, tree *btree.Tree) (pager.Store, *btree.Tree, error) {
	if c.AtOp == nil {
		return st, tree, nil
	}
	ns, err := c.AtOp(i, st)
	if err != nil {
		return st, tree, err
	}
	if ns != nil && ns != st {
		return ns, btree.New(ns), nil
	}
	return st, tree, nil
}

// applyOp runs one workload transaction.
func applyOp(tree *btree.Tree, op *Op) error {
	switch op.Kind {
	case OpInsert:
		return tree.Insert(op.Key, op.Val)
	case OpUpdate:
		return tree.Update(op.Key, op.Val)
	case OpDelete:
		return tree.Delete(op.Key)
	}
	return fmt.Errorf("unknown op kind %d", op.Kind)
}

// modelAt replays the first k workload ops into a map — the expected store
// state at acknowledgement boundary k.
func modelAt(ops []Op, k int) map[string]string {
	m := make(map[string]string, k)
	for i := 0; i < k; i++ {
		switch ops[i].Kind {
		case OpInsert, OpUpdate:
			m[string(ops[i].Key)] = string(ops[i].Val)
		case OpDelete:
			delete(m, string(ops[i].Key))
		}
	}
	return m
}

// checkOracle verifies the recovered store against the durability contract:
//
//  1. the B-tree validates structurally;
//  2. the store state equals the model after `acked` ops (every
//     acknowledged transaction fully present) or after `acked+1` ops (the
//     in-flight transaction reached its durability point but crashed
//     before acknowledging) — nothing else: no torn transaction, no
//     resurrected delete, no lost update.
//
// The mismatch description is deterministic (sorted first difference) so a
// reproduced failure matches the original byte-for-byte.
func checkOracle(st pager.Store, ops []Op, acked int, extra func(map[string]string, int) error) error {
	tree := btree.New(st)
	tx, err := tree.Begin()
	if err != nil {
		return fmt.Errorf("oracle: begin: %v", err)
	}
	defer tx.Rollback()
	if err := tx.Validate(); err != nil {
		return fmt.Errorf("oracle: tree invalid: %v", err)
	}
	got := map[string]string{}
	if err := tx.Scan(nil, nil, func(k, v []byte) bool {
		got[string(k)] = string(v)
		return true
	}); err != nil {
		return fmt.Errorf("oracle: scan: %v", err)
	}
	next := acked
	if next < len(ops) {
		next++
	}
	wantAcked := modelAt(ops, acked)
	if !mapsEqual(got, wantAcked) {
		wantNext := modelAt(ops, next)
		if !mapsEqual(got, wantNext) {
			return fmt.Errorf("oracle: recovered state matches neither model(acked=%d) nor model(%d): %s",
				acked, next, firstDiff(got, wantAcked))
		}
	}
	if extra != nil {
		if err := extra(got, acked); err != nil {
			return fmt.Errorf("oracle: %v", err)
		}
	}
	return nil
}

func mapsEqual(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// firstDiff describes the smallest differing key between got and want.
func firstDiff(got, want map[string]string) string {
	keys := make([]string, 0, len(got)+len(want))
	for k := range got {
		keys = append(keys, k)
	}
	for k := range want {
		if _, ok := got[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		g, gok := got[k]
		w, wok := want[k]
		switch {
		case !gok:
			return fmt.Sprintf("key %q missing (want %q)", k, w)
		case !wok:
			return fmt.Sprintf("key %q unexpected (got %q)", k, g)
		case g != w:
			return fmt.Sprintf("key %q corrupt (got %q, want %q)", k, g, w)
		}
	}
	return fmt.Sprintf("sizes differ (got %d, want %d)", len(got), len(want))
}

// Explore runs the full crash-schedule exploration: every scheduled primary
// crash point × every eviction lottery, plus — when cfg.Nested is set — a
// nested crash at every scheduled recovery crash point of each crashing
// schedule. It stops early once MaxFailures violations accumulate.
func Explore(cfg *Config) (*Report, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	total, err := Measure(cfg)
	if err != nil {
		return nil, err
	}
	points := cfg.Points
	rep := &Report{TotalPoints: total, LotteriesPerPoint: 2 + cfg.Lotteries}
	switch {
	case points != nil:
		rep.Enumerated = len(points)
	default:
		points = schedule(total, cfg.Budget, cfg.Samples, cfg.Seed)
		if cfg.Budget <= 0 || int64(cfg.Budget) >= total {
			rep.Enumerated = len(points)
		} else {
			rep.Enumerated = cfg.Budget
			rep.Sampled = len(points) - cfg.Budget
		}
	}

	fail := func(spec Spec, err error) bool {
		f := Failure{Spec: spec, Err: err.Error()}
		rep.Failures = append(rep.Failures, f)
		if cfg.OnFailure != nil {
			cfg.OnFailure(f)
		}
		return len(rep.Failures) >= cfg.MaxFailures
	}
	for pi, p := range points {
		for _, lot := range cfg.lotteries(p) {
			spec := Spec{Point: p, Evict: lot, RecPoint: -1}
			res := Run(cfg, spec)
			rep.Runs++
			if res.Err != nil {
				if fail(spec, res.Err) {
					return rep, nil
				}
				continue
			}
			if !cfg.Nested || !res.Crashed || res.RecPoints <= 0 {
				continue
			}
			// Re-explore this schedule with a second crash at each
			// scheduled point inside recovery. The nested lottery reuses
			// the primary's eviction probability with a decorrelated seed:
			// the hardware's behavior does not change between failures.
			rpts := schedule(res.RecPoints, cfg.NestedBudget, cfg.NestedSamples, mix(cfg.Seed, p, lot.Seed))
			for _, rp := range rpts {
				nspec := spec
				nspec.RecPoint = rp
				nspec.RecEvict = pmem.CrashOptions{
					Seed:      mix(cfg.Seed, p, lot.Seed, rp),
					EvictProb: lot.EvictProb,
				}
				nres := Run(cfg, nspec)
				rep.Runs++
				rep.NestedRuns++
				if nres.Err != nil {
					if fail(nspec, nres.Err) {
						return rep, nil
					}
				}
			}
		}
		if cfg.Progress != nil {
			cfg.Progress(pi+1, len(points), rep.Runs)
		}
	}
	return rep, nil
}
