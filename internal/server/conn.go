package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"net"
	"os"
	"time"

	"fasp"
	"fasp/internal/obsv"
	"fasp/internal/server/wire"
	"fasp/internal/shard"
)

// maxScanBytes caps one SCAN reply's size; the server truncates with the
// more-marker set and the client resumes past the last key.
const maxScanBytes = 256 << 10

// opRef is one deferred write op, as offsets into the connection's arena —
// offsets, not subslices, because the arena reallocates as it grows. si is
// the op's shard placement, computed at decode time (the key bytes are
// hashed before the arena copy) so the flush can partition the write-set
// without re-hashing; unused under the global batcher.
type opRef struct {
	kind       uint8
	si         int32
	koff, klen int
	voff, vlen int
}

// pend is one request awaiting its in-order response slot. nops > 0 means
// the next nops verdicts of the flush batch belong to it; nops == 0 means
// the response was decided at decode time (BUSY shed, SHUTDOWN drain,
// PING ack, protocol error). raw, when non-nil, is a pre-encoded response
// frame emitted verbatim (a dedup-cache hit replaying a committed write's
// original ack). seq/hasSeq carry the session dedup token so flushWrites
// can complete (cache the reply) or cancel (refused unapplied) it.
type pend struct {
	op     byte
	code   wire.Code
	msg    string
	t0     time.Time
	nops   int
	raw    []byte
	seq    uint64
	hasSeq bool
}

// conn is one connection's reader state. All per-request buffers are
// reused across frames; the write-op bytes are copied into the arena
// because the frame decode buffer is clobbered by the next ReadFrame.
type conn struct {
	s  *Server
	c  net.Conn
	br *bufio.Reader
	bw *bufio.Writer

	buf   []byte // frame decode buffer
	out   []byte // pending response bytes, flushed once per round
	arena []byte // deferred write-op key/val bytes
	refs  []opRef
	pends []pend

	req   wire.Request
	ops   []fasp.Op   // scratch, materialised from refs at flush
	codes []wire.Code // scratch for batch replies
	sub   submission  // this connection's slot in the group-commit round
	sess  *session    // bound by HELLO; nil until then
	val   []byte      // GET fast-path value buffer (GetInto destination)

	// Per-shard partition scratch (pipelined mode, all reused): order maps
	// each ref's request-order index to its shard-major position in
	// sub.ops (empty = identity, the global arm); counts/offs/cur are the
	// per-shard bucket counters; ssubs holds one shardSub per shard and
	// subsOut the non-empty ones sent to the pipes.
	order   []int32
	counts  []int32
	offs    []int32
	cur     []int32
	ssubs   []shardSub
	subsOut []*shardSub
}

func newConn(s *Server, c net.Conn) *conn {
	return &conn{
		s:   s,
		c:   c,
		br:  bufio.NewReaderSize(c, 64<<10),
		bw:  bufio.NewWriterSize(c, 64<<10),
		sub: submission{done: make(chan struct{}, 1)},
	}
}

// run is the connection loop: block for one frame, drain every further
// frame already buffered, flush the deferred writes as one engine
// submission, write the in-order responses, repeat. The blocking read only
// ever happens with nothing pending and nothing unflushed, so a quiet
// client never holds acks hostage and Shutdown can close idle readers.
func (cn *conn) run() {
	for {
		// The idle deadline only arms the blocking read: every other read
		// in the round consumes bytes PeekFrame proved are already
		// buffered, so the deadline cannot fire spuriously mid-round.
		if d := cn.s.cfg.IdleTimeout; d > 0 {
			cn.c.SetReadDeadline(time.Now().Add(d))
		}
		op, payload, buf, err := wire.ReadFrame(cn.br, cn.s.cfg.MaxFrame, cn.buf)
		cn.buf = buf
		if err != nil {
			cn.teardown(err)
			return
		}
		cn.s.beginRound()
		fatal := cn.process(op, payload)
		for !fatal {
			ready, perr := wire.PeekFrame(cn.br, cn.s.cfg.MaxFrame)
			if perr != nil {
				cn.flushWrites()
				cn.protoErr(perr)
				fatal = true
				break
			}
			if !ready {
				break
			}
			op, payload, buf, err = wire.ReadFrame(cn.br, cn.s.cfg.MaxFrame, cn.buf)
			cn.buf = buf
			if err != nil { // cannot happen: the frame was fully buffered
				cn.teardown(err)
				cn.s.reqWG.Done()
				return
			}
			if fatal = cn.process(op, payload); fatal {
				break
			}
			if len(cn.refs) >= cn.s.cfg.MaxCoalesce {
				cn.flushWrites()
			}
		}
		cn.flushWrites()
		ok := cn.writeOut()
		cn.s.reqWG.Done()
		if fatal || !ok {
			return
		}
	}
}

// teardown handles a blocking-read error: frame-level protocol errors are
// answered with CodeProto before closing; an expired idle deadline is
// answered with CodeTimeout (the typed "I'm hanging up on you" — the
// shutdown sweep also trips read deadlines, but it already answered
// SHUTDOWN and draining distinguishes it); EOF and everything else just
// close. Nothing is pending at a blocking read, so no acks are lost.
func (cn *conn) teardown(err error) {
	switch {
	case errors.Is(err, wire.ErrMalformed) || errors.Is(err, wire.ErrFrameTooBig):
		cn.protoErr(err)
		cn.writeOut()
	case errors.Is(err, os.ErrDeadlineExceeded) && !cn.s.draining.Load():
		cn.s.met.timeouts.Add(1)
		cn.out = wire.AppendErr(cn.out, wire.CodeTimeout, -1, 0, "connection idle timeout")
		cn.writeOut()
	}
}

// protoErr appends a CodeProto response; the connection closes after it.
func (cn *conn) protoErr(err error) {
	cn.s.met.rejProto.Add(1)
	cn.out = wire.AppendErr(cn.out, wire.CodeProto, -1, 0, err.Error())
}

// process handles one decoded frame; true means the connection must close
// after the current round's responses are flushed (framing is broken).
func (cn *conn) process(op byte, payload []byte) (fatal bool) {
	cn.s.met.bytesIn.Add(int64(5 + len(payload)))
	t0 := time.Now()
	if err := wire.ParseRequest(op, payload, &cn.req); err != nil {
		// An unparseable payload inside a well-framed request does not
		// desynchronise the stream, but trusting anything after it is not
		// worth the risk: answer in order, then drop the connection.
		cn.pends = append(cn.pends, pend{op: op, code: wire.CodeProto, msg: err.Error(), t0: t0})
		cn.s.met.rejProto.Add(1)
		return true
	}
	if op > 0 && op < wire.NumOps {
		cn.s.met.opCount[op].Add(1)
	}
	if cn.s.draining.Load() {
		cn.pends = append(cn.pends, pend{op: op, code: wire.CodeShutdown, msg: "server draining", t0: t0})
		cn.s.met.rejShutdown.Add(1)
		return false
	}

	switch op {
	case wire.OpPing:
		cn.pends = append(cn.pends, pend{op: op, code: wire.CodeOK, t0: t0})

	case wire.OpHello:
		cn.sess = cn.s.sessions.get(cn.req.SID)
		cn.pends = append(cn.pends, pend{op: op, code: wire.CodeOK, t0: t0})

	case wire.OpPut, wire.OpPutSeq:
		resolved, fatal := cn.beginSeq(op, t0)
		if resolved || fatal {
			return fatal
		}
		cn.deferWrite(op, t0, wire.BatchOp{Kind: uint8(fasp.OpPut), Key: cn.req.Key, Val: cn.req.Val})
	case wire.OpDel, wire.OpDelSeq:
		resolved, fatal := cn.beginSeq(op, t0)
		if resolved || fatal {
			return fatal
		}
		cn.deferWrite(op, t0, wire.BatchOp{Kind: uint8(fasp.OpDelete), Key: cn.req.Key})
	case wire.OpBatch, wire.OpBatchSeq:
		resolved, fatal := cn.beginSeq(op, t0)
		if resolved || fatal {
			return fatal
		}
		cn.deferWrite(op, t0, cn.req.Ops...)

	case wire.OpGet:
		cn.flushWrites()
		if !cn.s.admit() {
			cn.shedBusy(op, t0)
			return false
		}
		// Fast path: answered right here on the reader goroutine — no pend,
		// no batcher round trip — with the value read into the connection's
		// reusable buffer (zero heap allocation at steady state).
		v, ok, err := cn.s.kv.GetInto(cn.req.Key, cn.val[:0])
		if cap(v) > cap(cn.val) {
			cn.val = v
		}
		cn.s.release()
		switch {
		case err != nil:
			cn.appendError(op, err)
		case !ok:
			cn.out = wire.AppendValue(cn.out, wire.CodeNotFound, nil)
		default:
			cn.out = wire.AppendValue(cn.out, wire.CodeOK, v)
		}
		cn.observe(op, t0)

	case wire.OpScan:
		cn.flushWrites()
		if !cn.s.admit() {
			cn.shedBusy(op, t0)
			return false
		}
		cn.serveScan()
		cn.s.release()
		cn.observe(op, t0)

	case wire.OpCount:
		cn.flushWrites()
		if !cn.s.admit() {
			cn.shedBusy(op, t0)
			return false
		}
		n, err := cn.s.kv.Count()
		cn.s.release()
		if err != nil {
			cn.appendError(op, err)
		} else {
			cn.out = wire.AppendCount(cn.out, uint64(n))
		}
		cn.observe(op, t0)

	case wire.OpStats:
		cn.flushWrites()
		cn.serveStats()
		cn.observe(op, t0)
	}
	return false
}

// beginSeq resolves a sequenced write's dedup token before execution; it
// is a no-op for unsequenced writes. resolved means the response is already
// decided (cached replay of a committed write, or a typed error) and the
// caller must not defer the ops; fatal means the connection must close (a
// sequenced write before HELLO is a protocol violation).
func (cn *conn) beginSeq(op byte, t0 time.Time) (resolved, fatal bool) {
	if !cn.req.HasSeq {
		return false, false
	}
	if cn.sess == nil {
		cn.pends = append(cn.pends, pend{op: op, code: wire.CodeProto, msg: "sequenced write before HELLO", t0: t0})
		cn.s.met.rejProto.Add(1)
		return true, true
	}
	for {
		e, st := cn.sess.begin(cn.req.Seq)
		switch st {
		case seqFresh:
			return false, false
		case seqDone:
			// Exactly-once: the write already committed (through this or a
			// previous connection); answer its cached ack verbatim.
			cn.pends = append(cn.pends, pend{op: op, raw: e.reply, t0: t0})
			return true, false
		case seqInflight:
			// The original is racing through another connection's commit.
			// Flush our own pending set first — if the original were in
			// it, waiting without flushing would deadlock on ourselves —
			// then wait for its verdict and re-resolve.
			cn.flushWrites()
			<-e.done
		case seqStale:
			cn.pends = append(cn.pends, pend{op: op, code: wire.CodeInternal, msg: "sequence token outside dedup window", t0: t0})
			return true, false
		}
	}
}

// deferWrite admits a write request and parks its ops in the arena; the
// verdicts arrive at the next flushWrites.
func (cn *conn) deferWrite(op byte, t0 time.Time, ops ...wire.BatchOp) {
	seq, hasSeq := cn.req.Seq, cn.req.HasSeq
	if len(ops) == 0 {
		// Only BATCH can be empty (ParseRequest accepts n == 0). There is
		// nothing to commit, so skip admission entirely — the reply is an
		// empty verdict list decided here, and flushWrites must not release
		// a semaphore slot this request never took.
		cn.pends = append(cn.pends, pend{op: op, t0: t0, seq: seq, hasSeq: hasSeq})
		return
	}
	if !cn.s.admit() {
		cn.pends = append(cn.pends, pend{op: op, code: wire.CodeBusy, msg: "server overloaded", t0: t0, seq: seq, hasSeq: hasSeq})
		cn.s.met.rejBusy.Add(1)
		cn.s.met.opErr[op].Add(1)
		return
	}
	for _, b := range ops {
		r := opRef{kind: b.Kind, koff: len(cn.arena), klen: len(b.Key)}
		if cn.s.pipes != nil {
			r.si = int32(cn.s.kv.ShardOf(b.Key))
		}
		cn.arena = append(cn.arena, b.Key...)
		r.voff, r.vlen = len(cn.arena), len(b.Val)
		cn.arena = append(cn.arena, b.Val...)
		cn.refs = append(cn.refs, r)
	}
	cn.pends = append(cn.pends, pend{op: op, t0: t0, nops: len(ops), seq: seq, hasSeq: hasSeq})
}

// shedBusy answers one immediate (read-path) request with BUSY.
func (cn *conn) shedBusy(op byte, t0 time.Time) {
	cn.out = wire.AppendErr(cn.out, wire.CodeBusy, -1, cn.s.retryHintMS(wire.CodeBusy), "server overloaded")
	cn.s.met.rejBusy.Add(1)
	cn.s.met.opErr[op].Add(1)
	cn.observe(op, t0)
}

// verdictApplied reports whether a verdict code means the op took effect or
// was at least evaluated against data state (complete → cache for replay),
// as opposed to refused without execution (cancel → a replay re-executes).
// CodeInternal is deliberately "applied": on an ambiguous failure,
// exactly-once degrades to at-most-once, never to twice.
func verdictApplied(c wire.Code) bool {
	switch c {
	case wire.CodeBusy, wire.CodeUnavail, wire.CodeShutdown:
		return false
	}
	return true
}

// flushWrites submits every deferred write op — partitioned by shard to
// the per-shard commit pipelines, or flat to the global group-commit loop
// under Config.GlobalBatcher — and emits the pending responses in request
// order. The arena and scratch are reusable immediately after: the commit
// join blocks until every involved shard's verdicts are in, and the
// engine's writers copy what they persist.
func (cn *conn) flushWrites() {
	if len(cn.pends) == 0 {
		return
	}
	var errs []error
	cn.order = cn.order[:0] // empty order = request-order verdicts
	if len(cn.refs) > 0 {
		if cn.s.pipes != nil {
			errs = cn.flushSharded()
		} else {
			cn.ops = cn.ops[:0]
			for _, r := range cn.refs {
				cn.ops = append(cn.ops, cn.materialise(&r))
			}
			cn.sub.ops = cn.ops
			cn.sub.errs = cn.sub.errs[:0]
			for range cn.ops {
				cn.sub.errs = append(cn.sub.errs, nil)
			}
			cn.s.commit(&cn.sub)
			errs = cn.sub.errs
		}
	}
	vi := 0
	admitted := 0
	for i := range cn.pends {
		p := &cn.pends[i]
		mark := len(cn.out)
		applied := true // whether the verdict is final for dedup purposes
		switch {
		case p.raw != nil:
			// Dedup-cache hit: replay the committed write's original ack
			// verbatim, in this request's pipeline slot.
			cn.out = append(cn.out, p.raw...)
		case p.nops == 0 && p.code == wire.CodeOK && wire.BaseOp(p.op) == wire.OpBatch:
			// Empty BATCH: never admitted, nothing committed; the reply is
			// still a batch-shaped frame so ParseBatchReply accepts it.
			cn.out = wire.AppendBatchReply(cn.out, nil)
		case p.nops == 0 && p.code == wire.CodeOK:
			cn.out = wire.AppendOK(cn.out)
		case p.nops == 0:
			cn.out = wire.AppendErr(cn.out, p.code, -1, cn.s.retryHintMS(p.code), p.msg)
			applied = verdictApplied(p.code)
		case wire.BaseOp(p.op) == wire.OpBatch:
			admitted++
			cn.codes = cn.codes[:0]
			failed := false
			applied = false
			for j := 0; j < p.nops; j++ {
				c := wire.CodeFor(cn.errAt(errs, vi+j))
				if c != wire.CodeOK {
					failed = true
				}
				if verdictApplied(c) {
					applied = true
				}
				cn.codes = append(cn.codes, c)
			}
			vi += p.nops
			cn.out = wire.AppendBatchReply(cn.out, cn.codes)
			if failed {
				cn.s.met.opErr[p.op].Add(1)
			}
		default: // single PUT/DEL
			admitted++
			err := cn.errAt(errs, vi)
			vi++
			if err == nil {
				cn.out = wire.AppendOK(cn.out)
			} else {
				cn.appendError(p.op, err)
				applied = verdictApplied(wire.CodeFor(err))
			}
		}
		if p.hasSeq && p.raw == nil {
			// Dedup bookkeeping: an applied (or evaluated) verdict is
			// cached under its token for replays; a refused-unapplied one
			// releases the token so a retry re-executes.
			if applied {
				cn.sess.complete(p.seq, cn.out[mark:])
			} else {
				cn.sess.cancel(p.seq)
			}
		}
		cn.observe(p.op, p.t0)
	}
	for ; admitted > 0; admitted-- {
		cn.s.release()
	}
	cn.pends = cn.pends[:0]
	cn.refs = cn.refs[:0]
	cn.arena = cn.arena[:0]
}

// materialise rebuilds one deferred op from its arena offsets.
func (cn *conn) materialise(r *opRef) fasp.Op {
	o := fasp.Op{Kind: fasp.OpKind(r.kind), Key: cn.arena[r.koff : r.koff+r.klen]}
	if fasp.OpKind(r.kind) != fasp.OpDelete {
		o.Val = cn.arena[r.voff : r.voff+r.vlen]
	}
	return o
}

// errAt reads verdict i of the current flush in request order, through
// the shard-major order mapping when the write-set was partitioned.
func (cn *conn) errAt(errs []error, i int) error {
	if len(cn.order) == 0 {
		return errs[i]
	}
	return errs[cn.order[i]]
}

// flushSharded partitions the deferred write-set by shard into one
// shard-major ops/errs layout, submits each shard's slice to its commit
// pipeline, and blocks on the multi-shard join. order records each
// request-order op's shard-major position for the in-order response walk.
// Everything here — buckets, layout, sub-submission values — is conn-owned
// and reused, so a steady-state flush performs no heap allocation.
func (cn *conn) flushSharded() []error {
	ns := cn.s.nshards
	cn.counts = cn.counts[:0]
	for i := 0; i < ns; i++ {
		cn.counts = append(cn.counts, 0)
	}
	for i := range cn.refs {
		cn.counts[cn.refs[i].si]++
	}
	cn.offs, cn.cur = cn.offs[:0], cn.cur[:0]
	var sum, nsubs int32
	for _, c := range cn.counts {
		cn.offs = append(cn.offs, sum)
		cn.cur = append(cn.cur, sum)
		sum += c
		if c > 0 {
			nsubs++
		}
	}
	n := len(cn.refs)
	cn.ops = cn.ops[:0]
	cn.sub.errs = cn.sub.errs[:0]
	for i := 0; i < n; i++ {
		cn.ops = append(cn.ops, fasp.Op{})
		cn.order = append(cn.order, 0)
		cn.sub.errs = append(cn.sub.errs, nil)
	}
	for i := range cn.refs {
		r := &cn.refs[i]
		pos := cn.cur[r.si]
		cn.cur[r.si] = pos + 1
		cn.ops[pos] = cn.materialise(r)
		cn.order[i] = pos
	}
	cn.sub.ops = cn.ops
	cn.sub.pending.Store(nsubs)
	if cap(cn.ssubs) < ns {
		cn.ssubs = make([]shardSub, ns)
	}
	cn.ssubs = cn.ssubs[:ns]
	cn.subsOut = cn.subsOut[:0]
	for si := 0; si < ns; si++ {
		c := cn.counts[si]
		if c == 0 {
			continue
		}
		ss := &cn.ssubs[si]
		lo := cn.offs[si]
		ss.si = si
		ss.ops = cn.ops[lo : lo+c]
		ss.errs = cn.sub.errs[lo : lo+c]
		ss.sub = &cn.sub
		cn.subsOut = append(cn.subsOut, ss)
	}
	cn.s.commitSharded(&cn.sub, cn.subsOut)
	return cn.sub.errs
}

// appendError encodes an engine error with its wire code, shard pin, and
// retry-after hint.
func (cn *conn) appendError(op byte, err error) {
	code := wire.CodeFor(err)
	cn.out = wire.AppendErr(cn.out, code, wire.ShardOf(err), cn.s.retryHintMS(code), err.Error())
	if op > 0 && op < wire.NumOps {
		cn.s.met.opErr[op].Add(1)
	}
}

// serveScan streams [lo, hi] pairs up to the request's limit (capped at
// the server's page size) and the reply byte cap, setting the more-marker
// when truncated.
func (cn *conn) serveScan() {
	limit := cn.s.cfg.ScanLimit
	if cn.req.Limit > 0 && int(cn.req.Limit) < limit {
		limit = int(cn.req.Limit)
	}
	var lo, hi []byte
	if cn.req.HasLo {
		lo = cn.req.Lo
	}
	if cn.req.HasHi {
		hi = cn.req.Hi
	}
	mark := len(cn.out)
	var sw wire.ScanReplyWriter
	sw.Begin(cn.out)
	n, more := 0, false
	fn := func(k, v []byte) bool {
		if cn.req.ExclHi && bytes.Equal(k, hi) {
			// hi is exclusive (a reverse-resume boundary): skip the pair
			// without counting it toward the page, so a resume always
			// delivers at least one fresh pair when the range has one.
			return true
		}
		if n >= limit || sw.Size() > maxScanBytes {
			more = true
			return false
		}
		sw.Pair(k, v)
		n++
		return true
	}
	var err error
	if cn.req.Rev {
		err = cn.s.kv.ScanReverse(lo, hi, fn)
	} else {
		err = cn.s.kv.Scan(lo, hi, fn)
	}
	if err != nil {
		cn.out = cn.out[:mark]
		cn.appendError(wire.OpScan, err)
		return
	}
	cn.out = sw.End(more)
}

// statsReply is the STATS response payload (JSON).
type statsReply struct {
	Server obsv.ServerSnapshot `json:"server"`
	Engine shard.Stats         `json:"engine"`
}

func (cn *conn) serveStats() {
	rep := statsReply{
		Server: cn.s.Snapshot(),
		Engine: cn.s.kv.EngineStats(),
	}
	b, err := json.Marshal(rep)
	if err != nil {
		cn.appendError(wire.OpStats, err)
		return
	}
	cn.out = wire.AppendValue(cn.out, wire.CodeOK, b)
}

// observe records one served request's wall latency.
func (cn *conn) observe(op byte, t0 time.Time) {
	if op > 0 && op < wire.NumOps {
		cn.s.met.opWall[op].Observe(time.Since(t0).Nanoseconds())
	}
}

// writeOut flushes the round's accumulated responses to the socket; false
// means the socket is broken (write error or expired write deadline) and
// the connection must close. Responses already handed to a dead socket are
// simply lost — the retry layer's dedup tokens make the replay safe.
func (cn *conn) writeOut() bool {
	if len(cn.out) == 0 {
		return true
	}
	cn.s.met.bytesOut.Add(int64(len(cn.out)))
	if d := cn.s.cfg.WriteTimeout; d > 0 {
		cn.c.SetWriteDeadline(time.Now().Add(d))
	}
	ok := false
	if _, err := cn.bw.Write(cn.out); err == nil {
		ok = cn.bw.Flush() == nil
	}
	cn.out = cn.out[:0]
	return ok
}
