package server

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"fasp"
	"fasp/internal/obsv"
	"fasp/internal/server/client"
	"fasp/internal/server/loadgen"
	"fasp/internal/server/wire"
)

// start opens a KV, serves it, and tears both down with the test.
func start(t *testing.T, opts fasp.Options, cfg Config) (*Server, *fasp.KV, string) {
	t.Helper()
	kv, err := fasp.OpenKV(opts)
	if err != nil {
		t.Fatalf("OpenKV: %v", err)
	}
	srv := New(kv, cfg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	go srv.Serve()
	t.Cleanup(func() {
		srv.Shutdown()
		kv.Close()
	})
	return srv, kv, addr
}

func dial(t *testing.T, addr string) *client.Client {
	t.Helper()
	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func TestEndToEnd(t *testing.T) {
	_, _, addr := start(t, fasp.Options{Shards: 4}, Config{})
	cl := dial(t, addr)

	if err := cl.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	if err := cl.Put([]byte("alpha"), []byte("1")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	v, ok, err := cl.Get([]byte("alpha"))
	if err != nil || !ok || string(v) != "1" {
		t.Fatalf("Get: %q %v %v", v, ok, err)
	}
	if _, ok, err := cl.Get([]byte("missing")); err != nil || ok {
		t.Fatalf("Get miss: ok=%v err=%v", ok, err)
	}
	if err := cl.Put([]byte("alpha"), []byte("2")); err != nil {
		t.Fatalf("Put overwrite: %v", err)
	}
	if v, _, _ := cl.Get([]byte("alpha")); string(v) != "2" {
		t.Fatalf("overwrite lost: %q", v)
	}
	if err := cl.Del([]byte("alpha")); err != nil {
		t.Fatalf("Del: %v", err)
	}
	if _, ok, _ := cl.Get([]byte("alpha")); ok {
		t.Fatal("key survives Del")
	}

	// Batch with mixed logical verdicts.
	codes, err := cl.Batch([]wire.BatchOp{
		{Kind: wire.KindInsert, Key: []byte("b1"), Val: []byte("x")},
		{Kind: wire.KindInsert, Key: []byte("b1"), Val: []byte("y")},   // dup
		{Kind: wire.KindUpdate, Key: []byte("nope"), Val: []byte("z")}, // absent
		{Kind: wire.KindPut, Key: []byte("b2"), Val: []byte("w")},
	})
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}
	want := []wire.Code{wire.CodeOK, wire.CodeDup, wire.CodeKeyAbsent, wire.CodeOK}
	for i := range want {
		if codes[i] != want[i] {
			t.Fatalf("batch code[%d] = %v, want %v", i, codes[i], want[i])
		}
	}

	// Typed sentinel through the sync API.
	if err := cl.Del([]byte("never-existed")); !errors.Is(err, wire.ErrRemoteKeyAbsent) {
		t.Fatalf("Del absent: %v", err)
	}

	n, err := cl.Count()
	if err != nil || n != 2 {
		t.Fatalf("Count = %d, %v", n, err)
	}

	stats, err := cl.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	var rep struct {
		Server obsv.ServerSnapshot `json:"server"`
	}
	if err := json.Unmarshal(stats, &rep); err != nil {
		t.Fatalf("stats json: %v\n%s", err, stats)
	}
	if rep.Server.ConnsOpen < 1 {
		t.Fatalf("stats conns_open = %d", rep.Server.ConnsOpen)
	}
}

func TestScanPaging(t *testing.T) {
	_, kv, addr := start(t, fasp.Options{Shards: 4}, Config{ScanLimit: 100})
	ops := make([]fasp.Op, 600)
	for i := range ops {
		ops[i] = fasp.Op{Kind: fasp.OpPut, Key: []byte(fmt.Sprintf("k%04d", i)), Val: []byte(fmt.Sprintf("v%d", i))}
	}
	for _, err := range kv.ApplyBatch(ops) {
		if err != nil {
			t.Fatalf("seed: %v", err)
		}
	}
	cl := dial(t, addr)

	var keys []string
	if err := cl.Scan(nil, nil, false, func(k, v []byte) bool {
		keys = append(keys, string(k))
		return true
	}); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(keys) != 600 {
		t.Fatalf("forward scan got %d keys", len(keys))
	}
	for i := range keys {
		if keys[i] != fmt.Sprintf("k%04d", i) {
			t.Fatalf("keys[%d] = %s", i, keys[i])
		}
	}

	keys = keys[:0]
	if err := cl.Scan(nil, nil, true, func(k, v []byte) bool {
		keys = append(keys, string(k))
		return true
	}); err != nil {
		t.Fatalf("reverse Scan: %v", err)
	}
	if len(keys) != 600 {
		t.Fatalf("reverse scan got %d keys", len(keys))
	}
	for i := range keys {
		if keys[i] != fmt.Sprintf("k%04d", 599-i) {
			t.Fatalf("rev keys[%d] = %s", i, keys[i])
		}
	}

	// Bounded, limited, early-stopped.
	keys = keys[:0]
	if err := cl.Scan([]byte("k0100"), []byte("k0105"), false, func(k, v []byte) bool {
		keys = append(keys, string(k))
		return len(keys) < 3
	}); err != nil {
		t.Fatalf("bounded Scan: %v", err)
	}
	if len(keys) != 3 || keys[0] != "k0100" || keys[2] != "k0102" {
		t.Fatalf("bounded scan: %v", keys)
	}
}

// TestPipelinedOrdering pins strict in-order responses and the
// flush-before-read ordering: a pipelined GET observes every PUT queued
// before it on the same connection.
func TestPipelinedOrdering(t *testing.T) {
	_, _, addr := start(t, fasp.Options{Shards: 4}, Config{})
	cl := dial(t, addr)

	const n = 200
	for i := 0; i < n; i++ {
		cl.QueuePut([]byte(fmt.Sprintf("p%03d", i)), []byte(fmt.Sprintf("%d", i)))
		cl.QueueGet([]byte(fmt.Sprintf("p%03d", i)))
	}
	if err := cl.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	for i := 0; i < n; i++ {
		code, _, err := cl.Recv() // PUT ack
		if err != nil || code != wire.CodeOK {
			t.Fatalf("put %d: %v %v", i, code, err)
		}
		code, payload, err := cl.Recv() // GET response
		if err != nil || code != wire.CodeOK {
			t.Fatalf("get %d: %v %v", i, code, err)
		}
		if string(payload) != fmt.Sprintf("%d", i) {
			t.Fatalf("get %d read %q", i, payload)
		}
	}
}

// TestCoalescing drives many connections and checks the server observed
// multi-op engine submissions (the coalesce histogram) — pipelined frames
// batch even within one connection, and the shard mailboxes batch across
// connections.
func TestCoalescing(t *testing.T) {
	srv, kv, addr := start(t, fasp.Options{Shards: 4}, Config{})
	res, err := loadgen.Run(loadgen.Config{
		Addr: addr, Conns: 16, Pipeline: 16, Duration: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	if res.ConnDrops != 0 || res.Errors != 0 {
		t.Fatalf("drops=%d errors=%d", res.ConnDrops, res.Errors)
	}
	snap := srv.Snapshot()
	if snap.Coalesce.Count == 0 {
		t.Fatal("no engine submissions observed")
	}
	if mean := snap.Coalesce.Mean(); mean <= 1 {
		t.Fatalf("pipelined load coalesced nothing: mean width %.2f", mean)
	}
	st := kv.EngineStats()
	if st.Batches == 0 || st.Ops == 0 {
		t.Fatalf("engine saw no batches: %+v", st)
	}
}

// TestBackpressureBusy pins the overload contract: with a tiny in-flight
// gate and a flood of connections, requests are shed with typed BUSY
// responses and not a single connection is dropped.
func TestBackpressureBusy(t *testing.T) {
	_, _, addr := start(t, fasp.Options{Shards: 2}, Config{MaxInFlight: 1})
	res, err := loadgen.Run(loadgen.Config{
		Addr: addr, Conns: 8, Pipeline: 32, Duration: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	if res.Busy == 0 {
		t.Fatalf("no BUSY under MaxInFlight=1 flood: %+v", res)
	}
	if res.ConnDrops != 0 {
		t.Fatalf("overload dropped %d connections", res.ConnDrops)
	}
	if res.Errors != 0 {
		t.Fatalf("overload produced %d untyped errors", res.Errors)
	}
	if res.OpsAcked == 0 {
		t.Fatal("overload acked nothing — shed everything")
	}
}

// TestGracefulShutdown pins the drain sequence: acked writes survive,
// requests during the drain get typed SHUTDOWN (or a clean close), and
// Shutdown returns only after in-flight responses are flushed.
func TestGracefulShutdown(t *testing.T) {
	kv, err := fasp.OpenKV(fasp.Options{Shards: 4})
	if err != nil {
		t.Fatalf("OpenKV: %v", err)
	}
	defer kv.Close()
	srv := New(kv, Config{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	go srv.Serve()

	// Phase 1: acked writes before the drain.
	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	const acked = 100
	for i := 0; i < acked; i++ {
		if err := cl.Put([]byte(fmt.Sprintf("pre%03d", i)), []byte("v")); err != nil {
			t.Fatalf("pre put %d: %v", i, err)
		}
	}

	// Phase 2: concurrent load while Shutdown runs.
	var wg sync.WaitGroup
	var shutdownSeen, closedSeen bool
	wg.Add(1)
	go func() {
		defer wg.Done()
		cl2, err := client.Dial(addr)
		if err != nil {
			return
		}
		defer cl2.Close()
		for i := 0; ; i++ {
			err := cl2.Put([]byte(fmt.Sprintf("mid%05d", i)), []byte("v"))
			if errors.Is(err, wire.ErrRemoteShutdown) {
				shutdownSeen = true
				return
			}
			if err != nil {
				closedSeen = true
				return
			}
		}
	}()
	time.Sleep(50 * time.Millisecond)
	srv.Shutdown()
	wg.Wait()
	if !shutdownSeen && !closedSeen {
		t.Fatal("drain phase writer saw neither SHUTDOWN nor close")
	}

	// Every pre-drain ack is durable in the still-open KV.
	for i := 0; i < acked; i++ {
		v, ok, err := kv.Get([]byte(fmt.Sprintf("pre%03d", i)))
		if err != nil || !ok || string(v) != "v" {
			t.Fatalf("acked pre%03d lost: %q %v %v", i, v, ok, err)
		}
	}

	// The listener is closed and a second Shutdown is a no-op.
	if _, err := net.DialTimeout("tcp", addr, 200*time.Millisecond); err == nil {
		t.Fatal("listener still accepting after Shutdown")
	}
	srv.Shutdown()
}

// TestProtoErrors pins the untrusted-peer behaviour end to end: garbage
// framing gets a typed PROTO response and the connection is closed; the
// server survives.
func TestProtoErrors(t *testing.T) {
	_, _, addr := start(t, fasp.Options{Shards: 2}, Config{MaxFrame: 1 << 16})

	// Oversized frame length.
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	c.Write([]byte{0xff, 0xff, 0xff, 0xff, 1})
	assertProtoThenEOF(t, c)

	// Unknown opcode inside a well-formed frame.
	c2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial2: %v", err)
	}
	defer c2.Close()
	c2.Write([]byte{0, 0, 0, 1, 0x7e})
	assertProtoThenEOF(t, c2)

	// The server still serves new clients.
	cl := dial(t, addr)
	if err := cl.Ping(); err != nil {
		t.Fatalf("post-proto ping: %v", err)
	}
}

func assertProtoThenEOF(t *testing.T, c net.Conn) {
	t.Helper()
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	var hdr [5]byte
	if _, err := io.ReadFull(c, hdr[:]); err != nil {
		t.Fatalf("read proto response header: %v", err)
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if wire.Code(hdr[4]) != wire.CodeProto {
		t.Fatalf("code = %d, want proto", hdr[4])
	}
	rest := make([]byte, n-1)
	if _, err := io.ReadFull(c, rest); err != nil {
		t.Fatalf("read proto payload: %v", err)
	}
	// Then the server closes.
	if _, err := c.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("after proto: %v, want EOF", err)
	}
}

// TestMetricsEndpoint scrapes the facade /metrics with the server source
// registered and validates the exposition.
func TestMetricsEndpoint(t *testing.T) {
	_, _, addr := start(t, fasp.Options{Shards: 2}, Config{Name: "testsrv"})
	cl := dial(t, addr)
	for i := 0; i < 50; i++ {
		if err := cl.Put([]byte(fmt.Sprintf("m%03d", i)), []byte("v")); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	if _, _, err := cl.Get([]byte("m000")); err != nil {
		t.Fatalf("get: %v", err)
	}

	// The client retry layer publishes its telemetry on the same endpoint.
	unreg := fasp.RegisterPromSource(func(w io.Writer) {
		obsv.WriteClientPrometheus(w, "testsrv-clients", client.PromSnapshot())
	})
	defer unreg()

	ms, err := fasp.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeMetrics: %v", err)
	}
	defer ms.Close()
	resp, err := http.Get("http://" + ms.Addr() + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if err := obsv.ValidatePrometheus(body); err != nil {
		t.Fatalf("invalid exposition: %v", err)
	}
	for _, want := range []string{
		`fasp_server_requests_total{server="testsrv",op="put"}`,
		`fasp_server_connections_total{server="testsrv"}`,
		`fasp_server_coalesce_width_count{server="testsrv"}`,
		`fasp_server_rejects_total{server="testsrv",reason="busy"}`,
		`fasp_server_conn_timeouts_total{server="testsrv"}`,
		`fasp_server_heal_attempts_total{server="testsrv"}`,
		`fasp_server_heal_failures_total{server="testsrv"}`,
		`fasp_server_degraded_shards{server="testsrv"}`,
		`fasp_client_retries_total{client="testsrv-clients",code="busy"}`,
		`fasp_client_retries_total{client="testsrv-clients",code="conn_reset"}`,
		`fasp_client_retries_total{client="testsrv-clients",code="unavail"}`,
		`fasp_client_reconnects_total{client="testsrv-clients"}`,
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Fatalf("scrape missing %q", want)
		}
	}
}

// TestErrorMappingEndToEnd drives engine availability errors through the
// wire: a crashed shard answers UNAVAIL pinned to that shard while the
// other shards keep serving, and a closed engine answers SHUTDOWN.
func TestErrorMappingEndToEnd(t *testing.T) {
	kv, err := fasp.OpenKV(fasp.Options{Shards: 4})
	if err != nil {
		t.Fatalf("OpenKV: %v", err)
	}
	defer kv.Close()
	srv := New(kv, Config{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	go srv.Serve()
	defer srv.Shutdown()

	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	// Find keys on distinct shards.
	keyOn := func(shard int) []byte {
		for i := 0; ; i++ {
			k := []byte(fmt.Sprintf("s%d-%d", shard, i))
			if shardOf(kv, k) == shard {
				return k
			}
		}
	}
	victimKey := keyOn(1)
	healthyKey := keyOn(2)

	if err := cl.Put(victimKey, []byte("v")); err != nil {
		t.Fatalf("seed victim: %v", err)
	}
	if err := cl.Put(healthyKey, []byte("v")); err != nil {
		t.Fatalf("seed healthy: %v", err)
	}

	// Crash shard 1 only: writes to it must come back UNAVAIL with the
	// shard id; the healthy shard keeps acking.
	sys, err := kv.ShardSystem(1)
	if err != nil {
		t.Fatalf("ShardSystem: %v", err)
	}
	sys.CrashAfter(1)
	// Trip the crash point with a write to the victim shard.
	err = cl.Put(victimKey, []byte("v2"))
	if !errors.Is(err, wire.ErrRemoteUnavail) {
		t.Fatalf("crashed-shard put: %v, want unavail", err)
	}
	err = cl.Put(victimKey, []byte("v3"))
	if !errors.Is(err, wire.ErrRemoteUnavail) {
		t.Fatalf("crashed-shard put 2: %v, want unavail", err)
	}
	if err := cl.Put(healthyKey, []byte("v2")); err != nil {
		t.Fatalf("healthy shard during degradation: %v", err)
	}
}

// shardOf mirrors the engine's key partitioning for test key targeting.
func shardOf(kv *fasp.KV, key []byte) int {
	// FNV-1a, as internal/shard.ShardFor.
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return int(h % uint64(kv.Shards()))
}

// TestEmptyBatch pins two regressions around zero-op BATCH frames (valid
// per ParseRequest): the reply must be a batch-shaped frame with zero
// verdicts, and — since an empty batch is never admitted — it must not
// consume an in-flight gate slot. The old code leaked one slot per empty
// batch, so a handful of empty frames against a small gate turned every
// later request into BUSY forever.
func TestEmptyBatch(t *testing.T) {
	_, _, addr := start(t, fasp.Options{Shards: 2}, Config{MaxInFlight: 4})
	cl := dial(t, addr)

	for i := 0; i < 64; i++ {
		codes, err := cl.Batch(nil)
		if err != nil {
			t.Fatalf("empty Batch #%d: %v", i, err)
		}
		if len(codes) != 0 {
			t.Fatalf("empty Batch codes = %v", codes)
		}
	}
	// The gate must be fully free: real work still gets through.
	if err := cl.Put([]byte("after"), []byte("v")); err != nil {
		t.Fatalf("Put after empty batches: %v", err)
	}
	codes, err := cl.Batch([]wire.BatchOp{{Kind: wire.KindPut, Key: []byte("b"), Val: []byte("v")}})
	if err != nil || len(codes) != 1 || codes[0] != wire.CodeOK {
		t.Fatalf("real Batch after empty batches: %v %v", codes, err)
	}
}

// TestScanPagingLimitOne drives paging at the degenerate page size of one
// pair, where every resume page used to consist solely of the reverse
// boundary duplicate — the old client saw "no progress" and silently
// returned after the first key. The exclusive-hi resume must deliver the
// whole range in both directions.
func TestScanPagingLimitOne(t *testing.T) {
	_, kv, addr := start(t, fasp.Options{Shards: 4}, Config{ScanLimit: 1})
	const n = 20
	ops := make([]fasp.Op, n)
	for i := range ops {
		ops[i] = fasp.Op{Kind: fasp.OpPut, Key: []byte(fmt.Sprintf("p%03d", i)), Val: []byte("v")}
	}
	for _, err := range kv.ApplyBatch(ops) {
		if err != nil {
			t.Fatalf("seed: %v", err)
		}
	}
	cl := dial(t, addr)

	var keys []string
	if err := cl.Scan(nil, nil, true, func(k, v []byte) bool {
		keys = append(keys, string(k))
		return true
	}); err != nil {
		t.Fatalf("reverse Scan: %v", err)
	}
	if len(keys) != n {
		t.Fatalf("reverse scan with 1-pair pages got %d keys, want %d: %v", len(keys), n, keys)
	}
	for i := range keys {
		if want := fmt.Sprintf("p%03d", n-1-i); keys[i] != want {
			t.Fatalf("rev keys[%d] = %s, want %s", i, keys[i], want)
		}
	}

	keys = keys[:0]
	if err := cl.Scan(nil, nil, false, func(k, v []byte) bool {
		keys = append(keys, string(k))
		return true
	}); err != nil {
		t.Fatalf("forward Scan: %v", err)
	}
	if len(keys) != n {
		t.Fatalf("forward scan with 1-pair pages got %d keys", len(keys))
	}

	// Bounded reverse paging across the same degenerate pages.
	keys = keys[:0]
	if err := cl.Scan([]byte("p005"), []byte("p014"), true, func(k, v []byte) bool {
		keys = append(keys, string(k))
		return true
	}); err != nil {
		t.Fatalf("bounded reverse Scan: %v", err)
	}
	if len(keys) != 10 || keys[0] != "p014" || keys[9] != "p005" {
		t.Fatalf("bounded reverse scan: %v", keys)
	}
}
