// Package loadgen drives a faspserver with many concurrent pipelined
// connections — the faspbench -serverbench workload and the CI smoke's
// overload phase. It reports acked throughput, typed reject counts, and
// request latency quantiles (p50/p99/p999) from a shared lock-free
// histogram.
package loadgen

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"fasp/internal/obsv"
	"fasp/internal/server/client"
	"fasp/internal/server/wire"
)

// Config shapes one load-generation run.
type Config struct {
	// Addr is the server address.
	Addr string
	// Conns is the concurrent connection count (default 1).
	Conns int
	// Duration bounds the send phase; outstanding responses are drained
	// after it (default 2s).
	Duration time.Duration
	// Pipeline is the requests kept in flight per connection (default 4).
	Pipeline int
	// ValueSize is the PUT value size in bytes (default 64).
	ValueSize int
	// KeySpace is the random key domain size (default 100_000).
	KeySpace int
	// BatchSize > 1 sends BATCH requests of that many puts instead of
	// single PUTs.
	BatchSize int
	// ReadFrac is the GET fraction in [0, 1].
	ReadFrac float64
	// Seed decorrelates workers deterministically (worker i uses Seed+i).
	Seed int64
	// Prefix namespaces the keys.
	Prefix string

	// Retry dials session-bound retrying clients (client.DialRetry): the
	// workers survive injected connection kills and server restarts by
	// reconnecting and replaying unacked requests under the server's dedup
	// window. Policy tunes it (each worker gets its own session id).
	Retry  bool
	Policy client.RetryPolicy
	// UniqueKeys switches the key stream from a random reuse domain to a
	// never-repeating per-worker sequence ("prefix-worker-seq"), making
	// each acked PUT an individually checkable durability obligation for
	// the chaos soak's acked-prefix oracle.
	UniqueKeys bool
	// Record, when set, observes every acked write, called after its OK
	// verdict arrives (batch puts report each acked op). The chaos soak
	// collects the acked set to audit against the recovered store. The
	// slices must not be mutated by the callee; key is freshly allocated,
	// val is the worker's long-lived value buffer.
	Record func(key, val []byte)
}

func (c *Config) fill() {
	if c.Conns <= 0 {
		c.Conns = 1
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.Pipeline <= 0 {
		c.Pipeline = 4
	}
	if c.ValueSize <= 0 {
		c.ValueSize = 64
	}
	if c.KeySpace <= 0 {
		c.KeySpace = 100_000
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 1
	}
	if c.Prefix == "" {
		c.Prefix = "lg"
	}
}

// Result is one run's aggregate outcome. Busy and Shutdown count typed
// protocol-level sheds (the connection survived them); ConnDrops counts
// connections that died mid-run — the overload acceptance criterion is
// Busy > 0 with ConnDrops == 0.
type Result struct {
	Conns     int           `json:"conns"`
	Pipeline  int           `json:"pipeline"`
	BatchSize int           `json:"batch_size"`
	Duration  time.Duration `json:"duration_ns"`

	Requests int64 `json:"requests"`
	OpsAcked int64 `json:"ops_acked"`
	Busy     int64 `json:"busy"`
	Shutdown int64 `json:"shutdown"`
	// Unavail counts requests refused by a degraded shard (typed, like
	// Busy: the server guarantees they were not applied).
	Unavail int64 `json:"unavail"`
	Errors  int64 `json:"errors"`

	DialFailures int64 `json:"dial_failures"`
	ConnDrops    int64 `json:"conn_drops"`
	// Reconnects / Retries aggregate the retrying clients' repair cycles
	// and BUSY/UNAVAIL re-submissions (zero without Config.Retry).
	Reconnects int64 `json:"reconnects"`
	Retries    int64 `json:"retries"`

	ThroughputOps float64 `json:"throughput_ops_per_sec"`

	LatP50NS  int64   `json:"lat_p50_ns"`
	LatP99NS  int64   `json:"lat_p99_ns"`
	LatP999NS int64   `json:"lat_p999_ns"`
	LatMeanNS float64 `json:"lat_mean_ns"`
}

// counters are the run's shared atomics.
type counters struct {
	requests   atomic.Int64
	acked      atomic.Int64
	busy       atomic.Int64
	shutdown   atomic.Int64
	unavail    atomic.Int64
	errors     atomic.Int64
	dialFail   atomic.Int64
	drops      atomic.Int64
	reconnects atomic.Int64
	retries    atomic.Int64
	lat        obsv.Histogram
}

// Run drives the configured workload and blocks until every connection
// drains or dies.
func Run(cfg Config) (Result, error) {
	cfg.fill()
	var c counters
	deadline := time.Now().Add(cfg.Duration)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.Conns; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			worker(cfg, id, deadline, &c)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	h := c.lat.Snapshot()
	res := Result{
		Conns:        cfg.Conns,
		Pipeline:     cfg.Pipeline,
		BatchSize:    cfg.BatchSize,
		Duration:     elapsed,
		Requests:     c.requests.Load(),
		OpsAcked:     c.acked.Load(),
		Busy:         c.busy.Load(),
		Shutdown:     c.shutdown.Load(),
		Unavail:      c.unavail.Load(),
		Errors:       c.errors.Load(),
		DialFailures: c.dialFail.Load(),
		ConnDrops:    c.drops.Load(),
		Reconnects:   c.reconnects.Load(),
		Retries:      c.retries.Load(),
		LatP50NS:     h.Quantile(0.5),
		LatP99NS:     h.Quantile(0.99),
		LatP999NS:    h.Quantile(0.999),
		LatMeanNS:    h.Mean(),
	}
	if s := elapsed.Seconds(); s > 0 {
		res.ThroughputOps = float64(res.OpsAcked) / s
	}
	if cfg.Conns > 0 && res.DialFailures == int64(cfg.Conns) {
		return res, fmt.Errorf("loadgen: all %d dials failed", cfg.Conns)
	}
	return res, nil
}

// slot tracks one in-flight request for latency and op accounting; keys
// holds a write's keys so the ack can be recorded for the chaos oracle.
type slot struct {
	t0   time.Time
	ops  int64
	keys [][]byte
}

func worker(cfg Config, id int, deadline time.Time, c *counters) {
	var cl *client.Client
	var err error
	if cfg.Retry {
		pol := cfg.Policy
		pol.SessionID = 0 // each worker is its own dedup session
		cl, err = client.DialRetry(cfg.Addr, pol)
	} else {
		cl, err = client.Dial(cfg.Addr)
	}
	if err != nil {
		c.dialFail.Add(1)
		return
	}
	defer func() {
		c.reconnects.Add(cl.Reconnects())
		c.retries.Add(cl.Retries())
		cl.Close()
	}()

	rng := rand.New(rand.NewSource(cfg.Seed + int64(id)))
	val := make([]byte, cfg.ValueSize)
	rng.Read(val)
	seq := 0
	key := func() []byte {
		if cfg.UniqueKeys {
			seq++
			return []byte(fmt.Sprintf("%s-%03d-%08d", cfg.Prefix, id, seq))
		}
		return []byte(fmt.Sprintf("%s-%08d", cfg.Prefix, rng.Intn(cfg.KeySpace)))
	}
	ops := make([]wire.BatchOp, cfg.BatchSize)

	// Windowed pipeline: keep cfg.Pipeline requests in flight, receive
	// one, send one. After the deadline, drain the window.
	var window []slot
	enqueue := func() {
		s := slot{t0: time.Now(), ops: 1}
		switch {
		case cfg.ReadFrac > 0 && rng.Float64() < cfg.ReadFrac:
			cl.QueueGet(key())
		case cfg.BatchSize > 1:
			for i := range ops {
				k := key()
				ops[i] = wire.BatchOp{Kind: wire.KindPut, Key: k, Val: val}
				if cfg.Record != nil {
					s.keys = append(s.keys, k)
				}
			}
			cl.QueueBatch(ops)
			s.ops = int64(cfg.BatchSize)
		default:
			k := key()
			cl.QueuePut(k, val)
			if cfg.Record != nil {
				s.keys = append(s.keys, k)
			}
		}
		window = append(window, s)
		c.requests.Add(1)
	}
	recvOne := func() bool {
		code, payload, err := cl.Recv()
		if err != nil {
			c.drops.Add(1)
			return false
		}
		s := window[0]
		copy(window, window[1:])
		window = window[:len(window)-1]
		c.lat.Observe(time.Since(s.t0).Nanoseconds())
		switch code {
		case wire.CodeOK:
			if s.ops > 1 {
				// BATCH reply: count per-op verdicts.
				if codes, perr := wire.ParseBatchReply(payload, nil); perr == nil {
					okN := int64(0)
					for i, bc := range codes {
						if bc == wire.CodeOK {
							okN++
							if cfg.Record != nil && i < len(s.keys) {
								cfg.Record(s.keys[i], val)
							}
						}
					}
					c.acked.Add(okN)
				} else {
					c.errors.Add(1)
				}
				return true
			}
			c.acked.Add(1)
			if cfg.Record != nil && len(s.keys) > 0 {
				cfg.Record(s.keys[0], val)
			}
		case wire.CodeNotFound:
			c.acked.Add(1)
		case wire.CodeBusy:
			c.busy.Add(1)
		case wire.CodeShutdown:
			c.shutdown.Add(1)
		case wire.CodeUnavail:
			c.unavail.Add(1)
		default:
			c.errors.Add(1)
		}
		return true
	}

	for time.Now().Before(deadline) {
		for len(window) < cfg.Pipeline {
			enqueue()
		}
		if err := cl.Flush(); err != nil {
			c.drops.Add(1)
			return
		}
		// Drain half the window before refilling, so requests leave in
		// multi-frame bursts (one flush each) instead of one at a time —
		// the server coalesces each burst into one engine submission.
		for len(window) > cfg.Pipeline/2 {
			if !recvOne() {
				return
			}
		}
	}
	for len(window) > 0 {
		if !recvOne() {
			return
		}
	}
}
