package server

import (
	"runtime"
	"testing"

	"fasp"
	"fasp/internal/server/wire"
)

// Steady-state allocation pin for the server data plane.
//
// testing.AllocsPerRun only counts the calling goroutine, so it cannot see
// the reader/pipeline/writer goroutines a request crosses. This pin
// measures the whole process instead: runtime.MemStats.Mallocs delta
// across a long warm pipelined run, divided by round trips.
//
// Budget: 12 mallocs per PUT+GET round trip, measured ~7 on linux/amd64
// (engine commit-path bookkeeping — WAL records, page versions — not the
// server layer, which is pooled end to end: frame decode aliases the conn
// buffer, write-set partitioning reuses conn scratch, the per-shard
// submission is pooled, and the GET fast path reads into a reusable
// buffer). The headroom covers GC timing and runtime noise, not new
// per-request allocations: a steady-state alloc added to the conn or
// pipeline hot path shows up here as several whole mallocs per op and
// fails the pin.
const allocBudgetPerRoundTrip = 12

// measureRoundTripAllocs runs warm pipelined PUT+GET round trips against
// addr and returns the process-wide mallocs per round trip.
func measureRoundTripAllocs(t *testing.T, addr string) float64 {
	t.Helper()
	cl := dial(t, addr)

	key := []byte("alloc-pin-key-000000")
	val := []byte("alloc-pin-value-0123456789abcdef")
	roundTrips := func(n int) {
		const window = 64 // keep the pipe full but bounded
		sent, recvd := 0, 0
		for recvd < n {
			for sent < n && sent-recvd < window {
				// Rotate keys across shards so every pipe stays warm.
				key[len(key)-1] = byte('a' + sent%16)
				cl.QueuePut(key, val)
				cl.QueueGet(key)
				sent++
			}
			if err := cl.Flush(); err != nil {
				t.Fatalf("flush: %v", err)
			}
			code, _, err := cl.Recv() // PUT ack
			if err != nil || code != wire.CodeOK {
				t.Fatalf("put ack: %v %v", code, err)
			}
			code, _, err = cl.Recv() // GET value
			if err != nil || code != wire.CodeOK {
				t.Fatalf("get: %v %v", code, err)
			}
			recvd++
		}
	}

	// Warm every pooled buffer: conn arena, pend/ops/scratch slices,
	// per-shard submission pool, engine mailboxes, client frame buffer.
	roundTrips(2000)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	const n = 8000
	roundTrips(n)
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(n)
}

func TestServerRoundTripAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc pin needs a long steady-state run")
	}
	_, _, addr := start(t, fasp.Options{Shards: 4}, Config{})
	perOp := measureRoundTripAllocs(t, addr)
	t.Logf("pipelined: %.2f mallocs per PUT+GET round trip (budget %d)", perOp, allocBudgetPerRoundTrip)
	if perOp > allocBudgetPerRoundTrip {
		t.Fatalf("alloc regression: %.2f mallocs per round trip exceeds budget %d — a per-request allocation crept into the data plane", perOp, allocBudgetPerRoundTrip)
	}
}

// TestServerRoundTripAllocsGlobal pins the fallback arm at its own,
// higher budget: the global batcher keeps the legacy copy-in submission
// (the engine round is flattened and re-copied per commit), measured ~15
// mallocs per round trip — the gap versus the pipelined arm's ~7 is
// exactly what the zero-copy per-shard path removed. The pin keeps the
// A/B arm from regressing further, and the delta is the documented cost
// of running the fallback.
const allocBudgetPerRoundTripGlobal = 20

func TestServerRoundTripAllocsGlobal(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc pin needs a long steady-state run")
	}
	_, _, addr := start(t, fasp.Options{Shards: 4}, Config{GlobalBatcher: true})
	perOp := measureRoundTripAllocs(t, addr)
	t.Logf("global batcher: %.2f mallocs per PUT+GET round trip (budget %d)", perOp, allocBudgetPerRoundTripGlobal)
	if perOp > allocBudgetPerRoundTripGlobal {
		t.Fatalf("alloc regression: %.2f mallocs per round trip exceeds budget %d", perOp, allocBudgetPerRoundTripGlobal)
	}
}
