package server

import (
	"runtime"
	"sync/atomic"

	"fasp"
)

// submission is one connection's flushed write-set and its completion
// join. Each conn owns exactly one submission value and blocks on done
// until every verdict is in, so the buffers are safely reused per round.
//
// Under the per-shard pipelines (the default), ops/errs are laid out
// shard-major and pending counts the shards still committing: each pipe
// decrements it as its slice of the write-set commits, and the last one
// signals done — the connection is acked as soon as *its* shards
// complete, not when any global round does. Under Config.GlobalBatcher,
// ops/errs are in request order, pending stays 0 and the single batcher
// loop signals done directly.
type submission struct {
	ops     []fasp.Op
	errs    []error
	done    chan struct{}
	pending atomic.Int32
}

// shardSub is the slice of one connection's write-set bound for a single
// shard: a view into the owning submission's shard-major ops/errs. Each
// conn owns one shardSub per shard, reused across flushes — a value is in
// flight only while its conn blocks on the submission join, so there is
// never concurrent reuse.
type shardSub struct {
	si   int
	ops  []fasp.Op
	errs []error
	sub  *submission
}

// runPipe is one shard's commit pipeline: accumulate a round of shardSubs
// from the pipe channel, flatten, and commit it through the engine's
// blocking per-shard entry point. Accumulation of round k+1 overlaps the
// commit of round k naturally — while SubmitShard blocks in the shard's
// writer, new sub-submissions queue on the pipe channel and are drained
// into the next round the moment the commit returns — so the device-side
// pipeline stays full without any cross-shard barrier: a slow shard stalls
// only the connections that touched it.
//
// The accumulation spin (see Config.BatchSpin) mirrors the global
// batcher's: a channel send readies the receiver ahead of the run queue,
// so without a yield the first round after an idle period would commit at
// width ~1 even with many runnable connections about to flush.
func (s *Server) runPipe(si int) {
	defer s.pipeWG.Done()
	ch := s.pipes[si]
	var (
		round []*shardSub
		ops   []fasp.Op
		errs  []error
	)
	drain := func(n int) int {
		for n < s.cfg.MaxCoalesce {
			select {
			case ss := <-ch:
				round = append(round, ss)
				n += len(ss.ops)
			default:
				return n
			}
		}
		return n
	}
	for {
		select {
		case ss := <-ch:
			round = append(round[:0], ss)
			n := len(ss.ops)
			for spin := 0; spin < s.spins && n < s.cfg.MaxCoalesce; spin++ {
				runtime.Gosched()
				n = drain(n)
			}
			n = drain(n)
			s.commitShardRound(si, round, &ops, &errs)
		case <-s.batchQuit:
			// Serve any straggling sub-submissions, then exit. Shutdown
			// closes batchQuit only after every connection reader has
			// exited, so the channel can no longer grow.
			for {
				select {
				case ss := <-ch:
					round = append(round[:0], ss)
					s.commitShardRound(si, round, &ops, &errs)
				default:
					return
				}
			}
		}
	}
}

// commitShardRound flattens one shard's round, commits it as one blocking
// per-shard engine submission (the engine chunks oversized rounds at
// MaxBatch internally, so a deep backlog still commits at full group
// width), scatters the verdicts back, and resolves each submission whose
// last shard this was. The single-sub round skips the flatten entirely
// and hands the connection's slices straight to the engine — the
// steady-state zero-copy path.
func (s *Server) commitShardRound(si int, round []*shardSub, ops *[]fasp.Op, errs *[]error) {
	if len(round) == 1 {
		ss := round[0]
		s.kv.SubmitShard(si, ss.ops, ss.errs)
		s.met.coalesce.Observe(int64(len(ss.ops)))
		s.met.shardCoalesce.Observe(int64(len(ss.ops)))
		s.met.pipeOccupancy.Observe(1)
		s.resolve(ss)
		return
	}
	flat := (*ops)[:0]
	for _, ss := range round {
		flat = append(flat, ss.ops...)
	}
	ferrs := (*errs)[:0]
	for range flat {
		ferrs = append(ferrs, nil)
	}
	s.kv.SubmitShard(si, flat, ferrs)
	s.met.coalesce.Observe(int64(len(flat)))
	s.met.shardCoalesce.Observe(int64(len(flat)))
	s.met.pipeOccupancy.Observe(int64(len(round)))
	k := 0
	for _, ss := range round {
		copy(ss.errs, ferrs[k:k+len(ss.ops)])
		k += len(ss.ops)
		s.resolve(ss)
	}
	*ops, *errs = flat, ferrs
}

// resolve signals a sub-submission's completion join: the submission is
// done when its last outstanding shard resolves.
func (s *Server) resolve(ss *shardSub) {
	if ss.sub.pending.Add(-1) == 0 {
		ss.sub.done <- struct{}{}
	}
}

// commitSharded submits a connection's partitioned write-set to the
// per-shard pipelines and blocks until every involved shard's verdicts
// are in. subs holds the per-shard views (only shards with ops are sent);
// sub.pending was set by the caller. If the pipelines have already been
// stopped (a straggler racing Shutdown), the remaining sub-submissions go
// to the engine directly.
func (s *Server) commitSharded(sub *submission, subs []*shardSub) {
	for _, ss := range subs {
		select {
		case s.pipes[ss.si] <- ss:
		case <-s.batchQuit:
			s.kv.SubmitShard(ss.si, ss.ops, ss.errs)
			s.resolve(ss)
		}
	}
	<-sub.done
}

// runBatcher is the Config.GlobalBatcher fallback: the PR 7 single
// cross-connection group-commit loop, kept for A/B comparison against the
// per-shard pipelines. Reader goroutines enqueue their write-sets here,
// and the batcher combines everything enqueued into one KV.DoBatch — one
// engine submission fanned over every shard, with an all-shards barrier
// per round: accumulation never overlaps commit, and the slowest shard in
// a round stalls every connection in it.
//
// After the first submission of a round arrives, the batcher yields the
// processor (Config.BatchSpin times, default 2) before committing. The
// yields matter: a channel send readies the receiver ahead of the run
// queue, so without them the batcher would wake after a single enqueue
// and commit width would collapse to ~1 under any load. Yielding lets
// every runnable connection flush its write-set into the round first —
// under load the round grows toward MaxCoalesce, while an idle server
// pays only the configured yields of extra latency.
func (s *Server) runBatcher() {
	defer s.pipeWG.Done()
	var (
		round []*submission
		ops   []fasp.Op
	)
	drain := func(n int) int {
		for n < s.cfg.MaxCoalesce {
			select {
			case sub := <-s.batchCh:
				round = append(round, sub)
				n += len(sub.ops)
			default:
				return n
			}
		}
		return n
	}
	for {
		select {
		case sub := <-s.batchCh:
			round = append(round[:0], sub)
			n := len(sub.ops)
			for spin := 0; spin < s.spins && n < s.cfg.MaxCoalesce; spin++ {
				runtime.Gosched()
				n = drain(n)
			}
			s.commitRound(round, &ops)
		case <-s.batchQuit:
			// Serve any straggling submissions, then exit. Shutdown closes
			// batchQuit only after every connection reader has exited, so
			// the channel can no longer grow.
			for {
				select {
				case sub := <-s.batchCh:
					round = append(round[:0], sub)
					s.commitRound(round, &ops)
				default:
					return
				}
			}
		}
	}
}

// commitRound flattens a round's submissions into one engine batch,
// commits, and hands each connection its verdict slice. Around the commit
// it samples the engine's per-shard simulated clocks and accumulates the
// round's barrier cost — the busiest shard's simulated time for this
// round — into the barrier counter: rounds are strictly serial here, so
// the sum over rounds of the per-round maximum is the simulated makespan
// this architecture imposes, which is what the A/B benchmark charges the
// fallback arm.
func (s *Server) commitRound(round []*submission, ops *[]fasp.Op) {
	flat := (*ops)[:0]
	for _, sub := range round {
		flat = append(flat, sub.ops...)
	}
	s.clk0 = s.kv.SimClocks(s.clk0)
	errs := s.kv.DoBatch(flat)
	s.clk1 = s.kv.SimClocks(s.clk1)
	var barrier int64
	for i := range s.clk1 {
		if d := s.clk1[i] - s.clk0[i]; d > barrier {
			barrier = d
		}
	}
	s.met.barrierSimNS.Add(barrier)
	s.met.coalesce.Observe(int64(len(flat)))
	k := 0
	for _, sub := range round {
		copy(sub.errs, errs[k:k+len(sub.ops)])
		k += len(sub.ops)
		sub.done <- struct{}{}
	}
	*ops = flat
}

// commit submits one connection's write-set to the global group-commit
// loop and blocks until its verdicts are filled in. If the batcher has
// already been stopped (a straggler round racing Shutdown), the write-set
// goes to the engine directly — the engine's own Close contract then
// decides.
func (s *Server) commit(sub *submission) {
	select {
	case s.batchCh <- sub:
		<-sub.done
	case <-s.batchQuit:
		copy(sub.errs, s.kv.DoBatch(sub.ops))
	}
}
