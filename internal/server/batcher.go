package server

import (
	"runtime"

	"fasp"
)

// submission is one connection's flushed write-set: ops to commit, a
// parallel error slice the batcher fills, and a reusable completion
// channel. Each conn owns exactly one submission value and blocks on done
// until its verdicts are in, so the buffers are safely reused per round.
type submission struct {
	ops  []fasp.Op
	errs []error
	done chan struct{}
}

// runBatcher is the server's cross-connection group-commit loop. Reader
// goroutines never call the engine directly for writes: they enqueue
// their write-sets here, and the batcher combines everything enqueued
// into one KV.DoBatch — one engine submission, one set of per-shard
// group commits, serving many connections.
//
// After the first submission of a round arrives, the batcher yields the
// processor a couple of times (runtime.Gosched) before committing. The
// yields matter: a channel send readies the receiver ahead of the run
// queue, so without them the batcher would wake after a single enqueue
// and commit width would collapse to ~1 under any load. Yielding lets
// every runnable connection flush its write-set into the round first —
// under load the round grows toward MaxCoalesce, while an idle server
// pays only two scheduler yields of extra latency.
func (s *Server) runBatcher() {
	defer close(s.batchDone)
	var (
		round []*submission
		ops   []fasp.Op
	)
	drain := func(n int) int {
		for n < s.cfg.MaxCoalesce {
			select {
			case sub := <-s.batchCh:
				round = append(round, sub)
				n += len(sub.ops)
			default:
				return n
			}
		}
		return n
	}
	for {
		select {
		case sub := <-s.batchCh:
			round = append(round[:0], sub)
			n := len(sub.ops)
			for spin := 0; spin < 2 && n < s.cfg.MaxCoalesce; spin++ {
				runtime.Gosched()
				n = drain(n)
			}
			s.commitRound(round, &ops)
		case <-s.batchQuit:
			// Serve any straggling submissions, then exit. Shutdown closes
			// batchQuit only after every connection reader has exited, so
			// the channel can no longer grow.
			for {
				select {
				case sub := <-s.batchCh:
					round = append(round[:0], sub)
					s.commitRound(round, &ops)
				default:
					return
				}
			}
		}
	}
}

// commitRound flattens a round's submissions into one engine batch,
// commits, and hands each connection its verdict slice.
func (s *Server) commitRound(round []*submission, ops *[]fasp.Op) {
	flat := (*ops)[:0]
	for _, sub := range round {
		flat = append(flat, sub.ops...)
	}
	errs := s.kv.DoBatch(flat)
	s.met.coalesce.Observe(int64(len(flat)))
	k := 0
	for _, sub := range round {
		copy(sub.errs, errs[k:k+len(sub.ops)])
		k += len(sub.ops)
		sub.done <- struct{}{}
	}
	*ops = flat
}

// commit submits one connection's write-set to the group-commit loop and
// blocks until its verdicts are filled in. If the batcher has already
// been stopped (a straggler round racing Shutdown), the write-set goes to
// the engine directly — the engine's own Close contract then decides.
func (s *Server) commit(sub *submission) {
	select {
	case s.batchCh <- sub:
		<-sub.done
	case <-s.batchQuit:
		copy(sub.errs, s.kv.DoBatch(sub.ops))
	}
}
