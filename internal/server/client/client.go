// Package client is the Go client for the faspserver wire protocol. It is
// the single client implementation in the tree — the load generator, the
// faspdb -connect shell, and the tests all speak through it — and it
// encodes frames exclusively via internal/server/wire, so the protocol
// exists in one place.
//
// The protocol is strictly pipelined: responses arrive in request order.
// The synchronous methods (Get/Put/Del/...) send one request and wait for
// its response; the Queue*/Flush/Recv API keeps many requests in flight on
// one connection, which is where the server's cross-connection group
// commit pays off. A Client is not safe for concurrent use; open one per
// goroutine (they are cheap — one socket and two buffers).
package client

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"fasp/internal/server/wire"
)

// NotFound re-exports the GET-miss sentinel semantics: Get returns
// (nil, false, nil) on a miss, never an error.

// ErrPipeline reports Recv without a queued request.
var ErrPipeline = errors.New("client: Recv with no request in flight")

// Client is one connection to a faspserver.
type Client struct {
	c  net.Conn
	br *bufio.Reader
	bw *bufio.Writer

	out      []byte // queued request frames
	buf      []byte // response decode buffer
	queued   int    // requests encoded but not flushed
	inflight int    // requests flushed but not received
	codes    []wire.Code
	maxFrame int
}

// Dial connects to a faspserver at addr.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 10*time.Second)
}

// DialTimeout connects with a dial timeout.
func DialTimeout(addr string, d time.Duration) (*Client, error) {
	c, err := net.DialTimeout("tcp", addr, d)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return &Client{
		c:        c,
		br:       bufio.NewReaderSize(c, 64<<10),
		bw:       bufio.NewWriterSize(c, 64<<10),
		maxFrame: wire.DefaultMaxFrame,
	}, nil
}

// Close closes the connection.
func (cl *Client) Close() error { return cl.c.Close() }

// --- Pipelined API ---------------------------------------------------------

// QueueGet enqueues a GET; its response arrives at the matching Recv.
func (cl *Client) QueueGet(key []byte) { cl.out = wire.AppendGet(cl.out, key); cl.queued++ }

// QueuePut enqueues a PUT.
func (cl *Client) QueuePut(key, val []byte) { cl.out = wire.AppendPut(cl.out, key, val); cl.queued++ }

// QueueDel enqueues a DEL.
func (cl *Client) QueueDel(key []byte) { cl.out = wire.AppendDel(cl.out, key); cl.queued++ }

// QueueBatch enqueues a BATCH of ops.
func (cl *Client) QueueBatch(ops []wire.BatchOp) { cl.out = wire.AppendBatch(cl.out, ops); cl.queued++ }

// QueuePing enqueues a PING.
func (cl *Client) QueuePing() { cl.out = wire.AppendEmptyReq(cl.out, wire.OpPing); cl.queued++ }

// Pending reports requests awaiting their response (flushed or not).
func (cl *Client) Pending() int { return cl.queued + cl.inflight }

// Flush writes the queued requests to the socket.
func (cl *Client) Flush() error {
	if len(cl.out) > 0 {
		if _, err := cl.bw.Write(cl.out); err != nil {
			return err
		}
		cl.out = cl.out[:0]
	}
	cl.inflight += cl.queued
	cl.queued = 0
	return cl.bw.Flush()
}

// Recv reads the next pipelined response, in request order. It returns
// the status code and the raw payload (valid until the next Recv). Framing
// failures and server CodeProto responses are returned as errors; engine
// error codes are NOT converted here — use Err, or the synchronous
// methods.
func (cl *Client) Recv() (wire.Code, []byte, error) {
	if cl.Pending() == 0 {
		return 0, nil, ErrPipeline
	}
	if cl.queued > 0 {
		if err := cl.Flush(); err != nil {
			return 0, nil, err
		}
	}
	op, payload, buf, err := wire.ReadFrame(cl.br, cl.maxFrame, cl.buf)
	cl.buf = buf
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	cl.inflight--
	return wire.Code(op), payload, nil
}

// Err converts a Recv result into the typed client error for non-OK
// codes (nil for CodeOK and CodeNotFound).
func Err(code wire.Code, payload []byte) error {
	if code == wire.CodeOK || code == wire.CodeNotFound {
		return nil
	}
	shard, msg := wire.ParseErr(payload)
	return code.Err(shard, msg)
}

// --- Synchronous API -------------------------------------------------------

// Get returns the value under key; a miss is (nil, false, nil). The value
// is copied and remains valid.
func (cl *Client) Get(key []byte) ([]byte, bool, error) {
	cl.QueueGet(key)
	code, payload, err := cl.Recv()
	if err != nil {
		return nil, false, err
	}
	switch code {
	case wire.CodeOK:
		return append([]byte(nil), payload...), true, nil
	case wire.CodeNotFound:
		return nil, false, nil
	}
	return nil, false, Err(code, payload)
}

// Put inserts or replaces key. The returned error is nil only if the
// write is durably committed on the server.
func (cl *Client) Put(key, val []byte) error {
	cl.QueuePut(key, val)
	return cl.recvAck()
}

// Del removes key (idempotent at the protocol level only when the key
// exists; an absent key is ErrRemoteKeyAbsent).
func (cl *Client) Del(key []byte) error {
	cl.QueueDel(key)
	return cl.recvAck()
}

// Ping round-trips an empty frame.
func (cl *Client) Ping() error {
	cl.QueuePing()
	return cl.recvAck()
}

func (cl *Client) recvAck() error {
	code, payload, err := cl.Recv()
	if err != nil {
		return err
	}
	return Err(code, payload)
}

// Batch applies ops as one request and returns per-op codes aligned with
// ops (codes is reused when it has capacity). A request-level failure
// (BUSY, SHUTDOWN, UNAVAIL) is returned as the error with nil codes.
func (cl *Client) Batch(ops []wire.BatchOp) ([]wire.Code, error) {
	cl.QueueBatch(ops)
	code, payload, err := cl.Recv()
	if err != nil {
		return nil, err
	}
	if code != wire.CodeOK {
		return nil, Err(code, payload)
	}
	cl.codes, err = wire.ParseBatchReply(payload, cl.codes)
	return cl.codes, err
}

// Scan streams [lo, hi] (nil bounds open) in order, calling fn until it
// returns false or the range is exhausted; reverse walks descending. It
// pages through the server's reply limit transparently, resuming past the
// last received key. Key/value slices passed to fn are valid only during
// the call.
func (cl *Client) Scan(lo, hi []byte, reverse bool, fn func(k, v []byte) bool) error {
	curLo, curHi := lo, hi
	exclHi := false
	var last, bound []byte
	for {
		cl.out = wire.AppendScan(cl.out, curLo, curHi, reverse, exclHi, 0)
		cl.queued++
		code, payload, err := cl.Recv()
		if err != nil {
			return err
		}
		if code != wire.CodeOK {
			return Err(code, payload)
		}
		stopped := false
		progressed := false
		more, err := wire.ParseScanReply(payload, func(k, v []byte) bool {
			last = append(last[:0], k...)
			progressed = true
			if !fn(k, v) {
				stopped = true
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
		if stopped || !more {
			return nil
		}
		if !progressed {
			// The resume bounds exclude everything already delivered, so a
			// truncated page with zero fresh pairs means paging cannot make
			// progress — fail loudly instead of silently dropping the rest
			// of the range.
			return fmt.Errorf("client: scan stalled: truncated page delivered no new pairs")
		}
		// Resume past the last delivered key: forward bounds get the byte
		// successor last+0x00; reverse bounds re-send last as an exclusive
		// hi (byte strings have no closed-form predecessor, so the server
		// steps past the boundary key itself). bound is the client's own
		// buffer — never the caller's lo/hi backing array.
		if !reverse {
			bound = append(append(bound[:0], last...), 0)
			curLo = bound
		} else {
			bound = append(bound[:0], last...)
			curHi = bound
			exclHi = true
		}
	}
}

// Count returns the server's record count.
func (cl *Client) Count() (uint64, error) {
	cl.out = wire.AppendEmptyReq(cl.out, wire.OpCount)
	cl.queued++
	code, payload, err := cl.Recv()
	if err != nil {
		return 0, err
	}
	if code != wire.CodeOK {
		return 0, Err(code, payload)
	}
	return wire.ParseCount(payload)
}

// Stats returns the server's STATS JSON payload.
func (cl *Client) Stats() ([]byte, error) {
	cl.out = wire.AppendEmptyReq(cl.out, wire.OpStats)
	cl.queued++
	code, payload, err := cl.Recv()
	if err != nil {
		return nil, err
	}
	if code != wire.CodeOK {
		return nil, Err(code, payload)
	}
	return append([]byte(nil), payload...), nil
}
