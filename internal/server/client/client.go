// Package client is the Go client for the faspserver wire protocol. It is
// the single client implementation in the tree — the load generator, the
// faspdb -connect shell, and the tests all speak through it — and it
// encodes frames exclusively via internal/server/wire, so the protocol
// exists in one place.
//
// The protocol is strictly pipelined: responses arrive in request order.
// The synchronous methods (Get/Put/Del/...) send one request and wait for
// its response; the Queue*/Flush/Recv API keeps many requests in flight on
// one connection, which is where the server's cross-connection group
// commit pays off. A Client is not safe for concurrent use; open one per
// goroutine (they are cheap — one socket and two buffers).
//
// Dial returns a plain client that surfaces every fault; DialRetry (see
// retry.go) returns one that reconnects, replays unacked requests under
// the server's dedup window, and retries BUSY/UNAVAIL refusals.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"fasp/internal/server/wire"
)

// NotFound re-exports the GET-miss sentinel semantics: Get returns
// (nil, false, nil) on a miss, never an error.

// ErrPipeline reports Recv without a queued request.
var ErrPipeline = errors.New("client: Recv with no request in flight")

// Client is one connection to a faspserver.
type Client struct {
	c  net.Conn
	br *bufio.Reader
	bw *bufio.Writer

	out      []byte // queued request frames
	buf      []byte // response decode buffer
	queued   int    // requests encoded but not flushed
	inflight int    // requests flushed but not received
	codes    []wire.Code
	maxFrame int

	// retry is non-nil for DialRetry clients; lastRetryMS caches the most
	// recent error payload's retry-after hint for the backoff loop.
	retry       *retryState
	lastRetryMS uint32
}

// Dial connects to a faspserver at addr.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 10*time.Second)
}

// DialTimeout connects with a dial timeout.
func DialTimeout(addr string, d time.Duration) (*Client, error) {
	c, err := net.DialTimeout("tcp", addr, d)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return &Client{
		c:        c,
		br:       bufio.NewReaderSize(c, 64<<10),
		bw:       bufio.NewWriterSize(c, 64<<10),
		maxFrame: wire.DefaultMaxFrame,
	}, nil
}

// Close closes the connection.
func (cl *Client) Close() error { return cl.c.Close() }

// --- Pipelined API ---------------------------------------------------------

// QueueGet enqueues a GET; its response arrives at the matching Recv.
func (cl *Client) QueueGet(key []byte) {
	mark := len(cl.out)
	cl.out = wire.AppendGet(cl.out, key)
	cl.queued++
	cl.track(mark)
}

// QueuePut enqueues a PUT. Retry clients tag it with a fresh sequence
// token so a reconnect replay cannot double-apply it.
func (cl *Client) QueuePut(key, val []byte) {
	mark := len(cl.out)
	if cl.retry != nil {
		cl.retry.nextSeq++
		cl.out = wire.AppendPutSeq(cl.out, cl.retry.nextSeq, key, val)
	} else {
		cl.out = wire.AppendPut(cl.out, key, val)
	}
	cl.queued++
	cl.track(mark)
}

// QueueDel enqueues a DEL (sequence-tagged for retry clients).
func (cl *Client) QueueDel(key []byte) {
	mark := len(cl.out)
	if cl.retry != nil {
		cl.retry.nextSeq++
		cl.out = wire.AppendDelSeq(cl.out, cl.retry.nextSeq, key)
	} else {
		cl.out = wire.AppendDel(cl.out, key)
	}
	cl.queued++
	cl.track(mark)
}

// QueueBatch enqueues a BATCH of ops (sequence-tagged for retry clients).
func (cl *Client) QueueBatch(ops []wire.BatchOp) {
	mark := len(cl.out)
	if cl.retry != nil {
		cl.retry.nextSeq++
		cl.out = wire.AppendBatchSeq(cl.out, cl.retry.nextSeq, ops)
	} else {
		cl.out = wire.AppendBatch(cl.out, ops)
	}
	cl.queued++
	cl.track(mark)
}

// QueuePing enqueues a PING.
func (cl *Client) QueuePing() {
	mark := len(cl.out)
	cl.out = wire.AppendEmptyReq(cl.out, wire.OpPing)
	cl.queued++
	cl.track(mark)
}

// Pending reports requests awaiting their response (flushed or not).
func (cl *Client) Pending() int { return cl.queued + cl.inflight }

// Flush writes the queued requests to the socket. A retry client swallows
// write failures here: the frames are retained in the replay set, and the
// next Recv repairs the connection and re-sends them.
func (cl *Client) Flush() error {
	if len(cl.out) > 0 {
		if _, err := cl.bw.Write(cl.out); err != nil && cl.retry == nil {
			return err
		}
		cl.out = cl.out[:0]
	}
	cl.inflight += cl.queued
	cl.queued = 0
	if err := cl.bw.Flush(); err != nil && cl.retry == nil {
		return err
	}
	return nil
}

// Recv reads the next pipelined response, in request order. It returns
// the status code and the raw payload (valid until the next Recv). Framing
// failures and server CodeProto responses are returned as errors; engine
// error codes are NOT converted here — use Err, or the synchronous
// methods.
func (cl *Client) Recv() (wire.Code, []byte, error) {
	if cl.Pending() == 0 {
		return 0, nil, ErrPipeline
	}
	if cl.queued > 0 {
		if err := cl.Flush(); err != nil {
			return 0, nil, err
		}
	}
	for {
		op, payload, buf, err := wire.ReadFrame(cl.br, cl.maxFrame, cl.buf)
		cl.buf = buf
		if err == nil {
			if wire.Code(op) == wire.CodeTimeout && cl.retry != nil {
				// An idle-deadline notice, not a verdict for any request —
				// the server is closing the socket. Repair and replay.
				if rerr := cl.reconnect(); rerr != nil {
					return 0, nil, rerr
				}
				continue
			}
			cl.inflight--
			cl.pop()
			return wire.Code(op), payload, nil
		}
		if cl.retry == nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return 0, nil, err
		}
		if rerr := cl.reconnect(); rerr != nil {
			return 0, nil, rerr
		}
	}
}

// Err converts a Recv result into the typed client error for non-OK
// codes (nil for CodeOK and CodeNotFound).
func Err(code wire.Code, payload []byte) error {
	if code == wire.CodeOK || code == wire.CodeNotFound {
		return nil
	}
	shard, _, msg := wire.ParseErr(payload)
	return code.Err(shard, msg)
}

// RetryAfter extracts the server's retry-after hint (milliseconds) from a
// non-OK response payload; 0 when the server offered none.
func RetryAfter(payload []byte) uint32 {
	_, ms, _ := wire.ParseErr(payload)
	return ms
}

// errOf is Err plus hint capture: the retry loops read cl.lastRetryMS to
// honour the server's retry-after suggestion.
func (cl *Client) errOf(code wire.Code, payload []byte) error {
	if code == wire.CodeOK || code == wire.CodeNotFound {
		cl.lastRetryMS = 0
		return nil
	}
	shard, retryMS, msg := wire.ParseErr(payload)
	cl.lastRetryMS = retryMS
	return code.Err(shard, msg)
}

func isCode(err, sentinel error) bool { return errors.Is(err, sentinel) }

// --- Synchronous API -------------------------------------------------------

// Get returns the value under key; a miss is (nil, false, nil). The value
// is copied and remains valid.
func (cl *Client) Get(key []byte) ([]byte, bool, error) {
	for attempt := 0; ; attempt++ {
		cl.QueueGet(key)
		code, payload, err := cl.Recv()
		if err != nil {
			return nil, false, err
		}
		switch code {
		case wire.CodeOK:
			return append([]byte(nil), payload...), true, nil
		case wire.CodeNotFound:
			return nil, false, nil
		}
		if err := cl.errOf(code, payload); !cl.shouldRetry(err, attempt) {
			return nil, false, err
		}
	}
}

// Put inserts or replaces key. The returned error is nil only if the
// write is durably committed on the server.
func (cl *Client) Put(key, val []byte) error {
	for attempt := 0; ; attempt++ {
		cl.QueuePut(key, val)
		if err := cl.recvAck(); !cl.shouldRetry(err, attempt) {
			return err
		}
	}
}

// Del removes key (idempotent at the protocol level only when the key
// exists; an absent key is ErrRemoteKeyAbsent).
func (cl *Client) Del(key []byte) error {
	for attempt := 0; ; attempt++ {
		cl.QueueDel(key)
		if err := cl.recvAck(); !cl.shouldRetry(err, attempt) {
			return err
		}
	}
}

// Ping round-trips an empty frame.
func (cl *Client) Ping() error {
	for attempt := 0; ; attempt++ {
		cl.QueuePing()
		if err := cl.recvAck(); !cl.shouldRetry(err, attempt) {
			return err
		}
	}
}

func (cl *Client) recvAck() error {
	code, payload, err := cl.Recv()
	if err != nil {
		return err
	}
	return cl.errOf(code, payload)
}

// Batch applies ops as one request and returns per-op codes aligned with
// ops (codes is reused when it has capacity). A request-level failure
// (BUSY, SHUTDOWN, UNAVAIL) is returned as the error with nil codes.
// Retry clients re-submit refused batches with a fresh sequence token —
// the server cancels a refused batch's token, so this never double-applies.
func (cl *Client) Batch(ops []wire.BatchOp) ([]wire.Code, error) {
	for attempt := 0; ; attempt++ {
		cl.QueueBatch(ops)
		code, payload, err := cl.Recv()
		if err != nil {
			return nil, err
		}
		if code == wire.CodeOK {
			cl.codes, err = wire.ParseBatchReply(payload, cl.codes)
			return cl.codes, err
		}
		if err := cl.errOf(code, payload); !cl.shouldRetry(err, attempt) {
			return nil, err
		}
	}
}

// Scan streams [lo, hi] (nil bounds open) in order, calling fn until it
// returns false or the range is exhausted; reverse walks descending. It
// pages through the server's reply limit transparently, resuming past the
// last received key. Key/value slices passed to fn are valid only during
// the call.
func (cl *Client) Scan(lo, hi []byte, reverse bool, fn func(k, v []byte) bool) error {
	curLo, curHi := lo, hi
	exclHi := false
	attempt := 0
	var last, bound []byte
	for {
		mark := len(cl.out)
		cl.out = wire.AppendScan(cl.out, curLo, curHi, reverse, exclHi, 0)
		cl.queued++
		cl.track(mark)
		code, payload, err := cl.Recv()
		if err != nil {
			return err
		}
		if code != wire.CodeOK {
			// Each page is a standalone request with explicit bounds, so a
			// shed page can be re-asked without disturbing the walk.
			if err := cl.errOf(code, payload); !cl.shouldRetry(err, attempt) {
				return err
			}
			attempt++
			continue
		}
		attempt = 0
		stopped := false
		progressed := false
		more, err := wire.ParseScanReply(payload, func(k, v []byte) bool {
			last = append(last[:0], k...)
			progressed = true
			if !fn(k, v) {
				stopped = true
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
		if stopped || !more {
			return nil
		}
		if !progressed {
			// The resume bounds exclude everything already delivered, so a
			// truncated page with zero fresh pairs means paging cannot make
			// progress — fail loudly instead of silently dropping the rest
			// of the range.
			return fmt.Errorf("client: scan stalled: truncated page delivered no new pairs")
		}
		// Resume past the last delivered key: forward bounds get the byte
		// successor last+0x00; reverse bounds re-send last as an exclusive
		// hi (byte strings have no closed-form predecessor, so the server
		// steps past the boundary key itself). bound is the client's own
		// buffer — never the caller's lo/hi backing array.
		if !reverse {
			bound = append(append(bound[:0], last...), 0)
			curLo = bound
		} else {
			bound = append(bound[:0], last...)
			curHi = bound
			exclHi = true
		}
	}
}

// Count returns the server's record count.
func (cl *Client) Count() (uint64, error) {
	for attempt := 0; ; attempt++ {
		mark := len(cl.out)
		cl.out = wire.AppendEmptyReq(cl.out, wire.OpCount)
		cl.queued++
		cl.track(mark)
		code, payload, err := cl.Recv()
		if err != nil {
			return 0, err
		}
		if code == wire.CodeOK {
			return wire.ParseCount(payload)
		}
		if err := cl.errOf(code, payload); !cl.shouldRetry(err, attempt) {
			return 0, err
		}
	}
}

// Stats returns the server's STATS JSON payload.
func (cl *Client) Stats() ([]byte, error) {
	for attempt := 0; ; attempt++ {
		mark := len(cl.out)
		cl.out = wire.AppendEmptyReq(cl.out, wire.OpStats)
		cl.queued++
		cl.track(mark)
		code, payload, err := cl.Recv()
		if err != nil {
			return nil, err
		}
		if code == wire.CodeOK {
			return append([]byte(nil), payload...), nil
		}
		if err := cl.errOf(code, payload); !cl.shouldRetry(err, attempt) {
			return nil, err
		}
	}
}
