package client

import (
	"bufio"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"fasp/internal/obsv"
	"fasp/internal/server/wire"
)

// Retry layer: DialRetry returns a Client that survives the faults faultx
// injects — connection kills, torn frames, server restarts, BUSY shedding,
// degraded shards — without giving up exactly-once write semantics.
//
// Mechanics:
//
//   - The client binds each connection to a session (HELLO with a
//     process-unique id) and tags every write with a per-session sequence
//     token (PUT_SEQ/DEL_SEQ/BATCH_SEQ).
//   - Every queued frame is retained (a copy) until its response arrives.
//     When the connection dies, Recv redials with capped exponential
//     backoff, re-sends HELLO, replays the retained frames in order, and
//     resumes reading — the pipelined response stream restarts from the
//     oldest unanswered request. The server's dedup window answers any
//     frame whose write already committed from the cached verdict, so a
//     kill between commit and ack cannot double-apply.
//   - The synchronous methods additionally retry BUSY/UNAVAIL verdicts
//     with fresh tokens (the server cancels a shed write's token, and a
//     fresh token is always correct for a write that was not applied),
//     honouring the server's retry-after hint when it exceeds the local
//     backoff.
//
// Pipelined users (Queue*/Flush/Recv) get the reconnect+replay behaviour
// but see BUSY/UNAVAIL verdicts raw: transparently re-queueing inside a
// pipeline would reorder same-key writes, so the caller owns that retry
// (the load generator's chaos mode re-enqueues with fresh tokens).

// RetryPolicy tunes DialRetry. The zero value gets the defaults below.
type RetryPolicy struct {
	// SessionID identifies the dedup session; 0 derives a process-unique
	// id. Two live clients must never share one.
	SessionID uint64
	// MaxAttempts bounds one repair loop — dial attempts per reconnect,
	// and BUSY/UNAVAIL retries per synchronous call (default 10).
	MaxAttempts int
	// BaseBackoff is the first retry delay (default 2ms), doubling per
	// attempt up to MaxBackoff (default 250ms).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// DialTimeout bounds each dial attempt (default 5s).
	DialTimeout time.Duration
	// NoRetryBusy disables the synchronous methods' BUSY/UNAVAIL retry
	// (reconnect+replay still applies).
	NoRetryBusy bool
}

func (p *RetryPolicy) fill() {
	if p.SessionID == 0 {
		p.SessionID = NewSessionID()
	}
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 10
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 2 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 250 * time.Millisecond
	}
	if p.DialTimeout <= 0 {
		p.DialTimeout = 5 * time.Second
	}
}

var sessionSeq atomic.Uint64

// NewSessionID returns a process-unique session id: a nanosecond stamp in
// the high bits decorrelates processes, a sequence counter decorrelates
// clients within one.
func NewSessionID() uint64 {
	return uint64(time.Now().UnixNano())<<16 | (sessionSeq.Add(1) & 0xffff)
}

// retryState is the per-client retry machinery.
type retryState struct {
	addr string
	pol  RetryPolicy
	// pending retains a copy of every frame whose response has not
	// arrived (reads included — responses are positional, so a replay
	// must resend the whole unanswered prefix in order).
	pending [][]byte
	// nextSeq is the per-session sequence token counter; every queued
	// write gets a fresh token, replays reuse the frame (and token) as-is.
	nextSeq    uint64
	reconnects int64
	retries    int64
}

// Package-wide telemetry, rendered as fasp_client_retries_total{code} via
// obsv.WriteClientPrometheus by whoever owns the /metrics endpoint.
var (
	telBusy      atomic.Int64
	telUnavail   atomic.Int64
	telConnReset atomic.Int64
	telReconnect atomic.Int64
)

// TelemetryCounts is the process-wide retry telemetry snapshot.
type TelemetryCounts struct {
	// RetryBusy / RetryUnavail count synchronous-call retries by trigger;
	// ReplayedFrames counts frames re-sent by reconnect replays.
	RetryBusy      int64
	RetryUnavail   int64
	ReplayedFrames int64
	// Reconnects counts successful redial-and-replay cycles.
	Reconnects int64
}

// Telemetry snapshots the process-wide retry counters.
func Telemetry() TelemetryCounts {
	return TelemetryCounts{
		RetryBusy:      telBusy.Load(),
		RetryUnavail:   telUnavail.Load(),
		ReplayedFrames: telConnReset.Load(),
		Reconnects:     telReconnect.Load(),
	}
}

// PromSnapshot renders the process-wide retry telemetry as an
// obsv.ClientSnapshot, ready for WriteClientPrometheus — plug it into
// fasp.RegisterPromSource to expose fasp_client_retries_total{code} and
// fasp_client_reconnects_total on a /metrics endpoint.
func PromSnapshot() obsv.ClientSnapshot {
	t := Telemetry()
	return obsv.ClientSnapshot{
		Retries: map[string]int64{
			"busy":       t.RetryBusy,
			"unavail":    t.RetryUnavail,
			"conn_reset": t.ReplayedFrames,
		},
		Reconnects: t.Reconnects,
	}
}

// DialRetry connects to addr as a retrying, session-bound client. The
// initial dial and HELLO are themselves retried under the policy — under
// chaos a connection can be killed before the HELLO ack lands, and a
// retrying client must not die at birth to a fault it exists to survive.
func DialRetry(addr string, pol RetryPolicy) (*Client, error) {
	pol.fill()
	backoff := pol.BaseBackoff
	var lastErr error
	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
			if backoff > pol.MaxBackoff {
				backoff = pol.MaxBackoff
			}
		}
		cl, err := DialTimeout(addr, pol.DialTimeout)
		if err != nil {
			lastErr = err
			continue
		}
		cl.retry = &retryState{addr: addr, pol: pol}
		if err := cl.hello(); err != nil {
			cl.c.Close()
			lastErr = err
			continue
		}
		return cl, nil
	}
	return nil, fmt.Errorf("client: dial %s failed after %d attempts: %w", addr, pol.MaxAttempts, lastErr)
}

// Reconnects reports this client's successful redial-and-replay cycles.
func (cl *Client) Reconnects() int64 {
	if cl.retry == nil {
		return 0
	}
	return cl.retry.reconnects
}

// Retries reports this client's synchronous BUSY/UNAVAIL retries.
func (cl *Client) Retries() int64 {
	if cl.retry == nil {
		return 0
	}
	return cl.retry.retries
}

// SessionID reports the dedup session id (0 for a non-retrying client).
func (cl *Client) SessionID() uint64 {
	if cl.retry == nil {
		return 0
	}
	return cl.retry.pol.SessionID
}

// hello binds the current connection to the session: one HELLO frame,
// answered OK, outside the pending set (every reconnect sends its own).
func (cl *Client) hello() error {
	frame := wire.AppendHello(nil, cl.retry.pol.SessionID)
	if _, err := cl.bw.Write(frame); err != nil {
		return err
	}
	if err := cl.bw.Flush(); err != nil {
		return err
	}
	op, payload, buf, err := wire.ReadFrame(cl.br, cl.maxFrame, cl.buf)
	cl.buf = buf
	if err != nil {
		return fmt.Errorf("client: hello: %w", err)
	}
	if code := wire.Code(op); code != wire.CodeOK {
		return fmt.Errorf("client: hello refused: %w", cl.errOf(code, payload))
	}
	return nil
}

// track retains a copy of the frame just appended to cl.out (from mark) in
// the replay set. No-op without retry.
func (cl *Client) track(mark int) {
	if cl.retry == nil {
		return
	}
	f := cl.out[mark:]
	cl.retry.pending = append(cl.retry.pending, append(make([]byte, 0, len(f)), f...))
}

// pop drops the oldest pending frame — its response arrived.
func (cl *Client) pop() {
	if cl.retry != nil && len(cl.retry.pending) > 0 {
		cl.retry.pending = cl.retry.pending[1:]
	}
}

// reconnect repairs a dead connection: redial with capped exponential
// backoff, re-HELLO, replay every unanswered frame in order. On return the
// response stream resumes from the oldest unanswered request.
func (cl *Client) reconnect() error {
	r := cl.retry
	cl.c.Close()
	backoff := r.pol.BaseBackoff
	var lastErr error
	for attempt := 0; attempt < r.pol.MaxAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
			if backoff > r.pol.MaxBackoff {
				backoff = r.pol.MaxBackoff
			}
		}
		c, err := net.DialTimeout("tcp", r.addr, r.pol.DialTimeout)
		if err != nil {
			lastErr = err
			continue
		}
		if tc, ok := c.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		cl.c = c
		cl.br = bufio.NewReaderSize(c, 64<<10)
		cl.bw = bufio.NewWriterSize(c, 64<<10)
		if err := cl.hello(); err != nil {
			lastErr = err
			c.Close()
			continue
		}
		err = nil
		for _, f := range r.pending {
			if _, err = cl.bw.Write(f); err != nil {
				break
			}
		}
		if err == nil {
			err = cl.bw.Flush()
		}
		if err != nil {
			lastErr = err
			c.Close()
			continue
		}
		cl.out = cl.out[:0]
		cl.queued = 0
		cl.inflight = len(r.pending)
		r.reconnects++
		telReconnect.Add(1)
		telConnReset.Add(int64(len(r.pending)))
		return nil
	}
	return fmt.Errorf("client: reconnect to %s failed after %d attempts: %w", r.addr, r.pol.MaxAttempts, lastErr)
}

// shouldRetry decides whether a synchronous call retries its verdict: only
// with a retry policy, only when nothing else is pipelined (re-queueing
// inside a pipeline would reorder same-key writes), and only for
// BUSY/UNAVAIL — refusals the server guarantees were not applied, so a
// fresh sequence token is always correct. Sleeps the greater of the local
// backoff and the server's retry-after hint before returning true.
func (cl *Client) shouldRetry(err error, attempt int) bool {
	if err == nil || cl.retry == nil || cl.retry.pol.NoRetryBusy || cl.Pending() != 0 {
		return false
	}
	if attempt+1 >= cl.retry.pol.MaxAttempts {
		return false
	}
	switch {
	case isCode(err, wire.ErrRemoteBusy):
		telBusy.Add(1)
	case isCode(err, wire.ErrRemoteUnavail):
		telUnavail.Add(1)
	default:
		return false
	}
	cl.retry.retries++
	d := cl.retry.pol.BaseBackoff << uint(attempt)
	if d > cl.retry.pol.MaxBackoff {
		d = cl.retry.pol.MaxBackoff
	}
	if hint := time.Duration(cl.lastRetryMS) * time.Millisecond; hint > d {
		d = hint
	}
	time.Sleep(d)
	return true
}
