package server

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"fasp"
	"fasp/internal/faultx"
	"fasp/internal/server/client"
	"fasp/internal/server/loadgen"
)

// Chaos soak harness: RunChaos stands up the full stack — sharded KV with
// the faultx commit hook, Server with the faultx connection wrapper and
// auto-heal on, retrying loadgen clients — and runs it under the schedule
// until the duration elapses, killing and restarting the whole server
// Spec.Restarts times along the way. Afterwards it disables injection,
// heals every shard, drains, power-fails and recovers the store one final
// time, and audits the acked-prefix oracle: every write a client saw acked
// must be present and intact in the recovered store. The entire schedule
// is captured by the Spec string in the report — a failing run is re-run
// by feeding that string back through faultx.ParseSpec.
//
// This is the TestCrashUnderLoad oracle generalised from one staged crash
// to a continuous storm: the server may shed (BUSY), refuse (UNAVAIL),
// drop connections mid-frame, lose whole process lifetimes — but it may
// never lose or corrupt an acknowledged write.

// ChaosConfig shapes one soak.
type ChaosConfig struct {
	// Spec is the replayable fault schedule (seed, probabilities, restart
	// count).
	Spec faultx.Spec
	// Shards is the KV shard count (default 4).
	Shards int
	// Duration is the loadgen send phase (default 3s).
	Duration time.Duration
	// Conns is the client count (default 8); Pipeline per conn (default 4).
	Conns    int
	Pipeline int
	// Server overrides parts of the server config; zero values get chaos
	// defaults (AutoHeal on, 5ms heal cadence, write deadline).
	Server Config
}

// ChaosReport is one soak's outcome.
type ChaosReport struct {
	// Spec replays this exact schedule.
	Spec string `json:"spec"`
	// Loadgen is the client-side aggregate (reconnects, retries, typed
	// verdict counts).
	Loadgen loadgen.Result `json:"loadgen"`
	// Faults is what the injector actually dealt.
	Faults faultx.Counts `json:"faults"`
	// Restarts counts completed kill→crash→recover→restart cycles.
	Restarts int `json:"restarts"`
	// HealAttempts / HealFailures aggregate the auto-heal loop across all
	// server incarnations.
	HealAttempts int64 `json:"heal_attempts"`
	HealFailures int64 `json:"heal_failures"`
	// AckedWrites is the oracle set size; every one was found intact.
	AckedWrites int `json:"acked_writes"`
}

// RunChaos runs one soak and returns its report; err is non-nil on an
// oracle violation or a harness failure (the report's Spec string replays
// the schedule either way).
func RunChaos(cfg ChaosConfig) (ChaosReport, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 3 * time.Second
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 8
	}
	if cfg.Pipeline <= 0 {
		cfg.Pipeline = 4
	}
	in := faultx.New(cfg.Spec)
	rep := ChaosReport{Spec: in.String()}

	kv, err := fasp.OpenKV(fasp.Options{
		Shards:    cfg.Shards,
		PageSize:  1024,
		FaultHook: in.CommitFault,
	})
	if err != nil {
		return rep, fmt.Errorf("chaos: open: %w", err)
	}
	defer kv.Close()

	scfg := cfg.Server
	scfg.WrapConn = in.WrapConn
	scfg.AutoHeal = true
	if scfg.HealInterval <= 0 {
		scfg.HealInterval = 5 * time.Millisecond
	}
	if scfg.WriteTimeout <= 0 {
		scfg.WriteTimeout = 2 * time.Second
	}
	scfg.NoMetricsSource = true

	srv := New(kv, scfg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return rep, fmt.Errorf("chaos: listen: %w", err)
	}
	go srv.Serve()

	// The restart goroutine kills the whole server mid-storm: abrupt stop,
	// simulated power failure, recovery, fresh Server on the same address.
	// Retrying clients ride through each cycle by reconnect+replay.
	var (
		srvMu    sync.Mutex // guards srv across restart cycles
		restarts int
		restErr  error
		stopRest = make(chan struct{})
		restDone = make(chan struct{})
	)
	harvest := func(s *Server) {
		rep.HealAttempts += s.met.healAttempts.Load()
		rep.HealFailures += s.met.healFailures.Load()
	}
	go func() {
		defer close(restDone)
		if cfg.Spec.Restarts <= 0 {
			return
		}
		gap := cfg.Duration / time.Duration(cfg.Spec.Restarts+1)
		for i := 0; i < cfg.Spec.Restarts; i++ {
			select {
			case <-stopRest:
				return
			case <-time.After(gap):
			}
			srvMu.Lock()
			srv.Kill()
			harvest(srv)
			kv.Crash(fasp.CrashOptions{})
			if err := kv.ReopenKV(); err != nil {
				restErr = fmt.Errorf("chaos: recover after kill %d: %w", i, err)
				srvMu.Unlock()
				return
			}
			srv = New(kv, scfg)
			if _, err := srv.Listen(addr); err != nil {
				restErr = fmt.Errorf("chaos: relisten after kill %d: %w", i, err)
				srvMu.Unlock()
				return
			}
			go srv.Serve()
			restarts++
			srvMu.Unlock()
		}
	}()

	// The oracle set: every acked write's key and expected value.
	var (
		ackMu sync.Mutex
		acked = make(map[string][]byte)
	)
	res, lgErr := loadgen.Run(loadgen.Config{
		Addr:     addr,
		Conns:    cfg.Conns,
		Pipeline: cfg.Pipeline,
		Duration: cfg.Duration,
		Seed:     cfg.Spec.Seed,
		Prefix:   "chaos",
		Retry:    true,
		// A reconnect loop must outlast a whole crash-restart cycle (dial
		// refused fails fast; the backoff budget has to cover recovery).
		Policy: client.RetryPolicy{
			MaxAttempts: 30,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  150 * time.Millisecond,
		},
		UniqueKeys: true,
		Record: func(key, val []byte) {
			ackMu.Lock()
			acked[string(key)] = val
			ackMu.Unlock()
		},
	})
	close(stopRest)
	<-restDone
	rep.Loadgen = res
	rep.Restarts = restarts
	rep.Faults = in.Counts()

	// Storm over: stop injecting, heal what is still down, drain cleanly.
	in.SetEnabled(false)
	srvMu.Lock()
	s := srv
	srvMu.Unlock()
	for i := 0; i < cfg.Shards; i++ {
		if err := kv.Heal(i); err != nil { // no-op on healthy shards
			s.Shutdown()
			return rep, fmt.Errorf("chaos: final heal shard %d: %w", i, err)
		}
	}
	s.Shutdown()
	harvest(s)
	if restErr != nil {
		return rep, restErr
	}
	if lgErr != nil {
		return rep, fmt.Errorf("chaos: loadgen: %w", lgErr)
	}

	// Final power failure + recovery, then the audit.
	kv.Crash(fasp.CrashOptions{})
	if err := kv.ReopenKV(); err != nil {
		return rep, fmt.Errorf("chaos: final recover: %w", err)
	}
	if err := kv.Validate(); err != nil {
		return rep, fmt.Errorf("chaos: tree invalid after recovery: %w", err)
	}
	rep.AckedWrites = len(acked)
	for k, want := range acked {
		got, ok, err := kv.Get([]byte(k))
		if err != nil {
			return rep, fmt.Errorf("chaos: oracle read %q: %w", k, err)
		}
		if !ok {
			return rep, fmt.Errorf("chaos: ACKED WRITE LOST: key %q missing after recovery (spec %s)", k, rep.Spec)
		}
		if !bytes.Equal(got, want) {
			return rep, fmt.Errorf("chaos: ACKED WRITE CORRUPT: key %q (spec %s)", k, rep.Spec)
		}
	}
	return rep, nil
}
