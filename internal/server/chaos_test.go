package server

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"fasp"
	"fasp/internal/faultx"
	"fasp/internal/server/client"
	"fasp/internal/server/loadgen"
	"fasp/internal/server/wire"
)

// TestChaosSoak is the headline robustness gate: a multi-second storm of
// connection kills, torn writes, stalls, injected shard-writer panics, and
// whole-server crash-restarts, with retrying clients hammering unique-key
// PUTs throughout. The run must show real fault volume (panics healed,
// restarts survived, reconnects in the hundreds) AND a clean oracle: every
// acked write present and intact after final crash recovery, zero untyped
// client errors, zero dead connections. Any failure prints the replayable
// faultx spec.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short")
	}
	cfg := ChaosConfig{
		Spec: faultx.Spec{
			Seed:      1,
			KillProb:  0.03,
			TornProb:  0.02,
			StallProb: 0.005,
			Stall:     2 * time.Millisecond,
			PanicProb: 0.004,
			Restarts:  2,
		},
		Shards:   4,
		Duration: 3 * time.Second,
		Conns:    12,
		Pipeline: 4,
	}
	rep, err := RunChaos(cfg)
	t.Logf("chaos: spec=%s acked=%d faults=%+v restarts=%d heals=%d/%d loadgen=%+v",
		rep.Spec, rep.AckedWrites, rep.Faults, rep.Restarts,
		rep.HealAttempts, rep.HealFailures, rep.Loadgen)
	if err != nil {
		t.Fatalf("chaos soak failed (replay with spec %s): %v", rep.Spec, err)
	}
	// Fault volume: the storm must actually have stormed, or the oracle
	// proved nothing.
	if rep.Faults.Panics < 3 {
		t.Errorf("only %d injected shard panics (want >= 3); spec %s", rep.Faults.Panics, rep.Spec)
	}
	if rep.Restarts < 1 {
		t.Errorf("no completed server crash-restart; spec %s", rep.Spec)
	}
	if rep.Loadgen.Reconnects < 100 {
		t.Errorf("only %d client reconnects (want >= 100); spec %s", rep.Loadgen.Reconnects, rep.Spec)
	}
	if rep.Faults.Panics > 0 && rep.HealAttempts == 0 {
		t.Errorf("shards panicked but auto-heal never ran; spec %s", rep.Spec)
	}
	// Client cleanliness: every fault surfaced as a typed verdict or a
	// transparent repair, never an untyped error or a dead worker.
	if rep.Loadgen.Errors != 0 {
		t.Errorf("%d untyped client errors (want 0); spec %s", rep.Loadgen.Errors, rep.Spec)
	}
	if rep.Loadgen.ConnDrops != 0 {
		t.Errorf("%d workers lost their connection for good (want 0); spec %s", rep.Loadgen.ConnDrops, rep.Spec)
	}
	if rep.AckedWrites == 0 {
		t.Errorf("oracle set empty — no write was ever acked; spec %s", rep.Spec)
	}
}

// killNextWrite closes the connection instead of performing the next Write
// once armed — the server's commit has happened (replies are encoded and
// the dedup cache filled before writeOut), but the ack never reaches the
// client. This is the exact window the exactly-once machinery exists for.
type killNextWrite struct {
	net.Conn
	arm *atomic.Bool
}

func (c *killNextWrite) Write(p []byte) (int, error) {
	if c.arm.CompareAndSwap(true, false) {
		c.Conn.Close()
		return 0, errors.New("killNextWrite: injected ack loss")
	}
	return c.Conn.Write(p)
}

// TestExactlyOnceKillBetweenCommitAndAck pins the retry layer's
// exactly-once contract at its sharpest edge: the server commits an INSERT,
// the connection dies before the ack lands, the client replays on a fresh
// connection — and the server answers from the dedup cache instead of
// re-executing. Without dedup the replayed INSERT would hit its own
// committed key and come back CodeDup.
func TestExactlyOnceKillBetweenCommitAndAck(t *testing.T) {
	var arm atomic.Bool
	_, _, addr := start(t, fasp.Options{Shards: 2}, Config{
		WrapConn: func(c net.Conn) net.Conn { return &killNextWrite{Conn: c, arm: &arm} },
	})

	cl, err := client.DialRetry(addr, client.RetryPolicy{})
	if err != nil {
		t.Fatalf("DialRetry: %v", err)
	}
	defer cl.Close()

	key := []byte("exactly-once")
	arm.Store(true) // next server write (the INSERT's ack) dies
	codes, err := cl.Batch([]wire.BatchOp{{Kind: wire.KindInsert, Key: key, Val: []byte("v1")}})
	if err != nil {
		t.Fatalf("Batch through ack loss: %v", err)
	}
	if len(codes) != 1 || codes[0] != wire.CodeOK {
		t.Fatalf("replayed INSERT codes = %v, want [OK] — dedup must answer the cached ack, not re-execute", codes)
	}
	if cl.Reconnects() < 1 {
		t.Fatal("ack was not actually lost: no reconnect happened")
	}

	// The write applied exactly once: a genuine second INSERT is a DUP, and
	// the value is the original.
	cl2 := dial(t, addr)
	codes2, err := cl2.Batch([]wire.BatchOp{{Kind: wire.KindInsert, Key: key, Val: []byte("v2")}})
	if err != nil {
		t.Fatalf("second INSERT: %v", err)
	}
	if len(codes2) != 1 || codes2[0] != wire.CodeDup {
		t.Fatalf("second INSERT codes = %v, want [DUP]", codes2)
	}
	if v, ok, err := cl2.Get(key); err != nil || !ok || string(v) != "v1" {
		t.Fatalf("Get after replay: %q %v %v, want v1", v, ok, err)
	}
}

// TestIdleTimeout pins the per-connection idle deadline (satellite knob):
// the server notices a silent connection, sends a typed CodeTimeout notice,
// closes it, and counts it. A plain client surfaces ErrRemoteTimeout; a
// retry client treats the notice as "reconnect and carry on".
func TestIdleTimeout(t *testing.T) {
	srv, _, addr := start(t, fasp.Options{Shards: 2}, Config{
		IdleTimeout:  50 * time.Millisecond,
		WriteTimeout: time.Second,
	})

	t.Run("plain client sees typed timeout", func(t *testing.T) {
		cl := dial(t, addr)
		if err := cl.Ping(); err != nil {
			t.Fatalf("Ping: %v", err)
		}
		time.Sleep(200 * time.Millisecond)
		// Read the unsolicited notice directly off the pipeline.
		cl.QueuePing()
		code, payload, err := cl.Recv()
		if err != nil {
			t.Fatalf("Recv after idle: %v (want a CodeTimeout frame)", err)
		}
		if code != wire.CodeTimeout {
			t.Fatalf("code = %v, want timeout", code)
		}
		if terr := client.Err(code, payload); !errors.Is(terr, wire.ErrRemoteTimeout) {
			t.Fatalf("typed error = %v, want ErrRemoteTimeout", terr)
		}
	})

	t.Run("retry client reconnects through it", func(t *testing.T) {
		cl, err := client.DialRetry(addr, client.RetryPolicy{})
		if err != nil {
			t.Fatalf("DialRetry: %v", err)
		}
		defer cl.Close()
		if err := cl.Put([]byte("idle-k"), []byte("1")); err != nil {
			t.Fatalf("Put: %v", err)
		}
		time.Sleep(200 * time.Millisecond)
		if err := cl.Put([]byte("idle-k2"), []byte("2")); err != nil {
			t.Fatalf("Put after idle expiry: %v (retry client must repair)", err)
		}
		if cl.Reconnects() < 1 {
			t.Fatal("idle expiry did not force a reconnect")
		}
	})

	if n := srv.Snapshot().Timeouts; n < 1 {
		t.Fatalf("server counted %d idle timeouts, want >= 1", n)
	}
}

// TestAutoHealServer pins the background healer (tentpole forced change 1):
// an injected writer panic degrades a shard, clients get typed UNAVAIL
// carrying a retry-after hint, and the shard comes back on its own — no
// operator Heal call — within the heal cadence.
func TestAutoHealServer(t *testing.T) {
	var panicShard atomic.Int64
	panicShard.Store(-1)
	srv, kv, addr := start(t, fasp.Options{
		Shards: 4,
		FaultHook: func(s int) {
			if int64(s) == panicShard.Swap(-1) {
				panic("chaos_test: injected writer fault")
			}
		},
	}, Config{
		AutoHeal:     true,
		HealInterval: 2 * time.Millisecond,
	})
	cl := dial(t, addr)

	const victim = 1
	key := []byte("heal-me")
	for i := 0; shardOf(kv, key) != victim; i++ {
		key = []byte("heal-me-" + string(rune('a'+i)))
	}

	panicShard.Store(victim)
	cl.QueuePut(key, []byte("doomed"))
	if err := cl.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	code, payload, err := cl.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if code != wire.CodeUnavail {
		t.Fatalf("write through injected panic: %v, want unavail", code)
	}
	if ms := client.RetryAfter(payload); ms == 0 {
		t.Fatal("UNAVAIL carried no retry-after hint under AutoHeal")
	}

	// The healer must bring the shard back without any operator action.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := cl.Put(key, []byte("recovered")); err == nil {
			break
		} else if !errors.Is(err, wire.ErrRemoteUnavail) {
			t.Fatalf("Put while degraded: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("shard never auto-healed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	snap := srv.Snapshot()
	if snap.HealAttempts < 1 {
		t.Fatalf("heal attempts = %d, want >= 1", snap.HealAttempts)
	}
	if v, ok, err := cl.Get(key); err != nil || !ok || string(v) != "recovered" {
		t.Fatalf("post-heal read: %q %v %v", v, ok, err)
	}
}

// TestLoadgenBusyUnderStalls pins the loadgen's typed-verdict accounting
// (satellite): with MaxInFlight=1 and injected read/write stalls, the
// server sheds aggressively — and every shed must land in Busy, never in
// Errors, with no connection ever dying.
func TestLoadgenBusyUnderStalls(t *testing.T) {
	in := faultx.New(faultx.Spec{
		Seed:      7,
		StallProb: 0.3,
		Stall:     3 * time.Millisecond,
	})
	_, _, addr := start(t, fasp.Options{Shards: 2}, Config{
		MaxInFlight: 1,
		WrapConn:    in.WrapConn,
	})
	res, err := loadgen.Run(loadgen.Config{
		Addr:     addr,
		Conns:    4,
		Pipeline: 8,
		Duration: 600 * time.Millisecond,
		Seed:     7,
		Prefix:   "stall",
	})
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	t.Logf("stall loadgen: %+v (stalls fired: %d)", res, in.Counts().Stalls)
	if res.Busy == 0 {
		t.Fatal("MaxInFlight=1 under pipelined load shed nothing into Busy")
	}
	if res.ConnDrops != 0 {
		t.Fatalf("%d connections died under stalls (want 0 — stalls are delays, not faults)", res.ConnDrops)
	}
	if res.Errors != 0 {
		t.Fatalf("%d untyped errors (want 0 — every shed must be typed)", res.Errors)
	}
	if res.OpsAcked == 0 {
		t.Fatal("nothing was ever acked")
	}
	if in.Counts().Stalls == 0 {
		t.Fatal("injector never stalled — the test exercised nothing")
	}
}
