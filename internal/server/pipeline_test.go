package server

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"fasp"
	"fasp/internal/server/loadgen"
	"fasp/internal/server/wire"
)

// runMixedWorkload drives one deterministic mixed workload — cross-shard
// BATCHes with logical verdicts, single PUT/DEL, overwrites — and returns
// every batch verdict vector in issue order.
func runMixedWorkload(t *testing.T, addr string) [][]wire.Code {
	t.Helper()
	cl := dial(t, addr)
	var verdicts [][]wire.Code
	for round := 0; round < 20; round++ {
		ops := make([]wire.BatchOp, 0, 16)
		for i := 0; i < 12; i++ {
			k := []byte(fmt.Sprintf("mix-%02d-%02d", round, i))
			switch i % 4 {
			case 0:
				ops = append(ops, wire.BatchOp{Kind: wire.KindPut, Key: k, Val: []byte(fmt.Sprintf("r%d", round))})
			case 1:
				ops = append(ops, wire.BatchOp{Kind: wire.KindInsert, Key: k, Val: []byte("ins")})
			case 2: // duplicate insert of the previous key → CodeDup
				prev := []byte(fmt.Sprintf("mix-%02d-%02d", round, i-1))
				ops = append(ops, wire.BatchOp{Kind: wire.KindInsert, Key: prev, Val: []byte("dup")})
			case 3: // update of a never-written key → CodeKeyAbsent
				ops = append(ops, wire.BatchOp{Kind: wire.KindUpdate, Key: []byte(fmt.Sprintf("absent-%02d-%02d", round, i)), Val: []byte("x")})
			}
		}
		codes, err := cl.Batch(ops)
		if err != nil {
			t.Fatalf("round %d batch: %v", round, err)
		}
		verdicts = append(verdicts, codes)
		if err := cl.Put([]byte(fmt.Sprintf("solo-%02d", round)), []byte("s")); err != nil {
			t.Fatalf("round %d put: %v", round, err)
		}
	}
	// Interleave deletes so both arms exercise delete verdicts too.
	if err := cl.Del([]byte("solo-00")); err != nil {
		t.Fatalf("del: %v", err)
	}
	return verdicts
}

// scanAll collects the full keyspace through the wire protocol.
func scanAll(t *testing.T, addr string) map[string]string {
	t.Helper()
	cl := dial(t, addr)
	out := map[string]string{}
	if err := cl.Scan(nil, nil, false, func(k, v []byte) bool {
		out[string(k)] = string(v)
		return true
	}); err != nil {
		t.Fatalf("scan: %v", err)
	}
	return out
}

// TestPipelinedVsGlobalEquivalence pins the A/B contract: the per-shard
// pipelines and the global-batcher fallback produce byte-identical state
// and identical request-order verdicts for the same workload — including
// cross-shard BATCHes whose verdicts ride the shard-major order mapping.
func TestPipelinedVsGlobalEquivalence(t *testing.T) {
	_, _, addrPipe := start(t, fasp.Options{Shards: 8}, Config{})
	_, _, addrGlob := start(t, fasp.Options{Shards: 8}, Config{GlobalBatcher: true})

	vPipe := runMixedWorkload(t, addrPipe)
	vGlob := runMixedWorkload(t, addrGlob)
	if len(vPipe) != len(vGlob) {
		t.Fatalf("verdict rounds: %d vs %d", len(vPipe), len(vGlob))
	}
	for r := range vPipe {
		for i := range vPipe[r] {
			if vPipe[r][i] != vGlob[r][i] {
				t.Fatalf("round %d verdict %d: pipelined %v, global %v", r, i, vPipe[r][i], vGlob[r][i])
			}
		}
	}

	sPipe, sGlob := scanAll(t, addrPipe), scanAll(t, addrGlob)
	if len(sPipe) != len(sGlob) {
		t.Fatalf("keyspace size: %d vs %d", len(sPipe), len(sGlob))
	}
	for k, v := range sPipe {
		if sGlob[k] != v {
			t.Fatalf("key %q: pipelined %q, global %q", k, v, sGlob[k])
		}
	}
}

// TestCrossShardBatchVerdictOrder pins the order mapping directly: one
// BATCH whose keys hash to many shards gets its per-op codes back in
// request order, not shard-major order.
func TestCrossShardBatchVerdictOrder(t *testing.T) {
	_, kv, addr := start(t, fasp.Options{Shards: 8}, Config{})
	cl := dial(t, addr)

	// Seed one key so the batch can hit a deliberate duplicate.
	if err := cl.Put([]byte("seeded"), []byte("v")); err != nil {
		t.Fatalf("seed: %v", err)
	}
	shards := map[int]bool{}
	ops := make([]wire.BatchOp, 0, 64)
	want := make([]wire.Code, 0, 64)
	for i := 0; i < 64; i++ {
		k := []byte(fmt.Sprintf("xs-%03d", i))
		shards[kv.ShardOf(k)] = true
		switch {
		case i%7 == 3: // dup insert, interleaved mid-batch
			ops = append(ops, wire.BatchOp{Kind: wire.KindInsert, Key: []byte("seeded"), Val: []byte("dup")})
			want = append(want, wire.CodeDup)
		case i%7 == 5: // absent update
			ops = append(ops, wire.BatchOp{Kind: wire.KindUpdate, Key: k, Val: []byte("x")})
			want = append(want, wire.CodeKeyAbsent)
		default:
			ops = append(ops, wire.BatchOp{Kind: wire.KindPut, Key: k, Val: []byte(fmt.Sprintf("%d", i))})
			want = append(want, wire.CodeOK)
		}
	}
	if len(shards) < 2 {
		t.Fatalf("workload only touched %d shards; key scheme too narrow", len(shards))
	}
	codes, err := cl.Batch(ops)
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	for i := range want {
		if codes[i] != want[i] {
			t.Fatalf("code[%d] = %v, want %v (batch spanned %d shards)", i, codes[i], want[i], len(shards))
		}
	}
	// Values landed where request order says they should.
	for i := 0; i < 64; i++ {
		if i%7 == 3 || i%7 == 5 {
			continue
		}
		v, ok, err := cl.Get([]byte(fmt.Sprintf("xs-%03d", i)))
		if err != nil || !ok || string(v) != fmt.Sprintf("%d", i) {
			t.Fatalf("xs-%03d = %q ok=%v err=%v", i, v, ok, err)
		}
	}
}

// TestShardPipelineWidth drives concurrent pipelined load and asserts the
// per-shard commit rounds actually coalesce: shard-round width above 1 and
// multi-connection round occupancy observed.
func TestShardPipelineWidth(t *testing.T) {
	srv, _, addr := start(t, fasp.Options{Shards: 4}, Config{})
	res, err := loadgen.Run(loadgen.Config{
		Addr: addr, Conns: 16, Pipeline: 16, Duration: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	if res.ConnDrops != 0 || res.Errors != 0 {
		t.Fatalf("drops=%d errors=%d", res.ConnDrops, res.Errors)
	}
	snap := srv.Snapshot()
	if snap.ShardCoalesce.Count == 0 {
		t.Fatal("no per-shard commit rounds observed")
	}
	if mean := snap.ShardCoalesce.Mean(); mean <= 1 {
		t.Fatalf("per-shard rounds coalesced nothing: mean width %.2f", mean)
	}
	if snap.PipeOccupancy.Count == 0 {
		t.Fatal("no pipeline occupancy observed")
	}
	if snap.BarrierSimNS != 0 {
		t.Fatalf("pipelined arm accumulated barrier time: %d", snap.BarrierSimNS)
	}
}

// TestBatchSpinNone pins the BatchSpin knob at its -1 sentinel (no
// accumulation yields at all): rounds still commit, verdicts are still
// correct, and the width histogram still records every round.
func TestBatchSpinNone(t *testing.T) {
	srv, _, addr := start(t, fasp.Options{Shards: 4}, Config{BatchSpin: -1})
	res, err := loadgen.Run(loadgen.Config{
		Addr: addr, Conns: 8, Pipeline: 8, Duration: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	if res.ConnDrops != 0 || res.Errors != 0 {
		t.Fatalf("drops=%d errors=%d", res.ConnDrops, res.Errors)
	}
	snap := srv.Snapshot()
	if snap.ShardCoalesce.Count == 0 {
		t.Fatal("spin=none recorded no commit rounds")
	}
	// Without the accumulation yields width can legitimately collapse
	// toward 1; the knob trades coalescing for latency. Only sanity-bound
	// it — the round count must cover the ops served.
	if snap.ShardCoalesce.Mean() < 1 {
		t.Fatalf("impossible mean width %.2f", snap.ShardCoalesce.Mean())
	}
}

// TestGlobalBatcherBarrierAccounting pins the A/B instrumentation: the
// global-batcher arm attributes each round's busiest-shard simulated time
// to fasp_server_barrier_sim_ns_total.
func TestGlobalBatcherBarrierAccounting(t *testing.T) {
	srv, _, addr := start(t, fasp.Options{Shards: 8}, Config{GlobalBatcher: true})
	res, err := loadgen.Run(loadgen.Config{
		Addr: addr, Conns: 8, Pipeline: 8, Duration: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	if res.ConnDrops != 0 || res.Errors != 0 {
		t.Fatalf("drops=%d errors=%d", res.ConnDrops, res.Errors)
	}
	snap := srv.Snapshot()
	if snap.BarrierSimNS == 0 {
		t.Fatal("global batcher accumulated no barrier simulated time")
	}
	if snap.ShardCoalesce.Count != 0 {
		t.Fatal("global batcher observed per-shard pipeline rounds")
	}
}

// TestDedupCacheByteBudget unit-tests the per-session reply-byte budget:
// completed replies past the budget are evicted oldest-first, the
// server-wide gauge tracks exactly the cached bytes, and an evicted
// token's replay re-executes as fresh.
func TestDedupCacheByteBudget(t *testing.T) {
	var gauge atomic.Int64
	tbl := newSessionTable(4, 64, 64) // 64-byte budget
	tbl.bytes = &gauge
	ss := tbl.get(1)

	reply := make([]byte, 24)
	for seq := uint64(1); seq <= 5; seq++ {
		e, st := ss.begin(seq)
		if st != seqFresh {
			t.Fatalf("seq %d: state %v", seq, st)
		}
		_ = e
		ss.complete(seq, reply)
	}
	ss.mu.Lock()
	cached := ss.cached
	ss.mu.Unlock()
	if cached > 64 {
		t.Fatalf("cached %d bytes > 64 budget", cached)
	}
	if g := gauge.Load(); g != cached {
		t.Fatalf("gauge %d != session cached %d", g, cached)
	}

	// Oldest tokens were evicted; their replay re-executes as fresh.
	if _, st := ss.begin(1); st != seqFresh {
		t.Fatalf("evicted token replay state %v, want fresh", st)
	}
	// Newest token is still served from cache.
	if _, st := ss.begin(5); st != seqDone {
		t.Fatalf("newest token state %v, want done", st)
	}

	// Session-table eviction returns the victim's bytes to the gauge.
	for id := uint64(2); id <= 6; id++ {
		tbl.get(id)
	}
	// With capacity 4 and 6 distinct ids, at least two sessions were
	// evicted; if session 1 was among them its bytes left the gauge.
	tbl.mu.Lock()
	_, alive := tbl.m[1]
	tbl.mu.Unlock()
	if !alive {
		ss.mu.Lock()
		left := ss.cached
		ss.mu.Unlock()
		if left != 0 {
			t.Fatalf("evicted session still accounts %d bytes", left)
		}
	}
	if g := gauge.Load(); g < 0 {
		t.Fatalf("gauge went negative: %d", g)
	}
}

// TestDedupBudgetUnbounded pins the -1 sentinel: no byte eviction, every
// completed reply stays cached within the token window.
func TestDedupBudgetUnbounded(t *testing.T) {
	tbl := newSessionTable(4, 64, -1)
	ss := tbl.get(1)
	reply := make([]byte, 100)
	for seq := uint64(1); seq <= 10; seq++ {
		if _, st := ss.begin(seq); st != seqFresh {
			t.Fatalf("seq %d: %v", seq, st)
		}
		ss.complete(seq, reply)
	}
	for seq := uint64(1); seq <= 10; seq++ {
		if _, st := ss.begin(seq); st != seqDone {
			t.Fatalf("seq %d evicted under unbounded budget: %v", seq, st)
		}
	}
}
