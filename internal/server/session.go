package server

import (
	"sync"
)

// Session-scoped sequence-token dedup — the server half of the client retry
// layer's exactly-once contract.
//
// A retrying client binds each connection to a session (HELLO, client-chosen
// u64 id) and tags every write with a per-session sequence token
// (PUT_SEQ/DEL_SEQ/BATCH_SEQ). When a connection dies between the server's
// commit and the client's read of the ack, the client replays the unacked
// frames on a fresh connection under the same session; the tokens let the
// server tell a replay of a committed write from a genuinely new one:
//
//	fresh    — first sighting: execute, then complete() caches the
//	           encoded reply frame.
//	done     — a replay of a completed write: answer the cached frame
//	           verbatim, execute nothing (exactly-once).
//	inflight — the original is still racing through another connection's
//	           commit: wait for its verdict, then re-resolve.
//	stale    — the token fell out of the bounded window; the client gave
//	           up on it long ago, answer a typed error.
//
// A write the server *refused* without applying (BUSY shed, SHUTDOWN drain)
// calls cancel() instead: the token is forgotten, so a retry re-executes —
// dedup protects applied writes only.
//
// The window is bounded (Config.DedupWindow) and the session table is
// bounded (Config.MaxSessions), so a hostile or leaky client cannot grow
// server state without bound. The table does not survive a server restart:
// a replay that crosses a restart re-executes, which is safe for the
// upsert/delete ops the retry layer replays (and pinned as such by the
// chaos soak's unique-key oracle).

// seqState is begin's verdict for one token.
type seqState int

const (
	seqFresh seqState = iota
	seqDone
	seqInflight
	seqStale
)

// seqEntry tracks one token. done closes when the write's verdict is known;
// reply is the cached response frame (nil means canceled — not applied).
type seqEntry struct {
	done  chan struct{}
	reply []byte
}

// session is one client session's dedup window.
type session struct {
	mu      sync.Mutex
	win     map[uint64]*seqEntry
	maxDone uint64 // highest completed token
	window  uint64
}

// begin resolves one token. The caller must not hold any session lock.
func (ss *session) begin(seq uint64) (*seqEntry, seqState) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if e := ss.win[seq]; e != nil {
		select {
		case <-e.done:
			if e.reply == nil {
				// Completed as a cancel that raced the map delete: treat
				// as fresh.
				e = &seqEntry{done: make(chan struct{})}
				ss.win[seq] = e
				return e, seqFresh
			}
			return e, seqDone
		default:
			return e, seqInflight
		}
	}
	if ss.maxDone > ss.window && seq <= ss.maxDone-ss.window {
		return nil, seqStale
	}
	e := &seqEntry{done: make(chan struct{})}
	ss.win[seq] = e
	return e, seqFresh
}

// complete records a committed write's encoded reply frame and wakes any
// duplicate waiting on it. reply is copied.
func (ss *session) complete(seq uint64, reply []byte) {
	ss.mu.Lock()
	e := ss.win[seq]
	if e == nil {
		ss.mu.Unlock()
		return
	}
	e.reply = append(make([]byte, 0, len(reply)), reply...)
	if seq > ss.maxDone {
		ss.maxDone = seq
	}
	close(e.done)
	// Evict tokens that fell out of the window; amortised so the common
	// case is O(1).
	if ss.maxDone > ss.window && uint64(len(ss.win)) > 2*ss.window {
		lo := ss.maxDone - ss.window
		for k, old := range ss.win {
			if k > lo {
				continue
			}
			select {
			case <-old.done:
				delete(ss.win, k)
			default: // still in flight; keep
			}
		}
	}
	ss.mu.Unlock()
}

// cancel forgets a token whose write was refused without being applied
// (BUSY/SHUTDOWN shed); a retry re-executes under a fresh entry. Duplicate
// waiters see done with a nil reply and re-begin.
func (ss *session) cancel(seq uint64) {
	ss.mu.Lock()
	e := ss.win[seq]
	if e != nil {
		delete(ss.win, seq)
		close(e.done)
	}
	ss.mu.Unlock()
}

// sessionTable is the server's bounded session registry.
type sessionTable struct {
	mu     sync.Mutex
	m      map[uint64]*session
	cap    int
	window uint64
}

func newSessionTable(capacity, window int) *sessionTable {
	return &sessionTable{
		m:      make(map[uint64]*session),
		cap:    capacity,
		window: uint64(window),
	}
}

// get returns (creating if needed) the session for id. At capacity an
// arbitrary existing session is evicted — eviction only widens a victim's
// retry semantics (its replays re-execute, same as crossing a restart).
func (t *sessionTable) get(id uint64) *session {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ss := t.m[id]; ss != nil {
		return ss
	}
	if len(t.m) >= t.cap {
		for k := range t.m {
			delete(t.m, k)
			break
		}
	}
	ss := &session{win: make(map[uint64]*seqEntry), window: t.window}
	t.m[id] = ss
	return ss
}
