package server

import (
	"sync"
	"sync/atomic"
)

// Session-scoped sequence-token dedup — the server half of the client retry
// layer's exactly-once contract.
//
// A retrying client binds each connection to a session (HELLO, client-chosen
// u64 id) and tags every write with a per-session sequence token
// (PUT_SEQ/DEL_SEQ/BATCH_SEQ). When a connection dies between the server's
// commit and the client's read of the ack, the client replays the unacked
// frames on a fresh connection under the same session; the tokens let the
// server tell a replay of a committed write from a genuinely new one:
//
//	fresh    — first sighting: execute, then complete() caches the
//	           encoded reply frame.
//	done     — a replay of a completed write: answer the cached frame
//	           verbatim, execute nothing (exactly-once).
//	inflight — the original is still racing through another connection's
//	           commit: wait for its verdict, then re-resolve.
//	stale    — the token fell out of the bounded window; the client gave
//	           up on it long ago, answer a typed error.
//
// A write the server *refused* without applying (BUSY shed, SHUTDOWN drain)
// calls cancel() instead: the token is forgotten, so a retry re-executes —
// dedup protects applied writes only.
//
// The window is bounded (Config.DedupWindow) and the session table is
// bounded (Config.MaxSessions), so a hostile or leaky client cannot grow
// server state without bound. The table does not survive a server restart:
// a replay that crosses a restart re-executes, which is safe for the
// upsert/delete ops the retry layer replays (and pinned as such by the
// chaos soak's unique-key oracle).

// seqState is begin's verdict for one token.
type seqState int

const (
	seqFresh seqState = iota
	seqDone
	seqInflight
	seqStale
)

// seqEntry tracks one token. done closes when the write's verdict is known;
// reply is the cached response frame (nil means canceled — not applied).
type seqEntry struct {
	done  chan struct{}
	reply []byte
}

// session is one client session's dedup window. Cached replies are
// bounded twice: by token count (window) and by bytes (budget) — doneq
// records completed tokens in completion order, and complete() evicts
// oldest-first past the byte budget. An evicted token's replay simply
// re-executes, the same semantics as crossing a server restart; the ops
// the retry layer replays are safe to re-apply by contract.
type session struct {
	mu      sync.Mutex
	win     map[uint64]*seqEntry
	maxDone uint64 // highest completed token
	window  uint64
	budget  int64    // cached-reply byte budget (0 = unbounded)
	cached  int64    // reply bytes currently cached
	doneq   []uint64 // completed tokens, oldest first (byte-eviction order)

	// bytes is the server-wide dedup-cache gauge
	// (fasp_server_dedup_cache_bytes); nil in bare tests.
	bytes *atomic.Int64
}

// uncache drops a cached reply's bytes from the session and server
// accounting. Callers hold ss.mu.
func (ss *session) uncache(e *seqEntry) {
	if n := int64(len(e.reply)); n > 0 {
		ss.cached -= n
		if ss.bytes != nil {
			ss.bytes.Add(-n)
		}
	}
}

// begin resolves one token. The caller must not hold any session lock.
func (ss *session) begin(seq uint64) (*seqEntry, seqState) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if e := ss.win[seq]; e != nil {
		select {
		case <-e.done:
			if e.reply == nil {
				// Completed as a cancel that raced the map delete: treat
				// as fresh.
				e = &seqEntry{done: make(chan struct{})}
				ss.win[seq] = e
				return e, seqFresh
			}
			return e, seqDone
		default:
			return e, seqInflight
		}
	}
	if ss.maxDone > ss.window && seq <= ss.maxDone-ss.window {
		return nil, seqStale
	}
	e := &seqEntry{done: make(chan struct{})}
	ss.win[seq] = e
	return e, seqFresh
}

// complete records a committed write's encoded reply frame and wakes any
// duplicate waiting on it. reply is copied.
func (ss *session) complete(seq uint64, reply []byte) {
	ss.mu.Lock()
	e := ss.win[seq]
	if e == nil {
		ss.mu.Unlock()
		return
	}
	e.reply = append(make([]byte, 0, len(reply)), reply...)
	ss.cached += int64(len(e.reply))
	if ss.bytes != nil {
		ss.bytes.Add(int64(len(e.reply)))
	}
	ss.doneq = append(ss.doneq, seq)
	if seq > ss.maxDone {
		ss.maxDone = seq
	}
	close(e.done)
	// Evict tokens that fell out of the window; amortised so the common
	// case is O(1).
	if ss.maxDone > ss.window && uint64(len(ss.win)) > 2*ss.window {
		lo := ss.maxDone - ss.window
		for k, old := range ss.win {
			if k > lo {
				continue
			}
			select {
			case <-old.done:
				ss.uncache(old)
				delete(ss.win, k)
			default: // still in flight; keep
			}
		}
	}
	// Byte budget: evict completed entries oldest-first until under. A
	// doneq token whose entry is gone (window eviction, cancel re-arm) is
	// just skipped.
	for ss.budget > 0 && ss.cached > ss.budget && len(ss.doneq) > 0 {
		k := ss.doneq[0]
		ss.doneq = ss.doneq[1:]
		old := ss.win[k]
		if old == nil || old.reply == nil {
			continue
		}
		select {
		case <-old.done:
		default:
			continue // re-armed as fresh; not evictable
		}
		ss.uncache(old)
		delete(ss.win, k)
	}
	// Compact doneq once it is dominated by dead tokens, so the queue
	// cannot outgrow the window it tracks.
	if len(ss.doneq) > 2*len(ss.win)+16 {
		q := ss.doneq[:0]
		for _, k := range ss.doneq {
			if old := ss.win[k]; old != nil && old.reply != nil {
				q = append(q, k)
			}
		}
		ss.doneq = q
	}
	ss.mu.Unlock()
}

// cancel forgets a token whose write was refused without being applied
// (BUSY/SHUTDOWN shed); a retry re-executes under a fresh entry. Duplicate
// waiters see done with a nil reply and re-begin.
func (ss *session) cancel(seq uint64) {
	ss.mu.Lock()
	e := ss.win[seq]
	if e != nil {
		delete(ss.win, seq)
		close(e.done)
	}
	ss.mu.Unlock()
}

// sessionTable is the server's bounded session registry.
type sessionTable struct {
	mu     sync.Mutex
	m      map[uint64]*session
	cap    int
	window uint64
	budget int64 // per-session cached-reply byte budget (0 = unbounded)

	// bytes is the server-wide dedup-cache gauge, shared with every
	// session (nil in bare tests).
	bytes *atomic.Int64
}

func newSessionTable(capacity, window, budgetBytes int) *sessionTable {
	if budgetBytes < 0 { // -1: explicitly unbounded
		budgetBytes = 0
	}
	return &sessionTable{
		m:      make(map[uint64]*session),
		cap:    capacity,
		window: uint64(window),
		budget: int64(budgetBytes),
	}
}

// get returns (creating if needed) the session for id. At capacity an
// arbitrary existing session is evicted — eviction only widens a victim's
// retry semantics (its replays re-execute, same as crossing a restart).
func (t *sessionTable) get(id uint64) *session {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ss := t.m[id]; ss != nil {
		return ss
	}
	if len(t.m) >= t.cap {
		for k, victim := range t.m {
			// The victim's cached bytes leave the server-wide gauge with it.
			victim.mu.Lock()
			if victim.cached > 0 && t.bytes != nil {
				t.bytes.Add(-victim.cached)
				victim.cached = 0
			}
			victim.mu.Unlock()
			delete(t.m, k)
			break
		}
	}
	ss := &session{win: make(map[uint64]*seqEntry), window: t.window, budget: t.budget, bytes: t.bytes}
	t.m[id] = ss
	return ss
}
