package server

import (
	"math/rand"
	"time"

	"fasp/internal/shard"
)

// runHealer is the background self-healing loop (Config.AutoHeal): every
// HealInterval it scans the shards and re-runs recovery (KV.Heal) on any
// that stopped serving — a writer fault leaves a shard degraded and every
// request against it UNAVAIL until someone heals it, and under chaos that
// someone must be the server itself. Sauer & Härder's instant-recovery
// argument applies directly: recovery only stays trustworthy as a
// continuously-exercised path.
//
// Failed attempts back off exponentially per shard, capped at
// HealBackoffMax, with ±50% jitter so shards degraded by a common cause do
// not retry in lockstep. A successful heal resets the shard's backoff.
func (s *Server) runHealer() {
	defer close(s.healDone)
	type shardState struct {
		backoff time.Duration
		next    time.Time
	}
	state := make(map[int]*shardState)
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	tick := time.NewTicker(s.cfg.HealInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.healQuit:
			return
		case <-tick.C:
		}
		n := s.kv.Shards()
		for i := 0; i < n; i++ {
			info, err := s.kv.ShardStats(i)
			if err != nil {
				continue
			}
			if info.Health == shard.Healthy {
				delete(state, i)
				continue
			}
			st := state[i]
			if st == nil {
				st = &shardState{backoff: s.cfg.HealInterval}
				state[i] = st
			}
			now := time.Now()
			if now.Before(st.next) {
				continue
			}
			s.met.healAttempts.Add(1)
			if err := s.kv.Heal(i); err != nil {
				s.met.healFailures.Add(1)
				st.backoff *= 2
				if st.backoff > s.cfg.HealBackoffMax {
					st.backoff = s.cfg.HealBackoffMax
				}
				// Jitter the next attempt into [0.5, 1.5) × backoff.
				st.next = now.Add(st.backoff/2 + time.Duration(rng.Int63n(int64(st.backoff))))
			} else {
				delete(state, i)
			}
		}
	}
}
