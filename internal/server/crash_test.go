package server

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"fasp"
	"fasp/internal/server/client"
	"fasp/internal/server/wire"
)

// TestCrashUnderLoad holds the server to its durability-ack contract with
// the same oracle as cmd/crashtest: a shard's crash injector fires inside
// a group commit drained from concurrent network clients, the whole store
// then power-fails and recovers, and every op the server ACKED over the
// wire must be present and intact. The un-acked tail is bounded by the
// ops the clients saw rejected as UNAVAIL (a commit may become durable
// and crash before its reply — durable-but-unacked is legal,
// lost-acked is not).
func TestCrashUnderLoad(t *testing.T) {
	kv, err := fasp.OpenKV(fasp.Options{Shards: 4, PageSize: 256})
	if err != nil {
		t.Fatalf("OpenKV: %v", err)
	}
	defer kv.Close()
	srv := New(kv, Config{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	go srv.Serve()

	// Arm the victim shard before any traffic: the injector trips partway
	// into the cross-connection group-commit stream.
	const victim = 1
	vsys, err := kv.ShardSystem(victim)
	if err != nil {
		t.Fatalf("ShardSystem: %v", err)
	}
	vsys.CrashAfter(60)

	key := func(id int) []byte { return []byte(fmt.Sprintf("cul%06d", id)) }
	val := func(id int) []byte { return []byte(fmt.Sprintf("value-%06d", id)) }

	const (
		clients = 8
		perConn = 400
		batchN  = 8 // half the clients send BATCHes of this many ops
	)
	var (
		mu      sync.Mutex
		acked   = map[int]bool{}
		crashed int
		busy    int
		hard    error
	)
	record := func(id int, code wire.Code) {
		mu.Lock()
		defer mu.Unlock()
		switch code {
		case wire.CodeOK:
			acked[id] = true
		case wire.CodeUnavail:
			crashed++
		case wire.CodeBusy:
			busy++
		default:
			if hard == nil {
				hard = fmt.Errorf("op %d: unexpected code %v", id, code)
			}
		}
	}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := client.Dial(addr)
			if err != nil {
				mu.Lock()
				hard = err
				mu.Unlock()
				return
			}
			defer cl.Close()
			if c%2 == 0 {
				// Single-op pipeline of PUTs.
				for i := 0; i < perConn; i++ {
					id := c*perConn + i
					err := cl.Put(key(id), val(id))
					switch {
					case err == nil:
						record(id, wire.CodeOK)
					case errors.Is(err, wire.ErrRemoteUnavail):
						record(id, wire.CodeUnavail)
					case errors.Is(err, wire.ErrRemoteBusy):
						record(id, wire.CodeBusy)
					default:
						mu.Lock()
						if hard == nil {
							hard = fmt.Errorf("put %d: %w", id, err)
						}
						mu.Unlock()
						return
					}
				}
				return
			}
			// BATCH requests: per-op verdicts, crash lands mid-batch.
			ops := make([]wire.BatchOp, batchN)
			for i := 0; i < perConn; i += batchN {
				for j := range ops {
					id := c*perConn + i + j
					ops[j] = wire.BatchOp{Kind: wire.KindPut, Key: key(id), Val: val(id)}
				}
				codes, err := cl.Batch(ops)
				if err != nil {
					// Request-level shed: nothing in this batch was acked.
					code := wire.CodeUnavail
					if errors.Is(err, wire.ErrRemoteBusy) {
						code = wire.CodeBusy
					} else if !errors.Is(err, wire.ErrRemoteUnavail) {
						mu.Lock()
						if hard == nil {
							hard = fmt.Errorf("batch at %d: %w", i, err)
						}
						mu.Unlock()
						return
					}
					for j := range ops {
						record(c*perConn+i+j, code)
					}
					continue
				}
				for j, bc := range codes {
					record(c*perConn+i+j, bc)
				}
			}
		}(c)
	}
	wg.Wait()
	if hard != nil {
		t.Fatalf("hard client error: %v", hard)
	}
	if crashed == 0 {
		t.Fatalf("crash injector never fired (acked=%d) — raise load or lower the crash point", len(acked))
	}

	// Drain the server, then power-fail and recover the whole store.
	srv.Shutdown()
	kv.Crash(fasp.CrashOptions{})
	if err := kv.ReopenKV(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if err := kv.Validate(); err != nil {
		t.Fatalf("tree invalid after recovery: %v", err)
	}

	// Every wire-acked op survived intact.
	for id := range acked {
		got, ok, err := kv.Get(key(id))
		if err != nil || !ok {
			t.Fatalf("acked key %d missing after crash (err=%v)", id, err)
		}
		if !bytes.Equal(got, val(id)) {
			t.Fatalf("acked key %d corrupt: %q", id, got)
		}
	}
	// The un-acked tail is bounded: no batch is partially visible beyond
	// the ops the engine reported crashed.
	count, err := kv.Count()
	if err != nil {
		t.Fatalf("Count: %v", err)
	}
	if count < len(acked) || count > len(acked)+crashed {
		t.Fatalf("recovered %d keys; acked %d, crashed-unacked %d (busy %d)",
			count, len(acked), crashed, busy)
	}
	t.Logf("acked=%d crashed=%d busy=%d recovered=%d", len(acked), crashed, busy, count)
}
