// Package server is the fasp network service layer: a TCP daemon speaking
// the internal/server/wire protocol over a fasp.KV.
//
// Each accepted connection gets one reader goroutine. The reader decodes
// every frame already buffered on its connection and defers the write
// operations (PUT/DEL/BATCH) into one pending set, which it flushes the
// moment it would otherwise block — on a read request, on the
// backpressure cap, or when the socket has no more complete frames. The
// flush does not call the engine directly: write-sets go to the server's
// group-commit batcher goroutine (see runBatcher), which combines every
// connection's concurrently flushed ops into one KV.DoBatch — the
// cross-connection group commit. Pipelining batches within a connection;
// the batcher batches across connections; the engine's per-shard
// mailboxes turn each combined submission into per-shard failure-atomic
// transactions. Responses are emitted strictly in request order (the
// protocol carries no request ids), and no response is written before its
// write is durable in a committed transaction — an OK ack is a durability
// guarantee the crash-under-load test holds the server to.
//
// Backpressure is a global in-flight request gate: a request arriving with
// the gate full is answered with a typed retryable BUSY response in its
// pipeline slot; the connection itself is never dropped. Draining
// (Shutdown) stops the listener, answers new requests with SHUTDOWN,
// finishes every in-flight batch, and closes connections only after their
// final responses are flushed.
package server

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"fasp"
	"fasp/internal/obsv"
	"fasp/internal/server/wire"
)

// Config tunes a Server. The zero value serves with the defaults below.
type Config struct {
	// Name labels the server's metrics series (default "faspserver").
	Name string
	// MaxInFlight caps requests admitted concurrently across all
	// connections (default 1024). At the cap, further requests are answered
	// BUSY until slots free — load is shed per request, never per
	// connection.
	MaxInFlight int
	// MaxFrame bounds one request frame (default wire.DefaultMaxFrame).
	MaxFrame int
	// ScanLimit is the page size (pairs) of a SCAN with Limit 0, and the
	// hard per-reply cap (default 256).
	ScanLimit int
	// MaxCoalesce flushes a connection's pending writes when this many ops
	// have been deferred (default 1024).
	MaxCoalesce int
	// NoMetricsSource skips registering with the fasp /metrics endpoint
	// (tests that assert exact scrape contents).
	NoMetricsSource bool
	// IdleTimeout closes a connection whose blocking read stays idle this
	// long (0 = never). Expiry is answered with a typed CodeTimeout frame
	// before the close; nothing is lost — the connection had no request in
	// flight, so a client may simply reconnect.
	IdleTimeout time.Duration
	// WriteTimeout bounds one response flush to the socket (0 = never). A
	// peer that stops reading can otherwise wedge a connection goroutine
	// in the kernel send buffer forever.
	WriteTimeout time.Duration
	// WrapConn, when set, wraps every accepted connection before it is
	// served — the fault-injection seam (faultx.Injector.WrapConn).
	WrapConn func(net.Conn) net.Conn
	// AutoHeal starts a background loop that re-runs recovery on shards
	// that stop serving (writer fault → degraded), with capped exponential
	// backoff + jitter per shard. Off by default: a store whose shard
	// stays down without explanation is a diagnosable condition, and tests
	// of the UNAVAIL path rely on degradation being sticky.
	AutoHeal bool
	// HealInterval is the auto-heal scan cadence and first-retry backoff
	// (default 10ms). It also sizes the retry-after hint carried by
	// UNAVAIL responses.
	HealInterval time.Duration
	// HealBackoffMax caps the per-shard heal backoff (default 500ms).
	HealBackoffMax time.Duration
	// DedupWindow bounds each session's write-dedup window, in sequence
	// tokens (default 4096). See session.go.
	DedupWindow int
	// MaxSessions bounds the session table (default 1024).
	MaxSessions int
	// DedupCacheBytes bounds the reply bytes one session may cache for
	// exactly-once replays (default 256 KiB; -1 = unbounded). Over budget,
	// the oldest completed entries are evicted cache-first: a victim's
	// replay re-executes, exactly as if it had crossed a server restart.
	DedupCacheBytes int
	// GlobalBatcher selects the single global group-commit loop (the PR 7
	// design, kept as the A/B fallback arm) instead of the default
	// per-shard commit pipelines. The global loop commits rounds with an
	// all-shards barrier: accumulation never overlaps commit, and the
	// slowest shard in a round stalls every connection in it.
	GlobalBatcher bool
	// BatchSpin is the number of runtime.Gosched accumulation yields a
	// batcher (global loop or per-shard pipe) performs after a round's
	// first submission arrives, letting runnable connections flush into
	// the round before it commits (0 = default 2, -1 = none).
	BatchSpin int
}

func (c *Config) fill() {
	if c.Name == "" {
		c.Name = "faspserver"
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 1024
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = 1 << 20
	}
	if c.ScanLimit <= 0 {
		c.ScanLimit = 256
	}
	if c.MaxCoalesce <= 0 {
		c.MaxCoalesce = 1024
	}
	if c.HealInterval <= 0 {
		c.HealInterval = 10 * time.Millisecond
	}
	if c.HealBackoffMax <= 0 {
		c.HealBackoffMax = 500 * time.Millisecond
	}
	if c.DedupWindow <= 0 {
		c.DedupWindow = 4096
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	if c.DedupCacheBytes == 0 {
		c.DedupCacheBytes = 256 << 10
	}
	if c.BatchSpin == 0 {
		c.BatchSpin = 2
	}
}

// ErrServerClosed is returned by Serve after Shutdown completes the drain.
var ErrServerClosed = errors.New("server: closed")

// Server serves one fasp.KV over the wire protocol. It does not own the
// KV: Shutdown drains and returns, and the caller closes the store (the
// faspserver daemon does exactly that on SIGTERM).
type Server struct {
	kv  *fasp.KV
	cfg Config

	ln       net.Listener
	sem      chan struct{}
	draining atomic.Bool

	batchCh   chan *submission
	batchQuit chan struct{}
	batchDone chan struct{}
	pipeWG    sync.WaitGroup

	// pipes are the per-shard commit pipelines (nil under GlobalBatcher):
	// pipes[si] carries sub-submissions whose keys route to shard si.
	// spins is the normalised Config.BatchSpin; nshards mirrors the KV's
	// shard count for the conn partitioners.
	pipes   []chan *shardSub
	spins   int
	nshards int

	// clk0/clk1 are the global batcher's per-shard sim-clock scratch for
	// the barrier accounting (touched only by the runBatcher goroutine).
	clk0, clk1 []int64

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	connWG sync.WaitGroup // reader goroutines
	reqMu  sync.Mutex     // serialises reqWG.Add-from-zero against Wait
	reqWG  sync.WaitGroup // processing rounds with undelivered responses

	met      metrics
	sessions *sessionTable
	healQuit chan struct{} // non-nil when AutoHeal
	healDone chan struct{}
	unreg    func()
	downMu   sync.Mutex // serialises Shutdown/Kill
	down     bool
}

// New builds a Server over kv.
func New(kv *fasp.KV, cfg Config) *Server {
	cfg.fill()
	s := &Server{
		kv:        kv,
		cfg:       cfg,
		sem:       make(chan struct{}, cfg.MaxInFlight),
		conns:     make(map[net.Conn]struct{}),
		batchCh:   make(chan *submission, 1024),
		batchQuit: make(chan struct{}),
		batchDone: make(chan struct{}),
		sessions:  newSessionTable(cfg.MaxSessions, cfg.DedupWindow, cfg.DedupCacheBytes),
	}
	s.sessions.bytes = &s.met.dedupBytes
	s.spins = cfg.BatchSpin
	if s.spins < 0 {
		s.spins = 0
	}
	s.nshards = kv.Shards()
	if cfg.GlobalBatcher {
		s.pipeWG.Add(1)
		go s.runBatcher()
	} else {
		s.pipes = make([]chan *shardSub, s.nshards)
		for si := range s.pipes {
			s.pipes[si] = make(chan *shardSub, 1024)
		}
		s.pipeWG.Add(len(s.pipes))
		for si := range s.pipes {
			go s.runPipe(si)
		}
	}
	go func() {
		s.pipeWG.Wait()
		close(s.batchDone)
	}()
	if cfg.AutoHeal {
		s.healQuit = make(chan struct{})
		s.healDone = make(chan struct{})
		go s.runHealer()
	}
	return s
}

// Listen binds addr (":0" for ephemeral) and registers the metrics
// source; call Serve to start accepting.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("server: listen: %w", err)
	}
	s.ln = ln
	if !s.cfg.NoMetricsSource {
		name := s.cfg.Name
		s.unreg = fasp.RegisterPromSource(func(w io.Writer) {
			obsv.WriteServerPrometheus(w, name, s.Snapshot())
		})
	}
	return ln.Addr().String(), nil
}

// Addr reports the bound listen address.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Serve accepts connections until Shutdown, then returns ErrServerClosed.
func (s *Server) Serve() error {
	if s.ln == nil {
		return errors.New("server: Serve before Listen")
	}
	for {
		c, err := s.ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return ErrServerClosed
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		// Register under s.mu with a draining re-check: Shutdown stores
		// draining before it sweeps s.conns under the same lock, so a
		// connection either lands in the map before the sweep (and gets its
		// read unblocked) or observes draining here and is closed — a late
		// registrant can never slip past the sweep and outlive Shutdown.
		s.mu.Lock()
		if s.draining.Load() {
			s.mu.Unlock()
			c.Close()
			continue
		}
		if s.cfg.WrapConn != nil {
			// Wrap before registering so the shutdown sweep closes the
			// wrapper (and through it the socket), not a bypassed inner
			// conn.
			c = s.cfg.WrapConn(c)
		}
		s.conns[c] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		s.met.connsTotal.Add(1)
		s.met.connsOpen.Add(1)
		go s.serveConn(c)
	}
}

// ListenAndServe is Listen + Serve.
func (s *Server) ListenAndServe(addr string) error {
	if _, err := s.Listen(addr); err != nil {
		return err
	}
	return s.Serve()
}

// Shutdown drains gracefully: stop accepting, answer new requests with
// SHUTDOWN, wait for every in-flight batch to commit and its responses to
// flush, then close the connections. It is idempotent and safe to call
// concurrently; the KV is left open for the caller to Close.
func (s *Server) Shutdown() {
	s.downMu.Lock()
	defer s.downMu.Unlock()
	if s.down {
		return
	}
	s.down = true

	s.draining.Store(true)
	if s.ln != nil {
		s.ln.Close()
	}
	// In-flight processing rounds finish their group commits and write
	// their final responses. The mutex keeps a reader's Add-from-zero from
	// racing the Wait (a WaitGroup cannot re-arm under a waiter); a round
	// that starts after the barrier still completes under connWG, with its
	// requests answered SHUTDOWN.
	s.reqMu.Lock()
	s.reqWG.Wait()
	s.reqMu.Unlock()
	// Unblock readers parked on idle sockets. CloseRead delivers EOF while
	// still letting a racing final response flush; SetReadDeadline is the
	// fallback for non-TCP conns.
	s.mu.Lock()
	for c := range s.conns {
		if cr, ok := c.(interface{ CloseRead() error }); ok {
			cr.CloseRead()
		} else {
			c.SetReadDeadline(time.Unix(0, 0))
		}
	}
	s.mu.Unlock()
	s.connWG.Wait()
	// Every reader has exited; stop the group-commit loop after it drains
	// any straggler round.
	close(s.batchQuit)
	<-s.batchDone
	s.stopHealer()
	if s.unreg != nil {
		s.unreg()
	}
}

// Kill is the abrupt counterpart of Shutdown, for crash-restart testing: it
// stops accepting and closes every connection immediately, without the
// drain or the SHUTDOWN answers — in-flight requests simply never get their
// responses, exactly as if the process died. Reader goroutines and the
// batcher are still waited out (an in-flight group commit finishes against
// the KV; its acks are lost on the closed sockets), so when Kill returns no
// server goroutine touches the KV again and the caller may Crash/Reopen it
// and start a fresh Server on the same address.
func (s *Server) Kill() {
	s.downMu.Lock()
	defer s.downMu.Unlock()
	if s.down {
		return
	}
	s.down = true

	s.draining.Store(true)
	if s.ln != nil {
		s.ln.Close()
	}
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.connWG.Wait()
	close(s.batchQuit)
	<-s.batchDone
	s.stopHealer()
	if s.unreg != nil {
		s.unreg()
	}
}

func (s *Server) stopHealer() {
	if s.healQuit != nil {
		close(s.healQuit)
		<-s.healDone
	}
}

// Snapshot renders the server's metrics counters.
func (s *Server) Snapshot() obsv.ServerSnapshot {
	snap := s.met.snapshot(len(s.sem), cap(s.sem))
	if s.kv.Sharded() {
		es := s.kv.EngineStats()
		// The gauge counts shards not serving, whatever the flavour: a
		// crashed shard refuses requests exactly like a degraded one.
		snap.DegradedShards = int64(es.DegradedShards + es.CrashedShards)
	}
	return snap
}

// retryHintMS is the retry-after hint (milliseconds) an error response of
// the given code carries: how long the client should back off before the
// condition can plausibly have cleared. BUSY clears as soon as in-flight
// requests drain; UNAVAIL clears on the auto-heal cadence (or operator
// action, for which 50ms is an honest polling hint).
func (s *Server) retryHintMS(code wire.Code) uint32 {
	switch code {
	case wire.CodeBusy:
		return 2
	case wire.CodeUnavail:
		if s.cfg.AutoHeal {
			ms := 2 * s.cfg.HealInterval.Milliseconds()
			if ms < 1 {
				ms = 1
			}
			return uint32(ms)
		}
		return 50
	}
	return 0
}

// beginRound registers one processing round with undelivered responses;
// the round ends with reqWG.Done after its responses are written.
func (s *Server) beginRound() {
	s.reqMu.Lock()
	s.reqWG.Add(1)
	s.reqMu.Unlock()
}

// admit try-acquires one in-flight slot; false sheds the request as BUSY.
func (s *Server) admit() bool {
	select {
	case s.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

func (s *Server) release() { <-s.sem }

func (s *Server) serveConn(c net.Conn) {
	defer s.connWG.Done()
	defer s.met.connsOpen.Add(-1)
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
	}()
	newConn(s, c).run()
}
