package wire

import (
	"bufio"
	"bytes"
	"testing"
)

// Alloc-regression pins for the wire hot path. Budgets are exact: the
// encoders append into caller buffers and the decoders alias the frame
// buffer, so once the reusable buffers have warmed to capacity a steady
// request costs zero heap allocations in this package. A regression here
// fails CI — if a change legitimately needs an allocation, move it off
// the per-request path or re-justify the budget in this file.

// TestEncodeAllocFree pins the request/response encoders at zero
// allocations per frame once dst has capacity.
func TestEncodeAllocFree(t *testing.T) {
	key, val := []byte("alloc-pin-key"), bytes.Repeat([]byte("v"), 64)
	batch := []BatchOp{
		{Kind: KindPut, Key: key, Val: val},
		{Kind: KindInsert, Key: key, Val: val},
		{Kind: KindDelete, Key: key},
	}
	codes := []Code{CodeOK, CodeDup, CodeKeyAbsent}
	buf := make([]byte, 0, 4096)

	cases := []struct {
		name string
		fn   func()
	}{
		{"AppendGet", func() { buf = AppendGet(buf[:0], key) }},
		{"AppendPut", func() { buf = AppendPut(buf[:0], key, val) }},
		{"AppendDel", func() { buf = AppendDel(buf[:0], key) }},
		{"AppendBatch", func() { buf = AppendBatch(buf[:0], batch) }},
		{"AppendPutSeq", func() { buf = AppendPutSeq(buf[:0], 42, key, val) }},
		{"AppendOK", func() { buf = AppendOK(buf[:0]) }},
		{"AppendValue", func() { buf = AppendValue(buf[:0], CodeOK, val) }},
		{"AppendBatchReply", func() { buf = AppendBatchReply(buf[:0], codes) }},
		{"AppendErr", func() { buf = AppendErr(buf[:0], CodeBusy, 3, 5, "overloaded") }},
	}
	for _, tc := range cases {
		if n := testing.AllocsPerRun(200, tc.fn); n != 0 {
			t.Errorf("%s: %.1f allocs/frame, budget 0", tc.name, n)
		}
	}
}

// TestDecodeAllocFree pins ReadFrame + ParseRequest at zero allocations
// per frame once the frame buffer and req.Ops have warmed to capacity.
func TestDecodeAllocFree(t *testing.T) {
	key, val := []byte("alloc-pin-key"), bytes.Repeat([]byte("v"), 64)
	var stream []byte
	stream = AppendPut(stream, key, val)
	stream = AppendGet(stream, key)
	stream = AppendBatch(stream, []BatchOp{
		{Kind: KindPut, Key: key, Val: val},
		{Kind: KindDelete, Key: key},
	})
	nframes := 3

	src := bytes.NewReader(stream)
	br := bufio.NewReader(src)
	buf := make([]byte, 0, 4096)
	var req Request
	req.Ops = make([]BatchOp, 0, 8)

	decodeStream := func() {
		src.Reset(stream)
		br.Reset(src)
		for i := 0; i < nframes; i++ {
			op, payload, nbuf, err := ReadFrame(br, 0, buf)
			if err != nil {
				t.Fatalf("ReadFrame: %v", err)
			}
			buf = nbuf
			if err := ParseRequest(op, payload, &req); err != nil {
				t.Fatalf("ParseRequest: %v", err)
			}
		}
	}
	decodeStream() // warm buffers
	if n := testing.AllocsPerRun(200, decodeStream); n != 0 {
		t.Errorf("decode stream: %.1f allocs, budget 0 (3 frames)", n)
	}
}
