package wire

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"fasp/internal/btree"
	"fasp/internal/shard"
	"fasp/internal/slotted"
)

// Code is a response status byte — the wire image of the engine's error
// taxonomy. CodeFor maps engine errors onto codes on the server; Err maps
// codes back onto typed client errors, so a client can errors.Is against
// the sentinels below exactly like an embedded caller tests fasp's.
type Code uint8

const (
	// CodeOK acknowledges the request; payload is op-specific.
	CodeOK Code = 0
	// CodeNotFound is a GET miss (not an error — the key is absent).
	CodeNotFound Code = 1
	// CodeDup is a logical per-op failure: INSERT of an existing key.
	CodeDup Code = 2
	// CodeKeyAbsent is a logical per-op failure: UPDATE/DELETE of an
	// absent key.
	CodeKeyAbsent Code = 3
	// CodeTooLarge is a logical per-op failure: record cannot fit a page.
	CodeTooLarge Code = 4
	// CodeBusy is retryable backpressure: the server shed the request
	// (in-flight limit) or a shard mailbox stayed full through the enqueue
	// timeout (fasp.ErrShardBusy). The operation was not applied; retry
	// with backoff.
	CodeBusy Code = 5
	// CodeUnavail reports a shard not serving (writer fault → degraded,
	// fasp.ErrShardDown — or crashed awaiting recovery,
	// fasp.ErrShardCrashed). The error payload pins the shard id when the
	// engine reported one.
	CodeUnavail Code = 6
	// CodeShutdown reports a server draining or an engine closed under the
	// request (fasp.ErrClosed). Reconnect later.
	CodeShutdown Code = 7
	// CodeProto reports a malformed frame; the server closes the
	// connection after sending it, since framing is desynchronised.
	CodeProto Code = 8
	// CodeInternal is any engine error outside the taxonomy above.
	CodeInternal Code = 9
	// CodeTimeout reports that the server expired the connection's idle
	// deadline (Config.IdleTimeout) and is closing it. Nothing was lost —
	// the connection had no request in flight — so a client may simply
	// reconnect.
	CodeTimeout Code = 10
)

func (c Code) String() string {
	switch c {
	case CodeOK:
		return "ok"
	case CodeNotFound:
		return "not_found"
	case CodeDup:
		return "duplicate"
	case CodeKeyAbsent:
		return "key_absent"
	case CodeTooLarge:
		return "too_large"
	case CodeBusy:
		return "busy"
	case CodeUnavail:
		return "unavail"
	case CodeShutdown:
		return "shutdown"
	case CodeProto:
		return "proto"
	case CodeInternal:
		return "internal"
	case CodeTimeout:
		return "timeout"
	}
	return fmt.Sprintf("code(%d)", uint8(c))
}

// Retryable reports whether a client should retry the request as-is after
// backing off: true only for BUSY — load shedding, not failure.
func (c Code) Retryable() bool { return c == CodeBusy }

// Logical reports whether the code is a per-op logical verdict (the
// operation was evaluated and refused by data state, not by availability).
func (c Code) Logical() bool {
	return c == CodeNotFound || c == CodeDup || c == CodeKeyAbsent || c == CodeTooLarge
}

// CodeFor maps an engine error to its wire code. The order matters only
// for wrapped chains that can never combine (availability vs logical);
// unknown errors are CodeInternal. The table test in code_test.go pins
// every mapping.
func CodeFor(err error) Code {
	switch {
	case err == nil:
		return CodeOK
	case errors.Is(err, shard.ErrBusy):
		return CodeBusy
	case errors.Is(err, shard.ErrClosed):
		return CodeShutdown
	case errors.Is(err, shard.ErrShardDown), errors.Is(err, shard.ErrCrashed):
		return CodeUnavail
	case errors.Is(err, slotted.ErrDuplicate):
		return CodeDup
	case errors.Is(err, btree.ErrKeyNotFound):
		return CodeKeyAbsent
	case errors.Is(err, btree.ErrTooLarge):
		return CodeTooLarge
	}
	return CodeInternal
}

// ShardOf extracts the shard id an engine error is pinned to. The shard
// engine prefixes contained-fault and submission errors with "shard %d:";
// errors without the prefix (e.g. bare ErrCrashed from a poisoned batch)
// yield -1.
func ShardOf(err error) int32 {
	if err == nil {
		return -1
	}
	s := err.Error()
	if !strings.HasPrefix(s, "shard ") {
		return -1
	}
	s = s[len("shard "):]
	cut := strings.IndexByte(s, ':')
	if cut <= 0 {
		return -1
	}
	n, perr := strconv.Atoi(s[:cut])
	if perr != nil || n < 0 {
		return -1
	}
	return int32(n)
}

// Typed client-side errors, one per non-OK code. Err wraps these with the
// server's message, so errors.Is works through the wire round trip.
var (
	ErrRemoteBusy      = errors.New("wire: server busy (retryable)")
	ErrRemoteUnavail   = errors.New("wire: shard unavailable")
	ErrRemoteShutdown  = errors.New("wire: server shutting down")
	ErrRemoteDup       = errors.New("wire: duplicate key")
	ErrRemoteKeyAbsent = errors.New("wire: key not found")
	ErrRemoteTooLarge  = errors.New("wire: record too large")
	ErrRemoteProto     = errors.New("wire: protocol error reported by peer")
	ErrRemoteTimeout   = errors.New("wire: connection idle timeout")
	ErrRemote          = errors.New("wire: server error")
)

// sentinel returns the client-side sentinel for a non-OK, non-NotFound
// code.
func (c Code) sentinel() error {
	switch c {
	case CodeBusy:
		return ErrRemoteBusy
	case CodeUnavail:
		return ErrRemoteUnavail
	case CodeShutdown:
		return ErrRemoteShutdown
	case CodeDup:
		return ErrRemoteDup
	case CodeKeyAbsent:
		return ErrRemoteKeyAbsent
	case CodeTooLarge:
		return ErrRemoteTooLarge
	case CodeProto:
		return ErrRemoteProto
	case CodeTimeout:
		return ErrRemoteTimeout
	}
	return ErrRemote
}

// Err builds the typed client error for an error response. CodeOK and
// CodeNotFound return nil — a GET miss is a (nil, false) result, not an
// error.
func (c Code) Err(shard int32, msg string) error {
	if c == CodeOK || c == CodeNotFound {
		return nil
	}
	sent := c.sentinel()
	if shard >= 0 {
		if msg != "" {
			return fmt.Errorf("%w: shard %d: %s", sent, shard, msg)
		}
		return fmt.Errorf("%w: shard %d", sent, shard)
	}
	if msg != "" {
		return fmt.Errorf("%w: %s", sent, msg)
	}
	return sent
}
