package wire

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"fasp/internal/btree"
	"fasp/internal/shard"
	"fasp/internal/slotted"
)

// readOne decodes a single frame from raw.
func readOne(t *testing.T, raw []byte) (byte, []byte) {
	t.Helper()
	br := bufio.NewReader(bytes.NewReader(raw))
	op, payload, _, err := ReadFrame(br, 0, nil)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	return op, payload
}

func TestRequestRoundTrip(t *testing.T) {
	var req Request

	op, payload := readOne(t, AppendGet(nil, []byte("alpha")))
	if err := ParseRequest(op, payload, &req); err != nil {
		t.Fatalf("get: %v", err)
	}
	if req.Op != OpGet || string(req.Key) != "alpha" {
		t.Fatalf("get round trip: %+v", req)
	}

	op, payload = readOne(t, AppendPut(nil, []byte("k"), []byte("value-1")))
	if err := ParseRequest(op, payload, &req); err != nil {
		t.Fatalf("put: %v", err)
	}
	if req.Op != OpPut || string(req.Key) != "k" || string(req.Val) != "value-1" {
		t.Fatalf("put round trip: %+v", req)
	}

	// Empty value is legal and distinct from absent.
	op, payload = readOne(t, AppendPut(nil, []byte("k"), nil))
	if err := ParseRequest(op, payload, &req); err != nil {
		t.Fatalf("put empty: %v", err)
	}
	if len(req.Val) != 0 {
		t.Fatalf("put empty val: %q", req.Val)
	}

	op, payload = readOne(t, AppendDel(nil, []byte("gone")))
	if err := ParseRequest(op, payload, &req); err != nil {
		t.Fatalf("del: %v", err)
	}
	if req.Op != OpDel || string(req.Key) != "gone" {
		t.Fatalf("del round trip: %+v", req)
	}

	ops := []BatchOp{
		{Kind: KindPut, Key: []byte("a"), Val: []byte("1")},
		{Kind: KindInsert, Key: []byte("b"), Val: []byte("2")},
		{Kind: KindUpdate, Key: []byte("c"), Val: []byte("3")},
		{Kind: KindDelete, Key: []byte("d")},
	}
	op, payload = readOne(t, AppendBatch(nil, ops))
	if err := ParseRequest(op, payload, &req); err != nil {
		t.Fatalf("batch: %v", err)
	}
	if len(req.Ops) != len(ops) {
		t.Fatalf("batch len = %d, want %d", len(req.Ops), len(ops))
	}
	for i := range ops {
		if req.Ops[i].Kind != ops[i].Kind ||
			!bytes.Equal(req.Ops[i].Key, ops[i].Key) ||
			!bytes.Equal(req.Ops[i].Val, ops[i].Val) {
			t.Fatalf("batch op %d: got %+v want %+v", i, req.Ops[i], ops[i])
		}
	}

	op, payload = readOne(t, AppendScan(nil, []byte("lo"), []byte("hi"), true, false, 77))
	if err := ParseRequest(op, payload, &req); err != nil {
		t.Fatalf("scan: %v", err)
	}
	if !req.HasLo || !req.HasHi || !req.Rev || req.ExclHi || req.Limit != 77 ||
		string(req.Lo) != "lo" || string(req.Hi) != "hi" {
		t.Fatalf("scan round trip: %+v", req)
	}

	op, payload = readOne(t, AppendScan(nil, nil, nil, false, false, 0))
	if err := ParseRequest(op, payload, &req); err != nil {
		t.Fatalf("open scan: %v", err)
	}
	if req.HasLo || req.HasHi || req.Rev || req.ExclHi || req.Limit != 0 {
		t.Fatalf("open scan round trip: %+v", req)
	}

	// Exclusive hi (reverse-resume paging).
	op, payload = readOne(t, AppendScan(nil, nil, []byte("hi"), true, true, 0))
	if err := ParseRequest(op, payload, &req); err != nil {
		t.Fatalf("excl-hi scan: %v", err)
	}
	if req.HasLo || !req.HasHi || !req.Rev || !req.ExclHi || string(req.Hi) != "hi" {
		t.Fatalf("excl-hi scan round trip: %+v", req)
	}

	// exclHi without a hi bound must not be encoded…
	op, payload = readOne(t, AppendScan(nil, nil, nil, false, true, 0))
	if err := ParseRequest(op, payload, &req); err != nil || req.ExclHi {
		t.Fatalf("exclHi without hi: err=%v req=%+v", err, req)
	}
	// …and a hand-forged frame carrying it is malformed.
	forged := []byte{ScanExclHi, 0, 0, 0, 0} // flags, u32 limit
	if err := ParseRequest(OpScan, forged, &req); !errors.Is(err, ErrMalformed) {
		t.Fatalf("forged exclHi-without-hi: %v", err)
	}

	for _, empty := range []byte{OpCount, OpStats, OpPing} {
		op, payload = readOne(t, AppendEmptyReq(nil, empty))
		if err := ParseRequest(op, payload, &req); err != nil {
			t.Fatalf("%s: %v", OpName(empty), err)
		}
		if req.Op != empty {
			t.Fatalf("%s round trip: %+v", OpName(empty), req)
		}
	}
}

func TestSeqRequestRoundTrip(t *testing.T) {
	var req Request

	op, payload := readOne(t, AppendHello(nil, 0xdeadbeefcafe))
	if err := ParseRequest(op, payload, &req); err != nil {
		t.Fatalf("hello: %v", err)
	}
	if req.Op != OpHello || req.SID != 0xdeadbeefcafe {
		t.Fatalf("hello round trip: %+v", req)
	}

	op, payload = readOne(t, AppendPutSeq(nil, 7, []byte("k"), []byte("v")))
	if err := ParseRequest(op, payload, &req); err != nil {
		t.Fatalf("put_seq: %v", err)
	}
	if req.Op != OpPutSeq || !req.HasSeq || req.Seq != 7 ||
		string(req.Key) != "k" || string(req.Val) != "v" {
		t.Fatalf("put_seq round trip: %+v", req)
	}

	op, payload = readOne(t, AppendDelSeq(nil, 8, []byte("gone")))
	if err := ParseRequest(op, payload, &req); err != nil {
		t.Fatalf("del_seq: %v", err)
	}
	if req.Op != OpDelSeq || !req.HasSeq || req.Seq != 8 || string(req.Key) != "gone" {
		t.Fatalf("del_seq round trip: %+v", req)
	}

	ops := []BatchOp{
		{Kind: KindInsert, Key: []byte("a"), Val: []byte("1")},
		{Kind: KindDelete, Key: []byte("b")},
	}
	op, payload = readOne(t, AppendBatchSeq(nil, 9, ops))
	if err := ParseRequest(op, payload, &req); err != nil {
		t.Fatalf("batch_seq: %v", err)
	}
	if req.Op != OpBatchSeq || !req.HasSeq || req.Seq != 9 || len(req.Ops) != 2 {
		t.Fatalf("batch_seq round trip: %+v", req)
	}

	// A plain request must not report a sequence token.
	op, payload = readOne(t, AppendPut(nil, []byte("k"), []byte("v")))
	if err := ParseRequest(op, payload, &req); err != nil || req.HasSeq {
		t.Fatalf("plain put HasSeq: err=%v req=%+v", err, req)
	}

	// Truncated seq prefix is malformed, not a panic.
	if err := ParseRequest(OpPutSeq, []byte{1, 2, 3}, &req); !errors.Is(err, ErrMalformed) {
		t.Fatalf("short put_seq: %v", err)
	}
	if err := ParseRequest(OpHello, nil, &req); !errors.Is(err, ErrMalformed) {
		t.Fatalf("short hello: %v", err)
	}

	if BaseOp(OpPutSeq) != OpPut || BaseOp(OpDelSeq) != OpDel ||
		BaseOp(OpBatchSeq) != OpBatch || BaseOp(OpGet) != OpGet || BaseOp(OpHello) != OpHello {
		t.Fatal("BaseOp mapping")
	}
}

func TestResponseRoundTrip(t *testing.T) {
	code, payload := readOne(t, AppendOK(nil))
	if Code(code) != CodeOK || len(payload) != 0 {
		t.Fatalf("ok: code=%d payload=%q", code, payload)
	}

	code, payload = readOne(t, AppendValue(nil, CodeOK, []byte("hit")))
	if Code(code) != CodeOK || string(payload) != "hit" {
		t.Fatalf("value: code=%d payload=%q", code, payload)
	}

	code, payload = readOne(t, AppendCount(nil, 123456789012345))
	if Code(code) != CodeOK {
		t.Fatalf("count code: %d", code)
	}
	n, err := ParseCount(payload)
	if err != nil || n != 123456789012345 {
		t.Fatalf("count: %d, %v", n, err)
	}
	if _, err := ParseCount(payload[:5]); !errors.Is(err, ErrMalformed) {
		t.Fatalf("short count err: %v", err)
	}

	code, payload = readOne(t, AppendErr(nil, CodeUnavail, 3, 40, "writer faulted"))
	if Code(code) != CodeUnavail {
		t.Fatalf("err code: %d", code)
	}
	sh, retryMS, msg := ParseErr(payload)
	if sh != 3 || retryMS != 40 || msg != "writer faulted" {
		t.Fatalf("err payload: shard=%d retry=%d msg=%q", sh, retryMS, msg)
	}
	code, payload = readOne(t, AppendErr(nil, CodeBusy, -1, 0, "shed"))
	sh, retryMS, _ = ParseErr(payload)
	if sh != -1 || retryMS != 0 {
		t.Fatalf("unpinned err: shard=%d retry=%d", sh, retryMS)
	}
	// Legacy 4-byte shard-only payload still parses (no hint).
	legacy := []byte{0xff, 0xff, 0xff, 0xfe, 'x'} // shard -2, then message
	if sh, retryMS, msg = ParseErr(legacy); sh != -2 || retryMS != 0 || msg != "x" {
		t.Fatalf("legacy err payload: shard=%d retry=%d msg=%q", sh, retryMS, msg)
	}

	in := []Code{CodeOK, CodeDup, CodeKeyAbsent, CodeOK}
	code, payload = readOne(t, AppendBatchReply(nil, in))
	if Code(code) != CodeOK {
		t.Fatalf("batch reply code: %d", code)
	}
	out, err := ParseBatchReply(payload, nil)
	if err != nil || len(out) != len(in) {
		t.Fatalf("batch reply: %v, %v", out, err)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("batch reply[%d] = %v, want %v", i, out[i], in[i])
		}
	}
	if _, err := ParseBatchReply(payload[:len(payload)-1], nil); !errors.Is(err, ErrMalformed) {
		t.Fatalf("torn batch reply err: %v", err)
	}

	var sw ScanReplyWriter
	sw.Begin(nil)
	sw.Pair([]byte("k1"), []byte("v1"))
	sw.Pair([]byte("k2"), []byte("v2"))
	code, payload = readOne(t, sw.End(true))
	if Code(code) != CodeOK {
		t.Fatalf("scan reply code: %d", code)
	}
	var got []string
	more, err := ParseScanReply(payload, func(k, v []byte) bool {
		got = append(got, string(k)+"="+string(v))
		return true
	})
	if err != nil || !more {
		t.Fatalf("scan reply: more=%v err=%v", more, err)
	}
	if len(got) != 2 || got[0] != "k1=v1" || got[1] != "k2=v2" {
		t.Fatalf("scan pairs: %v", got)
	}
}

func TestPipelinedStream(t *testing.T) {
	// Several frames back to back through one reader, reusing the buffer.
	var raw []byte
	raw = AppendGet(raw, []byte("a"))
	raw = AppendPut(raw, []byte("b"), []byte("vv"))
	raw = AppendEmptyReq(raw, OpPing)
	br := bufio.NewReader(bytes.NewReader(raw))
	var buf []byte
	var ops []byte
	for {
		op, _, nbuf, err := ReadFrame(br, 0, buf)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		buf = nbuf
		ops = append(ops, op)
	}
	if !bytes.Equal(ops, []byte{OpGet, OpPut, OpPing}) {
		t.Fatalf("stream ops: %v", ops)
	}
}

func TestPeekFrame(t *testing.T) {
	full := AppendPut(nil, []byte("key"), []byte("val"))
	// Feed the bytes one by one: PeekFrame must stay false (never block)
	// until the whole frame is buffered.
	r, w := io.Pipe()
	br := bufio.NewReader(r)
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Write(full)
		w.Close()
	}()
	// Force everything into the buffer, then check.
	if _, err := br.Peek(len(full)); err != nil {
		t.Fatalf("peek: %v", err)
	}
	ready, err := PeekFrame(br, 0)
	if err != nil || !ready {
		t.Fatalf("PeekFrame full = %v, %v", ready, err)
	}
	<-done

	// Partial frame: header present, body missing.
	br2 := bufio.NewReader(bytes.NewReader(full[:6]))
	br2.Peek(6)
	ready, err = PeekFrame(br2, 0)
	if err != nil || ready {
		t.Fatalf("PeekFrame partial = %v, %v", ready, err)
	}

	// Oversized header is reported before the body arrives.
	big := []byte{0xff, 0xff, 0xff, 0xff, OpGet}
	br3 := bufio.NewReader(bytes.NewReader(big))
	br3.Peek(5)
	if _, err = PeekFrame(br3, 1024); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("PeekFrame oversized err: %v", err)
	}
}

func TestDecoderRejects(t *testing.T) {
	read := func(raw []byte, max int) error {
		br := bufio.NewReader(bytes.NewReader(raw))
		_, _, _, err := ReadFrame(br, max, nil)
		return err
	}

	if err := read([]byte{0, 0, 0, 0}, 0); !errors.Is(err, ErrMalformed) {
		t.Fatalf("zero-length frame: %v", err)
	}
	if err := read([]byte{0xff, 0xff, 0xff, 0xff, 1}, 0); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("oversized frame: %v", err)
	}
	if err := read([]byte{0, 0}, 0); err != io.ErrUnexpectedEOF {
		t.Fatalf("torn header: %v", err)
	}
	if err := read([]byte{0, 0, 0, 5, OpGet, 'a'}, 0); err != io.ErrUnexpectedEOF {
		t.Fatalf("torn body: %v", err)
	}

	var req Request
	// PUT with key length past the frame end.
	if err := ParseRequest(OpPut, []byte{0, 0, 0, 200, 'k'}, &req); !errors.Is(err, ErrMalformed) {
		t.Fatalf("put bad klen: %v", err)
	}
	// BATCH whose count cannot fit the frame.
	if err := ParseRequest(OpBatch, []byte{0, 0, 1, 0}, &req); !errors.Is(err, ErrMalformed) {
		t.Fatalf("batch forged count: %v", err)
	}
	// BATCH over the op-count limit.
	big := appendU32(nil, MaxBatchOps+1)
	if err := ParseRequest(OpBatch, big, &req); !errors.Is(err, ErrMalformed) {
		t.Fatalf("batch over limit: %v", err)
	}
	// BATCH with an unknown kind.
	raw := appendU32(nil, 1)
	raw = append(raw, 9)
	raw = appendBytes(raw, []byte("k"))
	raw = appendBytes(raw, nil)
	if err := ParseRequest(OpBatch, raw, &req); !errors.Is(err, ErrMalformed) {
		t.Fatalf("batch bad kind: %v", err)
	}
	// SCAN with undefined flag bits.
	if err := ParseRequest(OpScan, []byte{0x80, 0, 0, 0, 0}, &req); !errors.Is(err, ErrMalformed) {
		t.Fatalf("scan bad flags: %v", err)
	}
	// Trailing bytes after a complete COUNT payload.
	if err := ParseRequest(OpCount, []byte{1}, &req); !errors.Is(err, ErrMalformed) {
		t.Fatalf("count trailing: %v", err)
	}
	// Unknown opcode.
	if err := ParseRequest(0x7f, nil, &req); !errors.Is(err, ErrBadOpcode) {
		t.Fatalf("bad opcode: %v", err)
	}
	if err := ParseRequest(0, nil, &req); !errors.Is(err, ErrBadOpcode) {
		t.Fatalf("zero opcode: %v", err)
	}
}

// TestKindMirrorsShardOpKind pins the wire batch kinds to the engine's
// OpKind values — the server converts by value, no translation table.
func TestKindMirrorsShardOpKind(t *testing.T) {
	pairs := []struct {
		wire uint8
		eng  shard.OpKind
	}{
		{KindPut, shard.OpPut},
		{KindInsert, shard.OpInsert},
		{KindUpdate, shard.OpUpdate},
		{KindDelete, shard.OpDelete},
	}
	for _, p := range pairs {
		if p.wire != uint8(p.eng) {
			t.Fatalf("wire kind %d != shard kind %d", p.wire, uint8(p.eng))
		}
	}
}

// TestCodeForTable pins every engine-error → wire-code mapping, including
// wrapped forms as the engine actually produces them.
func TestCodeForTable(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want Code
	}{
		{"nil", nil, CodeOK},
		{"busy", shard.ErrBusy, CodeBusy},
		{"busy wrapped", fmt.Errorf("shard 2: %w", shard.ErrBusy), CodeBusy},
		{"closed", shard.ErrClosed, CodeShutdown},
		{"closed wrapped", fmt.Errorf("submit: %w", shard.ErrClosed), CodeShutdown},
		{"down", shard.ErrShardDown, CodeUnavail},
		{"down wrapped", fmt.Errorf("shard 5: %w: writer fault", shard.ErrShardDown), CodeUnavail},
		{"crashed", shard.ErrCrashed, CodeUnavail},
		{"duplicate", slotted.ErrDuplicate, CodeDup},
		{"duplicate wrapped", fmt.Errorf("insert k3: %w", slotted.ErrDuplicate), CodeDup},
		{"absent", btree.ErrKeyNotFound, CodeKeyAbsent},
		{"too large", btree.ErrTooLarge, CodeTooLarge},
		{"unknown", errors.New("disk on fire"), CodeInternal},
	}
	for _, c := range cases {
		if got := CodeFor(c.err); got != c.want {
			t.Errorf("%s: CodeFor = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestShardOf(t *testing.T) {
	cases := []struct {
		err  error
		want int32
	}{
		{nil, -1},
		{fmt.Errorf("shard 3: %w", shard.ErrShardDown), 3},
		{fmt.Errorf("shard 12: %w: cause", shard.ErrShardDown), 12},
		{shard.ErrCrashed, -1},
		{errors.New("shard x: nope"), -1},
		{errors.New("shard -4: nope"), -1},
		{errors.New("shardless"), -1},
	}
	for _, c := range cases {
		if got := ShardOf(c.err); got != c.want {
			t.Errorf("ShardOf(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

func TestCodeErrSentinels(t *testing.T) {
	cases := []struct {
		code Code
		want error
	}{
		{CodeBusy, ErrRemoteBusy},
		{CodeUnavail, ErrRemoteUnavail},
		{CodeShutdown, ErrRemoteShutdown},
		{CodeDup, ErrRemoteDup},
		{CodeKeyAbsent, ErrRemoteKeyAbsent},
		{CodeTooLarge, ErrRemoteTooLarge},
		{CodeProto, ErrRemoteProto},
		{CodeInternal, ErrRemote},
	}
	for _, c := range cases {
		err := c.code.Err(4, "detail")
		if !errors.Is(err, c.want) {
			t.Errorf("%v.Err not Is(%v): %v", c.code, c.want, err)
		}
		if !strings.Contains(err.Error(), "shard 4") || !strings.Contains(err.Error(), "detail") {
			t.Errorf("%v.Err text: %v", c.code, err)
		}
	}
	if err := CodeOK.Err(-1, ""); err != nil {
		t.Fatalf("CodeOK.Err: %v", err)
	}
	if err := CodeNotFound.Err(-1, ""); err != nil {
		t.Fatalf("CodeNotFound.Err: %v", err)
	}
	if CodeBusy.Err(-1, "") != ErrRemoteBusy {
		t.Fatalf("bare busy should be the sentinel itself")
	}
	if !CodeBusy.Retryable() || CodeUnavail.Retryable() {
		t.Fatalf("Retryable table wrong")
	}
}

func TestCodeStrings(t *testing.T) {
	for c := CodeOK; c <= CodeInternal; c++ {
		if s := c.String(); s == "" || strings.HasPrefix(s, "code(") {
			t.Errorf("Code %d has no name: %q", c, s)
		}
	}
	if Code(200).String() != "code(200)" {
		t.Errorf("unknown code string: %q", Code(200).String())
	}
}
