// Package wire is the faspserver network protocol: a pipelined,
// length-prefixed binary framing shared — via this one package — by the
// server's connection handlers, the Go client, and the load generator, so
// frame encoding exists exactly once.
//
// Every frame is
//
//	[u32 big-endian length][u8 opcode-or-status][payload]
//
// where length covers the opcode byte plus the payload. Requests carry an
// opcode (OpGet .. OpPing); responses carry a status Code. The protocol is
// strictly pipelined: a connection's responses come back in request order,
// so frames need no request ids and a client may keep any number of
// requests in flight.
//
// The decoder is hardened for untrusted peers: a frame length above the
// caller's limit fails with ErrFrameTooBig *before* any allocation, inner
// length fields are validated against the frame's real size before slices
// are built (a forged u32 cannot force an oversized allocation), and an
// unknown opcode is typed ErrBadOpcode. FuzzWireFrame pins all of this.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Request opcodes.
const (
	OpGet   byte = 1 // payload: key
	OpPut   byte = 2 // payload: u32 klen, key, val
	OpDel   byte = 3 // payload: key
	OpBatch byte = 4 // payload: u32 n, n × (u8 kind, u32 klen, key, u32 vlen, val)
	OpScan  byte = 5 // payload: u8 flags, [u32 lolen, lo], [u32 hilen, hi], u32 limit
	OpCount byte = 6 // payload: empty
	OpStats byte = 7 // payload: empty
	OpPing  byte = 8 // payload: empty

	// Session opcodes back the client retry layer's exactly-once
	// semantics. HELLO binds the connection to a session id; the *Seq
	// write variants prefix the base payload with a per-session sequence
	// token the server dedups within a bounded window, so a write
	// replayed after a reconnect is acknowledged from the cached verdict
	// instead of applied twice.
	OpHello    byte = 9  // payload: u64 session id
	OpPutSeq   byte = 10 // payload: u64 seq, then OpPut's payload
	OpDelSeq   byte = 11 // payload: u64 seq, then OpDel's payload
	OpBatchSeq byte = 12 // payload: u64 seq, then OpBatch's payload

	// NumOps bounds the opcode space (valid opcodes are 1..NumOps-1);
	// per-op metric arrays index by opcode.
	NumOps = 13
)

// BaseOp maps a sequenced write opcode to the base opcode it wraps; other
// opcodes map to themselves.
func BaseOp(op byte) byte {
	switch op {
	case OpPutSeq:
		return OpPut
	case OpDelSeq:
		return OpDel
	case OpBatchSeq:
		return OpBatch
	}
	return op
}

// OpName labels an opcode for metrics and logs.
func OpName(op byte) string {
	switch op {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpDel:
		return "del"
	case OpBatch:
		return "batch"
	case OpScan:
		return "scan"
	case OpCount:
		return "count"
	case OpStats:
		return "stats"
	case OpPing:
		return "ping"
	case OpHello:
		return "hello"
	case OpPutSeq:
		return "put_seq"
	case OpDelSeq:
		return "del_seq"
	case OpBatchSeq:
		return "batch_seq"
	}
	return "unknown"
}

// Scan request flag bits. ScanExclHi makes the hi bound exclusive —
// pairs whose key equals hi are skipped. It exists for reverse paging:
// byte strings have no closed-form predecessor, so a reverse resume
// must re-send the last delivered key as hi and needs the server to
// step past it; without the flag a page whose single pair is that
// boundary key can never make progress. ScanExclHi requires ScanHasHi.
const (
	ScanHasLo   = 1 << 0
	ScanHasHi   = 1 << 1
	ScanReverse = 1 << 2
	ScanExclHi  = 1 << 3
)

// Batch op kinds, mirroring the engine's OpKind values (shard.OpPut etc.);
// the server converts by value, and the table test in errmap_test pins the
// correspondence.
const (
	KindPut    uint8 = 0
	KindInsert uint8 = 1
	KindUpdate uint8 = 2
	KindDelete uint8 = 3
)

// DefaultMaxFrame bounds one frame (opcode + payload) unless the caller
// overrides it.
const DefaultMaxFrame = 1 << 20

// MaxBatchOps bounds the op count of one BATCH frame, independent of the
// frame limit.
const MaxBatchOps = 4096

// Typed protocol errors. The decoder returns these (wrapped with detail);
// the server answers CodeProto and closes the connection, since a framing
// error desynchronises the stream.
var (
	// ErrFrameTooBig reports a frame length over the configured limit.
	ErrFrameTooBig = errors.New("wire: frame exceeds size limit")
	// ErrMalformed reports a frame whose inner structure is inconsistent
	// (truncated fields, lengths past the frame end, trailing bytes).
	ErrMalformed = errors.New("wire: malformed frame")
	// ErrBadOpcode reports an unknown request opcode.
	ErrBadOpcode = errors.New("wire: unknown opcode")
)

// BatchOp is one mutation inside a BATCH request.
type BatchOp struct {
	Kind uint8
	Key  []byte
	Val  []byte
}

// Request is one decoded request frame. Byte slices alias the decode
// buffer and are valid only until the next ReadFrame on that buffer.
type Request struct {
	Op     byte
	Key    []byte    // GET / DEL
	Val    []byte    // PUT
	Ops    []BatchOp // BATCH
	Lo     []byte    // SCAN
	Hi     []byte    // SCAN
	HasLo  bool
	HasHi  bool
	Rev    bool
	ExclHi bool   // SCAN: hi bound is exclusive
	Limit  uint32 // SCAN: max pairs (0 = server default)
	SID    uint64 // HELLO: session id
	Seq    uint64 // PUT_SEQ/DEL_SEQ/BATCH_SEQ: dedup sequence token
	HasSeq bool   // true for the sequenced write opcodes
}

// ReadFrame reads one frame from br, reusing buf when it is large enough,
// and returns the opcode/status byte, the payload (aliasing the returned
// buffer), and the possibly-grown buffer for reuse. A clean EOF before any
// header byte returns io.EOF; a torn header or body returns
// io.ErrUnexpectedEOF. max <= 0 selects DefaultMaxFrame.
func ReadFrame(br *bufio.Reader, max int, buf []byte) (op byte, payload []byte, nbuf []byte, err error) {
	if max <= 0 {
		max = DefaultMaxFrame
	}
	// Peek+Discard instead of ReadFull into a local array: the array would
	// escape through the io.Reader interface and cost one heap allocation
	// per frame (pinned at zero by TestDecodeAllocFree).
	hdr, err := br.Peek(4)
	if len(hdr) < 4 {
		if err == io.EOF {
			if len(hdr) == 0 {
				return 0, nil, buf, io.EOF
			}
			err = io.ErrUnexpectedEOF
		}
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, buf, err
	}
	n := binary.BigEndian.Uint32(hdr)
	br.Discard(4)
	if n < 1 {
		return 0, nil, buf, fmt.Errorf("%w: zero-length frame", ErrMalformed)
	}
	if int64(n) > int64(max) {
		return 0, nil, buf, fmt.Errorf("%w: %d bytes (limit %d)", ErrFrameTooBig, n, max)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(br, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, buf, err
	}
	return buf[0], buf[1:], buf, nil
}

// PeekFrame reports whether a complete frame is already buffered in br, so
// a pipelining reader can coalesce without risking a blocking read. It
// returns ErrFrameTooBig/ErrMalformed early when the buffered header is
// already known to be invalid.
func PeekFrame(br *bufio.Reader, max int) (ready bool, err error) {
	if max <= 0 {
		max = DefaultMaxFrame
	}
	if br.Buffered() < 4 {
		return false, nil
	}
	hdr, err := br.Peek(4)
	if err != nil {
		return false, nil
	}
	n := binary.BigEndian.Uint32(hdr)
	if n < 1 {
		return false, fmt.Errorf("%w: zero-length frame", ErrMalformed)
	}
	if int64(n) > int64(max) {
		return false, fmt.Errorf("%w: %d bytes (limit %d)", ErrFrameTooBig, n, max)
	}
	return br.Buffered() >= 4+int(n), nil
}

// BeginFrame appends a frame header (length placeholder + opcode/status)
// to dst and returns the extended slice plus the patch offset for EndFrame.
func BeginFrame(dst []byte, op byte) ([]byte, int) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, op)
	return dst, start
}

// EndFrame patches the length of the frame opened at start.
func EndFrame(dst []byte, start int) []byte {
	binary.BigEndian.PutUint32(dst[start:start+4], uint32(len(dst)-start-4))
	return dst
}

func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendU64(dst []byte, v uint64) []byte {
	return appendU32(appendU32(dst, uint32(v>>32)), uint32(v))
}

func appendBytes(dst, b []byte) []byte {
	dst = appendU32(dst, uint32(len(b)))
	return append(dst, b...)
}

// --- Request encoders ------------------------------------------------------

// AppendGet appends a GET frame for key.
func AppendGet(dst, key []byte) []byte {
	dst, start := BeginFrame(dst, OpGet)
	dst = append(dst, key...)
	return EndFrame(dst, start)
}

// AppendPut appends a PUT frame for key/val.
func AppendPut(dst, key, val []byte) []byte {
	dst, start := BeginFrame(dst, OpPut)
	dst = appendBytes(dst, key)
	dst = append(dst, val...)
	return EndFrame(dst, start)
}

// AppendDel appends a DEL frame for key.
func AppendDel(dst, key []byte) []byte {
	dst, start := BeginFrame(dst, OpDel)
	dst = append(dst, key...)
	return EndFrame(dst, start)
}

// AppendBatch appends a BATCH frame carrying ops.
func AppendBatch(dst []byte, ops []BatchOp) []byte {
	dst, start := BeginFrame(dst, OpBatch)
	dst = appendU32(dst, uint32(len(ops)))
	for i := range ops {
		dst = append(dst, ops[i].Kind)
		dst = appendBytes(dst, ops[i].Key)
		dst = appendBytes(dst, ops[i].Val)
	}
	return EndFrame(dst, start)
}

// AppendScan appends a SCAN frame. Nil lo/hi are open bounds; limit 0
// accepts the server's default page size; exclHi (valid only with a
// non-nil hi) makes the hi bound exclusive.
func AppendScan(dst, lo, hi []byte, reverse, exclHi bool, limit uint32) []byte {
	dst, start := BeginFrame(dst, OpScan)
	var flags byte
	if lo != nil {
		flags |= ScanHasLo
	}
	if hi != nil {
		flags |= ScanHasHi
		if exclHi {
			flags |= ScanExclHi
		}
	}
	if reverse {
		flags |= ScanReverse
	}
	dst = append(dst, flags)
	if lo != nil {
		dst = appendBytes(dst, lo)
	}
	if hi != nil {
		dst = appendBytes(dst, hi)
	}
	dst = appendU32(dst, limit)
	return EndFrame(dst, start)
}

// AppendEmptyReq appends a payload-less request frame (COUNT/STATS/PING).
func AppendEmptyReq(dst []byte, op byte) []byte {
	dst, start := BeginFrame(dst, op)
	return EndFrame(dst, start)
}

// AppendHello appends a HELLO frame binding the connection to session sid.
func AppendHello(dst []byte, sid uint64) []byte {
	dst, start := BeginFrame(dst, OpHello)
	dst = appendU64(dst, sid)
	return EndFrame(dst, start)
}

// AppendPutSeq appends a sequenced PUT frame.
func AppendPutSeq(dst []byte, seq uint64, key, val []byte) []byte {
	dst, start := BeginFrame(dst, OpPutSeq)
	dst = appendU64(dst, seq)
	dst = appendBytes(dst, key)
	dst = append(dst, val...)
	return EndFrame(dst, start)
}

// AppendDelSeq appends a sequenced DEL frame.
func AppendDelSeq(dst []byte, seq uint64, key []byte) []byte {
	dst, start := BeginFrame(dst, OpDelSeq)
	dst = appendU64(dst, seq)
	dst = append(dst, key...)
	return EndFrame(dst, start)
}

// AppendBatchSeq appends a sequenced BATCH frame.
func AppendBatchSeq(dst []byte, seq uint64, ops []BatchOp) []byte {
	dst, start := BeginFrame(dst, OpBatchSeq)
	dst = appendU64(dst, seq)
	dst = appendU32(dst, uint32(len(ops)))
	for i := range ops {
		dst = append(dst, ops[i].Kind)
		dst = appendBytes(dst, ops[i].Key)
		dst = appendBytes(dst, ops[i].Val)
	}
	return EndFrame(dst, start)
}

// --- Request decoding ------------------------------------------------------

// rd is a bounds-checked cursor over one payload.
type rd struct {
	b   []byte
	off int
}

func (r *rd) u8() (byte, error) {
	if r.off >= len(r.b) {
		return 0, fmt.Errorf("%w: truncated byte field", ErrMalformed)
	}
	v := r.b[r.off]
	r.off++
	return v, nil
}

func (r *rd) u32() (uint32, error) {
	if r.off+4 > len(r.b) {
		return 0, fmt.Errorf("%w: truncated u32 field", ErrMalformed)
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

func (r *rd) u64() (uint64, error) {
	if r.off+8 > len(r.b) {
		return 0, fmt.Errorf("%w: truncated u64 field", ErrMalformed)
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v, nil
}

func (r *rd) bytes() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if uint64(n) > uint64(len(r.b)-r.off) {
		return nil, fmt.Errorf("%w: length %d past frame end", ErrMalformed, n)
	}
	v := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return v, nil
}

func (r *rd) rest() []byte {
	v := r.b[r.off:]
	r.off = len(r.b)
	return v
}

func (r *rd) done() error {
	if r.off != len(r.b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(r.b)-r.off)
	}
	return nil
}

// ParseRequest decodes a request payload into req. Slices in req alias
// payload. req.Ops is reused across calls when its capacity allows.
func ParseRequest(op byte, payload []byte, req *Request) error {
	*req = Request{Op: op, Ops: req.Ops[:0]}
	r := rd{b: payload}
	base := op
	switch op {
	case OpHello:
		sid, err := r.u64()
		if err != nil {
			return err
		}
		req.SID = sid
		return r.done()
	case OpPutSeq, OpDelSeq, OpBatchSeq:
		seq, err := r.u64()
		if err != nil {
			return err
		}
		req.Seq, req.HasSeq = seq, true
		base = BaseOp(op)
	}
	switch base {
	case OpGet, OpDel:
		req.Key = r.rest()
		return nil
	case OpPut:
		key, err := r.bytes()
		if err != nil {
			return err
		}
		req.Key, req.Val = key, r.rest()
		return nil
	case OpBatch:
		n, err := r.u32()
		if err != nil {
			return err
		}
		if n > MaxBatchOps {
			return fmt.Errorf("%w: batch of %d ops (limit %d)", ErrMalformed, n, MaxBatchOps)
		}
		// Every op costs at least 9 bytes (kind + two u32 lengths), so a
		// forged count cannot force an allocation beyond the frame's size.
		if uint64(n)*9 > uint64(len(r.b)-r.off) {
			return fmt.Errorf("%w: batch count %d exceeds frame capacity", ErrMalformed, n)
		}
		for i := uint32(0); i < n; i++ {
			kind, err := r.u8()
			if err != nil {
				return err
			}
			if kind > KindDelete {
				return fmt.Errorf("%w: batch op kind %d", ErrMalformed, kind)
			}
			key, err := r.bytes()
			if err != nil {
				return err
			}
			val, err := r.bytes()
			if err != nil {
				return err
			}
			req.Ops = append(req.Ops, BatchOp{Kind: kind, Key: key, Val: val})
		}
		return r.done()
	case OpScan:
		flags, err := r.u8()
		if err != nil {
			return err
		}
		if flags&^(ScanHasLo|ScanHasHi|ScanReverse|ScanExclHi) != 0 {
			return fmt.Errorf("%w: scan flags %#x", ErrMalformed, flags)
		}
		if flags&ScanExclHi != 0 && flags&ScanHasHi == 0 {
			return fmt.Errorf("%w: scan exclusive-hi flag without a hi bound", ErrMalformed)
		}
		req.HasLo, req.HasHi, req.Rev = flags&ScanHasLo != 0, flags&ScanHasHi != 0, flags&ScanReverse != 0
		req.ExclHi = flags&ScanExclHi != 0
		if req.HasLo {
			if req.Lo, err = r.bytes(); err != nil {
				return err
			}
		}
		if req.HasHi {
			if req.Hi, err = r.bytes(); err != nil {
				return err
			}
		}
		if req.Limit, err = r.u32(); err != nil {
			return err
		}
		return r.done()
	case OpCount, OpStats, OpPing:
		return r.done()
	}
	return fmt.Errorf("%w: %#x", ErrBadOpcode, op)
}

// --- Response encoding / decoding -----------------------------------------

// AppendOK appends a bare OK response (PUT/DEL/PING acks).
func AppendOK(dst []byte) []byte {
	dst, start := BeginFrame(dst, byte(CodeOK))
	return EndFrame(dst, start)
}

// AppendValue appends an OK response carrying an opaque payload (GET hit,
// COUNT, STATS).
func AppendValue(dst []byte, code Code, payload []byte) []byte {
	dst, start := BeginFrame(dst, byte(code))
	dst = append(dst, payload...)
	return EndFrame(dst, start)
}

// AppendCount appends a COUNT response.
func AppendCount(dst []byte, n uint64) []byte {
	dst, start := BeginFrame(dst, byte(CodeOK))
	dst = appendU64(dst, n)
	return EndFrame(dst, start)
}

// ParseCount decodes a COUNT response payload.
func ParseCount(payload []byte) (uint64, error) {
	if len(payload) != 8 {
		return 0, fmt.Errorf("%w: count payload of %d bytes", ErrMalformed, len(payload))
	}
	return binary.BigEndian.Uint64(payload), nil
}

// AppendErr appends an error response: code, the shard the failure is
// pinned to (-1 when not shard-specific), a retry-after hint in
// milliseconds (0 = none; meaningful for BUSY and UNAVAIL, where it tells a
// retrying client how long the condition is expected to last — e.g. the
// server's auto-Heal cadence for a degraded shard), and the error text.
func AppendErr(dst []byte, code Code, shard int32, retryMS uint32, msg string) []byte {
	dst, start := BeginFrame(dst, byte(code))
	dst = appendU32(dst, uint32(shard))
	dst = appendU32(dst, retryMS)
	dst = append(dst, msg...)
	return EndFrame(dst, start)
}

// ParseErr decodes an error response payload. Responses produced by older
// or foreign peers without the shard/retry prefix yield shard -1, hint 0,
// and the whole payload as message.
func ParseErr(payload []byte) (shard int32, retryMS uint32, msg string) {
	if len(payload) < 8 {
		if len(payload) >= 4 {
			return int32(binary.BigEndian.Uint32(payload)), 0, string(payload[4:])
		}
		return -1, 0, string(payload)
	}
	return int32(binary.BigEndian.Uint32(payload)),
		binary.BigEndian.Uint32(payload[4:]),
		string(payload[8:])
}

// AppendBatchReply appends a BATCH response: one Code per op, aligned with
// the request's op order.
func AppendBatchReply(dst []byte, codes []Code) []byte {
	dst, start := BeginFrame(dst, byte(CodeOK))
	dst = appendU32(dst, uint32(len(codes)))
	for _, c := range codes {
		dst = append(dst, byte(c))
	}
	return EndFrame(dst, start)
}

// ParseBatchReply decodes a BATCH response payload, reusing codes.
func ParseBatchReply(payload []byte, codes []Code) ([]Code, error) {
	r := rd{b: payload}
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if uint64(n) != uint64(len(payload)-4) {
		return nil, fmt.Errorf("%w: batch reply count %d vs %d bytes", ErrMalformed, n, len(payload)-4)
	}
	codes = codes[:0]
	for i := uint32(0); i < n; i++ {
		codes = append(codes, Code(payload[4+i]))
	}
	return codes, nil
}

// ScanReplyWriter builds a SCAN response incrementally so the server can
// stream pairs without an intermediate slice.
type ScanReplyWriter struct {
	buf   []byte
	start int
	nOff  int
	n     uint32
}

// Begin opens the response on dst.
func (sw *ScanReplyWriter) Begin(dst []byte) {
	sw.buf, sw.start = BeginFrame(dst, byte(CodeOK))
	sw.nOff = len(sw.buf)
	sw.buf = appendU32(sw.buf, 0)
	sw.n = 0
}

// Pair appends one key/value pair.
func (sw *ScanReplyWriter) Pair(k, v []byte) {
	sw.buf = appendBytes(sw.buf, k)
	sw.buf = appendBytes(sw.buf, v)
	sw.n++
}

// Size returns the response size accumulated so far.
func (sw *ScanReplyWriter) Size() int { return len(sw.buf) - sw.start }

// End seals the response with the truncation marker and returns the full
// buffer.
func (sw *ScanReplyWriter) End(more bool) []byte {
	m := byte(0)
	if more {
		m = 1
	}
	sw.buf = append(sw.buf, m)
	binary.BigEndian.PutUint32(sw.buf[sw.nOff:], sw.n)
	return EndFrame(sw.buf, sw.start)
}

// ParseScanReply decodes a SCAN response payload, calling fn for each pair
// (slices alias payload) and returning the truncation marker.
func ParseScanReply(payload []byte, fn func(k, v []byte) bool) (more bool, err error) {
	r := rd{b: payload}
	n, err := r.u32()
	if err != nil {
		return false, err
	}
	stopped := false
	for i := uint32(0); i < n; i++ {
		k, err := r.bytes()
		if err != nil {
			return false, err
		}
		v, err := r.bytes()
		if err != nil {
			return false, err
		}
		if !stopped && !fn(k, v) {
			stopped = true
		}
	}
	m, err := r.u8()
	if err != nil {
		return false, err
	}
	if err := r.done(); err != nil {
		return false, err
	}
	return m != 0, nil
}
