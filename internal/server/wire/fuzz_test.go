package wire

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzWireFrame throws arbitrary bytes at the frame reader and request
// parser. The contract under fuzz: typed errors only (io.EOF,
// io.ErrUnexpectedEOF, ErrFrameTooBig, ErrMalformed, ErrBadOpcode), no
// panics, and no allocation beyond the frame limit regardless of forged
// length fields.
func FuzzWireFrame(f *testing.F) {
	// Valid frames of every opcode, plus classic decoder traps.
	f.Add(AppendGet(nil, []byte("key")))
	f.Add(AppendPut(nil, []byte("k"), []byte("v")))
	f.Add(AppendDel(nil, []byte("k")))
	f.Add(AppendBatch(nil, []BatchOp{
		{Kind: KindPut, Key: []byte("a"), Val: []byte("1")},
		{Kind: KindDelete, Key: []byte("b")},
	}))
	f.Add(AppendScan(nil, []byte("lo"), []byte("hi"), true, false, 10))
	f.Add(AppendScan(nil, nil, nil, false, false, 0))
	f.Add(AppendScan(nil, nil, []byte("hi"), true, true, 1))
	f.Add([]byte{0, 0, 0, 6, OpScan, ScanExclHi, 0, 0, 0, 0}) // exclusive hi without a hi bound
	f.Add(AppendHello(nil, 0x1234567890ab))
	f.Add(AppendPutSeq(nil, 42, []byte("k"), []byte("v")))
	f.Add(AppendDelSeq(nil, 43, []byte("k")))
	f.Add(AppendBatchSeq(nil, 44, []BatchOp{{Kind: KindInsert, Key: []byte("a"), Val: []byte("1")}}))
	f.Add([]byte{0, 0, 0, 5, OpHello, 1, 2, 3, 4})                    // torn hello sid
	f.Add([]byte{0, 0, 0, 4, OpPutSeq, 0, 0, 0})                      // torn seq prefix
	f.Add([]byte{0, 0, 0, 10, OpBatchSeq, 0, 0, 0, 0, 0, 0, 0, 1, 0}) // seq batch, torn count
	f.Add(AppendEmptyReq(nil, OpCount))
	f.Add(AppendEmptyReq(nil, OpStats))
	f.Add(AppendEmptyReq(nil, OpPing))
	f.Add([]byte{})
	f.Add([]byte{0, 0})                                                                // torn header
	f.Add([]byte{0, 0, 0, 0})                                                          // zero-length frame
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1})                                           // oversized length
	f.Add([]byte{0, 0, 0, 1, 0x7f})                                                    // unknown opcode
	f.Add([]byte{0, 0, 0, 9, OpBatch, 0xff, 0xff, 0xff, 0xff, 0})                      // forged batch count
	f.Add([]byte{0, 0, 0, 10, OpPut, 0xff, 0xff, 0xff, 0xff, 'k', 'v', 'v', 'v', 'v'}) // forged klen

	const maxFrame = 1 << 16

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		var buf []byte
		var req Request
		for {
			op, payload, nbuf, err := ReadFrame(br, maxFrame, buf)
			buf = nbuf
			if cap(buf) > maxFrame {
				t.Fatalf("decode buffer grew past the frame limit: %d", cap(buf))
			}
			if err != nil {
				if err == io.EOF || err == io.ErrUnexpectedEOF ||
					errors.Is(err, ErrFrameTooBig) || errors.Is(err, ErrMalformed) {
					return
				}
				t.Fatalf("untyped ReadFrame error: %v", err)
			}
			if perr := ParseRequest(op, payload, &req); perr != nil {
				if errors.Is(perr, ErrMalformed) || errors.Is(perr, ErrBadOpcode) {
					// A parse error desynchronises nothing at the frame
					// layer; keep reading to exercise resync behaviour.
					continue
				}
				t.Fatalf("untyped ParseRequest error: %v", perr)
			}
			// Parsed requests must be internally consistent.
			if len(req.Ops) > MaxBatchOps {
				t.Fatalf("batch over limit parsed: %d ops", len(req.Ops))
			}
			for i := range req.Ops {
				if req.Ops[i].Kind > KindDelete {
					t.Fatalf("invalid kind parsed: %d", req.Ops[i].Kind)
				}
			}
		}
	})
}

// FuzzScanReply fuzzes the client-side SCAN response parser with the same
// no-panic, typed-error contract.
func FuzzScanReply(f *testing.F) {
	var sw ScanReplyWriter
	sw.Begin(nil)
	sw.Pair([]byte("k"), []byte("v"))
	full := sw.End(false)
	f.Add(full[5:]) // payload only
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, payload []byte) {
		pairs := 0
		_, err := ParseScanReply(payload, func(k, v []byte) bool {
			pairs++
			return true
		})
		if err != nil && !errors.Is(err, ErrMalformed) {
			t.Fatalf("untyped ParseScanReply error: %v", err)
		}
		// Each parsed pair consumes ≥8 payload bytes (two u32 lengths).
		if pairs > len(payload)/8+1 {
			t.Fatalf("%d pairs from %d bytes", pairs, len(payload))
		}
	})
}
