package server

import (
	"sync/atomic"

	"fasp/internal/obsv"
	"fasp/internal/server/wire"
)

// metrics is the server's own counter set, exported through the facade's
// /metrics endpoint as fasp_server_* series (obsv.WriteServerPrometheus).
// Everything is atomics and lock-free histograms: the request hot path
// never takes a lock for observability.
type metrics struct {
	connsOpen  atomic.Int64
	connsTotal atomic.Int64

	rejBusy     atomic.Int64
	rejShutdown atomic.Int64
	rejProto    atomic.Int64
	timeouts    atomic.Int64 // connections closed by IdleTimeout

	healAttempts atomic.Int64
	healFailures atomic.Int64

	bytesIn  atomic.Int64
	bytesOut atomic.Int64

	opCount [wire.NumOps]atomic.Int64
	opErr   [wire.NumOps]atomic.Int64
	opWall  [wire.NumOps]obsv.Histogram

	// coalesce observes the write-op count of every engine submission —
	// the cross-connection group-commit width at the server layer.
	coalesce obsv.Histogram
	// shardCoalesce observes ops per per-shard commit round and
	// pipeOccupancy the connection sub-submissions joined per round —
	// the pipeline-health pair for the per-shard batcher loops.
	shardCoalesce obsv.Histogram
	pipeOccupancy obsv.Histogram
	// barrierSimNS accumulates each global-batcher round's busiest-shard
	// simulated time (the serialized-round makespan; zero under the
	// pipelines). dedupBytes gauges cached dedup replies across sessions.
	barrierSimNS atomic.Int64
	dedupBytes   atomic.Int64
}

// snapshot renders the counters; inFlight/limit come from the gate.
func (m *metrics) snapshot(inFlight, limit int) obsv.ServerSnapshot {
	s := obsv.ServerSnapshot{
		ConnsOpen:       m.connsOpen.Load(),
		ConnsTotal:      m.connsTotal.Load(),
		InFlight:        int64(inFlight),
		InFlightLimit:   int64(limit),
		RejectBusy:      m.rejBusy.Load(),
		RejectShutdown:  m.rejShutdown.Load(),
		RejectProto:     m.rejProto.Load(),
		Timeouts:        m.timeouts.Load(),
		HealAttempts:    m.healAttempts.Load(),
		HealFailures:    m.healFailures.Load(),
		BytesIn:         m.bytesIn.Load(),
		BytesOut:        m.bytesOut.Load(),
		Coalesce:        m.coalesce.Snapshot(),
		ShardCoalesce:   m.shardCoalesce.Snapshot(),
		PipeOccupancy:   m.pipeOccupancy.Snapshot(),
		DedupCacheBytes: m.dedupBytes.Load(),
		BarrierSimNS:    m.barrierSimNS.Load(),
	}
	for op := byte(1); op < wire.NumOps; op++ {
		n := m.opCount[op].Load()
		if n == 0 {
			continue
		}
		h := m.opWall[op].Snapshot()
		s.Ops = append(s.Ops, obsv.ServerOpStats{
			Op:         wire.OpName(op),
			Count:      n,
			Errors:     m.opErr[op].Load(),
			WallP50NS:  h.Quantile(0.5),
			WallP99NS:  h.Quantile(0.99),
			WallP999NS: h.Quantile(0.999),
			WallMeanNS: h.Mean(),
		})
	}
	return s
}
