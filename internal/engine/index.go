package engine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strings"

	"fasp/internal/btree"
	"fasp/internal/sql"
)

// Secondary indexes are B-trees over the same failure-atomic slotted pages
// as tables. An index entry's key is the order-preserving encoding of the
// indexed value followed by the 8-byte rowid, so equality lookups are range
// scans over a value prefix and duplicates coexist naturally (unless the
// index is UNIQUE). Index roots live in catalog rows exactly like table
// roots, so index maintenance commits atomically with the row changes that
// caused it.

// ErrNoSuchIndex reports a DROP INDEX of an absent index.
var ErrNoSuchIndex = errors.New("engine: no such index")

// indexInfo is a decoded index catalog entry.
type indexInfo struct {
	name   string
	table  string
	col    string
	colIdx int
	unique bool
}

// --- Order-preserving value encoding -----------------------------------------

// Value-type tags, ordered like sql.Compare's type ranks.
const (
	idxTagNull    byte = 0x10
	idxTagNumeric byte = 0x20
	idxTagText    byte = 0x30
	idxTagBlob    byte = 0x40
)

// sortableFloat encodes a float64 so that byte comparison matches numeric
// comparison.
func sortableFloat(f float64) uint64 {
	bits := math.Float64bits(f)
	if bits&(1<<63) != 0 {
		return ^bits
	}
	return bits | 1<<63
}

// appendEscaped writes b with 0x00 escaped (0x00 → 0x00 0xFF) and a
// 0x00 0x00 terminator, keeping byte order while delimiting the field.
func appendEscaped(dst, b []byte) []byte {
	for _, c := range b {
		if c == 0x00 {
			dst = append(dst, 0x00, 0xFF)
			continue
		}
		dst = append(dst, c)
	}
	return append(dst, 0x00, 0x00)
}

// indexValuePrefix encodes just the value part of an index key.
func indexValuePrefix(v sql.Value) []byte {
	switch v.Kind() {
	case sql.KindNull:
		return []byte{idxTagNull}
	case sql.KindInt, sql.KindReal:
		var out [9]byte
		out[0] = idxTagNumeric
		binary.BigEndian.PutUint64(out[1:], sortableFloat(v.AsReal()))
		return out[:]
	case sql.KindText:
		return appendEscaped([]byte{idxTagText}, []byte(v.AsText()))
	default:
		return appendEscaped([]byte{idxTagBlob}, v.AsBlob())
	}
}

// indexKey encodes (value, rowid) as a B-tree key.
func indexKey(v sql.Value, rowid int64) []byte {
	prefix := indexValuePrefix(v)
	var tail [8]byte
	binary.BigEndian.PutUint64(tail[:], uint64(rowid))
	return append(prefix, tail[:]...)
}

// indexRange returns the key range covering every rowid indexed under v.
func indexRange(v sql.Value) (lo, hi []byte) {
	prefix := indexValuePrefix(v)
	lo = append(append([]byte(nil), prefix...), 0, 0, 0, 0, 0, 0, 0, 0)
	hi = append(append([]byte(nil), prefix...), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF)
	return lo, hi
}

// indexKeyRowid recovers the rowid from an index key.
func indexKeyRowid(k []byte) int64 {
	if len(k) < 8 {
		return 0
	}
	return int64(binary.BigEndian.Uint64(k[len(k)-8:]))
}

// --- Catalog plumbing ----------------------------------------------------------

// renderCreateIndexSQL normalises a CREATE INDEX statement for the catalog.
func renderCreateIndexSQL(s sql.CreateIndex) string {
	u := ""
	if s.Unique {
		u = "UNIQUE "
	}
	return fmt.Sprintf("CREATE %sINDEX %s ON %s (%s)", u, s.Name, s.Table, s.Col)
}

// tableIndexes loads every index defined on a table (a catalog scan; the
// catalog is small).
func tableIndexes(cat *btree.Tx, ti *tableInfo) ([]*indexInfo, error) {
	var out []*indexInfo
	var scanErr error
	err := cat.Scan(nil, nil, func(_, v []byte) bool {
		_, createSQL, err := decodeCatalogRow(v)
		if err != nil {
			scanErr = err
			return false
		}
		stmt, err := sql.ParseOne(createSQL)
		if err != nil {
			return true
		}
		ci, ok := stmt.(sql.CreateIndex)
		if !ok || !strings.EqualFold(ci.Table, ti.name) {
			return true
		}
		colIdx := ti.colIndex(ci.Col)
		if colIdx < 0 {
			scanErr = fmt.Errorf("%w: index %s references unknown column %s", ErrNoSuchColumn, ci.Name, ci.Col)
			return false
		}
		out = append(out, &indexInfo{
			name: ci.Name, table: ti.name, col: ci.Col, colIdx: colIdx, unique: ci.Unique,
		})
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, scanErr
}

// indexTree opens the index's B-tree within the transaction.
func (ex *executor) indexTree(cat *btree.Tx, name string) *btree.Tx {
	return ex.table(cat, name) // same catalog-rooted mechanism
}

// indexedValue extracts the indexed column's value for a row.
func (ix *indexInfo) indexedValue(ti *tableInfo, r *tableRow) sql.Value {
	return columnValue(ti, r, ix.colIdx)
}

// --- Maintenance hooks -----------------------------------------------------------

// addIndexEntries inserts index entries for a new row.
func (ex *executor) addIndexEntries(cat *btree.Tx, ti *tableInfo, idxs []*indexInfo, r *tableRow) error {
	for _, ix := range idxs {
		v := ix.indexedValue(ti, r)
		it := ex.indexTree(cat, ix.name)
		if ix.unique && !v.IsNull() {
			if rowid, found, err := ex.indexLookupOne(it, v); err != nil {
				return err
			} else if found && rowid != r.rowid {
				return fmt.Errorf("%w: UNIQUE index %s value %s", ErrConstraint, ix.name, v)
			}
		}
		if err := it.Insert(indexKey(v, r.rowid), nil); err != nil {
			return err
		}
	}
	return nil
}

// dropIndexEntries removes index entries for a row about to change/vanish.
func (ex *executor) dropIndexEntries(cat *btree.Tx, ti *tableInfo, idxs []*indexInfo, r *tableRow) error {
	for _, ix := range idxs {
		it := ex.indexTree(cat, ix.name)
		if err := it.Delete(indexKey(ix.indexedValue(ti, r), r.rowid)); err != nil &&
			!errors.Is(err, btree.ErrKeyNotFound) {
			return err
		}
	}
	return nil
}

// indexLookupOne returns one rowid indexed under v, if any.
func (ex *executor) indexLookupOne(it *btree.Tx, v sql.Value) (int64, bool, error) {
	lo, hi := indexRange(v)
	var rowid int64
	found := false
	err := it.Scan(lo, hi, func(k, _ []byte) bool {
		rowid = indexKeyRowid(k)
		found = true
		return false
	})
	return rowid, found, err
}

// indexLookupAll returns every rowid indexed under v, in rowid order.
func (ex *executor) indexLookupAll(it *btree.Tx, v sql.Value) ([]int64, error) {
	lo, hi := indexRange(v)
	var rowids []int64
	err := it.Scan(lo, hi, func(k, _ []byte) bool {
		rowids = append(rowids, indexKeyRowid(k))
		return true
	})
	return rowids, err
}

// --- DDL ----------------------------------------------------------------------------

func (ex *executor) createIndex(s sql.CreateIndex) (Result, error) {
	var res Result
	cat := ex.catalog()
	if _, ok, err := cat.Get(catalogKey(s.Name)); err != nil {
		return res, err
	} else if ok {
		if s.IfNotExists {
			return res, nil
		}
		return res, fmt.Errorf("%w: %s", ErrTableExists, s.Name)
	}
	ti, err := loadTableInfo(cat, s.Table)
	if err != nil {
		return res, err
	}
	colIdx := ti.colIndex(s.Col)
	if colIdx < 0 {
		return res, fmt.Errorf("%w: %s", ErrNoSuchColumn, s.Col)
	}
	if err := cat.Insert(catalogKey(s.Name), encodeCatalogRow(0, renderCreateIndexSQL(s))); err != nil {
		return res, err
	}
	// Backfill from the existing rows.
	ix := &indexInfo{name: s.Name, table: ti.name, col: s.Col, colIdx: colIdx, unique: s.Unique}
	tbl := ex.table(cat, s.Table)
	rows, err := ex.scanWhere(tbl, ti, nil)
	if err != nil {
		return res, err
	}
	for i := range rows {
		if err := ex.addIndexEntries(cat, ti, []*indexInfo{ix}, &rows[i]); err != nil {
			return res, err
		}
	}
	res.RowsAffected = len(rows)
	return res, nil
}

func (ex *executor) dropIndex(s sql.DropIndex) (Result, error) {
	var res Result
	cat := ex.catalog()
	rec, ok, err := cat.Get(catalogKey(s.Name))
	if err != nil {
		return res, err
	}
	if !ok {
		if s.IfExists {
			return res, nil
		}
		return res, fmt.Errorf("%w: %s", ErrNoSuchIndex, s.Name)
	}
	// Refuse to DROP INDEX a table.
	if _, createSQL, err := decodeCatalogRow(rec); err != nil {
		return res, err
	} else if stmt, perr := sql.ParseOne(createSQL); perr == nil {
		if _, isTable := stmt.(sql.CreateTable); isTable {
			return res, fmt.Errorf("%w: %s is a table", ErrNoSuchIndex, s.Name)
		}
	}
	it := ex.indexTree(cat, s.Name)
	reach, err := it.Reachable()
	if err != nil {
		return res, err
	}
	for no := range reach {
		ex.ptx.FreePage(no)
	}
	return res, cat.Delete(catalogKey(s.Name))
}
