package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"fasp/internal/fast"
	"fasp/internal/pager"
	"fasp/internal/pmem"
	"fasp/internal/sql"
	"fasp/internal/wal"
)

func newDB(t testing.TB) *DB {
	t.Helper()
	sys := pmem.NewSystem(pmem.DefaultLatencies(300, 300))
	st := fast.Create(sys, fast.Config{PageSize: 1024, MaxPages: 8192, Variant: fast.InPlaceCommit})
	return Open(st)
}

func TestRecordRoundTrip(t *testing.T) {
	cases := [][]sql.Value{
		{},
		{sql.Null()},
		{sql.Int(42), sql.Text("hello"), sql.Real(3.25), sql.Blob([]byte{0, 1, 2}), sql.Null()},
		{sql.Int(-1), sql.Text(""), sql.Text(strings.Repeat("x", 300))},
	}
	for _, vals := range cases {
		rec := EncodeRecord(vals)
		got, err := DecodeRecord(rec)
		if err != nil {
			t.Fatalf("decode %v: %v", vals, err)
		}
		if len(got) != len(vals) {
			t.Fatalf("got %d values, want %d", len(got), len(vals))
		}
		for i := range vals {
			if vals[i].IsNull() != got[i].IsNull() ||
				(!vals[i].IsNull() && sql.Compare(vals[i], got[i]) != 0) {
				t.Fatalf("value %d: got %v, want %v", i, got[i], vals[i])
			}
		}
	}
}

func TestRecordRoundTripProperty(t *testing.T) {
	f := func(i int64, s string, r float64, b []byte, nullMask uint8) bool {
		vals := []sql.Value{sql.Int(i), sql.Text(s), sql.Real(r), sql.Blob(b)}
		for bit := 0; bit < 4; bit++ {
			if nullMask&(1<<bit) != 0 {
				vals[bit] = sql.Null()
			}
		}
		got, err := DecodeRecord(EncodeRecord(vals))
		if err != nil || len(got) != 4 {
			return false
		}
		for i := range vals {
			if vals[i].IsNull() != got[i].IsNull() {
				return false
			}
			if !vals[i].IsNull() && sql.Compare(vals[i], got[i]) != 0 {
				// NaN compares unequal to itself through AsReal; allow it.
				if vals[i].Kind() == sql.KindReal && vals[i].AsReal() != vals[i].AsReal() {
					continue
				}
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRecordRejectsGarbage(t *testing.T) {
	bad := [][]byte{
		{0xFF}, {3, 6}, {2, 6, 1, 2, 3}, {0x80},
	}
	for _, b := range bad {
		if _, err := DecodeRecord(b); err == nil {
			t.Errorf("no error for %v", b)
		}
	}
}

func TestCreateInsertSelect(t *testing.T) {
	db := newDB(t)
	db.MustExec(`CREATE TABLE users (id INTEGER PRIMARY KEY, name TEXT NOT NULL, score REAL)`)
	res := db.MustExec(`INSERT INTO users (name, score) VALUES ('alice', 9.5), ('bob', 7.25)`)
	if res[0].RowsAffected != 2 || res[0].LastInsertID != 2 {
		t.Fatalf("insert result %+v", res[0])
	}
	rows, err := db.QueryRows(`SELECT id, name, score FROM users ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0][0].AsInt() != 1 || rows[0][1].AsText() != "alice" || rows[0][2].AsReal() != 9.5 {
		t.Fatalf("row0 = %v", rows[0])
	}
	if rows[1][0].AsInt() != 2 || rows[1][1].AsText() != "bob" {
		t.Fatalf("row1 = %v", rows[1])
	}
}

func TestSelectStarAndWhere(t *testing.T) {
	db := newDB(t)
	db.MustExec(`CREATE TABLE t (a INTEGER PRIMARY KEY, b TEXT, c INTEGER)`)
	for i := 1; i <= 50; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO t VALUES (%d, 'row%d', %d)`, i, i, i%5))
	}
	rows, err := db.QueryRows(`SELECT * FROM t WHERE c = 3 AND a > 20 ORDER BY a DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0][0].AsInt() != 48 {
		t.Fatalf("first row = %v", rows[0])
	}
	// Point lookup by primary key.
	rows, err = db.QueryRows(`SELECT b FROM t WHERE a = 17`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].AsText() != "row17" {
		t.Fatalf("point lookup = %v", rows)
	}
}

func TestAggregates(t *testing.T) {
	db := newDB(t)
	db.MustExec(`CREATE TABLE n (v INTEGER, g TEXT)`)
	for i := 1; i <= 10; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO n VALUES (%d, 'x')`, i))
	}
	db.MustExec(`INSERT INTO n (g) VALUES ('null-v')`)
	rows, err := db.QueryRows(`SELECT COUNT(*), COUNT(v), SUM(v), AVG(v), MIN(v), MAX(v) FROM n`)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r[0].AsInt() != 11 || r[1].AsInt() != 10 || r[2].AsInt() != 55 ||
		r[3].AsReal() != 5.5 || r[4].AsInt() != 1 || r[5].AsInt() != 10 {
		t.Fatalf("aggregates = %v", r)
	}
}

func TestUpdateDelete(t *testing.T) {
	db := newDB(t)
	db.MustExec(`CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)`)
	for i := 1; i <= 20; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO t VALUES (%d, %d)`, i, i*10))
	}
	res := db.MustExec(`UPDATE t SET v = v + 1 WHERE id <= 5`)
	if res[0].RowsAffected != 5 {
		t.Fatalf("update affected %d", res[0].RowsAffected)
	}
	rows, _ := db.QueryRows(`SELECT v FROM t WHERE id = 3`)
	if rows[0][0].AsInt() != 31 {
		t.Fatalf("v = %v", rows[0][0])
	}
	res = db.MustExec(`DELETE FROM t WHERE v > 100`)
	if res[0].RowsAffected != 10 {
		t.Fatalf("delete affected %d", res[0].RowsAffected)
	}
	rows, _ = db.QueryRows(`SELECT COUNT(*) FROM t`)
	if rows[0][0].AsInt() != 10 {
		t.Fatalf("count = %v", rows[0][0])
	}
}

func TestExplicitTransactions(t *testing.T) {
	db := newDB(t)
	db.MustExec(`CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)`)
	db.MustExec(`BEGIN; INSERT INTO t VALUES (1, 'a'); INSERT INTO t VALUES (2, 'b'); COMMIT`)
	rows, _ := db.QueryRows(`SELECT COUNT(*) FROM t`)
	if rows[0][0].AsInt() != 2 {
		t.Fatalf("count after commit = %v", rows[0][0])
	}
	db.MustExec(`BEGIN; INSERT INTO t VALUES (3, 'c'); ROLLBACK`)
	rows, _ = db.QueryRows(`SELECT COUNT(*) FROM t`)
	if rows[0][0].AsInt() != 2 {
		t.Fatalf("count after rollback = %v", rows[0][0])
	}
	if _, err := db.Exec(`COMMIT`); !errors.Is(err, ErrNoTxn) {
		t.Fatalf("commit without begin: %v", err)
	}
}

func TestConstraints(t *testing.T) {
	db := newDB(t)
	db.MustExec(`CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT NOT NULL)`)
	if _, err := db.Exec(`INSERT INTO t (id) VALUES (1)`); !errors.Is(err, ErrConstraint) {
		t.Fatalf("not null: %v", err)
	}
	db.MustExec(`INSERT INTO t VALUES (1, 'x')`)
	if _, err := db.Exec(`INSERT INTO t VALUES (1, 'y')`); !errors.Is(err, ErrConstraint) {
		t.Fatalf("duplicate pk: %v", err)
	}
	if _, err := db.Exec(`INSERT INTO t2 VALUES (1)`); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("missing table: %v", err)
	}
	if _, err := db.Exec(`SELECT nope FROM t`); !errors.Is(err, ErrNoSuchColumn) {
		t.Fatalf("missing column: %v", err)
	}
}

func TestDropTable(t *testing.T) {
	db := newDB(t)
	db.MustExec(`CREATE TABLE a (x INTEGER); CREATE TABLE b (y INTEGER)`)
	db.MustExec(`INSERT INTO a VALUES (1); INSERT INTO b VALUES (2)`)
	db.MustExec(`DROP TABLE a`)
	if _, err := db.Exec(`SELECT * FROM a`); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("select from dropped: %v", err)
	}
	rows, _ := db.QueryRows(`SELECT y FROM b`)
	if len(rows) != 1 || rows[0][0].AsInt() != 2 {
		t.Fatal("sibling table damaged by drop")
	}
	if _, err := db.Exec(`DROP TABLE a`); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("double drop: %v", err)
	}
	db.MustExec(`DROP TABLE IF EXISTS a`)
	// Recreate with the same name.
	db.MustExec(`CREATE TABLE a (z TEXT); INSERT INTO a VALUES ('back')`)
	rows, _ = db.QueryRows(`SELECT z FROM a`)
	if rows[0][0].AsText() != "back" {
		t.Fatal("recreated table broken")
	}
}

func TestExpressionsAndFunctions(t *testing.T) {
	db := newDB(t)
	rows, err := db.QueryRows(
		`SELECT 1+2*3, -4, 10/4, 10.0/4, 7%3, 'a' || 'b', LENGTH('hello'), ABS(-3), UPPER('x'), NULL IS NULL, 3 != 4`)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	want := []any{int64(7), int64(-4), int64(2), 2.5, int64(1), "ab", int64(5), int64(3), "X", int64(1), int64(1)}
	for i, w := range want {
		switch wv := w.(type) {
		case int64:
			if r[i].AsInt() != wv {
				t.Errorf("expr %d = %v, want %d", i, r[i], wv)
			}
		case float64:
			if r[i].AsReal() != wv {
				t.Errorf("expr %d = %v, want %g", i, r[i], wv)
			}
		case string:
			if r[i].AsText() != wv {
				t.Errorf("expr %d = %v, want %q", i, r[i], wv)
			}
		}
	}
}

func TestLike(t *testing.T) {
	db := newDB(t)
	db.MustExec(`CREATE TABLE t (s TEXT)`)
	for _, s := range []string{"apple", "apricot", "banana", "Avocado"} {
		db.MustExec(fmt.Sprintf(`INSERT INTO t VALUES ('%s')`, s))
	}
	rows, err := db.QueryRows(`SELECT s FROM t WHERE s LIKE 'a%' ORDER BY s`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // case-insensitive: Avocado matches
		t.Fatalf("LIKE matched %d rows", len(rows))
	}
	rows, _ = db.QueryRows(`SELECT s FROM t WHERE s LIKE '_anana'`)
	if len(rows) != 1 || rows[0][0].AsText() != "banana" {
		t.Fatalf("underscore match = %v", rows)
	}
}

func TestLimitOffset(t *testing.T) {
	db := newDB(t)
	db.MustExec(`CREATE TABLE t (id INTEGER PRIMARY KEY)`)
	for i := 1; i <= 10; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO t VALUES (%d)`, i))
	}
	rows, _ := db.QueryRows(`SELECT id FROM t ORDER BY id LIMIT 3 OFFSET 4`)
	if len(rows) != 3 || rows[0][0].AsInt() != 5 {
		t.Fatalf("limit/offset = %v", rows)
	}
}

func TestRowidWithoutDeclaredPK(t *testing.T) {
	db := newDB(t)
	db.MustExec(`CREATE TABLE t (v TEXT)`)
	db.MustExec(`INSERT INTO t VALUES ('a'), ('b')`)
	rows, err := db.QueryRows(`SELECT rowid, v FROM t ORDER BY rowid`)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0].AsInt() != 1 || rows[1][0].AsInt() != 2 {
		t.Fatalf("rowids = %v", rows)
	}
}

func TestEngineOnAllSchemes(t *testing.T) {
	type mkStore func(sys *pmem.System) pager.Store
	schemes := map[string]mkStore{
		"FAST": func(sys *pmem.System) pager.Store {
			return fast.Create(sys, fast.Config{PageSize: 1024, MaxPages: 4096, Variant: fast.SlotHeaderLogging})
		},
		"FAST+": func(sys *pmem.System) pager.Store {
			return fast.Create(sys, fast.Config{PageSize: 1024, MaxPages: 4096, Variant: fast.InPlaceCommit})
		},
		"NVWAL": func(sys *pmem.System) pager.Store {
			return wal.Create(sys, wal.Config{PageSize: 1024, MaxPages: 4096, Kind: wal.NVWAL})
		},
		"WAL": func(sys *pmem.System) pager.Store {
			return wal.Create(sys, wal.Config{PageSize: 1024, MaxPages: 4096, Kind: wal.FullWAL})
		},
		"Journal": func(sys *pmem.System) pager.Store {
			return wal.Create(sys, wal.Config{PageSize: 1024, MaxPages: 4096, Kind: wal.Journal})
		},
	}
	for name, mk := range schemes {
		t.Run(name, func(t *testing.T) {
			sys := pmem.NewSystem(pmem.DefaultLatencies(300, 300))
			db := Open(mk(sys))
			db.MustExec(`CREATE TABLE kv (k INTEGER PRIMARY KEY, v TEXT)`)
			for i := 1; i <= 100; i++ {
				db.MustExec(fmt.Sprintf(`INSERT INTO kv VALUES (%d, 'value-%d')`, i, i))
			}
			db.MustExec(`UPDATE kv SET v = 'patched' WHERE k % 10 = 0`)
			db.MustExec(`DELETE FROM kv WHERE k % 7 = 0`)
			rows, err := db.QueryRows(`SELECT COUNT(*) FROM kv`)
			if err != nil {
				t.Fatal(err)
			}
			want := 0
			for i := 1; i <= 100; i++ {
				if i%7 != 0 {
					want++
				}
			}
			if got := rows[0][0].AsInt(); got != int64(want) {
				t.Fatalf("count = %d, want %d", got, want)
			}
			rows, _ = db.QueryRows(`SELECT v FROM kv WHERE k = 30`)
			if rows[0][0].AsText() != "patched" {
				t.Fatal("update lost")
			}
		})
	}
}

func TestDropTableFreesPagesForReuse(t *testing.T) {
	sys := pmem.NewSystem(pmem.DefaultLatencies(300, 300))
	st := fast.Create(sys, fast.Config{PageSize: 512, MaxPages: 8192, Variant: fast.InPlaceCommit})
	db := Open(st)
	db.MustExec(`CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)`)
	for i := 1; i <= 200; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO t VALUES (%d, '%s')`, i, strings.Repeat("z", 60)))
	}
	db.MustExec(`DROP TABLE t`)
	if st.Meta().FreeCount == 0 {
		t.Fatal("drop table freed no pages")
	}
	// Dropped pages are reused without growing the page space.
	db.MustExec(`CREATE TABLE t2 (id INTEGER PRIMARY KEY, v TEXT)`)
	before := st.Meta().NPages
	for i := 1; i <= 50; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO t2 VALUES (%d, '%s')`, i, strings.Repeat("q", 60)))
	}
	if st.Meta().NPages != before {
		t.Fatalf("allocations did not reuse freed pages (%d -> %d)", before, st.Meta().NPages)
	}
}

// TestVacuumReclaimsCrashLeaks creates genuine leaks — pages freed by a
// committed transaction whose post-commit free-stack push was cut off by a
// crash — and verifies VACUUM recovers them.
func TestVacuumReclaimsCrashLeaks(t *testing.T) {
	cfg := fast.Config{PageSize: 512, MaxPages: 8192, Variant: fast.InPlaceCommit}
	workload := func(db *DB) {
		db.MustExec(`CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)`)
		for i := 1; i <= 60; i++ {
			db.MustExec(fmt.Sprintf(`INSERT INTO t VALUES (%d, '%s')`, i, strings.Repeat("z", 60)))
		}
		// Growing updates force defragmentation, which frees old pages.
		for i := 1; i <= 60; i += 3 {
			db.MustExec(fmt.Sprintf(`UPDATE t SET v = '%s' WHERE id = %d`, strings.Repeat("w", 90), i))
		}
		db.MustExec(`DROP TABLE t`)
	}
	sys := pmem.NewSystem(pmem.DefaultLatencies(300, 300))
	base := sys.CrashPoints()
	workload(Open(fast.Create(sys, cfg)))
	total := sys.CrashPoints() - base
	step := total / 40
	if step == 0 {
		step = 1
	}
	leakedSomewhere := false
	for kpt := int64(0); kpt < total; kpt += step {
		sys := pmem.NewSystem(pmem.DefaultLatencies(300, 300))
		st := fast.Create(sys, cfg)
		sys.CrashAfter(kpt)
		sys.RunToCrash(func() { workload(Open(st)) })
		sys.Crash(pmem.EvictNone)
		st2, err := fast.Attach(st.Arena(), cfg)
		if err != nil {
			t.Fatalf("crash@%d: %v", kpt, err)
		}
		if err := st2.Recover(); err != nil {
			t.Fatalf("crash@%d: %v", kpt, err)
		}
		db2 := Open(st2)
		res := db2.MustExec(`VACUUM`)
		if res[0].RowsAffected > 0 {
			leakedSomewhere = true
		}
		// The database is still fully usable after VACUUM.
		db2.MustExec(`CREATE TABLE IF NOT EXISTS probe (x INTEGER); INSERT INTO probe VALUES (1)`)
		rows, err := db2.QueryRows(`SELECT COUNT(*) FROM probe`)
		if err != nil || rows[0][0].AsInt() != 1 {
			t.Fatalf("crash@%d: database unusable after VACUUM: %v", kpt, err)
		}
	}
	if !leakedSomewhere {
		t.Fatal("no crash point produced a reclaimable leak; test is vacuous")
	}
}

func TestCrashRecoveryThroughEngine(t *testing.T) {
	cfg := fast.Config{PageSize: 512, MaxPages: 4096, Variant: fast.InPlaceCommit}
	// Count crash points of the full SQL workload.
	run := func(db *DB) int {
		committed := 0
		db.MustExec(`CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)`)
		committed++
		for i := 1; i <= 15; i++ {
			db.MustExec(fmt.Sprintf(`INSERT INTO t VALUES (%d, 'val-%d')`, i, i))
			committed++
		}
		return committed
	}
	sys := pmem.NewSystem(pmem.DefaultLatencies(300, 300))
	base := sys.CrashPoints()
	run(Open(fast.Create(sys, cfg)))
	total := sys.CrashPoints() - base
	step := total / 50
	if step == 0 {
		step = 1
	}
	if testing.Short() {
		step = total / 10
	}
	for kpt := int64(0); kpt < total; kpt += step {
		sys := pmem.NewSystem(pmem.DefaultLatencies(300, 300))
		st := fast.Create(sys, cfg)
		db := Open(st)
		committed := 0
		sys.CrashAfter(kpt)
		sys.RunToCrash(func() { committed = run(db) })
		sys.Crash(pmem.CrashOptions{Seed: kpt, EvictProb: 0.5})

		st2, err := fast.Attach(st.Arena(), cfg)
		if err != nil {
			t.Fatalf("crash@%d: attach: %v", kpt, err)
		}
		if err := st2.Recover(); err != nil {
			t.Fatalf("crash@%d: recover: %v", kpt, err)
		}
		db2 := Open(st2)
		if committed == 0 {
			// CREATE TABLE may not have committed; both outcomes are legal.
			_, err := db2.Exec(`SELECT COUNT(*) FROM t`)
			if err != nil && !errors.Is(err, ErrNoSuchTable) {
				t.Fatalf("crash@%d: %v", kpt, err)
			}
			continue
		}
		rows, err := db2.QueryRows(`SELECT COUNT(*) FROM t`)
		if err != nil {
			t.Fatalf("crash@%d: count: %v", kpt, err)
		}
		got := rows[0][0].AsInt()
		wantMin := int64(committed - 1) // inserts committed so far
		if got != wantMin && got != wantMin+1 {
			t.Fatalf("crash@%d: %d rows, committed %d statements", kpt, got, committed)
		}
		// Every definitely-committed row intact.
		for i := int64(1); i <= wantMin; i++ {
			r, err := db2.QueryRows(fmt.Sprintf(`SELECT v FROM t WHERE id = %d`, i))
			if err != nil || len(r) != 1 || r[0][0].AsText() != fmt.Sprintf("val-%d", i) {
				t.Fatalf("crash@%d: row %d missing/corrupt", kpt, i)
			}
		}
	}
}

func TestEngineMatchesReferenceModel(t *testing.T) {
	db := newDB(t)
	db.MustExec(`CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)`)
	rng := rand.New(rand.NewSource(21))
	model := map[int64]string{}
	for step := 0; step < 400; step++ {
		id := int64(rng.Intn(60) + 1)
		switch rng.Intn(4) {
		case 0, 1:
			v := fmt.Sprintf("v%d", rng.Intn(1000))
			_, err := db.Exec(fmt.Sprintf(`INSERT INTO t VALUES (%d, '%s')`, id, v))
			if _, exists := model[id]; exists {
				if err == nil {
					t.Fatalf("step %d: duplicate insert succeeded", step)
				}
			} else if err != nil {
				t.Fatalf("step %d: insert: %v", step, err)
			} else {
				model[id] = v
			}
		case 2:
			v := fmt.Sprintf("u%d", rng.Intn(1000))
			res, err := db.Exec(fmt.Sprintf(`UPDATE t SET v = '%s' WHERE id = %d`, v, id))
			if err != nil {
				t.Fatalf("step %d: update: %v", step, err)
			}
			if _, exists := model[id]; exists {
				if res[0].RowsAffected != 1 {
					t.Fatalf("step %d: update affected %d", step, res[0].RowsAffected)
				}
				model[id] = v
			} else if res[0].RowsAffected != 0 {
				t.Fatalf("step %d: phantom update", step)
			}
		case 3:
			res, err := db.Exec(fmt.Sprintf(`DELETE FROM t WHERE id = %d`, id))
			if err != nil {
				t.Fatalf("step %d: delete: %v", step, err)
			}
			if _, exists := model[id]; exists != (res[0].RowsAffected == 1) {
				t.Fatalf("step %d: delete mismatch", step)
			}
			delete(model, id)
		}
	}
	rows, err := db.QueryRows(`SELECT id, v FROM t ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(model) {
		t.Fatalf("%d rows, model %d", len(rows), len(model))
	}
	for _, r := range rows {
		if model[r[0].AsInt()] != r[1].AsText() {
			t.Fatalf("row %v mismatches model", r)
		}
	}
}
