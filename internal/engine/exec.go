package engine

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"fasp/internal/btree"
	"fasp/internal/slotted"
	"fasp/internal/sql"
)

// --- DDL ---------------------------------------------------------------------

func (ex *executor) createTable(s sql.CreateTable) (Result, error) {
	var res Result
	cat := ex.catalog()
	if _, ok, err := cat.Get(catalogKey(s.Name)); err != nil {
		return res, err
	} else if ok {
		if s.IfNotExists {
			return res, nil
		}
		return res, fmt.Errorf("%w: %s", ErrTableExists, s.Name)
	}
	pkSeen := false
	for _, c := range s.Cols {
		if c.PrimaryKey {
			if pkSeen {
				return res, fmt.Errorf("%w: multiple primary keys", ErrConstraint)
			}
			pkSeen = true
		}
	}
	createSQL := renderCreateSQL(s)
	if err := cat.Insert(catalogKey(s.Name), encodeCatalogRow(0, createSQL)); err != nil {
		return res, err
	}
	return res, nil
}

// renderCreateSQL normalises the statement for catalog storage.
func renderCreateSQL(s sql.CreateTable) string {
	var sb strings.Builder
	sb.WriteString("CREATE TABLE ")
	sb.WriteString(s.Name)
	sb.WriteString(" (")
	for i, c := range s.Cols {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(c.Name)
		sb.WriteByte(' ')
		sb.WriteString(c.Type.String())
		if c.PrimaryKey {
			sb.WriteString(" PRIMARY KEY")
		}
		if c.NotNull {
			sb.WriteString(" NOT NULL")
		}
	}
	sb.WriteString(")")
	return sb.String()
}

func (ex *executor) dropTable(s sql.DropTable) (Result, error) {
	var res Result
	cat := ex.catalog()
	if _, ok, err := cat.Get(catalogKey(s.Name)); err != nil {
		return res, err
	} else if !ok {
		if s.IfExists {
			return res, nil
		}
		return res, fmt.Errorf("%w: %s", ErrNoSuchTable, s.Name)
	}
	// Free every page of the table's tree and of its indexes, then remove
	// the catalog rows.
	ti, err := loadTableInfo(cat, s.Name)
	if err != nil {
		return res, err
	}
	idxs, err := tableIndexes(cat, ti)
	if err != nil {
		return res, err
	}
	for _, ix := range idxs {
		if _, err := ex.dropIndex(sql.DropIndex{Name: ix.name}); err != nil {
			return res, err
		}
	}
	tbl := ex.table(cat, s.Name)
	reach, err := tbl.Reachable()
	if err != nil {
		return res, err
	}
	for no := range reach {
		ex.ptx.FreePage(no)
	}
	if err := cat.Delete(catalogKey(s.Name)); err != nil {
		return res, err
	}
	return res, nil
}

func (ex *executor) vacuum() (Result, error) {
	var res Result
	type reclaimer interface {
		ReclaimExcept(reachable map[uint32]bool) (int, error)
	}
	rec, ok := ex.db.st.(reclaimer)
	if !ok {
		return res, nil // scheme has no leak reclamation; VACUUM is a no-op
	}
	if ex.db.explicit {
		return res, errors.New("engine: VACUUM inside a transaction is not supported")
	}
	// Reachable = catalog pages + every table's pages.
	cat := ex.catalog()
	reachable, err := cat.Reachable()
	if err != nil {
		return res, err
	}
	var tables []string
	if err := cat.Scan(nil, nil, func(k, _ []byte) bool {
		tables = append(tables, string(k))
		return true
	}); err != nil {
		return res, err
	}
	for _, name := range tables {
		tr, err := ex.table(cat, name).Reachable()
		if err != nil {
			return res, err
		}
		for no := range tr {
			reachable[no] = true
		}
	}
	n, err := rec.ReclaimExcept(reachable)
	res.RowsAffected = n
	return res, err
}

// --- DML ---------------------------------------------------------------------

func (ex *executor) insert(s sql.Insert) (Result, error) {
	var res Result
	cat := ex.catalog()
	ti, err := loadTableInfo(cat, s.Table)
	if err != nil {
		return res, err
	}
	// Map statement columns to table columns.
	colMap := make([]int, len(ti.cols))
	if len(s.Cols) == 0 {
		for i := range colMap {
			colMap[i] = i
		}
	} else {
		for i := range colMap {
			colMap[i] = -1
		}
		for vi, name := range s.Cols {
			ci := ti.colIndex(name)
			if ci < 0 {
				return res, fmt.Errorf("%w: %s", ErrNoSuchColumn, name)
			}
			colMap[ci] = vi
		}
	}
	tbl := ex.table(cat, s.Table)
	idxs, err := tableIndexes(cat, ti)
	if err != nil {
		return res, err
	}
	for _, rowExprs := range s.Rows {
		want := len(ti.cols)
		if len(s.Cols) > 0 {
			want = len(s.Cols)
		}
		if len(rowExprs) != want {
			return res, fmt.Errorf("%w: %d values for %d columns", ErrConstraint, len(rowExprs), want)
		}
		vals := make([]sql.Value, len(ti.cols))
		for ci := range ti.cols {
			if vi := colMap[ci]; vi >= 0 {
				v, err := evalExpr(rowExprs[vi], nil, nil)
				if err != nil {
					return res, err
				}
				vals[ci] = applyAffinity(v, ti.cols[ci].Type)
			} else {
				vals[ci] = sql.Null()
			}
		}
		// Determine the rowid.
		var rowid int64
		if ti.pkCol >= 0 && !vals[ti.pkCol].IsNull() {
			rowid = vals[ti.pkCol].AsInt()
		} else {
			maxK, ok, err := tbl.MaxKey()
			if err != nil {
				return res, err
			}
			if ok {
				rowid = KeyRowid(maxK) + 1
			} else {
				rowid = 1
			}
		}
		// Constraint checks.
		for ci, c := range ti.cols {
			if c.NotNull && ci != ti.pkCol && vals[ci].IsNull() {
				return res, fmt.Errorf("%w: %s.%s may not be NULL", ErrConstraint, ti.name, c.Name)
			}
		}
		// The INTEGER PRIMARY KEY lives in the key, not the record body.
		if ti.pkCol >= 0 {
			vals[ti.pkCol] = sql.Null()
		}
		err := tbl.Insert(RowidKey(rowid), EncodeRecord(vals))
		if errors.Is(err, slotted.ErrDuplicate) {
			return res, fmt.Errorf("%w: duplicate rowid %d in %s", ErrConstraint, rowid, ti.name)
		}
		if err != nil {
			return res, err
		}
		if len(idxs) > 0 {
			r := tableRow{rowid: rowid, vals: vals}
			if err := ex.addIndexEntries(cat, ti, idxs, &r); err != nil {
				return res, err
			}
		}
		res.RowsAffected++
		res.LastInsertID = rowid
	}
	return res, nil
}

// tableRow is one decoded row during scans.
type tableRow struct {
	rowid int64
	vals  []sql.Value
}

// scanWhere collects rows matching the WHERE clause, using a rowid point
// lookup or a secondary-index equality lookup when the predicate allows it.
func (ex *executor) scanWhere(tbl *btree.Tx, ti *tableInfo, where sql.Expr) ([]tableRow, error) {
	return ex.scanWhereIdx(tbl, ti, nil, nil, where)
}

// scanWhereIdx is scanWhere with the table's indexes available for
// planning (cat and idxs may be nil to skip index planning).
func (ex *executor) scanWhereIdx(tbl *btree.Tx, ti *tableInfo, cat *btree.Tx, idxs []*indexInfo, where sql.Expr) ([]tableRow, error) {
	if rowid, ok := rowidPointQuery(ti, where); ok {
		rec, found, err := tbl.Get(RowidKey(rowid))
		if err != nil || !found {
			return nil, err
		}
		vals, err := DecodeRecord(rec)
		if err != nil {
			return nil, err
		}
		return []tableRow{{rowid: rowid, vals: vals}}, nil
	}
	if cat != nil {
		if col, lit, ok := columnEqLiteral(where); ok && !lit.IsNull() {
			for _, ix := range idxs {
				if !strings.EqualFold(ix.col, col) {
					continue
				}
				rowids, err := ex.indexLookupAll(ex.indexTree(cat, ix.name), lit)
				if err != nil {
					return nil, err
				}
				var rows []tableRow
				for _, rowid := range rowids {
					rec, found, err := tbl.Get(RowidKey(rowid))
					if err != nil {
						return nil, err
					}
					if !found {
						return nil, fmt.Errorf("%w: index %s references missing rowid %d",
							ErrBadRecord, ix.name, rowid)
					}
					vals, err := DecodeRecord(rec)
					if err != nil {
						return nil, err
					}
					r := tableRow{rowid: rowid, vals: vals}
					// Re-check the predicate: index equality is numeric-
					// unified, the expression may be stricter.
					keep, err := evalExpr(where, ti, &r)
					if err != nil {
						return nil, err
					}
					if keep.Truthy() {
						rows = append(rows, r)
					}
				}
				return rows, nil
			}
		}
	}
	var rows []tableRow
	var scanErr error
	err := tbl.Scan(nil, nil, func(k, v []byte) bool {
		vals, err := DecodeRecord(v)
		if err != nil {
			scanErr = err
			return false
		}
		r := tableRow{rowid: KeyRowid(k), vals: vals}
		if where != nil {
			keep, err := evalExpr(where, ti, &r)
			if err != nil {
				scanErr = err
				return false
			}
			if !keep.Truthy() {
				return true
			}
		}
		rows = append(rows, r)
		return true
	})
	if err != nil {
		return nil, err
	}
	return rows, scanErr
}

// columnEqLiteral recognises WHERE <column> = <literal> (either side).
func columnEqLiteral(where sql.Expr) (string, sql.Value, bool) {
	b, ok := where.(sql.Binary)
	if !ok || b.Op != "=" {
		return "", sql.Null(), false
	}
	col, cok := b.L.(sql.Column)
	lit, lok := b.R.(sql.Literal)
	if !cok || !lok {
		col, cok = b.R.(sql.Column)
		lit, lok = b.L.(sql.Literal)
	}
	if !cok || !lok {
		return "", sql.Null(), false
	}
	return col.Name, lit.Val, true
}

// rowidPointQuery recognises WHERE rowid = <int literal> (or the INTEGER
// PRIMARY KEY alias) — SQLite's fast path for key lookups.
func rowidPointQuery(ti *tableInfo, where sql.Expr) (int64, bool) {
	b, ok := where.(sql.Binary)
	if !ok || b.Op != "=" {
		return 0, false
	}
	col, cok := b.L.(sql.Column)
	lit, lok := b.R.(sql.Literal)
	if !cok || !lok {
		col, cok = b.R.(sql.Column)
		lit, lok = b.L.(sql.Literal)
	}
	if !cok || !lok || !ti.isRowidRef(col.Name) {
		return 0, false
	}
	if lit.Val.Kind() != sql.KindInt {
		return 0, false
	}
	return lit.Val.AsInt(), true
}

func (ex *executor) selectStmt(s sql.Select) (Result, error) {
	var res Result
	// SELECT without FROM evaluates expressions once.
	if s.Table == "" {
		var row []sql.Value
		for _, c := range s.Cols {
			if c.Star {
				return res, fmt.Errorf("engine: SELECT * requires FROM")
			}
			v, err := evalExpr(c.Expr, nil, nil)
			if err != nil {
				return res, err
			}
			row = append(row, v)
			res.Columns = append(res.Columns, selectColName(c))
		}
		res.Rows = [][]sql.Value{row}
		return res, nil
	}
	cat := ex.catalog()
	ti, err := loadTableInfo(cat, s.Table)
	if err != nil {
		return res, err
	}
	tbl := ex.table(cat, s.Table)
	idxs, err := tableIndexes(cat, ti)
	if err != nil {
		return res, err
	}
	rows, err := ex.scanWhereIdx(tbl, ti, cat, idxs, s.Where)
	if err != nil {
		return res, err
	}
	// GROUP BY, or an implicit single group when aggregates appear.
	if len(s.GroupBy) > 0 || isAggregateSelect(s) {
		return groupedSelect(s, ti, rows)
	}
	// ORDER BY before projection (terms may reference any column).
	if len(s.OrderBy) > 0 {
		if err := sortRows(rows, s.OrderBy, ti); err != nil {
			return res, err
		}
	}
	if !s.Distinct {
		rows, err = applyLimit(rows, s)
		if err != nil {
			return res, err
		}
	}
	// Projection.
	for _, c := range s.Cols {
		if c.Star {
			for _, col := range ti.cols {
				res.Columns = append(res.Columns, col.Name)
			}
		} else {
			res.Columns = append(res.Columns, selectColName(c))
		}
	}
	for i := range rows {
		var out []sql.Value
		for _, c := range s.Cols {
			if c.Star {
				for ci := range ti.cols {
					out = append(out, columnValue(ti, &rows[i], ci))
				}
				continue
			}
			v, err := evalExpr(c.Expr, ti, &rows[i])
			if err != nil {
				return res, err
			}
			out = append(out, v)
		}
		res.Rows = append(res.Rows, out)
	}
	if s.Distinct {
		res.Rows = dedupeRows(res.Rows)
		res.Rows, err = applyLimitRows(res.Rows, s)
		if err != nil {
			return res, err
		}
	}
	return res, nil
}

// dedupeRows removes duplicate result rows, preserving first-seen order.
func dedupeRows(rows [][]sql.Value) [][]sql.Value {
	seen := map[string]bool{}
	out := rows[:0]
	for _, r := range rows {
		key := string(EncodeRecord(r))
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, r)
	}
	return out
}

// groupedSelect executes GROUP BY / HAVING queries (and plain aggregate
// selects, which form one implicit group).
func groupedSelect(s sql.Select, ti *tableInfo, rows []tableRow) (Result, error) {
	var res Result
	for _, c := range s.Cols {
		if c.Star {
			return res, fmt.Errorf("engine: SELECT * with GROUP BY or aggregates is unsupported")
		}
		res.Columns = append(res.Columns, selectColName(c))
	}
	// Partition into groups (one implicit group without GROUP BY —
	// including the empty-input case, as SQL requires).
	type group struct {
		rows []tableRow
		out  []sql.Value
		keys []sql.Value // ORDER BY sort keys
	}
	var groups []*group
	if len(s.GroupBy) == 0 {
		groups = []*group{{rows: rows}}
	} else {
		index := map[string]*group{}
		for i := range rows {
			var kv []sql.Value
			for _, ge := range s.GroupBy {
				v, err := evalExpr(ge, ti, &rows[i])
				if err != nil {
					return res, err
				}
				kv = append(kv, v)
			}
			key := string(EncodeRecord(kv))
			g, ok := index[key]
			if !ok {
				g = &group{}
				index[key] = g
				groups = append(groups, g)
			}
			g.rows = append(g.rows, rows[i])
		}
	}
	// HAVING, projection and sort keys per group.
	var kept []*group
	for _, g := range groups {
		if s.Having != nil {
			v, err := evalGrouped(s.Having, ti, g.rows)
			if err != nil {
				return res, err
			}
			if !v.Truthy() {
				continue
			}
		}
		for _, c := range s.Cols {
			v, err := evalGrouped(c.Expr, ti, g.rows)
			if err != nil {
				return res, err
			}
			g.out = append(g.out, v)
		}
		for _, term := range s.OrderBy {
			v, err := evalGrouped(term.Expr, ti, g.rows)
			if err != nil {
				return res, err
			}
			g.keys = append(g.keys, v)
		}
		kept = append(kept, g)
	}
	if len(s.OrderBy) > 0 {
		sort.SliceStable(kept, func(i, j int) bool {
			for t, term := range s.OrderBy {
				c := sql.Compare(kept[i].keys[t], kept[j].keys[t])
				if c == 0 {
					continue
				}
				if term.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}
	for _, g := range kept {
		res.Rows = append(res.Rows, g.out)
	}
	if s.Distinct {
		res.Rows = dedupeRows(res.Rows)
	}
	var err error
	res.Rows, err = applyLimitRows(res.Rows, s)
	return res, err
}

// evalGrouped evaluates an expression over a group: aggregate calls see
// the whole group; everything else composes via literal substitution, and
// bare columns read the group's first row.
func evalGrouped(e sql.Expr, ti *tableInfo, rows []tableRow) (sql.Value, error) {
	switch n := e.(type) {
	case sql.Literal:
		return n.Val, nil
	case sql.Column:
		if len(rows) == 0 {
			return sql.Null(), nil
		}
		return evalExpr(n, ti, &rows[0])
	case sql.Unary:
		x, err := evalGrouped(n.X, ti, rows)
		if err != nil {
			return sql.Null(), err
		}
		return evalExpr(sql.Unary{Op: n.Op, X: sql.Literal{Val: x}}, nil, nil)
	case sql.Binary:
		l, err := evalGrouped(n.L, ti, rows)
		if err != nil {
			return sql.Null(), err
		}
		r, err := evalGrouped(n.R, ti, rows)
		if err != nil {
			return sql.Null(), err
		}
		return evalExpr(sql.Binary{Op: n.Op, L: sql.Literal{Val: l}, R: sql.Literal{Val: r}}, nil, nil)
	case sql.Call:
		if isAggregateFunc(n.Name) {
			return evalAggregate(n, ti, rows)
		}
		args := make([]sql.Expr, len(n.Args))
		for i, a := range n.Args {
			v, err := evalGrouped(a, ti, rows)
			if err != nil {
				return sql.Null(), err
			}
			args[i] = sql.Literal{Val: v}
		}
		return evalExpr(sql.Call{Name: n.Name, Args: args}, nil, nil)
	case sql.In:
		x, err := evalGrouped(n.X, ti, rows)
		if err != nil {
			return sql.Null(), err
		}
		list := make([]sql.Expr, len(n.List))
		for i, le := range n.List {
			v, err := evalGrouped(le, ti, rows)
			if err != nil {
				return sql.Null(), err
			}
			list[i] = sql.Literal{Val: v}
		}
		return evalExpr(sql.In{X: sql.Literal{Val: x}, List: list, Not: n.Not}, nil, nil)
	case sql.Between:
		x, err := evalGrouped(n.X, ti, rows)
		if err != nil {
			return sql.Null(), err
		}
		lo, err := evalGrouped(n.Lo, ti, rows)
		if err != nil {
			return sql.Null(), err
		}
		hi, err := evalGrouped(n.Hi, ti, rows)
		if err != nil {
			return sql.Null(), err
		}
		return evalExpr(sql.Between{X: sql.Literal{Val: x}, Lo: sql.Literal{Val: lo},
			Hi: sql.Literal{Val: hi}, Not: n.Not}, nil, nil)
	}
	return sql.Null(), fmt.Errorf("engine: unsupported grouped expression %T", e)
}

// applyLimitRows applies LIMIT/OFFSET to projected result rows.
func applyLimitRows(rows [][]sql.Value, s sql.Select) ([][]sql.Value, error) {
	if s.Limit == nil {
		return rows, nil
	}
	lim, err := evalExpr(s.Limit, nil, nil)
	if err != nil {
		return nil, err
	}
	off := int64(0)
	if s.Offset != nil {
		o, err := evalExpr(s.Offset, nil, nil)
		if err != nil {
			return nil, err
		}
		off = o.AsInt()
	}
	if off < 0 {
		off = 0
	}
	if off > int64(len(rows)) {
		return nil, nil
	}
	rows = rows[off:]
	if n := lim.AsInt(); n >= 0 && n < int64(len(rows)) {
		rows = rows[:n]
	}
	return rows, nil
}

func selectColName(c sql.SelectCol) string {
	if c.Alias != "" {
		return c.Alias
	}
	if col, ok := c.Expr.(sql.Column); ok {
		return col.Name
	}
	return "expr"
}

func sortRows(rows []tableRow, terms []sql.OrderTerm, ti *tableInfo) error {
	var sortErr error
	sort.SliceStable(rows, func(i, j int) bool {
		for _, t := range terms {
			vi, err := evalExpr(t.Expr, ti, &rows[i])
			if err != nil {
				sortErr = err
				return false
			}
			vj, err := evalExpr(t.Expr, ti, &rows[j])
			if err != nil {
				sortErr = err
				return false
			}
			c := sql.Compare(vi, vj)
			if c == 0 {
				continue
			}
			if t.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return sortErr
}

func applyLimit(rows []tableRow, s sql.Select) ([]tableRow, error) {
	if s.Limit == nil {
		return rows, nil
	}
	lim, err := evalExpr(s.Limit, nil, nil)
	if err != nil {
		return nil, err
	}
	off := int64(0)
	if s.Offset != nil {
		o, err := evalExpr(s.Offset, nil, nil)
		if err != nil {
			return nil, err
		}
		off = o.AsInt()
	}
	n := lim.AsInt()
	if off < 0 {
		off = 0
	}
	if off > int64(len(rows)) {
		return nil, nil
	}
	rows = rows[off:]
	if n >= 0 && n < int64(len(rows)) {
		rows = rows[:n]
	}
	return rows, nil
}

func isAggregateSelect(s sql.Select) bool {
	for _, c := range s.Cols {
		if hasAggregate(c.Expr) {
			return true
		}
	}
	return false
}

// hasAggregate reports whether an aggregate call appears anywhere in the
// expression tree.
func hasAggregate(e sql.Expr) bool {
	switch n := e.(type) {
	case sql.Call:
		if isAggregateFunc(n.Name) {
			return true
		}
		for _, a := range n.Args {
			if hasAggregate(a) {
				return true
			}
		}
	case sql.Binary:
		return hasAggregate(n.L) || hasAggregate(n.R)
	case sql.Unary:
		return hasAggregate(n.X)
	case sql.In:
		if hasAggregate(n.X) {
			return true
		}
		for _, le := range n.List {
			if hasAggregate(le) {
				return true
			}
		}
	case sql.Between:
		return hasAggregate(n.X) || hasAggregate(n.Lo) || hasAggregate(n.Hi)
	}
	return false
}

func isAggregateFunc(name string) bool {
	switch strings.ToUpper(name) {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	}
	return false
}

func evalAggregate(call sql.Call, ti *tableInfo, rows []tableRow) (sql.Value, error) {
	name := strings.ToUpper(call.Name)
	if name == "COUNT" && call.Star {
		return sql.Int(int64(len(rows))), nil
	}
	if len(call.Args) != 1 {
		return sql.Null(), fmt.Errorf("engine: %s takes one argument", name)
	}
	var count int64
	var sum float64
	allInt := true
	var minV, maxV sql.Value
	first := true
	for i := range rows {
		v, err := evalExpr(call.Args[0], ti, &rows[i])
		if err != nil {
			return sql.Null(), err
		}
		if v.IsNull() {
			continue
		}
		count++
		sum += v.AsReal()
		if v.Kind() != sql.KindInt {
			allInt = false
		}
		if first || sql.Compare(v, minV) < 0 {
			minV = v
		}
		if first || sql.Compare(v, maxV) > 0 {
			maxV = v
		}
		first = false
	}
	switch name {
	case "COUNT":
		return sql.Int(count), nil
	case "SUM":
		if count == 0 {
			return sql.Null(), nil
		}
		if allInt {
			return sql.Int(int64(sum)), nil
		}
		return sql.Real(sum), nil
	case "AVG":
		if count == 0 {
			return sql.Null(), nil
		}
		return sql.Real(sum / float64(count)), nil
	case "MIN":
		if first {
			return sql.Null(), nil
		}
		return minV, nil
	default: // MAX
		if first {
			return sql.Null(), nil
		}
		return maxV, nil
	}
}

func (ex *executor) update(s sql.Update) (Result, error) {
	var res Result
	cat := ex.catalog()
	ti, err := loadTableInfo(cat, s.Table)
	if err != nil {
		return res, err
	}
	setCols := make([]int, len(s.Sets))
	for i, set := range s.Sets {
		if ti.isRowidRef(set.Col) && ti.colIndex(set.Col) < 0 {
			return res, fmt.Errorf("engine: updating bare rowid is unsupported")
		}
		ci := ti.colIndex(set.Col)
		if ci < 0 {
			return res, fmt.Errorf("%w: %s", ErrNoSuchColumn, set.Col)
		}
		setCols[i] = ci
	}
	tbl := ex.table(cat, s.Table)
	idxs, err := tableIndexes(cat, ti)
	if err != nil {
		return res, err
	}
	rows, err := ex.scanWhereIdx(tbl, ti, cat, idxs, s.Where)
	if err != nil {
		return res, err
	}
	for i := range rows {
		r := &rows[i]
		newVals := append([]sql.Value(nil), r.vals...)
		newRowid := r.rowid
		for si, set := range s.Sets {
			v, err := evalExpr(set.Expr, ti, r)
			if err != nil {
				return res, err
			}
			v = applyAffinity(v, ti.cols[setCols[si]].Type)
			if setCols[si] == ti.pkCol {
				if v.IsNull() {
					return res, fmt.Errorf("%w: primary key may not be NULL", ErrConstraint)
				}
				newRowid = v.AsInt()
				continue
			}
			if ti.cols[setCols[si]].NotNull && v.IsNull() {
				return res, fmt.Errorf("%w: %s may not be NULL", ErrConstraint, set.Col)
			}
			newVals[setCols[si]] = v
		}
		if ti.pkCol >= 0 {
			newVals[ti.pkCol] = sql.Null()
		}
		if len(idxs) > 0 {
			if err := ex.dropIndexEntries(cat, ti, idxs, r); err != nil {
				return res, err
			}
		}
		rec := EncodeRecord(newVals)
		if newRowid != r.rowid {
			if err := tbl.Delete(RowidKey(r.rowid)); err != nil {
				return res, err
			}
			if err := tbl.Insert(RowidKey(newRowid), rec); err != nil {
				if errors.Is(err, slotted.ErrDuplicate) {
					return res, fmt.Errorf("%w: duplicate rowid %d", ErrConstraint, newRowid)
				}
				return res, err
			}
		} else if err := tbl.Update(RowidKey(r.rowid), rec); err != nil {
			return res, err
		}
		if len(idxs) > 0 {
			nr := tableRow{rowid: newRowid, vals: newVals}
			if err := ex.addIndexEntries(cat, ti, idxs, &nr); err != nil {
				return res, err
			}
		}
		res.RowsAffected++
	}
	return res, nil
}

func (ex *executor) delete(s sql.Delete) (Result, error) {
	var res Result
	cat := ex.catalog()
	ti, err := loadTableInfo(cat, s.Table)
	if err != nil {
		return res, err
	}
	tbl := ex.table(cat, s.Table)
	idxs, err := tableIndexes(cat, ti)
	if err != nil {
		return res, err
	}
	rows, err := ex.scanWhereIdx(tbl, ti, cat, idxs, s.Where)
	if err != nil {
		return res, err
	}
	for i := range rows {
		if len(idxs) > 0 {
			if err := ex.dropIndexEntries(cat, ti, idxs, &rows[i]); err != nil {
				return res, err
			}
		}
		if err := tbl.Delete(RowidKey(rows[i].rowid)); err != nil {
			return res, err
		}
		res.RowsAffected++
	}
	return res, nil
}

// --- Expression evaluation ----------------------------------------------------

// columnValue reads column ci of a row, resolving the INTEGER PRIMARY KEY
// from the rowid.
func columnValue(ti *tableInfo, r *tableRow, ci int) sql.Value {
	if ci == ti.pkCol {
		return sql.Int(r.rowid)
	}
	if ci < len(r.vals) {
		return r.vals[ci]
	}
	return sql.Null()
}

// evalExpr evaluates an expression; ti/r are nil outside row context.
func evalExpr(e sql.Expr, ti *tableInfo, r *tableRow) (sql.Value, error) {
	switch n := e.(type) {
	case sql.Literal:
		return n.Val, nil
	case sql.Column:
		if ti == nil || r == nil {
			return sql.Null(), fmt.Errorf("%w: %s (no row context)", ErrNoSuchColumn, n.Name)
		}
		if strings.EqualFold(n.Name, "rowid") {
			return sql.Int(r.rowid), nil
		}
		ci := ti.colIndex(n.Name)
		if ci < 0 {
			return sql.Null(), fmt.Errorf("%w: %s", ErrNoSuchColumn, n.Name)
		}
		return columnValue(ti, r, ci), nil
	case sql.Unary:
		x, err := evalExpr(n.X, ti, r)
		if err != nil {
			return sql.Null(), err
		}
		switch n.Op {
		case "-":
			if x.IsNull() {
				return sql.Null(), nil
			}
			if x.Kind() == sql.KindInt {
				return sql.Int(-x.AsInt()), nil
			}
			return sql.Real(-x.AsReal()), nil
		case "+":
			return x, nil
		case "NOT":
			if x.IsNull() {
				return sql.Null(), nil
			}
			if x.Truthy() {
				return sql.Int(0), nil
			}
			return sql.Int(1), nil
		}
		return sql.Null(), fmt.Errorf("engine: unary %q", n.Op)
	case sql.Binary:
		return evalBinary(n, ti, r)
	case sql.Call:
		return evalCall(n, ti, r)
	case sql.In:
		return evalIn(n, ti, r)
	case sql.Between:
		// Desugar to x >= lo AND x <= hi, inheriting three-valued logic.
		e := sql.Expr(sql.Binary{Op: "AND",
			L: sql.Binary{Op: ">=", L: n.X, R: n.Lo},
			R: sql.Binary{Op: "<=", L: n.X, R: n.Hi}})
		if n.Not {
			e = sql.Unary{Op: "NOT", X: e}
		}
		return evalExpr(e, ti, r)
	}
	return sql.Null(), fmt.Errorf("engine: unsupported expression %T", e)
}

// evalIn implements SQL IN with three-valued logic: a NULL operand or a
// NULL list member (without a match) yields NULL.
func evalIn(n sql.In, ti *tableInfo, r *tableRow) (sql.Value, error) {
	x, err := evalExpr(n.X, ti, r)
	if err != nil {
		return sql.Null(), err
	}
	if x.IsNull() {
		return sql.Null(), nil
	}
	sawNull := false
	match := false
	for _, le := range n.List {
		v, err := evalExpr(le, ti, r)
		if err != nil {
			return sql.Null(), err
		}
		if v.IsNull() {
			sawNull = true
			continue
		}
		if sql.Compare(x, v) == 0 {
			match = true
			break
		}
	}
	switch {
	case match:
		return boolVal(!n.Not), nil
	case sawNull:
		return sql.Null(), nil
	default:
		return boolVal(n.Not), nil
	}
}

func evalBinary(n sql.Binary, ti *tableInfo, r *tableRow) (sql.Value, error) {
	l, err := evalExpr(n.L, ti, r)
	if err != nil {
		return sql.Null(), err
	}
	// IS / IS NOT observe NULL directly (no three-valued logic).
	if n.Op == "IS" || n.Op == "IS NOT" {
		rv, err := evalExpr(n.R, ti, r)
		if err != nil {
			return sql.Null(), err
		}
		same := (l.IsNull() && rv.IsNull()) || (!l.IsNull() && !rv.IsNull() && sql.Compare(l, rv) == 0)
		if n.Op == "IS NOT" {
			same = !same
		}
		return boolVal(same), nil
	}
	rv, err := evalExpr(n.R, ti, r)
	if err != nil {
		return sql.Null(), err
	}
	switch n.Op {
	case "AND":
		lf, rf := !l.IsNull() && !l.Truthy(), !rv.IsNull() && !rv.Truthy()
		if lf || rf {
			return sql.Int(0), nil
		}
		if l.IsNull() || rv.IsNull() {
			return sql.Null(), nil
		}
		return sql.Int(1), nil
	case "OR":
		lt, rt := !l.IsNull() && l.Truthy(), !rv.IsNull() && rv.Truthy()
		if lt || rt {
			return sql.Int(1), nil
		}
		if l.IsNull() || rv.IsNull() {
			return sql.Null(), nil
		}
		return sql.Int(0), nil
	}
	if l.IsNull() || rv.IsNull() {
		return sql.Null(), nil
	}
	switch n.Op {
	case "=", "!=", "<", "<=", ">", ">=":
		c := sql.Compare(l, rv)
		switch n.Op {
		case "=":
			return boolVal(c == 0), nil
		case "!=":
			return boolVal(c != 0), nil
		case "<":
			return boolVal(c < 0), nil
		case "<=":
			return boolVal(c <= 0), nil
		case ">":
			return boolVal(c > 0), nil
		default:
			return boolVal(c >= 0), nil
		}
	case "+", "-", "*", "/", "%":
		return arith(n.Op, l, rv)
	case "||":
		return sql.Text(l.AsText() + rv.AsText()), nil
	case "LIKE":
		return boolVal(likeMatch(rv.AsText(), l.AsText())), nil
	}
	return sql.Null(), fmt.Errorf("engine: operator %q", n.Op)
}

func arith(op string, l, r sql.Value) (sql.Value, error) {
	bothInt := l.Kind() == sql.KindInt && r.Kind() == sql.KindInt
	if bothInt {
		a, b := l.AsInt(), r.AsInt()
		switch op {
		case "+":
			return sql.Int(a + b), nil
		case "-":
			return sql.Int(a - b), nil
		case "*":
			return sql.Int(a * b), nil
		case "/":
			if b == 0 {
				return sql.Null(), nil
			}
			return sql.Int(a / b), nil
		case "%":
			if b == 0 {
				return sql.Null(), nil
			}
			return sql.Int(a % b), nil
		}
	}
	a, b := l.AsReal(), r.AsReal()
	switch op {
	case "+":
		return sql.Real(a + b), nil
	case "-":
		return sql.Real(a - b), nil
	case "*":
		return sql.Real(a * b), nil
	case "/":
		if b == 0 {
			return sql.Null(), nil
		}
		return sql.Real(a / b), nil
	case "%":
		if int64(b) == 0 {
			return sql.Null(), nil
		}
		return sql.Int(int64(a) % int64(b)), nil
	}
	return sql.Null(), fmt.Errorf("engine: arithmetic %q", op)
}

func boolVal(b bool) sql.Value {
	if b {
		return sql.Int(1)
	}
	return sql.Int(0)
}

// likeMatch implements SQL LIKE with % and _ wildcards, ASCII
// case-insensitive like SQLite's default.
func likeMatch(pattern, s string) bool {
	p := strings.ToLower(pattern)
	t := strings.ToLower(s)
	return likeRec(p, t)
}

func likeRec(p, s string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '%':
			for len(p) > 0 && p[0] == '%' {
				p = p[1:]
			}
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(p, s[i:]) {
					return true
				}
			}
			return false
		case '_':
			if len(s) == 0 {
				return false
			}
			p, s = p[1:], s[1:]
		default:
			if len(s) == 0 || p[0] != s[0] {
				return false
			}
			p, s = p[1:], s[1:]
		}
	}
	return len(s) == 0
}

func evalCall(n sql.Call, ti *tableInfo, r *tableRow) (sql.Value, error) {
	name := strings.ToUpper(n.Name)
	if isAggregateFunc(name) {
		return sql.Null(), fmt.Errorf("engine: aggregate %s in row context", name)
	}
	args := make([]sql.Value, len(n.Args))
	for i, a := range n.Args {
		v, err := evalExpr(a, ti, r)
		if err != nil {
			return sql.Null(), err
		}
		args[i] = v
	}
	switch name {
	case "LENGTH":
		if len(args) != 1 {
			break
		}
		if args[0].IsNull() {
			return sql.Null(), nil
		}
		if args[0].Kind() == sql.KindBlob {
			return sql.Int(int64(len(args[0].AsBlob()))), nil
		}
		return sql.Int(int64(len(args[0].AsText()))), nil
	case "ABS":
		if len(args) != 1 {
			break
		}
		if args[0].IsNull() {
			return sql.Null(), nil
		}
		if args[0].Kind() == sql.KindInt {
			v := args[0].AsInt()
			if v < 0 {
				v = -v
			}
			return sql.Int(v), nil
		}
		v := args[0].AsReal()
		if v < 0 {
			v = -v
		}
		return sql.Real(v), nil
	case "UPPER":
		if len(args) != 1 {
			break
		}
		return sql.Text(strings.ToUpper(args[0].AsText())), nil
	case "LOWER":
		if len(args) != 1 {
			break
		}
		return sql.Text(strings.ToLower(args[0].AsText())), nil
	case "HEX":
		if len(args) != 1 {
			break
		}
		return sql.Text(strings.ToUpper(fmt.Sprintf("%x", args[0].AsBlob()))), nil
	case "TYPEOF":
		if len(args) != 1 {
			break
		}
		return sql.Text(strings.ToLower(args[0].Kind().String())), nil
	default:
		return sql.Null(), fmt.Errorf("engine: unknown function %s", n.Name)
	}
	return sql.Null(), fmt.Errorf("engine: %s: wrong argument count", name)
}

// applyAffinity coerces a value to a column's declared type when lossless,
// following SQLite's affinity rules loosely.
func applyAffinity(v sql.Value, t sql.ColType) sql.Value {
	if v.IsNull() {
		return v
	}
	switch t {
	case sql.TInteger:
		if v.Kind() == sql.KindReal && v.AsReal() == float64(int64(v.AsReal())) {
			return sql.Int(v.AsInt())
		}
		if v.Kind() == sql.KindText {
			if iv := sql.Text(v.AsText()); iv.AsText() == fmt.Sprint(iv.AsInt()) {
				return sql.Int(iv.AsInt())
			}
		}
	case sql.TReal:
		if v.Kind() == sql.KindInt {
			return sql.Real(v.AsReal())
		}
	}
	return v
}
