package engine

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"fasp/internal/fast"
	"fasp/internal/pmem"
	"fasp/internal/sql"
	"fasp/internal/wal"
)

func TestTablesAndSchema(t *testing.T) {
	db := newDB(t)
	if names, err := db.Tables(); err != nil || len(names) != 0 {
		t.Fatalf("fresh db tables = %v, %v", names, err)
	}
	db.MustExec(`CREATE TABLE zebra (a INTEGER); CREATE TABLE aardvark (b TEXT)`)
	names, err := db.Tables()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "aardvark" || names[1] != "zebra" {
		t.Fatalf("tables = %v (want sorted)", names)
	}
	schema, err := db.Schema("zebra")
	if err != nil || schema != "CREATE TABLE zebra (a INTEGER)" {
		t.Fatalf("schema = %q, %v", schema, err)
	}
	if _, err := db.Schema("missing"); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("missing schema: %v", err)
	}
}

func TestExplicitTxnSpanningDDLAndDML(t *testing.T) {
	db := newDB(t)
	db.MustExec(`BEGIN;
		CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT);
		INSERT INTO t VALUES (1, 'one');
		INSERT INTO t VALUES (2, 'two');
		COMMIT`)
	rows, _ := db.QueryRows(`SELECT COUNT(*) FROM t`)
	if rows[0][0].AsInt() != 2 {
		t.Fatal("DDL+DML txn lost rows")
	}
	// Rolling back a CREATE TABLE removes the table entirely.
	db.MustExec(`BEGIN; CREATE TABLE gone (x INTEGER); INSERT INTO gone VALUES (1); ROLLBACK`)
	if _, err := db.Exec(`SELECT * FROM gone`); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("rolled-back table still exists: %v", err)
	}
	// And the original table is untouched.
	rows, _ = db.QueryRows(`SELECT COUNT(*) FROM t`)
	if rows[0][0].AsInt() != 2 {
		t.Fatal("rollback damaged sibling table")
	}
}

func TestErrorInsideExplicitTxnKeepsItOpen(t *testing.T) {
	db := newDB(t)
	db.MustExec(`CREATE TABLE t (id INTEGER PRIMARY KEY)`)
	db.MustExec(`BEGIN; INSERT INTO t VALUES (1)`)
	if _, err := db.Exec(`INSERT INTO t VALUES (1)`); err == nil { // duplicate
		t.Fatal("duplicate accepted")
	}
	// Transaction still open; the earlier insert is still pending.
	if !db.InTxn() {
		t.Fatal("txn closed by statement error")
	}
	db.MustExec(`COMMIT`)
	rows, _ := db.QueryRows(`SELECT COUNT(*) FROM t`)
	if rows[0][0].AsInt() != 1 {
		t.Fatalf("count = %v", rows[0][0])
	}
}

func TestTypeAffinity(t *testing.T) {
	db := newDB(t)
	db.MustExec(`CREATE TABLE t (i INTEGER, r REAL, s TEXT)`)
	db.MustExec(`INSERT INTO t VALUES ('42', 7, 99)`)
	rows, _ := db.QueryRows(`SELECT typeof(i), typeof(r), typeof(s) FROM t`)
	r := rows[0]
	if r[0].AsText() != "integer" || r[1].AsText() != "real" {
		t.Fatalf("affinity = %v", r)
	}
}

func TestIsNullQueries(t *testing.T) {
	db := newDB(t)
	db.MustExec(`CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)`)
	db.MustExec(`INSERT INTO t (id) VALUES (1)`)
	db.MustExec(`INSERT INTO t VALUES (2, 'x')`)
	rows, err := db.QueryRows(`SELECT id FROM t WHERE v IS NULL`)
	if err != nil || len(rows) != 1 || rows[0][0].AsInt() != 1 {
		t.Fatalf("IS NULL = %v, %v", rows, err)
	}
	rows, _ = db.QueryRows(`SELECT id FROM t WHERE v IS NOT NULL`)
	if len(rows) != 1 || rows[0][0].AsInt() != 2 {
		t.Fatalf("IS NOT NULL = %v", rows)
	}
	// Comparisons with NULL match nothing.
	rows, _ = db.QueryRows(`SELECT id FROM t WHERE v = NULL`)
	if len(rows) != 0 {
		t.Fatalf("= NULL matched %v", rows)
	}
}

func TestBlobRoundTripThroughSQL(t *testing.T) {
	db := newDB(t)
	db.MustExec(`CREATE TABLE b (id INTEGER PRIMARY KEY, data BLOB)`)
	db.MustExec(`INSERT INTO b VALUES (1, x'00ff10ab')`)
	rows, err := db.QueryRows(`SELECT data, LENGTH(data), HEX(data) FROM b WHERE id = 1`)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if got := r[0].AsBlob(); len(got) != 4 || got[1] != 0xFF {
		t.Fatalf("blob = %x", got)
	}
	if r[1].AsInt() != 4 || r[2].AsText() != "00FF10AB" {
		t.Fatalf("len/hex = %v %v", r[1], r[2])
	}
}

func TestMultiColumnOrderBy(t *testing.T) {
	db := newDB(t)
	db.MustExec(`CREATE TABLE t (a INTEGER, b INTEGER)`)
	for _, pair := range [][2]int{{2, 1}, {1, 2}, {2, 3}, {1, 1}, {2, 2}} {
		db.MustExec(fmt.Sprintf(`INSERT INTO t VALUES (%d, %d)`, pair[0], pair[1]))
	}
	rows, err := db.QueryRows(`SELECT a, b FROM t ORDER BY a ASC, b DESC`)
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]int64{{1, 2}, {1, 1}, {2, 3}, {2, 2}, {2, 1}}
	for i, w := range want {
		if rows[i][0].AsInt() != w[0] || rows[i][1].AsInt() != w[1] {
			t.Fatalf("row %d = %v, want %v", i, rows[i], w)
		}
	}
}

func TestDivisionByZeroIsNull(t *testing.T) {
	db := newDB(t)
	rows, err := db.QueryRows(`SELECT 1/0, 1.0/0, 5 % 0`)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range rows[0] {
		if !v.IsNull() {
			t.Fatalf("expr %d = %v, want NULL", i, v)
		}
	}
}

func TestUpdatePrimaryKeyMovesRow(t *testing.T) {
	db := newDB(t)
	db.MustExec(`CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)`)
	db.MustExec(`INSERT INTO t VALUES (1, 'a'), (2, 'b')`)
	db.MustExec(`UPDATE t SET id = 10 WHERE id = 1`)
	rows, _ := db.QueryRows(`SELECT id, v FROM t ORDER BY id`)
	if len(rows) != 2 || rows[1][0].AsInt() != 10 || rows[1][1].AsText() != "a" {
		t.Fatalf("rows = %v", rows)
	}
	// Moving onto an existing rowid violates the constraint.
	if _, err := db.Exec(`UPDATE t SET id = 2 WHERE id = 10`); !errors.Is(err, ErrConstraint) {
		t.Fatalf("pk collision: %v", err)
	}
}

func TestSelectExpressionsWithoutFrom(t *testing.T) {
	db := newDB(t)
	rows, err := db.QueryRows(`SELECT 1 + 1 AS two, 'a' || 'b'`)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0].AsInt() != 2 || rows[0][1].AsText() != "ab" {
		t.Fatalf("rows = %v", rows)
	}
	if _, err := db.Exec(`SELECT * `); err == nil {
		t.Fatal("SELECT * without FROM accepted")
	}
}

func TestUnknownFunctionErrors(t *testing.T) {
	db := newDB(t)
	if _, err := db.Exec(`SELECT frobnicate(1)`); err == nil {
		t.Fatal("unknown function accepted")
	}
}

func TestVacuumOnBaselineIsNoop(t *testing.T) {
	sys := pmem.NewSystem(pmem.DefaultLatencies(300, 300))
	db := Open(wal.Create(sys, wal.Config{PageSize: 1024, MaxPages: 1024, Kind: wal.NVWAL}))
	db.MustExec(`CREATE TABLE t (x INTEGER)`)
	res := db.MustExec(`VACUUM`)
	if res[0].RowsAffected != 0 {
		t.Fatalf("vacuum on NVWAL reclaimed %d", res[0].RowsAffected)
	}
}

func TestVacuumInsideTxnRejected(t *testing.T) {
	db := newDB(t)
	db.MustExec(`BEGIN`)
	if _, err := db.Exec(`VACUUM`); err == nil {
		t.Fatal("VACUUM inside txn accepted")
	}
	db.MustExec(`ROLLBACK`)
}

func TestLargeTextValuesSpanningPages(t *testing.T) {
	sys := pmem.NewSystem(pmem.DefaultLatencies(300, 300))
	st := fast.Create(sys, fast.Config{PageSize: 4096, MaxPages: 4096, Variant: fast.InPlaceCommit})
	db := Open(st)
	db.MustExec(`CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)`)
	long := strings.Repeat("abcdefgh", 300) // 2400 bytes
	db.MustExec(fmt.Sprintf(`INSERT INTO t VALUES (1, '%s')`, long))
	rows, _ := db.QueryRows(`SELECT LENGTH(v) FROM t WHERE id = 1`)
	if rows[0][0].AsInt() != 2400 {
		t.Fatalf("length = %v", rows[0][0])
	}
	// A value too large for any page errors cleanly.
	huge := strings.Repeat("x", 8000)
	if _, err := db.Exec(fmt.Sprintf(`INSERT INTO t VALUES (2, '%s')`, huge)); err == nil {
		t.Fatal("oversized record accepted")
	}
	// The failed statement rolled back; the table still works.
	db.MustExec(`INSERT INTO t VALUES (3, 'ok')`)
}

func TestStatementOverheadCharged(t *testing.T) {
	db := newDB(t)
	db.StatementOverheadNS = 5000
	t0 := db.Store().Sys().Clock().Now()
	db.MustExec(`SELECT 1`)
	if d := db.Store().Sys().Clock().Now() - t0; d < 5000 {
		t.Fatalf("statement charged %d ns, want >= 5000", d)
	}
}

func TestQueryRowsRejectsMultipleStatements(t *testing.T) {
	db := newDB(t)
	if _, err := db.QueryRows(`SELECT 1; SELECT 2`); err == nil {
		t.Fatal("multi-statement query accepted")
	}
}

func TestValueKindsSurviveSQLRoundTrip(t *testing.T) {
	db := newDB(t)
	db.MustExec(`CREATE TABLE t (id INTEGER PRIMARY KEY, a INTEGER, b REAL, c TEXT, d BLOB)`)
	db.MustExec(`INSERT INTO t VALUES (1, -7, 2.5, 'hi', x'beef')`)
	rows, _ := db.QueryRows(`SELECT a, b, c, d FROM t`)
	r := rows[0]
	if r[0].Kind() != sql.KindInt || r[1].Kind() != sql.KindReal ||
		r[2].Kind() != sql.KindText || r[3].Kind() != sql.KindBlob {
		t.Fatalf("kinds = %v %v %v %v", r[0].Kind(), r[1].Kind(), r[2].Kind(), r[3].Kind())
	}
}

func TestGroupByHaving(t *testing.T) {
	db := newDB(t)
	db.MustExec(`CREATE TABLE sales (region TEXT, amount INTEGER)`)
	for _, row := range []struct {
		r string
		a int
	}{
		{"east", 10}, {"east", 20}, {"west", 5}, {"west", 7}, {"north", 100},
	} {
		db.MustExec(fmt.Sprintf(`INSERT INTO sales VALUES ('%s', %d)`, row.r, row.a))
	}
	rows, err := db.QueryRows(`SELECT region, SUM(amount), COUNT(*) FROM sales
		GROUP BY region ORDER BY SUM(amount) DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d groups", len(rows))
	}
	if rows[0][0].AsText() != "north" || rows[0][1].AsInt() != 100 {
		t.Fatalf("row0 = %v", rows[0])
	}
	if rows[1][0].AsText() != "east" || rows[1][1].AsInt() != 30 || rows[1][2].AsInt() != 2 {
		t.Fatalf("row1 = %v", rows[1])
	}
	// HAVING filters groups by aggregate.
	rows, err = db.QueryRows(`SELECT region FROM sales GROUP BY region HAVING SUM(amount) > 12 ORDER BY region`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][0].AsText() != "east" || rows[1][0].AsText() != "north" {
		t.Fatalf("having rows = %v", rows)
	}
	// Aggregate arithmetic composes.
	rows, _ = db.QueryRows(`SELECT COUNT(*) + 1, AVG(amount) * 2 FROM sales`)
	if rows[0][0].AsInt() != 6 {
		t.Fatalf("count+1 = %v", rows[0][0])
	}
}

func TestGroupByEmptyTable(t *testing.T) {
	db := newDB(t)
	db.MustExec(`CREATE TABLE t (g TEXT, v INTEGER)`)
	// Implicit single group on empty input yields one row (SQL semantics).
	rows, err := db.QueryRows(`SELECT COUNT(*), SUM(v) FROM t`)
	if err != nil || len(rows) != 1 || rows[0][0].AsInt() != 0 || !rows[0][1].IsNull() {
		t.Fatalf("rows = %v, %v", rows, err)
	}
	// Explicit GROUP BY on empty input yields no rows.
	rows, err = db.QueryRows(`SELECT g, COUNT(*) FROM t GROUP BY g`)
	if err != nil || len(rows) != 0 {
		t.Fatalf("rows = %v, %v", rows, err)
	}
}

func TestDistinct(t *testing.T) {
	db := newDB(t)
	db.MustExec(`CREATE TABLE t (a INTEGER, b TEXT)`)
	for i := 0; i < 12; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO t VALUES (%d, 'x%d')`, i%3, i%2))
	}
	rows, err := db.QueryRows(`SELECT DISTINCT a FROM t ORDER BY a`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0][0].AsInt() != 0 || rows[2][0].AsInt() != 2 {
		t.Fatalf("distinct a = %v", rows)
	}
	rows, _ = db.QueryRows(`SELECT DISTINCT a, b FROM t`)
	if len(rows) != 6 {
		t.Fatalf("distinct pairs = %d", len(rows))
	}
	rows, _ = db.QueryRows(`SELECT DISTINCT a FROM t ORDER BY a LIMIT 2`)
	if len(rows) != 2 {
		t.Fatalf("distinct+limit = %v", rows)
	}
}

func TestGroupByLimitAndOffset(t *testing.T) {
	db := newDB(t)
	db.MustExec(`CREATE TABLE t (g INTEGER)`)
	for i := 0; i < 30; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO t VALUES (%d)`, i%6))
	}
	rows, err := db.QueryRows(`SELECT g, COUNT(*) FROM t GROUP BY g ORDER BY g LIMIT 3 OFFSET 2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0][0].AsInt() != 2 || rows[2][0].AsInt() != 4 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestInAndBetween(t *testing.T) {
	db := newDB(t)
	db.MustExec(`CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER, s TEXT)`)
	for i := 1; i <= 10; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO t VALUES (%d, %d, 's%d')`, i, i*10, i))
	}
	rows, err := db.QueryRows(`SELECT id FROM t WHERE v IN (20, 50, 90, 999) ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0][0].AsInt() != 2 || rows[2][0].AsInt() != 9 {
		t.Fatalf("IN rows = %v", rows)
	}
	rows, _ = db.QueryRows(`SELECT id FROM t WHERE v NOT IN (20, 50) ORDER BY id`)
	if len(rows) != 8 {
		t.Fatalf("NOT IN rows = %d", len(rows))
	}
	rows, _ = db.QueryRows(`SELECT COUNT(*) FROM t WHERE v BETWEEN 30 AND 60`)
	if rows[0][0].AsInt() != 4 {
		t.Fatalf("BETWEEN = %v", rows[0][0])
	}
	rows, _ = db.QueryRows(`SELECT COUNT(*) FROM t WHERE v NOT BETWEEN 30 AND 60`)
	if rows[0][0].AsInt() != 6 {
		t.Fatalf("NOT BETWEEN = %v", rows[0][0])
	}
	rows, _ = db.QueryRows(`SELECT COUNT(*) FROM t WHERE s NOT LIKE 's1%'`)
	if rows[0][0].AsInt() != 8 { // excludes s1 and s10
		t.Fatalf("NOT LIKE = %v", rows[0][0])
	}
	// Strings work in IN; NULL semantics hold.
	rows, _ = db.QueryRows(`SELECT COUNT(*) FROM t WHERE s IN ('s3', 's7')`)
	if rows[0][0].AsInt() != 2 {
		t.Fatalf("string IN = %v", rows[0][0])
	}
	rows, _ = db.QueryRows(`SELECT 1 IN (NULL, 2), 1 IN (NULL, 1), 1 NOT IN (NULL, 2)`)
	if !rows[0][0].IsNull() || rows[0][1].AsInt() != 1 || !rows[0][2].IsNull() {
		t.Fatalf("IN null semantics = %v", rows[0])
	}
	// Grouped context.
	rows, err = db.QueryRows(`SELECT COUNT(*) FROM t GROUP BY v BETWEEN 1 AND 50`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("grouped between = %v", rows)
	}
}
