package engine

import (
	"errors"
	"fmt"

	"fasp/internal/btree"
	"fasp/internal/pager"
	"fasp/internal/sql"
)

// ErrNoTxn reports COMMIT/ROLLBACK without a BEGIN.
var ErrNoTxn = errors.New("engine: no transaction is active")

// Result is the outcome of one statement.
type Result struct {
	// Columns names the result columns of a SELECT.
	Columns []string
	// Rows holds the result rows of a SELECT.
	Rows [][]sql.Value
	// RowsAffected counts rows changed by INSERT/UPDATE/DELETE.
	RowsAffected int
	// LastInsertID is the rowid assigned by the last INSERT.
	LastInsertID int64
}

// DB is a SQL database over a pager store. It is not safe for concurrent
// use; like SQLite in exclusive mode, one writer owns the database.
type DB struct {
	st pager.Store
	// StatementOverheadNS models SQLite's parse + bytecode (VDBE) overhead
	// per statement in simulated nanoseconds; Figures 11–12 include this
	// path, Figures 6–9 do not. The 10 µs default approximates SQLite's
	// prepare+step cost for a simple INSERT on the paper's era of hardware;
	// see EXPERIMENTS.md for the calibration discussion.
	StatementOverheadNS int64

	tx       pager.Txn // open transaction (nil when idle)
	explicit bool      // tx was opened by BEGIN
}

// Open attaches an engine to a (recovered) store.
func Open(st pager.Store) *DB {
	return &DB{st: st, StatementOverheadNS: 10000}
}

// Store exposes the underlying store.
func (db *DB) Store() pager.Store { return db.st }

// InTxn reports whether an explicit transaction is open.
func (db *DB) InTxn() bool { return db.explicit }

// Exec parses and executes a semicolon-separated batch, returning one
// Result per statement. On error, the failing statement's implicit
// transaction is rolled back; an explicit transaction is left open for the
// caller to ROLLBACK (as in SQLite).
func (db *DB) Exec(src string) ([]Result, error) {
	stmts, err := sql.Parse(src)
	if err != nil {
		return nil, err
	}
	var results []Result
	for _, stmt := range stmts {
		res, err := db.execStmt(stmt)
		if err != nil {
			return results, err
		}
		results = append(results, res)
	}
	return results, nil
}

// MustExec runs Exec and panics on error (for tests and examples).
func (db *DB) MustExec(src string) []Result {
	res, err := db.Exec(src)
	if err != nil {
		panic(err)
	}
	return res
}

// QueryRows runs a single SELECT and returns its rows.
func (db *DB) QueryRows(src string) ([][]sql.Value, error) {
	res, err := db.Exec(src)
	if err != nil {
		return nil, err
	}
	if len(res) != 1 {
		return nil, fmt.Errorf("engine: expected one statement")
	}
	return res[0].Rows, nil
}

// Tables lists the table names in the catalog.
func (db *DB) Tables() ([]string, error) {
	auto := false
	if db.tx == nil {
		tx, err := db.st.Begin()
		if err != nil {
			return nil, err
		}
		db.tx = tx
		auto = true
	}
	ex := &executor{db: db, ptx: db.tx}
	names, err := ex.catalogNames(func(stmt sql.Stmt) bool {
		_, ok := stmt.(sql.CreateTable)
		return ok
	})
	if auto {
		tx := db.tx
		db.tx = nil
		tx.Rollback()
	}
	return names, err
}

// Indexes lists the secondary-index names in the catalog.
func (db *DB) Indexes() ([]string, error) {
	auto := false
	if db.tx == nil {
		tx, err := db.st.Begin()
		if err != nil {
			return nil, err
		}
		db.tx = tx
		auto = true
	}
	ex := &executor{db: db, ptx: db.tx}
	names, err := ex.catalogNames(func(stmt sql.Stmt) bool {
		_, ok := stmt.(sql.CreateIndex)
		return ok
	})
	if auto {
		tx := db.tx
		db.tx = nil
		tx.Rollback()
	}
	return names, err
}

// catalogNames lists catalog entries whose stored statement matches keep.
func (ex *executor) catalogNames(keep func(sql.Stmt) bool) ([]string, error) {
	var names []string
	var scanErr error
	err := ex.catalog().Scan(nil, nil, func(k, v []byte) bool {
		_, createSQL, err := decodeCatalogRow(v)
		if err != nil {
			scanErr = err
			return false
		}
		stmt, err := sql.ParseOne(createSQL)
		if err == nil && keep(stmt) {
			names = append(names, string(k))
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return names, scanErr
}

// Schema returns a table's stored CREATE TABLE statement.
func (db *DB) Schema(table string) (string, error) {
	auto := false
	if db.tx == nil {
		tx, err := db.st.Begin()
		if err != nil {
			return "", err
		}
		db.tx = tx
		auto = true
	}
	ex := &executor{db: db, ptx: db.tx}
	ti, err := loadTableInfo(ex.catalog(), table)
	if auto {
		tx := db.tx
		db.tx = nil
		tx.Rollback()
	}
	if err != nil {
		return "", err
	}
	return ti.createSQL, nil
}

// execStmt runs one statement, managing the implicit-transaction protocol.
func (db *DB) execStmt(stmt sql.Stmt) (res Result, err error) {
	// Charge the modelled SQL front-end overhead (parse + VDBE).
	db.st.Sys().ComputeNS(db.StatementOverheadNS)

	switch stmt.(type) {
	case sql.Begin:
		if db.tx != nil {
			return res, pager.ErrTxnActive
		}
		tx, err := db.st.Begin()
		if err != nil {
			return res, err
		}
		db.tx = tx
		db.explicit = true
		return res, nil
	case sql.Commit:
		if !db.explicit {
			return res, ErrNoTxn
		}
		tx := db.tx
		db.tx = nil
		db.explicit = false
		return res, tx.Commit()
	case sql.Rollback:
		if !db.explicit {
			return res, ErrNoTxn
		}
		db.tx.Rollback()
		db.tx = nil
		db.explicit = false
		return res, nil
	}

	// Data statement: use the explicit transaction or an implicit one.
	auto := false
	if db.tx == nil {
		tx, err := db.st.Begin()
		if err != nil {
			return res, err
		}
		db.tx = tx
		auto = true
	}
	res, err = db.runInTxn(stmt)
	if auto {
		tx := db.tx
		db.tx = nil
		if err != nil {
			tx.Rollback()
			return res, err
		}
		return res, tx.Commit()
	}
	return res, err
}

// runInTxn dispatches a data statement inside db.tx, converting execAbort
// panics (from errorless interfaces) back into errors.
func (db *DB) runInTxn(stmt sql.Stmt) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			if ab, ok := r.(execAbort); ok {
				err = ab.err
				return
			}
			panic(r)
		}
	}()
	ex := &executor{db: db, ptx: db.tx}
	switch s := stmt.(type) {
	case sql.CreateTable:
		return ex.createTable(s)
	case sql.DropTable:
		return ex.dropTable(s)
	case sql.CreateIndex:
		return ex.createIndex(s)
	case sql.DropIndex:
		return ex.dropIndex(s)
	case sql.Insert:
		return ex.insert(s)
	case sql.Select:
		return ex.selectStmt(s)
	case sql.Update:
		return ex.update(s)
	case sql.Delete:
		return ex.delete(s)
	case sql.Vacuum:
		return ex.vacuum()
	default:
		return res, fmt.Errorf("engine: unsupported statement %T", stmt)
	}
}

// executor runs one statement within one pager transaction.
type executor struct {
	db  *DB
	ptx pager.Txn
}

// catalog returns a tree view of the catalog (rooted at the store root).
func (ex *executor) catalog() *btree.Tx {
	return btree.Attach(ex.db.st, ex.ptx, ex.ptx)
}

// table returns a tree view of a table's B-tree.
func (ex *executor) table(cat *btree.Tx, name string) *btree.Tx {
	return btree.Attach(ex.db.st, ex.ptx, &tableRootRef{cat: cat, name: name})
}
