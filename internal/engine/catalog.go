package engine

import (
	"errors"
	"fmt"
	"strings"

	"fasp/internal/btree"
	"fasp/internal/pager"
	"fasp/internal/sql"
)

// Engine-level errors.
var (
	ErrNoSuchTable  = errors.New("engine: no such table")
	ErrTableExists  = errors.New("engine: table already exists")
	ErrNoSuchColumn = errors.New("engine: no such column")
	ErrConstraint   = errors.New("engine: constraint violation")
)

// tableInfo is a decoded catalog entry.
type tableInfo struct {
	name      string
	createSQL string
	cols      []sql.ColDef
	pkCol     int // index of the INTEGER PRIMARY KEY column, -1 if none
}

func (ti *tableInfo) colIndex(name string) int {
	for i, c := range ti.cols {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// isRowidRef reports whether name addresses the rowid (the built-in alias
// or the INTEGER PRIMARY KEY column).
func (ti *tableInfo) isRowidRef(name string) bool {
	if strings.EqualFold(name, "rowid") {
		return true
	}
	return ti.pkCol >= 0 && strings.EqualFold(ti.cols[ti.pkCol].Name, name)
}

// catalogKey is the B-tree key of a table's catalog row.
func catalogKey(name string) []byte { return []byte(strings.ToLower(name)) }

// encodeCatalogRow builds the catalog record: [root page, CREATE TABLE sql].
func encodeCatalogRow(root uint32, createSQL string) []byte {
	return EncodeRecord([]sql.Value{sql.Int(int64(root)), sql.Text(createSQL)})
}

func decodeCatalogRow(rec []byte) (root uint32, createSQL string, err error) {
	vals, err := DecodeRecord(rec)
	if err != nil {
		return 0, "", err
	}
	if len(vals) != 2 {
		return 0, "", fmt.Errorf("%w: catalog row has %d fields", ErrBadRecord, len(vals))
	}
	return uint32(vals[0].AsInt()), vals[1].AsText(), nil
}

// loadTableInfo reads and parses a table's catalog entry within a txn.
func loadTableInfo(cat *btree.Tx, name string) (*tableInfo, error) {
	rec, ok, err := cat.Get(catalogKey(name))
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchTable, name)
	}
	_, createSQL, err := decodeCatalogRow(rec)
	if err != nil {
		return nil, err
	}
	stmt, err := sql.ParseOne(createSQL)
	if err != nil {
		return nil, fmt.Errorf("engine: catalog row for %s unparsable: %v", name, err)
	}
	ct, ok := stmt.(sql.CreateTable)
	if !ok {
		// The name exists in the catalog but denotes an index.
		return nil, fmt.Errorf("%w: %s (it is an index)", ErrNoSuchTable, name)
	}
	ti := &tableInfo{name: ct.Name, createSQL: createSQL, cols: ct.Cols, pkCol: -1}
	for i, c := range ct.Cols {
		if c.PrimaryKey && c.Type == sql.TInteger {
			ti.pkCol = i
			break
		}
	}
	return ti, nil
}

// tableRootRef stores a table's B-tree root pointer inside its catalog row,
// so root movements (splits of the table's root) commit atomically with the
// transaction that caused them.
type tableRootRef struct {
	cat    *btree.Tx
	name   string
	cached uint32
	loaded bool
}

func (r *tableRootRef) Root() uint32 {
	if r.loaded {
		return r.cached
	}
	rec, ok, err := r.cat.Get(catalogKey(r.name))
	if err != nil || !ok {
		panic(execAbort{fmt.Errorf("%w: %s (root lookup: %v)", ErrNoSuchTable, r.name, err)})
	}
	root, _, err := decodeCatalogRow(rec)
	if err != nil {
		panic(execAbort{err})
	}
	r.cached = root
	r.loaded = true
	return root
}

func (r *tableRootRef) SetRoot(no uint32) {
	rec, ok, err := r.cat.Get(catalogKey(r.name))
	if err != nil || !ok {
		panic(execAbort{fmt.Errorf("%w: %s (root update: %v)", ErrNoSuchTable, r.name, err)})
	}
	_, createSQL, err := decodeCatalogRow(rec)
	if err != nil {
		panic(execAbort{err})
	}
	if err := r.cat.Update(catalogKey(r.name), encodeCatalogRow(no, createSQL)); err != nil {
		panic(execAbort{err})
	}
	r.cached = no
	r.loaded = true
}

// execAbort carries an error through SetRoot's errorless interface; the
// statement executor recovers it at its boundary.
type execAbort struct{ err error }

// catRootRef adapts the pager transaction's root pointer (which addresses
// the catalog tree) to btree.RootRef. It exists only for symmetry — the
// pager.Txn already satisfies RootRef.
var _ btree.RootRef = pager.Txn(nil)
