// Package engine is a miniature SQLite-like relational engine over the
// B-tree: a catalog, SQLite's record serialisation format, and execution of
// the parsed SQL statements. It provides the "full-featured DBMS" context
// the paper evaluates in (SQL parsing and statement execution included in
// Figures 11–12; pager and B-tree time isolated in Figures 6–9).
//
// Each table is one B-tree keyed by the 8-byte big-endian rowid; the
// catalog is a B-tree keyed by table name whose rows carry the table's root
// page and its CREATE TABLE text. Table root pointers therefore live in
// catalog rows and move transactionally with everything else.
package engine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"fasp/internal/sql"
)

// ErrBadRecord reports an undecodable record image.
var ErrBadRecord = errors.New("engine: bad record")

// Serial types, following SQLite's record format: 0 NULL, 6 int64,
// 7 float64, even ≥12 blob of (n-12)/2 bytes, odd ≥13 text of (n-13)/2.
const (
	serialNull  = 0
	serialInt   = 6
	serialReal  = 7
	serialBlob0 = 12
	serialText0 = 13
)

// EncodeRecord serialises values as a SQLite-style record: a varint header
// length, a varint serial type per value, then the value bodies.
func EncodeRecord(vals []sql.Value) []byte {
	var types []uint64
	bodyLen := 0
	for _, v := range vals {
		switch v.Kind() {
		case sql.KindNull:
			types = append(types, serialNull)
		case sql.KindInt:
			types = append(types, serialInt)
			bodyLen += 8
		case sql.KindReal:
			types = append(types, serialReal)
			bodyLen += 8
		case sql.KindBlob:
			b := v.AsBlob()
			types = append(types, uint64(serialBlob0+2*len(b)))
			bodyLen += len(b)
		default:
			s := v.AsText()
			types = append(types, uint64(serialText0+2*len(s)))
			bodyLen += len(s)
		}
	}
	var typeBuf []byte
	for _, t := range types {
		typeBuf = binary.AppendUvarint(typeBuf, t)
	}
	// Header length includes its own varint, like SQLite; sizing the
	// varint of (len + its own size) converges within two rounds here.
	hdrLen := len(typeBuf) + 1
	if hdrLen+1 >= 0x80 {
		hdrLen = len(typeBuf) + uvarintLen(uint64(len(typeBuf)+2))
	}
	out := make([]byte, 0, hdrLen+bodyLen)
	out = binary.AppendUvarint(out, uint64(hdrLen))
	out = append(out, typeBuf...)
	for _, v := range vals {
		switch v.Kind() {
		case sql.KindInt:
			out = binary.BigEndian.AppendUint64(out, uint64(v.AsInt()))
		case sql.KindReal:
			out = binary.BigEndian.AppendUint64(out, math.Float64bits(v.AsReal()))
		case sql.KindBlob:
			out = append(out, v.AsBlob()...)
		case sql.KindText:
			out = append(out, v.AsText()...)
		}
	}
	return out
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// DecodeRecord parses a record image back into values.
func DecodeRecord(b []byte) ([]sql.Value, error) {
	hdrLen, n := binary.Uvarint(b)
	if n <= 0 || hdrLen > uint64(len(b)) || uint64(n) > hdrLen {
		return nil, fmt.Errorf("%w: header length", ErrBadRecord)
	}
	types := b[n:hdrLen]
	body := b[hdrLen:]
	var vals []sql.Value
	for len(types) > 0 {
		t, tn := binary.Uvarint(types)
		if tn <= 0 {
			return nil, fmt.Errorf("%w: serial type varint", ErrBadRecord)
		}
		types = types[tn:]
		switch {
		case t == serialNull:
			vals = append(vals, sql.Null())
		case t == serialInt:
			if len(body) < 8 {
				return nil, fmt.Errorf("%w: truncated int", ErrBadRecord)
			}
			vals = append(vals, sql.Int(int64(binary.BigEndian.Uint64(body))))
			body = body[8:]
		case t == serialReal:
			if len(body) < 8 {
				return nil, fmt.Errorf("%w: truncated real", ErrBadRecord)
			}
			vals = append(vals, sql.Real(math.Float64frombits(binary.BigEndian.Uint64(body))))
			body = body[8:]
		case t >= serialBlob0 && t%2 == 0:
			ln := int((t - serialBlob0) / 2)
			if len(body) < ln {
				return nil, fmt.Errorf("%w: truncated blob", ErrBadRecord)
			}
			vals = append(vals, sql.Blob(append([]byte(nil), body[:ln]...)))
			body = body[ln:]
		case t >= serialText0:
			ln := int((t - serialText0) / 2)
			if len(body) < ln {
				return nil, fmt.Errorf("%w: truncated text", ErrBadRecord)
			}
			vals = append(vals, sql.Text(string(body[:ln])))
			body = body[ln:]
		default:
			return nil, fmt.Errorf("%w: serial type %d", ErrBadRecord, t)
		}
	}
	return vals, nil
}

// RowidKey encodes a rowid as the big-endian B-tree key, preserving order
// for non-negative rowids.
func RowidKey(rowid int64) []byte {
	var k [8]byte
	binary.BigEndian.PutUint64(k[:], uint64(rowid))
	return k[:]
}

// KeyRowid decodes a B-tree key back to a rowid.
func KeyRowid(k []byte) int64 {
	if len(k) != 8 {
		return 0
	}
	return int64(binary.BigEndian.Uint64(k))
}
