package engine

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"fasp/internal/sql"
)

func TestIndexKeyOrderingMatchesCompare(t *testing.T) {
	vals := []sql.Value{
		sql.Null(),
		sql.Int(-100), sql.Int(-1), sql.Real(-0.5), sql.Int(0), sql.Real(0.25),
		sql.Int(1), sql.Real(1.5), sql.Int(1000),
		sql.Text(""), sql.Text("a"), sql.Text("a\x00b"), sql.Text("ab"), sql.Text("b"),
		sql.Blob(nil), sql.Blob([]byte{0}), sql.Blob([]byte{1}),
	}
	for i := range vals {
		for j := range vals {
			want := sql.Compare(vals[i], vals[j])
			got := bytes.Compare(indexValuePrefix(vals[i]), indexValuePrefix(vals[j]))
			norm := func(x int) int {
				if x < 0 {
					return -1
				}
				if x > 0 {
					return 1
				}
				return 0
			}
			if norm(want) != norm(got) {
				t.Fatalf("ordering mismatch: %v vs %v (Compare=%d, bytes=%d)",
					vals[i], vals[j], want, got)
			}
		}
	}
}

func TestIndexKeyNoPrefixCollisions(t *testing.T) {
	// "a" must not be a prefix-equal of "ab" in a way that confuses the
	// range scan: the escaped terminator guarantees disjoint ranges.
	lo1, hi1 := indexRange(sql.Text("a"))
	k2 := indexKey(sql.Text("ab"), 1)
	if bytes.Compare(k2, lo1) >= 0 && bytes.Compare(k2, hi1) <= 0 {
		t.Fatal("'ab' falls inside 'a' range")
	}
	// Values containing the terminator bytes stay distinct.
	ka := indexKey(sql.Text("x\x00y"), 1)
	kb := indexKey(sql.Text("x"), 1)
	if bytes.Equal(ka, kb) {
		t.Fatal("escaping collapsed distinct values")
	}
}

func TestCreateIndexAndLookup(t *testing.T) {
	db := newDB(t)
	db.MustExec(`CREATE TABLE users (id INTEGER PRIMARY KEY, email TEXT, age INTEGER)`)
	for i := 1; i <= 200; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO users VALUES (%d, 'user%d@x.io', %d)`, i, i, i%40))
	}
	// Backfilling CREATE INDEX reports indexed rows.
	res := db.MustExec(`CREATE INDEX users_age ON users (age)`)
	if res[0].RowsAffected != 200 {
		t.Fatalf("backfill indexed %d rows", res[0].RowsAffected)
	}
	names, _ := db.Indexes()
	if len(names) != 1 || names[0] != "users_age" {
		t.Fatalf("indexes = %v", names)
	}
	// Tables() must not list the index.
	tables, _ := db.Tables()
	if len(tables) != 1 || tables[0] != "users" {
		t.Fatalf("tables = %v", tables)
	}
	// Equality query via the index returns exactly the right rows.
	rows, err := db.QueryRows(`SELECT id FROM users WHERE age = 7 ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows for age=7", len(rows))
	}
	for _, r := range rows {
		if r[0].AsInt()%40 != 7 {
			t.Fatalf("wrong row %v", r)
		}
	}
	// SELECT FROM the index name is an error.
	if _, err := db.Exec(`SELECT * FROM users_age`); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("select from index: %v", err)
	}
}

func TestIndexMaintainedByDML(t *testing.T) {
	db := newDB(t)
	db.MustExec(`CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)`)
	db.MustExec(`CREATE INDEX t_v ON t (v)`)
	for i := 1; i <= 50; i++ {
		db.MustExec(fmt.Sprintf(`INSERT INTO t VALUES (%d, %d)`, i, i%10))
	}
	q := func(v int) int {
		rows, err := db.QueryRows(fmt.Sprintf(`SELECT COUNT(*) FROM t WHERE v = %d`, v))
		if err != nil {
			t.Fatal(err)
		}
		return int(rows[0][0].AsInt())
	}
	if q(3) != 5 {
		t.Fatalf("v=3 count %d", q(3))
	}
	db.MustExec(`UPDATE t SET v = 99 WHERE v = 3`)
	if q(3) != 0 || q(99) != 5 {
		t.Fatalf("after update: v3=%d v99=%d", q(3), q(99))
	}
	db.MustExec(`DELETE FROM t WHERE v = 99`)
	if q(99) != 0 {
		t.Fatalf("after delete: v99=%d", q(99))
	}
	rows, _ := db.QueryRows(`SELECT COUNT(*) FROM t`)
	if rows[0][0].AsInt() != 45 {
		t.Fatalf("total = %v", rows[0][0])
	}
}

func TestUniqueIndex(t *testing.T) {
	db := newDB(t)
	db.MustExec(`CREATE TABLE u (id INTEGER PRIMARY KEY, email TEXT)`)
	db.MustExec(`CREATE UNIQUE INDEX u_email ON u (email)`)
	db.MustExec(`INSERT INTO u VALUES (1, 'a@x')`)
	if _, err := db.Exec(`INSERT INTO u VALUES (2, 'a@x')`); !errors.Is(err, ErrConstraint) {
		t.Fatalf("unique violation: %v", err)
	}
	// NULLs are exempt (SQL semantics).
	db.MustExec(`INSERT INTO u (id) VALUES (3)`)
	db.MustExec(`INSERT INTO u (id) VALUES (4)`)
	// Updating into a collision is rejected.
	db.MustExec(`INSERT INTO u VALUES (5, 'b@x')`)
	if _, err := db.Exec(`UPDATE u SET email = 'a@x' WHERE id = 5`); !errors.Is(err, ErrConstraint) {
		t.Fatalf("unique update violation: %v", err)
	}
	// Failed statement rolled back: b@x is still there.
	rows, _ := db.QueryRows(`SELECT COUNT(*) FROM u WHERE email = 'b@x'`)
	if rows[0][0].AsInt() != 1 {
		t.Fatal("rollback lost the original row")
	}
	// Unique backfill over duplicate data fails cleanly.
	db.MustExec(`CREATE TABLE d (x INTEGER); INSERT INTO d VALUES (1), (1)`)
	if _, err := db.Exec(`CREATE UNIQUE INDEX d_x ON d (x)`); !errors.Is(err, ErrConstraint) {
		t.Fatalf("unique backfill: %v", err)
	}
	if names, _ := db.Indexes(); len(names) != 1 {
		t.Fatalf("failed backfill left index behind: %v", names)
	}
}

func TestDropIndexAndDropTableCascade(t *testing.T) {
	db := newDB(t)
	db.MustExec(`CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)`)
	db.MustExec(`CREATE INDEX t_v ON t (v); INSERT INTO t VALUES (1, 5)`)
	db.MustExec(`DROP INDEX t_v`)
	if names, _ := db.Indexes(); len(names) != 0 {
		t.Fatalf("indexes after drop = %v", names)
	}
	// Queries still work (full scan).
	rows, _ := db.QueryRows(`SELECT id FROM t WHERE v = 5`)
	if len(rows) != 1 {
		t.Fatal("query broken after index drop")
	}
	if _, err := db.Exec(`DROP INDEX t_v`); !errors.Is(err, ErrNoSuchIndex) {
		t.Fatalf("double drop: %v", err)
	}
	db.MustExec(`DROP INDEX IF EXISTS t_v`)
	// DROP INDEX of a table name is rejected.
	if _, err := db.Exec(`DROP INDEX t`); !errors.Is(err, ErrNoSuchIndex) {
		t.Fatalf("drop index on table: %v", err)
	}
	// DROP TABLE cascades to its indexes.
	db.MustExec(`CREATE INDEX t_v2 ON t (v)`)
	db.MustExec(`DROP TABLE t`)
	if names, _ := db.Indexes(); len(names) != 0 {
		t.Fatalf("cascade left indexes: %v", names)
	}
}

func TestIndexEquivalenceWithFullScan(t *testing.T) {
	// The same random workload on an indexed and an unindexed table must
	// answer every equality query identically.
	dbA := newDB(t) // indexed
	dbB := newDB(t) // full scans
	for _, db := range []*DB{dbA, dbB} {
		db.MustExec(`CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER, s TEXT)`)
	}
	dbA.MustExec(`CREATE INDEX t_v ON t (v); CREATE INDEX t_s ON t (s)`)
	rng := rand.New(rand.NewSource(8))
	nextID := 1
	live := map[int]bool{}
	for step := 0; step < 600; step++ {
		var stmt string
		switch rng.Intn(4) {
		case 0, 1:
			stmt = fmt.Sprintf(`INSERT INTO t VALUES (%d, %d, 's%d')`, nextID, rng.Intn(20), rng.Intn(15))
			live[nextID] = true
			nextID++
		case 2:
			stmt = fmt.Sprintf(`UPDATE t SET v = %d WHERE id = %d`, rng.Intn(20), rng.Intn(nextID)+1)
		case 3:
			id := rng.Intn(nextID) + 1
			stmt = fmt.Sprintf(`DELETE FROM t WHERE id = %d`, id)
			delete(live, id)
		}
		if _, err := dbA.Exec(stmt); err != nil {
			t.Fatalf("A step %d: %v", step, err)
		}
		if _, err := dbB.Exec(stmt); err != nil {
			t.Fatalf("B step %d: %v", step, err)
		}
	}
	for v := 0; v < 20; v++ {
		q := fmt.Sprintf(`SELECT id FROM t WHERE v = %d ORDER BY id`, v)
		ra, err := dbA.QueryRows(q)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := dbB.QueryRows(q)
		if err != nil {
			t.Fatal(err)
		}
		if !rowsEqual(ra, rb) {
			t.Fatalf("v=%d: indexed %v vs scan %v", v, flatten(ra), flatten(rb))
		}
	}
	for s := 0; s < 15; s++ {
		q := fmt.Sprintf(`SELECT id FROM t WHERE s = 's%d' ORDER BY id`, s)
		ra, _ := dbA.QueryRows(q)
		rb, _ := dbB.QueryRows(q)
		if !rowsEqual(ra, rb) {
			t.Fatalf("s=%d: indexed %v vs scan %v", s, flatten(ra), flatten(rb))
		}
	}
}

func rowsEqual(a, b [][]sql.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if sql.Compare(a[i][j], b[i][j]) != 0 {
				return false
			}
		}
	}
	return true
}

func flatten(rows [][]sql.Value) []string {
	var out []string
	for _, r := range rows {
		for _, v := range r {
			out = append(out, v.String())
		}
	}
	sort.Strings(out)
	return out
}

func TestNumericIndexUnifiesIntAndReal(t *testing.T) {
	db := newDB(t)
	db.MustExec(`CREATE TABLE t (id INTEGER PRIMARY KEY, v REAL)`)
	db.MustExec(`CREATE INDEX t_v ON t (v)`)
	db.MustExec(`INSERT INTO t VALUES (1, 3.0)`)
	// An integer-literal query must find the real-typed row via the index.
	rows, err := db.QueryRows(`SELECT id FROM t WHERE v = 3`)
	if err != nil || len(rows) != 1 {
		t.Fatalf("rows = %v, %v", rows, err)
	}
}
